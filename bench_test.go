// Benchmarks regenerating every evaluation point in the paper. Each
// BenchmarkE<n> corresponds to experiment E<n> in DESIGN.md §4; the
// experiment bodies live in internal/bench so cmd/scbench can print the
// consolidated paper-style report. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/subcontracts/shm"
)

// E1 — §9.3: per-invocation subcontract overhead vs a raw door call.
func BenchmarkE1_DirectDoorCall_0B(b *testing.B)       { bench.E1DirectDoorCall(0)(b) }
func BenchmarkE1_DirectDoorCall_1KiB(b *testing.B)     { bench.E1DirectDoorCall(1024)(b) }
func BenchmarkE1_SingletonCall_0B(b *testing.B)        { bench.E1SubcontractCall("singleton", 0)(b) }
func BenchmarkE1_SingletonCall_1KiB(b *testing.B)      { bench.E1SubcontractCall("singleton", 1024)(b) }
func BenchmarkE1_SimplexCall_0B(b *testing.B)          { bench.E1SubcontractCall("simplex", 0)(b) }
func BenchmarkE1_SimplexLocalFastPath_0B(b *testing.B) { bench.E1LocalOptimized(0)(b) }

// E2 — §9.3: object-transmission overhead vs a raw door transfer.
func BenchmarkE2_RawDoorTransfer(b *testing.B)       { bench.E2RawDoorTransfer(b) }
func BenchmarkE2_ObjectTransfer_1Door(b *testing.B)  { bench.E2ObjectTransfer(1)(b) }
func BenchmarkE2_ObjectTransfer_3Doors(b *testing.B) { bench.E2ObjectTransfer(3)(b) }

// E3 — Figures 3/4, §7: the full simplex object life cycle.
func BenchmarkE3_Lifecycle(b *testing.B) { bench.E3Lifecycle(b) }

// E4 — §5: replicon invocation and failover.
func BenchmarkE4_Replicon_AllAlive_1(b *testing.B)   { bench.E4InvokeAllAlive(1)(b) }
func BenchmarkE4_Replicon_AllAlive_3(b *testing.B)   { bench.E4InvokeAllAlive(3)(b) }
func BenchmarkE4_Replicon_AllAlive_5(b *testing.B)   { bench.E4InvokeAllAlive(5)(b) }
func BenchmarkE4_FailoverFirstCall_3_1(b *testing.B) { bench.E4FailoverFirstCall(3, 1)(b) }
func BenchmarkE4_FailoverFirstCall_5_4(b *testing.B) { bench.E4FailoverFirstCall(5, 4)(b) }

// E5 — §8.1: cluster vs simplex doors and throughput.
func BenchmarkE5_ExportDoors_Simplex_1000(b *testing.B) { bench.E5ExportDoors("simplex", 1000)(b) }
func BenchmarkE5_ExportDoors_Cluster_1000(b *testing.B) { bench.E5ExportDoors("cluster", 1000)(b) }
func BenchmarkE5_Invoke_Simplex(b *testing.B)           { bench.E5Invoke("simplex")(b) }
func BenchmarkE5_Invoke_Cluster(b *testing.B)           { bench.E5Invoke("cluster")(b) }

// E6 — §8.2/Figure 5: caching subcontract vs plain remote access over the
// network door servers (loopback TCP).
func BenchmarkE6_Read_Caching(b *testing.B)  { bench.E6Read("caching")(b) }
func BenchmarkE6_Read_Plain(b *testing.B)    { bench.E6Read("plain")(b) }
func BenchmarkE6_Mixed_Caching(b *testing.B) { bench.E6Mixed("caching")(b) }
func BenchmarkE6_Mixed_Plain(b *testing.B)   { bench.E6Mixed("plain")(b) }

// E7 — §8.3: reconnectable recovery latency.
func BenchmarkE7_Reconnect_FirstCallAfterCrash(b *testing.B) { bench.E7ReconnectFirstCall(b) }
func BenchmarkE7_Reconnect_SteadyState(b *testing.B)         { bench.E7SteadyState(b) }

// E8 — §5.1.5: marshal_copy vs copy-then-marshal.
func BenchmarkE8_CopyThenMarshal_1Door(b *testing.B)  { bench.E8CopyThenMarshal(1)(b) }
func BenchmarkE8_MarshalCopy_1Door(b *testing.B)      { bench.E8MarshalCopy(1)(b) }
func BenchmarkE8_CopyThenMarshal_4Doors(b *testing.B) { bench.E8CopyThenMarshal(4)(b) }
func BenchmarkE8_MarshalCopy_4Doors(b *testing.B)     { bench.E8MarshalCopy(4)(b) }

// E9 — §5.1.4: invoke_preamble shared-buffer optimization.
func BenchmarkE9_Preamble_Direct_64B(b *testing.B)      { bench.E9Echo(shm.Direct, 64)(b) }
func BenchmarkE9_Preamble_CopyAfter_64B(b *testing.B)   { bench.E9Echo(shm.CopyAfter, 64)(b) }
func BenchmarkE9_Preamble_Direct_4KiB(b *testing.B)     { bench.E9Echo(shm.Direct, 4096)(b) }
func BenchmarkE9_Preamble_CopyAfter_4KiB(b *testing.B)  { bench.E9Echo(shm.CopyAfter, 4096)(b) }
func BenchmarkE9_Preamble_Direct_64KiB(b *testing.B)    { bench.E9Echo(shm.Direct, 65536)(b) }
func BenchmarkE9_Preamble_CopyAfter_64KiB(b *testing.B) { bench.E9Echo(shm.CopyAfter, 65536)(b) }

// E13 — §9.1: specialized stubs for popular type/subcontract combinations.
func BenchmarkE13_GenericStubs_0B(b *testing.B)       { bench.E13Call("generic", 0)(b) }
func BenchmarkE13_SpecializedStubs_0B(b *testing.B)   { bench.E13Call("specialized", 0)(b) }
func BenchmarkE13_GenericStubs_1KiB(b *testing.B)     { bench.E13Call("generic", 1024)(b) }
func BenchmarkE13_SpecializedStubs_1KiB(b *testing.B) { bench.E13Call("specialized", 1024)(b) }

// E14 — invocation-context threading overhead on the minimal call.
func BenchmarkE14_ContextFree_0B(b *testing.B)    { bench.E14Call("bare", 0)(b) }
func BenchmarkE14_WithDeadline_0B(b *testing.B)   { bench.E14Call("deadline", 0)(b) }
func BenchmarkE14_FullContext_0B(b *testing.B)    { bench.E14Call("full", 0)(b) }
func BenchmarkE14_WithDeadline_1KiB(b *testing.B) { bench.E14Call("deadline", 1024)(b) }

// E15 — netd pipelined throughput over loopback TCP: parallelism ∈
// {1, 8, 64} concurrent callers × payload ∈ {0, 1 KiB, 64 KiB}. `make
// bench` runs this sweep and records it in BENCH_netd.json.
func BenchmarkE15_Throughput_P1_0B(b *testing.B)     { bench.E15Throughput(1, 0)(b) }
func BenchmarkE15_Throughput_P1_1KiB(b *testing.B)   { bench.E15Throughput(1, 1024)(b) }
func BenchmarkE15_Throughput_P1_64KiB(b *testing.B)  { bench.E15Throughput(1, 65536)(b) }
func BenchmarkE15_Throughput_P8_0B(b *testing.B)     { bench.E15Throughput(8, 0)(b) }
func BenchmarkE15_Throughput_P8_1KiB(b *testing.B)   { bench.E15Throughput(8, 1024)(b) }
func BenchmarkE15_Throughput_P8_64KiB(b *testing.B)  { bench.E15Throughput(8, 65536)(b) }
func BenchmarkE15_Throughput_P64_0B(b *testing.B)    { bench.E15Throughput(64, 0)(b) }
func BenchmarkE15_Throughput_P64_1KiB(b *testing.B)  { bench.E15Throughput(64, 1024)(b) }
func BenchmarkE15_Throughput_P64_64KiB(b *testing.B) { bench.E15Throughput(64, 65536)(b) }

// E18 — the same workload over the same-machine transport tier (unix
// control path + mapped bulk regions), so every cell has its E15
// loopback-TCP twin in BENCH_netd.json. The 64 KiB cells are the
// tier's acceptance gate (≥5× over TCP).
func BenchmarkE18_SameMachine_P1_0B(b *testing.B)     { bench.E18SameMachine(1, 0)(b) }
func BenchmarkE18_SameMachine_P1_1KiB(b *testing.B)   { bench.E18SameMachine(1, 1024)(b) }
func BenchmarkE18_SameMachine_P1_64KiB(b *testing.B)  { bench.E18SameMachine(1, 65536)(b) }
func BenchmarkE18_SameMachine_P8_0B(b *testing.B)     { bench.E18SameMachine(8, 0)(b) }
func BenchmarkE18_SameMachine_P8_1KiB(b *testing.B)   { bench.E18SameMachine(8, 1024)(b) }
func BenchmarkE18_SameMachine_P8_64KiB(b *testing.B)  { bench.E18SameMachine(8, 65536)(b) }
func BenchmarkE18_SameMachine_P64_0B(b *testing.B)    { bench.E18SameMachine(64, 0)(b) }
func BenchmarkE18_SameMachine_P64_1KiB(b *testing.B)  { bench.E18SameMachine(64, 1024)(b) }
func BenchmarkE18_SameMachine_P64_64KiB(b *testing.B) { bench.E18SameMachine(64, 65536)(b) }

// E16 — lock-free local door path + cache manager scalability: null
// local door call, door refcount round trip, and cached-read throughput
// (hot / cold / invalidating mixes) at parallelism ∈ {1, 8, 64}. `make
// bench` runs this sweep and records it in BENCH_cache.json.
func BenchmarkE16_NullLocalCall_P1(b *testing.B)    { bench.E16NullLocalCall(1)(b) }
func BenchmarkE16_NullLocalCall_P8(b *testing.B)    { bench.E16NullLocalCall(8)(b) }
func BenchmarkE16_NullLocalCall_P64(b *testing.B)   { bench.E16NullLocalCall(64)(b) }
func BenchmarkE16_DupRelease_P1(b *testing.B)       { bench.E16DupRelease(1)(b) }
func BenchmarkE16_DupRelease_P64(b *testing.B)      { bench.E16DupRelease(64)(b) }
func BenchmarkE16_CachedRead_Hot_P1(b *testing.B)   { bench.E16CachedRead(1, "hot")(b) }
func BenchmarkE16_CachedRead_Hot_P8(b *testing.B)   { bench.E16CachedRead(8, "hot")(b) }
func BenchmarkE16_CachedRead_Hot_P64(b *testing.B)  { bench.E16CachedRead(64, "hot")(b) }
func BenchmarkE16_CachedRead_Cold_P1(b *testing.B)  { bench.E16CachedRead(1, "cold")(b) }
func BenchmarkE16_CachedRead_Cold_P8(b *testing.B)  { bench.E16CachedRead(8, "cold")(b) }
func BenchmarkE16_CachedRead_Cold_P64(b *testing.B) { bench.E16CachedRead(64, "cold")(b) }
func BenchmarkE16_CachedRead_Inval_P8(b *testing.B) { bench.E16CachedRead(8, "inval")(b) }

// E17 — distributed-tracing overhead on the E14 minimal call: sampling
// off / enabled-but-unsampled / every-call-sampled, at parallelism 1 and
// 64. `make bench` records this sweep in BENCH_trace.json; the alloc and
// latency acceptance guards live in internal/bench/bench6_test.go.
func BenchmarkE17_Traced_Off_P1(b *testing.B)        { bench.E17TracedCall("off", 1)(b) }
func BenchmarkE17_Traced_Off_P64(b *testing.B)       { bench.E17TracedCall("off", 64)(b) }
func BenchmarkE17_Traced_Unsampled_P1(b *testing.B)  { bench.E17TracedCall("unsampled", 1)(b) }
func BenchmarkE17_Traced_Unsampled_P64(b *testing.B) { bench.E17TracedCall("unsampled", 64)(b) }
func BenchmarkE17_Traced_Sampled_P1(b *testing.B)    { bench.E17TracedCall("sampled", 1)(b) }
func BenchmarkE17_Traced_Sampled_P64(b *testing.B)   { bench.E17TracedCall("sampled", 64)(b) }

// E22 — always-on HDR latency recording vs the v1 1-in-8 sampled path,
// on the same minimal call: record mode off / sampled8 (v1) / timed
// (clocks only) / always (v2 default), at parallelism 1 and 64. `make
// bench` records this sweep in BENCH_trace.json; the ≤15 ns and 0-alloc
// acceptance guards live in internal/bench/bench11_test.go. The
// "always" cells also report p50_ns/p99_ns/p999_ns metrics from the
// histogram the cell exercised.
func BenchmarkE22_Record_Off_P1(b *testing.B)       { bench.E22RecordCost("off", 1)(b) }
func BenchmarkE22_Record_Off_P64(b *testing.B)      { bench.E22RecordCost("off", 64)(b) }
func BenchmarkE22_Record_Sampled8_P1(b *testing.B)  { bench.E22RecordCost("sampled8", 1)(b) }
func BenchmarkE22_Record_Sampled8_P64(b *testing.B) { bench.E22RecordCost("sampled8", 64)(b) }
func BenchmarkE22_Record_Timed_P1(b *testing.B)     { bench.E22RecordCost("timed", 1)(b) }
func BenchmarkE22_Record_Timed_P64(b *testing.B)    { bench.E22RecordCost("timed", 64)(b) }
func BenchmarkE22_Record_Always_P1(b *testing.B)    { bench.E22RecordCost("always", 1)(b) }
func BenchmarkE22_Record_Always_P64(b *testing.B)   { bench.E22RecordCost("always", 64)(b) }

// E19 — durable write throughput through the WAL group committer:
// parallelism ∈ {1, 64} writers × fsync batch cap ∈ {1, 8, 64, 256},
// plus the in-memory (no WAL) baseline. `make bench` records this
// sweep in BENCH_wal.json.
func BenchmarkE19_InMemoryWrite_P1(b *testing.B)      { bench.E19DurableWrite(1, 0)(b) }
func BenchmarkE19_InMemoryWrite_P64(b *testing.B)     { bench.E19DurableWrite(64, 0)(b) }
func BenchmarkE19_DurableWrite_P1_B256(b *testing.B)  { bench.E19DurableWrite(1, 256)(b) }
func BenchmarkE19_DurableWrite_P64_B1(b *testing.B)   { bench.E19DurableWrite(64, 1)(b) }
func BenchmarkE19_DurableWrite_P64_B8(b *testing.B)   { bench.E19DurableWrite(64, 8)(b) }
func BenchmarkE19_DurableWrite_P64_B64(b *testing.B)  { bench.E19DurableWrite(64, 64)(b) }
func BenchmarkE19_DurableWrite_P64_B256(b *testing.B) { bench.E19DurableWrite(64, 256)(b) }

// E10 — §6.1/§6.2: compatible-subcontract discovery, cold vs warm.
func BenchmarkE10_Discovery_Cold(b *testing.B) { bench.E10DiscoveryCold(b) }
func BenchmarkE10_Discovery_Warm(b *testing.B) { bench.E10DiscoveryWarm(b) }

// E12 — §9.3: wire-size overhead of the subcontract header.
func TestE12_WireOverhead(t *testing.T) {
	header, obj, raw, err := bench.WireSizes()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("singleton object = %d bytes, raw door = %d bytes, subcontract header = %d bytes", obj, raw, header)
	// The header is the 4-byte subcontract ID plus the length-prefixed
	// dynamic type name — small and constant, as §9.3 claims.
	if header <= 0 || header > 64 {
		t.Fatalf("header overhead = %d bytes, expected a small constant", header)
	}
}

// E20 — server-side dispatch engine: the serve-side cost of an incoming
// call under the three execution modes (adaptive inline engine, pool
// with inline disabled, pre-E20 goroutine per call), 0-byte echo at
// parallelism ∈ {1, 8, 64}; blocking-handler cells (100µs park, 64
// workers vs unbounded spawn); and goodput at 4× admission-bound
// overload. `make bench` records this sweep in BENCH_dispatch.json.
// Acceptance: Engine ≥ 1.5× Spawn at P64/0B, Engine P1 latency ≤ Spawn
// P1 within a run.
func BenchmarkE20_Serve_Engine_P1_0B(b *testing.B)  { bench.E20Serve("engine", 1, 0)(b) }
func BenchmarkE20_Serve_Engine_P8_0B(b *testing.B)  { bench.E20Serve("engine", 8, 0)(b) }
func BenchmarkE20_Serve_Engine_P64_0B(b *testing.B) { bench.E20Serve("engine", 64, 0)(b) }
func BenchmarkE20_Serve_Queued_P1_0B(b *testing.B)  { bench.E20Serve("queued", 1, 0)(b) }
func BenchmarkE20_Serve_Queued_P8_0B(b *testing.B)  { bench.E20Serve("queued", 8, 0)(b) }
func BenchmarkE20_Serve_Queued_P64_0B(b *testing.B) { bench.E20Serve("queued", 64, 0)(b) }
func BenchmarkE20_Serve_Spawn_P1_0B(b *testing.B)   { bench.E20Serve("spawn", 1, 0)(b) }
func BenchmarkE20_Serve_Spawn_P8_0B(b *testing.B)   { bench.E20Serve("spawn", 8, 0)(b) }
func BenchmarkE20_Serve_Spawn_P64_0B(b *testing.B)  { bench.E20Serve("spawn", 64, 0)(b) }
func BenchmarkE20_Blocking_Engine_P64(b *testing.B) { bench.E20Blocking("engine", 64)(b) }
func BenchmarkE20_Blocking_Spawn_P64(b *testing.B)  { bench.E20Blocking("spawn", 64)(b) }
func BenchmarkE20_Overload_4x(b *testing.B)         { bench.E20Overload(4)(b) }

// E21 — striped client call engine: the E15 workload re-run with the
// client dialling stripes ∈ {1, 2, 8} connections per peer (stripes=1
// is the within-run baseline on the future-based engine), plus the
// MixedHoL cells where two 64KiB bulk callers interfere with small
// calls — with stripes > 1 the bulk traffic rides its dedicated stripe
// and the small-call p99 should stop paying for it. `make bench`
// records this sweep (medians of 3 runs) in BENCH_netd.json.
func BenchmarkE21_Striped_S1_P1_0B(b *testing.B)    { bench.E21Striped(1, 1, 0)(b) }
func BenchmarkE21_Striped_S1_P1_1KiB(b *testing.B)  { bench.E21Striped(1, 1, 1024)(b) }
func BenchmarkE21_Striped_S1_P1_64KiB(b *testing.B) { bench.E21Striped(1, 1, 65536)(b) }
func BenchmarkE21_Striped_S1_P8_0B(b *testing.B)    { bench.E21Striped(1, 8, 0)(b) }
func BenchmarkE21_Striped_S1_P8_1KiB(b *testing.B)  { bench.E21Striped(1, 8, 1024)(b) }
func BenchmarkE21_Striped_S1_P8_64KiB(b *testing.B) { bench.E21Striped(1, 8, 65536)(b) }
func BenchmarkE21_Striped_S1_P64_0B(b *testing.B)   { bench.E21Striped(1, 64, 0)(b) }
func BenchmarkE21_Striped_S1_P64_1KiB(b *testing.B) { bench.E21Striped(1, 64, 1024)(b) }
func BenchmarkE21_Striped_S1_P64_64KiB(b *testing.B) {
	bench.E21Striped(1, 64, 65536)(b)
}
func BenchmarkE21_Striped_S2_P1_0B(b *testing.B)    { bench.E21Striped(2, 1, 0)(b) }
func BenchmarkE21_Striped_S2_P1_1KiB(b *testing.B)  { bench.E21Striped(2, 1, 1024)(b) }
func BenchmarkE21_Striped_S2_P1_64KiB(b *testing.B) { bench.E21Striped(2, 1, 65536)(b) }
func BenchmarkE21_Striped_S2_P8_0B(b *testing.B)    { bench.E21Striped(2, 8, 0)(b) }
func BenchmarkE21_Striped_S2_P8_1KiB(b *testing.B)  { bench.E21Striped(2, 8, 1024)(b) }
func BenchmarkE21_Striped_S2_P8_64KiB(b *testing.B) { bench.E21Striped(2, 8, 65536)(b) }
func BenchmarkE21_Striped_S2_P64_0B(b *testing.B)   { bench.E21Striped(2, 64, 0)(b) }
func BenchmarkE21_Striped_S2_P64_1KiB(b *testing.B) { bench.E21Striped(2, 64, 1024)(b) }
func BenchmarkE21_Striped_S2_P64_64KiB(b *testing.B) {
	bench.E21Striped(2, 64, 65536)(b)
}
func BenchmarkE21_Striped_S8_P1_0B(b *testing.B)    { bench.E21Striped(8, 1, 0)(b) }
func BenchmarkE21_Striped_S8_P1_1KiB(b *testing.B)  { bench.E21Striped(8, 1, 1024)(b) }
func BenchmarkE21_Striped_S8_P1_64KiB(b *testing.B) { bench.E21Striped(8, 1, 65536)(b) }
func BenchmarkE21_Striped_S8_P8_0B(b *testing.B)    { bench.E21Striped(8, 8, 0)(b) }
func BenchmarkE21_Striped_S8_P8_1KiB(b *testing.B)  { bench.E21Striped(8, 8, 1024)(b) }
func BenchmarkE21_Striped_S8_P8_64KiB(b *testing.B) { bench.E21Striped(8, 8, 65536)(b) }
func BenchmarkE21_Striped_S8_P64_0B(b *testing.B)   { bench.E21Striped(8, 64, 0)(b) }
func BenchmarkE21_Striped_S8_P64_1KiB(b *testing.B) { bench.E21Striped(8, 64, 1024)(b) }
func BenchmarkE21_Striped_S8_P64_64KiB(b *testing.B) {
	bench.E21Striped(8, 64, 65536)(b)
}
func BenchmarkE21_MixedHoL_S1(b *testing.B) { bench.E21MixedHoL(1)(b) }
func BenchmarkE21_MixedHoL_S8(b *testing.B) { bench.E21MixedHoL(8)(b) }
