// Replicated file demo (§5): a file maintained by three conspiring
// replica servers. The client is ordinary file-system code — replication
// lives entirely underneath the covers, in the replicon subcontract.
// Replicas crash mid-run; invocations transparently fail over and the
// surviving servers piggyback replica-set updates on their replies.
//
//	go run ./examples/replicated
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/subcontracts/replicon"
)

func env(k *kernel.Kernel, name string) *core.Env {
	e := core.NewEnv(k.NewDomain(name))
	if err := filesys.RegisterAll(e.Registry); err != nil {
		log.Fatal(err)
	}
	return e
}

func main() {
	k := kernel.New("machine")
	front := env(k, "fs-front")
	replicas := []*core.Env{env(k, "replica-0"), env(k, "replica-1"), env(k, "replica-2")}
	svc := filesys.NewReplicatedService(front, replicas)

	client := env(k, "client")
	fsObj, err := svc.Object().Copy()
	if err != nil {
		log.Fatal(err)
	}
	buf := buffer.New(64)
	if err := fsObj.Marshal(buf); err != nil {
		log.Fatal(err)
	}
	mounted, err := core.Unmarshal(client, filesys.FileSystemMT, buf)
	if err != nil {
		log.Fatal(err)
	}
	fs := filesys.FileSystem{Obj: mounted}

	f, err := fs.Create("journal")
	if err != nil {
		log.Fatal(err)
	}
	// The static type of the result is file; narrowing discovers the
	// richer replicated_file semantics (§6.3).
	rf, ok := filesys.NarrowReplicatedFile(f.Obj)
	if !ok {
		log.Fatalf("expected a replicated_file, got %v", f.Obj.MT.Type)
	}
	n, err := rf.Replicas()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %q via subcontract %q with %d replicas\n", "journal", f.Obj.SC.Name(), n)

	if _, err := rf.Write(0, []byte("entry one\n")); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		fmt.Printf("crashing replica %d ...\n", i)
		if err := svc.CrashReplica("journal", i); err != nil {
			log.Fatal(err)
		}
		data, err := rf.Read(0, 64)
		if err != nil {
			log.Fatalf("read after crash: %v", err)
		}
		left, err := rf.Replicas()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  read still works (%q); %d replicas remain\n", string(data), left)
	}

	if err := svc.CrashReplica("journal", 2); err != nil {
		log.Fatal(err)
	}
	if _, err := rf.Read(0, 64); errors.Is(err, replicon.ErrNoReplicas) {
		fmt.Println("all replicas dead:", err)
	} else {
		log.Fatalf("expected ErrNoReplicas, got %v", err)
	}
}
