// Dynamic subcontract discovery demo (§6.2): a legacy program linked only
// with the singleton subcontract receives a replicated object. Its
// unmarshal code peeks at the subcontract identifier, misses in the
// registry, maps the identifier to "replicon.so" through a network name
// service, checks the trusted search path, "dynamically links" the
// library, and carries on — talking to a replicated object it was never
// compiled to understand.
//
//	go run ./examples/discovery
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/sctest"
	"repro/internal/subcontracts/replicon"
	"repro/internal/subcontracts/singleton"
)

func main() {
	k := kernel.New("machine")

	// The network name service mapping subcontract ids → library names.
	scmapEnv := core.NewEnv(k.NewDomain("scmap"))
	if err := singleton.Register(scmapEnv.Registry); err != nil {
		log.Fatal(err)
	}
	scmap := naming.NewSCMapServer(scmapEnv)
	scmap.Publish(replicon.SC.ID(), replicon.LibraryName)

	// The administrator installs replicon.so in a standard directory.
	store := core.NewLibraryStore()
	store.Install("/usr/lib/subcontracts", replicon.LibraryName, replicon.Register)

	// A replicated counter service.
	g := replicon.NewGroup()
	ctr := &sctest.Counter{}
	for i := 0; i < 2; i++ {
		renv := core.NewEnv(k.NewDomain("replica"))
		if err := replicon.Register(renv.Registry); err != nil {
			log.Fatal(err)
		}
		g.Join(renv, fmt.Sprintf("replica-%d", i), ctr.Skeleton())
	}
	expEnv := core.NewEnv(k.NewDomain("exporter"))
	if err := replicon.Register(expEnv.Registry); err != nil {
		log.Fatal(err)
	}
	obj := g.Export(expEnv, sctest.CounterMT)

	// The legacy client: linked with singleton ONLY.
	legacy := core.NewEnv(k.NewDomain("legacy-app"))
	if err := singleton.Register(legacy.Registry); err != nil {
		log.Fatal(err)
	}
	scmapObj, err := scmap.Object().Copy()
	if err != nil {
		log.Fatal(err)
	}
	buf := buffer.New(64)
	if err := scmapObj.Marshal(buf); err != nil {
		log.Fatal(err)
	}
	nameSvc, err := core.Unmarshal(legacy, naming.SCMapMT, buf)
	if err != nil {
		log.Fatal(err)
	}
	legacy.Registry.SetLoader(&core.Loader{
		Names:      naming.SCMapClient{Obj: nameSvc},
		Store:      store,
		SearchPath: []string{"/usr/lib/subcontracts"},
	})

	// Ship the replicated object to the legacy program.
	wire := buffer.New(128)
	if err := obj.Marshal(wire); err != nil {
		log.Fatal(err)
	}
	fmt.Println("legacy program linked with: singleton only")
	got, err := core.Unmarshal(legacy, sctest.CounterMT, wire)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received object via dynamically discovered subcontract %q\n", got.SC.Name())
	if v, err := sctest.Add(got, 5); err != nil || v != 5 {
		log.Fatalf("Add = %d, %v", v, err)
	}
	fmt.Println("invoked the replicated object: counter =", ctr.Value())
	_, misses, loads := legacy.Registry.Stats()
	fmt.Printf("registry: %d miss, %d dynamic load\n", misses, loads)

	// The security half: a library only present outside the trusted path
	// is refused.
	evilStore := core.NewLibraryStore()
	evilStore.Install("/home/mallory", replicon.LibraryName, replicon.Register)
	paranoid := core.NewEnv(k.NewDomain("paranoid-app"))
	if err := singleton.Register(paranoid.Registry); err != nil {
		log.Fatal(err)
	}
	paranoid.Registry.SetLoader(&core.Loader{
		Names:      core.NameServiceFunc(func(core.ID) (string, error) { return replicon.LibraryName, nil }),
		Store:      evilStore,
		SearchPath: []string{"/usr/lib/subcontracts"},
	})
	wire2 := buffer.New(128)
	cp, err := got.Copy()
	if err != nil {
		log.Fatal(err)
	}
	if err := cp.Marshal(wire2); err != nil {
		log.Fatal(err)
	}
	_, err = core.Unmarshal(paranoid, sctest.CounterMT, wire2)
	if errors.Is(err, core.ErrUntrustedLibrary) {
		fmt.Println("untrusted library correctly refused:", err)
	} else {
		log.Fatalf("expected refusal, got %v", err)
	}
}
