// Caching file system across two machines (§8.2, Figure 5): machine A
// serves cacheable files over real loopback TCP through the network door
// servers; the client on machine B transparently invokes through B's
// machine-local cache manager. Repeated reads never cross the wire.
//
//	go run ./examples/cachingfs
package main

import (
	"fmt"
	"log"

	"repro/internal/buffer"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netd"
	"repro/internal/subcontracts/caching"
)

// machine bundles one host's kernel, network door server, naming server
// and cache manager.
type machine struct {
	k   *kernel.Kernel
	net *netd.Server
	ns  *naming.Server
	mgr *cache.Manager
}

func newMachine(name string) *machine {
	k := kernel.New(name)
	srv, err := netd.Start(k.NewDomain(name+"-netd"), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	m := &machine{k: k, net: srv}
	m.ns = naming.NewServer(m.env(name + "-naming"))
	m.mgr = cache.NewManager(m.env(name + "-cachemgr"))
	cp, err := m.mgr.Object().Copy()
	if err != nil {
		log.Fatal(err)
	}
	h, err := m.ns.Handle()
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Bind("cachemgr", cp, false); err != nil {
		log.Fatal(err)
	}
	return m
}

// env creates a domain on m with the standard subcontract libraries and
// the machine-local naming context wired in.
func (m *machine) env(name string) *core.Env {
	e := core.NewEnv(m.k.NewDomain(name))
	if err := filesys.RegisterAll(e.Registry); err != nil {
		log.Fatal(err)
	}
	if m.ns != nil {
		cp, err := m.ns.Object().Copy()
		if err != nil {
			log.Fatal(err)
		}
		// Hand the context across domains the regular way.
		obj, err := transfer(cp, e, naming.ContextMT)
		if err != nil {
			log.Fatal(err)
		}
		e.Set(caching.LocalContextVar, obj)
	}
	return e
}

func transfer(obj *core.Object, dst *core.Env, mt *core.MTable) (*core.Object, error) {
	buf := buffer.New(64)
	if err := obj.Marshal(buf); err != nil {
		return nil, err
	}
	return core.Unmarshal(dst, mt, buf)
}

func main() {
	a := newMachine("A")
	b := newMachine("B")
	defer a.net.Close()
	defer b.net.Close()
	fmt.Printf("machine A at %s, machine B at %s\n", a.net.Addr(), b.net.Addr())

	// A caching file server on A, published as a bootstrap root.
	svc := filesys.NewCachingService(a.env("fileserver"), "cachemgr")
	a.net.PublishRoot("fs", svc.Object())

	// B fetches the file system object across the network.
	cli := b.env("client")
	fsObj, err := b.net.ImportRootObject(cli, a.net.Addr(), "fs", filesys.FileSystemMT)
	if err != nil {
		log.Fatal(err)
	}
	fs := filesys.FileSystem{Obj: fsObj}

	f, err := fs.Create("report.txt")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write(0, []byte("quarterly numbers: all of them excellent")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file object arrived on B via subcontract %q\n", f.Obj.SC.Name())

	for i := 1; i <= 5; i++ {
		data, err := f.Read(0, 17)
		if err != nil {
			log.Fatal(err)
		}
		s := b.mgr.Stats()
		fmt.Printf("read %d: %-20q  B-cache: %d hits / %d misses\n", i, string(data), s.Hits, s.Misses)
	}

	// Writes invalidate the local cache and reach the server.
	if _, err := f.Write(19, []byte("REDACTED")); err != nil {
		log.Fatal(err)
	}
	data, err := f.Read(0, 27)
	if err != nil {
		log.Fatal(err)
	}
	s := b.mgr.Stats()
	fmt.Printf("after write: %q  B-cache: %d invalidations\n", string(data), s.Invalidns)
}
