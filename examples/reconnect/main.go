// Crash recovery demo (§8.3): a file server keeps its state in stable
// storage; clients hold reconnectable_file objects. The server crashes and
// restarts mid-run — the client's next call quietly re-resolves the object
// name and retries, with no application-visible failure.
//
//	go run ./examples/reconnect
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/subcontracts/reconnectable"
)

func env(k *kernel.Kernel, name string) *core.Env {
	e := core.NewEnv(k.NewDomain(name))
	if err := filesys.RegisterAll(e.Registry); err != nil {
		log.Fatal(err)
	}
	return e
}

func transfer(obj *core.Object, dst *core.Env, mt *core.MTable) *core.Object {
	buf := buffer.New(64)
	if err := obj.Marshal(buf); err != nil {
		log.Fatal(err)
	}
	out, err := core.Unmarshal(dst, mt, buf)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func main() {
	k := kernel.New("machine")
	ns := naming.NewServer(env(k, "naming"))

	// The file server binds each file under a stable name in the context.
	srvEnv := env(k, "fileserver")
	srvCtxObj := transfer(mustCopy(ns.Object()), srvEnv, naming.ContextMT)
	svc := filesys.NewReconnectableService(srvEnv, naming.Context{Obj: srvCtxObj})

	// The client carries the same context in its environment, so its
	// reconnectable subcontract can re-resolve after a crash.
	cliEnv := env(k, "client")
	cliEnv.Set(reconnectable.ContextVar, transfer(mustCopy(ns.Object()), cliEnv, naming.ContextMT))
	cliEnv.Set(reconnectable.PolicyVar, &reconnectable.Policy{MaxAttempts: 100, Backoff: 2 * time.Millisecond})

	fs := filesys.FileSystem{Obj: transfer(mustCopy(svc.Object()), cliEnv, filesys.FileSystemMT)}

	f, err := fs.Create("ledger")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened %q via subcontract %q\n", "ledger", f.Obj.SC.Name())
	if _, err := f.Write(0, []byte("balance: 42")); err != nil {
		log.Fatal(err)
	}
	show := func(label string) {
		data, err := f.Read(0, 32)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%s: read %q\n", label, string(data))
	}
	show("before crash")

	fmt.Println("--- server crashes (all doors revoked) ---")
	svc.Crash()
	go func() {
		time.Sleep(20 * time.Millisecond)
		fmt.Println("--- server restarts from stable storage, rebinding names ---")
		if err := svc.Restart(); err != nil {
			log.Fatal(err)
		}
	}()

	// This call arrives during the outage; the subcontract retries the
	// name resolution until the restarted server rebinds.
	show("during restart window")
	show("after recovery")
}

func mustCopy(obj *core.Object) *core.Object {
	cp, err := obj.Copy()
	if err != nil {
		log.Fatal(err)
	}
	return cp
}
