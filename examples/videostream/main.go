// Live video demo (§8.4): the video subcontract encapsulates a private
// packet protocol for live frames underneath ordinary object invocation.
// Control operations (info/play/pause) travel over doors; frames ride a
// lossy datagram channel the subcontract negotiates at unmarshal time.
// The viewer detects wire loss through the protocol's sequence numbers.
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
	"repro/internal/subcontracts/video"
)

// Control interface: 0 info() -> fps; 1 play(); 2 pause().
const (
	opInfo core.OpNum = iota
	opPlay
	opPause
)

var streamMT = &core.MTable{
	Type:      "example.video_stream",
	DefaultSC: video.SC.ID(),
	Ops:       []string{"info", "play", "pause"},
}

func init() {
	core.MustRegisterType("example.video_stream", core.ObjectType)
	core.MustRegisterMTable(streamMT)
}

func controls(src *video.Source, fps uint32) stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		switch op {
		case opInfo:
			results.WriteUint32(fps)
			return nil
		case opPlay:
			src.SetPlaying(true)
			return nil
		case opPause:
			src.SetPlaying(false)
			return nil
		default:
			return stubs.ErrBadOp
		}
	})
}

func main() {
	k := kernel.New("machine")
	srvEnv := core.NewEnv(k.NewDomain("videoserver"))
	viewEnv := core.NewEnv(k.NewDomain("viewer"))
	for _, e := range []*core.Env{srvEnv, viewEnv} {
		if err := video.Register(e.Registry); err != nil {
			log.Fatal(err)
		}
	}
	// The viewer's link drops every 4th packet.
	viewEnv.Set(video.DropVar, 4)

	src := video.NewSource()
	obj, _ := video.Export(srvEnv, streamMT, controls(src, 24), src, nil)

	// Move the stream object to the viewer: unmarshal negotiates the
	// frame channel with the source behind the scenes.
	buf := buffer.New(64)
	if err := obj.Marshal(buf); err != nil {
		log.Fatal(err)
	}
	stream, err := core.Unmarshal(viewEnv, streamMT, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("viewer attached (subcontract %q, %d channel(s) at the source)\n",
		stream.SC.Name(), src.Attached())

	var fps uint32
	if err := stubs.Call(stream, opInfo, nil, func(b *buffer.Buffer) error {
		var err error
		fps, err = b.ReadUint32()
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream info: %d fps\n", fps)

	if err := stubs.Call(stream, opPlay, nil, nil); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		src.PushFrame([]byte(fmt.Sprintf("frame-%02d", i)))
	}

	received := 0
	for received < 9 { // 12 sent, every 4th dropped
		f, err := video.Receive(stream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  got seq=%2d  %s\n", f.Seq, f.Payload)
		received++
	}
	fmt.Printf("frames lost on the wire (detected by sequence gaps): %d\n", video.Lost(stream))

	if err := stubs.Call(stream, opPause, nil, nil); err != nil {
		log.Fatal(err)
	}
	src.PushFrame([]byte("after-pause")) // dropped at the source
	fmt.Println("paused; source no longer streams")
}
