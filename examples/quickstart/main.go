// Quickstart: define a service, export it through a subcontract, move the
// object to another domain, and invoke it — the minimum end-to-end tour
// of the subcontract machinery.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
	"repro/internal/subcontracts/simplex"
	"repro/internal/subcontracts/singleton"
)

// A one-operation greeter interface, with stubs written the way idlgen
// generates them (see internal/filesys for a fully generated service).
const opGreet core.OpNum = 0

var greeterMT = &core.MTable{
	Type:      "example.greeter",
	DefaultSC: singleton.SCID,
	Ops:       []string{"greet"},
}

func init() {
	core.MustRegisterType("example.greeter", core.ObjectType)
	core.MustRegisterMTable(greeterMT)
}

// greeterSkeleton is the server side: unmarshal arguments, call the
// application, marshal results.
func greeterSkeleton(banner string) stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		if op != opGreet {
			return stubs.ErrBadOp
		}
		who, err := args.ReadString()
		if err != nil {
			return err
		}
		results.WriteString(fmt.Sprintf("%s, %s!", banner, who))
		return nil
	})
}

// greet is the client stub.
func greet(obj *core.Object, who string) (string, error) {
	var out string
	err := stubs.Call(obj, opGreet,
		func(b *buffer.Buffer) error { b.WriteString(who); return nil },
		func(b *buffer.Buffer) error {
			var err error
			out, err = b.ReadString()
			return err
		})
	return out, err
}

func main() {
	// One machine, two address spaces.
	k := kernel.New("machine")
	server := core.NewEnv(k.NewDomain("server"))
	client := core.NewEnv(k.NewDomain("client"))
	for _, env := range []*core.Env{server, client} {
		if err := singleton.Register(env.Registry); err != nil {
			log.Fatal(err)
		}
		if err := simplex.Register(env.Registry); err != nil {
			log.Fatal(err)
		}
	}

	// The server plugs a method table, a subcontract, and its state into
	// a Spring object. With simplex, no kernel door exists yet: in-process
	// calls take the same-address-space fast path (§5.2.1).
	obj := simplex.Export(server, greeterMT, greeterSkeleton("Hello"), nil)
	msg, err := greet(obj, "local caller")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("in-process call:   ", msg)
	fmt.Println("door created yet?  ", simplex.HasDoor(obj))

	// Transmit the object to the client domain: the subcontract marshals
	// (creating the door on demand), the receiving side's unmarshal peeks
	// at the subcontract identifier and fabricates a matching object.
	buf := buffer.New(64)
	if err := obj.Marshal(buf); err != nil {
		log.Fatal(err)
	}
	remote, err := core.Unmarshal(client, greeterMT, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("object moved; subcontract on the client side:", remote.SC.Name())

	msg, err = greet(remote, "remote caller")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cross-domain call: ", msg)

	// Shallow copy, then consume both; the kernel notifies the server
	// when the last identifier dies (not shown: pass unref to Export).
	cp, err := remote.Copy()
	if err != nil {
		log.Fatal(err)
	}
	if msg, err = greet(cp, "copy holder"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("call via copy:     ", msg)
	if err := cp.Consume(); err != nil {
		log.Fatal(err)
	}
	if err := remote.Consume(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all identifiers consumed; object dead.")
}
