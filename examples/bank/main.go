// Atomic transactions demo (§8.4): two independent account servers, a
// transfer between them under a transaction. The transaction subcontract
// piggybacks the transaction identifier on every call and transparently
// enlists each touched server as a two-phase-commit participant — the
// account interface itself knows nothing about transactions.
//
//	go run ./examples/bank
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
	"repro/internal/subcontracts/txnsc"
	"repro/internal/txn"
)

// Account interface: 0 balance() -> i64; 1 deposit(i64); 2 withdraw(i64).
const (
	opBalance core.OpNum = iota
	opDeposit
	opWithdraw
)

var accountMT = &core.MTable{
	Type:      "example.account",
	DefaultSC: txnsc.SC.ID(),
	Ops:       []string{"balance", "deposit", "withdraw"},
}

func init() {
	core.MustRegisterType("example.account", core.ObjectType)
	core.MustRegisterMTable(accountMT)
}

// account is a transactional resource manager: in-transaction updates are
// staged and applied at commit; withdrawals are validated at prepare.
type account struct {
	mu      sync.Mutex
	name    string
	balance int64
	staged  map[txn.ID]int64 // pending delta per transaction
}

func newAccount(name string, opening int64) *account {
	return &account{name: name, balance: opening, staged: make(map[txn.ID]int64)}
}

// Prepare vetoes commits that would overdraw.
func (a *account) Prepare(id txn.ID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.balance+a.staged[id] < 0 {
		return fmt.Errorf("%s would be overdrawn", a.name)
	}
	return nil
}

// Commit applies the staged delta.
func (a *account) Commit(id txn.ID) {
	a.mu.Lock()
	a.balance += a.staged[id]
	delete(a.staged, id)
	a.mu.Unlock()
}

// Abort discards it.
func (a *account) Abort(id txn.ID) {
	a.mu.Lock()
	delete(a.staged, id)
	a.mu.Unlock()
}

func (a *account) skeleton() txnsc.Skeleton {
	return txnsc.SkeletonFunc(func(id txn.ID, op core.OpNum, args, results *buffer.Buffer) error {
		a.mu.Lock()
		defer a.mu.Unlock()
		switch op {
		case opBalance:
			results.WriteInt64(a.balance + a.staged[id])
			return nil
		case opDeposit:
			amt, err := args.ReadInt64()
			if err != nil {
				return err
			}
			if id == 0 {
				a.balance += amt
			} else {
				a.staged[id] += amt
			}
			return nil
		case opWithdraw:
			amt, err := args.ReadInt64()
			if err != nil {
				return err
			}
			if id == 0 {
				if a.balance < amt {
					return fmt.Errorf("%s: insufficient funds", a.name)
				}
				a.balance -= amt
			} else {
				a.staged[id] -= amt
			}
			return nil
		default:
			return stubs.ErrBadOp
		}
	})
}

// Client stubs.
func balance(obj *core.Object) int64 {
	var v int64
	if err := stubs.Call(obj, opBalance, nil, func(b *buffer.Buffer) error {
		var err error
		v, err = b.ReadInt64()
		return err
	}); err != nil {
		log.Fatal(err)
	}
	return v
}

func move(obj *core.Object, op core.OpNum, amt int64) error {
	return stubs.Call(obj, op, func(b *buffer.Buffer) error {
		b.WriteInt64(amt)
		return nil
	}, nil)
}

func main() {
	k := kernel.New("bank")
	coord := txn.NewCoordinator()

	export := func(a *account) *core.Object {
		env := core.NewEnv(k.NewDomain(a.name + "-server"))
		if err := txnsc.Register(env.Registry); err != nil {
			log.Fatal(err)
		}
		obj, _ := txnsc.Export(env, accountMT, a.skeleton(), a, coord, nil)
		return obj
	}
	alice := newAccount("alice", 100)
	bob := newAccount("bob", 20)

	client := core.NewEnv(k.NewDomain("teller"))
	if err := txnsc.Register(client.Registry); err != nil {
		log.Fatal(err)
	}
	transferTo := func(obj *core.Object) *core.Object {
		buf := buffer.New(64)
		if err := obj.Marshal(buf); err != nil {
			log.Fatal(err)
		}
		out, err := core.Unmarshal(client, accountMT, buf)
		if err != nil {
			log.Fatal(err)
		}
		return out
	}
	aliceObj := transferTo(export(alice))
	bobObj := transferTo(export(bob))

	fmt.Printf("opening balances: alice=%d bob=%d\n", balance(aliceObj), balance(bobObj))

	// A successful transfer: both movements commit atomically.
	t1 := coord.Begin()
	txnsc.With(client, t1)
	if err := move(aliceObj, opWithdraw, 30); err != nil {
		log.Fatal(err)
	}
	if err := move(bobObj, opDeposit, 30); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inside txn %d: alice=%d bob=%d (staged)\n", t1.ID(), balance(aliceObj), balance(bobObj))
	if err := t1.Commit(); err != nil {
		log.Fatal(err)
	}
	txnsc.Clear(client)
	fmt.Printf("after commit:     alice=%d bob=%d\n", balance(aliceObj), balance(bobObj))

	// An overdrawing transfer: alice's prepare vetoes, nothing applies.
	t2 := coord.Begin()
	txnsc.With(client, t2)
	if err := move(aliceObj, opWithdraw, 500); err != nil {
		log.Fatal(err)
	}
	if err := move(bobObj, opDeposit, 500); err != nil {
		log.Fatal(err)
	}
	err := t2.Commit()
	txnsc.Clear(client)
	if !errors.Is(err, txn.ErrAborted) {
		log.Fatalf("expected abort, got %v", err)
	}
	fmt.Printf("overdraw vetoed:  %v\n", err)
	fmt.Printf("after abort:      alice=%d bob=%d (unchanged)\n", balance(aliceObj), balance(bobObj))
}
