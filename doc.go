// Package repro is a from-scratch Go reproduction of "Subcontract: A
// Flexible Base for Distributed Programming" (Hamilton, Powell &
// Mitchell, Sun Microsystems Laboratories TR-93-13 / SOSP 1993).
//
// The paper's contribution — replaceable modules that control the basic
// mechanisms of object invocation and argument passing — lives in
// internal/core, with the substrate systems (door IPC kernel, network
// door servers, IDL compiler, naming service, cache manager, file system)
// in sibling internal packages. See DESIGN.md for the system inventory
// and per-experiment index, EXPERIMENTS.md for the measured results, and
// bench_test.go at this level for the experiment entry points.
package repro
