# Verification tiers. tier1 is the build gate; tier2 adds static
# analysis, the race detector (the scstats fast path and the netd
# forward/cancel select are the interesting surfaces), the fault
# suite — the liveness/partition tests under deterministic fault
# injection (internal/faultnet) — and a smoke pass over the E15/E16
# benchmark suites so they cannot silently rot.
.PHONY: all tier1 tier2 faults crash bench bench-quick bench-all gen obs

all: tier1 tier2

tier1:
	go build ./...
	go test ./...

tier2: faults crash bench-quick obs
	go vet ./...
	go test -race ./...

# The fault suite: partition, crash-recovery, lease-expiry, breaker and
# transport-tier (negotiation, fallback, bulk hand-off teardown) tests
# across netd and the subcontracts, under the race detector.
faults:
	go test -race -run 'Lease|Partition|Breaker|Fault|Sever|Truncat|Kill|Refus|Hung|Dead|Replay|Heartbeat|Reclaim|Negotiat|Fallback|Handoff|Teardown|Stripe' \
		./internal/faultnet/ ./internal/netd/ ./internal/integration/

# The E19 crash suite: SIGKILL the durable server mid-write-load and
# restart it against the same WAL directories and netd state file —
# same instance identity, no acked write lost, zero client-visible
# errors — plus the WAL/snapshot corruption property tests.
crash:
	go test -race -run 'KillRestart|RestartRecovers|RestartRejoins|StateFile|CorruptState|FirstBoot|WAL|Snapshot|SaveFile' \
		./internal/integration/ ./internal/netd/ ./internal/filesys/

# The E15/E18/E21 throughput sweeps (parallelism × payload, over
# loopback TCP, the same-machine transport tier, and the striped client
# engine) and the E16 local-path sweep (null door calls, refcount churn,
# cache-hit mixes), recorded as JSON. The netd sweep runs -count=3 and
# benchjson collapses the repeats to per-cell medians. Existing
# baselines in BENCH_netd.json / BENCH_cache.json are preserved, so
# each file carries before/after numbers across optimization PRs.
bench:
	go test -run NONE -bench 'E15|E18' -benchmem -benchtime 2s -count=3 . | tee /tmp/bench_netd.out
	go test -run NONE -bench 'E21' -benchmem -benchtime 1s -count=3 . | tee -a /tmp/bench_netd.out
	go run ./cmd/benchjson -experiment 'E15/E18/E21 netd throughput: loopback TCP vs same-machine tier vs striped client engine' \
		-note 'per-cell medians of 3 runs on a shared host; compare E18/E21 vs E15 within a run, and 64KiB cells against the baseline array; on a one-CPU host stripes>1 splits the writer batches without adding send capacity, so the S1 column is the fast one there — the stripe sweep is the artifact for multi-core hosts' \
		-o BENCH_netd.json < /tmp/bench_netd.out
	go test -run NONE -bench 'E16' -benchmem . | tee /tmp/bench_e16.out
	go run ./cmd/benchjson -experiment 'E16 lock-free local door path + scalable cache manager (intra-machine)' \
		-o BENCH_cache.json < /tmp/bench_e16.out
	go test -run NONE -bench 'E17|E22' -benchmem . | tee /tmp/bench_e17.out
	go run ./cmd/benchjson -experiment 'E17 tracing overhead + E22 always-on latency recording (off / sampled8 / timed / always, P1 and P64)' \
		-note 'E22 prices the v2 always-on histogram against the v1 1-in-8 sampler on the singleton echo; timed-vs-always isolates the record proper (budget 15ns, 0 allocs), and the always cells carry the measured window p50/p99/p999' \
		-o BENCH_trace.json < /tmp/bench_e17.out
	go test -run NONE -bench 'E19' -benchmem -benchtime 2s . | tee /tmp/bench_wal.out
	go run ./cmd/benchjson -experiment 'E19 durable writes: WAL group-commit batch-size sweep vs in-memory baseline' \
		-note 'fsync latency is the unit here and varies with the host disk; compare batch caps within a run' \
		-o BENCH_wal.json < /tmp/bench_wal.out
	go test -run NONE -bench 'E20' -benchmem -benchtime 2s . | tee /tmp/bench_dispatch.out
	go run ./cmd/benchjson -experiment 'E20 server-side dispatch: adaptive inline + sharded worker pool vs goroutine per call' \
		-note 'compare Engine/Queued/Spawn cells within one run; on a one-CPU host the P64 cells share one CPU ceiling and the dispatch win shows at P1/P8, where inline saves every handoff' \
		-o BENCH_dispatch.json < /tmp/bench_dispatch.out

# One-iteration smoke: the benchmarks still compile and run.
bench-quick:
	go test -run NONE -bench 'E15|E16|E17|E18|E19|E20|E21_Striped_S[28]_P8_0B|E21_MixedHoL|E22' -benchtime 1x .

bench-all:
	go test -bench=. -benchmem

gen:
	go run ./cmd/idlgen -package filesys -o internal/filesys/gen.go internal/filesys/filesys.idl

# Observability smoke: boot springfsd with the telemetry plane and
# every-call tracing, drive a traced write/read through fsh, then scrape
# /metrics (gauges + a histogram trace exemplar), /statz (a windowed
# delta with subcontract rows), and /healthz.
obs:
	go build -o /tmp/springfsd_obs ./cmd/springfsd
	go build -o /tmp/fsh_obs ./cmd/fsh
	/tmp/springfsd_obs -addr 127.0.0.1:17040 -telemetry 127.0.0.1:16060 -trace-sample 1 & \
	pid=$$!; \
	sleep 1; \
	ok=0; \
	/tmp/fsh_obs -server 127.0.0.1:17040 create obs-smoke >/dev/null && \
	/tmp/fsh_obs -server 127.0.0.1:17040 write obs-smoke "latency plane v2" >/dev/null && \
	/tmp/fsh_obs -server 127.0.0.1:17040 cat obs-smoke >/dev/null && \
	curl -sf http://127.0.0.1:16060/metrics | grep -q '^netd_conns_live' && \
	curl -sf http://127.0.0.1:16060/metrics | grep -q '^subcontract_calls_total' && \
	curl -sf http://127.0.0.1:16060/metrics | grep -q '# {trace_id=' && \
	curl -sf 'http://127.0.0.1:16060/statz?window=10s' | grep -q '"window_seconds"' && \
	curl -sf 'http://127.0.0.1:16060/statz?window=10s' | grep -q '"subcontracts"' && \
	curl -sf http://127.0.0.1:16060/healthz | grep -q '"status"' || ok=1; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -f /tmp/springfsd_obs /tmp/fsh_obs; \
	test $$ok -eq 0 && echo "obs smoke: ok"
