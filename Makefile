# Verification tiers. tier1 is the build gate; tier2 adds static
# analysis and the race detector (the scstats fast path and the netd
# forward/cancel select are the interesting surfaces).
.PHONY: all tier1 tier2 bench gen

all: tier1 tier2

tier1:
	go build ./...
	go test ./...

tier2:
	go vet ./...
	go test -race ./...

bench:
	go test -bench=. -benchmem

gen:
	go run ./cmd/idlgen -package filesys -o internal/filesys/gen.go internal/filesys/filesys.idl
