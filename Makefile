# Verification tiers. tier1 is the build gate; tier2 adds static
# analysis, the race detector (the scstats fast path and the netd
# forward/cancel select are the interesting surfaces), and the fault
# suite — the liveness/partition tests under deterministic fault
# injection (internal/faultnet).
.PHONY: all tier1 tier2 faults bench gen

all: tier1 tier2

tier1:
	go build ./...
	go test ./...

tier2: faults
	go vet ./...
	go test -race ./...

# The fault suite: partition, crash-recovery, lease-expiry and breaker
# tests across netd and the subcontracts, under the race detector.
faults:
	go test -race -run 'Lease|Partition|Breaker|Fault|Sever|Truncat|Kill|Refus|Hung|Dead|Replay|Heartbeat|Reclaim' \
		./internal/faultnet/ ./internal/netd/ ./internal/integration/

bench:
	go test -bench=. -benchmem

gen:
	go run ./cmd/idlgen -package filesys -o internal/filesys/gen.go internal/filesys/filesys.idl
