# Verification tiers. tier1 is the build gate; tier2 adds static
# analysis, the race detector (the scstats fast path and the netd
# forward/cancel select are the interesting surfaces), the fault
# suite — the liveness/partition tests under deterministic fault
# injection (internal/faultnet) — and a smoke pass over the E15/E16
# benchmark suites so they cannot silently rot.
.PHONY: all tier1 tier2 faults bench bench-quick bench-all gen

all: tier1 tier2

tier1:
	go build ./...
	go test ./...

tier2: faults bench-quick
	go vet ./...
	go test -race ./...

# The fault suite: partition, crash-recovery, lease-expiry and breaker
# tests across netd and the subcontracts, under the race detector.
faults:
	go test -race -run 'Lease|Partition|Breaker|Fault|Sever|Truncat|Kill|Refus|Hung|Dead|Replay|Heartbeat|Reclaim' \
		./internal/faultnet/ ./internal/netd/ ./internal/integration/

# The E15 throughput sweep (parallelism × payload over loopback TCP) and
# the E16 local-path sweep (null door calls, refcount churn, cache-hit
# mixes), recorded as JSON. Existing baselines in BENCH_netd.json /
# BENCH_cache.json are preserved, so each file carries before/after
# numbers across optimization PRs.
bench:
	go test -run NONE -bench 'E15' -benchmem . | tee /tmp/bench_e15.out
	go run ./cmd/benchjson -o BENCH_netd.json < /tmp/bench_e15.out
	go test -run NONE -bench 'E16' -benchmem . | tee /tmp/bench_e16.out
	go run ./cmd/benchjson -experiment 'E16 lock-free local door path + scalable cache manager (intra-machine)' \
		-o BENCH_cache.json < /tmp/bench_e16.out

# One-iteration smoke: the benchmarks still compile and run.
bench-quick:
	go test -run NONE -bench 'E15|E16' -benchtime 1x .

bench-all:
	go test -bench=. -benchmem

gen:
	go run ./cmd/idlgen -package filesys -o internal/filesys/gen.go internal/filesys/filesys.idl
