package sched

import (
	"sync"
	"testing"
)

func TestPriorityOrder(t *testing.T) {
	e := NewExecutor(1)
	defer e.Close()

	var mu sync.Mutex
	var order []int32

	gate := make(chan struct{})
	started := make(chan struct{})
	// Block the single worker so submissions queue up.
	if err := e.Submit(0, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	var wg sync.WaitGroup
	record := func(p int32) func() {
		return func() {
			mu.Lock()
			order = append(order, p)
			mu.Unlock()
			wg.Done()
		}
	}
	wg.Add(4)
	for _, p := range []int32{1, 2, 1, 10} {
		if err := e.Submit(p, record(p)); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	want := []int32{10, 2, 1, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	e := NewExecutor(1)
	defer e.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	if err := e.Submit(0, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	wg.Add(5)
	for i := 0; i < 5; i++ {
		i := i
		if err := e.Submit(3, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestRunWaits(t *testing.T) {
	e := NewExecutor(2)
	defer e.Close()
	done := false
	if err := e.Run(5, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Run returned before fn finished")
	}
}

func TestCloseDrains(t *testing.T) {
	e := NewExecutor(2)
	var mu sync.Mutex
	n := 0
	for i := 0; i < 50; i++ {
		if err := e.Submit(1, func() {
			mu.Lock()
			n++
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	mu.Lock()
	defer mu.Unlock()
	if n != 50 {
		t.Fatalf("drained %d of 50", n)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := NewExecutor(1)
	e.Close()
	if err := e.Submit(0, func() {}); err != ErrClosed {
		t.Fatalf("Submit after close = %v, want ErrClosed", err)
	}
	if err := e.Run(0, func() {}); err != ErrClosed {
		t.Fatalf("Run after close = %v, want ErrClosed", err)
	}
}

// Run's completion channel is pooled (the satellite fix riding E20):
// the steady-state allocation cost is the Submit closure pair, not a
// fresh channel per call.
func TestRunAllocs(t *testing.T) {
	e := NewExecutor(2)
	defer e.Close()
	if err := e.Run(0, func() {}); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := e.Run(1, func() {}); err != nil {
			t.Fatal(err)
		}
	})
	// Two closures (the user fn wrapper in Run, its capture) and the
	// queue item's amortized slot; a fresh channel per Run would push
	// this past 4.
	if allocs > 3 {
		t.Fatalf("Run allocates %.1f objects/op, want ≤ 3 (done channel must be pooled)", allocs)
	}
}

func TestQueued(t *testing.T) {
	e := NewExecutor(1)
	defer e.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := e.Submit(0, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 3; i++ {
		if err := e.Submit(0, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if q := e.Queued(); q != 3 {
		t.Fatalf("Queued = %d, want 3", q)
	}
	close(gate)
}
