// Package sched provides a priority-scheduled executor: the server-side
// substrate for the priority subcontract (§8.4), which transfers
// scheduling priority information between clients and servers for
// time-critical operations.
//
// Work submitted at a higher priority runs before lower-priority work;
// within a priority level execution is FIFO. Since E20 the executor is a
// thin veneer over the shared dispatch engine (internal/dispatch) — the
// same sharded worker pool the netd serve path and the kernel's
// unreferenced-notification drain run on — so the old global
// mutex + heap + sync.Cond is gone. A single-worker executor (what the
// priority conformance battery saturates) maps to a single-shard engine
// and keeps the exact strict ordering; wider executors relax global
// priority order to per-shard order with work stealing, which is the
// trade the pool makes for scalability.
package sched

import (
	"sync"

	"repro/internal/dispatch"
)

// ErrClosed is returned by Submit after Close. It is the dispatch
// engine's closed error, so errors.Is classification holds across both
// layers.
var ErrClosed = dispatch.ErrClosed

// Executor runs submitted work on a fixed pool of workers in priority
// order.
type Executor struct {
	eng *dispatch.Engine
}

// NewExecutor starts an executor with the given number of workers.
func NewExecutor(workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	return &Executor{eng: dispatch.New(dispatch.Config{Workers: workers})}
}

// Submit enqueues fn at the given priority.
func (e *Executor) Submit(prio int32, fn func()) error {
	return e.eng.Submit(prio, fn)
}

// donePool recycles Run's completion channels — a buffered channel is
// send/receive-paired rather than closed, so it comes back empty and
// reusable (the same trick as netd's pooled reply channels).
var donePool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// Run enqueues fn at prio and waits for it to finish.
func (e *Executor) Run(prio int32, fn func()) error {
	done := donePool.Get().(chan struct{})
	if err := e.eng.Submit(prio, func() {
		fn()
		done <- struct{}{}
	}); err != nil {
		donePool.Put(done)
		return err
	}
	<-done
	donePool.Put(done)
	return nil
}

// Queued reports the number of items waiting (not running).
func (e *Executor) Queued() int { return e.eng.Queued() }

// Close drains the queue and stops the workers, waiting for in-flight and
// queued work to finish.
func (e *Executor) Close() { e.eng.Close() }
