// Package sched provides a priority-scheduled executor: the server-side
// substrate for the priority subcontract (§8.4), which transfers
// scheduling priority information between clients and servers for
// time-critical operations.
//
// Work submitted at a higher priority runs before lower-priority work;
// within a priority level execution is FIFO.
package sched

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("sched: executor closed")

// item is one queued unit of work.
type item struct {
	prio int32
	seq  uint64
	run  func()
}

// queue implements heap.Interface: highest priority first, FIFO within a
// priority level.
type queue []item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio > q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x any)   { *q = append(*q, x.(item)) }
func (q *queue) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Executor runs submitted work on a fixed pool of workers in priority
// order.
type Executor struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      queue
	seq    uint64
	closed bool
	wg     sync.WaitGroup
}

// NewExecutor starts an executor with the given number of workers.
func NewExecutor(workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	e := &Executor{}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.q) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.q) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		it := heap.Pop(&e.q).(item)
		e.mu.Unlock()
		it.run()
	}
}

// Submit enqueues fn at the given priority.
func (e *Executor) Submit(prio int32, fn func()) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.seq++
	heap.Push(&e.q, item{prio: prio, seq: e.seq, run: fn})
	e.cond.Signal()
	return nil
}

// Run enqueues fn at prio and waits for it to finish.
func (e *Executor) Run(prio int32, fn func()) error {
	done := make(chan struct{})
	if err := e.Submit(prio, func() {
		defer close(done)
		fn()
	}); err != nil {
		return err
	}
	<-done
	return nil
}

// Queued reports the number of items waiting (not running).
func (e *Executor) Queued() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.q)
}

// Close drains the queue and stops the workers, waiting for in-flight and
// queued work to finish.
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}
