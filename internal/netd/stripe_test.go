package netd

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/kernel"
	"repro/internal/sctest"
)

// liveStripes counts the non-dead stripes srv holds toward addr.
func liveStripes(srv *Server, addr string) int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	ss, ok := srv.conns[addr]
	if !ok {
		return 0
	}
	n := 0
	for _, c := range ss.live() {
		if !c.isDead() {
			n++
		}
	}
	return n
}

func TestStripesShareOneSessionAndLease(t *testing.T) {
	// E21 satellite: N stripes to one peer are one session (the lease
	// identity is the peer process, not the socket) — sessions_live is
	// unchanged by striping while stripes_live counts the sockets.
	base := gStripes.Value()
	a := newMachineCfg(t, "A", quickCfg())
	cfgB := quickCfg()
	cfgB.Stripes = 4
	b := newMachineCfg(t, "B", cfgB)
	_, _, _ = exportCounter(t, a, "counter")

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}
	if got := liveStripes(b.srv, a.srv.Addr()); got != 4 {
		t.Fatalf("client holds %d live stripes, want 4", got)
	}
	if got := gStripes.Value() - base; got != 4 {
		t.Fatalf("netd.stripes_live rose by %d, want 4", got)
	}
	if got := a.srv.Sessions(); got != 1 {
		t.Fatalf("exporter sees %d sessions for 4 stripes, want 1", got)
	}
	// All four stripes must be bound to the one session on the exporter.
	a.srv.mu.Lock()
	var sessConns int
	for _, sess := range a.srv.sessions {
		sessConns = len(sess.conns)
	}
	a.srv.mu.Unlock()
	if sessConns != 4 {
		t.Fatalf("exporter session binds %d conns, want 4", sessConns)
	}
}

func TestStripePickRouting(t *testing.T) {
	// Unit coverage for the routing kernel: bulk traffic is steered to
	// the dedicated last stripe, small calls stay off it, and a dead
	// stripe is skipped in favor of any live one.
	s := &Server{}
	mk := func() *conn { return s.newConn(newDiscardConn()) }
	c0, c1, c2 := mk(), mk(), mk()
	t.Cleanup(func() {
		for _, c := range []*conn{c0, c1, c2} {
			c.fail(errConnDead)
		}
	})
	conns := []*conn{c0, c1, c2}
	ss := &stripeSet{addr: "x", want: 3}
	ss.conns.Store(&conns)

	if got := ss.pick(true); got != c2 {
		t.Fatal("bulk call not steered to the dedicated last stripe")
	}
	for i := 0; i < 64; i++ {
		if got := ss.pick(false); got == c2 {
			t.Fatal("small call routed onto the bulk stripe while others live")
		}
	}
	victim := ss.pick(false)
	victim.fail(errConnDead)
	if got := ss.pick(false); got == nil || got == victim || got.isDead() {
		t.Fatalf("pick did not skip the dead stripe (got %p, victim %p)", got, victim)
	}
	for _, c := range conns {
		c.fail(errConnDead)
	}
	if got := ss.pick(false); got != nil {
		t.Fatal("pick returned a conn from an all-dead set")
	}
}

func TestStripeKillSurvivorsServeAndHeal(t *testing.T) {
	// ISSUE 9 acceptance: faultnet kills one stripe under 64-goroutine
	// load — calls caught on the dead stripe fail retryable
	// (kernel.ErrCommFailure), the surviving stripes keep serving
	// without interruption, and the redial heals the set back to its
	// configured width.
	fn := faultnet.New()
	a := newMachineCfg(t, "A", quickCfg())
	cfgB := quickCfg()
	cfgB.Stripes = 3
	cfgB.Transport = FuncTransport{DialFunc: fn.Dialer(nil)}
	b := newMachineCfg(t, "B", cfgB)
	_, _, _ = exportCounter(t, a, "counter")

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if got := liveStripes(b.srv, a.srv.Addr()); got != 3 {
		t.Fatalf("client holds %d live stripes, want 3", got)
	}

	const callers = 64
	var (
		wg          sync.WaitGroup
		stop        = make(chan struct{})
		killed      = make(chan struct{})
		failedCalls atomic.Int64
		okAfterKill atomic.Int64
		badErr      atomic.Value // first wrongly-typed error, if any
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := sctest.Get(remote)
				if err != nil {
					// Every failure in this scenario must be in the
					// retryable communication class — that is the
					// subcontract-facing contract for a lost stripe.
					if !errors.Is(err, kernel.ErrCommFailure) || !core.Retryable(err) {
						badErr.CompareAndSwap(nil, err)
					}
					failedCalls.Add(1)
					continue
				}
				select {
				case <-killed:
					okAfterKill.Add(1)
				default:
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the load spread over the stripes
	if !fn.KillOne() {
		t.Fatal("no live wrapped conn to kill")
	}
	close(killed)
	waitFor(t, 2*time.Second, "survivor stripes serve after the kill", func() bool {
		return okAfterKill.Load() >= callers
	})
	waitFor(t, 3*time.Second, "stripe set heals to full width", func() bool {
		return liveStripes(b.srv, a.srv.Addr()) == 3
	})
	close(stop)
	wg.Wait()
	if e := badErr.Load(); e != nil {
		t.Fatalf("stripe loss produced a non-retryable/non-comm error: %v", e)
	}
	if got := a.srv.Sessions(); got != 1 {
		t.Fatalf("exporter sees %d sessions after heal, want 1", got)
	}
}
