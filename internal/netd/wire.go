package netd

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/kernel"
)

// Wire protocol. Every message is a length-prefixed frame:
//
//	frame:   [len u32] [payload]
//	hello:   [msgHello u8]   [instance u64] [epoch u64] [listenAddr string] [caps u32] [machine u64]
//	call:    [msgCall u8]    [reqID u64] [key u64] [ctx] [wirebuf]
//	reply:   [msgReply u8]   [reqID u64] [code u8] [wirebuf | errstring]
//	release: [msgRelease u8] [key u64] [count uvarint]
//	root:    [msgRoot u8]    [reqID u64] [name string]   (replied with msgReply)
//	ping:    [msgPing u8]                (answered with msgPong)
//	pong:    [msgPong u8]
//
// hello is the session handshake and MUST be each side's first frame:
// instance is the sending server's random per-process identity, epoch its
// per-connection counter, listenAddr its advertised address. The pair
// (instance, epoch) names one peer session; the receiving exporter tags
// every reference it hands this peer with the session, so that when the
// peer dies or partitions past the lease grace period the references can
// be reclaimed (see the package comment's failure semantics). caps and
// machine negotiate the transport tiers: a connection uses the
// intersection of the two advertised capability sets, and only between
// peers sharing a machine identity (the capabilities are same-machine
// tiers; a TCP-only or remote peer degrades gracefully to the plain
// frame stream). ping/pong are the heartbeat: a side that has sent
// nothing for a heartbeat interval pings, and any received frame counts
// as proof of peer life.
//
// ctx is the invocation-context header: one flags byte, then the
// remaining deadline budget and the trace identity, each present only
// when its flag bit is set — a context-free call pays a single zero byte.
// The deadline crosses the wire as a relative budget in nanoseconds, not
// an absolute time, so unsynchronized machine clocks cannot corrupt it;
// the receiving side rebases it onto its own clock (network transit time
// is charged to the caller's budget, which is the conservative choice).
// The trace identity is three words: the trace ID naming the end-to-end
// call tree, the current span ID (the client-side netd.send span, so
// server-side spans nest under the hop that carried them there), and that
// span's parent — see internal/trace.
//
//	ctx: [flags u8] [budget uvarint, ns]? ([trace u64] [span u64] [parent u64])?
//
// wirebuf is a flattened communication buffer: the byte stream followed by
// the door descriptors, in the FIFO order the doors were written:
//
//	wirebuf: [nbytes u32] [bytes] [ndoors uvarint] ndoors × [addr string][key u64]
//	bulk:    [bulkSentinel u32] [regionID u64] [ndoors uvarint] ...
//
// On a connection that negotiated CapBulkRegions, a payload of at least
// Config.BulkThreshold bytes does not ride the frame: it is granted to
// the transport's region ring under the connection's owner token, and
// the frame carries the region identifier behind the nbytes sentinel.
// The receiver maps the identifier (a one-shot redemption) and reads the
// payload in place through a region-backed buffer — the bytes cross the
// machine exactly once, at grant. Regions stranded by a connection death
// or an undeliverable reply are reclaimed by the teardown path.
//
// Door identifiers are mapped to this extended network form on export and
// back to (proxy) kernel doors on import, exactly the role of the Spring
// network servers (§3.3).
const (
	msgCall    = 1
	msgReply   = 2
	msgRelease = 3
	msgRoot    = 4
	msgHello   = 5
	msgPing    = 6
	msgPong    = 7
)

// Reply codes, classifying the outcome of a forwarded door call so the
// importing side can surface the same error class a local door would.
// codeDeadline and codeCancelled carry the context endings back as their
// typed errors: a deadline that expires on the server machine must look
// identical to one that expires locally.
const (
	codeOK        = 0
	codeRevoked   = 1
	codeBadKey    = 2
	codeError     = 3
	codeDeadline  = 4
	codeCancelled = 5
	// codeOverload reports the call was shed at admission: the server's
	// dispatch engine is at its in-flight bound and refused the call
	// without executing it. Surfaced as kernel.ErrOverload — retryable.
	codeOverload = 6
)

// ctx header flag bits.
const (
	ctxHasDeadline = 1 << 0
	ctxHasTrace    = 1 << 1
	ctxHasPriority = 1 << 2
)

// putInfoHeader writes the invocation-context header for info.
func putInfoHeader(out *buffer.Buffer, info *kernel.Info) {
	var flags byte
	var budget time.Duration
	if info != nil {
		if rem, ok := info.Remaining(); ok {
			flags |= ctxHasDeadline
			if rem < 0 {
				rem = 0
			}
			budget = rem
		}
		if info.Trace != 0 && !info.Spec {
			// Speculative tail-capture traces stay on-process: the
			// slow-or-not bet is settled client-side, and the server has
			// no buffer to settle against (see internal/trace tail.go).
			flags |= ctxHasTrace
		}
		if info.Priority != 0 {
			flags |= ctxHasPriority
		}
	}
	out.WriteByte(flags)
	if flags&ctxHasDeadline != 0 {
		out.WriteUvarint(uint64(budget))
	}
	if flags&ctxHasTrace != 0 {
		out.WriteUint64(info.Trace)
		out.WriteUint64(info.Span)
		out.WriteUint64(info.Parent)
	}
	if flags&ctxHasPriority != 0 {
		// Zig-zag-free: the int32 rides as its uint32 bit pattern, so
		// negative priorities survive the uvarint.
		out.WriteUvarint(uint64(uint32(info.Priority)))
	}
}

// getInfoHeader reads the invocation-context header, rebasing the budget
// onto this machine's clock. It returns nil for a context-free call.
func getInfoHeader(in *buffer.Buffer) (*kernel.Info, error) {
	flags, err := in.ReadByte()
	if err != nil {
		return nil, err
	}
	if flags == 0 {
		return nil, nil
	}
	info := &kernel.Info{}
	if flags&ctxHasDeadline != 0 {
		budget, err := in.ReadUvarint()
		if err != nil {
			return nil, err
		}
		info.Deadline = time.Now().Add(time.Duration(budget))
	}
	if flags&ctxHasTrace != 0 {
		if info.Trace, err = in.ReadUint64(); err != nil {
			return nil, err
		}
		if info.Span, err = in.ReadUint64(); err != nil {
			return nil, err
		}
		if info.Parent, err = in.ReadUint64(); err != nil {
			return nil, err
		}
	}
	if flags&ctxHasPriority != 0 {
		p, err := in.ReadUvarint()
		if err != nil {
			return nil, err
		}
		info.Priority = int32(uint32(p))
	}
	return info, nil
}

// maxFrame bounds a frame's size as a defence against corrupt peers.
const maxFrame = 64 << 20

// stagePool recycles the arrays that stage caller-owned payloads into
// bulk grants (putWireBuffer's copy path). It is deliberately separate
// from the buffer package's shared storage pool: the staging arrays are
// payload-sized and demanded once per bulk call, and in the shared pool
// they were drained by the frame-assembly re-arm paths faster than the
// grant hooks returned them, costing a fresh zeroed allocation per call.
// Entries keep their capacity; one too small for a request is dropped
// (the workload's payload size moved up), and arrays beyond maxStageCap
// go to the collector rather than pinning memory, mirroring buffer.Put.
var stagePool sync.Pool

const maxStageCap = 256 << 10

func getStage(n int) []byte {
	if v := stagePool.Get(); v != nil {
		if s := *(v.(*[]byte)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]byte, n)
}

func putStage(p []byte) {
	if cap(p) == 0 || cap(p) > maxStageCap {
		return
	}
	p = p[:0]
	stagePool.Put(&p)
}

// bulkSentinel marks a wirebuf whose payload travels as a region grant
// rather than inline bytes. Inline payloads are bounded by maxFrame, far
// below it, so the values cannot collide.
const bulkSentinel = ^uint32(0)

// descriptor is a door identifier's extended network form.
type descriptor struct {
	Addr string
	Key  uint64
}

// writeFrame sends one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netd: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// bulkEligible reports whether buf's payload would be handed over as a
// region on c rather than copied into the frame.
func (s *Server) bulkEligible(c *conn, buf *buffer.Buffer) bool {
	return s.mapper != nil && c != nil && buf != nil &&
		buf.Size() >= s.cfg.BulkThreshold && c.bulk()
}

// putWireBuffer flattens buf into out, converting its door references to
// descriptors through the exporting server. The door references are
// consumed (transferred to the wire); each exported reference is tagged
// with the session of the connection it ships over, so it can be
// reclaimed if that peer's lease expires.
//
// On a bulk-negotiated connection a large payload is granted as a region
// instead of riding the frame, and owned picks the hand-over discipline.
// owned declares that buf's storage belongs outright to this server — a
// reply about to be discarded — so the storage is detached into the grant
// with no copy, and the receiver's release recycles it. Every other
// payload is staged through a pooled copy the receiver then owns: a
// forwarded request's arguments belong to the caller, and a retrying
// subcontract resends — and, once an attempt succeeds, recycles — the
// same marshalled arguments while an abandoned attempt's grant may still
// be in the ring or mapped by a slow server, so aliasing them would race
// the server's read against the pool's reuse; a region-backed payload (a
// preamble pool's) may likewise recycle its bytes the moment the call
// returns.
func (s *Server) putWireBuffer(out *buffer.Buffer, buf *buffer.Buffer, c *conn, owned bool) error {
	var regionID uint64
	granted := false
	if s.bulkEligible(c, buf) {
		var region *buffer.Region
		if owned {
			if data, ok := buf.Detach(); ok {
				region = buffer.NewRegion(data, func() { buffer.Recycle(data) })
			}
		}
		if region == nil {
			data := getStage(buf.Size())
			copy(data, buf.Bytes())
			region = buffer.NewRegion(data, func() { putStage(data) })
		}
		regionID = s.mapper.GrantRegion(c.owner, region)
		granted = true
		out.WriteUint32(bulkSentinel)
		out.WriteUint64(regionID)
	} else {
		out.WriteUint32(uint32(len(buf.Bytes())))
		out.WriteRaw(buf.Bytes())
	}
	doors := buf.TakeDoors()
	out.WriteUvarint(uint64(len(doors)))
	for _, slot := range doors {
		desc, err := s.exportSlot(slot, c)
		if err != nil {
			// The frame will never be sent; pull the grant back out of the
			// ring so the region (and its storage) is not stranded until
			// the connection dies.
			if granted {
				if reg, e := s.mapper.MapRegion(regionID); e == nil {
					reg.Release()
				}
			}
			return err
		}
		out.WriteString(desc.Addr)
		out.WriteUint64(desc.Key)
	}
	return nil
}

// getWireBuffer reconstitutes a communication buffer from the wire,
// fabricating proxy doors for the received descriptors.
func (s *Server) getWireBuffer(in *buffer.Buffer) (*buffer.Buffer, error) {
	n, err := in.ReadUint32()
	if err != nil {
		return nil, err
	}
	var bytes []byte
	var region *buffer.Region
	// A region mapped here is consumed from the ring; if decoding fails
	// past that point nothing else will ever release it, so every later
	// error return goes through fail (Release is nil-safe, so inline
	// payloads pass through untouched).
	fail := func(err error) (*buffer.Buffer, error) {
		region.Release()
		return nil, err
	}
	if n == bulkSentinel {
		id, err := in.ReadUint64()
		if err != nil {
			return nil, err
		}
		if s.mapper == nil {
			return nil, commErr("bulk region %d from a peer but no region tier configured", id)
		}
		region, err = s.mapper.MapRegion(id)
		if err != nil {
			// The grant was reclaimed out from under us — the granting
			// connection died mid-hand-off. Transport-level, retryable.
			return nil, commErr("map bulk region %d: %v", id, err)
		}
		bytes = region.Data
	} else {
		// The returned buffer aliases the frame's bytes rather than
		// copying them: the frame was allocated by readFrame for this
		// message alone, and it stays reachable exactly as long as the
		// buffer does.
		bytes, err = in.ReadRaw(int(n))
		if err != nil {
			return nil, err
		}
	}
	nd, err := in.ReadUvarint()
	if err != nil {
		return fail(err)
	}
	doors := make([]buffer.Door, 0, nd)
	for i := uint64(0); i < nd; i++ {
		addr, err := in.ReadString()
		if err != nil {
			return fail(err)
		}
		key, err := in.ReadUint64()
		if err != nil {
			return fail(err)
		}
		ref, err := s.importDesc(descriptor{Addr: addr, Key: key})
		if err != nil {
			return fail(err)
		}
		doors = append(doors, ref)
	}
	if region != nil {
		return buffer.FromRegion(region, doors), nil
	}
	return buffer.FromParts(bytes, doors), nil
}

// dropWireRegion releases the bulk region an undeliverable wirebuf
// carries, if any. in must be positioned at the wirebuf; inline payloads
// and malformed remains are left alone (the frame is garbage either
// way). Without this, a caller abandoning its reply (timeout,
// cancellation) would strand the reply's region in the ring until the
// whole connection died.
func (s *Server) dropWireRegion(in *buffer.Buffer) {
	n, err := in.ReadUint32()
	if err != nil || n != bulkSentinel || s.mapper == nil {
		return
	}
	id, err := in.ReadUint64()
	if err != nil {
		return
	}
	if reg, err := s.mapper.MapRegion(id); err == nil {
		reg.Release()
	}
}
