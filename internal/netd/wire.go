package netd

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/buffer"
	"repro/internal/kernel"
)

// Wire protocol. Every message is a length-prefixed frame:
//
//	frame:   [len u32] [payload]
//	hello:   [msgHello u8]   [instance u64] [epoch u64] [listenAddr string]
//	call:    [msgCall u8]    [reqID u64] [key u64] [ctx] [wirebuf]
//	reply:   [msgReply u8]   [reqID u64] [code u8] [wirebuf | errstring]
//	release: [msgRelease u8] [key u64] [count uvarint]
//	root:    [msgRoot u8]    [reqID u64] [name string]   (replied with msgReply)
//	ping:    [msgPing u8]                (answered with msgPong)
//	pong:    [msgPong u8]
//
// hello is the session handshake and MUST be each side's first frame:
// instance is the sending server's random per-process identity, epoch its
// per-connection counter, listenAddr its advertised address. The pair
// (instance, epoch) names one peer session; the receiving exporter tags
// every reference it hands this peer with the session, so that when the
// peer dies or partitions past the lease grace period the references can
// be reclaimed (see the package comment's failure semantics). ping/pong
// are the heartbeat: a side that has sent nothing for a heartbeat
// interval pings, and any received frame counts as proof of peer life.
//
// ctx is the invocation-context header: one flags byte, then the
// remaining deadline budget and the trace identity, each present only
// when its flag bit is set — a context-free call pays a single zero byte.
// The deadline crosses the wire as a relative budget in nanoseconds, not
// an absolute time, so unsynchronized machine clocks cannot corrupt it;
// the receiving side rebases it onto its own clock (network transit time
// is charged to the caller's budget, which is the conservative choice).
// The trace identity is three words: the trace ID naming the end-to-end
// call tree, the current span ID (the client-side netd.send span, so
// server-side spans nest under the hop that carried them there), and that
// span's parent — see internal/trace.
//
//	ctx: [flags u8] [budget uvarint, ns]? ([trace u64] [span u64] [parent u64])?
//
// wirebuf is a flattened communication buffer: the byte stream followed by
// the door descriptors, in the FIFO order the doors were written:
//
//	wirebuf: [nbytes u32] [bytes] [ndoors uvarint] ndoors × [addr string][key u64]
//
// Door identifiers are mapped to this extended network form on export and
// back to (proxy) kernel doors on import, exactly the role of the Spring
// network servers (§3.3).
const (
	msgCall    = 1
	msgReply   = 2
	msgRelease = 3
	msgRoot    = 4
	msgHello   = 5
	msgPing    = 6
	msgPong    = 7
)

// Reply codes, classifying the outcome of a forwarded door call so the
// importing side can surface the same error class a local door would.
// codeDeadline and codeCancelled carry the context endings back as their
// typed errors: a deadline that expires on the server machine must look
// identical to one that expires locally.
const (
	codeOK        = 0
	codeRevoked   = 1
	codeBadKey    = 2
	codeError     = 3
	codeDeadline  = 4
	codeCancelled = 5
)

// ctx header flag bits.
const (
	ctxHasDeadline = 1 << 0
	ctxHasTrace    = 1 << 1
)

// putInfoHeader writes the invocation-context header for info.
func putInfoHeader(out *buffer.Buffer, info *kernel.Info) {
	var flags byte
	var budget time.Duration
	if info != nil {
		if rem, ok := info.Remaining(); ok {
			flags |= ctxHasDeadline
			if rem < 0 {
				rem = 0
			}
			budget = rem
		}
		if info.Trace != 0 {
			flags |= ctxHasTrace
		}
	}
	out.WriteByte(flags)
	if flags&ctxHasDeadline != 0 {
		out.WriteUvarint(uint64(budget))
	}
	if flags&ctxHasTrace != 0 {
		out.WriteUint64(info.Trace)
		out.WriteUint64(info.Span)
		out.WriteUint64(info.Parent)
	}
}

// getInfoHeader reads the invocation-context header, rebasing the budget
// onto this machine's clock. It returns nil for a context-free call.
func getInfoHeader(in *buffer.Buffer) (*kernel.Info, error) {
	flags, err := in.ReadByte()
	if err != nil {
		return nil, err
	}
	if flags == 0 {
		return nil, nil
	}
	info := &kernel.Info{}
	if flags&ctxHasDeadline != 0 {
		budget, err := in.ReadUvarint()
		if err != nil {
			return nil, err
		}
		info.Deadline = time.Now().Add(time.Duration(budget))
	}
	if flags&ctxHasTrace != 0 {
		if info.Trace, err = in.ReadUint64(); err != nil {
			return nil, err
		}
		if info.Span, err = in.ReadUint64(); err != nil {
			return nil, err
		}
		if info.Parent, err = in.ReadUint64(); err != nil {
			return nil, err
		}
	}
	return info, nil
}

// maxFrame bounds a frame's size as a defence against corrupt peers.
const maxFrame = 64 << 20

// descriptor is a door identifier's extended network form.
type descriptor struct {
	Addr string
	Key  uint64
}

// writeFrame sends one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netd: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// putWireBuffer flattens buf into out, converting its door references to
// descriptors through the exporting server. The door references are
// consumed (transferred to the wire); each exported reference is tagged
// with the session of the connection it ships over, so it can be
// reclaimed if that peer's lease expires.
func (s *Server) putWireBuffer(out *buffer.Buffer, buf *buffer.Buffer, c *conn) error {
	out.WriteUint32(uint32(len(buf.Bytes())))
	out.WriteRaw(buf.Bytes())
	doors := buf.TakeDoors()
	out.WriteUvarint(uint64(len(doors)))
	for _, slot := range doors {
		desc, err := s.exportSlot(slot, c)
		if err != nil {
			return err
		}
		out.WriteString(desc.Addr)
		out.WriteUint64(desc.Key)
	}
	return nil
}

// getWireBuffer reconstitutes a communication buffer from the wire,
// fabricating proxy doors for the received descriptors.
func (s *Server) getWireBuffer(in *buffer.Buffer) (*buffer.Buffer, error) {
	n, err := in.ReadUint32()
	if err != nil {
		return nil, err
	}
	// The returned buffer aliases the frame's bytes rather than copying
	// them: the frame was allocated by readFrame for this message alone,
	// and it stays reachable exactly as long as the buffer does.
	bytes, err := in.ReadRaw(int(n))
	if err != nil {
		return nil, err
	}
	nd, err := in.ReadUvarint()
	if err != nil {
		return nil, err
	}
	doors := make([]buffer.Door, 0, nd)
	for i := uint64(0); i < nd; i++ {
		addr, err := in.ReadString()
		if err != nil {
			return nil, err
		}
		key, err := in.ReadUint64()
		if err != nil {
			return nil, err
		}
		ref, err := s.importDesc(descriptor{Addr: addr, Key: key})
		if err != nil {
			return nil, err
		}
		doors = append(doors, ref)
	}
	return buffer.FromParts(bytes, doors), nil
}

// dialer abstracts net.Dial for tests.
type dialer func(addr string) (net.Conn, error)

func tcpDial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
