package netd

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain audits the package for goroutine leaks: every server a test
// starts is torn down by its cleanup, so once the suite ends the
// goroutine count must return to (about) the pre-suite baseline. The
// slack absorbs runtime helpers and stragglers mid-exit (timer reapers,
// dial reapers inside their timeout); a leaked writer/reader/sweeper
// per test would blow well past it.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		const slack = 12
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > baseline+slack {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				fmt.Fprintf(os.Stderr, "netd: goroutine leak: %d live after tests (baseline %d, slack %d)\n%s\n",
					runtime.NumGoroutine(), baseline, slack, buf[:n])
				code = 1
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	os.Exit(code)
}
