package netd

import (
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/scstats"
)

// This file is the peer-liveness and failure-containment layer: sessions
// and leases on the exporter side, and the per-address circuit breaker,
// proxy poisoning and release-replay queue on the importer side. It sits
// below the subcontracts, so every subcontract — reconnectable, replicon,
// caching — inherits the same failure semantics from the network door
// servers, exactly where RAFDA and the ODP channel-objects work argue
// distribution failure policy belongs.

// Liveness gauges, exposed through the scstats text exposition
// (springfsd -scstats). Levels (conns/sessions/exports live, releases
// queued) move both ways; the rest are monotonic event counts.
var (
	gConns            = scstats.GaugeFor("netd.conns_live")
	gStripes          = scstats.GaugeFor("netd.stripes_live")
	gSessions         = scstats.GaugeFor("netd.sessions_live")
	gExports          = scstats.GaugeFor("netd.exports_live")
	gLeasesExpired    = scstats.GaugeFor("netd.leases_expired")
	gRefsReclaimed    = scstats.GaugeFor("netd.refs_reclaimed")
	gBreakerOpened    = scstats.GaugeFor("netd.breaker_opened")
	gBreakerClosed    = scstats.GaugeFor("netd.breaker_closed")
	gReleasesQueued   = scstats.GaugeFor("netd.releases_queued")
	gReleasesReplayed = scstats.GaugeFor("netd.releases_replayed")
)

// Data-path gauges (E15): the frames currently queued behind connection
// writers, and the flush/coalescing counters whose ratio is the mean
// frames-per-write the batching achieves.
var (
	gSendQueueDepth  = scstats.GaugeFor("netd.sendq_depth")
	gFlushes         = scstats.GaugeFor("netd.flushes")
	gFramesCoalesced = scstats.GaugeFor("netd.frames_coalesced")
)

// Bulk-region gauges (E18): hand-offs granted and mapped on the
// same-machine tier, regions currently in flight, and regions reclaimed
// by connection teardown (a kill mid-hand-off shows up here).
var (
	gBulkGranted     = scstats.GaugeFor("netd.bulk_granted")
	gBulkMapped      = scstats.GaugeFor("netd.bulk_mapped")
	gBulkRegionsLive = scstats.GaugeFor("netd.bulk_regions_live")
	gBulkReclaimed   = scstats.GaugeFor("netd.bulk_reclaimed")
)

// session is one remote peer's lease on this exporter: every reference
// handed to the peer is recorded here, and reclaimed in one sweep if the
// peer stays gone past the lease grace period. Sessions are keyed by the
// peer's random per-process instance identity, so a peer that redials
// (same process, new TCP connection) keeps its references, while a peer
// that restarts presents a new instance and the old session ages out.
type session struct {
	peer      uint64         // remote instance identity (from its hello)
	epoch     uint64         // remote's connection epoch at the latest hello
	addr      string         // remote's advertised listen address ("" if none)
	refs      map[uint64]int // export key → references held by this peer
	conns     map[*conn]struct{}
	hb        *conn     // designated heartbeat stripe (E21); nil until a hello
	downSince time.Time // zero while at least one connection is live
	expired   bool      // set when the lease lapses; rejects late exports
}

// peerState is the importer-side view of one remote address: the dial
// circuit breaker, the import epoch used to poison proxy doors once our
// lease there must be presumed lost, and the queue of release messages
// waiting for the peer to come back.
type peerState struct {
	addr string

	// Circuit breaker. After a failed dial the breaker opens for an
	// exponentially growing period; when the period lapses a single
	// half-open probe dial is allowed, and its outcome closes or
	// re-opens the breaker. While open, calls fail in O(1) instead of
	// each paying the dial timeout.
	state     int // breakerClosed | breakerOpen | breakerHalfOpen
	backoff   time.Duration
	openUntil time.Time
	probing   bool

	// Lease-loss containment. downSince is set when the last connection
	// to the address dies; once it exceeds the lease grace period the
	// exporter must be presumed to have reclaimed our references, so the
	// import epoch is bumped — poisoning every proxy door minted under
	// the old epoch — and the queued releases are dropped as moot.
	// epoch is atomic so proxy doors can check poisoning without taking
	// s.mu on every forwarded call (peerState pointers are stable: the
	// peers map only grows).
	epoch     atomic.Uint64
	downSince time.Time
	lapsed    bool
	queue     []pendingRelease

	// red is the per-peer RED block (rate/errors/duration histogram),
	// interned once here so the forward path records without a lookup.
	red *scstats.PeerStats
}

type pendingRelease struct {
	key   uint64
	count int
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// maxQueuedReleases bounds one peer's replay queue; beyond it further
// releases are dropped (the exporter's own lease grace bounds the leak).
const maxQueuedReleases = 4096

// peerLocked returns (creating if needed) the state block for addr.
// Callers hold s.mu.
func (s *Server) peerLocked(addr string) *peerState {
	p, ok := s.peers[addr]
	if !ok {
		p = &peerState{addr: addr, red: scstats.PeerFor(addr)}
		s.peers[addr] = p
	}
	return p
}

// breakerFailLocked records a failed dial: open the breaker with
// exponential backoff. Callers hold s.mu.
func (s *Server) breakerFailLocked(p *peerState) {
	p.probing = false
	if p.backoff == 0 {
		p.backoff = s.cfg.BreakerBackoff
	} else {
		p.backoff *= 2
		if p.backoff > s.cfg.BreakerMaxBackoff {
			p.backoff = s.cfg.BreakerMaxBackoff
		}
	}
	p.openUntil = time.Now().Add(p.backoff)
	if p.state != breakerOpen {
		gBreakerOpened.Add(1)
	}
	p.state = breakerOpen
}

// breakerOKLocked records a successful dial+handshake: close the breaker
// and clear the disconnection clock (we reconnected within grace, or the
// epoch was already bumped and new imports start fresh). Callers hold
// s.mu.
func (s *Server) breakerOKLocked(p *peerState) {
	p.probing = false
	if p.state != breakerClosed {
		gBreakerClosed.Add(1)
	}
	p.state = breakerClosed
	p.backoff = 0
	p.downSince = time.Time{}
	p.lapsed = false
}

// breakerAdmitLocked decides whether a dial to p may proceed now. It
// returns false while the breaker is open or another probe is in flight.
// Callers hold s.mu; on true the caller must report the dial's outcome
// via breakerOKLocked / breakerFailLocked.
func (s *Server) breakerAdmitLocked(p *peerState, now time.Time) bool {
	switch p.state {
	case breakerOpen:
		if now.Before(p.openUntil) {
			return false
		}
		p.state = breakerHalfOpen
		p.probing = true
		return true
	case breakerHalfOpen:
		if p.probing {
			return false
		}
		p.probing = true
		return true
	default:
		return true
	}
}

// handleHello binds a connection to its peer session on receipt of the
// handshake frame. A reconnecting peer (same instance) rejoins its
// existing session, clearing the lease-expiry clock. The peer's
// advertised capabilities are intersected with ours — and zeroed unless
// the peer shares our machine identity, since every capability is a
// same-machine tier — to fix the connection's negotiated tier set.
func (s *Server) handleHello(c *conn, instance, epoch uint64, listenAddr string, peerCaps uint32, peerMachine uint64) {
	negotiated := s.caps & Capability(peerCaps)
	if peerMachine != machineID {
		negotiated = 0
	}
	s.mu.Lock()
	if s.closed || c.helloDone {
		s.mu.Unlock()
		return
	}
	c.caps.Store(uint32(negotiated))
	sess, ok := s.sessions[instance]
	if !ok {
		sess = &session{
			peer:  instance,
			refs:  make(map[uint64]int),
			conns: make(map[*conn]struct{}),
		}
		s.sessions[instance] = sess
		gSessions.Add(1)
	}
	sess.epoch = epoch
	if listenAddr != "" {
		sess.addr = listenAddr
	}
	sess.conns[c] = struct{}{}
	if sess.hb == nil || sess.hb.isDead() {
		sess.hb = c // heartbeats for the whole stripe set ride this conn
	}
	sess.downSince = time.Time{}
	s.markDirtyLocked()
	c.mu.Lock() // s.mu → c.mu, the order getConn uses via isDead
	c.sess = sess
	c.peerAddr = listenAddr
	c.helloDone = true
	c.mu.Unlock()
	s.mu.Unlock()
	close(c.helloed)
}

// sendHello sends this server's handshake frame on c, advertising the
// transport's capability set and this process's machine identity.
func (s *Server) sendHello(c *conn, epoch uint64) error {
	payload := buffer.Get(64)
	payload.WriteByte(msgHello)
	payload.WriteUint64(s.instance)
	payload.WriteUint64(epoch)
	payload.WriteString(s.addr)
	payload.WriteUint32(uint32(s.caps))
	payload.WriteUint64(machineID)
	return c.send(payload)
}

// connClosed is the single teardown path for a connection, run when its
// read loop exits for any reason (EOF, error, heartbeat kill, Close). It
// wakes pending calls, prunes the dial pool so the next call redials
// instead of using a dead connection, detaches the session (starting its
// lease-expiry clock if this was the last connection), and starts the
// importer-side disconnection clock for the peer's address.
func (s *Server) connClosed(c *conn, addr string) {
	c.fail(commErr("connection lost"))
	s.mu.Lock()
	if addr != "" {
		if ss, ok := s.conns[addr]; ok {
			if ss.remove(c) {
				ss.counted--
				gStripes.Add(-1)
			}
			// A lost stripe degrades the set; healAt=0 makes the very next
			// call's slow-path visit redial the missing width.
			ss.degraded.Store(true)
			ss.healAt.Store(0)
			if len(ss.live()) == 0 {
				delete(s.conns, addr)
				s.connCache.Delete(addr)
				gStripes.Add(int64(-ss.counted)) // residue from publish races
				ss.counted = 0
			}
		}
	}
	if _, ok := s.allConns[c]; ok {
		delete(s.allConns, c)
		gConns.Add(-1)
	}
	if sess := c.sess; sess != nil {
		delete(sess.conns, c)
		if sess.hb == c {
			sess.hb = nil
			for sc := range sess.conns {
				if !sc.isDead() {
					sess.hb = sc // hand the heartbeat duty to a survivor
					break
				}
			}
		}
		if len(sess.conns) == 0 && sess.downSince.IsZero() {
			sess.downSince = time.Now()
		}
	}
	pa := c.peerAddr
	if pa == "" {
		pa = addr
	}
	if pa != "" {
		down := true
		if ss, ok := s.conns[pa]; ok {
			for _, lc := range ss.live() {
				if lc != c && !lc.isDead() {
					down = false // a surviving stripe keeps the peer up
					break
				}
			}
		}
		if down {
			p := s.peerLocked(pa)
			if p.downSince.IsZero() {
				p.downSince = time.Now()
			}
		}
	}
	s.mu.Unlock()
	// Reclaim the bulk regions this connection granted but whose frames
	// never completed the hand-off: the peer can no longer map them (a
	// map racing this reclaim either wins the grant or fails the call in
	// the retryable class), so releasing here is what keeps a kill
	// mid-hand-off from leaking mapped regions.
	if s.mapper != nil {
		if n := s.mapper.Reclaim(c.owner); n > 0 {
			gBulkReclaimed.Add(int64(n))
		}
	}
	_ = c.netc.Close()
}

// sweeper is the liveness clock: it sends heartbeats, kills connections
// whose peers have been silent past the grace period (partition
// detection — TCP alone never notices a silent peer), expires leases of
// peers gone past grace (reclaiming their references and firing the
// unreferenced cascade), poisons imports whose exporter-side lease must
// be presumed lost, and replays queued release messages.
func (s *Server) sweeper() {
	defer s.wg.Done()
	tick := s.cfg.HeartbeatInterval / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		s.heartbeat(now)
		s.expireLeases(now)
		s.expireImports(now)
		s.replayQueued()
		s.flushState()
	}
}

// heartbeat pings connections idle on the send side and kills those
// silent on the receive side past the grace period. Stripes share their
// session's liveness clock: silence is judged on the session's freshest
// receive across all stripes (an idle non-lead stripe is not a dead
// peer), and only the designated heartbeat stripe — or a sessionless
// conn still mid-handshake — sends pings.
func (s *Server) heartbeat(now time.Time) {
	type hbConn struct {
		c    *conn
		sess *session
		lead bool
	}
	s.mu.Lock()
	conns := make([]hbConn, 0, len(s.allConns))
	sessRecv := make(map[*session]int64, len(s.sessions))
	for c := range s.allConns {
		sess := c.sess
		lead := sess == nil || sess.hb == nil || sess.hb == c
		conns = append(conns, hbConn{c: c, sess: sess, lead: lead})
		if sess != nil {
			if r := c.lastRecv.Load(); r > sessRecv[sess] {
				sessRecv[sess] = r
			}
		}
	}
	s.mu.Unlock()
	for _, hc := range conns {
		c := hc.c
		recv := c.lastRecv.Load()
		if hc.sess != nil {
			recv = sessRecv[hc.sess]
		}
		silent := now.Sub(time.Unix(0, recv))
		if silent > s.cfg.LeaseGrace {
			c.fail(commErr("peer silent for %v (heartbeat grace %v)", silent.Round(time.Millisecond), s.cfg.LeaseGrace))
			continue
		}
		if !hc.lead {
			continue
		}
		idle := now.Sub(time.Unix(0, c.lastSend.Load()))
		if idle >= s.cfg.HeartbeatInterval && c.pinging.CompareAndSwap(false, true) {
			// Off the sweeper goroutine: enqueueing can block behind a
			// stalled socket write, and the sweeper must keep serving
			// the other connections' liveness clocks.
			go func(c *conn) {
				defer c.pinging.Store(false)
				ping := buffer.Get(1)
				ping.WriteByte(msgPing)
				_ = c.send(ping)
			}(c)
		}
	}
}

// expireLeases reclaims the references of peers whose sessions have had
// no connection for longer than the lease grace period. Reclamation is
// exactly equivalent to the peer having released every identifier it
// held: export entries drain and unreferenced notifications fire, so
// servers (a file server's per-open state, a proxy door mid-chain)
// clean up as if the remote identifiers had been deleted.
func (s *Server) expireLeases(now time.Time) {
	s.mu.Lock()
	for instance, sess := range s.sessions {
		if len(sess.conns) != 0 || sess.downSince.IsZero() || now.Sub(sess.downSince) <= s.cfg.LeaseGrace {
			continue
		}
		delete(s.sessions, instance)
		sess.expired = true
		gSessions.Add(-1)
		gLeasesExpired.Add(1)
		reclaimed := 0
		for key, n := range sess.refs {
			reclaimed += n
			s.dropSessionRefsLocked(key, sess)
		}
		gRefsReclaimed.Add(int64(reclaimed))
		s.markDirtyLocked()
	}
	s.mu.Unlock()
}

// dropSessionRefsLocked removes every reference sess holds on key,
// deleting the export entry when no session holds it any longer.
// Callers hold s.mu.
func (s *Server) dropSessionRefsLocked(key uint64, sess *session) {
	e, ok := s.exports[key]
	if !ok {
		return
	}
	delete(e.held, sess)
	if len(e.held) == 0 {
		s.removeExportLocked(key, e)
	}
}

// expireImports bumps the import epoch for addresses unreachable past
// the grace period: the exporter there must be presumed to have
// reclaimed our references, so proxy doors minted under the old epoch
// are poisoned (they fail fast, in the retryable class) and queued
// releases for them are dropped as moot.
func (s *Server) expireImports(now time.Time) {
	s.mu.Lock()
	for _, p := range s.peers {
		if p.lapsed || p.downSince.IsZero() || now.Sub(p.downSince) <= s.cfg.LeaseGrace {
			continue
		}
		p.lapsed = true
		p.epoch.Add(1)
		if n := len(p.queue); n > 0 {
			p.queue = nil
			gReleasesQueued.Add(int64(-n))
		}
	}
	s.mu.Unlock()
}

// replayQueued retries queued release messages toward peers that are
// reachable again. Dials are breaker-guarded, so a dead peer costs one
// backed-off probe per open period, not a dial per sweep.
func (s *Server) replayQueued() {
	s.mu.Lock()
	var addrs []string
	for addr, p := range s.peers {
		if len(p.queue) > 0 && !p.lapsed {
			addrs = append(addrs, addr)
		}
	}
	s.mu.Unlock()
	for _, addr := range addrs {
		c, err := s.getConn(addr, false)
		if err != nil {
			continue
		}
		s.flushReleases(c, addr)
	}
}

// queueReleaseLocked enqueues a release for replay. Callers hold s.mu.
func (s *Server) queueReleaseLocked(p *peerState, key uint64, count int) {
	if len(p.queue) >= maxQueuedReleases {
		return // bounded; the exporter's lease grace caps the leak anyway
	}
	p.queue = append(p.queue, pendingRelease{key: key, count: count})
	gReleasesQueued.Add(1)
}

// flushReleases replays addr's queued releases over c, requeueing the
// remainder if the connection fails mid-flush.
func (s *Server) flushReleases(c *conn, addr string) {
	s.mu.Lock()
	p := s.peerLocked(addr)
	q := p.queue
	p.queue = nil
	s.mu.Unlock()
	for i, r := range q {
		payload := buffer.Get(32)
		payload.WriteByte(msgRelease)
		payload.WriteUint64(r.key)
		payload.WriteUvarint(uint64(r.count))
		rel := r
		err := c.sendDrop(payload, func() {
			// The frame was queued but the connection died before it
			// was flushed: put the release back unless the import epoch
			// already lapsed (then it is moot).
			s.mu.Lock()
			if !s.closed && !p.lapsed {
				s.queueReleaseLocked(p, rel.key, rel.count)
			}
			s.mu.Unlock()
		})
		if err != nil {
			s.mu.Lock()
			p.queue = append(q[i:], p.queue...)
			s.mu.Unlock()
			return
		}
		gReleasesQueued.Add(-1)
		gReleasesReplayed.Add(1)
	}
}

// Sessions reports the number of live peer sessions (observability).
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
