package netd

import (
	"errors"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// TestDeadlineBoundsForward proves the deadline interrupts a hung remote
// call mid-flight: the proxy door's forward wait is bounded by the
// remaining budget, not by the server coming back.
func TestDeadlineBoundsForward(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) })
	hang := stubsSkeleton(func() { <-gate })
	obj, _ := singleton.Export(a.env, sctest.CounterMT, hang, nil)
	a.srv.PublishRoot("hang", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "hang", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = sctest.Get(remote, core.WithTimeout(50*time.Millisecond))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("hung call with deadline = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline return took %v", elapsed)
	}
	if core.Retryable(err) {
		t.Fatal("deadline ending classified retryable")
	}
}

// TestCancelAbortsForward proves closing the cancellation channel wakes a
// blocked forward immediately.
func TestCancelAbortsForward(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) })
	hang := stubsSkeleton(func() { <-gate })
	obj, _ := singleton.Export(a.env, sctest.CounterMT, hang, nil)
	a.srv.PublishRoot("hang", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "hang", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := sctest.Get(remote, core.WithCancel(cancel))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call reach the wire
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, core.ErrCancelled) {
			t.Fatalf("cancelled call = %v, want ErrCancelled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not wake the forwarded call")
	}
}

// TestExpiredDeadlineFailsBeforeSend proves an already-expired context
// never reaches the wire: it fails fast at the stub layer.
func TestExpiredDeadlineFailsBeforeSend(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), nil)
	a.srv.PublishRoot("counter", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	_, err = sctest.Get(remote, core.WithDeadline(time.Now().Add(-time.Second)))
	if !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("expired-deadline call = %v, want ErrDeadlineExceeded", err)
	}
	if ctr.Calls() != 0 {
		t.Fatalf("expired call reached the server (%d calls)", ctr.Calls())
	}
}

// infoSkel records the invocation context the server side observed.
type infoSkel struct {
	budget chan time.Duration
	trace  chan uint64
}

func (s *infoSkel) Dispatch(op core.OpNum, args, results *buffer.Buffer) error {
	return s.DispatchInfo(op, args, results, nil)
}

func (s *infoSkel) DispatchInfo(op core.OpNum, args, results *buffer.Buffer, info *kernel.Info) error {
	if rem, ok := info.Remaining(); ok {
		s.budget <- rem
	} else {
		s.budget <- 0
	}
	if info != nil {
		s.trace <- info.Trace
	} else {
		s.trace <- 0
	}
	results.WriteInt64(0)
	return nil
}

var _ stubs.InfoSkeleton = (*infoSkel)(nil)

// TestServerInheritsBudgetAndTrace proves the wire header delivers the
// remaining deadline budget and the trace identifier to the server-side
// skeleton on the other machine.
func TestServerInheritsBudgetAndTrace(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	skel := &infoSkel{budget: make(chan time.Duration, 1), trace: make(chan uint64, 1)}
	obj, _ := singleton.Export(a.env, sctest.CounterMT, skel, nil)
	a.srv.PublishRoot("probe", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "probe", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 5 * time.Second
	if _, err := sctest.Get(remote, core.WithTimeout(budget), core.WithTrace(0xfeed)); err != nil {
		t.Fatal(err)
	}
	got := <-skel.budget
	if got <= 0 || got > budget {
		t.Fatalf("server-side remaining budget = %v, want in (0, %v]", got, budget)
	}
	if tr := <-skel.trace; tr != 0xfeed {
		t.Fatalf("server-side trace = %#x, want 0xfeed", tr)
	}
}

// TestContextFreeCallStillWorks pins the compact header's zero-flag path.
func TestContextFreeCallStillWorks(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), nil)
	a.srv.PublishRoot("counter", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Add(remote, 7); err != nil || v != 7 {
		t.Fatalf("context-free cross-machine Add = %d, %v", v, err)
	}
}
