package netd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/kernel"
)

// This file is the durable half of the liveness layer (E19): a server
// started with a state file persists its session/lease table and its
// labeled exports, and a restarted server rejoins the network under its
// old per-process instance identity. Peers that reconnect within the
// lease grace period rejoin their old sessions — their hellos carry the
// same instance the restored table is keyed by — so references survive
// the restart and proxy doors held remotely keep working, provided the
// restarted server can rebind each labeled export key to an equivalent
// door (the Rebinder's job). Unlabeled exports (per-open file doors and
// other transient state) are deliberately not recovered: calls on them
// fail with kernel.ErrBadHandle, which is retryable, and the
// reconnectable/replicon subcontracts re-resolve.
//
// The state file is advisory, not a log: it is rewritten atomically by
// the liveness sweeper whenever the table is dirty, so after a crash it
// may be one sweep tick stale. The loss window is bounded by keySlack —
// a restarted server skips far past the persisted key counter, so a key
// handed out inside the window can never be reassigned to a different
// door; a stale key fails cleanly instead of aliasing.

// keySlack is how far past the persisted next-key counter a restarted
// server resumes. The state file may be up to one sweep tick stale, so
// keys minted inside that window were never persisted; skipping the
// slack guarantees they are never reissued for a different door.
const keySlack = 1 << 20

// persistedRef is one export key held by a session, with its count.
type persistedRef struct {
	Key   uint64 `json:"key"`
	Count int    `json:"count"`
}

// persistedSession is one peer's lease as written to the state file.
type persistedSession struct {
	Instance uint64         `json:"instance"`
	Epoch    uint64         `json:"epoch"`
	Addr     string         `json:"addr,omitempty"`
	Refs     []persistedRef `json:"refs,omitempty"`
}

// persistedExport is one labeled export table entry.
type persistedExport struct {
	Key   uint64 `json:"key"`
	Label string `json:"label"`
}

// persistedState is the state file's JSON schema.
type persistedState struct {
	Instance uint64             `json:"instance"`
	NextKey  uint64             `json:"next_key"`
	Exports  []persistedExport  `json:"exports,omitempty"`
	Sessions []persistedSession `json:"sessions,omitempty"`
}

// markDirtyLocked flags the persisted tables as changed; the sweeper
// flushes on its next tick. Callers hold s.mu. A no-op without a state
// file.
func (s *Server) markDirtyLocked() {
	if s.cfg.StateFile != "" {
		s.stateDirty = true
	}
}

// captureStateLocked snapshots the durable subset of the server's
// tables: the instance identity, the key counter, labeled exports, and
// every session's refcounts on labeled keys. Callers hold s.mu.
func (s *Server) captureStateLocked() *persistedState {
	ps := &persistedState{Instance: s.instance, NextKey: s.nextKey}
	for key, label := range s.labels {
		ps.Exports = append(ps.Exports, persistedExport{Key: key, Label: label})
	}
	for _, sess := range s.sessions {
		p := persistedSession{Instance: sess.peer, Epoch: sess.epoch, Addr: sess.addr}
		for key, n := range sess.refs {
			if _, labeled := s.labels[key]; labeled {
				p.Refs = append(p.Refs, persistedRef{Key: key, Count: n})
			}
		}
		ps.Sessions = append(ps.Sessions, p)
	}
	return ps
}

// flushState writes the state file if the tables changed since the last
// flush. Called by the sweeper each tick and by Close; a write failure
// leaves the dirty flag set so the next tick retries.
func (s *Server) flushState() {
	s.mu.Lock()
	if s.cfg.StateFile == "" || !s.stateDirty || s.closed {
		s.mu.Unlock()
		return
	}
	s.stateDirty = false
	ps := s.captureStateLocked()
	path := s.cfg.StateFile
	s.mu.Unlock()
	data, err := json.Marshal(ps)
	if err == nil {
		err = writeStateFileAtomic(path, data)
	}
	if err != nil {
		s.mu.Lock()
		s.stateDirty = true
		s.mu.Unlock()
	}
}

// writeStateFileAtomic writes data to path crash-safely: temp file in
// the same directory, fsync, rename over the target, directory fsync. A
// crash at any point leaves either the old file or the new one, never a
// torn mix.
func writeStateFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".netd-state-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// loadState restores the persisted tables into a freshly constructed
// server. Called from Start before any goroutine runs, so no locking is
// needed. A missing state file is a first boot; a corrupt one is an
// error — silently minting a fresh identity would strand every peer's
// references until their leases lapse, which is exactly what the state
// file exists to avoid.
func (s *Server) loadState() error {
	data, err := os.ReadFile(s.cfg.StateFile)
	if os.IsNotExist(err) {
		s.stateDirty = true // persist the fresh identity promptly
		return nil
	}
	if err != nil {
		return fmt.Errorf("netd: read state file: %w", err)
	}
	var ps persistedState
	if err := json.Unmarshal(data, &ps); err != nil {
		return fmt.Errorf("netd: corrupt state file %s: %w", s.cfg.StateFile, err)
	}
	s.instance = ps.Instance
	if ps.NextKey >= s.nextKey {
		s.nextKey = ps.NextKey + keySlack
	}
	now := time.Now()
	for _, p := range ps.Sessions {
		sess := &session{
			peer:  p.Instance,
			epoch: p.Epoch,
			addr:  p.Addr,
			refs:  make(map[uint64]int),
			conns: make(map[*conn]struct{}),
			// The peer is disconnected until it redials; its lease clock
			// starts at restart, giving it a full grace period to return.
			downSince: now,
		}
		for _, r := range p.Refs {
			if r.Count > 0 {
				sess.refs[r.Key] = r.Count
			}
		}
		s.sessions[p.Instance] = sess
		gSessions.Add(1)
	}
	for _, pe := range ps.Exports {
		if s.cfg.Rebinder == nil {
			break
		}
		ref, ok := s.cfg.Rebinder(pe.Label)
		if !ok {
			continue // the labeled object no longer exists; stale keys fail cleanly
		}
		held := make(map[*session]int)
		for _, sess := range s.sessions {
			if n := sess.refs[pe.Key]; n > 0 {
				held[sess] = n
			}
		}
		if len(held) == 0 {
			ref.Release() // no peer holds it; nothing to rebind for
			continue
		}
		doorID := ref.DoorID()
		ist := &dispatch.InlineState{}
		if ref.InlineHint() {
			ist.Promote()
		}
		s.exports[pe.Key] = &exportEntry{h: s.dom.AdoptRef(ref), held: held, inline: ist}
		s.byDoor[doorID] = pe.Key
		s.labels[pe.Key] = pe.Label
		gExports.Add(1)
	}
	// Refs to keys that were not rebound are dead: drop them so the
	// session tables agree with the export table.
	for _, sess := range s.sessions {
		for key := range sess.refs {
			if _, ok := s.exports[key]; !ok {
				delete(sess.refs, key)
			}
		}
	}
	s.stateDirty = true
	return nil
}

// LabelDoor assigns a stable label to the door behind ref, so that if
// this server persists its state and restarts, the Rebinder can
// reattach the same export key to an equivalent door. ref is borrowed:
// LabelDoor does not take ownership. Doors labeled before they are
// first exported are remembered and labeled at export time.
func (s *Server) LabelDoor(ref kernel.Ref, label string) {
	if !ref.Valid() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if key, ok := s.byDoor[ref.DoorID()]; ok {
		s.labels[key] = label
		s.markDirtyLocked()
		return
	}
	s.pendingLabels[ref.DoorID()] = label
}

// RootRebinder builds a Rebinder resolving the "root:<name>/<i>" labels
// the server assigns automatically to doors marshalled through published
// bootstrap roots: it re-marshals the named root and picks out door i.
// Compose it with service-specific label families:
//
//	rebind := netd.RootRebinder(roots)
//	netd.WithRebinder(func(label string) (kernel.Ref, bool) {
//	        if ref, ok := rebind(label); ok { return ref, true }
//	        return myServiceRebind(label)
//	})
func RootRebinder(roots map[string]*core.Object) func(string) (kernel.Ref, bool) {
	return func(label string) (kernel.Ref, bool) {
		rest, ok := strings.CutPrefix(label, "root:")
		if !ok {
			return kernel.Ref{}, false
		}
		slash := strings.LastIndex(rest, "/")
		if slash < 0 {
			return kernel.Ref{}, false
		}
		name := rest[:slash]
		i, err := strconv.Atoi(rest[slash+1:])
		if err != nil || i < 0 {
			return kernel.Ref{}, false
		}
		obj, ok := roots[name]
		if !ok {
			return kernel.Ref{}, false
		}
		tmp := buffer.New(64)
		if err := obj.MarshalCopy(tmp); err != nil {
			return kernel.Ref{}, false
		}
		doors := tmp.TakeDoors()
		var out kernel.Ref
		found := false
		for j, d := range doors {
			ref, isRef := d.(kernel.Ref)
			if !isRef {
				continue
			}
			if j == i && !found {
				out = ref
				found = true
			} else {
				ref.Release()
			}
		}
		return out, found
	}
}

// labelRootDoorsLocked assigns "root:<name>/<i>" labels to the doors a
// published root marshalled into a reply, so RootRebinder can rebind
// them after a restart. Callers hold s.mu.
func (s *Server) labelRootDoorsLocked(name string, doors []buffer.Door) {
	for i, d := range doors {
		if ref, ok := d.(kernel.Ref); ok && ref.Valid() {
			if key, exported := s.byDoor[ref.DoorID()]; exported {
				s.labels[key] = fmt.Sprintf("root:%s/%d", name, i)
				s.markDirtyLocked()
			} else {
				s.pendingLabels[ref.DoorID()] = fmt.Sprintf("root:%s/%d", name, i)
			}
		}
	}
}
