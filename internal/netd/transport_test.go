package netd

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// Tests for the transport tier redesign: per-address capability
// negotiation at hello, the same-machine unix+region tier, graceful
// fallback to TCP against a peer lacking a tier, and region reclamation
// when a transport is torn down mid-hand-off.

// newSameMachine starts a machine whose server listens on a unix domain
// socket and advertises the bulk-region tier. extra overlays fields on
// the transport config (Transport is always SameMachine).
func newSameMachine(t *testing.T, name string, extra Config) *machine {
	t.Helper()
	extra.Transport = SameMachine()
	k := kernel.New(name)
	srv, err := Start(k.NewDomain(name+"-netd"), "unix:"+t.TempDir()+"/nd.sock", With(extra))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	env, err := sctest.NewEnv(k, name+"-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	return &machine{k: k, srv: srv, env: env}
}

// bigPayload is comfortably above the default BulkThreshold, with
// content that would expose any aliasing or cross-delivery corruption.
func bigPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 7)
	}
	return p
}

func TestSameMachineNegotiatesBulkHandoff(t *testing.T) {
	granted0, mapped0 := gBulkGranted.Value(), gBulkMapped.Value()
	live0 := sharedRing.live()

	a := newSameMachine(t, "A", Config{})
	b := newSameMachine(t, "B", Config{})
	if !strings.HasPrefix(a.srv.Addr(), "unix:") {
		t.Fatalf("unix listener advertises %q, want a unix: address", a.srv.Addr())
	}

	obj, _ := singleton.Export(a.env, stressEchoMT, echoSkel(), nil)
	a.srv.PublishRoot("echo", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "echo", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}

	// A small call stays inline: the bulk tier must not tax it.
	if err := echoBytes(remote, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if d := gBulkGranted.Value() - granted0; d != 0 {
		t.Fatalf("small call granted %d bulk regions, want 0", d)
	}

	// A large call rides regions both ways: request and reply each cross
	// as one grant, mapped exactly once, leaving nothing in the ring.
	if err := echoBytes(remote, bigPayload(64<<10)); err != nil {
		t.Fatal(err)
	}
	granted, mapped := gBulkGranted.Value()-granted0, gBulkMapped.Value()-mapped0
	if granted != 2 || mapped != granted {
		t.Fatalf("64KiB echo: granted=%d mapped=%d, want granted=2 and mapped=granted", granted, mapped)
	}
	if live := sharedRing.live(); live != live0 {
		t.Fatalf("ring holds %d grants after delivered calls, want %d", live, live0)
	}
}

func TestMixedCapabilityPeersFallbackToTCP(t *testing.T) {
	granted0 := gBulkGranted.Value()

	// A advertises the bulk tier on a TCP address; B is plain TCP. The
	// hello intersection must come up empty and every payload — however
	// large — ride the frame stream.
	k := kernel.New("A")
	srv, err := Start(k.NewDomain("A-netd"), "127.0.0.1:0", WithTransport(SameMachine()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	envA, err := sctest.NewEnv(k, "A-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	a := &machine{k: k, srv: srv, env: envA}
	b := newMachine(t, "B")

	obj, _ := singleton.Export(a.env, stressEchoMT, echoSkel(), nil)
	a.srv.PublishRoot("echo", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "echo", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := echoBytes(remote, bigPayload(64<<10)); err != nil {
		t.Fatalf("large call against a TCP-only peer: %v", err)
	}
	if d := gBulkGranted.Value() - granted0; d != 0 {
		t.Fatalf("mixed-capability pair granted %d regions, want 0 (TCP fallback)", d)
	}
}

func TestTransportTeardownMidCallSurfacesCommFailure(t *testing.T) {
	a := newSameMachine(t, "A", Config{})
	b := newSameMachine(t, "B", Config{})

	// A server that hangs until the transport under the call is gone.
	entered := make(chan struct{})
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) })
	hang := stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		close(entered)
		<-gate
		return nil
	})
	obj, _ := singleton.Export(a.env, stressEchoMT, hang, nil)
	a.srv.PublishRoot("hang", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "hang", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		errc <- stubs.Call(remote, 0, nil, nil)
	}()
	<-entered
	a.srv.Close() // tear the whole transport down under the in-flight call

	select {
	case err := <-errc:
		if !errors.Is(err, kernel.ErrCommFailure) {
			t.Fatalf("call across torn-down transport = %v, want kernel.ErrCommFailure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("call hung after transport teardown")
	}
}

func TestFaultnetKillDuringBulkHandoffReclaimsRegion(t *testing.T) {
	reclaimed0 := gBulkReclaimed.Value()
	live0 := sharedRing.live()

	// B dials through faultnet over the same-machine tier: the wrapped
	// funcs carry the faults, Inner keeps the capability set and mapper.
	fn := faultnet.New()
	sm := SameMachine()
	a := newSameMachine(t, "A", Config{})
	cfgB := Config{
		Transport:         FuncTransport{DialFunc: fn.Dialer(sm.Dial), Inner: sm},
		HeartbeatInterval: time.Minute, // no ping may steal the one-shot truncation
	}
	k := kernel.New("B")
	srv, err := Start(k.NewDomain("B-netd"), "unix:"+t.TempDir()+"/nd.sock", With(cfgB))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	envB, err := sctest.NewEnv(k, "B-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	b := &machine{k: k, srv: srv, env: envB}

	obj, _ := singleton.Export(a.env, stressEchoMT, echoSkel(), nil)
	a.srv.PublishRoot("echo", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "echo", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := echoBytes(remote, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	// Kill the connection in the middle of a bulk hand-off: the request's
	// region is granted to the ring, then the carrying frame is truncated
	// on the wire and the connection hard-closed. The peer never maps the
	// grant; connection teardown must reclaim it.
	fn.TruncateNextWrite()
	err = echoBytes(remote, bigPayload(64<<10))
	if !errors.Is(err, kernel.ErrCommFailure) {
		t.Fatalf("call over killed hand-off = %v, want kernel.ErrCommFailure", err)
	}
	waitFor(t, 5*time.Second, "stranded region reclaimed", func() bool {
		return gBulkReclaimed.Value() > reclaimed0 && sharedRing.live() == live0
	})

	// The tier must still work after the redial.
	if err := echoBytes(remote, bigPayload(64<<10)); err != nil {
		t.Fatalf("bulk call after recovery: %v", err)
	}
}

func TestAbandonedBulkReplyReclaimed(t *testing.T) {
	mapped0 := gBulkMapped.Value()
	live0 := sharedRing.live()

	a := newSameMachine(t, "A", Config{})
	b := newSameMachine(t, "B", Config{CallTimeout: 150 * time.Millisecond})

	// The server stalls until the caller has given up, then returns a
	// bulk-sized reply. No waiter remains to map the region: the receive
	// loop must redeem and release the orphan grant itself.
	gate := make(chan struct{})
	big := bigPayload(64 << 10)
	slow := stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		<-gate
		results.WriteBytes(big)
		return nil
	})
	obj, _ := singleton.Export(a.env, stressEchoMT, slow, nil)
	a.srv.PublishRoot("slow", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "slow", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}

	if err := stubs.Call(remote, 0, nil, nil); !errors.Is(err, kernel.ErrCommFailure) {
		t.Fatalf("stalled call = %v, want kernel.ErrCommFailure (timeout)", err)
	}
	close(gate) // now the abandoned bulk reply goes out

	waitFor(t, 5*time.Second, "orphan reply region released", func() bool {
		return gBulkMapped.Value() > mapped0 && sharedRing.live() == live0
	})
}

func TestBulkRequestGrantDoesNotAliasCallerArgs(t *testing.T) {
	// A forwarded request's arguments belong to the caller: a retrying
	// subcontract resends the same marshalled buffer and recycles it once
	// an attempt succeeds, possibly while an abandoned attempt's grant is
	// still unmapped (or being read by a slow server). The grant must
	// therefore carry its own copy — clobbering the caller's bytes after
	// putWireBuffer, as pool reuse would, may not corrupt what the
	// receiver maps.
	k := kernel.New("m")
	srv, err := Start(k.NewDomain("netd"), "unix:"+t.TempDir()+"/nd.sock", WithTransport(SameMachine()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := srv.newConn(newDiscardConn())
	defer c.fail(errConnDead) // before srv.Close, whose wg includes c's writer
	c.caps.Store(uint32(CapBulkRegions))

	payload := bigPayload(64 << 10)
	src := buffer.New(len(payload))
	src.WriteRaw(payload)
	frame := buffer.New(64)
	if err := srv.putWireBuffer(frame, src, c, false); err != nil {
		t.Fatal(err)
	}
	for i, b := range src.Bytes() {
		src.Bytes()[i] = ^b // the pool hands the storage to another call
	}
	in := buffer.FromParts(frame.Bytes(), nil)
	got, err := srv.getWireBuffer(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("request grant aliased the caller's argument buffer")
	}
}

func TestAbandonRacedByDeliveryDrainsParkedReply(t *testing.T) {
	// The narrow race the read loop cannot see: deliver wins against the
	// caller's timeout, parking the reply in the buffered channel, and
	// unregister then returns false. abandonCall must drain the parked
	// reply and release the bulk region it carries — otherwise the grant
	// sits in the ring until the whole connection dies.
	live0 := sharedRing.live()
	k := kernel.New("m")
	srv, err := Start(k.NewDomain("netd"), "unix:"+t.TempDir()+"/nd.sock", WithTransport(SameMachine()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := srv.newConn(newDiscardConn())
	defer c.fail(errConnDead)
	c.caps.Store(uint32(CapBulkRegions))

	out := buffer.New(64 << 10)
	out.WriteRaw(bigPayload(64 << 10))
	frame := buffer.New(64)
	frame.WriteByte(codeOK)
	if err := srv.putWireBuffer(frame, out, c, false); err != nil {
		t.Fatal(err)
	}
	if sharedRing.live() != live0+1 {
		t.Fatalf("ring holds %d grants after the reply grant, want %d", sharedRing.live(), live0+1)
	}
	id, ch := c.register()
	reply := buffer.FromParts(frame.Bytes(), nil)
	if !c.deliver(id, reply) {
		t.Fatal("delivery should win the race")
	}
	srv.abandonCall(c, id, ch) // the timed-out caller gives up
	if sharedRing.live() != live0 {
		t.Fatalf("ring holds %d grants after abandonment, want %d (parked reply drained)", sharedRing.live(), live0)
	}
}

func TestBulkGrantReclaimedOnDoorExportError(t *testing.T) {
	// If flattening fails after the payload was granted (a door the
	// exporter refuses), the frame is never sent; the grant must be
	// pulled back out of the ring rather than stranded until conn death.
	live0 := sharedRing.live()
	k := kernel.New("m")
	srv, err := Start(k.NewDomain("netd"), "unix:"+t.TempDir()+"/nd.sock", WithTransport(SameMachine()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := srv.newConn(newDiscardConn())
	defer c.fail(errConnDead)
	c.caps.Store(uint32(CapBulkRegions))

	src := buffer.FromParts(bigPayload(64<<10), []buffer.Door{"not a door"})
	frame := buffer.New(64)
	if err := srv.putWireBuffer(frame, src, c, false); err == nil {
		t.Fatal("exporting a bogus door slot should fail")
	}
	if sharedRing.live() != live0 {
		t.Fatalf("ring holds %d grants after a failed flatten, want %d", sharedRing.live(), live0)
	}
}

func TestWithOverlaysNonZeroFields(t *testing.T) {
	// With(cfg) is an overlay, not a wholesale replacement: it must
	// compose with the other options in either order, replacing only the
	// fields cfg sets.
	sm := SameMachine()
	var c Config
	WithTransport(sm)(&c)
	With(Config{CallTimeout: time.Minute})(&c)
	if c.Transport != Transport(sm) {
		t.Fatalf("With dropped the transport option: %v", c.Transport)
	}
	if c.CallTimeout != time.Minute {
		t.Fatalf("CallTimeout = %v, want 1m", c.CallTimeout)
	}
	With(Config{BulkThreshold: 123})(&c)
	if c.CallTimeout != time.Minute || c.BulkThreshold != 123 {
		t.Fatalf("second overlay clobbered earlier fields: %+v", c)
	}
}

func TestBulkWireBufferRoundTrip(t *testing.T) {
	// The wirebuf bulk form, without a network: a payload at the
	// threshold crosses via a grant the receiver maps and reads in place;
	// one byte under stays inline.
	k := kernel.New("m")
	srv, err := Start(k.NewDomain("netd"), "unix:"+t.TempDir()+"/nd.sock", WithTransport(SameMachine()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := srv.newConn(newDiscardConn())
	defer c.fail(errConnDead) // before srv.Close, whose wg includes c's writer
	c.caps.Store(uint32(CapBulkRegions))

	for _, n := range []int{srv.cfg.BulkThreshold - 1, srv.cfg.BulkThreshold, 64 << 10} {
		payload := bigPayload(n)
		src := buffer.New(n)
		src.WriteRaw(payload)
		frame := buffer.New(64)
		if err := srv.putWireBuffer(frame, src, c, false); err != nil {
			t.Fatal(err)
		}
		wantBulk := n >= srv.cfg.BulkThreshold
		in := buffer.FromParts(frame.Bytes(), nil)
		got, err := srv.getWireBuffer(in)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), payload) {
			t.Fatalf("payload of %d bytes corrupted across the wirebuf", n)
		}
		if isBulk := len(frame.Bytes()) < n; isBulk != wantBulk {
			t.Fatalf("payload of %d bytes: bulk=%v, want %v", n, isBulk, wantBulk)
		}
	}
}
