package netd

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// Tests for the transport tier redesign: per-address capability
// negotiation at hello, the same-machine unix+region tier, graceful
// fallback to TCP against a peer lacking a tier, and region reclamation
// when a transport is torn down mid-hand-off.

// newSameMachine starts a machine whose server listens on a unix domain
// socket and advertises the bulk-region tier. extra overlays fields on
// the transport config (Transport is always SameMachine).
func newSameMachine(t *testing.T, name string, extra Config) *machine {
	t.Helper()
	extra.Transport = SameMachine()
	k := kernel.New(name)
	srv, err := Start(k.NewDomain(name+"-netd"), "unix:"+t.TempDir()+"/nd.sock", With(extra))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	env, err := sctest.NewEnv(k, name+"-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	return &machine{k: k, srv: srv, env: env}
}

// bigPayload is comfortably above the default BulkThreshold, with
// content that would expose any aliasing or cross-delivery corruption.
func bigPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 7)
	}
	return p
}

func TestSameMachineNegotiatesBulkHandoff(t *testing.T) {
	granted0, mapped0 := gBulkGranted.Value(), gBulkMapped.Value()
	live0 := sharedRing.live()

	a := newSameMachine(t, "A", Config{})
	b := newSameMachine(t, "B", Config{})
	if !strings.HasPrefix(a.srv.Addr(), "unix:") {
		t.Fatalf("unix listener advertises %q, want a unix: address", a.srv.Addr())
	}

	obj, _ := singleton.Export(a.env, stressEchoMT, echoSkel(), nil)
	a.srv.PublishRoot("echo", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "echo", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}

	// A small call stays inline: the bulk tier must not tax it.
	if err := echoBytes(remote, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if d := gBulkGranted.Value() - granted0; d != 0 {
		t.Fatalf("small call granted %d bulk regions, want 0", d)
	}

	// A large call rides regions both ways: request and reply each cross
	// as one grant, mapped exactly once, leaving nothing in the ring.
	if err := echoBytes(remote, bigPayload(64<<10)); err != nil {
		t.Fatal(err)
	}
	granted, mapped := gBulkGranted.Value()-granted0, gBulkMapped.Value()-mapped0
	if granted != 2 || mapped != granted {
		t.Fatalf("64KiB echo: granted=%d mapped=%d, want granted=2 and mapped=granted", granted, mapped)
	}
	if live := sharedRing.live(); live != live0 {
		t.Fatalf("ring holds %d grants after delivered calls, want %d", live, live0)
	}
}

func TestMixedCapabilityPeersFallbackToTCP(t *testing.T) {
	granted0 := gBulkGranted.Value()

	// A advertises the bulk tier on a TCP address; B is plain TCP. The
	// hello intersection must come up empty and every payload — however
	// large — ride the frame stream.
	k := kernel.New("A")
	srv, err := Start(k.NewDomain("A-netd"), "127.0.0.1:0", WithTransport(SameMachine()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	envA, err := sctest.NewEnv(k, "A-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	a := &machine{k: k, srv: srv, env: envA}
	b := newMachine(t, "B")

	obj, _ := singleton.Export(a.env, stressEchoMT, echoSkel(), nil)
	a.srv.PublishRoot("echo", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "echo", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := echoBytes(remote, bigPayload(64<<10)); err != nil {
		t.Fatalf("large call against a TCP-only peer: %v", err)
	}
	if d := gBulkGranted.Value() - granted0; d != 0 {
		t.Fatalf("mixed-capability pair granted %d regions, want 0 (TCP fallback)", d)
	}
}

func TestTransportTeardownMidCallSurfacesCommFailure(t *testing.T) {
	a := newSameMachine(t, "A", Config{})
	b := newSameMachine(t, "B", Config{})

	// A server that hangs until the transport under the call is gone.
	entered := make(chan struct{})
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) })
	hang := stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		close(entered)
		<-gate
		return nil
	})
	obj, _ := singleton.Export(a.env, stressEchoMT, hang, nil)
	a.srv.PublishRoot("hang", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "hang", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		errc <- stubs.Call(remote, 0, nil, nil)
	}()
	<-entered
	a.srv.Close() // tear the whole transport down under the in-flight call

	select {
	case err := <-errc:
		if !errors.Is(err, kernel.ErrCommFailure) {
			t.Fatalf("call across torn-down transport = %v, want kernel.ErrCommFailure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("call hung after transport teardown")
	}
}

func TestFaultnetKillDuringBulkHandoffReclaimsRegion(t *testing.T) {
	reclaimed0 := gBulkReclaimed.Value()
	live0 := sharedRing.live()

	// B dials through faultnet over the same-machine tier: the wrapped
	// funcs carry the faults, Inner keeps the capability set and mapper.
	fn := faultnet.New()
	sm := SameMachine()
	a := newSameMachine(t, "A", Config{})
	cfgB := Config{
		Transport:         FuncTransport{DialFunc: fn.Dialer(sm.Dial), Inner: sm},
		HeartbeatInterval: time.Minute, // no ping may steal the one-shot truncation
	}
	k := kernel.New("B")
	srv, err := Start(k.NewDomain("B-netd"), "unix:"+t.TempDir()+"/nd.sock", With(cfgB))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	envB, err := sctest.NewEnv(k, "B-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	b := &machine{k: k, srv: srv, env: envB}

	obj, _ := singleton.Export(a.env, stressEchoMT, echoSkel(), nil)
	a.srv.PublishRoot("echo", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "echo", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := echoBytes(remote, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	// Kill the connection in the middle of a bulk hand-off: the request's
	// region is granted to the ring, then the carrying frame is truncated
	// on the wire and the connection hard-closed. The peer never maps the
	// grant; connection teardown must reclaim it.
	fn.TruncateNextWrite()
	err = echoBytes(remote, bigPayload(64<<10))
	if !errors.Is(err, kernel.ErrCommFailure) {
		t.Fatalf("call over killed hand-off = %v, want kernel.ErrCommFailure", err)
	}
	waitFor(t, 5*time.Second, "stranded region reclaimed", func() bool {
		return gBulkReclaimed.Value() > reclaimed0 && sharedRing.live() == live0
	})

	// The tier must still work after the redial.
	if err := echoBytes(remote, bigPayload(64<<10)); err != nil {
		t.Fatalf("bulk call after recovery: %v", err)
	}
}

func TestAbandonedBulkReplyReclaimed(t *testing.T) {
	mapped0 := gBulkMapped.Value()
	live0 := sharedRing.live()

	a := newSameMachine(t, "A", Config{})
	b := newSameMachine(t, "B", Config{CallTimeout: 150 * time.Millisecond})

	// The server stalls until the caller has given up, then returns a
	// bulk-sized reply. No waiter remains to map the region: the receive
	// loop must redeem and release the orphan grant itself.
	gate := make(chan struct{})
	big := bigPayload(64 << 10)
	slow := stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		<-gate
		results.WriteBytes(big)
		return nil
	})
	obj, _ := singleton.Export(a.env, stressEchoMT, slow, nil)
	a.srv.PublishRoot("slow", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "slow", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}

	if err := stubs.Call(remote, 0, nil, nil); !errors.Is(err, kernel.ErrCommFailure) {
		t.Fatalf("stalled call = %v, want kernel.ErrCommFailure (timeout)", err)
	}
	close(gate) // now the abandoned bulk reply goes out

	waitFor(t, 5*time.Second, "orphan reply region released", func() bool {
		return gBulkMapped.Value() > mapped0 && sharedRing.live() == live0
	})
}

func TestBulkWireBufferRoundTrip(t *testing.T) {
	// The wirebuf bulk form, without a network: a payload at the
	// threshold crosses via a grant the receiver maps and reads in place;
	// one byte under stays inline.
	k := kernel.New("m")
	srv, err := Start(k.NewDomain("netd"), "unix:"+t.TempDir()+"/nd.sock", WithTransport(SameMachine()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := srv.newConn(newDiscardConn())
	defer c.fail(errConnDead) // before srv.Close, whose wg includes c's writer
	c.caps.Store(uint32(CapBulkRegions))

	for _, n := range []int{srv.cfg.BulkThreshold - 1, srv.cfg.BulkThreshold, 64 << 10} {
		payload := bigPayload(n)
		src := buffer.New(n)
		src.WriteRaw(payload)
		frame := buffer.New(64)
		if err := srv.putWireBuffer(frame, src, c, false); err != nil {
			t.Fatal(err)
		}
		wantBulk := n >= srv.cfg.BulkThreshold
		in := buffer.FromParts(frame.Bytes(), nil)
		got, err := srv.getWireBuffer(in)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), payload) {
			t.Fatalf("payload of %d bytes corrupted across the wirebuf", n)
		}
		if isBulk := len(frame.Bytes()) < n; isBulk != wantBulk {
			t.Fatalf("payload of %d bytes: bulk=%v, want %v", n, isBulk, wantBulk)
		}
	}
}
