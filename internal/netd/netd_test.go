package netd

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/sctest"
	"repro/internal/subcontracts/replicon"
	"repro/internal/subcontracts/singleton"
)

// machine is one simulated host: a kernel, a network door server, and an
// application environment.
type machine struct {
	k   *kernel.Kernel
	srv *Server
	env *core.Env
}

func newMachine(t *testing.T, name string, libs ...func(*core.Registry) error) *machine {
	t.Helper()
	k := kernel.New(name)
	netDom := k.NewDomain(name + "-netd")
	srv, err := Start(netDom, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	libs = append([]func(*core.Registry) error{singleton.Register}, libs...)
	env, err := sctest.NewEnv(k, name+"-app", libs...)
	if err != nil {
		t.Fatal(err)
	}
	return &machine{k: k, srv: srv, env: env}
}

func TestCrossMachineInvoke(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), nil)
	a.srv.PublishRoot("counter", obj)

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Add(remote, 5); err != nil || v != 5 {
		t.Fatalf("cross-machine Add = %d, %v", v, err)
	}
	if ctr.Value() != 5 {
		t.Fatalf("server state = %d", ctr.Value())
	}
	if err := sctest.Boom(remote); err == nil {
		t.Fatal("remote exception lost in transit")
	}
}

func TestRevokedDoorSurfacesAcrossNetwork(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	ctr := &sctest.Counter{}
	obj, door := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), nil)
	a.srv.PublishRoot("counter", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	door.Revoke()
	if _, err := sctest.Get(remote); !errors.Is(err, kernel.ErrRevoked) {
		t.Fatalf("Get on revoked remote door = %v, want kernel.ErrRevoked", err)
	}
}

func TestServerUnreachable(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), nil)
	a.srv.PublishRoot("counter", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	a.srv.Close()
	if _, err := sctest.Get(remote); !errors.Is(err, kernel.ErrCommFailure) {
		t.Fatalf("Get with server down = %v, want ErrCommFailure", err)
	}
}

func TestMissingRoot(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	if _, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "ghost", core.GenericMT); err == nil {
		t.Fatal("missing root fetch succeeded")
	}
}

func TestUnreferencedPropagatesAcrossNetwork(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	ctr := &sctest.Counter{}
	unref := make(chan struct{})
	obj, _ := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), func() { close(unref) })
	a.srv.PublishRoot("counter", obj)

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	// The root keeps one identifier; drop it so only B's proxy remains.
	a.srv.PublishRoot("counter", nil)
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unref:
		t.Fatal("unreferenced fired while remote identifier alive")
	case <-time.After(20 * time.Millisecond):
	}
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unref:
	case <-time.After(3 * time.Second):
		t.Fatal("unreferenced never propagated across the network")
	}
}

func TestNamingAcrossMachines(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	ns := naming.NewServer(a.env)
	a.srv.PublishRoot("naming", ns.Object())

	ctxObj, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "naming", naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	ctx := naming.Context{Obj: ctxObj}

	// B binds a B-local object into A's context: the door travels B→A.
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(b.env, sctest.CounterMT, ctr.Skeleton(), nil)
	if err := ctx.Bind("bcounter", obj, false); err != nil {
		t.Fatal(err)
	}

	// Resolving from B routes B→A (resolve) and then B→A→B for calls
	// (a proxy chain; semantically a door call on the B door).
	got, err := ctx.Resolve("bcounter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Add(got, 7); err != nil || v != 7 {
		t.Fatalf("Add through chained proxies = %d, %v", v, err)
	}
	if ctr.Value() != 7 {
		t.Fatalf("B-local state = %d", ctr.Value())
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	// A exports a counter; B fetches it and re-publishes it as B's root;
	// C fetches from B and invokes — the call chains C→B→A.
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	c := newMachine(t, "C")

	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), nil)
	a.srv.PublishRoot("counter", obj)

	viaB, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	b.srv.PublishRoot("counter", viaB)

	viaC, err := c.srv.ImportRootObject(c.env, b.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Add(viaC, 3); err != nil || v != 3 {
		t.Fatalf("three-machine Add = %d, %v", v, err)
	}
}

func TestHomeUnwrap(t *testing.T) {
	// A's door travels to B and comes back home inside a reply: A must
	// end up invoking the real door, not a proxy loop.
	a := newMachine(t, "A")
	b := newMachine(t, "B")

	nsB := naming.NewServer(b.env)
	b.srv.PublishRoot("naming", nsB.Object())

	ctxObj, err := a.srv.ImportRootObject(a.env, b.srv.Addr(), "naming", naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	ctx := naming.Context{Obj: ctxObj}

	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), nil)
	if err := ctx.Bind("home", obj, false); err != nil {
		t.Fatal(err)
	}
	back, err := ctx.Resolve("home", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Add(back, 2); err != nil || v != 2 {
		t.Fatalf("Add on returned-home object = %d, %v", v, err)
	}
}

func TestRepliconFailoverAcrossMachines(t *testing.T) {
	// Replica doors live on machine A (two server domains); the client on
	// machine B holds proxies to both and fails over when one replica
	// crashes.
	a := newMachine(t, "A", replicon.Register)
	b := newMachine(t, "B", replicon.Register)

	g := replicon.NewGroup()
	ctr := &sctest.Counter{}
	env1, err := sctest.NewEnv(a.k, "replica1", singleton.Register, replicon.Register)
	if err != nil {
		t.Fatal(err)
	}
	env2, err := sctest.NewEnv(a.k, "replica2", singleton.Register, replicon.Register)
	if err != nil {
		t.Fatal(err)
	}
	m1 := g.Join(env1, "r1", ctr.Skeleton())
	g.Join(env2, "r2", ctr.Skeleton())

	exported := g.Export(a.env, sctest.CounterMT)
	a.srv.PublishRoot("rcounter", exported)

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "rcounter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if remote.SC.ID() != replicon.SC.ID() {
		t.Fatalf("subcontract = %d, want replicon", remote.SC.ID())
	}
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}
	m1.Crash()
	if v, err := sctest.Add(remote, 1); err != nil || v != 2 {
		t.Fatalf("Add after remote replica crash = %d, %v", v, err)
	}
}

func TestConcurrentCrossMachineCalls(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), nil)
	a.srv.PublishRoot("counter", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sctest.Add(remote, 1); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ctr.Value() != 32 {
		t.Fatalf("counter = %d, want 32", ctr.Value())
	}
}

func TestCallTimeout(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachineCfg(t, "B", Config{CallTimeout: 100 * time.Millisecond})

	// A server that hangs until released.
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) })
	hang := stubsSkeleton(func() { <-gate })
	obj, _ := singleton.Export(a.env, sctest.CounterMT, hang, nil)
	a.srv.PublishRoot("hang", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "hang", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = sctest.Get(remote)
	if !errors.Is(err, kernel.ErrCommFailure) {
		t.Fatalf("hung call = %v, want ErrCommFailure (timeout)", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// stubsSkeleton wraps a blocking hook into a counter-shaped skeleton.
func stubsSkeleton(hook func()) stubsSkeletonT {
	return stubsSkeletonT{hook: hook}
}

type stubsSkeletonT struct{ hook func() }

func (s stubsSkeletonT) Dispatch(op core.OpNum, args, results *buffer.Buffer) error {
	s.hook()
	results.WriteInt64(0)
	return nil
}

func TestExportsDrainAfterConsume(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), nil)
	a.srv.PublishRoot("counter", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if a.srv.Exports() != 1 {
		t.Fatalf("exports = %d, want 1", a.srv.Exports())
	}
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	// The proxy's unreferenced notification sends a release; the export
	// entry drains (asynchronously, over the wire).
	deadline := time.Now().Add(3 * time.Second)
	for a.srv.Exports() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("export entry never drained: %d", a.srv.Exports())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestExportDedupe(t *testing.T) {
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(a.env, sctest.CounterMT, ctr.Skeleton(), nil)
	a.srv.PublishRoot("counter", obj)
	for i := 0; i < 5; i++ {
		if _, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT); err != nil {
			t.Fatal(err)
		}
	}
	// The same door exported five times occupies one export entry.
	if got := a.srv.Exports(); got != 1 {
		t.Fatalf("export entries = %d, want 1", got)
	}
}
