package netd

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// Liveness tunings for tests: fast heartbeats and a short lease grace so
// partition detection and lease expiry land in tens of milliseconds.
func quickCfg() Config {
	return Config{
		CallTimeout:       2 * time.Second,
		DialTimeout:       150 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		LeaseGrace:        150 * time.Millisecond,
		BreakerBackoff:    25 * time.Millisecond,
		BreakerMaxBackoff: 100 * time.Millisecond,
		// Pinned so conn-count assertions (dial singleflight, pool
		// pruning) hold on any host; stripe tests override explicitly.
		Stripes: 1,
	}
}

// newMachineCfg is newMachine with explicit liveness configuration.
func newMachineCfg(t *testing.T, name string, cfg Config, libs ...func(*core.Registry) error) *machine {
	t.Helper()
	k := kernel.New(name)
	srv, err := Start(k.NewDomain(name+"-netd"), "127.0.0.1:0", With(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	libs = append([]func(*core.Registry) error{singleton.Register}, libs...)
	env, err := sctest.NewEnv(k, name+"-app", libs...)
	if err != nil {
		t.Fatal(err)
	}
	return &machine{k: k, srv: srv, env: env}
}

// exportCounter publishes a fresh counter on m under name, returning the
// skeleton state, the published object, and a channel closed when the
// counter's unreferenced notification fires.
func exportCounter(t *testing.T, m *machine, name string) (*sctest.Counter, *core.Object, chan struct{}) {
	t.Helper()
	ctr := &sctest.Counter{}
	unref := make(chan struct{})
	obj, _ := singleton.Export(m.env, sctest.CounterMT, ctr.Skeleton(), func() { close(unref) })
	m.srv.PublishRoot(name, obj)
	return ctr, obj, unref
}

// dropRoot withdraws name's root and consumes the local identifier, so
// only remote references keep the exported door alive (the precondition
// for asserting that lease expiry or release replay fires unreferenced).
func dropRoot(t *testing.T, m *machine, name string, obj *core.Object) {
	t.Helper()
	m.srv.PublishRoot(name, nil)
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: not reached within %v", what, d)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLeaseExpiryReclaimsExportsAfterPeerDeath(t *testing.T) {
	// ISSUE acceptance: after an ungraceful peer kill the exporter's
	// export count returns to its pre-connection value within one grace
	// period, firing unreferenced notifications as if the remote
	// identifiers had been deleted.
	a := newMachineCfg(t, "A", quickCfg())
	b := newMachineCfg(t, "B", quickCfg())
	_, obj, unref := exportCounter(t, a, "counter")

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}
	// Drop the local identifiers so B's proxy holds the only reference.
	dropRoot(t, a, "counter", obj)

	if got := a.srv.Exports(); got != 1 {
		t.Fatalf("exports before kill = %d, want 1", got)
	}
	if got := a.srv.Sessions(); got != 1 {
		t.Fatalf("sessions before kill = %d, want 1", got)
	}

	// Kill B without letting it release anything.
	b.srv.Close()

	waitFor(t, 2*time.Second, "exports reclaimed", func() bool { return a.srv.Exports() == 0 })
	waitFor(t, 2*time.Second, "session expired", func() bool { return a.srv.Sessions() == 0 })
	select {
	case <-unref:
	case <-time.After(2 * time.Second):
		t.Fatal("unreferenced notification never fired after lease expiry")
	}
}

func TestHeartbeatsKeepIdleSessionAlive(t *testing.T) {
	// The inverse of lease expiry: a healthy but idle peer must NOT have
	// its references reclaimed — heartbeats are its proof of life.
	a := newMachineCfg(t, "A", quickCfg())
	b := newMachineCfg(t, "B", quickCfg())
	ctr, _, _ := exportCounter(t, a, "counter")

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * quickCfg().LeaseGrace) // idle well past the grace period
	if got := a.srv.Exports(); got != 1 {
		t.Fatalf("idle session lost its exports: %d, want 1", got)
	}
	if v, err := sctest.Add(remote, 1); err != nil || v != 1 {
		t.Fatalf("Add after long idle = %d, %v", v, err)
	}
	_ = ctr
}

func TestPartitionPoisonsImportsAndReclaimsExports(t *testing.T) {
	// A full partition (both directions severed, connections "up" at the
	// TCP level): the exporter must detect silence, kill the connection
	// and reclaim the peer's references; the importer must symmetrically
	// poison its proxies once its lease must be presumed lost — failing
	// fast in the retryable class — and recover after the partition heals.
	fn := faultnet.New()
	a := newMachineCfg(t, "A", quickCfg())
	cfgB := quickCfg()
	cfgB.Transport = FuncTransport{DialFunc: fn.Dialer(nil)}
	b := newMachineCfg(t, "B", cfgB)
	_, obj, unref := exportCounter(t, a, "counter")

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}
	dropRoot(t, a, "counter", obj)

	fn.Partition()

	// Exporter side: silence past grace reclaims B's references.
	waitFor(t, 3*time.Second, "exports reclaimed", func() bool { return a.srv.Exports() == 0 })
	select {
	case <-unref:
	case <-time.After(2 * time.Second):
		t.Fatal("unreferenced notification never fired during partition")
	}

	// Importer side: the proxy ends up poisoned — fail fast, retryable,
	// and typed as a lease loss. (Early calls during detection may fail
	// with other comm errors; every one must be retryable.)
	var lastErr error
	waitFor(t, 3*time.Second, "proxy poisoned", func() bool {
		_, err := sctest.Get(remote)
		if err == nil {
			return false
		}
		lastErr = err
		if !core.Retryable(err) {
			t.Fatalf("partition-time error not retryable: %v", err)
		}
		return errors.Is(err, ErrLeaseExpired)
	})
	if !errors.Is(lastErr, kernel.ErrCommFailure) {
		t.Fatalf("poisoned proxy error = %v, want kernel.ErrCommFailure class", lastErr)
	}
	start := time.Now()
	if _, err := sctest.Get(remote); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("poisoned proxy call = %v, want ErrLeaseExpired", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("poisoned proxy took %v, want O(1)", elapsed)
	}

	// Heal: a fresh resolve recovers (the app-level pattern reconnectable
	// automates). The breaker may still be backing off briefly.
	fn.Heal()
	_, _, _ = exportCounter(t, a, "counter2")
	waitFor(t, 3*time.Second, "re-import after heal", func() bool {
		fresh, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter2", sctest.CounterMT)
		if err != nil {
			return false
		}
		v, err := sctest.Add(fresh, 5)
		return err == nil && v == 5
	})
}

func TestBreakerFailsFastAndRecovers(t *testing.T) {
	// Once a dial to a dead peer fails, further calls must not each pay a
	// dial timeout: the breaker is open and they fail in O(1). When the
	// peer returns, a half-open probe closes the breaker again.
	// Long lease grace on both sides: this test is about the breaker, so
	// neither poisoning (B) nor reclamation (A) may kick in underneath it.
	fn := faultnet.New()
	long := quickCfg()
	long.LeaseGrace = time.Minute
	a := newMachineCfg(t, "A", long)
	cfgB := long
	cfgB.BreakerBackoff = 500 * time.Millisecond // hold open for the fast-fail probe
	cfgB.BreakerMaxBackoff = 500 * time.Millisecond
	cfgB.Transport = FuncTransport{DialFunc: fn.Dialer(nil)}
	b := newMachineCfg(t, "B", cfgB)
	ctr, _, _ := exportCounter(t, a, "counter")

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}

	fn.CloseAll()        // kill the live connection ungracefully
	fn.RefuseDials(true) // and keep the peer unreachable

	// First call redials, fails, and opens the breaker.
	if _, err := sctest.Get(remote); err == nil {
		t.Fatal("call to unreachable peer succeeded")
	} else if !core.Retryable(err) {
		t.Fatalf("dial-failure error not retryable: %v", err)
	}
	// Subsequent call fails fast on the open breaker.
	start := time.Now()
	_, err = sctest.Get(remote)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second call = %v, want ErrBreakerOpen", err)
	}
	if !errors.Is(err, kernel.ErrCommFailure) || !core.Retryable(err) {
		t.Fatalf("breaker error badly typed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("open-breaker call took %v, want O(1)", elapsed)
	}

	// Peer returns; the half-open probe (after the 500ms backoff) closes
	// the breaker, the session is rejoined, and calls flow again.
	fn.RefuseDials(false)
	waitFor(t, 3*time.Second, "breaker closes after heal", func() bool {
		v, err := sctest.Get(remote)
		return err == nil && v == 1
	})
	if ctr.Value() != 1 {
		t.Fatalf("counter = %d, want 1", ctr.Value())
	}
}

func TestDeadPooledConnPrunedAndRedialled(t *testing.T) {
	// Pool hygiene: a dead connection must be removed from the dial pool
	// so the next call redials (and rejoins the same session) instead of
	// failing forever on a corpse.
	fn := faultnet.New()
	a := newMachineCfg(t, "A", quickCfg())
	cfgB := quickCfg()
	cfgB.Transport = FuncTransport{DialFunc: fn.Dialer(nil)}
	b := newMachineCfg(t, "B", cfgB)
	ctr, _, _ := exportCounter(t, a, "counter")

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		fn.CloseAll()
		// The kill may race the next call (which then fails retryably,
		// once); the redial must succeed well before lease grace.
		waitFor(t, time.Second, "call succeeds after redial", func() bool {
			_, err := sctest.Add(remote, 1)
			if err != nil && !core.Retryable(err) {
				t.Fatalf("round %d: non-retryable error: %v", round, err)
			}
			return err == nil
		})
	}
	if got := ctr.Value(); got < 4 {
		t.Fatalf("counter = %d, want >= 4", got)
	}
	if got := a.srv.Sessions(); got != 1 {
		t.Fatalf("sessions after redials = %d, want 1 (same instance rejoins)", got)
	}
}

func TestReleaseQueuedWhileDownThenReplayed(t *testing.T) {
	// Satellite: a release that cannot be sent (peer down) must not be
	// dropped — it is queued and replayed when the peer is reachable
	// again, draining the exporter's entry without waiting out the lease.
	fn := faultnet.New()
	long := quickCfg()
	long.LeaseGrace = time.Minute // reclaim/poisoning must NOT be the cleanup path here
	a := newMachineCfg(t, "A", long)
	cfgB := long
	cfgB.Transport = FuncTransport{DialFunc: fn.Dialer(nil)}
	b := newMachineCfg(t, "B", cfgB)
	_, obj, unref := exportCounter(t, a, "counter")

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	dropRoot(t, a, "counter", obj)

	fn.CloseAll()
	fn.RefuseDials(true)
	if err := remote.Consume(); err != nil { // unref → release → peer down → queued
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if got := a.srv.Exports(); got != 1 {
		t.Fatalf("exports while release queued = %d, want 1 (grace is a minute)", got)
	}

	fn.RefuseDials(false)
	waitFor(t, 3*time.Second, "queued release replayed", func() bool { return a.srv.Exports() == 0 })
	select {
	case <-unref:
	case <-time.After(2 * time.Second):
		t.Fatal("unreferenced notification never fired after replay")
	}
}

func TestTruncatedFrameFailsCallThenRecovers(t *testing.T) {
	// A frame cut off mid-body kills the connection (the stream is
	// unparseable past it); the caller sees a retryable comm failure and
	// the next call runs over a fresh connection.
	fn := faultnet.New()
	a := newMachineCfg(t, "A", quickCfg())
	cfgB := quickCfg()
	cfgB.Transport = FuncTransport{DialFunc: fn.Dialer(nil)}
	b := newMachineCfg(t, "B", cfgB)
	ctr, _, _ := exportCounter(t, a, "counter")

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	fn.TruncateNextWrite()
	if _, err := sctest.Add(remote, 1); err == nil {
		t.Fatal("call over truncated frame succeeded")
	} else if !core.Retryable(err) {
		t.Fatalf("truncation error not retryable: %v", err)
	}
	waitFor(t, time.Second, "call succeeds after truncation", func() bool {
		_, err := sctest.Add(remote, 1)
		return err == nil
	})
	if ctr.Value() == 0 {
		t.Fatal("no call landed after recovery")
	}
}

func TestMidChainDeathFailsFastAndReclaims(t *testing.T) {
	// Satellite: proxy chain A→B→C (C calls a door on A through B's
	// re-export). Killing B must (1) make C's calls fail fast in the
	// retryable class and (2) drain A's exports — B's session held them —
	// within the grace period, firing A's unreferenced notification.
	a := newMachineCfg(t, "A", quickCfg())
	b := newMachineCfg(t, "B", quickCfg())
	c := newMachineCfg(t, "C", quickCfg())
	_, obj, unref := exportCounter(t, a, "counter")

	viaB, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	b.srv.PublishRoot("counter", viaB)
	viaC, err := c.srv.ImportRootObject(c.env, b.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Add(viaC, 3); err != nil || v != 3 {
		t.Fatalf("chained Add = %d, %v", v, err)
	}
	dropRoot(t, a, "counter", obj)

	b.srv.Close() // mid-chain death

	start := time.Now()
	_, err = sctest.Get(viaC)
	if err == nil {
		t.Fatal("call through dead middle machine succeeded")
	}
	if !core.Retryable(err) {
		t.Fatalf("mid-chain death error not retryable: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("mid-chain death took %v to surface", elapsed)
	}

	// A reclaims the export B's session held; the release cascade reaches
	// the origin even though only B ever talked to A.
	waitFor(t, 2*time.Second, "origin exports reclaimed", func() bool { return a.srv.Exports() == 0 })
	select {
	case <-unref:
	case <-time.After(2 * time.Second):
		t.Fatal("origin unreferenced notification never fired")
	}
}

func TestRefusedDialIsRetryableAndBounded(t *testing.T) {
	// A dead address must cost one bounded dial attempt, not a hang.
	fn := faultnet.New()
	cfg := quickCfg()
	cfg.Transport = FuncTransport{DialFunc: fn.Dialer(nil)}
	b := newMachineCfg(t, "B", cfg)
	fn.RefuseDials(true)
	start := time.Now()
	_, err := b.srv.ImportRootObject(b.env, "127.0.0.1:1", "x", sctest.CounterMT)
	if err == nil {
		t.Fatal("import from refused address succeeded")
	}
	if !core.Retryable(err) {
		t.Fatalf("refused dial not retryable: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("refused dial took %v", elapsed)
	}
}

func TestHungDialBoundedByDialTimeout(t *testing.T) {
	// A routing black hole (dial that never completes) is bounded by
	// DialTimeout, and the breaker then makes follow-up calls O(1).
	fn := faultnet.New()
	cfg := quickCfg()
	cfg.DialTimeout = 100 * time.Millisecond
	cfg.BreakerBackoff = 500 * time.Millisecond
	cfg.BreakerMaxBackoff = 500 * time.Millisecond
	cfg.Transport = FuncTransport{DialFunc: fn.Dialer(nil)}
	b := newMachineCfg(t, "B", cfg)
	fn.SetDialDelay(5 * time.Second)
	start := time.Now()
	_, err := b.srv.ImportRootObject(b.env, "127.0.0.1:1", "x", sctest.CounterMT)
	if err == nil || !core.Retryable(err) {
		t.Fatalf("hung dial = %v, want retryable failure", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hung dial took %v, want ~DialTimeout", elapsed)
	}
	start = time.Now()
	if _, err := b.srv.ImportRootObject(b.env, "127.0.0.1:1", "x", sctest.CounterMT); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("follow-up = %v, want ErrBreakerOpen", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("open-breaker import took %v, want O(1)", elapsed)
	}
}
