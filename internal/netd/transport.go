package netd

import (
	"fmt"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
)

// This file is the transport layer under the network door servers. A
// Transport owns everything address-shaped: how to listen, how to dial,
// what the address syntax means ("host:port", "unix:/path"), and which
// optional capabilities it brings to a connection. Capabilities are
// negotiated per connection at hello time — each side advertises its
// transport's set, and a connection uses the intersection, gated on the
// peers sharing a machine (capabilities here are same-machine tiers) —
// so a SameMachine server talking to a plain-TCP peer degrades to the
// frame stream with no configuration.

// Capability is a bit set of optional transport tiers, advertised in the
// hello frame and intersected per connection.
type Capability uint32

const (
	// CapBulkRegions is the shared-memory bulk tier: payloads at or above
	// Config.BulkThreshold are handed over as mapped regions through the
	// transport's RegionMapper instead of being copied through the frame
	// stream. Requires the peers to share a machine (region identifiers
	// are process-local).
	CapBulkRegions Capability = 1 << 0
)

// machineID identifies this process for capability negotiation: the
// same-machine tiers are usable only between servers that share it. All
// kernels simulated in one process share one machine in the paper's
// sense, so one random identity per process is exactly the right grain.
var machineID = rand.Uint64()

// Transport supplies a Server's listener, dialer and capability set. It
// owns address syntax end to end: the address given to Start, the
// addresses in descriptors, and the advertised listen address all pass
// through it verbatim. A transport whose capabilities include
// CapBulkRegions must also implement RegionMapper (directly, or on an
// Unwrap()-reachable inner transport).
type Transport interface {
	// Name labels the transport in diagnostics.
	Name() string
	// Listen opens the server's listener on addr.
	Listen(addr string) (net.Listener, error)
	// Dial opens a connection to a peer's advertised address.
	Dial(addr string) (net.Conn, error)
	// Capabilities is the tier set advertised in this server's hellos.
	Capabilities() Capability
}

// RegionMapper is the optional bulk-region tier of a Transport: granting
// publishes a payload region under a connection's owner token and
// returns the identifier that crosses the wire in the payload's place;
// mapping redeems an identifier exactly once; Reclaim releases every
// region still granted under an owner (run when its connection dies, so
// a kill mid-hand-off cannot leak the mapped region).
type RegionMapper interface {
	GrantRegion(owner uint64, reg *buffer.Region) (id uint64)
	MapRegion(id uint64) (*buffer.Region, error)
	Reclaim(owner uint64) int
}

// mapperOf resolves t's RegionMapper, unwrapping adapter layers
// (FuncTransport, faultnet composition) until one is found or the chain
// ends.
func mapperOf(t Transport) RegionMapper {
	for t != nil {
		if m, ok := t.(RegionMapper); ok {
			return m
		}
		u, ok := t.(interface{ Unwrap() Transport })
		if !ok {
			return nil
		}
		t = u.Unwrap()
	}
	return nil
}

// canonicalAddr renders a listener's address in the transport-qualified
// form peers must dial: unix sockets advertise as "unix:/path" so the
// address survives descriptor travel and conn-cache keying without TCP
// assumptions.
func canonicalAddr(ln net.Listener) string {
	a := ln.Addr()
	if strings.HasPrefix(a.Network(), "unix") {
		return "unix:" + a.String()
	}
	return a.String()
}

// ---------------------------------------------------------------------
// Concrete transports.

// TCPTransport is the default tier: plain TCP, no capabilities.
type TCPTransport struct{}

// Name implements Transport.
func (TCPTransport) Name() string { return "tcp" }

// Listen implements Transport.
func (TCPTransport) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// Dial implements Transport.
func (TCPTransport) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// Capabilities implements Transport.
func (TCPTransport) Capabilities() Capability { return 0 }

// SameMachineTransport is the co-located tier: addresses of the form
// "unix:/path" run the control/frame path over a unix domain socket
// (plain "host:port" still uses TCP, so one server serves both kinds of
// peer), and bulk payloads are handed over as shared regions through the
// process-wide ring when the peer negotiates CapBulkRegions.
type SameMachineTransport struct{}

// SameMachine returns the co-located transport tier. cmd/springfsd and
// cmd/fsh enable it with -same-machine.
func SameMachine() *SameMachineTransport { return &SameMachineTransport{} }

// Name implements Transport.
func (*SameMachineTransport) Name() string { return "same-machine" }

// Listen implements Transport.
func (*SameMachineTransport) Listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// Dial implements Transport.
func (*SameMachineTransport) Dial(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Dial("unix", path)
	}
	return net.Dial("tcp", addr)
}

// Capabilities implements Transport.
func (*SameMachineTransport) Capabilities() Capability { return CapBulkRegions }

// GrantRegion implements RegionMapper on the process-wide ring.
func (*SameMachineTransport) GrantRegion(owner uint64, reg *buffer.Region) uint64 {
	return sharedRing.grant(owner, reg)
}

// MapRegion implements RegionMapper.
func (*SameMachineTransport) MapRegion(id uint64) (*buffer.Region, error) {
	return sharedRing.mapRegion(id)
}

// Reclaim implements RegionMapper.
func (*SameMachineTransport) Reclaim(owner uint64) int { return sharedRing.reclaim(owner) }

// FuncTransport adapts bare listen/dial funcs to the Transport
// interface; faultnet's wrappers and the test suites compose through it.
// Nil funcs fall through to Inner (nil Inner means TCP), and the
// capability set — and, via Unwrap, the RegionMapper — are Inner's, so a
// fault-wrapped SameMachine tier keeps its bulk capability.
type FuncTransport struct {
	ListenFunc func(addr string) (net.Listener, error)
	DialFunc   func(addr string) (net.Conn, error)
	Inner      Transport
}

func (t FuncTransport) inner() Transport {
	if t.Inner != nil {
		return t.Inner
	}
	return TCPTransport{}
}

// Name implements Transport.
func (t FuncTransport) Name() string { return "func(" + t.inner().Name() + ")" }

// Listen implements Transport.
func (t FuncTransport) Listen(addr string) (net.Listener, error) {
	if t.ListenFunc != nil {
		return t.ListenFunc(addr)
	}
	return t.inner().Listen(addr)
}

// Dial implements Transport.
func (t FuncTransport) Dial(addr string) (net.Conn, error) {
	if t.DialFunc != nil {
		return t.DialFunc(addr)
	}
	return t.inner().Dial(addr)
}

// Capabilities implements Transport.
func (t FuncTransport) Capabilities() Capability { return t.inner().Capabilities() }

// Unwrap exposes the inner transport for RegionMapper resolution.
func (t FuncTransport) Unwrap() Transport { return t.inner() }

// ---------------------------------------------------------------------
// The process-wide region ring.

// nextOwner mints region-grant owner tokens, one per connection, so a
// connection's death reclaims exactly its own in-flight grants.
var nextOwner atomic.Uint64

// regionRing is the same-machine rendezvous for bulk regions: grants are
// keyed by a process-unique identifier and consumed exactly once by the
// mapping side. Entries live only while a hand-off is in flight — from
// the grant until the peer maps it, the carrying frame is dropped
// undelivered, or the granting connection dies and Reclaim sweeps by
// owner token — so the table stays small and the scan in reclaim cheap.
type regionRing struct {
	mu     sync.Mutex
	nextID uint64
	grants map[uint64]ringGrant
}

type ringGrant struct {
	owner uint64
	reg   *buffer.Region
}

var sharedRing = &regionRing{grants: make(map[uint64]ringGrant)}

func (r *regionRing) grant(owner uint64, reg *buffer.Region) uint64 {
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.grants[id] = ringGrant{owner: owner, reg: reg}
	r.mu.Unlock()
	gBulkGranted.Add(1)
	gBulkRegionsLive.Add(1)
	return id
}

func (r *regionRing) mapRegion(id uint64) (*buffer.Region, error) {
	r.mu.Lock()
	g, ok := r.grants[id]
	if ok {
		delete(r.grants, id)
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("region %d not granted (reclaimed or already mapped)", id)
	}
	gBulkMapped.Add(1)
	gBulkRegionsLive.Add(-1)
	return g.reg, nil
}

func (r *regionRing) reclaim(owner uint64) int {
	r.mu.Lock()
	var dead []*buffer.Region
	for id, g := range r.grants {
		if g.owner == owner {
			delete(r.grants, id)
			dead = append(dead, g.reg)
		}
	}
	r.mu.Unlock()
	for _, reg := range dead {
		reg.Release()
	}
	if n := len(dead); n > 0 {
		gBulkRegionsLive.Add(int64(-n))
		return n
	}
	return 0
}

// live reports the regions currently granted and unmapped (tests).
func (r *regionRing) live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.grants)
}
