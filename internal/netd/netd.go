// Package netd implements the network door servers that extend the kernel
// door mechanism transparently over the network (§3.3): forwarding door
// invocations between machines and mapping door identifiers to and from an
// extended network form.
//
// Each machine (kernel.Kernel) runs one Server. Exporting a door assigns
// it a key in the server's export table; the pair (address, key) is the
// door identifier's network form. Importing a descriptor fabricates a
// proxy door whose target forwards calls over a pooled TCP connection.
// Distributed reference counting is sound by construction: every
// descriptor shipped carries one reference at its exporter, and a proxy
// door's unreferenced notification releases it — so a door stays alive
// exactly as long as identifiers for it exist anywhere, and server-side
// unreferenced notifications keep working across machines. A door
// re-imported by its home machine is unwrapped to the real door rather
// than proxied; doors traveling A→B→C form proxy chains (the Spring
// network servers shortcut these; the chain is semantically equivalent).
//
// The server also publishes named bootstrap roots: whole objects
// (marshalled through their subcontracts) that remote machines fetch to
// obtain their first object — typically a naming context.
//
// Known limitation, shared with any purely refcount-based distributed
// collector (Spring's network servers included): if a peer machine dies
// without releasing its references, the exporter's entries for it persist
// until the exporting process exits. A lease/heartbeat layer would bound
// this; it is out of the paper's scope.
package netd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/scstats"
)

// Errors returned by network door operations. All transport-level failures
// wrap kernel.ErrCommFailure so subcontracts classify them uniformly.
var (
	// ErrNoRoot is returned when a requested bootstrap root is not
	// published.
	ErrNoRoot = errors.New("netd: no such root")
	// ErrClosed is returned when operating on a closed server.
	ErrClosed = errors.New("netd: server closed")
)

// exportEntry tracks one exported door: the server's own identifier for it
// and how many references are held remotely.
type exportEntry struct {
	h      kernel.Handle
	remote int
}

// Server is one machine's network door server.
type Server struct {
	dom     *kernel.Domain
	ln      net.Listener
	addr    string
	dial    dialer
	Timeout time.Duration // per forwarded call; default 10s

	mu       sync.Mutex
	exports  map[uint64]*exportEntry
	byDoor   map[uint64]uint64 // door identity → export key
	nextKey  uint64
	roots    map[string]*core.Object
	conns    map[string]*conn   // dialled, pooled by address
	allConns map[*conn]struct{} // every live connection, for teardown
	closed   bool

	wg sync.WaitGroup
}

// Start launches a network door server for dom's kernel, listening on
// listenAddr ("127.0.0.1:0" picks a free port). dom should be a dedicated
// domain for the network server.
func Start(dom *kernel.Domain, listenAddr string) (*Server, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netd: listen: %w", err)
	}
	s := &Server{
		dom:      dom,
		ln:       ln,
		addr:     ln.Addr().String(),
		dial:     tcpDial,
		Timeout:  10 * time.Second,
		exports:  make(map[uint64]*exportEntry),
		byDoor:   make(map[uint64]uint64),
		nextKey:  1,
		roots:    make(map[string]*core.Object),
		conns:    make(map[string]*conn),
		allConns: make(map[*conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's advertised address.
func (s *Server) Addr() string { return s.addr }

// Close stops the listener and tears down all connections. In-flight
// calls fail with communications errors.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.allConns))
	for c := range s.allConns {
		conns = append(conns, c)
	}
	s.conns = make(map[string]*conn)
	s.allConns = make(map[*conn]struct{})
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		c.fail(ErrClosed)
	}
	s.wg.Wait()
	return err
}

// commErr wraps a transport failure in the kernel's communications class.
func commErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", kernel.ErrCommFailure, fmt.Sprintf(format, args...))
}

// stats is the network door servers' metrics block: one entry per
// forwarded call, with deadline/cancellation endings broken out.
// serveStats meters the other direction — calls arriving off the wire and
// dispatched into local doors — so a daemon that mostly *serves* still has
// a live exposition (springfsd -scstats).
var (
	stats      = scstats.For("netd")
	serveStats = scstats.For("netd(serve)")
)

// ---------------------------------------------------------------------
// Export / import of door identifiers.

// exportSlot maps an in-flight door reference to its network form,
// transferring the reference into the export table.
func (s *Server) exportSlot(slot buffer.Door) (descriptor, error) {
	ref, ok := slot.(kernel.Ref)
	if !ok {
		return descriptor{}, fmt.Errorf("netd: cannot export %T", slot)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if key, ok := s.byDoor[ref.DoorID()]; ok {
		s.exports[key].remote++
		ref.Release() // the table's handle already keeps the door alive
		return descriptor{Addr: s.addr, Key: key}, nil
	}
	key := s.nextKey
	s.nextKey++
	s.exports[key] = &exportEntry{h: s.dom.AdoptRef(ref), remote: 1}
	s.byDoor[ref.DoorID()] = key
	return descriptor{Addr: s.addr, Key: key}, nil
}

// importDesc converts a network form back into a kernel door reference: a
// proxy door for remote descriptors, the real door for one coming home.
func (s *Server) importDesc(desc descriptor) (kernel.Ref, error) {
	if desc.Addr == s.addr {
		// One of our own doors returning home: unwrap to the real door,
		// consuming the remote reference the descriptor carried.
		s.mu.Lock()
		defer s.mu.Unlock()
		e, ok := s.exports[desc.Key]
		if !ok {
			return kernel.Ref{}, fmt.Errorf("netd: stale home descriptor key %d", desc.Key)
		}
		ref, err := s.dom.RefOf(e.h)
		if err != nil {
			return kernel.Ref{}, err
		}
		s.releaseLocked(desc.Key, 1)
		return ref, nil
	}
	proc := func(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
		return s.forward(desc, req, info)
	}
	unref := func() { s.sendRelease(desc, 1) }
	h, _ := s.dom.CreateDoorInfo(proc, unref)
	ref, err := s.dom.RefOf(h)
	if err != nil {
		return kernel.Ref{}, err
	}
	if err := s.dom.DeleteDoor(h); err != nil {
		return kernel.Ref{}, err
	}
	return ref, nil
}

// releaseLocked drops remote references from an export entry, deleting the
// table's identifier when none remain. Callers hold s.mu.
func (s *Server) releaseLocked(key uint64, count int) {
	e, ok := s.exports[key]
	if !ok {
		return
	}
	e.remote -= count
	if e.remote > 0 {
		return
	}
	delete(s.exports, key)
	for id, k := range s.byDoor {
		if k == key {
			delete(s.byDoor, id)
			break
		}
	}
	h := e.h
	// Delete outside the map bookkeeping but still under s.mu; the
	// kernel delivers any unreferenced notification asynchronously.
	_ = s.dom.DeleteDoor(h)
}

// sendRelease notifies a remote exporter that count references died here.
// Best effort: if the peer is unreachable its state is already moot.
func (s *Server) sendRelease(desc descriptor, count int) {
	c, err := s.getConn(desc.Addr)
	if err != nil {
		return
	}
	payload := buffer.New(32)
	payload.WriteByte(msgRelease)
	payload.WriteUint64(desc.Key)
	payload.WriteUvarint(uint64(count))
	_ = c.send(payload.Bytes())
}

// Exports reports the number of live export entries (observability).
func (s *Server) Exports() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.exports)
}

// ---------------------------------------------------------------------
// Client side: forwarding calls through proxy doors.

// forward executes one door call against a remote descriptor. The
// invocation context governs the whole leg: an already-ended context
// aborts before anything is sent, the wire header ships the remaining
// budget so the server machine inherits it, and the reply wait is bounded
// by min(s.Timeout, remaining budget) and by the cancellation channel.
func (s *Server) forward(desc descriptor, req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
	begin := stats.Begin()
	reply, err := s.forwardInfo(desc, req, info)
	stats.End(begin, err)
	return reply, err
}

func (s *Server) forwardInfo(desc descriptor, req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
	if err := info.Err(); err != nil {
		return nil, err
	}
	c, err := s.getConn(desc.Addr)
	if err != nil {
		return nil, err
	}
	payload := buffer.New(64 + req.Size())
	payload.WriteByte(msgCall)
	reqID, ch := c.register()
	payload.WriteUint64(reqID)
	payload.WriteUint64(desc.Key)
	putInfoHeader(payload, info)
	if err := s.putWireBuffer(payload, req); err != nil {
		c.unregister(reqID)
		return nil, err
	}
	if err := c.send(payload.Bytes()); err != nil {
		c.unregister(reqID)
		return nil, commErr("send to %s: %v", desc.Addr, err)
	}
	wait := s.Timeout
	deadlineBounded := false
	if rem, ok := info.Remaining(); ok && rem < wait {
		wait = rem
		deadlineBounded = true
	}
	var cancel <-chan struct{}
	if info != nil {
		cancel = info.Cancel
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case reply, ok := <-ch:
		if !ok {
			return nil, commErr("connection to %s lost", desc.Addr)
		}
		return s.parseReply(reply, desc)
	case <-cancel:
		c.unregister(reqID)
		return nil, fmt.Errorf("netd: call to %s: %w", desc.Addr, kernel.ErrCancelled)
	case <-timer.C:
		c.unregister(reqID)
		if deadlineBounded {
			return nil, fmt.Errorf("netd: call to %s: %w", desc.Addr, kernel.ErrDeadlineExceeded)
		}
		return nil, commErr("call to %s timed out after %v", desc.Addr, s.Timeout)
	}
}

// parseReply decodes a reply payload positioned after its request id.
func (s *Server) parseReply(reply *buffer.Buffer, desc descriptor) (*buffer.Buffer, error) {
	code, err := reply.ReadByte()
	if err != nil {
		return nil, commErr("truncated reply from %s", desc.Addr)
	}
	switch code {
	case codeOK:
		return s.getWireBuffer(reply)
	case codeRevoked:
		return nil, fmt.Errorf("netd: remote door %s/%d: %w", desc.Addr, desc.Key, kernel.ErrRevoked)
	case codeBadKey:
		return nil, fmt.Errorf("netd: remote door %s/%d: %w", desc.Addr, desc.Key, kernel.ErrBadHandle)
	case codeDeadline:
		return nil, fmt.Errorf("netd: remote door %s/%d: %w", desc.Addr, desc.Key, kernel.ErrDeadlineExceeded)
	case codeCancelled:
		return nil, fmt.Errorf("netd: remote door %s/%d: %w", desc.Addr, desc.Key, kernel.ErrCancelled)
	default:
		msg, _ := reply.ReadString()
		return nil, fmt.Errorf("netd: remote call failed: %s", msg)
	}
}

// getConn returns (establishing if needed) the pooled connection to addr.
func (s *Server) getConn(addr string) (*conn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := s.conns[addr]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()

	netc, err := s.dial(addr)
	if err != nil {
		return nil, commErr("dial %s: %v", addr, err)
	}
	c := newConn(netc)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = netc.Close()
		return nil, ErrClosed
	}
	if old, ok := s.conns[addr]; ok {
		s.mu.Unlock()
		_ = netc.Close()
		return old, nil
	}
	s.conns[addr] = c
	s.allConns[c] = struct{}{}
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serveConn(c, addr)
	}()
	return c, nil
}

// ---------------------------------------------------------------------
// Server side: accepting and serving connections.

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		netc, err := s.ln.Accept()
		if err != nil {
			return
		}
		c := newConn(netc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = netc.Close()
			return
		}
		s.allConns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(c, "")
		}()
	}
}

// serveConn demultiplexes one connection: replies complete pending
// requests; calls, releases and root requests are served. addr is the
// pool key for dialled connections ("" for accepted ones).
func (s *Server) serveConn(c *conn, addr string) {
	for {
		frame, err := readFrame(c.netc)
		if err != nil {
			break
		}
		in := buffer.FromParts(frame, nil)
		msg, err := in.ReadByte()
		if err != nil {
			break
		}
		switch msg {
		case msgReply:
			reqID, err := in.ReadUint64()
			if err != nil {
				continue
			}
			c.deliver(reqID, in)
		case msgCall:
			reqID, err1 := in.ReadUint64()
			key, err2 := in.ReadUint64()
			if err1 != nil || err2 != nil {
				continue
			}
			info, err := getInfoHeader(in)
			if err != nil {
				s.reply(c, reqID, codeError, nil, err.Error())
				continue
			}
			req, err := s.getWireBuffer(in)
			if err != nil {
				s.reply(c, reqID, codeError, nil, err.Error())
				continue
			}
			go s.handleCall(c, reqID, key, req, info)
		case msgRelease:
			key, err1 := in.ReadUint64()
			count, err2 := in.ReadUvarint()
			if err1 != nil || err2 != nil {
				continue
			}
			s.mu.Lock()
			s.releaseLocked(key, int(count))
			s.mu.Unlock()
		case msgRoot:
			reqID, err := in.ReadUint64()
			if err != nil {
				continue
			}
			name, err := in.ReadString()
			if err != nil {
				continue
			}
			s.handleRoot(c, reqID, name)
		}
	}
	c.fail(commErr("connection lost"))
	s.mu.Lock()
	if addr != "" && s.conns[addr] == c {
		delete(s.conns, addr)
	}
	delete(s.allConns, c)
	s.mu.Unlock()
	_ = c.netc.Close()
}

// handleCall executes an incoming forwarded door call under the context
// reconstructed from the wire header, so the exported door sees the
// caller's remaining budget and trace exactly as a local caller's would
// look. (The caller-side cancellation channel cannot cross the wire; a
// cancelled caller simply abandons the reply.)
func (s *Server) handleCall(c *conn, reqID, key uint64, req *buffer.Buffer, info *kernel.Info) {
	s.mu.Lock()
	e, ok := s.exports[key]
	var h kernel.Handle
	if ok {
		h = e.h
	}
	s.mu.Unlock()
	if !ok {
		kernel.ReleaseBufferDoors(req)
		s.reply(c, reqID, codeBadKey, nil, "")
		return
	}
	start := serveStats.Begin()
	out, err := s.dom.CallInfo(h, req, info)
	serveStats.End(start, err)
	switch {
	case err == nil:
		s.reply(c, reqID, codeOK, out, "")
	case errors.Is(err, kernel.ErrDeadlineExceeded):
		s.reply(c, reqID, codeDeadline, nil, "")
	case errors.Is(err, kernel.ErrCancelled):
		s.reply(c, reqID, codeCancelled, nil, "")
	case errors.Is(err, kernel.ErrRevoked):
		s.reply(c, reqID, codeRevoked, nil, "")
	case errors.Is(err, kernel.ErrBadHandle):
		s.reply(c, reqID, codeBadKey, nil, "")
	default:
		s.reply(c, reqID, codeError, nil, err.Error())
	}
}

// reply sends a reply frame for reqID.
func (s *Server) reply(c *conn, reqID uint64, code byte, out *buffer.Buffer, errMsg string) {
	payload := buffer.New(64)
	payload.WriteByte(msgReply)
	payload.WriteUint64(reqID)
	payload.WriteByte(code)
	switch code {
	case codeOK:
		if err := s.putWireBuffer(payload, out); err != nil {
			// Re-encode as an error reply; the doors are already gone.
			payload.Reset()
			payload.WriteByte(msgReply)
			payload.WriteUint64(reqID)
			payload.WriteByte(codeError)
			payload.WriteString(err.Error())
		}
	case codeError:
		payload.WriteString(errMsg)
	}
	_ = c.send(payload.Bytes())
}

// ---------------------------------------------------------------------
// Bootstrap roots.

// PublishRoot publishes obj under name: remote machines can fetch a copy
// with ImportRootObject to obtain their first object on this machine. The
// object is retained (copies are marshalled per request, through its
// subcontract).
func (s *Server) PublishRoot(name string, obj *core.Object) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roots[name] = obj
}

func (s *Server) handleRoot(c *conn, reqID uint64, name string) {
	s.mu.Lock()
	obj, ok := s.roots[name]
	s.mu.Unlock()
	if !ok {
		s.reply(c, reqID, codeError, nil, ErrNoRoot.Error()+": "+name)
		return
	}
	tmp := buffer.New(64)
	if err := obj.MarshalCopy(tmp); err != nil {
		s.reply(c, reqID, codeError, nil, err.Error())
		return
	}
	s.reply(c, reqID, codeOK, tmp, "")
}

// ImportRootObject fetches the named root object from the server at addr
// and unmarshals it into env (which must belong to this server's kernel).
func (s *Server) ImportRootObject(env *core.Env, addr, name string, expected *core.MTable) (*core.Object, error) {
	c, err := s.getConn(addr)
	if err != nil {
		return nil, err
	}
	payload := buffer.New(32)
	payload.WriteByte(msgRoot)
	reqID, ch := c.register()
	payload.WriteUint64(reqID)
	payload.WriteString(name)
	if err := c.send(payload.Bytes()); err != nil {
		c.unregister(reqID)
		return nil, commErr("send to %s: %v", addr, err)
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return nil, commErr("connection to %s lost", addr)
		}
		buf, err := s.parseReply(reply, descriptor{Addr: addr})
		if err != nil {
			return nil, err
		}
		return core.Unmarshal(env, expected, buf)
	case <-time.After(s.Timeout):
		c.unregister(reqID)
		return nil, commErr("root fetch from %s timed out", addr)
	}
}

// ---------------------------------------------------------------------
// Connections.

// conn is one TCP connection with multiplexed request/reply framing.
type conn struct {
	netc net.Conn
	wmu  sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *buffer.Buffer
	nextID  uint64
	dead    bool
}

func newConn(netc net.Conn) *conn {
	return &conn{netc: netc, pending: make(map[uint64]chan *buffer.Buffer), nextID: 1}
}

// register allocates a request id and its reply channel.
func (c *conn) register() (uint64, chan *buffer.Buffer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	ch := make(chan *buffer.Buffer, 1)
	if c.dead {
		close(ch)
		return id, ch
	}
	c.pending[id] = ch
	return id, ch
}

func (c *conn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// deliver completes a pending request.
func (c *conn) deliver(id uint64, reply *buffer.Buffer) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok {
		ch <- reply
	}
}

// send writes one frame, serializing concurrent writers.
func (c *conn) send(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeFrame(c.netc, payload)
}

// fail marks the connection dead and wakes all pending requests.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	pending := c.pending
	c.pending = make(map[uint64]chan *buffer.Buffer)
	c.mu.Unlock()
	_ = c.netc.Close()
	for _, ch := range pending {
		close(ch)
	}
}
