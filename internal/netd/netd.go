// Package netd implements the network door servers that extend the kernel
// door mechanism transparently over the network (§3.3): forwarding door
// invocations between machines and mapping door identifiers to and from an
// extended network form.
//
// Each machine (kernel.Kernel) runs one Server. Exporting a door assigns
// it a key in the server's export table; the pair (address, key) is the
// door identifier's network form. Importing a descriptor fabricates a
// proxy door whose target forwards calls over a pooled TCP connection.
// Distributed reference counting is sound by construction: every
// descriptor shipped carries one reference at its exporter, and a proxy
// door's unreferenced notification releases it — so a door stays alive
// exactly as long as identifiers for it exist anywhere, and server-side
// unreferenced notifications keep working across machines. A door
// re-imported by its home machine is unwrapped to the real door rather
// than proxied; doors traveling A→B→C form proxy chains (the Spring
// network servers shortcut these; the chain is semantically equivalent).
//
// The server also publishes named bootstrap roots: whole objects
// (marshalled through their subcontracts) that remote machines fetch to
// obtain their first object — typically a naming context.
//
// # Failure semantics
//
// Purely refcount-based distributed collection (Spring's network servers
// included) leaks an exporter's entries forever when a peer dies without
// releasing its references; the paper left the repair out of scope. Here
// a peer-liveness layer bounds it. Every connection opens with a session
// handshake (a hello frame carrying the peer's per-process instance
// identity) and exchanges heartbeats; exported references are tagged with
// the receiving peer's session. When a peer crashes or partitions and
// stays gone past the lease grace period, the exporter reclaims that
// session's references exactly as if the peer had released them: export
// entries drain and unreferenced notifications fire, so server state
// (per-open files, mid-chain proxy doors) is cleaned up and the release
// cascade propagates down proxy chains.
//
// The importer side contains failures symmetrically: calls on a dead
// connection fail fast in the kernel.ErrCommFailure class (retryable, so
// reconnectable and replicon recover); a per-address circuit breaker with
// exponential backoff and a half-open probe keeps calls to a dead peer
// from each paying a dial timeout; release messages that cannot be sent
// are queued and replayed when the peer returns; and once a peer has been
// unreachable past the grace period the proxy doors imported from it are
// poisoned — their references were reclaimed over there — so they fail in
// O(1) until the application re-resolves. Intervals are configured with
// Config; the fault-injection harness in internal/faultnet drives all of
// this deterministically in tests.
package netd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/trace"
)

// Errors returned by network door operations. All transport-level failures
// wrap kernel.ErrCommFailure so subcontracts classify them uniformly.
var (
	// ErrNoRoot is returned when a requested bootstrap root is not
	// published.
	ErrNoRoot = errors.New("netd: no such root")
	// ErrClosed is returned when operating on a closed server.
	ErrClosed = errors.New("netd: server closed")
	// ErrBreakerOpen is returned (wrapped in kernel.ErrCommFailure) while
	// the per-address circuit breaker is open: the peer failed recently
	// and the backoff period has not lapsed, so the call fails in O(1)
	// instead of paying a dial timeout.
	ErrBreakerOpen = errors.New("netd: peer breaker open")
	// ErrLeaseExpired is returned (wrapped in kernel.ErrCommFailure) from
	// a proxy door poisoned by lease loss: its exporter was unreachable
	// past the grace period and must be presumed to have reclaimed the
	// references behind the proxy.
	ErrLeaseExpired = errors.New("netd: peer lease expired")
)

// exportEntry tracks one exported door: the server's own identifier for
// it and, per peer session, how many references that peer holds.
type exportEntry struct {
	h    kernel.Handle
	held map[*session]int
	// inline is the door's adaptive inline-eligibility state (E20):
	// promoted doors execute incoming calls directly on the reader
	// goroutine. Seeded from the door's explicit hint (kernel
	// Door.SetInline), then driven by observed completion times.
	inline *dispatch.InlineState
}

func (e *exportEntry) total() int {
	n := 0
	for _, c := range e.held {
		n += c
	}
	return n
}

// Config carries the transport, liveness and containment tunables. Zero
// fields take the documented defaults; defaulting happens in one place
// (withDefaults, at Start). cmd/springfsd and cmd/fsh expose these as
// flags.
type Config struct {
	// CallTimeout bounds the reply wait of one forwarded call (further
	// bounded by the invocation context's deadline). Default 10s.
	CallTimeout time.Duration
	// DialTimeout bounds one connection attempt. Default 3s.
	DialTimeout time.Duration
	// HeartbeatInterval is how often an otherwise idle connection is
	// pinged. Default 1s.
	HeartbeatInterval time.Duration
	// LeaseGrace is how long a peer may be silent (no frames on any
	// connection) or disconnected before its session's references are
	// reclaimed, and symmetrically how long an importer waits before
	// poisoning proxies from an unreachable exporter. Default 10s.
	LeaseGrace time.Duration
	// BreakerBackoff is the breaker's first open period after a failed
	// dial; it doubles per consecutive failure up to BreakerMaxBackoff.
	// Defaults 100ms and 15s.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// BulkThreshold is the payload size, in bytes, at or above which a
	// connection that negotiated CapBulkRegions hands the payload over as
	// a shared region instead of copying it through the frame stream.
	// Default 8KiB (below it the grant bookkeeping costs more than the
	// copy it saves).
	BulkThreshold int
	// Stripes is the number of connections dialled per peer address
	// (E21): one writer goroutine and one socket per stripe, so pipelined
	// callers stop serializing behind a single stream. Calls are routed
	// across the stripes by a cheap per-goroutine hash; when more than
	// one stripe is live the last is dedicated to bulk payloads
	// (≥ BulkThreshold), so a large transfer cannot head-of-line block
	// small calls. All stripes to one peer share one hello-derived
	// session — leases, heartbeats and netd.sessions_live count peers,
	// not connections. Default GOMAXPROCS/2 clamped to [1, 8]; 1
	// preserves the single-connection behavior exactly.
	Stripes int
	// Transport supplies the listener, dialer and capability set
	// (transport tiers, fault injection). Nil defaults to TCPTransport.
	Transport Transport
	// StateFile, when set, makes the server durable (E19): the
	// session/lease table, labeled exports and the instance identity are
	// persisted there (atomically, from the sweeper), and a server
	// restarted against the same file rejoins the network under its old
	// identity. Empty disables persistence.
	StateFile string
	// Rebinder resolves a persisted export label back to a live door
	// reference on restart (ownership of the returned reference passes
	// to the server). Labels come from LabelDoor and the automatic
	// "root:<name>/<i>" family; see RootRebinder. Nil means labeled
	// exports are not recovered.
	Rebinder func(label string) (kernel.Ref, bool)
	// Dispatch tunes the server-side dispatch engine (E20): the worker
	// pool incoming calls execute on, the adaptive inline fast path, and
	// bounded admission. The zero value takes the documented defaults.
	Dispatch DispatchConfig
}

// DispatchConfig sizes the serve-side dispatch engine. Zero fields take
// the documented defaults; negative values disable the corresponding
// mechanism where noted.
type DispatchConfig struct {
	// Workers is the worker-pool width (and shard count). Default
	// GOMAXPROCS, clamped to [1, 64].
	Workers int
	// MaxInflight caps admitted-and-unreplied calls across the whole
	// server; past it calls are shed immediately with a retryable
	// kernel.ErrOverload instead of queueing without bound. Default
	// 1024; negative means unlimited.
	MaxInflight int
	// MaxPerPeer caps admitted calls per peer connection, so one hot
	// client cannot consume the whole server bound. Default
	// MaxInflight/2 (0 falls back with MaxInflight); negative means
	// unlimited.
	MaxPerPeer int
	// InlineBudget is how much handler execution time one reader may
	// spend inline per read batch before falling back to the pool.
	// Default 200µs; negative disables the inline fast path.
	InlineBudget time.Duration
	// InlineThreshold is the completion time under which a handler
	// counts toward inline promotion (and over which it is demoted).
	// Default 50µs; negative means nothing is ever promoted.
	InlineThreshold time.Duration
	// Disable reverts to the pre-E20 goroutine-per-call serve path (no
	// engine, no admission bound, no inline path). The E20 bench uses it
	// as its baseline.
	Disable bool
}

// withDefaults is the single defaulting path: every zero field takes its
// documented default, and the result is the exact configuration the
// server runs with (Server keeps the normalized copy).
func (cfg Config) withDefaults() Config {
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.LeaseGrace == 0 {
		cfg.LeaseGrace = 10 * time.Second
	}
	if cfg.BreakerBackoff == 0 {
		cfg.BreakerBackoff = 100 * time.Millisecond
	}
	if cfg.BreakerMaxBackoff == 0 {
		cfg.BreakerMaxBackoff = 15 * time.Second
	}
	if cfg.BulkThreshold == 0 {
		cfg.BulkThreshold = 8 << 10
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = runtime.GOMAXPROCS(0) / 2
	}
	if cfg.Stripes < 1 {
		cfg.Stripes = 1
	} else if cfg.Stripes > 8 {
		cfg.Stripes = 8
	}
	if cfg.Transport == nil {
		cfg.Transport = TCPTransport{}
	}
	if !cfg.Dispatch.Disable {
		if cfg.Dispatch.MaxInflight == 0 {
			cfg.Dispatch.MaxInflight = 1024
		}
		if cfg.Dispatch.MaxPerPeer == 0 {
			if cfg.Dispatch.MaxInflight > 0 {
				cfg.Dispatch.MaxPerPeer = cfg.Dispatch.MaxInflight / 2
			} else {
				cfg.Dispatch.MaxPerPeer = -1
			}
		}
		if cfg.Dispatch.InlineBudget == 0 {
			cfg.Dispatch.InlineBudget = 200 * time.Microsecond
		}
		if cfg.Dispatch.InlineThreshold == 0 {
			cfg.Dispatch.InlineThreshold = 50 * time.Microsecond
		}
	}
	return cfg
}

// Option adjusts the configuration a Server starts with.
type Option func(*Config)

// With overlays an explicit Config: each non-zero field replaces the
// accumulated value and zero fields leave it alone, so it composes with
// the other options in either order (it is the bridge from
// flag-structured code — build a Config, pass With(cfg)).
func With(cfg Config) Option {
	return func(c *Config) {
		if cfg.CallTimeout != 0 {
			c.CallTimeout = cfg.CallTimeout
		}
		if cfg.DialTimeout != 0 {
			c.DialTimeout = cfg.DialTimeout
		}
		if cfg.HeartbeatInterval != 0 {
			c.HeartbeatInterval = cfg.HeartbeatInterval
		}
		if cfg.LeaseGrace != 0 {
			c.LeaseGrace = cfg.LeaseGrace
		}
		if cfg.BreakerBackoff != 0 {
			c.BreakerBackoff = cfg.BreakerBackoff
		}
		if cfg.BreakerMaxBackoff != 0 {
			c.BreakerMaxBackoff = cfg.BreakerMaxBackoff
		}
		if cfg.BulkThreshold != 0 {
			c.BulkThreshold = cfg.BulkThreshold
		}
		if cfg.Stripes != 0 {
			c.Stripes = cfg.Stripes
		}
		if cfg.Transport != nil {
			c.Transport = cfg.Transport
		}
		if cfg.StateFile != "" {
			c.StateFile = cfg.StateFile
		}
		if cfg.Rebinder != nil {
			c.Rebinder = cfg.Rebinder
		}
		if cfg.Dispatch != (DispatchConfig{}) {
			c.Dispatch = cfg.Dispatch
		}
	}
}

// WithDispatch tunes the serve-side dispatch engine (worker pool width,
// admission bounds, inline fast path).
func WithDispatch(dc DispatchConfig) Option {
	return func(c *Config) { c.Dispatch = dc }
}

// WithTransport selects the transport tier.
func WithTransport(t Transport) Option { return func(c *Config) { c.Transport = t } }

// WithBulkThreshold sets the bulk hand-off threshold in bytes.
func WithBulkThreshold(n int) Option { return func(c *Config) { c.BulkThreshold = n } }

// WithStripes sets the number of connections dialled per peer address.
func WithStripes(n int) Option { return func(c *Config) { c.Stripes = n } }

// WithStateFile makes the server durable: its session/lease table and
// labeled exports persist to path, and a restart against the same path
// rejoins under the old instance identity.
func WithStateFile(path string) Option { return func(c *Config) { c.StateFile = path } }

// WithRebinder sets the label resolver a durable server uses on restart
// to reattach persisted export keys to live doors.
func WithRebinder(fn func(label string) (kernel.Ref, bool)) Option {
	return func(c *Config) { c.Rebinder = fn }
}

// Server is one machine's network door server.
type Server struct {
	dom       *kernel.Domain
	ln        net.Listener
	addr      string
	transport Transport
	mapper    RegionMapper // the transport's bulk tier, nil if none
	caps      Capability   // advertised in hellos (mapper-gated)
	instance  uint64       // random per-process identity, sent in hellos

	// cfg is the normalized configuration, fixed at Start (the sweeper
	// and forwarders read it concurrently, so it is not settable
	// afterwards).
	cfg Config

	mu        sync.Mutex
	exports   map[uint64]*exportEntry
	byDoor    map[uint64]uint64 // door identity → export key
	nextKey   uint64
	nextEpoch uint64
	roots     map[string]*core.Object
	conns     map[string]*stripeSet  // dialled stripe sets, pooled by address
	allConns  map[*conn]struct{}     // every live connection, for teardown
	dialing   map[string]*dialFlight // singleflight: one dial/heal per address
	sessions  map[uint64]*session    // peer instance → lease session
	peers     map[string]*peerState
	closed    bool

	// Durability (E19): labels names the exports worth recovering after
	// a restart, pendingLabels holds labels assigned before the door was
	// first exported (door identity → label), and stateDirty gates the
	// sweeper's state-file flush.
	labels        map[uint64]string
	pendingLabels map[uint64]string
	stateDirty    bool

	// connCache mirrors conns for the lock-free forward fast path; it is
	// maintained under mu at every conns mutation and may only lag by
	// holding a stripe set with dead conns (pick skips them) or missing
	// one.
	connCache sync.Map

	// Serve-side dispatch (E20): eng is the worker pool incoming calls
	// execute on (nil under Dispatch.Disable — the legacy goroutine per
	// call), inflight the server-wide admission counter against
	// cfg.Dispatch.MaxInflight.
	eng      *dispatch.Engine
	inflight atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// dialFlight is one in-progress dial (or stripe-set heal) that concurrent
// callers for the same address wait on instead of dialling themselves
// (and instead of each reporting a spurious outcome to the circuit
// breaker).
type dialFlight struct {
	done chan struct{} // closed once ss/err are set
	ss   *stripeSet
	err  error
}

// stripeSet is the dialled connection group for one peer address (E21).
// The live slice is copy-on-write: heals publish a new slice, connClosed
// removes dead members, and readers route lock-free through pick. When
// more than one stripe is live the last is the dedicated bulk stripe;
// positions do not persist across heals. All members share the peer's
// one hello-derived session.
type stripeSet struct {
	addr string
	want int // Config.Stripes at creation

	// conns is the published live-stripe slice; mutations happen under
	// Server.mu, loads are lock-free.
	conns atomic.Pointer[[]*conn]
	// degraded marks the set as missing stripes; the next forward that
	// reaches the slow path heals it. healAt rate-limits heal attempts
	// that could not complete the set (unix nanos before which healing
	// is suppressed and the live remainder serves alone).
	degraded atomic.Bool
	healAt   atomic.Int64
	// counted is the number of stripes reflected in the netd.stripes_live
	// gauge for this set; guarded by Server.mu. It can transiently
	// overcount by a stripe that died in the instant between dialling
	// and publication — the next heal recomputes it.
	counted int
}

// live returns the current published stripe slice (possibly containing
// conns that died since publication; pick skips those).
func (ss *stripeSet) live() []*conn {
	if p := ss.conns.Load(); p != nil {
		return *p
	}
	return nil
}

// pick routes one call to a stripe: bulk payloads go to the dedicated
// last stripe, small calls spread over the rest by a per-goroutine hash —
// so concurrent callers fan out across sockets while one goroutine's
// pipelined calls stay FIFO on one stripe. Dead stripes are skipped by
// linear probe; nil means no live stripe remains.
func (ss *stripeSet) pick(bulk bool) *conn {
	conns := ss.live()
	n := len(conns)
	if n == 0 {
		return nil
	}
	var i int
	switch {
	case n == 1:
		// A lone stripe carries everything (Stripes=1, or a degraded set
		// down to its last conn).
	case bulk:
		i = n - 1
	default:
		i = int(goroutineHint() % uint64(n-1))
	}
	for j := 0; j < n; j++ {
		if c := conns[(i+j)%n]; !c.isDead() {
			return c
		}
	}
	return nil
}

// remove drops c from the published slice, reporting whether it was
// present. Callers hold Server.mu.
func (ss *stripeSet) remove(c *conn) bool {
	cur := ss.live()
	for i, cc := range cur {
		if cc == c {
			next := make([]*conn, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			ss.conns.Store(&next)
			return true
		}
	}
	return false
}

// goroutineHint derives a cheap per-goroutine routing value from the
// address of a stack local: goroutine stacks are disjoint, so concurrent
// callers spread across stripes, while one goroutine's pipelined calls
// tend to stay on one stripe (a stack move can migrate it; correctness
// does not depend on stability — request ids are per-conn).
func goroutineHint() uint64 {
	var x byte
	h := uint64(uintptr(unsafe.Pointer(&x)))
	h *= 0x9E3779B97F4A7C15 // fibonacci mix: stack addresses share low bits
	return h >> 33
}

// Start launches a network door server for dom's kernel, listening on
// listenAddr ("127.0.0.1:0" picks a free TCP port; address syntax beyond
// that belongs to the configured transport — SameMachine accepts
// "unix:/path"). dom should be a dedicated domain for the network
// server. Options adjust the configuration; zero fields take the
// documented defaults in one place.
func Start(dom *kernel.Domain, listenAddr string, opts ...Option) (*Server, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg = cfg.withDefaults()
	ln, err := cfg.Transport.Listen(listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netd: listen: %w", err)
	}
	mapper := mapperOf(cfg.Transport)
	caps := cfg.Transport.Capabilities()
	if mapper == nil {
		caps &^= CapBulkRegions // advertised only when actually mappable
	}
	s := &Server{
		dom:       dom,
		ln:        ln,
		addr:      canonicalAddr(ln),
		transport: cfg.Transport,
		mapper:    mapper,
		caps:      caps,
		instance:  rand.Uint64(),
		cfg:       cfg,
		exports:   make(map[uint64]*exportEntry),
		byDoor:    make(map[uint64]uint64),
		nextKey:   1,
		roots:     make(map[string]*core.Object),
		conns:     make(map[string]*stripeSet),
		allConns:  make(map[*conn]struct{}),
		dialing:   make(map[string]*dialFlight),
		sessions:  make(map[uint64]*session),
		peers:     make(map[string]*peerState),
		stop:      make(chan struct{}),

		labels:        make(map[uint64]string),
		pendingLabels: make(map[uint64]string),
	}
	if !cfg.Dispatch.Disable {
		// One engine serves the whole server: incoming calls, and the
		// kernel's unreferenced-notification drains (a mass release
		// reclaimed off the wire runs on a pool worker instead of its
		// own goroutine). The per-shard queue bound is belt to the
		// admission counter's suspenders — admission keeps the queues
		// under MaxInflight, the bound catches anything that slips by.
		qlen := 0
		if cfg.Dispatch.MaxInflight > 0 {
			qlen = cfg.Dispatch.MaxInflight
		}
		s.eng = dispatch.New(dispatch.Config{Workers: cfg.Dispatch.Workers, QueueLen: qlen})
		dom.Kernel().SetUnrefDispatcher(func(drain func()) {
			if s.eng.Submit(0, drain) != nil {
				go drain() // engine closing; fall back to the default
			}
		})
	}
	if cfg.StateFile != "" {
		if err := s.loadState(); err != nil {
			_ = ln.Close()
			if s.eng != nil {
				dom.Kernel().SetUnrefDispatcher(nil)
				s.eng.Close()
			}
			return nil, err
		}
		// Make the identity durable before serving: a crash before the
		// first sweep must not mint a new instance on the next boot.
		s.flushState()
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.sweeper()
	return s, nil
}

// Addr returns the server's advertised address.
func (s *Server) Addr() string { return s.addr }

// Instance returns the server's per-process instance identity — random
// at first boot, restored from the state file by a durable restart.
func (s *Server) Instance() uint64 { return s.instance }

// Close stops the listener, the liveness sweeper, and tears down all
// connections. In-flight calls fail with communications errors. A
// durable server flushes its state file first, so a clean shutdown
// restarts with current tables.
func (s *Server) Close() error {
	s.flushState()
	return s.shutdown()
}

// Kill tears the server down without flushing the state file — the
// SIGKILL simulation for crash tests: the state file stays whatever the
// sweeper last wrote, exactly as after a power loss.
func (s *Server) Kill() error { return s.shutdown() }

func (s *Server) shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.allConns))
	for c := range s.allConns {
		conns = append(conns, c)
	}
	gConns.Add(int64(-len(s.allConns)))
	gSessions.Add(int64(-len(s.sessions)))
	gExports.Add(int64(-len(s.exports)))
	for _, sess := range s.sessions {
		sess.expired = true // reject exports from lingering in-flight calls
	}
	for _, p := range s.peers {
		gReleasesQueued.Add(int64(-len(p.queue)))
		p.queue = nil
	}
	for _, ss := range s.conns {
		gStripes.Add(int64(-ss.counted))
		ss.counted = 0
	}
	s.conns = make(map[string]*stripeSet)
	s.allConns = make(map[*conn]struct{})
	s.sessions = make(map[uint64]*session)
	s.connCache.Range(func(k, _ any) bool {
		s.connCache.Delete(k)
		return true
	})
	s.mu.Unlock()

	close(s.stop)
	err := s.ln.Close()
	for _, c := range conns {
		c.fail(ErrClosed)
	}
	if s.eng != nil {
		// Restore the kernel's default unref dispatch, then drain the
		// engine: queued serve tasks observe their dead connections and
		// reduce to releasing the resources the parked requests carried
		// (buffers, door refs, bulk-region grants). The drain runs in the
		// background because a worker may be inside a user handler that
		// outlives the server — the goroutine-per-call path abandoned such
		// handlers at Close, and Close must not block on user code now
		// either.
		s.dom.Kernel().SetUnrefDispatcher(nil)
		go s.eng.Close()
	}
	s.wg.Wait()
	return err
}

// commErr wraps a transport failure in the kernel's communications class.
func commErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", kernel.ErrCommFailure, fmt.Sprintf(format, args...))
}

// stats is the network door servers' metrics block: one entry per
// forwarded call, with deadline/cancellation endings broken out.
// serveStats meters the other direction — calls arriving off the wire and
// dispatched into local doors — so a daemon that mostly *serves* still has
// a live exposition (springfsd -scstats).
var (
	stats      = scstats.For("netd")
	serveStats = scstats.For("netd(serve)")
)

// Interned span names for the traced data path (see internal/trace):
// spanSend brackets the whole client leg of a forwarded call — its span ID
// rides the wire header, so everything the server records nests under it;
// spanServe brackets the server-side door dispatch; spanReply marks the
// moment the reply frame was queued.
var (
	spanSend  = trace.Name("netd.send")
	spanServe = trace.Name("netd.serve")
	spanReply = trace.Name("netd.reply")
	// spanDispatchWait brackets a queued call's time in the dispatch
	// engine's run queue (enqueue → a worker picks it up), separating
	// queue wait from run time in the trace waterfall. Inline calls
	// never open it.
	spanDispatchWait = trace.Name("netd.dispatch.wait")
)

// ---------------------------------------------------------------------
// Export / import of door identifiers.

// exportSlot maps an in-flight door reference to its network form,
// transferring the reference into the export table, held under the lease
// session of the connection it ships over.
func (s *Server) exportSlot(slot buffer.Door, c *conn) (descriptor, error) {
	ref, ok := slot.(kernel.Ref)
	if !ok {
		return descriptor{}, fmt.Errorf("netd: cannot export %T", slot)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := c.sess
	if sess == nil || sess.expired {
		return descriptor{}, commErr("no live session to export over")
	}
	if key, ok := s.byDoor[ref.DoorID()]; ok {
		s.exports[key].held[sess]++
		sess.refs[key]++
		if _, labeled := s.labels[key]; labeled {
			s.markDirtyLocked()
		}
		ref.Release() // the table's handle already keeps the door alive
		return descriptor{Addr: s.addr, Key: key}, nil
	}
	key := s.nextKey
	s.nextKey++
	doorID := ref.DoorID()
	ist := &dispatch.InlineState{}
	if ref.InlineHint() {
		ist.Promote()
	}
	s.exports[key] = &exportEntry{h: s.dom.AdoptRef(ref), held: map[*session]int{sess: 1}, inline: ist}
	s.byDoor[doorID] = key
	sess.refs[key] = 1
	if label, ok := s.pendingLabels[doorID]; ok {
		delete(s.pendingLabels, doorID)
		s.labels[key] = label
		s.markDirtyLocked()
	}
	gExports.Add(1)
	return descriptor{Addr: s.addr, Key: key}, nil
}

// importDesc converts a network form back into a kernel door reference: a
// proxy door for remote descriptors, the real door for one coming home.
// A fabricated proxy captures the exporter address's current import
// epoch; if the exporter later stays unreachable past the lease grace
// period the epoch is bumped and the proxy is poisoned.
func (s *Server) importDesc(desc descriptor) (kernel.Ref, error) {
	if desc.Addr == s.addr {
		// One of our own doors returning home: unwrap to the real door,
		// consuming the remote reference the descriptor carried.
		s.mu.Lock()
		defer s.mu.Unlock()
		e, ok := s.exports[desc.Key]
		if !ok {
			return kernel.Ref{}, fmt.Errorf("netd: stale home descriptor key %d", desc.Key)
		}
		ref, err := s.dom.RefOf(e.h)
		if err != nil {
			return kernel.Ref{}, err
		}
		s.releaseAnyLocked(desc.Key, 1)
		return ref, nil
	}
	s.mu.Lock()
	p := s.peerLocked(desc.Addr)
	epoch := p.epoch.Load()
	s.mu.Unlock()
	// The peerState pointer is captured so the per-call poison check is
	// one atomic load, not a trip through s.mu; peer entries are never
	// removed, so the pointer stays valid for the proxy's lifetime.
	proc := func(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
		return s.forward(desc, p, epoch, req, info)
	}
	unref := func() { s.release(desc, p, epoch, 1) }
	h, _ := s.dom.CreateDoorInfo(proc, unref)
	ref, err := s.dom.RefOf(h)
	if err != nil {
		return kernel.Ref{}, err
	}
	if err := s.dom.DeleteDoor(h); err != nil {
		return kernel.Ref{}, err
	}
	return ref, nil
}

// removeExportLocked deletes an export entry whose last reference is
// gone. Callers hold s.mu.
func (s *Server) removeExportLocked(key uint64, e *exportEntry) {
	delete(s.exports, key)
	for id, k := range s.byDoor {
		if k == key {
			delete(s.byDoor, id)
			break
		}
	}
	if _, ok := s.labels[key]; ok {
		delete(s.labels, key)
		s.markDirtyLocked()
	}
	if !s.closed { // Close bulk-decrements the whole table
		gExports.Add(-1)
	}
	// Delete outside the map bookkeeping but still under s.mu; the
	// kernel delivers any unreferenced notification asynchronously.
	_ = s.dom.DeleteDoor(e.h)
}

// releaseLocked drops remote references held by sess from an export
// entry, deleting the table's identifier when none remain anywhere.
// Callers hold s.mu.
func (s *Server) releaseLocked(sess *session, key uint64, count int) {
	e, ok := s.exports[key]
	if !ok {
		return
	}
	have := e.held[sess]
	if count > have {
		count = have // clamp a buggy double-release
	}
	e.held[sess] -= count
	if e.held[sess] <= 0 {
		delete(e.held, sess)
	}
	if sess.refs[key] -= count; sess.refs[key] <= 0 {
		delete(sess.refs, key)
	}
	if _, labeled := s.labels[key]; labeled {
		s.markDirtyLocked()
	}
	if len(e.held) == 0 {
		s.removeExportLocked(key, e)
	}
}

// releaseAnyLocked drops count references from key without knowing the
// holding session (home-unwrapped descriptors). Callers hold s.mu.
func (s *Server) releaseAnyLocked(key uint64, count int) {
	e, ok := s.exports[key]
	if !ok {
		return
	}
	for sess, n := range e.held {
		if count <= 0 {
			break
		}
		take := n
		if take > count {
			take = count
		}
		count -= take
		e.held[sess] -= take
		if e.held[sess] <= 0 {
			delete(e.held, sess)
		}
		if sess.refs[key] -= take; sess.refs[key] <= 0 {
			delete(sess.refs, key)
		}
	}
	if _, labeled := s.labels[key]; labeled {
		s.markDirtyLocked()
	}
	if len(e.held) == 0 {
		s.removeExportLocked(key, e)
	}
}

// release notifies a remote exporter that count references died here. If
// the peer is unreachable — or the connection dies with the frame still
// queued — the release is requeued and replayed by the sweeper once the
// peer returns; if our lease there has lapsed the exporter already
// reclaimed the references and the message is moot.
func (s *Server) release(desc descriptor, p *peerState, epoch uint64, count int) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if p.epoch.Load() != epoch {
		s.mu.Unlock()
		return
	}
	var c *conn
	if ss, ok := s.conns[desc.Addr]; ok {
		c = ss.pick(false) // any live stripe will do for a release
	}
	if c == nil {
		s.queueReleaseLocked(p, desc.Key, count)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	payload := buffer.Get(32)
	payload.WriteByte(msgRelease)
	payload.WriteUint64(desc.Key)
	payload.WriteUvarint(uint64(count))
	requeue := func() {
		s.mu.Lock()
		if !s.closed && p.epoch.Load() == epoch {
			s.queueReleaseLocked(p, desc.Key, count)
		}
		s.mu.Unlock()
	}
	if err := c.sendDrop(payload, requeue); err != nil {
		requeue()
	}
}

// Exports reports the number of live export entries (observability).
func (s *Server) Exports() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.exports)
}

// ---------------------------------------------------------------------
// Client side: forwarding calls through proxy doors.

// forward executes one door call against a remote descriptor. The
// invocation context governs the whole leg: an already-ended context
// aborts before anything is sent, the wire header ships the remaining
// budget so the server machine inherits it, and the reply wait is bounded
// by min(s.cfg.CallTimeout, remaining budget) and by the cancellation channel.
func (s *Server) forward(desc descriptor, p *peerState, epoch uint64, req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
	begin := stats.Begin()
	// The send span opens before forwardInfo writes the wire header, so
	// the header carries this span's ID and the server side's spans become
	// its children.
	sp := trace.Begin(info, spanSend)
	reply, err := s.forwardInfo(desc, p, epoch, req, info)
	sp.End(info, err)
	// One clock pair covers both the netd aggregate and the per-peer RED
	// histogram: EndCall returns the duration it measured.
	d := stats.EndCall(begin, scstats.OpNone, info.ExemplarTrace(), err)
	p.red.Record(d, info.ExemplarTrace(), err)
	return reply, err
}

// dropAbandonedReply disposes of a reply no waiter will read, releasing
// the bulk region grant a codeOK payload may carry. in must be positioned
// at the code byte.
func (s *Server) dropAbandonedReply(in *buffer.Buffer) {
	if code, err := in.ReadByte(); err == nil && code == codeOK {
		s.dropWireRegion(in)
	}
}

// abandonCall withdraws a pending request whose caller is giving up
// (timeout, cancellation, send failure). Usually the waiter wins the
// shard-lock race and the future is recycled directly; when it loses,
// the entry was removed by a settle whose ready signal follows the
// removal immediately, so the bounded drain inside abandon is safe — and
// a reply that raced in is disposed of here: left parked, its bulk
// region grant would sit in the ring until the whole connection died.
func (s *Server) abandonCall(c *conn, reqID uint64, fut *callFuture) {
	c.abandon(reqID, fut, func(reply *buffer.Buffer) {
		s.dropAbandonedReply(reply)
		buffer.PutShell(reply)
	})
}

// settleReply consumes a settled future on the ready path: a delivered
// reply is parsed (and its frame shell recycled), anything else is the
// connection's death notice. The future returns to the pool here — the
// waiter is its sole owner once the ready signal is drained.
func (s *Server) settleReply(fut *callFuture, desc descriptor) (*buffer.Buffer, error) {
	st := fut.state.Load()
	reply := fut.reply
	fut.reply = nil
	putFuture(fut)
	if st != futDelivered {
		return nil, commErr("connection to %s lost", desc.Addr)
	}
	res, err := s.parseReply(reply, desc)
	buffer.PutShell(reply)
	return res, err
}

func (s *Server) forwardInfo(desc descriptor, p *peerState, epoch uint64, req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
	if err := info.Err(); err != nil {
		return nil, err
	}
	if p.epoch.Load() != epoch {
		return nil, fmt.Errorf("%w: proxy door to %s: %w", kernel.ErrCommFailure, desc.Addr, ErrLeaseExpired)
	}
	// Bulk steering happens at routing, by payload size alone: even
	// without a region tier, isolating large frames on their own stripe
	// is what keeps them from head-of-line blocking small calls.
	c, err := s.getConn(desc.Addr, req.Size() >= s.cfg.BulkThreshold)
	if err != nil {
		return nil, err
	}
	hint := 64 + req.Size()
	if s.bulkEligible(c, req) {
		hint = 128 // the payload travels as a region, not in the frame
	}
	payload := buffer.Get(hint)
	payload.WriteByte(msgCall)
	reqID, fut := c.register()
	payload.WriteUint64(reqID)
	payload.WriteUint64(desc.Key)
	putInfoHeader(payload, info)
	if err := s.putWireBuffer(payload, req, c, false); err != nil {
		s.abandonCall(c, reqID, fut)
		buffer.Put(payload)
		return nil, err
	}
	if err := c.send(payload); err != nil {
		s.abandonCall(c, reqID, fut)
		return nil, commErr("send to %s: %v", desc.Addr, err)
	}
	wait := s.cfg.CallTimeout
	deadlineBounded := false
	if rem, ok := info.Remaining(); ok && rem < wait {
		wait = rem
		deadlineBounded = true
	}
	var cancel <-chan struct{}
	if info != nil {
		cancel = info.Cancel
	}
	timer := fut.armTimer(wait)
	select {
	case <-fut.ready:
		timer.Stop()
		return s.settleReply(fut, desc)
	case <-cancel:
		timer.Stop()
		s.abandonCall(c, reqID, fut)
		return nil, fmt.Errorf("netd: call to %s: %w", desc.Addr, kernel.ErrCancelled)
	case <-timer.C:
		s.abandonCall(c, reqID, fut)
		if deadlineBounded {
			return nil, fmt.Errorf("netd: call to %s: %w", desc.Addr, kernel.ErrDeadlineExceeded)
		}
		return nil, commErr("call to %s timed out after %v", desc.Addr, s.cfg.CallTimeout)
	}
}

// parseReply decodes a reply payload positioned after its request id.
func (s *Server) parseReply(reply *buffer.Buffer, desc descriptor) (*buffer.Buffer, error) {
	code, err := reply.ReadByte()
	if err != nil {
		return nil, commErr("truncated reply from %s", desc.Addr)
	}
	switch code {
	case codeOK:
		return s.getWireBuffer(reply)
	case codeRevoked:
		return nil, fmt.Errorf("netd: remote door %s/%d: %w", desc.Addr, desc.Key, kernel.ErrRevoked)
	case codeBadKey:
		return nil, fmt.Errorf("netd: remote door %s/%d: %w", desc.Addr, desc.Key, kernel.ErrBadHandle)
	case codeDeadline:
		return nil, fmt.Errorf("netd: remote door %s/%d: %w", desc.Addr, desc.Key, kernel.ErrDeadlineExceeded)
	case codeCancelled:
		return nil, fmt.Errorf("netd: remote door %s/%d: %w", desc.Addr, desc.Key, kernel.ErrCancelled)
	case codeOverload:
		return nil, fmt.Errorf("netd: remote door %s/%d shed at admission: %w", desc.Addr, desc.Key, kernel.ErrOverload)
	default:
		msg, _ := reply.ReadString()
		return nil, fmt.Errorf("netd: remote call failed: %s", msg)
	}
}

// getConn returns a live connection to addr — the stripe pick() chose
// for this caller — establishing the stripe set (with its session
// handshakes) if needed. The steady-state lookup is one sync.Map load
// plus the routing arithmetic — no lock, no contention with other
// callers or the liveness sweeper. bulk steers the call to the dedicated
// bulk stripe when the set has one.
func (s *Server) getConn(addr string, bulk bool) (*conn, error) {
	if v, ok := s.connCache.Load(addr); ok {
		ss := v.(*stripeSet)
		if c := ss.pick(bulk); c != nil {
			// A degraded set whose heal is due goes to the slow path even
			// though a live stripe could serve; while heals are
			// suppressed (healAt), the live remainder serves alone.
			if !ss.degraded.Load() || time.Now().UnixNano() < ss.healAt.Load() {
				return c, nil
			}
		}
	}
	return s.getConnSlow(addr, bulk)
}

// getConnSlow establishes (or waits for) the stripe set to addr, healing
// a degraded one by dialling only its missing stripes. Fully dead sets
// are pruned so the next call redials cold; dials are admitted by the
// per-address circuit breaker; and concurrent cold calls to one address
// share a single flight (singleflight) instead of stampeding — one
// flight's outcome is reported to the breaker exactly once, however many
// stripes it dialled.
func (s *Server) getConnSlow(addr string, bulk bool) (*conn, error) {
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		var heal *stripeSet
		if ss, ok := s.conns[addr]; ok {
			healDue := ss.degraded.Load() && time.Now().UnixNano() >= ss.healAt.Load()
			if c := ss.pick(bulk); c != nil && !healDue {
				s.mu.Unlock()
				return c, nil
			}
			alive := 0
			for _, lc := range ss.live() {
				if !lc.isDead() {
					alive++
				}
			}
			if alive == 0 {
				// The whole set is dead: prune it so the address redials
				// cold below, through the breaker like any first dial.
				delete(s.conns, addr)
				s.connCache.Delete(addr)
				gStripes.Add(int64(-ss.counted))
				ss.counted = 0
			} else {
				heal = ss // dial only the missing stripes
			}
		}
		if f, ok := s.dialing[addr]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-s.stop:
				return nil, ErrClosed
			}
			if f.err != nil {
				return nil, f.err
			}
			if c := f.ss.pick(bulk); c != nil {
				return c, nil
			}
			if attempt >= 1 {
				return nil, commErr("connection to %s lost", addr)
			}
			continue // the shared flight's conns died already; try once more
		}
		p := s.peerLocked(addr)
		if heal == nil && !s.breakerAdmitLocked(p, time.Now()) {
			// Heals skip breaker admission: a live stripe proves the peer
			// is reachable, and the flight still reports its outcome.
			until := time.Until(p.openUntil).Round(time.Millisecond)
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %s: %w (next probe in %v)", kernel.ErrCommFailure, addr, ErrBreakerOpen, until)
		}
		f := &dialFlight{done: make(chan struct{})}
		s.dialing[addr] = f
		s.mu.Unlock()

		ss, err := s.healStripes(addr, heal)
		s.mu.Lock()
		delete(s.dialing, addr)
		p = s.peerLocked(addr)
		if err != nil {
			s.breakerFailLocked(p)
		} else {
			s.breakerOKLocked(p)
			if s.closed {
				err = ErrClosed
			}
		}
		f.ss, f.err = ss, err
		s.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, err
		}
		if c := ss.pick(bulk); c != nil {
			return c, nil
		}
		return nil, commErr("connection to %s lost", addr)
	}
}

// healStripes brings addr's stripe set to its configured width, dialling
// the missing stripes in parallel (all of them, for a cold address) and
// publishing the result under s.mu. It fails only when no live stripe
// remains at all; a partial heal publishes what it got, marks the set
// degraded and suppresses re-heals for a breaker-backoff period so an
// address that can only sustain some stripes is not re-dialled per call.
func (s *Server) healStripes(addr string, ss *stripeSet) (*stripeSet, error) {
	want := s.cfg.Stripes
	if ss == nil {
		ss = &stripeSet{addr: addr, want: want}
	}
	keep := make([]*conn, 0, want)
	for _, c := range ss.live() {
		if !c.isDead() {
			keep = append(keep, c)
		}
	}
	need := want - len(keep)
	dialed := make([]*conn, need)
	errs := make([]error, need)
	if need > 0 {
		var wg sync.WaitGroup
		for i := 0; i < need; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				dialed[i], errs[i] = s.dialAndHello(addr)
			}(i)
		}
		wg.Wait()
	}
	next := keep
	var firstErr error
	for i, c := range dialed {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		next = append(next, c)
	}
	if len(next) == 0 {
		if firstErr == nil {
			firstErr = commErr("connection to %s lost", addr)
		}
		return nil, firstErr
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		for _, c := range dialed {
			if c != nil {
				c.fail(ErrClosed)
			}
		}
		return nil, ErrClosed
	}
	// Re-filter at publication: a stripe can die during a sibling's dial,
	// and its connClosed could not remove it (it was not published yet).
	live := next[:0]
	for _, c := range next {
		if !c.isDead() {
			live = append(live, c)
		}
	}
	published := append([]*conn(nil), live...)
	ss.conns.Store(&published)
	gStripes.Add(int64(len(published) - ss.counted))
	ss.counted = len(published)
	if len(published) < want {
		ss.degraded.Store(true)
		ss.healAt.Store(time.Now().Add(s.cfg.BreakerBackoff).UnixNano())
	} else {
		ss.degraded.Store(false)
		ss.healAt.Store(0)
	}
	s.conns[addr] = ss
	s.connCache.Store(addr, ss)
	s.mu.Unlock()
	if len(published) == 0 {
		return nil, commErr("connection to %s lost", addr)
	}
	return ss, nil
}

// dialAndHello dials addr (bounded by DialTimeout), starts the read
// loop, and completes the session handshake: our hello goes out first,
// and the connection is not usable until the peer's hello arrives.
func (s *Server) dialAndHello(addr string) (*conn, error) {
	netc, err := s.timedDial(addr)
	if err != nil {
		return nil, commErr("dial %s: %v", addr, err)
	}
	c := s.newConn(netc)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.fail(ErrClosed)
		return nil, ErrClosed
	}
	s.allConns[c] = struct{}{}
	epoch := s.nextEpoch
	s.nextEpoch++
	s.mu.Unlock()
	gConns.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serveConn(c, addr)
	}()
	if err := s.sendHello(c, epoch); err != nil {
		c.fail(commErr("hello to %s: %v", addr, err))
		return nil, commErr("hello to %s: %v", addr, err)
	}
	select {
	case <-c.helloed:
		return c, nil
	case <-c.done:
		return nil, commErr("connection to %s lost during handshake", addr)
	case <-time.After(s.cfg.DialTimeout):
		c.fail(commErr("hello from %s timed out", addr))
		return nil, commErr("hello from %s timed out", addr)
	}
}

// timedDial bounds one dial attempt by DialTimeout regardless of the
// transport's own behavior.
func (s *Server) timedDial(addr string) (net.Conn, error) {
	type result struct {
		c   net.Conn
		err error
	}
	ch := make(chan result, 1)
	go func() {
		c, err := s.transport.Dial(addr)
		ch <- result{c, err}
	}()
	select {
	case r := <-ch:
		return r.c, r.err
	case <-time.After(s.cfg.DialTimeout):
		go func() { // reap the eventual result
			if r := <-ch; r.c != nil {
				_ = r.c.Close()
			}
		}()
		return nil, fmt.Errorf("timeout after %v", s.cfg.DialTimeout)
	}
}

// ---------------------------------------------------------------------
// Server side: accepting and serving connections.

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		netc, err := s.ln.Accept()
		if err != nil {
			return
		}
		c := s.newConn(netc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.fail(ErrClosed)
			return
		}
		s.allConns[c] = struct{}{}
		epoch := s.nextEpoch
		s.nextEpoch++
		s.mu.Unlock()
		gConns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(c, "")
		}()
		go func() { _ = s.sendHello(c, epoch) }()
	}
}

// serveConn demultiplexes one connection: replies complete pending
// requests; hellos bind the session; pings are answered; calls, releases
// and root requests are served (only after the session handshake — a
// peer that skips it is violating the protocol and is cut off). addr is
// the pool key for dialled connections ("" for accepted ones).
func (s *Server) serveConn(c *conn, addr string) {
	// Buffered reads are the receive half of the write coalescing: a
	// peer's flush arrives as one TCP segment train, and the buffered
	// reader drains many frames per read syscall instead of paying two
	// (header, payload) each.
	br := bufio.NewReaderSize(c.netc, 64<<10)
	// budget is the inline fast path's allowance for the current read
	// batch: handler time spent executing calls directly on this
	// goroutine. It refills whenever the buffered reader runs dry —
	// i.e. when the next read would block, so the frames behind us are
	// not waiting on the handler in front of them.
	budget := s.cfg.Dispatch.InlineBudget
	var rel []releasePair // reused across batches by the release coalescer
	for {
		if br.Buffered() == 0 {
			budget = s.cfg.Dispatch.InlineBudget
		}
		frame, err := readFrame(br)
		if err != nil {
			break
		}
		c.lastRecv.Store(time.Now().UnixNano())
		if !s.serveFrame(c, br, frame, &rel, &budget) {
			break
		}
	}
	s.connClosed(c, addr)
}

// serveFrame handles one decoded frame for serveConn, reporting whether
// the connection should keep being served. The frame is wrapped in a
// pooled buffer shell (no copy, no heap header per frame); replies hand
// the shell to the waiting caller, every other path recycles it here.
func (s *Server) serveFrame(c *conn, br *bufio.Reader, frame []byte, rel *[]releasePair, budget *time.Duration) bool {
	in := buffer.Wrap(frame, nil)
	msg, err := in.ReadByte()
	if err != nil {
		buffer.PutShell(in)
		return false
	}
	switch msg {
	case msgHello:
		instance, err1 := in.ReadUint64()
		epoch, err2 := in.ReadUint64()
		listenAddr, err3 := in.ReadString()
		peerCaps, err4 := in.ReadUint32()
		peerMachine, err5 := in.ReadUint64()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			buffer.PutShell(in)
			return false
		}
		s.handleHello(c, instance, epoch, listenAddr, peerCaps, peerMachine)
	case msgPing:
		pong := buffer.Get(1)
		pong.WriteByte(msgPong)
		_ = c.send(pong)
	case msgPong:
		// lastRecv above is all a pong is for.
	case msgReply:
		reqID, err := in.ReadUint64()
		if err != nil {
			break
		}
		if c.deliver(reqID, in) {
			// The shell now belongs to the waiting caller (settleReply
			// recycles it); the frame bytes stay alive through it.
			return true
		}
		// The caller abandoned the reply (timeout, cancel); if it
		// carried a bulk region, release it rather than stranding
		// it in the ring until the connection dies.
		s.dropAbandonedReply(in)
	case msgCall:
		if !c.hasSession() {
			buffer.PutShell(in)
			return false
		}
		reqID, err1 := in.ReadUint64()
		key, err2 := in.ReadUint64()
		if err1 != nil || err2 != nil {
			break
		}
		info, err := getInfoHeader(in)
		if err != nil {
			s.reply(c, reqID, codeError, nil, err.Error())
			break
		}
		req, err := s.getWireBuffer(in)
		if err != nil {
			s.reply(c, reqID, codeError, nil, err.Error())
			break
		}
		// req aliases (or copied) the frame; the shell itself is done.
		s.dispatchCall(c, reqID, key, req, info, budget)
	case msgRelease:
		if !c.hasSession() {
			buffer.PutShell(in)
			return false
		}
		key, err1 := in.ReadUint64()
		count, err2 := in.ReadUvarint()
		if err1 != nil || err2 != nil {
			break
		}
		// A release burst (a dropped proxy tree, a cache eviction
		// sweep) arrives as consecutive frames in one flush; peel
		// the whole run off the buffered reader and apply it in a
		// single locked pass instead of paying s.mu per frame.
		*rel = append((*rel)[:0], releasePair{key: key, count: int64(count)})
		*rel = coalesceReleases(br, *rel)
		s.mu.Lock()
		for _, r := range *rel {
			s.releaseLocked(c.sess, r.key, int(r.count))
		}
		s.mu.Unlock()
	case msgRoot:
		if !c.hasSession() {
			buffer.PutShell(in)
			return false
		}
		reqID, err := in.ReadUint64()
		if err != nil {
			break
		}
		name, err := in.ReadString()
		if err != nil {
			break
		}
		s.handleRoot(c, reqID, name)
	}
	buffer.PutShell(in)
	return true
}

// dispatchCall routes one incoming call through the dispatch engine
// (E20): admission first (server-wide and per-peer in-flight bounds —
// past either, the call is shed immediately with a retryable overload
// reply instead of queueing to death), then the inline fast path (a door
// whose adaptive state proves it non-blocking executes right here on the
// reader goroutine, spending the batch's inline budget), and otherwise
// the worker pool, queued at the priority the wire context carried.
// budget points at the reader's remaining per-batch inline allowance.
func (s *Server) dispatchCall(c *conn, reqID, key uint64, req *buffer.Buffer, info *kernel.Info, budget *time.Duration) {
	if s.eng == nil { // Dispatch.Disable: the pre-E20 goroutine per call
		go s.handleCall(c, reqID, key, req, info)
		return
	}
	if !s.admitServe(c) {
		s.shed(c, reqID, req)
		return
	}
	s.mu.Lock()
	e, ok := s.exports[key]
	s.mu.Unlock()
	if !ok {
		s.doneServe(c)
		kernel.ReleaseBufferDoors(req)
		buffer.Put(req)
		s.reply(c, reqID, codeBadKey, nil, "")
		return
	}
	h, ist := e.h, e.inline
	if *budget > 0 && ist.Eligible() {
		start := time.Now()
		s.runCall(c, reqID, h, req, info)
		d := time.Since(start)
		*budget -= d
		ist.Observe(d, s.cfg.Dispatch.InlineThreshold)
		dispatch.NoteInline()
		s.doneServe(c)
		return
	}
	var prio int32
	if info != nil {
		prio = info.Priority
	}
	spWait := trace.Begin(info, spanDispatchWait)
	err := s.eng.Submit(prio, func() {
		spWait.End(info, nil)
		if c.isDead() {
			// The connection died while the call was parked in the run
			// queue: there is nobody to reply to, so reduce to releasing
			// what the request carried — door references, the buffer,
			// and (through the region-backed Put) any bulk-region grant.
			kernel.ReleaseBufferDoors(req)
			buffer.Put(req)
			s.doneServe(c)
			return
		}
		start := time.Now()
		s.runCall(c, reqID, h, req, info)
		ist.Observe(time.Since(start), s.cfg.Dispatch.InlineThreshold)
		s.doneServe(c)
	})
	if err != nil {
		spWait.End(info, err)
		s.doneServe(c)
		if errors.Is(err, dispatch.ErrSaturated) {
			s.shed(c, reqID, req)
			return
		}
		// Engine closed: the server is going down; no reply will be
		// deliverable anyway.
		kernel.ReleaseBufferDoors(req)
		buffer.Put(req)
	}
}

// admitServe claims one admission slot for a call from c, enforcing the
// server-wide and per-peer in-flight bounds. Every admitted call must be
// matched by doneServe.
func (s *Server) admitServe(c *conn) bool {
	if max := int64(s.cfg.Dispatch.MaxInflight); max > 0 && s.inflight.Add(1) > max {
		s.inflight.Add(-1)
		return false
	} else if max <= 0 {
		s.inflight.Add(1)
	}
	if max := int64(s.cfg.Dispatch.MaxPerPeer); max > 0 && c.inflight.Add(1) > max {
		c.inflight.Add(-1)
		s.inflight.Add(-1)
		return false
	} else if max <= 0 {
		c.inflight.Add(1)
	}
	return true
}

// doneServe releases the admission slot admitServe claimed.
func (s *Server) doneServe(c *conn) {
	c.inflight.Add(-1)
	s.inflight.Add(-1)
}

// shed refuses a call at admission: release what the request carried and
// answer with the retryable overload code — O(1) work on the reader, no
// goroutine, no queue entry.
func (s *Server) shed(c *conn, reqID uint64, req *buffer.Buffer) {
	dispatch.NoteShed()
	kernel.ReleaseBufferDoors(req)
	buffer.Put(req)
	s.reply(c, reqID, codeOverload, nil, "")
}

// handleCall is the legacy (Dispatch.Disable) serve path: export lookup
// plus runCall on a per-call goroutine.
func (s *Server) handleCall(c *conn, reqID, key uint64, req *buffer.Buffer, info *kernel.Info) {
	s.mu.Lock()
	e, ok := s.exports[key]
	var h kernel.Handle
	if ok {
		h = e.h
	}
	s.mu.Unlock()
	if !ok {
		kernel.ReleaseBufferDoors(req)
		buffer.Put(req)
		s.reply(c, reqID, codeBadKey, nil, "")
		return
	}
	s.runCall(c, reqID, h, req, info)
}

// runCall executes an incoming forwarded door call under the context
// reconstructed from the wire header, so the exported door sees the
// caller's remaining budget and trace exactly as a local caller's would
// look. (The caller-side cancellation channel cannot cross the wire; a
// cancelled caller simply abandons the reply.) It runs wherever the
// dispatch decision put it: a reader goroutine (inline), a pool worker
// (queued), or a dedicated goroutine (legacy path).
func (s *Server) runCall(c *conn, reqID uint64, h kernel.Handle, req *buffer.Buffer, info *kernel.Info) {
	start := serveStats.Begin()
	sp := trace.Begin(info, spanServe)
	out, err := s.dom.CallInfo(h, req, info)
	sp.End(info, err)
	serveStats.EndCall(start, scstats.OpNone, info.ExemplarTrace(), err)
	trace.Event(info, spanReply)
	switch {
	case err == nil:
		s.reply(c, reqID, codeOK, out, "")
	case errors.Is(err, kernel.ErrDeadlineExceeded):
		s.reply(c, reqID, codeDeadline, nil, "")
	case errors.Is(err, kernel.ErrCancelled):
		s.reply(c, reqID, codeCancelled, nil, "")
	case errors.Is(err, kernel.ErrRevoked):
		s.reply(c, reqID, codeRevoked, nil, "")
	case errors.Is(err, kernel.ErrBadHandle):
		s.reply(c, reqID, codeBadKey, nil, "")
	default:
		s.reply(c, reqID, codeError, nil, err.Error())
	}
	// Both served buffers are dead: the dispatch is over (a skeleton that
	// kept argument bytes copied them — see stubs.Skeleton) and reply()
	// has copied, granted or detached out's payload. Recycling them is
	// what closes the bulk tier's loop — resetting a region-backed req
	// releases its mapped grant, returning pooled storage to the sender's
	// ring side. Leftover door references are released first, as an
	// abandoning client would.
	kernel.ReleaseBufferDoors(req)
	buffer.Put(req)
	buffer.Put(out)
}

// releasePair is one decoded release frame, for the coalescer.
type releasePair struct {
	key   uint64
	count int64
}

// coalesceReleases peels consecutive msgRelease frames off the buffered
// reader without blocking: as long as a complete, well-formed release
// frame is sitting in the buffer it is decoded and consumed, so a burst
// of releases (one flush from the peer) collapses into a single pass
// under the server lock. A frame that is incomplete, not a release, or
// malformed is left untouched for the main loop.
func coalesceReleases(br *bufio.Reader, rel []releasePair) []releasePair {
	for {
		buffered := br.Buffered()
		if buffered < 5 {
			return rel // not even a header + type byte without blocking
		}
		hdr, err := br.Peek(5)
		if err != nil || hdr[4] != msgRelease {
			return rel
		}
		n := int(binary.LittleEndian.Uint32(hdr[:4]))
		if n < 1+8+1 || 4+n > buffered {
			return rel // runt release or payload not fully buffered
		}
		frame, err := br.Peek(4 + n)
		if err != nil {
			return rel
		}
		body := frame[5 : 4+n] // after the type byte
		key := binary.LittleEndian.Uint64(body[:8])
		count, sz := binary.Uvarint(body[8:])
		if sz <= 0 || 8+sz != len(body) {
			return rel // malformed; let the main loop's decoder reject it
		}
		_, _ = br.Discard(4 + n)
		rel = append(rel, releasePair{key: key, count: int64(count)})
	}
}

// reply sends a reply frame for reqID.
func (s *Server) reply(c *conn, reqID uint64, code byte, out *buffer.Buffer, errMsg string) {
	size := 64
	if out != nil && !s.bulkEligible(c, out) {
		size += out.Size()
	}
	payload := buffer.Get(size)
	payload.WriteByte(msgReply)
	payload.WriteUint64(reqID)
	payload.WriteByte(code)
	switch code {
	case codeOK:
		if err := s.putWireBuffer(payload, out, c, true); err != nil {
			// Re-encode as an error reply; the doors are already gone.
			payload.Reset()
			payload.WriteByte(msgReply)
			payload.WriteUint64(reqID)
			payload.WriteByte(codeError)
			payload.WriteString(err.Error())
		}
	case codeError:
		payload.WriteString(errMsg)
	}
	_ = c.send(payload)
}

// ---------------------------------------------------------------------
// Bootstrap roots.

// PublishRoot publishes obj under name: remote machines can fetch a copy
// with ImportRootObject to obtain their first object on this machine. The
// object is retained (copies are marshalled per request, through its
// subcontract).
func (s *Server) PublishRoot(name string, obj *core.Object) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roots[name] = obj
}

func (s *Server) handleRoot(c *conn, reqID uint64, name string) {
	s.mu.Lock()
	obj, ok := s.roots[name]
	s.mu.Unlock()
	if !ok {
		s.reply(c, reqID, codeError, nil, ErrNoRoot.Error()+": "+name)
		return
	}
	tmp := buffer.Get(64)
	if err := obj.MarshalCopy(tmp); err != nil {
		buffer.Put(tmp)
		s.reply(c, reqID, codeError, nil, err.Error())
		return
	}
	if s.cfg.StateFile != "" {
		// Durable servers label root-marshalled doors before the reply
		// exports them, so a restart can rebind their keys (RootRebinder).
		s.mu.Lock()
		s.labelRootDoorsLocked(name, tmp.Doors())
		s.mu.Unlock()
	}
	s.reply(c, reqID, codeOK, tmp, "")
	buffer.Put(tmp) // reply() copied, granted or detached the payload and took the doors
}

// ImportRootObject fetches the named root object from the server at addr
// and unmarshals it into env (which must belong to this server's kernel).
func (s *Server) ImportRootObject(env *core.Env, addr, name string, expected *core.MTable) (*core.Object, error) {
	c, err := s.getConn(addr, false)
	if err != nil {
		return nil, err
	}
	payload := buffer.Get(32)
	payload.WriteByte(msgRoot)
	reqID, fut := c.register()
	payload.WriteUint64(reqID)
	payload.WriteString(name)
	if err := c.send(payload); err != nil {
		s.abandonCall(c, reqID, fut)
		return nil, commErr("send to %s: %v", addr, err)
	}
	timer := fut.armTimer(s.cfg.CallTimeout)
	select {
	case <-fut.ready:
		timer.Stop()
		buf, err := s.settleReply(fut, descriptor{Addr: addr})
		if err != nil {
			return nil, err
		}
		return core.Unmarshal(env, expected, buf)
	case <-timer.C:
		s.abandonCall(c, reqID, fut)
		return nil, commErr("root fetch from %s timed out", addr)
	}
}
