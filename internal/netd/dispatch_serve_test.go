package netd

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// Tests for the dispatch engine's integration with the serve path (E20):
// bounded admission under overload, and resource reclamation when a
// connection dies with calls parked in the run queues.

// gatedSkel is a skeleton that parks every call on gate, signalling
// entered first (non-blocking: once the test has seen what it was
// waiting for, later entries must not hang the worker on a full buffer).
func gatedSkel(entered chan struct{}, gate chan struct{}) stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		if entered != nil {
			select {
			case entered <- struct{}{}:
			default:
			}
		}
		<-gate
		return nil
	})
}

func TestOverloadShedsRetryable(t *testing.T) {
	// E20 acceptance: past the configured in-flight bound the server
	// refuses calls at admission — an immediate, retryable overload reply
	// on the reader goroutine. No queue growth, no goroutine growth, and
	// full recovery once the backlog drains.
	cfgA := quickCfg()
	cfgA.Dispatch = DispatchConfig{
		Workers:     1,
		MaxInflight: 4,
		MaxPerPeer:  4,
		// Inline disabled: every admitted call must enter the pool, so
		// the in-flight population is exactly worker + queue.
		InlineThreshold: -1,
	}
	a := newMachineCfg(t, "A", cfgA)
	cfgB := quickCfg()
	cfgB.CallTimeout = 30 * time.Second // admitted calls wait for the gate
	b := newMachineCfg(t, "B", cfgB)

	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	obj, _ := singleton.Export(a.env, stressEchoMT, gatedSkel(entered, gate), nil)
	a.srv.PublishRoot("gated", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "gated", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}

	// Fill the admission window: 4 calls go in (one running, three
	// queued), and the worker is wedged on the first.
	shed0 := scstats.GaugeFor("dispatch.shed").Value()
	var admitted sync.WaitGroup
	admittedErrs := make([]error, 4)
	for i := 0; i < 4; i++ {
		admitted.Add(1)
		go func(i int) {
			defer admitted.Done()
			admittedErrs[i] = stubs.Call(remote, 0, nil, nil)
		}(i)
	}
	<-entered
	waitFor(t, 2*time.Second, "admission window full", func() bool {
		return a.srv.inflight.Load() == 4
	})

	// Every further call must shed instantly, without spawning anything:
	// the goroutine count during a 200-call overload storm stays flat.
	ng0 := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		err := stubs.Call(remote, 0, nil, nil)
		if err == nil {
			t.Fatal("call beyond the in-flight bound succeeded, want overload")
		}
		if !errors.Is(err, kernel.ErrOverload) {
			t.Fatalf("call beyond the in-flight bound = %v, want kernel.ErrOverload", err)
		}
		if !core.Retryable(err) {
			t.Fatalf("overload error %v is not Retryable; backoff-and-retry policies would give up", err)
		}
	}
	if ng := runtime.NumGoroutine(); ng > ng0+8 {
		t.Fatalf("goroutines grew from %d to %d during the overload storm, want flat (shedding is O(1) on the reader)", ng0, ng)
	}
	if d := scstats.GaugeFor("dispatch.shed").Value() - shed0; d < 200 {
		t.Fatalf("dispatch.shed moved by %d during 200 refused calls, want >= 200", d)
	}
	// The engine's queue never grew past the admission bound.
	if q := a.srv.eng.Queued(); q > 4 {
		t.Fatalf("engine holds %d queued calls, want <= 4 (admission must bound the queue)", q)
	}

	// Recovery: release the gate, the backlog drains, and new calls are
	// admitted again.
	close(gate)
	admitted.Wait()
	for i, err := range admittedErrs {
		if err != nil {
			t.Fatalf("admitted call %d: %v", i, err)
		}
	}
	waitFor(t, 2*time.Second, "in-flight count drained", func() bool {
		return a.srv.inflight.Load() == 0
	})
	if err := stubs.Call(remote, 0, nil, nil); err != nil {
		t.Fatalf("call after the backlog drained: %v", err)
	}
}

func TestConnDeathReclaimsParkedCalls(t *testing.T) {
	// E20 acceptance: a connection that dies with a thousand calls parked
	// in the run queues must not strand anything. The parked tasks observe
	// the dead connection and reduce to releasing their requests, the
	// admission counters return to zero, the exported door is reclaimed
	// once the peer's lease lapses, and no worker leaks.
	const parked = 1000
	cfgA := quickCfg()
	cfgA.Dispatch = DispatchConfig{
		Workers:         1,
		MaxInflight:     2 * parked,
		MaxPerPeer:      2 * parked,
		InlineThreshold: -1, // everything queues: the worker is wedged below
	}
	a := newMachineCfg(t, "A", cfgA)

	fn := faultnet.New()
	cfgB := quickCfg()
	cfgB.CallTimeout = 30 * time.Second
	cfgB.Transport = FuncTransport{DialFunc: fn.Dialer(nil)}
	b := newMachineCfg(t, "B", cfgB)

	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	t.Cleanup(func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	})
	gatedObj, _ := singleton.Export(a.env, stressEchoMT, gatedSkel(entered, gate), nil)
	a.srv.PublishRoot("gated", gatedObj)

	// A separate counter export tracks door reclamation end to end: B
	// holds the only reference once the root is dropped, so its lease
	// lapsing after the kill must fire unreferenced.
	ctr, ctrObj, unref := exportCounter(t, a, "counter")
	_ = ctr

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "gated", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}
	rctr, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	_ = rctr
	dropRoot(t, a, "counter", ctrObj)

	workers0 := scstats.GaugeFor("dispatch.workers_live").Value()

	// Wedge the single worker, then park a thousand calls behind it.
	wedge := make(chan error, 1)
	go func() { wedge <- stubs.Call(remote, 0, nil, nil) }()
	<-entered

	var done sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < parked; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			if err := stubs.Call(remote, 0, nil, nil); err != nil {
				failed.Add(1)
			}
		}()
	}
	waitFor(t, 10*time.Second, "calls parked in the run queue", func() bool {
		return a.srv.eng.Queued() >= parked
	})

	// Kill the transport under all of them.
	fn.CloseAll()
	donech := make(chan struct{})
	go func() { done.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(20 * time.Second):
		t.Fatal("parked calls did not terminate after their connection died")
	}
	if failed.Load() == 0 {
		t.Fatal("connection kill landed after every call completed; the test exercised nothing")
	}
	// Let the exporter's reader register the death before the worker is
	// freed, so every parked task deterministically takes the dead-conn
	// reclamation path rather than replying into the dying socket.
	waitFor(t, 5*time.Second, "exporter noticed the dead connection", func() bool {
		a.srv.mu.Lock()
		defer a.srv.mu.Unlock()
		return len(a.srv.allConns) == 0
	})

	// Unwedge the worker; its in-flight call replies into the void.
	close(gate)
	<-wedge

	// Every parked task must have released its admission slot and its
	// request; the queue and both counters drain to zero.
	waitFor(t, 10*time.Second, "run queue drained", func() bool {
		return a.srv.eng.Queued() == 0
	})
	waitFor(t, 10*time.Second, "admission slots released", func() bool {
		return a.srv.inflight.Load() == 0
	})
	if w := scstats.GaugeFor("dispatch.workers_live").Value(); w != workers0 {
		t.Fatalf("workers_live = %d after the kill, want %d (no worker may leak or die)", w, workers0)
	}
	// The peer never comes back: its lease lapses and the dropped-root
	// counter door must be reclaimed.
	select {
	case <-unref:
	case <-time.After(10 * time.Second):
		t.Fatal("exported door not reclaimed after its holder died with parked calls")
	}
}
