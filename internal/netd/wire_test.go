package netd

import (
	"bytes"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/buffer"
	"repro/internal/kernel"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{7}, 1<<16)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("read past end = %v, want EOF", err)
	}
}

func TestFrameQuick(t *testing.T) {
	f := func(p []byte) bool {
		var buf bytes.Buffer
		if err := writeFrame(&buf, p); err != nil {
			return false
		}
		got, err := readFrame(&buf)
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameTooLargeRejected(t *testing.T) {
	var buf bytes.Buffer
	// Forge a header claiming a frame beyond maxFrame.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-2])
	if _, err := readFrame(trunc); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestWireBufferRoundTrip(t *testing.T) {
	// Flatten a buffer with bytes + doors through one server's export
	// table and reconstitute it through the same server (home unwrap).
	k := kernel.New("m")
	dom := k.NewDomain("netd")
	srv, err := Start(dom, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	app := k.NewDomain("app")
	h, _ := app.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		return buffer.New(0), nil
	}, nil)

	in := buffer.New(64)
	in.WriteString("hello")
	if err := app.CopyToBuffer(h, in); err != nil {
		t.Fatal(err)
	}
	in.WriteUint32(42)

	// Exports are attributed to the session of the connection they ship
	// over; fabricate one for this in-process round trip.
	sess := &session{refs: make(map[uint64]int), conns: make(map[*conn]struct{})}
	c := &conn{sess: sess, helloDone: true}

	wire := buffer.New(128)
	if err := srv.putWireBuffer(wire, in, c, false); err != nil {
		t.Fatal(err)
	}
	out, err := srv.getWireBuffer(wire)
	if err != nil {
		t.Fatal(err)
	}
	if s, err := out.ReadString(); err != nil || s != "hello" {
		t.Fatalf("string = %q, %v", s, err)
	}
	got, err := app.AdoptFromBuffer(out)
	if err != nil {
		t.Fatal(err)
	}
	if !app.SameDoor(h, got) {
		t.Fatal("door did not come home to the same kernel object")
	}
	if v, err := out.ReadUint32(); err != nil || v != 42 {
		t.Fatalf("uint32 = %d, %v", v, err)
	}
}

func TestPeerDropsConnectionMidCall(t *testing.T) {
	// A fake peer that accepts the connection, reads one frame, and slams
	// the connection shut: the in-flight call must fail promptly with a
	// communications error rather than hanging until the timeout.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = readFrame(conn)
		_ = conn.Close()
	}()

	k := kernel.New("m")
	// A long call timeout: the drop, not the timeout, must end the call.
	srv, err := Start(k.NewDomain("netd"), "127.0.0.1:0", With(Config{CallTimeout: 30 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ref, err := srv.importDesc(descriptor{Addr: ln.Addr().String(), Key: 1})
	if err != nil {
		t.Fatal(err)
	}
	app := k.NewDomain("app")
	h := app.AdoptRef(ref)

	start := time.Now()
	_, err = app.Call(h, buffer.New(0))
	if err == nil {
		t.Fatal("call succeeded against a dropped connection")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dropped connection took %v to surface", elapsed)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	k := kernel.New("m")
	srv, err := Start(k.NewDomain("netd"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close = %v", err)
	}
}

func TestGarbageConnectionIgnored(t *testing.T) {
	// A peer sending garbage must not take the server down.
	k := kernel.New("m")
	srv, err := Start(k.NewDomain("netd"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0x04, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	time.Sleep(10 * time.Millisecond)

	// The server still serves roots.
	app := k.NewDomain("app")
	_ = app
	if srv.Exports() != 0 {
		t.Fatalf("garbage created exports: %d", srv.Exports())
	}
}
