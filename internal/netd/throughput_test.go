package netd

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/faultnet"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// Tests for the rebuilt data path (E15): the coalescing writer, the
// sharded pending table, the pooled hot path, and the dial singleflight.

var stressEchoMT = &core.MTable{Type: "netd.stressecho", DefaultSC: singleton.SCID, Ops: []string{"echo"}}

func init() {
	core.MustRegisterType("netd.stressecho", core.ObjectType)
	core.MustRegisterMTable(stressEchoMT)
}

// echoBytes runs one remote echo call and checks the payload survives the
// round trip intact — a cross-delivered reply (a pooled channel handed a
// stale frame) would corrupt it.
func echoBytes(obj *core.Object, payload []byte) error {
	var got []byte
	err := stubs.Call(obj, 0,
		func(b *buffer.Buffer) error { b.WriteBytes(payload); return nil },
		func(b *buffer.Buffer) error { var err error; got, err = b.ReadBytes(); return err })
	if err != nil {
		return err
	}
	if string(got) != string(payload) {
		return fmt.Errorf("echo returned %q, want %q (cross-delivered reply)", got, payload)
	}
	return nil
}

func TestPipelinedCallsSurviveMidBatchKill(t *testing.T) {
	// 64 goroutines pipeline calls over one connection whose underlying
	// socket is hard-killed mid-batch (frames queued behind the writer
	// when it dies). Every in-flight call must terminate — success, or an
	// error in the kernel.ErrCommFailure class — with no hangs and no
	// reply delivered to the wrong caller.
	fn := faultnet.New()
	cfgB := quickCfg()
	cfgB.Transport = FuncTransport{DialFunc: fn.Dialer(nil)}
	a := newMachineCfg(t, "A", quickCfg())
	b := newMachineCfg(t, "B", cfgB)

	obj, _ := singleton.Export(a.env, stressEchoMT, echoSkel(), nil)
	a.srv.PublishRoot("echo", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "echo", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := echoBytes(remote, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	// Arm the kill: the 20th write on B's (sole, wrapped) connection —
	// with coalescing, one write is a whole batch, so the kill lands with
	// calls both in flight on the wire and still queued behind the writer.
	fn.KillAfterWrites(20)

	const goroutines = 64
	const callsEach = 50
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		badErr   atomic.Value // first non-CommFailure error, if any
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				err := echoBytes(remote, []byte(fmt.Sprintf("g%d-call%d", g, i)))
				if err == nil {
					continue
				}
				if errors.Is(err, kernel.ErrCommFailure) {
					failures.Add(1)
					continue // redial path; later calls may succeed again
				}
				badErr.CompareAndSwap(nil, err)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pipelined calls hung after mid-batch connection kill")
	}
	if e := badErr.Load(); e != nil {
		t.Fatalf("call failed outside the comm-failure class: %v", e)
	}
	if failures.Load() == 0 {
		t.Fatal("kill never landed: no call observed a comm failure")
	}
	// The path must still be healthy after the redial.
	if err := echoBytes(remote, []byte("after")); err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
}

func echoSkel() stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		p, err := args.ReadBytes()
		if err != nil {
			return err
		}
		results.WriteBytes(p)
		return nil
	})
}

func TestSlowHandlerIsolation(t *testing.T) {
	// E20 acceptance: a blocking handler must not delay inline-eligible
	// calls — neither on its own connection nor on sibling connections —
	// because the inline fast path runs on the reader goroutine, outside
	// the worker pool the blocker is occupying. The server runs exactly
	// two workers; both get wedged on a gated door, and echo traffic must
	// keep flowing through the inline path the whole time.
	cfgA := quickCfg()
	cfgA.Dispatch = DispatchConfig{
		Workers: 2,
		// A generous threshold makes promotion deterministic: loopback
		// echo always observes far under 5ms, so eight warm calls promote
		// regardless of scheduler jitter.
		InlineThreshold: 5 * time.Millisecond,
		InlineBudget:    50 * time.Millisecond,
	}
	a := newMachineCfg(t, "A", cfgA)
	cfgB := quickCfg()
	cfgB.CallTimeout = 30 * time.Second // the gated calls outlive the echo phase
	b := newMachineCfg(t, "B", cfgB)

	obj, _ := singleton.Export(a.env, stressEchoMT, echoSkel(), nil)
	a.srv.PublishRoot("echo", obj)

	entered := make(chan struct{}, 2)
	gate := make(chan struct{})
	t.Cleanup(func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	})
	slow := stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		entered <- struct{}{}
		<-gate
		return nil
	})
	slowObj, _ := singleton.Export(a.env, stressEchoMT, slow, nil)
	a.srv.PublishRoot("slow", slowObj)

	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "echo", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}
	remoteSlow, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "slow", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the echo door past the promotion streak while the pool is
	// still free: these run on workers, and their observed durations
	// promote the door to inline eligibility.
	for i := 0; i < 4*dispatch.PromoteStreak; i++ {
		if err := echoBytes(remote, []byte("warm")); err != nil {
			t.Fatal(err)
		}
	}

	// Wedge both workers.
	var slowErrs sync.WaitGroup
	for i := 0; i < 2; i++ {
		slowErrs.Add(1)
		go func() {
			defer slowErrs.Done()
			if err := stubs.Call(remoteSlow, 0, nil, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	<-entered
	<-entered

	// The pool is now fully occupied; only the inline path can serve.
	inline0 := scstats.GaugeFor("dispatch.inline_hits").Value()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if err := echoBytes(remote, []byte("same-conn")); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("inline call alongside a blocking handler: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("inline-eligible calls stuck behind a blocking handler on the same connection")
	}

	// A sibling connection must be isolated the same way.
	c := newMachineCfg(t, "C", quickCfg())
	remoteC, err := c.srv.ImportRootObject(c.env, a.srv.Addr(), "echo", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 20; i++ {
			if err := echoBytes(remoteC, []byte("sibling-conn")); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("inline call from a sibling connection: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sibling connection's calls stuck behind another peer's blocking handler")
	}

	if d := scstats.GaugeFor("dispatch.inline_hits").Value() - inline0; d < 40 {
		t.Fatalf("inline fast path served %d of the 40 calls made while the pool was wedged, want all 40", d)
	}

	close(gate)
	slowErrs.Wait()
}

func TestColdDialSingleflight(t *testing.T) {
	// Concurrent calls to a cold address must share one dial, not
	// stampede: one flight dials, the rest ride it. And the shared
	// outcome must be reported to the breaker exactly once — a waiter
	// that loses the race must not trip breakerFailLocked for a dial that
	// actually succeeded.
	fn := faultnet.New()
	var dials atomic.Int32
	cfgB := quickCfg()
	cfgB.Transport = FuncTransport{DialFunc: fn.Dialer(func(addr string) (net.Conn, error) {
		dials.Add(1)
		return net.Dial("tcp", addr)
	})}
	a := newMachineCfg(t, "A", quickCfg())
	b := newMachineCfg(t, "B", cfgB)

	ctr, _, _ := exportCounter(t, a, "counter")
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	_ = ctr

	// Kill the import connection and wait until B prunes it, so the next
	// call finds the address cold.
	fn.CloseAll()
	waitFor(t, 2*time.Second, "dead conn pruned", func() bool {
		b.srv.mu.Lock()
		defer b.srv.mu.Unlock()
		return len(b.srv.conns) == 0
	})
	dials.Store(0)

	const callers = 32
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sctest.Get(remote)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("%d concurrent cold calls made %d dials, want 1", callers, got)
	}
	// The successful shared dial must have left the breaker closed.
	b.srv.mu.Lock()
	p := b.srv.peerLocked(a.srv.Addr())
	state := p.state
	b.srv.mu.Unlock()
	if state != breakerClosed {
		t.Fatalf("breaker state after shared successful dial = %d, want closed", state)
	}
}

func TestCoalescingCountersMove(t *testing.T) {
	// Pipelined traffic must register on the data-path gauges: flushes
	// happen, and (since frames/flush ≥ 1) the coalesced-frames counter
	// keeps pace. The send-queue depth gauge must drain back to zero.
	flushes0, frames0 := gFlushes.Value(), gFramesCoalesced.Value()
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	obj, _ := singleton.Export(a.env, stressEchoMT, echoSkel(), nil)
	a.srv.PublishRoot("echo", obj)
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "echo", stressEchoMT)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := echoBytes(remote, []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	flushes, frames := gFlushes.Value()-flushes0, gFramesCoalesced.Value()-frames0
	if flushes <= 0 || frames < flushes {
		t.Fatalf("gauges after 400 pipelined calls: flushes=%d frames=%d, want flushes>0 and frames>=flushes", flushes, frames)
	}
	waitFor(t, 2*time.Second, "send queues drained", func() bool {
		return gSendQueueDepth.Value() == 0
	})
}

// ---------------------------------------------------------------------
// Allocation regression guards.

// discardConn is a net.Conn that swallows writes and never produces
// reads, isolating the client-side call machinery from a real peer (whose
// read loop would allocate and pollute the global AllocsPerRun count).
type discardConn struct {
	once sync.Once
	ch   chan struct{}
}

func newDiscardConn() *discardConn { return &discardConn{ch: make(chan struct{})} }

func (d *discardConn) Read(p []byte) (int, error) {
	<-d.ch
	return 0, net.ErrClosed
}
func (d *discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (d *discardConn) Close() error                     { d.once.Do(func() { close(d.ch) }); return nil }
func (d *discardConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (d *discardConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (d *discardConn) SetDeadline(time.Time) error      { return nil }
func (d *discardConn) SetReadDeadline(time.Time) error  { return nil }
func (d *discardConn) SetWriteDeadline(time.Time) error { return nil }

func TestPingPathAllocs(t *testing.T) {
	// The heartbeat ping is the smallest frame the data path carries;
	// steady state it must not allocate at all (pooled buffer in, queued,
	// flushed, pooled buffer out).
	s := &Server{}
	c := s.newConn(newDiscardConn())
	t.Cleanup(func() { c.fail(errConnDead) })
	n := testing.AllocsPerRun(300, func() {
		p := buffer.Get(1)
		p.WriteByte(msgPing)
		if err := c.send(p); err != nil {
			t.Fatal(err)
		}
		// Let the writer flush before the next Get, so the measurement
		// sees the steady state (frame recycled through the pool) rather
		// than a producer outrunning the consumer.
		for gSendQueueDepth.Value() != 0 {
			runtime.Gosched()
		}
	})
	if n > 0.5 {
		t.Fatalf("ping send path allocates %.1f objects/op, want 0", n)
	}
}

func TestSmallCallClientPathAllocs(t *testing.T) {
	// ISSUE 3 acceptance (tightened by E21): the client-side machinery of
	// a small call — frame assembly, request registration, enqueue to the
	// writer, reply delivery, future recycling — must allocate at most 4
	// heap objects per call. The reply is canned (delivered as the read
	// loop would) so only the client path is measured.
	s := &Server{}
	c := s.newConn(newDiscardConn())
	t.Cleanup(func() { c.fail(errConnDead) })
	canned := buffer.FromParts(nil, nil)
	n := testing.AllocsPerRun(300, func() {
		payload := buffer.Get(64)
		payload.WriteByte(msgCall)
		id, fut := c.register()
		payload.WriteUint64(id)
		payload.WriteUint64(7) // descriptor key
		putInfoHeader(payload, nil)
		if err := c.send(payload); err != nil {
			t.Fatal(err)
		}
		c.deliver(id, canned)
		<-fut.ready
		if fut.state.Load() != futDelivered {
			t.Fatal("future not delivered")
		}
		fut.reply = nil
		putFuture(fut)
	})
	if n > 4 {
		t.Fatalf("small-call client path allocates %.1f objects/op, want <= 4", n)
	}
}

func TestSmallCallRoundTripAllocs(t *testing.T) {
	// The full both-endpoints round trip over loopback TCP: client
	// machinery, both read loops, the server-side dispatch goroutine and
	// reply. The bound is the measured steady state (~16) plus headroom;
	// it exists to catch a regression that reintroduces per-call garbage,
	// not to assert the client-path budget (TestSmallCallClientPathAllocs
	// does that).
	a := newMachine(t, "A")
	b := newMachine(t, "B")
	ctr, _, _ := exportCounter(t, a, "counter")
	_ = ctr
	remote, err := b.srv.ImportRootObject(b.env, a.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Get(remote); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if _, err := sctest.Get(remote); err != nil {
			t.Fatal(err)
		}
	})
	if n > 18 {
		t.Fatalf("small-call round trip allocates %.1f objects/op, want <= 18", n)
	}
}
