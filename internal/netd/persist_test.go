package netd

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// fastLivenessCfg scales the sweeper for tests so state flushes happen
// in milliseconds.
func fastLivenessCfg() Config {
	return Config{
		CallTimeout:       500 * time.Millisecond,
		DialTimeout:       200 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		LeaseGrace:        2 * time.Second,
		BreakerBackoff:    10 * time.Millisecond,
		BreakerMaxBackoff: 50 * time.Millisecond,
	}
}

// startDurable boots a server process for the durability tests: a
// kernel, an app env, a counter published as root "counter", and a netd
// with the given state file whose rebinder re-marshals that root.
type durableProc struct {
	k   *kernel.Kernel
	srv *Server
	env *core.Env
	ctr *sctest.Counter
}

func startDurable(t *testing.T, listenAddr, stateFile string) *durableProc {
	t.Helper()
	k := kernel.New("D")
	env, err := sctest.NewEnv(k, "D-app", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(env, sctest.CounterMT, ctr.Skeleton(), nil)
	roots := map[string]*core.Object{"counter": obj}
	srv, err := Start(k.NewDomain("D-netd"), listenAddr,
		With(fastLivenessCfg()), WithStateFile(stateFile), WithRebinder(RootRebinder(roots)))
	if err != nil {
		t.Fatal(err)
	}
	srv.PublishRoot("counter", obj)
	return &durableProc{k: k, srv: srv, env: env, ctr: ctr}
}

func waitForStateFile(t *testing.T, path string, pred func(persistedState) bool) persistedState {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		data, err := os.ReadFile(path)
		if err == nil {
			var ps persistedState
			if json.Unmarshal(data, &ps) == nil && pred(ps) {
				return ps
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("state file %s never reached the expected shape", path)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStateFilePersistsIdentityAndExports: the sweeper writes the state
// file with the instance, the peer's session, and the labeled root
// export the peer is holding.
func TestStateFilePersistsIdentityAndExports(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "netd.state")
	d := startDurable(t, "127.0.0.1:0", stateFile)
	t.Cleanup(func() { d.srv.Close() })
	cli := newMachine(t, "C")

	remote, err := cli.srv.ImportRootObject(cli.env, d.srv.Addr(), "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Add(remote, 3); err != nil || v != 3 {
		t.Fatalf("Add = %d, %v", v, err)
	}

	ps := waitForStateFile(t, stateFile, func(ps persistedState) bool {
		return len(ps.Exports) > 0 && len(ps.Sessions) > 0
	})
	if ps.Instance != d.srv.Instance() {
		t.Fatalf("persisted instance %#x, server %#x", ps.Instance, d.srv.Instance())
	}
	if ps.Exports[0].Label != "root:counter/0" {
		t.Fatalf("export label = %q", ps.Exports[0].Label)
	}
	if ps.Sessions[0].Instance != cli.srv.Instance() {
		t.Fatalf("persisted session %#x, client %#x", ps.Sessions[0].Instance, cli.srv.Instance())
	}
	if len(ps.Sessions[0].Refs) == 0 || ps.Sessions[0].Refs[0].Key != ps.Exports[0].Key {
		t.Fatalf("session refs %v do not cover export key %d", ps.Sessions[0].Refs, ps.Exports[0].Key)
	}
}

// TestRestartRejoinsOldIdentity: a killed server restarted against its
// state file comes back with the same instance, a slack-advanced key
// counter, and the labeled export rebound — the old client proxy works
// with no re-import.
func TestRestartRejoinsOldIdentity(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "netd.state")
	d := startDurable(t, "127.0.0.1:0", stateFile)
	addr, firstInstance := d.srv.Addr(), d.srv.Instance()
	cli := newMachine(t, "C")

	remote, err := cli.srv.ImportRootObject(cli.env, addr, "counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(remote, 3); err != nil {
		t.Fatal(err)
	}
	ps := waitForStateFile(t, stateFile, func(ps persistedState) bool {
		return len(ps.Exports) > 0 && len(ps.Sessions) > 0
	})

	_ = d.srv.Kill()
	d2 := startDurable(t, addr, stateFile)
	t.Cleanup(func() { d2.srv.Close() })

	if got := d2.srv.Instance(); got != firstInstance {
		t.Fatalf("instance after restart %#x, want %#x", got, firstInstance)
	}
	d2.srv.mu.Lock()
	nextKey := d2.srv.nextKey
	d2.srv.mu.Unlock()
	if nextKey < ps.NextKey+keySlack {
		t.Fatalf("nextKey %d not advanced past persisted %d + slack", nextKey, ps.NextKey)
	}
	if got := d2.srv.Exports(); got != 1 {
		t.Fatalf("rebound exports = %d, want 1", got)
	}

	// The client's old proxy reaches the rebound door once its redial
	// lands; the counter state lives in the new process, so the value
	// restarts — what must survive is the identifier, not the state.
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, err := sctest.Add(remote, 2)
		if err == nil {
			if v != 2 {
				t.Fatalf("Add through rebound export = %d, want 2", v)
			}
			break
		}
		if !core.Retryable(err) {
			t.Fatalf("old proxy failed non-retryably after restart: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("old proxy never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCorruptStateFileRefusesStart: silently minting a fresh identity
// would strand every peer's references, so a durable server refuses to
// start over an unreadable state file.
func TestCorruptStateFileRefusesStart(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "netd.state")
	if err := os.WriteFile(stateFile, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	k := kernel.New("D")
	_, err := Start(k.NewDomain("D-netd"), "127.0.0.1:0",
		With(fastLivenessCfg()), WithStateFile(stateFile))
	if err == nil {
		t.Fatal("start over a corrupt state file succeeded")
	}
}

// TestFirstBootWritesStateFile: with no state file on disk, Start mints
// an identity and persists it before serving.
func TestFirstBootWritesStateFile(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "netd.state")
	d := startDurable(t, "127.0.0.1:0", stateFile)
	t.Cleanup(func() { d.srv.Close() })
	data, err := os.ReadFile(stateFile)
	if err != nil {
		t.Fatalf("state file not written at first boot: %v", err)
	}
	var ps persistedState
	if err := json.Unmarshal(data, &ps); err != nil {
		t.Fatal(err)
	}
	if ps.Instance != d.srv.Instance() {
		t.Fatalf("persisted %#x, live %#x", ps.Instance, d.srv.Instance())
	}
}
