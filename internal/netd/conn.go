package netd

import (
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
)

// This file is the connection data path, rebuilt for throughput under
// concurrency (E15) and rebuilt again as the client call engine (E21):
//
//   - Frames are not written caller-side under a mutex. Each connection
//     runs one writer goroutine draining a bounded send queue; all the
//     frames it can grab are flattened into one buffered flush and hit
//     the socket in a single write, so N pipelined callers cost ~one
//     syscall per batch instead of N (×2 — the old path wrote the length
//     header and the payload separately). Ordering is strict FIFO in
//     enqueue order; on connection death every queued and in-flight call
//     fails fast in the kernel.ErrCommFailure class.
//   - The flush policy is occupancy-aware: the writer lingers (a bounded
//     scheduler yield) to coalesce only while some producer is observed
//     mid-enqueue; a lone pipelining caller's frame goes to the socket
//     immediately, so P1 latency no longer pays for P64 batching.
//   - The request/reply demultiplexer is sharded: request-id registration,
//     delivery and abandonment distribute over pendShards mutexes instead
//     of contending on one, and liveness checks are a single atomic load.
//   - A pending call is one pooled callFuture — an atomic state machine
//     parked on a one-shot semaphore with an embedded reusable timer —
//     instead of a pooled channel plus a pooled timer plus a map entry
//     with its own lifecycle. Register/deliver/abandon/fail collapse into
//     transitions on that struct, and a context-free small call allocates
//     near-zero on the client hot path (enforced by TestAllocs* guards).

// errConnDead is the sentinel for operations on a failed connection; the
// call sites wrap it in the kernel.ErrCommFailure class via commErr.
var errConnDead = errors.New("connection closed")

const (
	// pendShards is the number of pending-call shards per connection
	// (a power of two; request ids distribute round-robin).
	pendShards = 16
	// sendQueueLen bounds the frames queued behind one connection's
	// writer. Enqueueing blocks (fail-fast on conn death) beyond it —
	// backpressure, not unbounded memory.
	sendQueueLen = 256
	// flushHighWater caps how many payload bytes one flush batches
	// before it goes to the socket even if more frames are queued.
	flushHighWater = 64 << 10
	// flushRetainCap bounds the flush buffer capacity kept across
	// batches; a larger one (a giant frame went through) is released.
	flushRetainCap = 256 << 10
)

// callFuture states. A future is pending from register until exactly one
// of deliver (a reply arrived), fail (the connection died) or abandon
// (the waiter gave up first) settles it.
const (
	futPending uint32 = iota
	futDelivered
	futFailed
	futAbandoned
)

// callFuture is one pending call's rendezvous: the single pooled object
// that replaces the per-call reply channel, reply-wait timer and their
// separate pool round trips (E21). The settling side (reader goroutine,
// fail) arbitrates ownership under the pending-table shard lock — lookup,
// removal and the state/reply stores happen atomically together — and
// then signals ready, a one-shot semaphore. The waiting side selects on
// ready, its context's cancel channel and the embedded timer; whichever
// side removed the map entry decided the race, so a waiter that finds its
// entry already gone knows a ready signal is in flight and drains it
// before recycling. Only the waiter returns a future to the pool.
type callFuture struct {
	state atomic.Uint32
	reply *buffer.Buffer
	ready chan struct{} // cap 1: exactly one send per settle
	timer *time.Timer   // lazily created, reused across pool cycles
}

// futurePool recycles callFutures. The ready channel is created once per
// future and reused: every settle sends exactly once and every consumer
// receives exactly once, so a pooled future's channel is always empty.
var futurePool = sync.Pool{New: func() any {
	return &callFuture{ready: make(chan struct{}, 1)}
}}

func getFuture() *callFuture {
	f := futurePool.Get().(*callFuture)
	f.state.Store(futPending)
	f.reply = nil
	return f
}

func putFuture(f *callFuture) { futurePool.Put(f) }

// armTimer (re)arms the future's embedded reply-wait timer. Reset on a
// fired-but-unread timer is race-free since the Go 1.23 timer semantics
// (go.mod pins ≥1.23), so the timer can never deliver a stale tick.
func (f *callFuture) armTimer(d time.Duration) *time.Timer {
	if f.timer == nil {
		f.timer = time.NewTimer(d)
	} else {
		f.timer.Reset(d)
	}
	return f.timer
}

// pendShard is one lock stripe of the pending-call table.
type pendShard struct {
	mu sync.Mutex
	m  map[uint64]*callFuture
}

// sendReq is one queued frame. buf is owned by the queue from the moment
// send accepts it and is recycled after the flush. drop, if set, is
// called when the frame may not have reached the peer (write error or
// queue discard on conn death) — the release path uses it to requeue.
type sendReq struct {
	buf  *buffer.Buffer
	drop func()
}

// conn is one transport connection with multiplexed request/reply
// framing, batched writes, and heartbeat bookkeeping. A peer address may
// be served by several conns — a stripe set (E21); each stripe has its
// own writer, pending table and request-id space, so nothing here is
// stripe-aware except the bookkeeping connClosed uses to heal the set.
type conn struct {
	netc  net.Conn
	sendq chan sendReq

	helloed  chan struct{} // closed once the peer's hello arrives
	done     chan struct{} // closed when the conn dies
	dead     atomic.Bool
	lastRecv atomic.Int64 // unix nanos of the last frame received
	lastSend atomic.Int64 // unix nanos of the last flush written
	pinging  atomic.Bool

	// producers counts goroutines currently inside sendDrop, and pending
	// counts registered calls awaiting replies — the writer's occupancy
	// signals: when the queue runs dry mid-batch it lingers for
	// stragglers only while concurrency is in evidence.
	producers atomic.Int32
	pending   atomic.Int32

	nextID atomic.Uint64
	shards [pendShards]pendShard

	// inflight counts this peer's serve calls admitted and not yet
	// replied — the per-peer half of the dispatch engine's bounded
	// admission (Config.Dispatch.MaxPerPeer).
	inflight atomic.Int64

	// owner is this connection's region-grant token: every bulk region
	// granted for a frame sent on this connection is keyed under it, so
	// connClosed can reclaim exactly the in-flight grants a dead
	// connection strands. caps is the capability set negotiated at hello
	// (local ∩ peer ∩ same machine); zero until the handshake completes.
	owner uint64
	caps  atomic.Uint32

	mu        sync.Mutex
	helloDone bool
	sess      *session // peer lease session; guarded by Server.mu
	peerAddr  string   // peer's advertised listen address; set at hello
}

// newConn wraps netc and starts its writer goroutine, tracked by s.wg.
func (s *Server) newConn(netc net.Conn) *conn {
	c := &conn{
		netc:    netc,
		sendq:   make(chan sendReq, sendQueueLen),
		helloed: make(chan struct{}),
		done:    make(chan struct{}),
		owner:   nextOwner.Add(1),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*callFuture)
	}
	now := time.Now().UnixNano()
	c.lastRecv.Store(now)
	c.lastSend.Store(now)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		c.writeLoop()
	}()
	return c
}

// isDead reports whether the connection has failed.
func (c *conn) isDead() bool { return c.dead.Load() }

// bulk reports whether the connection negotiated the bulk-region tier.
func (c *conn) bulk() bool { return Capability(c.caps.Load())&CapBulkRegions != 0 }

// hasSession reports whether the session handshake completed.
func (c *conn) hasSession() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.helloDone
}

// shard returns the pending stripe for a request id.
func (c *conn) shard(id uint64) *pendShard { return &c.shards[id%pendShards] }

// register allocates a request id and a pooled pending future. On a dead
// connection the future comes back already settled as failed (with its
// ready signal sent), mirroring fail(): the caller's send will also
// error, and its abandon drains the signal before recycling.
func (c *conn) register() (uint64, *callFuture) {
	id := c.nextID.Add(1)
	f := getFuture()
	sh := c.shard(id)
	sh.mu.Lock()
	if c.dead.Load() {
		sh.mu.Unlock()
		f.state.Store(futFailed)
		f.ready <- struct{}{}
		return id, f
	}
	sh.m[id] = f
	c.pending.Add(1)
	sh.mu.Unlock()
	return id, f
}

// deliver completes a pending request. It reports whether a waiter owns
// the reply now; an undeliverable reply (its caller timed out or
// cancelled, and won the abandon race) is the receive loop's to clean up
// — it may carry a bulk region grant that must not be left stranded in
// the ring.
func (c *conn) deliver(id uint64, reply *buffer.Buffer) bool {
	sh := c.shard(id)
	sh.mu.Lock()
	f, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
		c.pending.Add(-1)
		f.reply = reply
		f.state.Store(futDelivered)
	}
	sh.mu.Unlock()
	if ok {
		f.ready <- struct{}{}
	}
	return ok
}

// abandon withdraws a pending request whose waiter is giving up (timeout,
// cancellation, send failure). If the entry is still in the table the
// waiter won: no settle can touch the future anymore, so it is recycled
// here. Otherwise a settle (deliver or fail) removed the entry and its
// ready signal follows immediately — drain it, dispose of a delivered
// reply via drop (it may carry a bulk region grant that must not sit in
// the ring until the connection dies), and then recycle.
func (c *conn) abandon(id uint64, f *callFuture, drop func(*buffer.Buffer)) {
	sh := c.shard(id)
	sh.mu.Lock()
	if _, ok := sh.m[id]; ok {
		delete(sh.m, id)
		c.pending.Add(-1)
		f.state.Store(futAbandoned)
		sh.mu.Unlock()
		putFuture(f)
		return
	}
	sh.mu.Unlock()
	<-f.ready
	if f.state.Load() == futDelivered {
		reply := f.reply
		f.reply = nil
		drop(reply)
	}
	putFuture(f)
}

// send transfers ownership of payload to the connection's writer. It
// returns an error only when the connection is (or while blocked becomes)
// dead; a later write failure surfaces through the pending futures.
func (c *conn) send(payload *buffer.Buffer) error {
	return c.sendDrop(payload, nil)
}

// sendDrop is send with a loss callback: drop runs if the frame was
// accepted but may never have reached the peer (conn death before or
// during its flush). On an error return drop is NOT called — the caller
// still owns the failure.
func (c *conn) sendDrop(payload *buffer.Buffer, drop func()) error {
	if c.dead.Load() {
		buffer.Put(payload)
		return errConnDead
	}
	c.producers.Add(1)
	select {
	case c.sendq <- sendReq{buf: payload, drop: drop}:
		c.producers.Add(-1)
		gSendQueueDepth.Add(1)
		if c.dead.Load() {
			// The writer may have exited between our enqueue and its
			// drain; sweep so no frame (ours or a racer's) is stranded.
			c.drainSendq()
		}
		return nil
	case <-c.done:
		c.producers.Add(-1)
		buffer.Put(payload)
		return errConnDead
	}
}

// writeLoop drains the send queue, coalescing every frame it can grab —
// up to flushHighWater bytes — into one buffered write. The flush buffer
// is reused across batches, so steady-state sends allocate nothing.
func (c *conn) writeLoop() {
	flush := make([]byte, 0, 16<<10)
	recycle := make([]*buffer.Buffer, 0, 32)
	drops := make([]func(), 0, 8)
	// Adaptive linger credit (E21): when the queue runs dry mid-batch the
	// writer may yield a couple of times to let concurrent producers land
	// their frames — the win that turns N near-simultaneous sends into
	// one syscall. Lingering is a pure latency tax for a lone caller, so
	// it is gated on evidence of concurrency: more than one registered
	// call awaiting a reply, a producer observed mid-enqueue right now,
	// or recent batches that actually coalesced (credit, earned when a
	// batch carries >1 frame, spent when lingering yields nothing). A
	// single pipelining caller has pending == 1 at drain time, drains
	// its credit after two batches and gets immediate flushes from then
	// on; a client writer with 64 calls outstanding always lingers, and
	// a server's reply writer (pending is client-side, so 0 for it)
	// sustains lingering through credit as long as batching keeps paying.
	const maxLingerCredit = 4
	credit := 0
	for {
		select {
		case <-c.done:
			c.drainSendq()
			return
		case r := <-c.sendq:
			flush, recycle, drops = flush[:0], recycle[:0], drops[:0]
			lingered := 0
			for {
				p := r.buf.Bytes()
				var hdr [4]byte
				binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
				flush = append(flush, hdr[:]...)
				flush = append(flush, p...)
				recycle = append(recycle, r.buf)
				if r.drop != nil {
					drops = append(drops, r.drop)
				}
				if len(flush) >= flushHighWater {
					break
				}
				select {
				case r = <-c.sendq:
					continue
				default:
				}
				grabbed := false
				for !grabbed && lingered < 2 && (c.pending.Load() > 1 || credit > 0 || c.producers.Load() > 0) {
					lingered++
					runtime.Gosched()
					select {
					case r = <-c.sendq:
						grabbed = true
					default:
					}
				}
				if !grabbed {
					break
				}
			}
			if len(recycle) > 1 {
				if credit = credit + 2; credit > maxLingerCredit {
					credit = maxLingerCredit
				}
			} else if lingered > 0 && credit > 0 {
				credit--
			}
			gSendQueueDepth.Add(int64(-len(recycle)))
			_, err := c.netc.Write(flush)
			for _, b := range recycle {
				buffer.Put(b)
			}
			if err != nil {
				for _, d := range drops {
					d()
				}
				c.fail(err)
				c.drainSendq()
				return
			}
			gFlushes.Add(1)
			gFramesCoalesced.Add(int64(len(recycle)))
			c.lastSend.Store(time.Now().UnixNano())
			if cap(flush) > flushRetainCap {
				flush = make([]byte, 0, 16<<10)
			}
		}
	}
}

// drainSendq discards queued frames after the connection died, recycling
// their buffers and running their loss callbacks.
func (c *conn) drainSendq() {
	for {
		select {
		case r := <-c.sendq:
			gSendQueueDepth.Add(-1)
			buffer.Put(r.buf)
			if r.drop != nil {
				r.drop()
			}
		default:
			return
		}
	}
}

// fail marks the connection dead and wakes all pending requests. The
// error is implicit: waiters observe a failed future and report a
// communications failure for their own peer address.
func (c *conn) fail(error) {
	if !c.dead.CompareAndSwap(false, true) {
		return
	}
	close(c.done)
	_ = c.netc.Close()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		m := sh.m
		sh.m = make(map[uint64]*callFuture)
		for _, f := range m {
			f.state.Store(futFailed)
		}
		c.pending.Add(int32(-len(m)))
		sh.mu.Unlock()
		for _, f := range m {
			f.ready <- struct{}{}
		}
	}
}
