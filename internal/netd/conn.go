package netd

import (
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
)

// This file is the connection data path, rebuilt for throughput under
// concurrency (E15):
//
//   - Frames are not written caller-side under a mutex. Each connection
//     runs one writer goroutine draining a bounded send queue; all the
//     frames it can grab are flattened into one buffered flush and hit
//     the socket in a single write, so N pipelined callers cost ~one
//     syscall per batch instead of N (×2 — the old path wrote the length
//     header and the payload separately). Ordering is strict FIFO in
//     enqueue order; on connection death every queued and in-flight call
//     fails fast in the kernel.ErrCommFailure class.
//   - The request/reply demultiplexer is sharded: request-id registration,
//     delivery and abandonment distribute over pendShards mutexes instead
//     of contending on one, and liveness checks are a single atomic load.
//   - The per-call garbage is pooled: frame-assembly buffers
//     (buffer.Get/Put), reply channels and reply-wait timers are all
//     reused, so a context-free small call allocates near-zero on the
//     client hot path (enforced by TestAllocs* guards).

// errConnDead is the sentinel for operations on a failed connection; the
// call sites wrap it in the kernel.ErrCommFailure class via commErr.
var errConnDead = errors.New("connection closed")

const (
	// pendShards is the number of pending-call shards per connection
	// (a power of two; request ids distribute round-robin).
	pendShards = 16
	// sendQueueLen bounds the frames queued behind one connection's
	// writer. Enqueueing blocks (fail-fast on conn death) beyond it —
	// backpressure, not unbounded memory.
	sendQueueLen = 256
	// flushHighWater caps how many payload bytes one flush batches
	// before it goes to the socket even if more frames are queued.
	flushHighWater = 64 << 10
	// flushRetainCap bounds the flush buffer capacity kept across
	// batches; a larger one (a giant frame went through) is released.
	flushRetainCap = 256 << 10
)

// pendShard is one lock stripe of the pending-call table.
type pendShard struct {
	mu sync.Mutex
	m  map[uint64]chan *buffer.Buffer
}

// sendReq is one queued frame. buf is owned by the queue from the moment
// send accepts it and is recycled after the flush. drop, if set, is
// called when the frame may not have reached the peer (write error or
// queue discard on conn death) — the release path uses it to requeue.
type sendReq struct {
	buf  *buffer.Buffer
	drop func()
}

// conn is one TCP connection with multiplexed request/reply framing,
// batched writes, and heartbeat bookkeeping.
type conn struct {
	netc  net.Conn
	sendq chan sendReq

	helloed  chan struct{} // closed once the peer's hello arrives
	done     chan struct{} // closed when the conn dies
	dead     atomic.Bool
	lastRecv atomic.Int64 // unix nanos of the last frame received
	lastSend atomic.Int64 // unix nanos of the last flush written
	pinging  atomic.Bool

	nextID atomic.Uint64
	shards [pendShards]pendShard

	// inflight counts this peer's serve calls admitted and not yet
	// replied — the per-peer half of the dispatch engine's bounded
	// admission (Config.Dispatch.MaxPerPeer).
	inflight atomic.Int64

	// owner is this connection's region-grant token: every bulk region
	// granted for a frame sent on this connection is keyed under it, so
	// connClosed can reclaim exactly the in-flight grants a dead
	// connection strands. caps is the capability set negotiated at hello
	// (local ∩ peer ∩ same machine); zero until the handshake completes.
	owner uint64
	caps  atomic.Uint32

	mu        sync.Mutex
	helloDone bool
	sess      *session // peer lease session; guarded by Server.mu
	peerAddr  string   // peer's advertised listen address; set at hello
}

// newConn wraps netc and starts its writer goroutine, tracked by s.wg.
func (s *Server) newConn(netc net.Conn) *conn {
	c := &conn{
		netc:    netc,
		sendq:   make(chan sendReq, sendQueueLen),
		helloed: make(chan struct{}),
		done:    make(chan struct{}),
		owner:   nextOwner.Add(1),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]chan *buffer.Buffer)
	}
	now := time.Now().UnixNano()
	c.lastRecv.Store(now)
	c.lastSend.Store(now)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		c.writeLoop()
	}()
	return c
}

// isDead reports whether the connection has failed.
func (c *conn) isDead() bool { return c.dead.Load() }

// bulk reports whether the connection negotiated the bulk-region tier.
func (c *conn) bulk() bool { return Capability(c.caps.Load())&CapBulkRegions != 0 }

// hasSession reports whether the session handshake completed.
func (c *conn) hasSession() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.helloDone
}

// shard returns the pending stripe for a request id.
func (c *conn) shard(id uint64) *pendShard { return &c.shards[id%pendShards] }

// register allocates a request id and a (pooled) reply channel.
func (c *conn) register() (uint64, chan *buffer.Buffer) {
	id := c.nextID.Add(1)
	ch := getReplyChan()
	sh := c.shard(id)
	sh.mu.Lock()
	if c.dead.Load() {
		sh.mu.Unlock()
		close(ch) // mirrors fail(): the caller sees a lost connection
		return id, ch
	}
	sh.m[id] = ch
	sh.mu.Unlock()
	return id, ch
}

// unregister abandons a pending request. It reports whether the entry was
// still present — if so no reply can arrive and the caller may recycle
// the channel; if not, a delivery or connection failure already owns it.
func (c *conn) unregister(id uint64) bool {
	sh := c.shard(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	return ok
}

// deliver completes a pending request. It reports whether a waiter took
// the reply; an undeliverable reply (its caller timed out or cancelled)
// is the receive loop's to clean up — it may carry a bulk region grant
// that must not be left stranded in the ring.
func (c *conn) deliver(id uint64, reply *buffer.Buffer) bool {
	sh := c.shard(id)
	sh.mu.Lock()
	ch, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if ok {
		ch <- reply
	}
	return ok
}

// send transfers ownership of payload to the connection's writer. It
// returns an error only when the connection is (or while blocked becomes)
// dead; a later write failure surfaces through the pending channels.
func (c *conn) send(payload *buffer.Buffer) error {
	return c.sendDrop(payload, nil)
}

// sendDrop is send with a loss callback: drop runs if the frame was
// accepted but may never have reached the peer (conn death before or
// during its flush). On an error return drop is NOT called — the caller
// still owns the failure.
func (c *conn) sendDrop(payload *buffer.Buffer, drop func()) error {
	if c.dead.Load() {
		buffer.Put(payload)
		return errConnDead
	}
	select {
	case c.sendq <- sendReq{buf: payload, drop: drop}:
		gSendQueueDepth.Add(1)
		if c.dead.Load() {
			// The writer may have exited between our enqueue and its
			// drain; sweep so no frame (ours or a racer's) is stranded.
			c.drainSendq()
		}
		return nil
	case <-c.done:
		buffer.Put(payload)
		return errConnDead
	}
}

// writeLoop drains the send queue, coalescing every frame it can grab —
// up to flushHighWater bytes — into one buffered write. The flush buffer
// is reused across batches, so steady-state sends allocate nothing.
func (c *conn) writeLoop() {
	flush := make([]byte, 0, 16<<10)
	recycle := make([]*buffer.Buffer, 0, 32)
	drops := make([]func(), 0, 8)
	for {
		select {
		case <-c.done:
			c.drainSendq()
			return
		case r := <-c.sendq:
			flush, recycle, drops = flush[:0], recycle[:0], drops[:0]
			lingered := 0
			for {
				p := r.buf.Bytes()
				var hdr [4]byte
				binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
				flush = append(flush, hdr[:]...)
				flush = append(flush, p...)
				recycle = append(recycle, r.buf)
				if r.drop != nil {
					drops = append(drops, r.drop)
				}
				if len(flush) >= flushHighWater {
					break
				}
				select {
				case r = <-c.sendq:
					continue
				default:
				}
				// Linger briefly: concurrent callers are typically a
				// hair behind the writer, so yielding once or twice
				// lets them enqueue and turns N near-simultaneous sends
				// into one syscall. Bounded, so a lone caller pays at
				// most two scheduler yields of latency.
				if lingered < 2 {
					lingered++
					runtime.Gosched()
					select {
					case r = <-c.sendq:
						continue
					default:
					}
				}
				break
			}
			gSendQueueDepth.Add(int64(-len(recycle)))
			_, err := c.netc.Write(flush)
			for _, b := range recycle {
				buffer.Put(b)
			}
			if err != nil {
				for _, d := range drops {
					d()
				}
				c.fail(err)
				c.drainSendq()
				return
			}
			gFlushes.Add(1)
			gFramesCoalesced.Add(int64(len(recycle)))
			c.lastSend.Store(time.Now().UnixNano())
			if cap(flush) > flushRetainCap {
				flush = make([]byte, 0, 16<<10)
			}
		}
	}
}

// drainSendq discards queued frames after the connection died, recycling
// their buffers and running their loss callbacks.
func (c *conn) drainSendq() {
	for {
		select {
		case r := <-c.sendq:
			gSendQueueDepth.Add(-1)
			buffer.Put(r.buf)
			if r.drop != nil {
				r.drop()
			}
		default:
			return
		}
	}
}

// fail marks the connection dead and wakes all pending requests. The
// error is implicit: waiters observe a closed reply channel and report a
// communications failure for their own peer address.
func (c *conn) fail(error) {
	if !c.dead.CompareAndSwap(false, true) {
		return
	}
	close(c.done)
	_ = c.netc.Close()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		m := sh.m
		sh.m = make(map[uint64]chan *buffer.Buffer)
		sh.mu.Unlock()
		for _, ch := range m {
			close(ch)
		}
	}
}

// ---------------------------------------------------------------------
// Hot-path pools: reply channels and reply-wait timers.

// replyChanPool recycles the buffered reply channels handed out by
// register. A channel is returned only when its round trip provably
// finished (value received, or unregister removed the entry so no sender
// exists); channels closed by fail or raced by a late delivery are left
// to the collector.
var replyChanPool = sync.Pool{New: func() any { return make(chan *buffer.Buffer, 1) }}

func getReplyChan() chan *buffer.Buffer { return replyChanPool.Get().(chan *buffer.Buffer) }

func putReplyChan(ch chan *buffer.Buffer) { replyChanPool.Put(ch) }

// timerPool recycles reply-wait timers; Reset/Stop are race-free since
// the Go 1.23 timer semantics (go.mod pins ≥1.23), so a pooled timer
// can never deliver a stale tick.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}
