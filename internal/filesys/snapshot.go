package filesys

import (
	"fmt"
	"os"

	"repro/internal/buffer"
)

// Store persistence: the stable storage behind reconnectable servers
// (§8.3 assumes "servers [that] keep their state in stable storage") and
// the springfsd daemon's -snapshot flag. The format reuses the project's
// own marshal stream.

// snapshotMagic guards against loading foreign files.
const snapshotMagic = 0x53465331 // "SFS1"

// Snapshot serializes the store's files.
func (s *Store) Snapshot() []byte {
	s.mu.Lock()
	files := make([]*fileState, 0, len(s.files))
	for _, st := range s.files {
		files = append(files, st)
	}
	s.mu.Unlock()

	buf := buffer.New(1024)
	buf.WriteUint32(snapshotMagic)
	buf.WriteUvarint(uint64(len(files)))
	for _, st := range files {
		st.mu.Lock()
		buf.WriteString(st.name)
		buf.WriteUint32(st.version)
		buf.WriteBytes(st.data)
		st.mu.Unlock()
	}
	return buf.Bytes()
}

// Restore replaces the store's contents from a snapshot.
func (s *Store) Restore(data []byte) error {
	buf := buffer.FromParts(data, nil)
	magic, err := buf.ReadUint32()
	if err != nil || magic != snapshotMagic {
		return fmt.Errorf("filesys: not a store snapshot (magic %#x, %v)", magic, err)
	}
	n, err := buf.ReadUvarint()
	if err != nil {
		return err
	}
	files := make(map[string]*fileState, n)
	for i := uint64(0); i < n; i++ {
		name, err := buf.ReadString()
		if err != nil {
			return fmt.Errorf("filesys: corrupt snapshot: %w", err)
		}
		version, err := buf.ReadUint32()
		if err != nil {
			return fmt.Errorf("filesys: corrupt snapshot: %w", err)
		}
		p, err := buf.ReadBytes()
		if err != nil {
			return fmt.Errorf("filesys: corrupt snapshot: %w", err)
		}
		files[name] = &fileState{name: name, version: version, data: append([]byte(nil), p...)}
	}
	s.mu.Lock()
	s.files = files
	s.mu.Unlock()
	return nil
}

// SaveFile writes the store snapshot to path.
func (s *Store) SaveFile(path string) error {
	return os.WriteFile(path, s.Snapshot(), 0o644)
}

// LoadFile restores the store from path; a missing file leaves the store
// empty (first boot).
func (s *Store) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	return s.Restore(data)
}

// Store exposes the service's backing store (for persistence wiring).
func (s *Service) Store() *Store { return s.store }
