package filesys

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/buffer"
)

// Store persistence: the stable storage behind reconnectable servers
// (§8.3 assumes "servers [that] keep their state in stable storage") and
// the springfsd daemon's -snapshot / -wal flags. The format reuses the
// project's own marshal stream, framed so a torn or bit-rotted file is
// detected instead of silently loaded:
//
//	[magic u32 = "SFS2"] [n uvarint] n × ([name string] [version u32]
//	[data bytes]) [crc u32 over every preceding byte]
//
// Legacy "SFS1" snapshots (no trailer) are still accepted by Restore so a
// pre-existing -snapshot file survives the upgrade.

const (
	snapshotMagicV1 = 0x53465331 // "SFS1", no CRC trailer
	snapshotMagic   = 0x53465332 // "SFS2", CRC32 trailer
)

// ErrCorruptSnapshot is the typed error class for a snapshot that fails
// validation — wrong magic, truncated stream, trailing garbage, or a
// CRC mismatch. Restore returns it with the in-memory store untouched.
var ErrCorruptSnapshot = errors.New("filesys: corrupt snapshot")

// Snapshot serializes the store's files, ending with a CRC32 trailer over
// the whole stream.
func (s *Store) Snapshot() []byte {
	s.mu.Lock()
	files := make([]*fileState, 0, len(s.files))
	for _, st := range s.files {
		files = append(files, st)
	}
	s.mu.Unlock()

	buf := buffer.New(1024)
	buf.WriteUint32(snapshotMagic)
	buf.WriteUvarint(uint64(len(files)))
	for _, st := range files {
		st.mu.Lock()
		buf.WriteString(st.name)
		buf.WriteUint32(st.version)
		buf.WriteBytes(st.data)
		st.mu.Unlock()
	}
	buf.WriteUint32(crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// Restore replaces the store's contents from a snapshot. A snapshot that
// fails validation is rejected with ErrCorruptSnapshot and the store's
// in-memory contents are left exactly as they were.
func (s *Store) Restore(data []byte) error {
	files, err := parseSnapshot(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	for _, st := range files {
		st.wal = s.wal
	}
	s.files = files
	s.mu.Unlock()
	return nil
}

// parseSnapshot validates and decodes a snapshot stream into a fresh file
// map, touching no store state.
func parseSnapshot(data []byte) (map[string]*fileState, error) {
	buf := buffer.FromParts(data, nil)
	magic, err := buf.ReadUint32()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorruptSnapshot, err)
	}
	switch magic {
	case snapshotMagic:
		// The trailer is the last 4 bytes; everything before it is summed.
		if len(data) < 8 {
			return nil, fmt.Errorf("%w: %d bytes is too short for the CRC trailer", ErrCorruptSnapshot, len(data))
		}
		stored, err := buffer.FromParts(data[len(data)-4:], nil).ReadUint32()
		if err != nil {
			return nil, fmt.Errorf("%w: unreadable CRC trailer", ErrCorruptSnapshot)
		}
		if sum := crc32.ChecksumIEEE(data[:len(data)-4]); sum != stored {
			return nil, fmt.Errorf("%w: CRC mismatch (stored %#x, computed %#x)", ErrCorruptSnapshot, stored, sum)
		}
	case snapshotMagicV1:
		// Legacy format: no trailer to verify.
	default:
		return nil, fmt.Errorf("%w: not a store snapshot (magic %#x)", ErrCorruptSnapshot, magic)
	}
	n, err := buf.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: file count: %v", ErrCorruptSnapshot, err)
	}
	files := make(map[string]*fileState, n)
	for i := uint64(0); i < n; i++ {
		name, err := buf.ReadString()
		if err != nil {
			return nil, fmt.Errorf("%w: file %d name: %v", ErrCorruptSnapshot, i, err)
		}
		version, err := buf.ReadUint32()
		if err != nil {
			return nil, fmt.Errorf("%w: file %d version: %v", ErrCorruptSnapshot, i, err)
		}
		p, err := buf.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("%w: file %d data: %v", ErrCorruptSnapshot, i, err)
		}
		files[name] = &fileState{name: name, version: version, data: append([]byte(nil), p...)}
	}
	if magic == snapshotMagic && buf.Len() != 4 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d files", ErrCorruptSnapshot, buf.Len()-4, n)
	}
	return files, nil
}

// SaveFile writes the store snapshot to path crash-consistently: the bytes
// go to a temp file in the same directory, are fsynced, renamed over the
// destination, and the directory is fsynced — so at every instant path
// holds either the previous complete snapshot or the new one, never a
// torn mixture.
func (s *Store) SaveFile(path string) error {
	return writeFileAtomic(path, s.Snapshot())
}

// writeFileAtomic is the temp+fsync+rename+dir-fsync sequence shared by
// snapshot saves and the WAL's compaction checkpoint.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("filesys: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = tmp.Close(); _ = os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("filesys: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("filesys: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("filesys: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("filesys: installing %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("filesys: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("filesys: syncing dir %s: %w", dir, err)
	}
	return nil
}

// LoadFile restores the store from path; a missing file leaves the store
// empty (first boot).
func (s *Store) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	return s.Restore(data)
}

// Store exposes the service's backing store (for persistence wiring).
func (s *Service) Store() *Store { return s.store }
