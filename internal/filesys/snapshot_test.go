package filesys

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	a, err := s.create("a")
	if err != nil {
		t.Fatal(err)
	}
	a.write(0, []byte("alpha"))
	a.write(5, []byte("!"))
	b, err := s.create("b/deep")
	if err != nil {
		t.Fatal(err)
	}
	b.write(2, []byte{0, 1, 2})

	restored := NewStore()
	if err := restored.Restore(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ra, err := restored.get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.read(0, 100), []byte("alpha!")) || ra.ver() != 2 {
		t.Fatalf("a = %q v%d", ra.read(0, 100), ra.ver())
	}
	rb, err := restored.get("b/deep")
	if err != nil {
		t.Fatal(err)
	}
	if rb.size() != 5 || rb.ver() != 1 {
		t.Fatalf("b = %d bytes v%d", rb.size(), rb.ver())
	}
	if got := restored.list(); len(got) != 2 {
		t.Fatalf("list = %v", got)
	}
}

func TestSnapshotQuick(t *testing.T) {
	f := func(names []string, payloads [][]byte) bool {
		s := NewStore()
		want := make(map[string][]byte)
		for i, name := range names {
			if name == "" {
				continue
			}
			st, err := s.create(name)
			if err != nil {
				continue // duplicate quick-generated name
			}
			var p []byte
			if i < len(payloads) {
				p = payloads[i]
			}
			st.write(0, p)
			want[name] = append([]byte(nil), p...)
		}
		restored := NewStore()
		if err := restored.Restore(s.Snapshot()); err != nil {
			return false
		}
		for name, data := range want {
			st, err := restored.get(name)
			if err != nil {
				return false
			}
			if !bytes.Equal(st.read(0, int32(len(data)+1)), data) {
				return false
			}
		}
		return len(restored.list()) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.sfs")

	s := NewStore()
	st, err := s.create("persist")
	if err != nil {
		t.Fatal(err)
	}
	st.write(0, []byte("durable"))
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	loaded := NewStore()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := loaded.get("persist")
	if err != nil || string(got.read(0, 7)) != "durable" {
		t.Fatalf("loaded = %v, %v", got, err)
	}

	// Missing file: clean first boot.
	fresh := NewStore()
	if err := fresh.LoadFile(filepath.Join(dir, "missing.sfs")); err != nil {
		t.Fatal(err)
	}
	if len(fresh.list()) != 0 {
		t.Fatal("missing snapshot produced files")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	s := NewStore()
	if err := s.Restore([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := s.Restore(nil); err == nil {
		t.Fatal("empty accepted")
	}
}
