// Write-ahead log: the durability layer behind springfsd -wal. Every
// store mutation (create, remove, write) is applied in memory and appended
// to an on-disk log before the operation is acknowledged; a crashed server
// reopens the same directory and replays the log over the latest snapshot
// to recover exactly the acknowledged state.
//
// Commit is grouped: mutators enqueue their records and block while a
// single committer goroutine drains the queue, writes one batch with one
// write syscall and one fsync, and then wakes every waiter in the batch —
// the same coalescing shape as netd's connection writer (PR 3), applied to
// fsync cost instead of syscall cost. A bounded linger window lets
// concurrent mutators pile into the batch; E19 sweeps the batch size
// against throughput.
//
// On-disk format, per record:
//
//	[len u32] [crc u32 = CRC32-IEEE(payload)] [payload]
//	payload:  [op u8] [name string]            op = create | remove
//	          [op u8] [name string] [offset varint] [version u32] [data bytes]
//
// Replay validates the entire log before applying anything: a record that
// extends past the end of the file is a torn tail (the crash cut a batch
// write short) and is truncated away; a complete record whose CRC or
// structure is wrong is corruption and fails recovery with the store
// untouched. Records are idempotent — create tolerates an existing file,
// remove a missing one, and write carries its resulting version — so
// replaying over a snapshot that already contains some of the log's
// effects (the compaction window) converges to the same state.
package filesys

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/scstats"
)

// WAL record opcodes.
const (
	walOpCreate byte = 1
	walOpRemove byte = 2
	walOpWrite  byte = 3
)

// walHeaderSize is the per-record framing overhead: length + CRC.
const walHeaderSize = 8

// maxWALRecord bounds one record's payload; a length field beyond it is
// corruption, not an enormous record.
const maxWALRecord = 1 << 30

// Snapshot and log file names inside a WAL directory.
const (
	SnapshotFileName = "snapshot.sfs"
	LogFileName      = "wal.log"
)

// Errors returned by log recovery and by mutations racing shutdown.
var (
	// ErrCorruptLog is the typed error class for a log record that is
	// structurally complete but invalid — CRC mismatch, bad opcode,
	// undecodable payload. Recovery fails and the store is untouched.
	ErrCorruptLog = errors.New("filesys: corrupt write-ahead log")
	// ErrTornLogTail reports a final record cut short by a crash
	// mid-write. OpenWAL handles it by truncating the tail and recovering
	// the valid prefix; it is an error only from strict replay (tests).
	ErrTornLogTail = errors.New("filesys: torn write-ahead log tail")
	// ErrWALClosed fails mutations whose commit raced the log shutting
	// down (or being killed); the mutation was never acknowledged.
	ErrWALClosed = errors.New("filesys: write-ahead log closed")
)

// WAL gauges on the telemetry plane. appends counts records committed,
// syncs counts fsyncs — their ratio is the achieved group-commit batch
// size. log_bytes is the live log length (drops at compaction).
var (
	gWALAppends     = scstats.GaugeFor("wal.appends")
	gWALSyncs       = scstats.GaugeFor("wal.syncs")
	gWALBytes       = scstats.GaugeFor("wal.log_bytes")
	gWALCompactions = scstats.GaugeFor("wal.compactions")
	gWALReplayed    = scstats.GaugeFor("wal.records_replayed")
	gWALTornTails   = scstats.GaugeFor("wal.torn_tails_truncated")
)

// WALOptions tune the group-commit and compaction behavior. Zero fields
// take the documented defaults.
type WALOptions struct {
	// Linger is how long the committer waits after waking before draining
	// the queue, letting concurrent mutators join the batch. 0 takes the
	// default; negative disables lingering (sync immediately).
	Linger time.Duration
	// MaxBatch caps the records fsynced together. Default 256.
	MaxBatch int
	// CompactBytes is the log size that triggers a snapshot checkpoint
	// and log truncation. Default 4MiB; negative disables compaction.
	CompactBytes int64
}

func (o WALOptions) withDefaults() WALOptions {
	if o.Linger == 0 {
		o.Linger = 200 * time.Microsecond
	}
	if o.Linger < 0 {
		o.Linger = 0
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 256
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 4 << 20
	}
	return o
}

// walRecord is one logged mutation.
type walRecord struct {
	op      byte
	name    string
	offset  int64
	version uint32
	data    []byte
}

// walPending is one mutation waiting for its group commit. The data slice
// is only referenced until done closes, so mutators can enqueue their
// argument bytes without copying.
type walPending struct {
	rec  walRecord
	done chan struct{}
	err  error
}

// wait blocks until the record's batch is on disk. A nil pending (store
// without a WAL) commits trivially.
func (p *walPending) wait() error {
	if p == nil {
		return nil
	}
	<-p.done
	return p.err
}

// WAL is an open write-ahead log bound to a store.
type WAL struct {
	dir   string
	store *Store
	opts  WALOptions

	// f and size belong to the committer goroutine after OpenWAL.
	f    *os.File
	size int64

	mu     sync.Mutex
	queue  []*walPending
	closed bool
	killed bool

	kick chan struct{}
	done chan struct{}
}

// OpenWAL opens (creating if needed) the durability directory for store:
// it loads the snapshot, replays the log over it — truncating a torn tail,
// rejecting corruption — attaches the log to the store so every further
// mutation is group-committed before acknowledgment, and starts the
// committer. The store should be empty; recovery replaces its contents.
func OpenWAL(dir string, store *Store, opts WALOptions) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("filesys: wal dir: %w", err)
	}
	if err := store.LoadFile(filepath.Join(dir, SnapshotFileName)); err != nil {
		return nil, err
	}
	logPath := filepath.Join(dir, LogFileName)
	data, err := os.ReadFile(logPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("filesys: reading wal: %w", err)
	}
	recs, goodLen, perr := parseLog(data)
	if perr != nil && !errors.Is(perr, ErrTornLogTail) {
		return nil, perr
	}
	store.applyRecords(recs)
	gWALReplayed.Add(int64(len(recs)))

	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filesys: opening wal: %w", err)
	}
	if goodLen < int64(len(data)) {
		if err := f.Truncate(goodLen); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("filesys: truncating torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("filesys: syncing truncated wal: %w", err)
		}
		gWALTornTails.Add(1)
	}
	if _, err := f.Seek(goodLen, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("filesys: seeking wal end: %w", err)
	}
	w := &WAL{
		dir:   dir,
		store: store,
		opts:  opts,
		f:     f,
		size:  goodLen,
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	gWALBytes.Add(goodLen)
	store.AttachWAL(w)
	go w.committer()
	return w, nil
}

// Dir returns the durability directory the WAL lives in.
func (w *WAL) Dir() string { return w.dir }

// append enqueues one record for the next group commit. Callers may hold
// store or file locks; only w.mu is taken here.
func (w *WAL) append(rec walRecord) *walPending {
	p := &walPending{rec: rec, done: make(chan struct{})}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		p.err = ErrWALClosed
		close(p.done)
		return p
	}
	w.queue = append(w.queue, p)
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return p
}

// Close flushes every queued record, compacts the log into a snapshot,
// and stops the committer. Mutations arriving after Close fail with
// ErrWALClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-w.done

	// The committer has drained and exited; checkpoint so restart needs
	// no replay, then release the file.
	err := w.compact()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	gWALBytes.Add(-w.size)
	return err
}

// Kill simulates a SIGKILL for tests: the committer stops without
// flushing, queued-but-unsynced records are failed (their mutations were
// never acknowledged, and a restart will not recover them), and the file
// is abandoned as-is — mid-batch, if the kill raced a write.
func (w *WAL) Kill() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.killed = true
	dropped := w.queue
	w.queue = nil
	w.mu.Unlock()
	for _, p := range dropped {
		p.err = ErrWALClosed
		close(p.done)
	}
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-w.done
	_ = w.f.Close()
	gWALBytes.Add(-w.size)
}

// committer is the group-commit loop: wake on the first queued record,
// linger so concurrent mutators can join, then drain the queue in batches
// of at most MaxBatch — one write and one fsync per batch — and wake the
// batch's waiters. Compaction runs between batches, on this goroutine, so
// it never races a log append.
func (w *WAL) committer() {
	defer close(w.done)
	for {
		<-w.kick
		w.mu.Lock()
		if w.killed {
			w.mu.Unlock()
			return
		}
		empty := len(w.queue) == 0
		closed := w.closed
		w.mu.Unlock()
		if empty {
			if closed {
				return
			}
			continue
		}
		if w.opts.Linger > 0 {
			time.Sleep(w.opts.Linger)
		}
		for {
			w.mu.Lock()
			if w.killed {
				w.mu.Unlock()
				return
			}
			n := len(w.queue)
			if n == 0 {
				closed := w.closed
				w.mu.Unlock()
				if closed {
					return
				}
				break
			}
			if n > w.opts.MaxBatch {
				n = w.opts.MaxBatch
			}
			batch := w.queue[:n:n]
			w.queue = w.queue[n:]
			w.mu.Unlock()
			w.commitBatch(batch)
			if w.opts.CompactBytes > 0 && w.size > w.opts.CompactBytes {
				// A failed compaction loses nothing: the log is intact and
				// the threshold will trip again after the next batch.
				_ = w.compact()
			}
		}
	}
}

// commitBatch writes one batch of records as a single write syscall
// followed by a single fsync, then wakes the waiters.
func (w *WAL) commitBatch(batch []*walPending) {
	out := buffer.New(256 * len(batch))
	scratch := buffer.New(256)
	for _, p := range batch {
		scratch.Reset()
		encodeRecord(scratch, &p.rec)
		payload := scratch.Bytes()
		out.WriteUint32(uint32(len(payload)))
		out.WriteUint32(crc32.ChecksumIEEE(payload))
		out.WriteRaw(payload)
	}
	var err error
	if _, werr := w.f.Write(out.Bytes()); werr != nil {
		err = fmt.Errorf("filesys: wal write: %w", werr)
	} else if serr := w.f.Sync(); serr != nil {
		err = fmt.Errorf("filesys: wal sync: %w", serr)
	}
	if err == nil {
		w.size += int64(out.Size())
		gWALBytes.Add(int64(out.Size()))
		gWALAppends.Add(int64(len(batch)))
		gWALSyncs.Add(1)
	}
	for _, p := range batch {
		p.err = err
		close(p.done)
	}
}

// compact checkpoints the store into the snapshot file (atomically: the
// previous snapshot survives any crash) and then truncates the log. Every
// record in the log at this moment is already reflected in the store —
// mutations apply in memory before they enqueue — so the snapshot
// subsumes the log; a crash between the rename and the truncate replays
// log records over a snapshot that already contains them, which the
// idempotent record semantics absorb.
func (w *WAL) compact() error {
	if err := writeFileAtomic(filepath.Join(w.dir, SnapshotFileName), w.store.Snapshot()); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("filesys: truncating wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("filesys: rewinding wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("filesys: syncing truncated wal: %w", err)
	}
	gWALBytes.Add(-w.size)
	w.size = 0
	gWALCompactions.Add(1)
	return nil
}

// encodeRecord writes one record payload (no framing) into buf.
func encodeRecord(buf *buffer.Buffer, rec *walRecord) {
	buf.WriteByte(rec.op)
	buf.WriteString(rec.name)
	if rec.op == walOpWrite {
		buf.WriteVarint(rec.offset)
		buf.WriteUint32(rec.version)
		buf.WriteBytes(rec.data)
	}
}

// decodeRecord parses one record payload. Every failure is corruption:
// the framing already established the payload is complete.
func decodeRecord(payload []byte) (walRecord, error) {
	buf := buffer.FromParts(payload, nil)
	op, err := buf.ReadByte()
	if err != nil {
		return walRecord{}, fmt.Errorf("%w: missing opcode", ErrCorruptLog)
	}
	name, err := buf.ReadString()
	if err != nil {
		return walRecord{}, fmt.Errorf("%w: record name: %v", ErrCorruptLog, err)
	}
	rec := walRecord{op: op, name: name}
	switch op {
	case walOpCreate, walOpRemove:
		if buf.Len() != 0 {
			return walRecord{}, fmt.Errorf("%w: %d trailing bytes in op %d", ErrCorruptLog, buf.Len(), op)
		}
	case walOpWrite:
		if rec.offset, err = buf.ReadVarint(); err != nil {
			return walRecord{}, fmt.Errorf("%w: write offset: %v", ErrCorruptLog, err)
		}
		if rec.version, err = buf.ReadUint32(); err != nil {
			return walRecord{}, fmt.Errorf("%w: write version: %v", ErrCorruptLog, err)
		}
		if rec.data, err = buf.ReadBytes(); err != nil {
			return walRecord{}, fmt.Errorf("%w: write data: %v", ErrCorruptLog, err)
		}
		if buf.Len() != 0 {
			return walRecord{}, fmt.Errorf("%w: %d trailing bytes in write record", ErrCorruptLog, buf.Len())
		}
		if rec.offset < 0 {
			return walRecord{}, fmt.Errorf("%w: negative write offset %d", ErrCorruptLog, rec.offset)
		}
	default:
		return walRecord{}, fmt.Errorf("%w: unknown opcode %d", ErrCorruptLog, op)
	}
	return rec, nil
}

// parseLog validates an entire log byte stream, returning the decoded
// records and the byte length of the valid prefix. It applies nothing. A
// record cut off by the end of the stream yields ErrTornLogTail with the
// records before it; a complete-but-invalid record yields ErrCorruptLog.
func parseLog(data []byte) (recs []walRecord, goodLen int64, err error) {
	off := int64(0)
	total := int64(len(data))
	for off < total {
		if total-off < walHeaderSize {
			return recs, off, fmt.Errorf("%w: %d header bytes at offset %d", ErrTornLogTail, total-off, off)
		}
		hdr := buffer.FromParts(data[off:off+walHeaderSize], nil)
		plen32, _ := hdr.ReadUint32()
		crc, _ := hdr.ReadUint32()
		plen := int64(plen32)
		if plen > maxWALRecord {
			return recs, off, fmt.Errorf("%w: record length %d at offset %d", ErrCorruptLog, plen, off)
		}
		if off+walHeaderSize+plen > total {
			return recs, off, fmt.Errorf("%w: record needs %d bytes, %d remain at offset %d",
				ErrTornLogTail, plen, total-off-walHeaderSize, off)
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+plen]
		if sum := crc32.ChecksumIEEE(payload); sum != crc {
			return recs, off, fmt.Errorf("%w: CRC mismatch at offset %d (stored %#x, computed %#x)",
				ErrCorruptLog, off, crc, sum)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return recs, off, fmt.Errorf("%w at offset %d", derr, off)
		}
		recs = append(recs, rec)
		off += walHeaderSize + plen
	}
	return recs, off, nil
}

// ReplayLog validates data as a WAL byte stream and, only when every
// record is valid to the end, applies them all to the store. Any error —
// corruption or a torn tail — leaves the store untouched; OpenWAL is the
// forgiving path that recovers the valid prefix of a torn log.
func (s *Store) ReplayLog(data []byte) (int, error) {
	recs, _, err := parseLog(data)
	if err != nil {
		return 0, err
	}
	s.applyRecords(recs)
	return len(recs), nil
}

// applyRecords applies decoded log records in order. Application is
// idempotent: create of an existing file and remove of a missing one are
// no-ops, and writes set the version they originally produced.
func (s *Store) applyRecords(recs []walRecord) {
	for i := range recs {
		s.applyRecord(&recs[i])
	}
}

func (s *Store) applyRecord(rec *walRecord) {
	switch rec.op {
	case walOpCreate:
		s.mu.Lock()
		if _, ok := s.files[rec.name]; !ok {
			s.files[rec.name] = &fileState{name: rec.name, wal: s.wal}
		}
		s.mu.Unlock()
	case walOpRemove:
		s.mu.Lock()
		delete(s.files, rec.name)
		s.mu.Unlock()
	case walOpWrite:
		s.mu.Lock()
		st, ok := s.files[rec.name]
		s.mu.Unlock()
		if !ok {
			// A write whose file is gone: the log order put the remove
			// first (orphan write). The in-memory outcome was a write to
			// an unlinked file, so dropping it converges.
			return
		}
		st.mu.Lock()
		end := rec.offset + int64(len(rec.data))
		if end > int64(len(st.data)) {
			grown := make([]byte, end)
			copy(grown, st.data)
			st.data = grown
		}
		copy(st.data[rec.offset:end], rec.data)
		st.version = rec.version
		st.mu.Unlock()
	}
}
