package filesys

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// TestGeneratedStubsCarryContext drives the invocation context through the
// IDL-generated client views: With attaches options that every subsequent
// call carries, an expired deadline fails fast with the typed error, and
// the options survive widening to a base interface.
func TestGeneratedStubsCarryContext(t *testing.T) {
	m := newMachine(t, "m1")
	srv := env(t, m.k, "fileserver")
	cli := m.clientEnv(t, "client")
	fs := mount(t, NewService(srv), cli)

	// A generous deadline leaves calls working normally.
	bounded := fs.With(core.WithTimeout(time.Minute), core.WithTrace(0x5151))
	f, err := bounded.Create("notes")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write(0, []byte("ok")); err != nil || n != 2 {
		t.Fatalf("Write = %d, %v", n, err)
	}

	// An expired deadline fails fast with the typed error — on the derived
	// view only; the original view is unaffected.
	dead := fs.With(core.WithDeadline(time.Now().Add(-time.Second)))
	if _, err := dead.Open("notes"); !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("Open with expired deadline = %v, want ErrDeadlineExceeded", err)
	}
	if _, err := fs.Open("notes"); err != nil {
		t.Fatalf("original view affected by With: %v", err)
	}

	// Widening keeps the attached context: File's base interface calls
	// still fail fast under the expired deadline.
	deadFile := f.With(core.WithDeadline(time.Now().Add(-time.Second)))
	if _, err := deadFile.Size(); !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("Size with expired deadline = %v, want ErrDeadlineExceeded", err)
	}
}
