package filesys

import (
	"go/format"
	"os"
	"testing"

	"repro/internal/idl"
)

// TestGeneratedCodeInSync guards against drift between filesys.idl and
// the checked-in gen.go: if this fails, regenerate with
//
//	go run ./cmd/idlgen -package filesys -o internal/filesys/gen.go internal/filesys/filesys.idl
func TestGeneratedCodeInSync(t *testing.T) {
	src, err := os.ReadFile("filesys.idl")
	if err != nil {
		t.Fatal(err)
	}
	f, err := idl.Parse("internal/filesys/filesys.idl", string(src))
	if err != nil {
		t.Fatal(err)
	}
	code, err := idl.Generate(f, "filesys")
	if err != nil {
		t.Fatal(err)
	}
	pretty, err := format.Source([]byte(code))
	if err != nil {
		t.Fatal(err)
	}
	current, err := os.ReadFile("gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(pretty) != string(current) {
		t.Fatal("gen.go is stale; regenerate with cmd/idlgen (see test comment)")
	}
}
