// Package filesys implements the Spring file system of §7/§8: the service
// whose type family (file, cacheable_file, replicated_file,
// reconnectable_file) demonstrates that radically different object
// mechanisms can coexist behind the same application-visible interfaces.
// The interfaces are defined in filesys.idl; gen.go is produced from it by
// cmd/idlgen.
package filesys

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stubs"
)

// Remote error codes raised by file system operations.
const (
	CodeNotFound uint32 = 1201
	CodeExists   uint32 = 1202
)

// IsNotFound reports whether err is the file-not-found remote exception.
func IsNotFound(err error) bool { return stubs.CodeOf(err) == CodeNotFound }

// fileState is the underlying state of one file: what the server owns and
// Spring objects point at. When the store has a WAL attached, wal points
// at it and every mutation is logged and group-committed before the
// operation returns.
type fileState struct {
	mu      sync.Mutex
	name    string
	data    []byte
	version uint32
	wal     *WAL
}

func (st *fileState) size() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return int64(len(st.data))
}

func (st *fileState) read(offset int64, count int32) []byte {
	st.mu.Lock()
	defer st.mu.Unlock()
	if offset < 0 || offset >= int64(len(st.data)) || count <= 0 {
		return nil
	}
	end := offset + int64(count)
	if end > int64(len(st.data)) {
		end = int64(len(st.data))
	}
	out := make([]byte, end-offset)
	copy(out, st.data[offset:end])
	return out
}

// write applies the bytes in memory and, with a WAL attached, blocks on
// the record's group commit before acknowledging. The apply and the log
// enqueue happen under the file lock — so log order matches apply order —
// and the fsync wait happens outside it. The record references data
// without copying: it is only read until wait returns.
func (st *fileState) write(offset int64, data []byte) (int32, error) {
	st.mu.Lock()
	if offset < 0 {
		st.mu.Unlock()
		return 0, nil
	}
	end := offset + int64(len(data))
	if end > int64(len(st.data)) {
		grown := make([]byte, end)
		copy(grown, st.data)
		st.data = grown
	}
	copy(st.data[offset:end], data)
	st.version++
	var p *walPending
	if st.wal != nil {
		p = st.wal.append(walRecord{
			op: walOpWrite, name: st.name,
			offset: offset, version: st.version, data: data,
		})
	}
	st.mu.Unlock()
	if err := p.wait(); err != nil {
		return 0, err
	}
	return int32(len(data)), nil
}

func (st *fileState) ver() uint32 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.version
}

// Store is a server's collection of file state.
type Store struct {
	mu    sync.Mutex
	files map[string]*fileState
	wal   *WAL
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{files: make(map[string]*fileState)}
}

// get looks a file up.
func (s *Store) get(name string) (*fileState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.files[name]
	if !ok {
		return nil, &stubs.RemoteError{Code: CodeNotFound, Msg: fmt.Sprintf("filesys: no such file %q", name)}
	}
	return st, nil
}

// create makes a new empty file, durably when a WAL is attached.
func (s *Store) create(name string) (*fileState, error) {
	s.mu.Lock()
	if _, ok := s.files[name]; ok {
		s.mu.Unlock()
		return nil, &stubs.RemoteError{Code: CodeExists, Msg: fmt.Sprintf("filesys: %q already exists", name)}
	}
	st := &fileState{name: name, wal: s.wal}
	s.files[name] = st
	var p *walPending
	if s.wal != nil {
		p = s.wal.append(walRecord{op: walOpCreate, name: name})
	}
	s.mu.Unlock()
	if err := p.wait(); err != nil {
		return nil, err
	}
	return st, nil
}

// remove deletes a file, durably when a WAL is attached.
func (s *Store) remove(name string) error {
	s.mu.Lock()
	if _, ok := s.files[name]; !ok {
		s.mu.Unlock()
		return &stubs.RemoteError{Code: CodeNotFound, Msg: fmt.Sprintf("filesys: no such file %q", name)}
	}
	delete(s.files, name)
	var p *walPending
	if s.wal != nil {
		p = s.wal.append(walRecord{op: walOpRemove, name: name})
	}
	s.mu.Unlock()
	return p.wait()
}

// AttachWAL binds w to the store: every subsequent mutation is logged and
// group-committed before it is acknowledged. Called by OpenWAL after
// recovery, before the store serves traffic.
func (s *Store) AttachWAL(w *WAL) {
	s.mu.Lock()
	s.wal = w
	for _, st := range s.files {
		st.mu.Lock()
		st.wal = w
		st.mu.Unlock()
	}
	s.mu.Unlock()
}

// list returns the sorted file names.
func (s *Store) list() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.files))
	for n := range s.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// fileImpl implements the generated FileServer over one file's state.
type fileImpl struct {
	st *fileState
}

// Size implements FileServer.
func (f fileImpl) Size() (int64, error) { return f.st.size(), nil }

// Read implements FileServer.
func (f fileImpl) Read(offset int64, count int32) ([]byte, error) {
	return f.st.read(offset, count), nil
}

// Write implements FileServer. With a WAL attached the write is
// acknowledged only once its log record is fsynced (group commit).
func (f fileImpl) Write(offset int64, data []byte) (int32, error) {
	return f.st.write(offset, data)
}

// Version implements FileServer.
func (f fileImpl) Version() (uint32, error) { return f.st.ver(), nil }

// Name implements FileServer.
func (f fileImpl) Name() (string, error) { return f.st.name, nil }

// Stat implements FileServer.
func (f fileImpl) Stat() (FileInfo, error) {
	f.st.mu.Lock()
	defer f.st.mu.Unlock()
	return FileInfo{Name: f.st.name, Size: int64(len(f.st.data)), Version: f.st.version}, nil
}

// cacheableImpl adds the cacheable_file operations.
type cacheableImpl struct {
	fileImpl
}

// Flush implements CacheableFileServer. The store is write-through, so
// flush has nothing to push; it exists so clients can force their local
// cache manager to drop entries (it is in the invalidating op set).
func (cacheableImpl) Flush() error { return nil }

// replicatedImpl adds the replicated_file operations.
type replicatedImpl struct {
	fileImpl
	size func() int
}

// Replicas implements ReplicatedFileServer.
func (r replicatedImpl) Replicas() (int32, error) { return int32(r.size()), nil }
