package filesys

import (
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/subcontracts/caching"
	"repro/internal/subcontracts/reconnectable"
	"repro/internal/subcontracts/replicon"
	"repro/internal/subcontracts/simplex"
	"repro/internal/subcontracts/singleton"
)

// CacheableOps and InvalidatingOps classify the cacheable_file interface
// for the cache manager: reads are cacheable, mutations (and flush)
// invalidate.
var (
	CacheableOps    = cache.NewOpSet(FileSizeOp, FileReadOp, FileVersionOp, FileNameOp, FileStatOp)
	InvalidatingOps = cache.NewOpSet(FileWriteOp, CacheableFileFlushOp)
)

// exporter fabricates a Spring object for one file's state. The choice of
// exporter — and with it the subcontract and dynamic type — is the only
// thing distinguishing the service flavors.
type exporter func(st *fileState) (*core.Object, error)

// Service is a file server: a Store exported as a spring.file_system
// object, handing out file objects built by its exporter.
type Service struct {
	env    *core.Env
	store  *Store
	export exporter
	self   *core.Object
	door   *kernel.Door
}

// newService wires a service with the given exporter and exports its
// file_system object with the simplex subcontract.
func newService(env *core.Env, store *Store, export exporter) *Service {
	s := &Service{env: env, store: store, export: export}
	s.self = simplex.Export(env, FileSystemMT, NewFileSystemSkeleton(env, s), nil)
	return s
}

// NewService creates a plain file server in env: file objects use the
// simplex subcontract (one kernel door per file object, §7).
func NewService(env *core.Env) *Service {
	return NewServiceWithStore(env, NewStore())
}

// NewServiceWithStore is NewService over an externally owned store — the
// hook for stable storage (a store recovered through OpenWAL).
func NewServiceWithStore(env *core.Env, store *Store) *Service {
	return newService(env, store, func(st *fileState) (*core.Object, error) {
		return simplex.Export(env, FileMT, NewFileSkeleton(env, fileImpl{st: st}), nil), nil
	})
}

// NewCachingService creates a file server whose files are
// cacheable_file objects using the caching subcontract (§8.2): clients on
// other machines invoke through their machine-local cache manager, named
// manager in their local naming context.
func NewCachingService(env *core.Env, manager string) *Service {
	return NewCachingServiceWithStore(env, NewStore(), manager)
}

// NewCachingServiceWithStore is NewCachingService over an externally
// owned (typically WAL-recovered) store.
func NewCachingServiceWithStore(env *core.Env, store *Store, manager string) *Service {
	return newService(env, store, func(st *fileState) (*core.Object, error) {
		skel := NewCacheableFileSkeleton(env, cacheableImpl{fileImpl{st: st}})
		obj, _ := caching.Export(env, CacheableFileMT, skel, manager, CacheableOps, InvalidatingOps, nil)
		return obj, nil
	})
}

// ReplicatedService is a file service maintained by a set of conspiring
// replica server domains (§5): every file object carries one door per
// replica, and the replicas share the underlying store ("the servers are
// required to perform their own state synchronization").
type ReplicatedService struct {
	*Service
	mu         sync.Mutex
	replicas   []*core.Env
	groups     map[string]*replicon.Group
	members    map[string][]*replicon.Member
	memberHook func(file string, i int, ref kernel.Ref)
}

// NewReplicatedService creates a file server replicated across the given
// server domains. front is the domain exporting the file_system object.
func NewReplicatedService(front *core.Env, replicas []*core.Env) *ReplicatedService {
	return NewReplicatedServiceWithStore(front, replicas, NewStore())
}

// NewReplicatedServiceWithStore is NewReplicatedService over an
// externally owned (typically WAL-recovered) store.
func NewReplicatedServiceWithStore(front *core.Env, replicas []*core.Env, store *Store) *ReplicatedService {
	rs := &ReplicatedService{
		replicas: replicas,
		groups:   make(map[string]*replicon.Group),
		members:  make(map[string][]*replicon.Member),
	}
	rs.Service = newService(front, store, func(st *fileState) (*core.Object, error) {
		g := rs.groupFor(st)
		return g.Export(front, ReplicatedFileMT), nil
	})
	return rs
}

// SetMemberHook registers fn, called once per member door as replica
// groups are built — the hook netd durability uses to label member doors
// ("replica:<file>#<i>") so a restarted server rebinds the same export
// keys. The ref passed to fn stays owned by the group; fn must not
// release it.
func (rs *ReplicatedService) SetMemberHook(fn func(file string, i int, ref kernel.Ref)) {
	rs.mu.Lock()
	rs.memberHook = fn
	rs.mu.Unlock()
}

// MemberRef returns a duplicate of the door reference for replica i of
// the named file, building the group if the file exists but its group was
// not yet demanded (a restarted server rebinding persisted member
// labels). The caller owns the returned reference.
func (rs *ReplicatedService) MemberRef(file string, i int) (kernel.Ref, bool) {
	st, err := rs.store.get(file)
	if err != nil {
		return kernel.Ref{}, false
	}
	rs.groupFor(st)
	rs.mu.Lock()
	members := rs.members[file]
	rs.mu.Unlock()
	if i < 0 || i >= len(members) || members[i] == nil {
		return kernel.Ref{}, false
	}
	return members[i].Ref(), true
}

// groupFor lazily builds the replica group serving one file's state.
func (rs *ReplicatedService) groupFor(st *fileState) *replicon.Group {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if g, ok := rs.groups[st.name]; ok {
		return g
	}
	g := replicon.NewGroup()
	impl := replicatedImpl{fileImpl: fileImpl{st: st}, size: g.Size}
	var members []*replicon.Member
	for i, env := range rs.replicas {
		skel := NewReplicatedFileSkeleton(env, impl)
		m := g.Join(env, fmt.Sprintf("%s#%d", st.name, i), skel)
		members = append(members, m)
		if rs.memberHook != nil {
			rs.memberHook(st.name, i, m.SharedRef())
		}
	}
	rs.groups[st.name] = g
	rs.members[st.name] = members
	return g
}

// CrashReplica simulates the crash of replica index i for the named file:
// its door is revoked and it leaves the group.
func (rs *ReplicatedService) CrashReplica(name string, i int) error {
	rs.mu.Lock()
	members := rs.members[name]
	rs.mu.Unlock()
	if i < 0 || i >= len(members) || members[i] == nil {
		return fmt.Errorf("filesys: no replica %d for %q", i, name)
	}
	members[i].Crash()
	rs.mu.Lock()
	rs.members[name][i] = nil
	rs.mu.Unlock()
	return nil
}

// ReconnectableService is a file service whose files survive server
// crashes (§8.3): each file object is bound under a stable name in a
// naming context, and clients re-resolve after a crash. The store plays
// the role of stable storage.
type ReconnectableService struct {
	*Service
	ctx naming.Context

	mu    sync.Mutex
	doors map[string]*kernel.Door
}

// NewReconnectableService creates the service. ctx is the naming context
// clients re-resolve in (they must carry the same context in their
// environment's reconnectable.ContextVar slot).
func NewReconnectableService(env *core.Env, ctx naming.Context) *ReconnectableService {
	return NewReconnectableServiceWithStore(env, ctx, NewStore())
}

// NewReconnectableServiceWithStore is NewReconnectableService over an
// externally owned (typically WAL-recovered) store; call Restart to
// rebind the recovered files into the naming context.
func NewReconnectableServiceWithStore(env *core.Env, ctx naming.Context, store *Store) *ReconnectableService {
	rs := &ReconnectableService{ctx: ctx, doors: make(map[string]*kernel.Door)}
	rs.Service = newService(env, store, func(st *fileState) (*core.Object, error) {
		return rs.exportFile(st)
	})
	return rs
}

// bindName is the stable name a file is re-resolved under.
func bindName(file string) string { return "files:" + file }

func (rs *ReconnectableService) exportFile(st *fileState) (*core.Object, error) {
	skel := NewReconnectableFileSkeleton(rs.env, fileImpl{st: st})
	obj, door, err := reconnectable.Export(rs.env, ReconnectableFileMT, skel, bindName(st.name), rs.ctx)
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	rs.doors[st.name] = door
	rs.mu.Unlock()
	return obj, nil
}

// Crash simulates a whole-server crash: every file door is revoked. The
// store — the stable storage — survives.
func (rs *ReconnectableService) Crash() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, d := range rs.doors {
		d.Revoke()
	}
	rs.doors = make(map[string]*kernel.Door)
}

// Restart re-exports and rebinds every file, as a restarted server
// recovering from stable storage would.
func (rs *ReconnectableService) Restart() error {
	for _, name := range rs.store.list() {
		st, err := rs.store.get(name)
		if err != nil {
			return err
		}
		obj, err := rs.exportFile(st)
		if err != nil {
			return err
		}
		// Export bound a fresh plain object; the returned wrapper is not
		// needed here.
		if err := obj.Consume(); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// FileSystemServer implementation (shared by all flavors).

var _ FileSystemServer = (*Service)(nil)

// Object returns the service's file_system object (Copy before passing
// on).
func (s *Service) Object() *core.Object { return s.self }

// Env returns the service's environment.
func (s *Service) Env() *core.Env { return s.env }

// Open implements FileSystemServer.
func (s *Service) Open(name string) (File, error) {
	st, err := s.store.get(name)
	if err != nil {
		return File{}, err
	}
	obj, err := s.export(st)
	if err != nil {
		return File{}, err
	}
	return File{Obj: obj}, nil
}

// Create implements FileSystemServer.
func (s *Service) Create(name string) (File, error) {
	st, err := s.store.create(name)
	if err != nil {
		return File{}, err
	}
	obj, err := s.export(st)
	if err != nil {
		return File{}, err
	}
	return File{Obj: obj}, nil
}

// Remove implements FileSystemServer.
func (s *Service) Remove(name string) error { return s.store.remove(name) }

// List implements FileSystemServer.
func (s *Service) List() ([]string, error) { return s.store.list(), nil }

// Ensure the default subcontract library set needed by the service
// flavors is easy to link (convenience for examples and tests).
func RegisterAll(r *core.Registry) error {
	for _, reg := range []func(*core.Registry) error{
		singleton.Register, simplex.Register, replicon.Register,
		caching.Register, reconnectable.Register,
	} {
		if err := reg(r); err != nil {
			return err
		}
	}
	return nil
}
