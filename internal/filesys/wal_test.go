package filesys

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// mustCreate / mustWrite are store-mutation helpers that fail the test on
// the first error (with a WAL attached every mutation can fail at commit).
func mustCreate(t *testing.T, s *Store, name string) *fileState {
	t.Helper()
	st, err := s.create(name)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustWrite(t *testing.T, st *fileState, off int64, data []byte) {
	t.Helper()
	if _, err := st.write(off, data); err != nil {
		t.Fatal(err)
	}
}

// TestWALRecoversAcrossKill is the core durability contract: every
// mutation acknowledged before a kill is recovered by reopening the same
// directory, and a removed file stays removed.
func TestWALRecoversAcrossKill(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	w, err := OpenWAL(dir, s, WALOptions{Linger: -1})
	if err != nil {
		t.Fatal(err)
	}
	a := mustCreate(t, s, "a")
	mustWrite(t, a, 0, []byte("hello"))
	mustWrite(t, a, 5, []byte(" wal"))
	b := mustCreate(t, s, "doomed")
	mustWrite(t, b, 0, []byte("gone"))
	if err := s.remove("doomed"); err != nil {
		t.Fatal(err)
	}
	w.Kill() // no flush, no compaction: recovery must come from the log

	s2 := NewStore()
	w2, err := OpenWAL(dir, s2, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	ra, err := s2.get("a")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(ra.read(0, 100)); got != "hello wal" {
		t.Fatalf("recovered a = %q", got)
	}
	if ra.ver() != 2 {
		t.Fatalf("recovered version = %d, want 2", ra.ver())
	}
	if _, err := s2.get("doomed"); err == nil {
		t.Fatal("removed file came back")
	}
}

// TestWALCloseCompacts: a graceful Close checkpoints into the snapshot
// and truncates the log, and a reopen recovers from the snapshot alone.
func TestWALCloseCompacts(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	w, err := OpenWAL(dir, s, WALOptions{Linger: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, mustCreate(t, s, "x"), 0, []byte("checkpointed"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, LogFileName)); err != nil || fi.Size() != 0 {
		t.Fatalf("log after Close: %v, %v (want empty)", fi, err)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFileName)); err != nil {
		t.Fatalf("no snapshot after Close: %v", err)
	}

	s2 := NewStore()
	w2, err := OpenWAL(dir, s2, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st, err := s2.get("x")
	if err != nil || string(st.read(0, 100)) != "checkpointed" {
		t.Fatalf("recovered = %v, %v", st, err)
	}
}

// TestWALClosedMutationsFail: mutations racing shutdown fail with
// ErrWALClosed and were never acknowledged.
func TestWALClosedMutationsFail(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	w, err := OpenWAL(dir, s, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.create("late"); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("create after Close = %v, want ErrWALClosed", err)
	}
}

// TestWALCompactionBounds: a tiny compaction threshold keeps the log
// near-empty under sustained writes, and recovery still sees everything.
func TestWALCompactionBounds(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	w, err := OpenWAL(dir, s, WALOptions{Linger: -1, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := mustCreate(t, s, "churn")
	blob := bytes.Repeat([]byte("z"), 512)
	for i := 0; i < 40; i++ {
		mustWrite(t, f, int64(i), blob)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	w2, err := OpenWAL(dir, s2, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	st, err := s2.get("churn")
	if err != nil {
		t.Fatal(err)
	}
	if st.size() != int64(39+len(blob)) || st.ver() != 40 {
		t.Fatalf("recovered churn: %d bytes v%d", st.size(), st.ver())
	}
}

// TestWALConcurrentWriters drives parallel mutators through the group
// committer (the -race target for the queue/batch machinery) and then
// verifies recovery of every acknowledged write.
func TestWALConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	w, err := OpenWAL(dir, s, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, rounds = 8, 40
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		f := mustCreate(t, s, fmt.Sprintf("f%d", g))
		wg.Add(1)
		go func(g int, f *fileState) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := f.write(0, []byte(fmt.Sprintf("%04d", i))); err != nil {
					errs[g] = err
					return
				}
			}
		}(g, f)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	w.Kill()

	s2 := NewStore()
	w2, err := OpenWAL(dir, s2, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	for g := 0; g < writers; g++ {
		st, err := s2.get(fmt.Sprintf("f%d", g))
		if err != nil {
			t.Fatal(err)
		}
		if got := string(st.read(0, 4)); got != fmt.Sprintf("%04d", rounds-1) {
			t.Fatalf("f%d recovered %q", g, got)
		}
	}
}

// TestWALTornTailTruncated: a log ending in a half-written record (a
// crash mid-batch) recovers the valid prefix, truncates the tail, and the
// strict replay path reports the tear as ErrTornLogTail.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	w, err := OpenWAL(dir, s, WALOptions{Linger: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, mustCreate(t, s, "keep"), 0, []byte("survives"))
	w.Kill()

	logPath := filepath.Join(dir, LogFileName)
	good, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// A torn batch: a plausible header promising a payload the crash cut
	// off, plus a few stray bytes of it.
	torn := append(append([]byte(nil), good...), 0, 0, 0, 64, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3)
	if err := os.WriteFile(logPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	strict := NewStore()
	if _, err := strict.ReplayLog(torn); !errors.Is(err, ErrTornLogTail) {
		t.Fatalf("strict replay of torn log = %v, want ErrTornLogTail", err)
	}
	if len(strict.list()) != 0 {
		t.Fatal("strict replay of torn log mutated the store")
	}

	s2 := NewStore()
	w2, err := OpenWAL(dir, s2, WALOptions{})
	if err != nil {
		t.Fatalf("OpenWAL did not tolerate the torn tail: %v", err)
	}
	defer w2.Close()
	st, err := s2.get("keep")
	if err != nil || string(st.read(0, 8)) != "survives" {
		t.Fatalf("prefix not recovered: %v, %v", st, err)
	}
	if fi, err := os.Stat(logPath); err != nil || fi.Size() != int64(len(good)) {
		t.Fatalf("torn tail not truncated: %v, %v (want %d bytes)", fi, err, len(good))
	}
}

// walStream builds a committed log byte stream plus the store state it
// produces, for the corruption property tests.
func walStream(t *testing.T) ([]byte, *Store) {
	t.Helper()
	dir := t.TempDir()
	s := NewStore()
	w, err := OpenWAL(dir, s, WALOptions{Linger: -1})
	if err != nil {
		t.Fatal(err)
	}
	a := mustCreate(t, s, "alpha")
	mustWrite(t, a, 0, []byte("the quick brown fox"))
	b := mustCreate(t, s, "beta")
	mustWrite(t, b, 4, []byte{0xff, 0x00, 0x7f})
	if err := s.remove("beta"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, a, 19, []byte(" jumps"))
	w.Kill()
	data, err := os.ReadFile(filepath.Join(dir, LogFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty log stream")
	}
	return data, s
}

func sameStores(a, b *Store) bool {
	la, lb := a.list(), b.list()
	if len(la) != len(lb) {
		return false
	}
	for i, name := range la {
		if lb[i] != name {
			return false
		}
		sa, _ := a.get(name)
		sb, _ := b.get(name)
		if sa.ver() != sb.ver() || !bytes.Equal(sa.read(0, 1<<20), sb.read(0, 1<<20)) {
			return false
		}
	}
	return true
}

// TestWALReplayByteFlips is the log-corruption property: flipping any
// single byte of a valid stream makes strict replay fail — never panic —
// with the target store untouched.
func TestWALReplayByteFlips(t *testing.T) {
	data, _ := walStream(t)
	for i := range data {
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 0xff
		fresh := NewStore()
		n, err := fresh.ReplayLog(flipped)
		if err == nil {
			t.Fatalf("byte %d flipped: replay accepted %d records", i, n)
		}
		if !errors.Is(err, ErrCorruptLog) && !errors.Is(err, ErrTornLogTail) {
			t.Fatalf("byte %d flipped: untyped error %v", i, err)
		}
		if len(fresh.list()) != 0 {
			t.Fatalf("byte %d flipped: store mutated despite error", i)
		}
	}
}

// TestWALReplayIdempotent: replaying a log twice — or over a snapshot
// that already contains its effects, the compaction overlap window —
// converges to the same state as one clean replay.
func TestWALReplayIdempotent(t *testing.T) {
	data, want := walStream(t)

	once := NewStore()
	if _, err := once.ReplayLog(data); err != nil {
		t.Fatal(err)
	}
	if !sameStores(once, want) {
		t.Fatal("single replay diverged from the live store")
	}

	twice := NewStore()
	for i := 0; i < 2; i++ {
		if _, err := twice.ReplayLog(data); err != nil {
			t.Fatal(err)
		}
	}
	if !sameStores(twice, once) {
		t.Fatal("double replay diverged")
	}

	overlap := NewStore()
	if err := overlap.Restore(want.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := overlap.ReplayLog(data); err != nil {
		t.Fatal(err)
	}
	if !sameStores(overlap, once) {
		t.Fatal("snapshot+log overlap replay diverged")
	}
}

// TestSnapshotByteFlips is the snapshot-corruption property: flipping any
// single byte of a serialized snapshot makes Restore fail with
// ErrCorruptSnapshot and leave the store exactly as it was.
func TestSnapshotByteFlips(t *testing.T) {
	s := NewStore()
	mustWrite(t, mustCreate(t, s, "guard"), 0, []byte("snapshot property"))
	mustWrite(t, mustCreate(t, s, "other"), 3, []byte{9, 8, 7})
	snap := s.Snapshot()

	for i := range snap {
		flipped := append([]byte(nil), snap...)
		flipped[i] ^= 0xff
		target := NewStore()
		mustWrite(t, mustCreate(t, target, "sentinel"), 0, []byte("untouched"))
		if err := target.Restore(flipped); err == nil {
			t.Fatalf("byte %d flipped: corrupt snapshot accepted", i)
		} else if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("byte %d flipped: untyped error %v", i, err)
		}
		st, err := target.get("sentinel")
		if err != nil || string(st.read(0, 9)) != "untouched" {
			t.Fatalf("byte %d flipped: store mutated on rejected restore", i)
		}
	}
}

// TestSaveFileAtomicOnError: a save into an unwritable location fails
// without disturbing the existing snapshot file.
func TestSaveFileAtomicOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.sfs")
	s := NewStore()
	mustWrite(t, mustCreate(t, s, "v1"), 0, []byte("first"))
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.SaveFile(filepath.Join(dir, "no-such-dir", "snap.sfs")); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(before, after) {
		t.Fatalf("existing snapshot disturbed by failed save: %v", err)
	}
}
