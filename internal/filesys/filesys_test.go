package filesys

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/sctest"
	"repro/internal/subcontracts/caching"
	"repro/internal/subcontracts/reconnectable"
)

// machine bundles a kernel with the services every flavor needs: a naming
// server and a cache manager bound under "cachemgr".
type machine struct {
	k   *kernel.Kernel
	ns  *naming.Server
	mgr *cache.Manager
}

func newMachine(t *testing.T, name string) *machine {
	t.Helper()
	k := kernel.New(name)
	nsEnv := env(t, k, name+"-naming")
	ns := naming.NewServer(nsEnv)
	mgrEnv := env(t, k, name+"-cachemgr")
	mgr := cache.NewManager(mgrEnv)
	cp, err := mgr.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	h, err := ns.Handle()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Bind("cachemgr", cp, false); err != nil {
		t.Fatal(err)
	}
	return &machine{k: k, ns: ns, mgr: mgr}
}

// env creates a domain with the full subcontract library set linked.
func env(t *testing.T, k *kernel.Kernel, name string) *core.Env {
	t.Helper()
	e, err := sctest.NewEnv(k, name, RegisterAll)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// clientEnv creates a client domain wired with naming contexts for the
// caching and reconnectable subcontracts.
func (m *machine) clientEnv(t *testing.T, name string) *core.Env {
	t.Helper()
	e := env(t, m.k, name)
	for _, slot := range []string{caching.LocalContextVar, reconnectable.ContextVar} {
		cp, err := m.ns.Object().Copy()
		if err != nil {
			t.Fatal(err)
		}
		obj, err := sctest.Transfer(cp, e, naming.ContextMT)
		if err != nil {
			t.Fatal(err)
		}
		e.Set(slot, obj)
	}
	e.Set(reconnectable.PolicyVar, &reconnectable.Policy{MaxAttempts: 50, Backoff: time.Millisecond})
	return e
}

// mount exposes a service's file_system object in a client domain.
func mount(t *testing.T, s *Service, cli *core.Env) FileSystem {
	t.Helper()
	cp, err := s.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := sctest.Transfer(cp, cli, FileSystemMT)
	if err != nil {
		t.Fatal(err)
	}
	return FileSystem{Obj: obj}
}

func TestPlainService(t *testing.T) {
	m := newMachine(t, "m1")
	srv := env(t, m.k, "fileserver")
	cli := m.clientEnv(t, "client")
	fs := mount(t, NewService(srv), cli)

	f, err := fs.Create("motd")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write(0, []byte("hello, spring")); err != nil || n != 13 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if sz, err := f.Size(); err != nil || sz != 13 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	if data, err := f.Read(7, 6); err != nil || string(data) != "spring" {
		t.Fatalf("Read = %q, %v", data, err)
	}
	if v, err := f.Version(); err != nil || v != 1 {
		t.Fatalf("Version = %d, %v", v, err)
	}
	if name, err := f.Name(); err != nil || name != "motd" {
		t.Fatalf("Name = %q, %v", name, err)
	}
	// stat() returns the IDL struct by value.
	if info, err := f.Stat(); err != nil || info.Name != "motd" || info.Size != 13 || info.Version != 1 {
		t.Fatalf("Stat = %+v, %v", info, err)
	}

	// A second open sees the same state through a distinct object.
	f2, err := fs.Open("motd")
	if err != nil {
		t.Fatal(err)
	}
	if data, err := f2.Read(0, 5); err != nil || string(data) != "hello" {
		t.Fatalf("second open Read = %q, %v", data, err)
	}

	names, err := fs.List()
	if err != nil || len(names) != 1 || names[0] != "motd" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := fs.Remove("motd"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("motd"); !IsNotFound(err) {
		t.Fatalf("Open after remove = %v, want not-found", err)
	}
	if _, err := fs.Open("ghost"); !IsNotFound(err) {
		t.Fatalf("Open(ghost) = %v", err)
	}
	if _, err := fs.Create("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("x"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestReadWriteEdgeCases(t *testing.T) {
	m := newMachine(t, "m1")
	srv := env(t, m.k, "fileserver")
	cli := m.clientEnv(t, "client")
	fs := mount(t, NewService(srv), cli)
	f, err := fs.Create("edge")
	if err != nil {
		t.Fatal(err)
	}
	// Sparse write extends with zeros.
	if _, err := f.Write(4, []byte{9}); err != nil {
		t.Fatal(err)
	}
	data, err := f.Read(0, 5)
	if err != nil || !bytes.Equal(data, []byte{0, 0, 0, 0, 9}) {
		t.Fatalf("sparse read = %v, %v", data, err)
	}
	// Reads past the end are empty.
	if data, err := f.Read(100, 10); err != nil || len(data) != 0 {
		t.Fatalf("past-end read = %v, %v", data, err)
	}
	// Negative offsets are harmless no-ops.
	if n, err := f.Write(-1, []byte{1}); err != nil || n != 0 {
		t.Fatalf("negative write = %d, %v", n, err)
	}
	if data, err := f.Read(-5, 3); err != nil || len(data) != 0 {
		t.Fatalf("negative read = %v, %v", data, err)
	}
}

func TestCachingFlavor(t *testing.T) {
	m := newMachine(t, "m1")
	srv := m.clientEnv(t, "fileserver") // server domain also needs contexts (unused but harmless)
	cli := m.clientEnv(t, "client")
	fs := mount(t, NewCachingService(srv, "cachemgr"), cli)

	f, err := fs.Create("cached")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}

	// The static result type of open is file; the dynamic type is
	// cacheable_file — narrow discovers the richer semantics (§6.3).
	cf, ok := NarrowCacheableFile(f.Obj)
	if !ok {
		t.Fatalf("narrow to cacheable_file failed; dynamic type %v", f.Obj.MT.Type)
	}
	if f.Obj.SC.Name() != "caching" {
		t.Fatalf("subcontract = %s", f.Obj.SC.Name())
	}

	// Repeated reads hit the local cache manager, not the server.
	if _, err := cf.Read(0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.Read(0, 3); err != nil {
		t.Fatal(err)
	}
	s := m.mgr.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss + 1 hit", s)
	}

	// A write invalidates; the next read sees fresh data.
	if _, err := cf.Write(0, []byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	data, err := cf.Read(0, 3)
	if err != nil || string(data) != "XYZ" {
		t.Fatalf("read after write = %q, %v (stale cache?)", data, err)
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedFlavor(t *testing.T) {
	m := newMachine(t, "m1")
	front := env(t, m.k, "fs-front")
	var replicas []*core.Env
	for i := 0; i < 3; i++ {
		replicas = append(replicas, env(t, m.k, "replica"))
	}
	rs := NewReplicatedService(front, replicas)
	cli := m.clientEnv(t, "client")
	fs := mount(t, rs.Service, cli)

	f, err := fs.Create("repl")
	if err != nil {
		t.Fatal(err)
	}
	rf, ok := NarrowReplicatedFile(f.Obj)
	if !ok {
		t.Fatalf("narrow to replicated_file failed; got %v via %s", f.Obj.MT.Type, f.Obj.SC.Name())
	}
	if n, err := rf.Replicas(); err != nil || n != 3 {
		t.Fatalf("Replicas = %d, %v", n, err)
	}
	if _, err := rf.Write(0, []byte("replicated data")); err != nil {
		t.Fatal(err)
	}

	// Crash the replica the client talks to; reads fail over.
	if err := rs.CrashReplica("repl", 0); err != nil {
		t.Fatal(err)
	}
	data, err := rf.Read(0, 10)
	if err != nil || string(data) != "replicated" {
		t.Fatalf("Read after crash = %q, %v", data, err)
	}
	if n, err := rf.Replicas(); err != nil || n != 2 {
		t.Fatalf("Replicas after crash = %d, %v", n, err)
	}
}

func TestReconnectableFlavor(t *testing.T) {
	m := newMachine(t, "m1")
	srv := env(t, m.k, "fileserver")
	srvCtx, err := m.ns.Handle()
	if err != nil {
		t.Fatal(err)
	}
	// The server resolves/binds in the same context objects the clients
	// use, but through its own handle.
	cp, err := srvCtx.Obj.Copy()
	if err != nil {
		t.Fatal(err)
	}
	srvSide, err := sctest.Transfer(cp, srv, naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	rs := NewReconnectableService(srv, naming.Context{Obj: srvSide})

	cli := m.clientEnv(t, "client")
	fs := mount(t, rs.Service, cli)

	f, err := fs.Create("durable")
	if err != nil {
		t.Fatal(err)
	}
	if f.Obj.SC.Name() != "reconnectable" {
		t.Fatalf("subcontract = %s", f.Obj.SC.Name())
	}
	if _, err := f.Write(0, []byte("persistent")); err != nil {
		t.Fatal(err)
	}

	// Crash and restart the server; the client's next call transparently
	// reconnects and sees the state that survived in stable storage.
	rs.Crash()
	if err := rs.Restart(); err != nil {
		t.Fatal(err)
	}
	data, err := f.Read(0, 10)
	if err != nil || string(data) != "persistent" {
		t.Fatalf("Read after crash+restart = %q, %v", data, err)
	}
}

func TestFileObjectTravelsOnward(t *testing.T) {
	// A client passes an open file to another domain; the state follows
	// (Figure 4's life cycle: marshal consumes, the receiver invokes).
	m := newMachine(t, "m1")
	srv := env(t, m.k, "fileserver")
	cliA := m.clientEnv(t, "clientA")
	cliB := m.clientEnv(t, "clientB")
	fs := mount(t, NewService(srv), cliA)

	f, err := fs.Create("travel")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, []byte("gift")); err != nil {
		t.Fatal(err)
	}
	moved, err := sctest.Transfer(f.Obj, cliB, FileMT)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Obj.Consumed() {
		t.Fatal("marshal did not consume the sender's object")
	}
	fb := File{Obj: moved}
	if data, err := fb.Read(0, 4); err != nil || string(data) != "gift" {
		t.Fatalf("moved file Read = %q, %v", data, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	m := newMachine(t, "m1")
	srv := env(t, m.k, "fileserver")
	fs := mount(t, NewService(srv), m.clientEnv(t, "mounter"))
	if _, err := fs.Create("shared"); err != nil {
		t.Fatal(err)
	}

	const writers = 8
	const writesPer = 25
	errs := make(chan error, writers)
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			defer func() { done <- struct{}{} }()
			f, err := fs.Open("shared")
			if err != nil {
				errs <- err
				return
			}
			// Each writer owns a disjoint byte range.
			for i := 0; i < writesPer; i++ {
				if _, err := f.Write(int64(w), []byte{byte(w + 1)}); err != nil {
					errs <- err
					return
				}
				data, err := f.Read(int64(w), 1)
				if err != nil || len(data) != 1 || data[0] != byte(w+1) {
					errs <- fmt.Errorf("writer %d read back %v, %v", w, data, err)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	f, err := fs.Open("shared")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := f.Version(); err != nil || v != writers*writesPer {
		t.Fatalf("version = %d, %v; want %d", v, err, writers*writesPer)
	}
}

func TestNarrowRejectsPlainFile(t *testing.T) {
	m := newMachine(t, "m1")
	srv := env(t, m.k, "fileserver")
	cli := m.clientEnv(t, "client")
	fs := mount(t, NewService(srv), cli)
	f, err := fs.Create("plain")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := NarrowCacheableFile(f.Obj); ok {
		t.Fatal("plain file narrowed to cacheable_file")
	}
	if _, ok := NarrowFile(f.Obj); !ok {
		t.Fatal("file failed to narrow to its own type")
	}
}
