package buffer

import "sync"

// Regions are the bulk hand-off primitive behind the shared-memory
// transport tier and the shm subcontract: a payload window passed between
// domains (and, through netd's same-machine transport, between kernels in
// one process) by reference instead of being copied through a byte
// stream. A Region owns its bytes until Release; the receiving side
// aliases them through a region-backed Buffer (FromRegion).

// Region is one bulk payload window.
type Region struct {
	// Data is the payload. The producer must not touch it again after
	// handing the region off; the consumer may alias it until Release.
	Data []byte

	release func()
	once    sync.Once
}

// NewRegion wraps data as a region. release, if non-nil, runs exactly
// once when the region is released (recycling into a pool, unmapping);
// nil leaves reclamation to the collector.
func NewRegion(data []byte, release func()) *Region {
	return &Region{Data: data, release: release}
}

// Release returns the region to its owner. It is idempotent; the bytes
// must not be used afterwards.
func (r *Region) Release() {
	if r == nil || r.release == nil {
		return
	}
	r.once.Do(r.release)
}

// FromRegion constructs a buffer that reads r's bytes in place, paired
// with out-of-band doors exactly as FromParts. The buffer adopts the
// region: Reset (and thus Put) releases it.
func FromRegion(r *Region, doors []Door) *Buffer {
	return &Buffer{data: r.Data, doors: doors, region: r}
}

// RegionPool recycles fixed-capacity buffers used as shared regions. The
// shm subcontract draws its invoke_preamble regions from one; sizing is
// fixed so a pooled region never reallocates mid-marshal (reallocation
// would defeat the point of marshalling in place).
type RegionPool struct {
	size int
	pool sync.Pool
}

// NewRegionPool creates a pool of regions with capacity size each.
func NewRegionPool(size int) *RegionPool {
	p := &RegionPool{size: size}
	p.pool.New = func() any { return New(size) }
	return p
}

// Size reports the capacity of the pool's regions.
func (p *RegionPool) Size() int { return p.size }

// Get returns an empty region buffer of the pool's capacity.
func (p *RegionPool) Get() *Buffer { return p.pool.Get().(*Buffer) }

// Put resets b and returns it to the pool. The caller must own b
// exclusively; as with Reset, unconsumed door references are dropped.
func (p *RegionPool) Put(b *Buffer) {
	if b == nil {
		return
	}
	b.Reset()
	p.pool.Put(b)
}
