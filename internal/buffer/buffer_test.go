package buffer

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var b Buffer
	b.WriteUint32(7)
	v, err := b.ReadUint32()
	if err != nil || v != 7 {
		t.Fatalf("ReadUint32 = %d, %v; want 7, nil", v, err)
	}
}

func TestRoundTripPrimitives(t *testing.T) {
	b := New(64)
	b.WriteUint32(0xdeadbeef)
	b.WriteUint64(1 << 60)
	b.WriteInt32(-42)
	b.WriteInt64(-1 << 50)
	b.WriteUvarint(300)
	b.WriteVarint(-300)
	b.WriteBool(true)
	b.WriteBool(false)
	b.WriteFloat64(3.5)
	b.WriteString("hello, 世界")
	b.WriteBytes([]byte{1, 2, 3})

	if v, err := b.ReadUint32(); err != nil || v != 0xdeadbeef {
		t.Errorf("ReadUint32 = %x, %v", v, err)
	}
	if v, err := b.ReadUint64(); err != nil || v != 1<<60 {
		t.Errorf("ReadUint64 = %x, %v", v, err)
	}
	if v, err := b.ReadInt32(); err != nil || v != -42 {
		t.Errorf("ReadInt32 = %d, %v", v, err)
	}
	if v, err := b.ReadInt64(); err != nil || v != -1<<50 {
		t.Errorf("ReadInt64 = %d, %v", v, err)
	}
	if v, err := b.ReadUvarint(); err != nil || v != 300 {
		t.Errorf("ReadUvarint = %d, %v", v, err)
	}
	if v, err := b.ReadVarint(); err != nil || v != -300 {
		t.Errorf("ReadVarint = %d, %v", v, err)
	}
	if v, err := b.ReadBool(); err != nil || v != true {
		t.Errorf("ReadBool = %v, %v", v, err)
	}
	if v, err := b.ReadBool(); err != nil || v != false {
		t.Errorf("ReadBool = %v, %v", v, err)
	}
	if v, err := b.ReadFloat64(); err != nil || v != 3.5 {
		t.Errorf("ReadFloat64 = %v, %v", v, err)
	}
	if v, err := b.ReadString(); err != nil || v != "hello, 世界" {
		t.Errorf("ReadString = %q, %v", v, err)
	}
	if v, err := b.ReadBytes(); err != nil || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("ReadBytes = %v, %v", v, err)
	}
	if b.Len() != 0 {
		t.Errorf("Len after full read = %d, want 0", b.Len())
	}
}

func TestUnderflow(t *testing.T) {
	b := New(0)
	if _, err := b.ReadUint32(); err != ErrUnderflow {
		t.Errorf("ReadUint32 on empty = %v, want ErrUnderflow", err)
	}
	if _, err := b.ReadUint64(); err != ErrUnderflow {
		t.Errorf("ReadUint64 on empty = %v, want ErrUnderflow", err)
	}
	if _, err := b.ReadBool(); err != ErrUnderflow {
		t.Errorf("ReadBool on empty = %v, want ErrUnderflow", err)
	}
	if _, err := b.ReadUvarint(); err != ErrUnderflow {
		t.Errorf("ReadUvarint on empty = %v, want ErrUnderflow", err)
	}
	if _, err := b.ReadString(); err == nil {
		t.Errorf("ReadString on empty = nil error")
	}
	b.WriteByte(3) // claims 3-byte string follows; it does not
	if _, err := b.ReadString(); err != ErrBadString {
		t.Errorf("ReadString with truncated body = %v, want ErrBadString", err)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	b := New(8)
	b.WriteUint32(99)
	for i := 0; i < 3; i++ {
		v, err := b.PeekUint32()
		if err != nil || v != 99 {
			t.Fatalf("peek %d: %d, %v", i, v, err)
		}
	}
	v, err := b.ReadUint32()
	if err != nil || v != 99 {
		t.Fatalf("read after peeks: %d, %v", v, err)
	}
}

type fakeDoor struct{ n int }

func TestDoorSlots(t *testing.T) {
	b := New(16)
	d1, d2 := &fakeDoor{1}, &fakeDoor{2}
	b.WriteDoor(d1)
	b.WriteUint32(5)
	b.WriteDoor(d2)

	got1, err := b.ReadDoor()
	if err != nil || got1 != Door(d1) {
		t.Fatalf("ReadDoor 1 = %v, %v", got1, err)
	}
	if v, _ := b.ReadUint32(); v != 5 {
		t.Fatalf("interleaved uint32 = %d", v)
	}
	got2, err := b.ReadDoor()
	if err != nil || got2 != Door(d2) {
		t.Fatalf("ReadDoor 2 = %v, %v", got2, err)
	}
}

func TestDoorDoubleConsume(t *testing.T) {
	b := New(8)
	b.WriteDoor(&fakeDoor{1})
	if _, err := b.ReadDoor(); err != nil {
		t.Fatal(err)
	}
	b.Rewind()
	if _, err := b.ReadDoor(); err != ErrDoorTaken {
		t.Fatalf("second ReadDoor = %v, want ErrDoorTaken", err)
	}
}

func TestDoorMisalignedStream(t *testing.T) {
	b := New(8)
	b.WriteUvarint(7) // not a door tag
	if _, err := b.ReadDoor(); err != ErrBadDoor {
		t.Fatalf("ReadDoor on non-tag = %v, want ErrBadDoor", err)
	}

	// A correct tag with no out-of-band slot is also rejected.
	b2 := FromParts(New(0).data, nil)
	b2.WriteUvarint(0xD0)
	if _, err := b2.ReadDoor(); err != ErrBadDoor {
		t.Fatalf("ReadDoor with no slots = %v, want ErrBadDoor", err)
	}
}

func TestSplice(t *testing.T) {
	head := New(8)
	dh := &fakeDoor{1}
	head.WriteDoor(dh)
	head.WriteUint32(10)

	body := New(8)
	db := &fakeDoor{2}
	body.WriteUint32(20)
	body.WriteDoor(db)

	head.Splice(body)

	if got, err := head.ReadDoor(); err != nil || got != Door(dh) {
		t.Fatalf("spliced door 1 = %v, %v", got, err)
	}
	if v, _ := head.ReadUint32(); v != 10 {
		t.Fatalf("head uint32 = %d", v)
	}
	if v, _ := head.ReadUint32(); v != 20 {
		t.Fatalf("body uint32 = %d", v)
	}
	if got, err := head.ReadDoor(); err != nil || got != Door(db) {
		t.Fatalf("spliced door 2 = %v, %v", got, err)
	}
	if head.Len() != 0 {
		t.Fatalf("leftover bytes: %d", head.Len())
	}
}

func TestTakeAndReplaceDoors(t *testing.T) {
	b := New(8)
	d1, d2, d3 := &fakeDoor{1}, &fakeDoor{2}, &fakeDoor{3}
	b.WriteDoor(d1)
	b.WriteDoor(d2)
	b.WriteDoor(d3)
	if _, err := b.ReadDoor(); err != nil { // consume d1
		t.Fatal(err)
	}
	taken := b.TakeDoors()
	if len(taken) != 2 || taken[0] != Door(d2) || taken[1] != Door(d3) {
		t.Fatalf("TakeDoors = %v", taken)
	}
	if got := b.TakeDoors(); len(got) != 0 {
		t.Fatalf("second TakeDoors = %v, want empty", got)
	}

	// Rebuild from parts with replaced doors, as netd does.
	nb := FromParts(b.Bytes(), make([]Door, b.DoorCount()))
	if err := nb.ReplaceDoors([]Door{d1, d2, d3}); err != nil {
		t.Fatal(err)
	}
	if err := nb.ReplaceDoors([]Door{d1}); err == nil {
		t.Fatal("ReplaceDoors with wrong count succeeded")
	}
}

func TestFromPartsPreservesStream(t *testing.T) {
	b := New(8)
	b.WriteString("abc")
	b.WriteDoor(&fakeDoor{9})
	nb := FromParts(b.Bytes(), b.Doors())
	if s, err := nb.ReadString(); err != nil || s != "abc" {
		t.Fatalf("ReadString = %q, %v", s, err)
	}
	if _, err := nb.ReadDoor(); err != nil {
		t.Fatalf("ReadDoor = %v", err)
	}
}

func TestReset(t *testing.T) {
	b := New(8)
	b.WriteString("abc")
	b.WriteDoor(&fakeDoor{1})
	b.Reset()
	if b.Size() != 0 || b.DoorCount() != 0 || b.Len() != 0 {
		t.Fatalf("after Reset: size=%d doors=%d len=%d", b.Size(), b.DoorCount(), b.Len())
	}
}

func TestReadRaw(t *testing.T) {
	b := New(8)
	b.WriteRaw([]byte{1, 2, 3, 4})
	p, err := b.ReadRaw(3)
	if err != nil || !bytes.Equal(p, []byte{1, 2, 3}) {
		t.Fatalf("ReadRaw = %v, %v", p, err)
	}
	if _, err := b.ReadRaw(2); err != ErrUnderflow {
		t.Fatalf("overlong ReadRaw = %v, want ErrUnderflow", err)
	}
	if _, err := b.ReadRaw(-1); err != ErrUnderflow {
		t.Fatalf("negative ReadRaw = %v, want ErrUnderflow", err)
	}
}

// Property: any sequence of (uint64, string, bytes, bool, float) values
// written then read returns the same values in order.
func TestQuickRoundTrip(t *testing.T) {
	f := func(us []uint64, ss []string, bs [][]byte, fs []float64) bool {
		b := New(0)
		for _, u := range us {
			b.WriteUint64(u)
			b.WriteUvarint(u)
		}
		for _, s := range ss {
			b.WriteString(s)
		}
		for _, p := range bs {
			b.WriteBytes(p)
		}
		for _, v := range fs {
			b.WriteFloat64(v)
		}
		for _, u := range us {
			if got, err := b.ReadUint64(); err != nil || got != u {
				return false
			}
			if got, err := b.ReadUvarint(); err != nil || got != u {
				return false
			}
		}
		for _, s := range ss {
			if got, err := b.ReadString(); err != nil || got != s {
				return false
			}
		}
		for _, p := range bs {
			got, err := b.ReadBytes()
			if err != nil || !bytes.Equal(got, p) {
				return false
			}
		}
		for _, v := range fs {
			got, err := b.ReadFloat64()
			if err != nil {
				return false
			}
			if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				return false
			}
		}
		return b.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: reading from a buffer of random garbage never panics and never
// returns data larger than the buffer.
func TestQuickGarbageSafe(t *testing.T) {
	f := func(garbage []byte) bool {
		b := FromParts(garbage, nil)
		for b.Len() > 0 {
			before := b.Len()
			if s, err := b.ReadString(); err == nil && len(s) > len(garbage) {
				return false
			}
			if b.Len() == before {
				// ReadString failed without consuming; consume a byte to progress.
				if _, err := b.ReadByte(); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		b := New(0)
		b.WriteVarint(v)
		got, err := b.ReadVarint()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringDebug(t *testing.T) {
	b := New(0)
	b.WriteUint32(1)
	if s := b.String(); s == "" {
		t.Fatal("String returned empty")
	}
}
