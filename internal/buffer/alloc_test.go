package buffer

import "testing"

func TestPooledRoundTripAllocs(t *testing.T) {
	// ISSUE 3 acceptance: a Get/write/Put round trip through the pool
	// must not allocate in steady state — this is the frame-assembly
	// path every netd send takes.
	n := testing.AllocsPerRun(500, func() {
		b := Get(128)
		b.WriteByte(1)
		b.WriteUint64(42)
		b.WriteString("payload")
		Put(b)
	})
	if n > 0 {
		t.Fatalf("pooled round trip allocates %.1f objects/op, want 0", n)
	}
}

func TestPutClearsDoors(t *testing.T) {
	// A recycled buffer must not pin door references from its previous
	// life: Reset (and therefore Put) clears the doors backing array
	// before truncating it, so the pool cannot keep dropped references
	// reachable.
	b := New(16)
	b.WriteDoor("a door reference")
	backing := b.doors[:1]
	b.Reset()
	if backing[0] != nil {
		t.Fatalf("Reset left door slot populated: %v", backing[0])
	}
	if len(b.doors) != 0 {
		t.Fatalf("reset buffer carries %d doors", len(b.doors))
	}
}
