package buffer

import "testing"

func BenchmarkWritePrimitives(b *testing.B) {
	buf := New(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		buf.WriteUint32(1)
		buf.WriteUint64(2)
		buf.WriteUvarint(300)
		buf.WriteBool(true)
		buf.WriteFloat64(3.14)
		buf.WriteString("hello")
	}
}

func BenchmarkReadPrimitives(b *testing.B) {
	buf := New(256)
	buf.WriteUint32(1)
	buf.WriteUint64(2)
	buf.WriteUvarint(300)
	buf.WriteBool(true)
	buf.WriteFloat64(3.14)
	buf.WriteString("hello")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Rewind()
		if _, err := buf.ReadUint32(); err != nil {
			b.Fatal(err)
		}
		if _, err := buf.ReadUint64(); err != nil {
			b.Fatal(err)
		}
		if _, err := buf.ReadUvarint(); err != nil {
			b.Fatal(err)
		}
		if _, err := buf.ReadBool(); err != nil {
			b.Fatal(err)
		}
		if _, err := buf.ReadFloat64(); err != nil {
			b.Fatal(err)
		}
		if _, err := buf.ReadString(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteBytes4K(b *testing.B) {
	buf := New(8192)
	p := make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		buf.WriteBytes(p)
	}
}

func BenchmarkSplice(b *testing.B) {
	body := New(4096)
	body.WriteBytes(make([]byte, 4000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		head := New(4096)
		head.WriteByte(0)
		head.Splice(body)
	}
}
