package buffer

import "testing"

// FuzzReads drives every read operation over arbitrary bytes: reads may
// fail but must never panic, and length-prefixed reads must never return
// more data than the buffer holds.
func FuzzReads(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xD0, 1, 2, 3})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	seed := New(0)
	seed.WriteString("hello")
	seed.WriteUint64(42)
	f.Add(append([]byte(nil), seed.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		b := FromParts(data, nil)
		for b.Len() > 0 {
			before := b.Len()
			if s, err := b.ReadString(); err == nil && len(s) > len(data) {
				t.Fatalf("ReadString returned %d bytes from a %d-byte buffer", len(s), len(data))
			}
			if _, err := b.ReadDoor(); err == nil {
				t.Fatal("ReadDoor succeeded with no door slots")
			}
			if b.Len() == before {
				if _, err := b.ReadByte(); err != nil {
					t.Fatal("ReadByte failed with bytes remaining")
				}
			}
		}
		// Varint paths.
		b2 := FromParts(data, nil)
		for b2.Len() > 0 {
			if _, err := b2.ReadUvarint(); err != nil {
				break
			}
		}
	})
}
