// Package buffer implements the communication buffers used by the
// subcontract machinery.
//
// A Buffer is a typed marshal stream: stubs and subcontracts append
// primitive values to it when building a call or a marshalled object, and
// read them back on the receiving side. Besides the byte stream a Buffer
// carries an out-of-band sequence of door references (compare Mach port
// rights in messages): doors are capabilities managed by the kernel and
// cannot be flattened to bytes inside a machine, so WriteDoor records the
// reference out-of-band and splices a positional index into the byte
// stream. The network door servers (package netd) translate these
// references to an extended network form when a buffer crosses machines.
//
// The zero value of Buffer is an empty buffer ready for writing.
package buffer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Door is an opaque door reference slot. The kernel and the network door
// servers define the concrete types stored here; the buffer only transports
// them positionally.
type Door any

// Errors returned by read operations.
var (
	// ErrUnderflow is returned when a read runs past the end of the
	// buffer's byte stream.
	ErrUnderflow = errors.New("buffer: read past end of buffer")
	// ErrBadString is returned when a marshalled string or byte sequence
	// has a corrupt length prefix.
	ErrBadString = errors.New("buffer: corrupt length prefix")
	// ErrBadDoor is returned when the byte stream does not carry a door
	// tag at the read position, or no out-of-band door slot remains.
	ErrBadDoor = errors.New("buffer: stream misaligned with door slots")
	// ErrDoorTaken is returned when a door slot has already been consumed
	// by an earlier ReadDoor.
	ErrDoorTaken = errors.New("buffer: door slot already consumed")
)

// doorTag is spliced into the byte stream at each WriteDoor so misaligned
// reads are detected. Door references themselves travel out-of-band and are
// consumed in FIFO order, which keeps streams spliceable: appending one
// buffer's bytes and doors to another preserves the pairing.
const doorTag = 0xD0

// Buffer is a marshal stream plus out-of-band door references.
// It is not safe for concurrent use.
type Buffer struct {
	data    []byte
	rpos    int
	doors   []Door
	dcursor int
	region  *Region // backing region, if built by FromRegion
}

// New returns an empty buffer with capacity hint n.
func New(n int) *Buffer {
	return &Buffer{data: make([]byte, 0, n)}
}

// pool recycles Buffers for the marshal hot paths (netd frame assembly,
// reply payloads). Capacity is retained across uses up to maxPooledCap so
// a steady-state small call allocates nothing.
var pool = sync.Pool{New: func() any { return &Buffer{} }}

// maxPooledCap bounds the byte capacity a pooled buffer may retain; a
// buffer grown past it (one giant frame) is dropped to the collector
// rather than pinning the memory in the pool.
const maxPooledCap = 256 << 10

// Get returns an empty buffer from the process-wide pool, grown to at
// least capacity hint n. Release it with Put when its contents are dead.
// A buffer whose pooled capacity is too small is re-armed from the
// storage pool (see Recycle) before falling back to a fresh allocation,
// so detached payload arrays circulate back into the marshal paths.
func Get(n int) *Buffer {
	b := pool.Get().(*Buffer)
	if cap(b.data) < n {
		if s := getStorage(n); s != nil {
			b.data = s
		} else {
			b.data = make([]byte, 0, n)
		}
	}
	return b
}

// storagePool recycles bare byte arrays: the payload storage behind
// detached buffers and bulk-region grants, which outlives the Buffer
// struct that grew it. Entries are *[]byte with length 0.
var storagePool sync.Pool

// getStorage returns a zero-length pooled array with capacity at least n,
// or nil when the pool cannot supply one. An array too small for the
// request is dropped to the collector rather than returned to the pool:
// the hot paths that miss here are about to grow past it anyway.
func getStorage(n int) []byte {
	v := storagePool.Get()
	if v == nil {
		return nil
	}
	s := *(v.(*[]byte))
	if cap(s) < n {
		return nil
	}
	return s
}

// GetStorage returns a length-n byte slice from the storage pool, falling
// back to a fresh allocation. Pair with Recycle.
func GetStorage(n int) []byte {
	if s := getStorage(n); s != nil {
		return s[:n]
	}
	return make([]byte, n)
}

// Recycle returns a payload array to the storage pool. The caller must
// own p outright — no buffer, region or reader may alias it afterwards.
// Oversized arrays are dropped, mirroring Put.
func Recycle(p []byte) {
	if cap(p) == 0 || cap(p) > maxPooledCap {
		return
	}
	p = p[:0]
	storagePool.Put(&p)
}

// Put resets b and returns it to the pool. The caller must own b
// exclusively and must not use it afterwards; as with Reset, any
// unconsumed door references are dropped, so release them first. Put is
// safe on buffers not obtained from Get (and on nil, a no-op).
func Put(b *Buffer) {
	if b == nil || cap(b.data) > maxPooledCap {
		return
	}
	b.Reset()
	pool.Put(b)
}

// FromParts reconstructs a buffer from a byte stream and a door slice, as
// produced by Bytes and Doors on the sending side. The slices are adopted,
// not copied.
func FromParts(data []byte, doors []Door) *Buffer {
	return &Buffer{data: data, doors: doors}
}

// shellPool recycles the transient Buffer structs handed out by Wrap. It
// is deliberately separate from Get's pool: those buffers retain marshal
// storage across uses, while a shell never owns its bytes — mixing the
// two would drain the armed buffers' storage guarantee.
var shellPool = sync.Pool{New: func() any { return &Buffer{} }}

// Wrap is the pooled counterpart of FromParts: it adopts data and doors
// without copying, for byte streams that already exist (netd's inbound
// frames). Release the struct with PutShell once it is dead; the adopted
// slices are never retained, so they may be aliased by payload buffers
// that outlive the shell.
func Wrap(data []byte, doors []Door) *Buffer {
	b := shellPool.Get().(*Buffer)
	b.data = data
	b.doors = doors
	return b
}

// PutShell returns a Wrap'd buffer to the shell pool (nil is a no-op),
// dropping — not retaining — every reference it carried. Unlike Put this
// is safe when the byte stream is still live elsewhere: a reply payload
// built over an inbound frame keeps reading those bytes after the frame's
// shell is recycled.
func PutShell(b *Buffer) {
	if b == nil {
		return
	}
	if r := b.region; r != nil {
		b.region = nil
		r.Release()
	}
	*b = Buffer{}
	shellPool.Put(b)
}

// Bytes returns the full byte stream written so far.
func (b *Buffer) Bytes() []byte { return b.data }

// Doors returns the out-of-band door slice. Consumed slots are nil.
func (b *Buffer) Doors() []Door { return b.doors }

// Len reports the number of unread bytes.
func (b *Buffer) Len() int { return len(b.data) - b.rpos }

// Size reports the total number of bytes written.
func (b *Buffer) Size() int { return len(b.data) }

// DoorCount reports the number of door slots (consumed or not).
func (b *Buffer) DoorCount() int { return len(b.doors) }

// Reset empties the buffer for reuse, retaining allocated capacity.
// Any unconsumed door references are dropped; the caller is responsible for
// releasing them first (see kernel.ReleaseBufferDoors). A region-backed
// buffer releases its region and drops the aliased bytes.
func (b *Buffer) Reset() {
	if r := b.region; r != nil {
		b.region = nil
		b.data = nil // the bytes belong to the released region
		r.Release()
	}
	b.data = b.data[:0]
	b.rpos = 0
	clear(b.doors) // don't let a recycled buffer pin dropped references
	b.doors = b.doors[:0]
	b.dcursor = 0
}

// Rewind moves the read position back to the start of the stream. Door
// slots consumed before the rewind stay consumed (their references were
// adopted elsewhere); re-reading one yields ErrDoorTaken.
func (b *Buffer) Rewind() {
	b.rpos = 0
	b.dcursor = 0
}

// WriteUint32 appends v in little-endian order.
func (b *Buffer) WriteUint32(v uint32) {
	b.data = binary.LittleEndian.AppendUint32(b.data, v)
}

// WriteUint64 appends v in little-endian order.
func (b *Buffer) WriteUint64(v uint64) {
	b.data = binary.LittleEndian.AppendUint64(b.data, v)
}

// WriteInt32 appends v in little-endian order.
func (b *Buffer) WriteInt32(v int32) { b.WriteUint32(uint32(v)) }

// WriteInt64 appends v in little-endian order.
func (b *Buffer) WriteInt64(v int64) { b.WriteUint64(uint64(v)) }

// WriteUvarint appends v in unsigned varint encoding.
func (b *Buffer) WriteUvarint(v uint64) {
	b.data = binary.AppendUvarint(b.data, v)
}

// WriteVarint appends v in signed varint encoding.
func (b *Buffer) WriteVarint(v int64) {
	b.data = binary.AppendVarint(b.data, v)
}

// WriteBool appends a single 0/1 byte.
func (b *Buffer) WriteBool(v bool) {
	if v {
		b.data = append(b.data, 1)
	} else {
		b.data = append(b.data, 0)
	}
}

// WriteByte appends a single byte. It always returns nil, satisfying
// io.ByteWriter.
func (b *Buffer) WriteByte(v byte) error {
	b.data = append(b.data, v)
	return nil
}

// WriteFloat64 appends v as an IEEE-754 bit pattern.
func (b *Buffer) WriteFloat64(v float64) {
	b.WriteUint64(math.Float64bits(v))
}

// WriteFloat32 appends v as an IEEE-754 bit pattern.
func (b *Buffer) WriteFloat32(v float32) {
	b.WriteUint32(math.Float32bits(v))
}

// WriteString appends a length-prefixed string. It always succeeds; the
// return values satisfy io.StringWriter.
func (b *Buffer) WriteString(s string) (int, error) {
	b.WriteUvarint(uint64(len(s)))
	b.data = append(b.data, s...)
	return len(s), nil
}

// WriteBytes appends a length-prefixed byte sequence.
func (b *Buffer) WriteBytes(p []byte) {
	b.WriteUvarint(uint64(len(p)))
	b.data = append(b.data, p...)
}

// WriteRaw appends p with no length prefix.
func (b *Buffer) WriteRaw(p []byte) {
	b.data = append(b.data, p...)
}

// WriteDoor records d out-of-band and splices a door tag into the byte
// stream. Doors are consumed in the order they were written.
func (b *Buffer) WriteDoor(d Door) {
	b.WriteUvarint(doorTag)
	b.doors = append(b.doors, d)
}

// ReadUint32 consumes and returns a little-endian uint32.
func (b *Buffer) ReadUint32() (uint32, error) {
	if b.Len() < 4 {
		return 0, ErrUnderflow
	}
	v := binary.LittleEndian.Uint32(b.data[b.rpos:])
	b.rpos += 4
	return v, nil
}

// PeekUint32 returns the next uint32 without consuming it. Subcontract
// unmarshal code uses this to take a peek at the expected subcontract
// identifier before deciding whether to dispatch to another subcontract.
func (b *Buffer) PeekUint32() (uint32, error) {
	if b.Len() < 4 {
		return 0, ErrUnderflow
	}
	return binary.LittleEndian.Uint32(b.data[b.rpos:]), nil
}

// ReadUint64 consumes and returns a little-endian uint64.
func (b *Buffer) ReadUint64() (uint64, error) {
	if b.Len() < 8 {
		return 0, ErrUnderflow
	}
	v := binary.LittleEndian.Uint64(b.data[b.rpos:])
	b.rpos += 8
	return v, nil
}

// ReadInt32 consumes and returns a little-endian int32.
func (b *Buffer) ReadInt32() (int32, error) {
	v, err := b.ReadUint32()
	return int32(v), err
}

// ReadInt64 consumes and returns a little-endian int64.
func (b *Buffer) ReadInt64() (int64, error) {
	v, err := b.ReadUint64()
	return int64(v), err
}

// ReadUvarint consumes and returns an unsigned varint.
func (b *Buffer) ReadUvarint() (uint64, error) {
	v, n := binary.Uvarint(b.data[b.rpos:])
	if n <= 0 {
		return 0, ErrUnderflow
	}
	b.rpos += n
	return v, nil
}

// ReadVarint consumes and returns a signed varint.
func (b *Buffer) ReadVarint() (int64, error) {
	v, n := binary.Varint(b.data[b.rpos:])
	if n <= 0 {
		return 0, ErrUnderflow
	}
	b.rpos += n
	return v, nil
}

// ReadBool consumes and returns a boolean.
func (b *Buffer) ReadBool() (bool, error) {
	if b.Len() < 1 {
		return false, ErrUnderflow
	}
	v := b.data[b.rpos] != 0
	b.rpos++
	return v, nil
}

// ReadByte consumes and returns one byte, satisfying io.ByteReader.
func (b *Buffer) ReadByte() (byte, error) {
	if b.Len() < 1 {
		return 0, ErrUnderflow
	}
	v := b.data[b.rpos]
	b.rpos++
	return v, nil
}

// ReadFloat64 consumes and returns an IEEE-754 double.
func (b *Buffer) ReadFloat64() (float64, error) {
	v, err := b.ReadUint64()
	return math.Float64frombits(v), err
}

// ReadFloat32 consumes and returns an IEEE-754 single.
func (b *Buffer) ReadFloat32() (float32, error) {
	v, err := b.ReadUint32()
	return math.Float32frombits(v), err
}

// ReadString consumes and returns a length-prefixed string.
func (b *Buffer) ReadString() (string, error) {
	n, err := b.ReadUvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(b.Len()) {
		return "", ErrBadString
	}
	s := string(b.data[b.rpos : b.rpos+int(n)])
	b.rpos += int(n)
	return s, nil
}

// ReadBytes consumes and returns a length-prefixed byte sequence. The
// returned slice aliases the buffer's storage.
func (b *Buffer) ReadBytes() ([]byte, error) {
	n, err := b.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(b.Len()) {
		return nil, ErrBadString
	}
	p := b.data[b.rpos : b.rpos+int(n) : b.rpos+int(n)]
	b.rpos += int(n)
	return p, nil
}

// ReadRaw consumes exactly n bytes with no length prefix.
func (b *Buffer) ReadRaw(n int) ([]byte, error) {
	if n < 0 || n > b.Len() {
		return nil, ErrUnderflow
	}
	p := b.data[b.rpos : b.rpos+n : b.rpos+n]
	b.rpos += n
	return p, nil
}

// ReadDoor consumes a door tag from the byte stream and returns the next
// unconsumed door reference, clearing its slot so the reference cannot be
// adopted twice (re-reading after Rewind fails with ErrDoorTaken).
func (b *Buffer) ReadDoor() (Door, error) {
	tag, err := b.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if tag != doorTag {
		return nil, ErrBadDoor
	}
	if b.dcursor >= len(b.doors) {
		return nil, ErrBadDoor
	}
	d := b.doors[b.dcursor]
	if d == nil {
		b.dcursor++
		return nil, ErrDoorTaken
	}
	b.doors[b.dcursor] = nil
	b.dcursor++
	return d, nil
}

// Splice appends other's byte stream and door references to b. Because
// doors are consumed in FIFO order, reading the combined stream pairs each
// door tag with the right reference. other must not be used afterwards.
func (b *Buffer) Splice(other *Buffer) {
	b.data = append(b.data, other.data...)
	b.doors = append(b.doors, other.doors...)
}

// Detach removes and returns the buffer's byte storage, leaving the byte
// stream empty (door slots are untouched). The caller becomes the sole
// owner of the returned slice. It refuses (nil, false) on a region-backed
// buffer: those bytes belong to the region's owner — often a pool that
// will recycle them — and cannot change hands.
func (b *Buffer) Detach() ([]byte, bool) {
	if b.region != nil {
		return nil, false
	}
	data := b.data
	b.data = nil
	b.rpos = 0
	return data, true
}

// Regioned reports whether the buffer's bytes are backed by a Region —
// storage with an owner and a release lifecycle of its own.
func (b *Buffer) Regioned() bool { return b.region != nil }

// A Mark captures a buffer's write position, so a speculative section —
// bytes and door references — can be rolled back with Truncate.
type Mark struct {
	nbytes int
	ndoors int
}

// Mark returns the current end-of-stream position.
func (b *Buffer) Mark() Mark { return Mark{nbytes: len(b.data), ndoors: len(b.doors)} }

// Truncate discards everything written after m, returning the unconsumed
// door references removed so the caller can release them. Read positions
// past the mark are pulled back to it.
func (b *Buffer) Truncate(m Mark) []Door {
	var removed []Door
	if m.ndoors < len(b.doors) {
		for _, d := range b.doors[m.ndoors:] {
			if d != nil {
				removed = append(removed, d)
			}
		}
		clear(b.doors[m.ndoors:])
		b.doors = b.doors[:m.ndoors]
	}
	if m.nbytes < len(b.data) {
		b.data = b.data[:m.nbytes]
	}
	if b.rpos > m.nbytes {
		b.rpos = m.nbytes
	}
	if b.dcursor > m.ndoors {
		b.dcursor = m.ndoors
	}
	return removed
}

// TakeDoors removes and returns all remaining (unconsumed) door references,
// clearing their slots. The network door servers use this when re-homing a
// buffer's doors onto the wire.
func (b *Buffer) TakeDoors() []Door {
	var out []Door
	for i, d := range b.doors {
		if d != nil {
			out = append(out, d)
			b.doors[i] = nil
		}
	}
	return out
}

// ReplaceDoors substitutes the door slice wholesale, preserving positional
// indices already spliced into the byte stream. It is used when importing a
// buffer whose doors were translated to proxy doors.
func (b *Buffer) ReplaceDoors(doors []Door) error {
	if len(doors) != len(b.doors) {
		return fmt.Errorf("buffer: door count mismatch: have %d slots, got %d doors", len(b.doors), len(doors))
	}
	b.doors = doors
	return nil
}

// String implements fmt.Stringer for debugging.
func (b *Buffer) String() string {
	return fmt.Sprintf("Buffer{%d bytes, rpos %d, %d doors}", len(b.data), b.rpos, len(b.doors))
}
