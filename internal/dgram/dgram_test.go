package dgram

import (
	"testing"
	"testing/quick"
)

func TestDeliverInOrder(t *testing.T) {
	c := New(10, 0)
	for i := byte(0); i < 5; i++ {
		if !c.Send([]byte{i}) {
			t.Fatalf("send %d failed", i)
		}
	}
	for i := byte(0); i < 5; i++ {
		p, ok := c.TryRecv()
		if !ok || p[0] != i {
			t.Fatalf("recv %d = %v, %v", i, p, ok)
		}
	}
	if _, ok := c.TryRecv(); ok {
		t.Fatal("phantom packet")
	}
}

func TestDeterministicDrop(t *testing.T) {
	c := New(100, 3) // every 3rd packet dropped
	for i := 0; i < 9; i++ {
		c.Send([]byte{byte(i)})
	}
	s := c.Stats()
	if s.Sent != 9 || s.Dropped != 3 || s.Delivered != 6 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBackpressureDrop(t *testing.T) {
	c := New(2, 0)
	for i := 0; i < 5; i++ {
		c.Send([]byte{byte(i)})
	}
	s := c.Stats()
	if s.Delivered != 2 || s.Dropped != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCloseDrains(t *testing.T) {
	c := New(4, 0)
	c.Send([]byte{1})
	c.Close()
	if !c.Closed() {
		t.Fatal("not closed")
	}
	if p, ok := c.Recv(); !ok || p[0] != 1 {
		t.Fatalf("pending packet lost: %v %v", p, ok)
	}
	if _, ok := c.Recv(); ok {
		t.Fatal("recv after drain")
	}
	if c.Send([]byte{2}) {
		t.Fatal("send after close succeeded")
	}
}

func TestSendCopies(t *testing.T) {
	c := New(2, 0)
	p := []byte{7}
	c.Send(p)
	p[0] = 9
	got, _ := c.TryRecv()
	if got[0] != 7 {
		t.Fatal("packet aliased caller's buffer")
	}
}

// Property: counters always balance: sent == delivered + dropped.
func TestQuickCounters(t *testing.T) {
	f := func(payloads [][]byte, capacity uint8, dropEvery uint8) bool {
		c := New(int(capacity%8)+1, int(dropEvery%4))
		for _, p := range payloads {
			c.Send(p)
		}
		s := c.Stats()
		return s.Sent == s.Delivered+s.Dropped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
