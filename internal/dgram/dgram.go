// Package dgram provides a lossy, bounded, unidirectional datagram
// channel: the simulated network packet substrate for the video
// subcontract (§8.4). Real live-video protocols ride on unreliable
// datagrams; the channel reproduces the properties that matter to the
// protocol — packets may be dropped under loss or backpressure, are never
// duplicated or reordered, and delivery is best-effort.
package dgram

import "sync"

// Stats counts channel activity.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
}

// Channel is a lossy packet channel. The zero value is not usable; use New.
type Channel struct {
	mu        sync.Mutex
	q         chan []byte
	dropEvery int
	count     uint64
	closed    bool
	stats     Stats
}

// New creates a channel buffering up to capacity packets. If dropEvery is
// n > 0, every nth packet is dropped (deterministic loss, so experiments
// are reproducible). Packets that arrive with the buffer full are dropped
// regardless (backpressure loss).
func New(capacity, dropEvery int) *Channel {
	if capacity < 1 {
		capacity = 1
	}
	return &Channel{q: make(chan []byte, capacity), dropEvery: dropEvery}
}

// Send offers a packet; it never blocks. The packet is copied. It reports
// whether the packet was enqueued.
func (c *Channel) Send(p []byte) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	c.count++
	c.stats.Sent++
	if c.dropEvery > 0 && c.count%uint64(c.dropEvery) == 0 {
		c.stats.Dropped++
		c.mu.Unlock()
		return false
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	select {
	case c.q <- cp:
		c.stats.Delivered++
		c.mu.Unlock()
		return true
	default:
		c.stats.Dropped++
		c.mu.Unlock()
		return false
	}
}

// Recv blocks for the next packet; ok is false once the channel is closed
// and drained.
func (c *Channel) Recv() (p []byte, ok bool) {
	p, ok = <-c.q
	return p, ok
}

// TryRecv returns the next packet without blocking.
func (c *Channel) TryRecv() (p []byte, ok bool) {
	select {
	case p, ok = <-c.q:
		return p, ok
	default:
		return nil, false
	}
}

// Close stops delivery. Pending packets can still be received.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.q)
	}
}

// Closed reports whether Close was called.
func (c *Channel) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
