package sctest

import (
	"errors"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
)

// Conformance drives the framework-contract battery against one
// subcontract: the behaviours §5–§7 require of every subcontract
// regardless of the policy it implements. Authors of new subcontracts run
// it the way Spring subcontract writers would run a compliance suite.
type Conformance struct {
	// Name labels the subtests.
	Name string
	// NewEnv builds a domain wired with whatever libraries and
	// environment slots the subcontract needs (naming contexts, cache
	// managers, policies, ...).
	NewEnv func(t *testing.T, k *kernel.Kernel, name string) *core.Env
	// Export creates a fresh counter object (served by a fresh Counter)
	// in srv.
	Export func(t *testing.T, srv *core.Env) (*core.Object, *Counter)
	// SharedKernel, when non-nil, is used instead of a fresh kernel per
	// subtest (for subcontracts whose fixtures are machine-wide).
	SharedKernel func(t *testing.T) *kernel.Kernel
	// LocalInvoke reports whether the freshly exported object can be
	// invoked before any marshal (true for every subcontract here).
	LocalInvoke bool
}

func (c Conformance) kernelFor(t *testing.T) *kernel.Kernel {
	t.Helper()
	if c.SharedKernel != nil {
		return c.SharedKernel(t)
	}
	return kernel.New("conformance")
}

// Run executes the battery.
func (c Conformance) Run(t *testing.T) {
	t.Run(c.Name+"/invoke", c.testInvoke)
	t.Run(c.Name+"/marshal-consumes", c.testMarshalConsumes)
	t.Run(c.Name+"/marshal-copy-retains", c.testMarshalCopyRetains)
	t.Run(c.Name+"/copy-shares-state", c.testCopySharesState)
	t.Run(c.Name+"/consume", c.testConsume)
	t.Run(c.Name+"/remote-exception", c.testRemoteException)
	t.Run(c.Name+"/retransfer", c.testRetransfer)
	t.Run(c.Name+"/compatible-unmarshal", c.testCompatibleUnmarshal)
	t.Run(c.Name+"/nil-reference", c.testNilReference)
}

// world builds the standard two-domain fixture.
func (c Conformance) world(t *testing.T) (*core.Env, *core.Env, *core.Object, *Counter) {
	t.Helper()
	k := c.kernelFor(t)
	srv := c.NewEnv(t, k, "server")
	cli := c.NewEnv(t, k, "client")
	obj, ctr := c.Export(t, srv)
	return srv, cli, obj, ctr
}

func (c Conformance) testInvoke(t *testing.T) {
	_, cli, obj, ctr := c.world(t)
	if c.LocalInvoke {
		if v, err := Add(obj, 1); err != nil || v != 1 {
			t.Fatalf("local Add = %d, %v", v, err)
		}
	}
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	before := ctr.Value()
	if v, err := Add(remote, 5); err != nil || v != before+5 {
		t.Fatalf("remote Add = %d, %v", v, err)
	}
	if ctr.Value() != before+5 {
		t.Fatalf("server state = %d", ctr.Value())
	}
}

func (c Conformance) testMarshalConsumes(t *testing.T) {
	_, cli, obj, _ := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.Consumed() {
		t.Fatal("marshal left the source object alive (§5.1.1 requires move semantics)")
	}
	if err := obj.Marshal(buffer.New(0)); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("second marshal = %v, want ErrConsumed", err)
	}
	if _, err := Get(remote); err != nil {
		t.Fatal(err)
	}
}

func (c Conformance) testMarshalCopyRetains(t *testing.T) {
	_, cli, obj, ctr := c.world(t)
	remote, err := TransferCopy(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Consumed() {
		t.Fatal("marshal_copy consumed the original (§5.1.5 requires the caller to retain it)")
	}
	// Both designate the same underlying state.
	if _, err := Add(obj, 2); err != nil {
		t.Fatal(err)
	}
	if v, err := Get(remote); err != nil || v != ctr.Value() {
		t.Fatalf("views diverged: remote %d, server %d (%v)", v, ctr.Value(), err)
	}
}

func (c Conformance) testCopySharesState(t *testing.T) {
	_, cli, obj, ctr := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := remote.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Add(remote, 3); err != nil {
		t.Fatal(err)
	}
	if v, err := Get(cp); err != nil || v != ctr.Value() {
		t.Fatalf("copy sees %d, server %d (%v)", v, ctr.Value(), err)
	}
	// The copy outlives the original (shallow copy semantics, §7).
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	if _, err := Get(cp); err != nil {
		t.Fatalf("copy died with the original: %v", err)
	}
}

func (c Conformance) testConsume(t *testing.T) {
	_, cli, obj, _ := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	if err := remote.Consume(); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("double consume = %v, want ErrConsumed", err)
	}
	if _, err := Get(remote); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("invoke after consume = %v, want ErrConsumed", err)
	}
	if _, err := remote.Copy(); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("copy after consume = %v, want ErrConsumed", err)
	}
	if err := remote.MarshalCopy(buffer.New(0)); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("marshal_copy after consume = %v, want ErrConsumed", err)
	}
}

func (c Conformance) testRemoteException(t *testing.T) {
	_, cli, obj, _ := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := Boom(remote); !stubs.IsRemote(err) {
		t.Fatalf("Boom = %v, want remote exception", err)
	}
	// The object survives an application failure.
	if _, err := Get(remote); err != nil {
		t.Fatalf("object dead after remote exception: %v", err)
	}
}

func (c Conformance) testRetransfer(t *testing.T) {
	k := c.kernelFor(t)
	srv := c.NewEnv(t, k, "server")
	cliA := c.NewEnv(t, k, "clientA")
	cliB := c.NewEnv(t, k, "clientB")
	obj, ctr := c.Export(t, srv)

	viaA, err := Transfer(obj, cliA, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Add(viaA, 1); err != nil {
		t.Fatal(err)
	}
	viaB, err := Transfer(viaA, cliB, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := Add(viaB, 1); err != nil || v != ctr.Value() {
		t.Fatalf("after onward transfer: %d, %v (server %d)", v, err, ctr.Value())
	}
}

func (c Conformance) testCompatibleUnmarshal(t *testing.T) {
	// CounterMT's default subcontract is singleton; whatever subcontract
	// actually marshalled the object must be rediscovered by the peek
	// protocol (§6.1) and preserved.
	_, cli, obj, _ := c.world(t)
	want := obj.SC.ID()
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if remote.SC.ID() != want {
		t.Fatalf("unmarshalled with subcontract %d, want %d", remote.SC.ID(), want)
	}
}

func (c Conformance) testNilReference(t *testing.T) {
	k := c.kernelFor(t)
	cli := c.NewEnv(t, k, "client")
	buf := buffer.New(8)
	var nilObj *core.Object
	if err := nilObj.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.Unmarshal(cli, CounterMT, buf)
	if err != nil || got != nil {
		t.Fatalf("nil reference = %v, %v", got, err)
	}
}
