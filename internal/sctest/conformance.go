package sctest

import (
	"errors"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
)

// Conformance drives the framework-contract battery against one
// subcontract: the behaviours §5–§7 require of every subcontract
// regardless of the policy it implements. Authors of new subcontracts run
// it the way Spring subcontract writers would run a compliance suite.
type Conformance struct {
	// Name labels the subtests.
	Name string
	// NewEnv builds a domain wired with whatever libraries and
	// environment slots the subcontract needs (naming contexts, cache
	// managers, policies, ...).
	NewEnv func(t *testing.T, k *kernel.Kernel, name string) *core.Env
	// Export creates a fresh counter object (served by a fresh Counter)
	// in srv.
	Export func(t *testing.T, srv *core.Env) (*core.Object, *Counter)
	// SharedKernel, when non-nil, is used instead of a fresh kernel per
	// subtest (for subcontracts whose fixtures are machine-wide).
	SharedKernel func(t *testing.T) *kernel.Kernel
	// LocalInvoke reports whether the freshly exported object can be
	// invoked before any marshal (true for every subcontract here).
	LocalInvoke bool
}

func (c Conformance) kernelFor(t *testing.T) *kernel.Kernel {
	t.Helper()
	if c.SharedKernel != nil {
		return c.SharedKernel(t)
	}
	return kernel.New("conformance")
}

// Run executes the battery.
func (c Conformance) Run(t *testing.T) {
	t.Run(c.Name+"/invoke", c.testInvoke)
	t.Run(c.Name+"/marshal-consumes", c.testMarshalConsumes)
	t.Run(c.Name+"/marshal-copy-retains", c.testMarshalCopyRetains)
	t.Run(c.Name+"/copy-shares-state", c.testCopySharesState)
	t.Run(c.Name+"/consume", c.testConsume)
	t.Run(c.Name+"/remote-exception", c.testRemoteException)
	t.Run(c.Name+"/retransfer", c.testRetransfer)
	t.Run(c.Name+"/compatible-unmarshal", c.testCompatibleUnmarshal)
	t.Run(c.Name+"/nil-reference", c.testNilReference)
	t.Run(c.Name+"/expired-deadline", c.testExpiredDeadline)
	t.Run(c.Name+"/cancelled", c.testCancelled)
	t.Run(c.Name+"/deadline-no-door-leak", c.testDeadlineNoDoorLeak)
	t.Run(c.Name+"/deadline-after-success", c.testDeadlineAfterSuccess)
}

// world builds the standard two-domain fixture.
func (c Conformance) world(t *testing.T) (*core.Env, *core.Env, *core.Object, *Counter) {
	t.Helper()
	k := c.kernelFor(t)
	srv := c.NewEnv(t, k, "server")
	cli := c.NewEnv(t, k, "client")
	obj, ctr := c.Export(t, srv)
	return srv, cli, obj, ctr
}

func (c Conformance) testInvoke(t *testing.T) {
	_, cli, obj, ctr := c.world(t)
	if c.LocalInvoke {
		if v, err := Add(obj, 1); err != nil || v != 1 {
			t.Fatalf("local Add = %d, %v", v, err)
		}
	}
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	before := ctr.Value()
	if v, err := Add(remote, 5); err != nil || v != before+5 {
		t.Fatalf("remote Add = %d, %v", v, err)
	}
	if ctr.Value() != before+5 {
		t.Fatalf("server state = %d", ctr.Value())
	}
}

func (c Conformance) testMarshalConsumes(t *testing.T) {
	_, cli, obj, _ := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.Consumed() {
		t.Fatal("marshal left the source object alive (§5.1.1 requires move semantics)")
	}
	if err := obj.Marshal(buffer.New(0)); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("second marshal = %v, want ErrConsumed", err)
	}
	if _, err := Get(remote); err != nil {
		t.Fatal(err)
	}
}

func (c Conformance) testMarshalCopyRetains(t *testing.T) {
	_, cli, obj, ctr := c.world(t)
	remote, err := TransferCopy(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Consumed() {
		t.Fatal("marshal_copy consumed the original (§5.1.5 requires the caller to retain it)")
	}
	// Both designate the same underlying state.
	if _, err := Add(obj, 2); err != nil {
		t.Fatal(err)
	}
	if v, err := Get(remote); err != nil || v != ctr.Value() {
		t.Fatalf("views diverged: remote %d, server %d (%v)", v, ctr.Value(), err)
	}
}

func (c Conformance) testCopySharesState(t *testing.T) {
	_, cli, obj, ctr := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := remote.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Add(remote, 3); err != nil {
		t.Fatal(err)
	}
	if v, err := Get(cp); err != nil || v != ctr.Value() {
		t.Fatalf("copy sees %d, server %d (%v)", v, ctr.Value(), err)
	}
	// The copy outlives the original (shallow copy semantics, §7).
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	if _, err := Get(cp); err != nil {
		t.Fatalf("copy died with the original: %v", err)
	}
}

func (c Conformance) testConsume(t *testing.T) {
	_, cli, obj, _ := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	if err := remote.Consume(); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("double consume = %v, want ErrConsumed", err)
	}
	if _, err := Get(remote); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("invoke after consume = %v, want ErrConsumed", err)
	}
	if _, err := remote.Copy(); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("copy after consume = %v, want ErrConsumed", err)
	}
	if err := remote.MarshalCopy(buffer.New(0)); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("marshal_copy after consume = %v, want ErrConsumed", err)
	}
}

func (c Conformance) testRemoteException(t *testing.T) {
	_, cli, obj, _ := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := Boom(remote); !stubs.IsRemote(err) {
		t.Fatalf("Boom = %v, want remote exception", err)
	}
	// The object survives an application failure.
	if _, err := Get(remote); err != nil {
		t.Fatalf("object dead after remote exception: %v", err)
	}
}

func (c Conformance) testRetransfer(t *testing.T) {
	k := c.kernelFor(t)
	srv := c.NewEnv(t, k, "server")
	cliA := c.NewEnv(t, k, "clientA")
	cliB := c.NewEnv(t, k, "clientB")
	obj, ctr := c.Export(t, srv)

	viaA, err := Transfer(obj, cliA, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Add(viaA, 1); err != nil {
		t.Fatal(err)
	}
	viaB, err := Transfer(viaA, cliB, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := Add(viaB, 1); err != nil || v != ctr.Value() {
		t.Fatalf("after onward transfer: %d, %v (server %d)", v, err, ctr.Value())
	}
}

func (c Conformance) testCompatibleUnmarshal(t *testing.T) {
	// CounterMT's default subcontract is singleton; whatever subcontract
	// actually marshalled the object must be rediscovered by the peek
	// protocol (§6.1) and preserved.
	_, cli, obj, _ := c.world(t)
	want := obj.SC.ID()
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if remote.SC.ID() != want {
		t.Fatalf("unmarshalled with subcontract %d, want %d", remote.SC.ID(), want)
	}
}

// testExpiredDeadline: a call whose deadline has already passed must fail
// fast with core.ErrDeadlineExceeded — before reaching the server
// application — whatever policy the subcontract implements (§5: the
// invocation context is framework contract, not subcontract policy).
func (c Conformance) testExpiredDeadline(t *testing.T) {
	_, cli, obj, ctr := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	before := ctr.Calls()
	start := time.Now()
	_, err = Get(remote, core.WithDeadline(time.Now().Add(-time.Second)))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("expired-deadline call = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("expired-deadline call took %v, want fast failure", elapsed)
	}
	if ctr.Calls() != before {
		t.Fatal("expired-deadline call reached the server application")
	}
	if core.Retryable(err) {
		t.Fatal("deadline ending classified as retryable")
	}
	// The object survives the context ending: a later healthy call works.
	if _, err := Get(remote); err != nil {
		t.Fatalf("object dead after deadline ending: %v", err)
	}
}

// testCancelled: a call abandoned through its cancellation channel fails
// with core.ErrCancelled without reaching the server.
func (c Conformance) testCancelled(t *testing.T) {
	_, cli, obj, ctr := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	cancelled := make(chan struct{})
	close(cancelled)
	before := ctr.Calls()
	if _, err := Get(remote, core.WithCancel(cancelled)); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("cancelled call = %v, want ErrCancelled", err)
	}
	if ctr.Calls() != before {
		t.Fatal("cancelled call reached the server application")
	}
	if _, err := Get(remote); err != nil {
		t.Fatalf("object dead after cancellation: %v", err)
	}
}

// testDeadlineNoDoorLeak: calls that end through their context must not
// leak door references — the kernel's live door count after a burst of
// expired and cancelled calls equals the count before it (the fixture's
// own doors — naming bindings, cache managers — are part of the baseline).
func (c Conformance) testDeadlineNoDoorLeak(t *testing.T) {
	k := c.kernelFor(t)
	srv := c.NewEnv(t, k, "server")
	cli := c.NewEnv(t, k, "client")
	obj, _ := c.Export(t, srv)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	cancelled := make(chan struct{})
	close(cancelled)
	baseline := k.LiveDoors()
	for i := 0; i < 8; i++ {
		if _, err := Get(remote, core.WithDeadline(time.Now().Add(-time.Second))); !errors.Is(err, core.ErrDeadlineExceeded) {
			t.Fatalf("expired call = %v", err)
		}
		if _, err := Get(remote, core.WithCancel(cancelled)); !errors.Is(err, core.ErrCancelled) {
			t.Fatalf("cancelled call = %v", err)
		}
	}
	if got := k.LiveDoors(); got != baseline {
		t.Fatalf("context-ended calls leaked doors: %d live, baseline %d", got, baseline)
	}
	// The object is still healthy and consumable afterwards.
	if _, err := Get(remote); err != nil {
		t.Fatalf("object dead after context-ended burst: %v", err)
	}
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
}

// testDeadlineAfterSuccess: a generous deadline does not disturb a healthy
// call — the context is pure policy, invisible when unexercised.
func (c Conformance) testDeadlineAfterSuccess(t *testing.T) {
	_, cli, obj, ctr := c.world(t)
	remote, err := Transfer(obj, cli, CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	before := ctr.Value()
	if v, err := Add(remote, 4, core.WithTimeout(time.Minute), core.WithTrace(42)); err != nil || v != before+4 {
		t.Fatalf("Add under generous deadline = %d, %v", v, err)
	}
}

func (c Conformance) testNilReference(t *testing.T) {
	k := c.kernelFor(t)
	cli := c.NewEnv(t, k, "client")
	buf := buffer.New(8)
	var nilObj *core.Object
	if err := nilObj.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.Unmarshal(cli, CounterMT, buf)
	if err != nil || got != nil {
		t.Fatalf("nil reference = %v, %v", got, err)
	}
}
