// Package sctest provides shared fixtures for subcontract tests: a small
// counter service with hand-written stubs in the style idlgen generates,
// environment builders, and an object-transfer helper.
package sctest

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
)

// CounterType is the counter interface's type identifier.
const CounterType core.TypeID = "sctest.counter"

// Counter operation numbers, in method-table order.
const (
	OpGet core.OpNum = iota
	OpAdd
	OpBoom
)

// CounterMT is the counter method table. DefaultSC is singleton (ID 1).
var CounterMT = &core.MTable{
	Type:      CounterType,
	DefaultSC: 1,
	Ops:       []string{"get", "add", "boom"},
}

func init() {
	core.MustRegisterType(CounterType)
	core.MustRegisterMTable(CounterMT)
}

// Counter is the server application object.
type Counter struct {
	mu sync.Mutex
	n  int64
	// Calls counts invocations that reached this server instance.
	calls int
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Calls reports how many invocations reached this instance.
func (c *Counter) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// Add adjusts the count and returns the new value.
func (c *Counter) Add(delta int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
	return c.n
}

// Skeleton returns the server-side dispatch for a counter instance.
func (c *Counter) Skeleton() stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		c.mu.Lock()
		c.calls++
		c.mu.Unlock()
		switch op {
		case OpGet:
			results.WriteInt64(c.Value())
			return nil
		case OpAdd:
			delta, err := args.ReadInt64()
			if err != nil {
				return err
			}
			results.WriteInt64(c.Add(delta))
			return nil
		case OpBoom:
			return errors.New("counter exploded")
		default:
			return stubs.ErrBadOp
		}
	})
}

// Get is the client stub for get(). opts attach an invocation context,
// exactly as generated stubs pass client Opts through.
func Get(obj *core.Object, opts ...core.CallOption) (int64, error) {
	var v int64
	err := stubs.Call(obj, OpGet, nil, func(b *buffer.Buffer) error {
		var err error
		v, err = b.ReadInt64()
		return err
	}, opts...)
	return v, err
}

// Add is the client stub for add(delta).
func Add(obj *core.Object, delta int64, opts ...core.CallOption) (int64, error) {
	var v int64
	err := stubs.Call(obj, OpAdd,
		func(b *buffer.Buffer) error { b.WriteInt64(delta); return nil },
		func(b *buffer.Buffer) error {
			var err error
			v, err = b.ReadInt64()
			return err
		}, opts...)
	return v, err
}

// Boom is the client stub for boom(), which always raises a remote
// exception.
func Boom(obj *core.Object) error {
	return stubs.Call(obj, OpBoom, nil, nil)
}

// NewEnv creates a domain on k and an environment with the given
// subcontract libraries linked in.
func NewEnv(k *kernel.Kernel, name string, libs ...func(*core.Registry) error) (*core.Env, error) {
	env := core.NewEnv(k.NewDomain(name))
	for _, lib := range libs {
		if err := lib(env.Registry); err != nil {
			return nil, fmt.Errorf("sctest: linking library into %s: %w", name, err)
		}
	}
	return env, nil
}

// Transfer marshals obj (consuming it) and unmarshals it in dst, as the
// kernel would during an IPC carrying the object.
func Transfer(obj *core.Object, dst *core.Env, expected *core.MTable) (*core.Object, error) {
	buf := buffer.New(64)
	if err := obj.Marshal(buf); err != nil {
		return nil, err
	}
	return core.Unmarshal(dst, expected, buf)
}

// TransferCopy is Transfer with copy semantics: the original stays usable.
func TransferCopy(obj *core.Object, dst *core.Env, expected *core.MTable) (*core.Object, error) {
	buf := buffer.New(64)
	if err := obj.MarshalCopy(buf); err != nil {
		return nil, err
	}
	return core.Unmarshal(dst, expected, buf)
}
