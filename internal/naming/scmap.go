package naming

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// SCMap is the network service that maps subcontract identifiers to
// library names for dynamic discovery (§6.2: "use a network naming context
// to map the subcontract identifier into a library name, e.g.
// replicon.so"). It is itself a Spring object, conventionally bound under
// "subcontracts" in a network naming context.

// SCMapType is the map interface's type identifier.
const SCMapType core.TypeID = "spring.scmap"

// SCMap operation numbers.
const (
	opLookup core.OpNum = iota
	opPublish
)

// SCMapMT is the map's method table.
var SCMapMT = &core.MTable{
	Type:      SCMapType,
	DefaultSC: singleton.SCID,
	Ops:       []string{"lookup", "publish"},
}

// CodeNoMapping is the remote error code for an unmapped subcontract ID.
const CodeNoMapping uint32 = 1111

func init() {
	core.MustRegisterType(SCMapType, core.ObjectType)
	core.MustRegisterMTable(SCMapMT)
}

// SCMapServer serves the identifier→library mapping.
type SCMapServer struct {
	mu   sync.Mutex
	libs map[core.ID]string
	self *core.Object
	door *kernel.Door
}

// NewSCMapServer creates and exports an empty map service in env.
func NewSCMapServer(env *core.Env) *SCMapServer {
	s := &SCMapServer{libs: make(map[core.ID]string)}
	s.self, s.door = singleton.Export(env, SCMapMT, s.skeleton(), nil)
	return s
}

// Object returns the service's own object (Copy before passing on).
func (s *SCMapServer) Object() *core.Object { return s.self }

// Publish records the library name for a subcontract identifier
// (server-side convenience alongside the remote publish operation).
func (s *SCMapServer) Publish(id core.ID, lib string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.libs[id] = lib
}

func (s *SCMapServer) skeleton() stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		switch op {
		case opLookup:
			id, err := args.ReadUint32()
			if err != nil {
				return err
			}
			s.mu.Lock()
			lib, ok := s.libs[core.ID(id)]
			s.mu.Unlock()
			if !ok {
				return &stubs.RemoteError{Code: CodeNoMapping, Msg: fmt.Sprintf("scmap: no library for subcontract %d", id)}
			}
			results.WriteString(lib)
			return nil
		case opPublish:
			id, err := args.ReadUint32()
			if err != nil {
				return err
			}
			lib, err := args.ReadString()
			if err != nil {
				return err
			}
			s.Publish(core.ID(id), lib)
			return nil
		default:
			return stubs.ErrBadOp
		}
	})
}

// SCMapClient is the client view of the map service.
type SCMapClient struct {
	Obj *core.Object
}

// Lookup maps a subcontract identifier to its library name.
func (c SCMapClient) Lookup(id core.ID) (string, error) {
	var lib string
	err := stubs.Call(c.Obj, opLookup,
		func(b *buffer.Buffer) error { b.WriteUint32(uint32(id)); return nil },
		func(b *buffer.Buffer) error {
			var err error
			lib, err = b.ReadString()
			return err
		})
	return lib, err
}

// Publish records a mapping remotely.
func (c SCMapClient) Publish(id core.ID, lib string) error {
	return stubs.Call(c.Obj, opPublish,
		func(b *buffer.Buffer) error {
			b.WriteUint32(uint32(id))
			b.WriteString(lib)
			return nil
		}, nil)
}

// LibraryFor implements core.NameService, so an SCMap client plugs
// directly into a domain's Loader.
func (c SCMapClient) LibraryFor(id core.ID) (string, error) {
	return c.Lookup(id)
}

var _ core.NameService = SCMapClient{}
