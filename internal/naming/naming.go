// Package naming implements the Spring naming service: hierarchical
// naming contexts, exported as Spring objects through the subcontract
// machinery itself.
//
// Naming contexts appear throughout the paper's designs: a network naming
// context maps subcontract identifiers to library names for dynamic
// discovery (§6.2, served here by SCMap), the caching subcontract resolves
// its cache-manager name in a machine-local context (§8.2), and the
// reconnectable subcontract re-resolves an object name to reconnect after
// a server crash (§8.3).
//
// A context maps simple names to objects. Compound names use '/' as a
// separator; resolving "a/b" resolves "a" locally and forwards "b" to the
// resulting context object, which may live in another domain or on another
// machine — the forwarding happens through ordinary object invocation.
package naming

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// ContextType is the naming context interface's type identifier.
const ContextType core.TypeID = "spring.naming_context"

// Context operation numbers, in method-table order.
const (
	opResolve core.OpNum = iota
	opBind
	opUnbind
	opList
)

// ContextMT is the naming context method table.
var ContextMT = &core.MTable{
	Type:      ContextType,
	DefaultSC: singleton.SCID,
	Ops:       []string{"resolve", "bind", "unbind", "list"},
}

// Remote error codes raised by naming operations.
const (
	CodeNotBound     uint32 = 1101
	CodeAlreadyBound uint32 = 1102
	CodeNotContext   uint32 = 1103
	CodeBadName      uint32 = 1104
)

func init() {
	core.MustRegisterType(ContextType, core.ObjectType)
	core.MustRegisterMTable(ContextMT)
}

// IsNotBound reports whether err is the not-bound remote exception.
func IsNotBound(err error) bool { return stubs.CodeOf(err) == CodeNotBound }

// Server is a naming context server: the state behind one context object.
type Server struct {
	env *core.Env

	mu      sync.Mutex
	entries map[string]*core.Object
	self    *core.Object
	door    *kernel.Door
}

// NewServer creates a naming context served from env's domain and exports
// it with the singleton subcontract.
func NewServer(env *core.Env) *Server {
	s := &Server{env: env, entries: make(map[string]*core.Object)}
	s.self, s.door = singleton.Export(env, ContextMT, s.skeleton(), nil)
	return s
}

// Object returns the server's own context object. Callers who pass it
// elsewhere should Copy it first (marshal consumes).
func (s *Server) Object() *core.Object { return s.self }

// Handle returns a fresh client Context on the server, for use within the
// server's own domain.
func (s *Server) Handle() (Context, error) {
	obj, err := s.self.Copy()
	if err != nil {
		return Context{}, err
	}
	return Context{Obj: obj}, nil
}

// Revoke revokes the context's door (§5.2.3).
func (s *Server) Revoke() { s.door.Revoke() }

// split separates the first component of a compound name.
func split(name string) (first, rest string, err error) {
	name = strings.TrimPrefix(name, "/")
	if name == "" {
		return "", "", &stubs.RemoteError{Code: CodeBadName, Msg: "naming: empty name"}
	}
	if strings.Contains(name, "//") || strings.HasSuffix(name, "/") {
		return "", "", &stubs.RemoteError{Code: CodeBadName, Msg: fmt.Sprintf("naming: malformed name %q", name)}
	}
	if i := strings.IndexByte(name, '/'); i >= 0 {
		first, rest = name[:i], name[i+1:]
		if first == "" || rest == "" {
			return "", "", &stubs.RemoteError{Code: CodeBadName, Msg: fmt.Sprintf("naming: malformed name %q", name)}
		}
		return first, rest, nil
	}
	return name, "", nil
}

func (s *Server) skeleton() stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		switch op {
		case opResolve:
			name, err := args.ReadString()
			if err != nil {
				return err
			}
			return s.resolve(name, results)
		case opBind:
			name, err := args.ReadString()
			if err != nil {
				return err
			}
			rebind, err := args.ReadBool()
			if err != nil {
				return err
			}
			obj, err := core.Unmarshal(s.env, core.GenericMT, args)
			if err != nil {
				return err
			}
			return s.bind(name, obj, rebind)
		case opUnbind:
			name, err := args.ReadString()
			if err != nil {
				return err
			}
			return s.unbind(name)
		case opList:
			s.mu.Lock()
			names := make([]string, 0, len(s.entries))
			for n := range s.entries {
				names = append(names, n)
			}
			s.mu.Unlock()
			sort.Strings(names)
			results.WriteUvarint(uint64(len(names)))
			for _, n := range names {
				results.WriteString(n)
			}
			return nil
		default:
			return stubs.ErrBadOp
		}
	})
}

// resolve looks up a possibly compound name and marshals a copy of the
// resolved object into results.
func (s *Server) resolve(name string, results *buffer.Buffer) error {
	first, rest, err := split(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	entry, ok := s.entries[first]
	s.mu.Unlock()
	if !ok {
		return &stubs.RemoteError{Code: CodeNotBound, Msg: fmt.Sprintf("naming: not bound: %q", first)}
	}
	if rest == "" {
		return entry.MarshalCopy(results)
	}
	if !entry.Is(ContextType) {
		return &stubs.RemoteError{Code: CodeNotContext, Msg: fmt.Sprintf("naming: %q is not a context", first)}
	}
	// Forward the remainder through ordinary object invocation; the
	// subcontract carries the call wherever the subcontext lives.
	sub := Context{Obj: entry}
	child, err := sub.Resolve(rest, core.GenericMT)
	if err != nil {
		return err
	}
	return child.Marshal(results)
}

// bind installs obj under a simple name, or forwards a compound bind to
// the owning subcontext.
func (s *Server) bind(name string, obj *core.Object, rebind bool) error {
	first, rest, err := split(name)
	if err != nil {
		consumeQuietly(obj)
		return err
	}
	if rest != "" {
		s.mu.Lock()
		entry, ok := s.entries[first]
		s.mu.Unlock()
		if !ok {
			consumeQuietly(obj)
			return &stubs.RemoteError{Code: CodeNotBound, Msg: fmt.Sprintf("naming: not bound: %q", first)}
		}
		if !entry.Is(ContextType) {
			consumeQuietly(obj)
			return &stubs.RemoteError{Code: CodeNotContext, Msg: fmt.Sprintf("naming: %q is not a context", first)}
		}
		return Context{Obj: entry}.bindObject(rest, obj, rebind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[first]; ok {
		if !rebind {
			consumeQuietly(obj)
			return &stubs.RemoteError{Code: CodeAlreadyBound, Msg: fmt.Sprintf("naming: already bound: %q", first)}
		}
		consumeQuietly(old)
	}
	s.entries[first] = obj
	return nil
}

func (s *Server) unbind(name string) error {
	first, rest, err := split(name)
	if err != nil {
		return err
	}
	if rest != "" {
		s.mu.Lock()
		entry, ok := s.entries[first]
		s.mu.Unlock()
		if !ok {
			return &stubs.RemoteError{Code: CodeNotBound, Msg: fmt.Sprintf("naming: not bound: %q", first)}
		}
		if !entry.Is(ContextType) {
			return &stubs.RemoteError{Code: CodeNotContext, Msg: fmt.Sprintf("naming: %q is not a context", first)}
		}
		return Context{Obj: entry}.Unbind(rest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.entries[first]
	if !ok {
		return &stubs.RemoteError{Code: CodeNotBound, Msg: fmt.Sprintf("naming: not bound: %q", first)}
	}
	delete(s.entries, first)
	consumeQuietly(entry)
	return nil
}

// consumeQuietly releases an object whose disposal outcome cannot be
// reported (error paths and rebind displacement).
func consumeQuietly(obj *core.Object) {
	if obj != nil {
		_ = obj.Consume()
	}
}

// Context is the client view of a naming context: generated-style stubs
// over a context object.
type Context struct {
	Obj *core.Object
}

// Resolve maps name to an object, unmarshalled against the expected method
// table (use core.GenericMT when the type is unknown).
func (c Context) Resolve(name string, expected *core.MTable) (*core.Object, error) {
	var out *core.Object
	err := stubs.Call(c.Obj, opResolve,
		func(b *buffer.Buffer) error { b.WriteString(name); return nil },
		func(b *buffer.Buffer) error {
			var err error
			out, err = core.Unmarshal(c.Obj.Env, expected, b)
			return err
		})
	return out, err
}

// Bind binds obj under name, transferring the object into the context
// (obj is consumed). With rebind, an existing binding is replaced.
func (c Context) Bind(name string, obj *core.Object, rebind bool) error {
	return c.bindObject(name, obj, rebind)
}

// BindCopy binds a copy of obj under name; the caller's object stays
// usable (the IDL copy parameter mode, §5.1.5).
func (c Context) BindCopy(name string, obj *core.Object, rebind bool) error {
	return stubs.Call(c.Obj, opBind,
		func(b *buffer.Buffer) error {
			b.WriteString(name)
			b.WriteBool(rebind)
			return obj.MarshalCopy(b)
		}, nil)
}

func (c Context) bindObject(name string, obj *core.Object, rebind bool) error {
	return stubs.Call(c.Obj, opBind,
		func(b *buffer.Buffer) error {
			b.WriteString(name)
			b.WriteBool(rebind)
			return obj.Marshal(b)
		}, nil)
}

// Unbind removes the binding for name.
func (c Context) Unbind(name string) error {
	return stubs.Call(c.Obj, opUnbind,
		func(b *buffer.Buffer) error { b.WriteString(name); return nil }, nil)
}

// List returns the names bound in the context, sorted.
func (c Context) List() ([]string, error) {
	var names []string
	err := stubs.Call(c.Obj, opList, nil, func(b *buffer.Buffer) error {
		n, err := b.ReadUvarint()
		if err != nil {
			return err
		}
		names = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			s, err := b.ReadString()
			if err != nil {
				return err
			}
			names = append(names, s)
		}
		return nil
	})
	return names, err
}
