package naming

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

func setup(t *testing.T) (*kernel.Kernel, *core.Env, *core.Env) {
	t.Helper()
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "nameserver", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	return k, srv, cli
}

// clientContext exports the server's context into the client domain.
func clientContext(t *testing.T, s *Server, cli *core.Env) Context {
	t.Helper()
	cp, err := s.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := sctest.Transfer(cp, cli, ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	return Context{Obj: obj}
}

func TestBindResolve(t *testing.T) {
	k, srv, cli := setup(t)
	_ = k
	s := NewServer(srv)
	ctx := clientContext(t, s, cli)

	ctrEnv, err := sctest.NewEnv(k, "counter-server", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	ctr := &sctest.Counter{}
	obj, _ := singleton.Export(ctrEnv, sctest.CounterMT, ctr.Skeleton(), nil)

	if err := ctx.Bind("counter", obj, false); err != nil {
		t.Fatal(err)
	}
	if !obj.Consumed() {
		t.Fatal("Bind should consume the bound object")
	}

	got, err := ctx.Resolve("counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Add(got, 3); err != nil || v != 3 {
		t.Fatalf("resolved object Add = %d, %v", v, err)
	}
	// Resolving again yields another working object (the context retains
	// the binding, handing out copies).
	got2, err := ctx.Resolve("counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Get(got2); err != nil || v != 3 {
		t.Fatalf("second resolve sees %d, %v", v, err)
	}
}

func TestResolveNotBound(t *testing.T) {
	_, srv, cli := setup(t)
	s := NewServer(srv)
	ctx := clientContext(t, s, cli)
	_, err := ctx.Resolve("ghost", core.GenericMT)
	if !IsNotBound(err) {
		t.Fatalf("Resolve(ghost) = %v, want not-bound", err)
	}
}

func TestBindDuplicateAndRebind(t *testing.T) {
	k, srv, cli := setup(t)
	s := NewServer(srv)
	ctx := clientContext(t, s, cli)

	mk := func() *core.Object {
		env, err := sctest.NewEnv(k, "x", singleton.Register)
		if err != nil {
			t.Fatal(err)
		}
		obj, _ := singleton.Export(env, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
		return obj
	}
	if err := ctx.Bind("a", mk(), false); err != nil {
		t.Fatal(err)
	}
	err := ctx.Bind("a", mk(), false)
	if stubs.CodeOf(err) != CodeAlreadyBound {
		t.Fatalf("duplicate bind = %v, want already-bound", err)
	}
	if err := ctx.Bind("a", mk(), true); err != nil {
		t.Fatalf("rebind = %v", err)
	}
}

func TestUnbind(t *testing.T) {
	k, srv, cli := setup(t)
	s := NewServer(srv)
	ctx := clientContext(t, s, cli)
	env, err := sctest.NewEnv(k, "x", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := singleton.Export(env, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
	if err := ctx.Bind("a", obj, false); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Unbind("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Resolve("a", core.GenericMT); !IsNotBound(err) {
		t.Fatalf("resolve after unbind = %v", err)
	}
	if err := ctx.Unbind("a"); !IsNotBound(err) {
		t.Fatalf("double unbind = %v", err)
	}
}

func TestList(t *testing.T) {
	k, srv, cli := setup(t)
	s := NewServer(srv)
	ctx := clientContext(t, s, cli)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		env, err := sctest.NewEnv(k, "x", singleton.Register)
		if err != nil {
			t.Fatal(err)
		}
		obj, _ := singleton.Export(env, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
		if err := ctx.Bind(n, obj, false); err != nil {
			t.Fatal(err)
		}
	}
	names, err := ctx.List()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "mid", "zeta"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("List = %v, want %v", names, want)
	}
}

func TestCompoundNames(t *testing.T) {
	k, srv, cli := setup(t)
	root := NewServer(srv)
	ctx := clientContext(t, root, cli)

	// A subcontext served by a different domain.
	subEnv, err := sctest.NewEnv(k, "subserver", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	sub := NewServer(subEnv)
	subObj, err := sub.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Bind("services", subObj, false); err != nil {
		t.Fatal(err)
	}

	ctrEnv, err := sctest.NewEnv(k, "ctr", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := singleton.Export(ctrEnv, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
	if err := ctx.Bind("services/counter", obj, false); err != nil {
		t.Fatal(err)
	}

	got, err := ctx.Resolve("services/counter", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Add(got, 2); err != nil || v != 2 {
		t.Fatalf("compound resolve Add = %d, %v", v, err)
	}

	if err := ctx.Unbind("services/counter"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Resolve("services/counter", core.GenericMT); !IsNotBound(err) {
		t.Fatalf("resolve after compound unbind = %v", err)
	}
}

func TestCompoundThroughNonContext(t *testing.T) {
	k, srv, cli := setup(t)
	s := NewServer(srv)
	ctx := clientContext(t, s, cli)
	env, err := sctest.NewEnv(k, "x", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := singleton.Export(env, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
	if err := ctx.Bind("leaf", obj, false); err != nil {
		t.Fatal(err)
	}
	_, err = ctx.Resolve("leaf/deeper", core.GenericMT)
	if stubs.CodeOf(err) != CodeNotContext {
		t.Fatalf("resolve through leaf = %v, want not-context", err)
	}
}

func TestBadNames(t *testing.T) {
	_, srv, cli := setup(t)
	s := NewServer(srv)
	ctx := clientContext(t, s, cli)
	for _, bad := range []string{"", "/", "a//b"} {
		if _, err := ctx.Resolve(bad, core.GenericMT); stubs.CodeOf(err) != CodeBadName {
			t.Errorf("Resolve(%q) = %v, want bad-name", bad, err)
		}
	}
}

func TestBindCopyRetainsOriginal(t *testing.T) {
	k, srv, cli := setup(t)
	s := NewServer(srv)
	ctx := clientContext(t, s, cli)
	env, err := sctest.NewEnv(k, "x", singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := singleton.Export(env, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
	if err := ctx.BindCopy("c", obj, false); err != nil {
		t.Fatal(err)
	}
	if obj.Consumed() {
		t.Fatal("BindCopy consumed the original")
	}
	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSCMap(t *testing.T) {
	_, srv, cli := setup(t)
	m := NewSCMapServer(srv)
	m.Publish(4, "replicon.so")

	cp, err := m.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := sctest.Transfer(cp, cli, SCMapMT)
	if err != nil {
		t.Fatal(err)
	}
	c := SCMapClient{Obj: obj}

	lib, err := c.Lookup(4)
	if err != nil || lib != "replicon.so" {
		t.Fatalf("Lookup = %q, %v", lib, err)
	}
	if _, err := c.Lookup(99); stubs.CodeOf(err) != CodeNoMapping {
		t.Fatalf("Lookup(99) = %v, want no-mapping", err)
	}
	if err := c.Publish(7, "shm.so"); err != nil {
		t.Fatal(err)
	}
	if lib, err := c.Lookup(7); err != nil || lib != "shm.so" {
		t.Fatalf("Lookup(7) = %q, %v", lib, err)
	}

	// Plugs into the loader as a core.NameService.
	var ns core.NameService = c
	if lib, err := ns.LibraryFor(4); err != nil || lib != "replicon.so" {
		t.Fatalf("LibraryFor = %q, %v", lib, err)
	}
}

func TestServerRevoke(t *testing.T) {
	_, srv, cli := setup(t)
	s := NewServer(srv)
	ctx := clientContext(t, s, cli)
	s.Revoke()
	if _, err := ctx.Resolve("x", core.GenericMT); err == nil {
		t.Fatal("resolve succeeded after revoke")
	}
}

func TestConcurrentBindResolve(t *testing.T) {
	k, srv, cli := setup(t)
	s := NewServer(srv)
	ctx := clientContext(t, s, cli)

	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			for i := 0; i < 20; i++ {
				env, err := sctest.NewEnv(k, "x", singleton.Register)
				if err != nil {
					done <- err
					return
				}
				obj, _ := singleton.Export(env, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
				name := string(rune('a'+w)) + "-svc"
				if err := ctx.Bind(name, obj, true); err != nil {
					done <- err
					return
				}
				got, err := ctx.Resolve(name, sctest.CounterMT)
				if err != nil {
					done <- err
					return
				}
				if _, err := sctest.Get(got); err != nil {
					done <- err
					return
				}
				if _, err := ctx.List(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHandle(t *testing.T) {
	_, srv, _ := setup(t)
	s := NewServer(srv)
	h, err := s.Handle()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.List(); err != nil {
		t.Fatal(err)
	}
}
