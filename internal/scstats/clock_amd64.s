#include "textflag.h"

// func clockNow() int64
TEXT ·clockNow(SB), NOSPLIT, $0-8
	RDTSC
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET
