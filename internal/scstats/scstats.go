// Package scstats is the per-subcontract metrics registry: every
// subcontract's client-side ops vector reports its calls, failures and
// recovery actions here, and operators read the aggregate back as text
// (cmd/scbench -scstats, cmd/springfsd -scstats).
//
// The design is dictated by the minimal-call path budget (≤30 ns over the
// bare singleton call, see bench E14):
//
//   - A Stats is a flat struct of atomic counters. Recording a call is one
//     atomic add plus, for a sampled subset, two time.Now reads and a
//     histogram-bucket add. No locks, no maps, no interface dispatch on the
//     hot path.
//   - Subcontracts intern their Stats once (For in a package var or an ops
//     constructor) rather than looking the name up per call; For takes the
//     registry lock only on first use of a name.
//   - Latency is sampled 1-in-sampleEvery calls, using the call counter
//     itself as the sampling clock — deterministic, allocation-free, and
//     the first call of a run is always sampled so short test runs still
//     produce nonzero latency data.
//
// Counters deliberately mirror the failure taxonomy in core/errors.go:
// Errors counts all failed invokes, with DeadlineExceeded and Cancelled
// broken out because they end retry loops, and Retries/Failovers/
// Reconnects counting the recovery actions the retry-safe class permits.
package scstats

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// sampleEvery is the latency sampling period: call n has its latency
// measured when n % sampleEvery == 0. The counter is incremented before
// the check, so the first call (n=1 → pre-increment 0) is sampled.
const sampleEvery = 8

// nBuckets is the number of power-of-two latency buckets. Bucket i holds
// samples with latency in [2^i, 2^(i+1)) nanoseconds; the last bucket is
// unbounded. 2^31 ns ≈ 2.1 s, so the range covers sub-microsecond door
// calls through multi-second network timeouts.
const nBuckets = 32

// Stats is one subcontract's counter block. All fields are manipulated
// atomically; a Stats must not be copied after first use.
type Stats struct {
	name string

	// Calls counts invocations started (Invoke entered), Errors those
	// that returned non-nil.
	Calls  atomic.Uint64
	Errors atomic.Uint64

	// DeadlineExceeded and Cancelled break out the context endings from
	// Errors: budget spent vs. caller abandoned.
	DeadlineExceeded atomic.Uint64
	Cancelled        atomic.Uint64

	// Recovery actions taken on retry-safe failures: Retries counts
	// re-issued calls of any kind, Failovers replica switches (replicon),
	// Reconnects re-resolutions of a broken binding (reconnectable).
	Retries    atomic.Uint64
	Failovers  atomic.Uint64
	Reconnects atomic.Uint64

	// Hits and Misses are for caching subcontracts: calls satisfied
	// locally vs. forwarded to the backing object. Coalesced counts
	// misses that piggybacked on another caller's in-flight miss for the
	// same key instead of reaching the backing object themselves (the
	// cache manager's singleflight).
	Hits      atomic.Uint64
	Misses    atomic.Uint64
	Coalesced atomic.Uint64

	// Latency histogram over sampled calls: samples[i] counts sampled
	// calls whose wall time fell in bucket i, latencySum/latencyCount the
	// total over all samples (for the mean).
	samples      [nBuckets]atomic.Uint64
	latencySum   atomic.Uint64 // nanoseconds
	latencyCount atomic.Uint64
}

// Name returns the subcontract name this block was interned under.
func (s *Stats) Name() string { return s.name }

// Begin records the start of an invocation and returns the value to pass
// to End. For unsampled calls it does one atomic add and returns 0; for
// sampled calls it also reads the clock.
func (s *Stats) Begin() (start int64) {
	if s == nil {
		return 0
	}
	n := s.Calls.Add(1)
	if (n-1)%sampleEvery == 0 {
		return time.Now().UnixNano()
	}
	return 0
}

// End records the completion of an invocation begun at start (the Begin
// return value) with outcome err. It classifies the error and, when the
// call was sampled (start != 0), records its latency.
func (s *Stats) End(start int64, err error) {
	if s == nil {
		return
	}
	if start != 0 {
		s.RecordLatency(time.Duration(time.Now().UnixNano() - start))
	}
	if err != nil {
		s.Error(err)
	}
}

// FailFast records an invocation rejected before it reached the
// subcontract's invoke path — an already-ended context caught at the stub
// layer. The attempt counts as a call and the ending is classified, but no
// latency is sampled: the rejection's cost says nothing about the
// subcontract's dispatch path.
func (s *Stats) FailFast(err error) {
	if s == nil {
		return
	}
	s.Calls.Add(1)
	s.Error(err)
}

// Error classifies and counts a failed invocation without touching the
// latency histogram. End calls it; subcontracts with bespoke accounting
// may call it directly.
func (s *Stats) Error(err error) {
	if s == nil || err == nil {
		return
	}
	s.Errors.Add(1)
	switch classify(err) {
	case endedDeadline:
		s.DeadlineExceeded.Add(1)
	case endedCancelled:
		s.Cancelled.Add(1)
	}
}

// RecordLatency adds one latency sample to the histogram.
func (s *Stats) RecordLatency(d time.Duration) {
	if s == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	b := bucketOf(uint64(ns))
	s.samples[b].Add(1)
	s.latencySum.Add(uint64(ns))
	s.latencyCount.Add(1)
}

// bucketOf maps a nanosecond latency to its power-of-two bucket index.
func bucketOf(ns uint64) int {
	if ns == 0 {
		return 0
	}
	b := bits.Len64(ns) - 1
	if b >= nBuckets {
		b = nBuckets - 1
	}
	return b
}

// Snapshot is a consistent-enough copy of one Stats block for exposition
// (individual counters are read atomically; the set is not a transaction).
type Snapshot struct {
	Name             string
	Calls            uint64
	Errors           uint64
	DeadlineExceeded uint64
	Cancelled        uint64
	Retries          uint64
	Failovers        uint64
	Reconnects       uint64
	Hits             uint64
	Misses           uint64
	Coalesced        uint64

	LatencySamples uint64
	LatencyMean    time.Duration
	// LatencySum is the total sampled latency (for exposition formats
	// that want sum+count rather than a precomputed mean).
	LatencySum time.Duration
	// Buckets[i] counts sampled calls in [2^i, 2^(i+1)) ns.
	Buckets [nBuckets]uint64
}

func (s *Stats) snapshot() Snapshot {
	sn := Snapshot{
		Name:             s.name,
		Calls:            s.Calls.Load(),
		Errors:           s.Errors.Load(),
		DeadlineExceeded: s.DeadlineExceeded.Load(),
		Cancelled:        s.Cancelled.Load(),
		Retries:          s.Retries.Load(),
		Failovers:        s.Failovers.Load(),
		Reconnects:       s.Reconnects.Load(),
		Hits:             s.Hits.Load(),
		Misses:           s.Misses.Load(),
		Coalesced:        s.Coalesced.Load(),
		LatencySamples:   s.latencyCount.Load(),
	}
	sn.LatencySum = time.Duration(s.latencySum.Load())
	if sn.LatencySamples > 0 {
		sn.LatencyMean = sn.LatencySum / time.Duration(sn.LatencySamples)
	}
	for i := range s.samples {
		sn.Buckets[i] = s.samples[i].Load()
	}
	return sn
}

// ---------------------------------------------------------------------
// Named gauges.
//
// Alongside the per-subcontract counter blocks, the registry holds named
// gauges for subsystem state that is not a per-call outcome — the network
// door servers' liveness layer reports live connections, live export
// entries, expired leases, reclaimed references, breaker transitions and
// replayed releases through them. Like Stats, a Gauge is interned once
// and cached by its user; updates are single atomic adds.

// Gauge is one named int64 value. Monotonic event counts (leases expired,
// releases replayed) and instantaneous levels (live connections) both use
// it; the name says which it is.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the name the gauge was interned under.
func (g *Gauge) Name() string { return g.name }

// Add moves the gauge by d (negative to decrement a level).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

var gauges sync.Map // string -> *Gauge

// GaugeFor interns and returns the named gauge. Callers cache the
// pointer, as with For.
func GaugeFor(name string) *Gauge {
	if v, ok := gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := gauges.LoadOrStore(name, &Gauge{name: name})
	return v.(*Gauge)
}

// GaugeSnapshot is one gauge's name and value at read time.
type GaugeSnapshot struct {
	Name  string
	Value int64
}

// GaugeSnapshots returns every interned gauge with a nonzero value,
// sorted by name.
func GaugeSnapshots() []GaugeSnapshot {
	var out []GaugeSnapshot
	gauges.Range(func(_, v any) bool {
		g := v.(*Gauge)
		if val := g.v.Load(); val != 0 {
			out = append(out, GaugeSnapshot{Name: g.name, Value: val})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllGauges returns every interned gauge, zero-valued ones included,
// sorted by name. Exposition formats with a fixed schema (the telemetry
// plane's /metrics) use it so a gauge doesn't vanish from the scrape when
// its level returns to zero.
func AllGauges() []GaugeSnapshot {
	var out []GaugeSnapshot
	gauges.Range(func(_, v any) bool {
		g := v.(*Gauge)
		out = append(out, GaugeSnapshot{Name: g.name, Value: g.v.Load()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ---------------------------------------------------------------------

// The process-wide registry. A sync.Map keeps For lock-free after a name's
// first interning.
var registry sync.Map // string -> *Stats

// For interns and returns the Stats block for the named subcontract.
// Callers cache the pointer (package var or ops-vector field) so the hot
// path never consults the registry.
func For(name string) *Stats {
	if v, ok := registry.Load(name); ok {
		return v.(*Stats)
	}
	v, _ := registry.LoadOrStore(name, &Stats{name: name})
	return v.(*Stats)
}

// Snapshots returns a snapshot of every interned subcontract, sorted by
// name, omitting blocks that never saw a call or sample.
func Snapshots() []Snapshot {
	var out []Snapshot
	registry.Range(func(_, v any) bool {
		sn := v.(*Stats).snapshot()
		if sn.Calls != 0 || sn.LatencySamples != 0 {
			out = append(out, sn)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllSnapshots returns a snapshot of every interned subcontract, sorted
// by name, including blocks that have seen no calls — the telemetry
// plane's /metrics uses it so every instrumented subcontract's series
// exist from process start rather than popping into existence at first
// call.
func AllSnapshots() []Snapshot {
	var out []Snapshot
	registry.Range(func(_, v any) bool {
		out = append(out, v.(*Stats).snapshot())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset zeroes every interned counter block. Intended for tests and for
// benchmark harnesses that report per-phase deltas; the blocks themselves
// stay interned so cached pointers remain valid.
func Reset() {
	registry.Range(func(_, v any) bool {
		s := v.(*Stats)
		s.Calls.Store(0)
		s.Errors.Store(0)
		s.DeadlineExceeded.Store(0)
		s.Cancelled.Store(0)
		s.Retries.Store(0)
		s.Failovers.Store(0)
		s.Reconnects.Store(0)
		s.Hits.Store(0)
		s.Misses.Store(0)
		s.Coalesced.Store(0)
		for i := range s.samples {
			s.samples[i].Store(0)
		}
		s.latencySum.Store(0)
		s.latencyCount.Store(0)
		return true
	})
	gauges.Range(func(_, v any) bool {
		v.(*Gauge).v.Store(0)
		return true
	})
}

// WriteText writes the registry in a aligned human-readable table, one
// subcontract per stanza: the counter line, then a sparse histogram line
// listing only occupied buckets.
func WriteText(w io.Writer) error {
	sns := Snapshots()
	gsns := GaugeSnapshots()
	if len(sns) == 0 && len(gsns) == 0 {
		_, err := fmt.Fprintln(w, "scstats: no subcontract calls recorded")
		return err
	}
	for _, sn := range sns {
		if _, err := fmt.Fprintf(w,
			"%-14s calls=%d errors=%d deadline=%d cancelled=%d retries=%d failovers=%d reconnects=%d hits=%d misses=%d coalesced=%d\n",
			sn.Name, sn.Calls, sn.Errors, sn.DeadlineExceeded, sn.Cancelled,
			sn.Retries, sn.Failovers, sn.Reconnects, sn.Hits, sn.Misses, sn.Coalesced); err != nil {
			return err
		}
		if sn.LatencySamples == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-14s latency mean=%v samples=%d", "", sn.LatencyMean, sn.LatencySamples); err != nil {
			return err
		}
		for i, c := range sn.Buckets {
			if c == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, " [%v,%v)=%d", time.Duration(uint64(1)<<i), time.Duration(uint64(2)<<i), c); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, g := range gsns {
		if _, err := fmt.Fprintf(w, "gauge %-24s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	return nil
}

// Text returns WriteText's output as a string.
func Text() string {
	var b textBuilder
	_ = WriteText(&b)
	return string(b)
}

type textBuilder []byte

func (b *textBuilder) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
