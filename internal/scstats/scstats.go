// Package scstats is the per-subcontract metrics registry: every
// subcontract's client-side ops vector reports its calls, failures and
// recovery actions here, and operators read the aggregate back as text
// (cmd/scbench -scstats, cmd/springfsd -scstats) or through the telemetry
// plane (/metrics, /statz).
//
// The design is dictated by the minimal-call path budget (≤30 ns over the
// bare singleton call, see bench E14 and the E22 record-cost sweep):
//
//   - A Stats is a flat struct of atomic counters plus always-on HDR
//     latency histograms (hist.go). Recording a call is one atomic add for
//     the call counter, two reads of the cheap tick clock (clock.go), and
//     one striped atomic add into a log bucket. No locks, no maps, no
//     allocation, no interface dispatch on the hot path.
//   - Every call is measured — the 1-in-8 sampler of the v1 plane is gone.
//     Percentiles (p50/p90/p99/p999) come from the bucket counts via the
//     mergeable HistSnapshot API; sampling survives only as the
//     RecordSampled8 mode, kept so E22 can price always-on against it.
//   - Latency is keyed by subcontract × op: EndCall records into a per-op
//     histogram (ops above maxOps share an overflow slot) and snapshots
//     merge the per-op histograms into the subcontract aggregate.
//   - Subcontracts intern their Stats once (For in a package var or an ops
//     constructor) rather than looking the name up per call; For takes the
//     registry lock only on first use of a name.
//
// Counters deliberately mirror the failure taxonomy in core/errors.go:
// Errors counts all failed invokes, with DeadlineExceeded and Cancelled
// broken out because they end retry loops, and Retries/Failovers/
// Reconnects counting the recovery actions the retry-safe class permits.
package scstats

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// sampleEvery is the RecordSampled8 sampling period (the v1 plane's
// behavior, kept for the E22 comparison): call n has its latency measured
// when n % sampleEvery == 0, counter incremented before the check so the
// first call of a run is sampled.
const sampleEvery = 8

// RecordMode selects what Begin/EndCall do with the clock and the
// histogram. The default, RecordAlways, is the production plane; the
// other modes exist so the E22 sweep can decompose the record cost.
type RecordMode int32

const (
	// RecordAlways measures and records every call (the default).
	RecordAlways RecordMode = iota
	// RecordSampled8 measures 1 in 8 calls — the v1 plane's behavior.
	RecordSampled8
	// RecordTimed reads the clock on every call but skips the histogram
	// write: the E22 guard baselines against it so the guarded delta is
	// the record cost proper, independent of what the host's clock costs.
	RecordTimed
	// RecordOff never reads the clock; only counters advance.
	RecordOff
)

var recMode atomic.Int32 // holds a RecordMode; zero value = RecordAlways

// SetRecordMode switches the process-wide record mode (benchmarks only).
func SetRecordMode(m RecordMode) { recMode.Store(int32(m)) }

// Mode returns the current record mode.
func Mode() RecordMode { return RecordMode(recMode.Load()) }

// OpNone keys EndCall recordings that carry no op number; they land in
// the subcontract's unkeyed histogram rather than a per-op slot.
const OpNone = ^uint32(0)

// maxOps bounds the per-op histogram table; ops numbered maxOps or above
// share one overflow slot so a hostile op number can't grow memory.
const maxOps = 64

// Stats is one subcontract's counter block. All fields are manipulated
// atomically; a Stats must not be copied after first use.
type Stats struct {
	name string

	// Calls counts invocations started (Invoke entered), Errors those
	// that returned non-nil.
	Calls  atomic.Uint64
	Errors atomic.Uint64

	// DeadlineExceeded and Cancelled break out the context endings from
	// Errors: budget spent vs. caller abandoned.
	DeadlineExceeded atomic.Uint64
	Cancelled        atomic.Uint64

	// Recovery actions taken on retry-safe failures: Retries counts
	// re-issued calls of any kind, Failovers replica switches (replicon),
	// Reconnects re-resolutions of a broken binding (reconnectable).
	Retries    atomic.Uint64
	Failovers  atomic.Uint64
	Reconnects atomic.Uint64

	// Hits and Misses are for caching subcontracts: calls satisfied
	// locally vs. forwarded to the backing object. Coalesced counts
	// misses that piggybacked on another caller's in-flight miss for the
	// same key instead of reaching the backing object themselves (the
	// cache manager's singleflight).
	Hits      atomic.Uint64
	Misses    atomic.Uint64
	Coalesced atomic.Uint64

	// lat holds durations recorded without an op number (End,
	// RecordLatency); ops is the per-op histogram table, grown on first
	// use of an op and published atomically so readers stay lock-free.
	lat  *Hist
	ops  atomic.Pointer[[]*Hist]
	opMu sync.Mutex
}

func newStats(name string) *Stats {
	return &Stats{name: name, lat: newHist()}
}

// Name returns the subcontract name this block was interned under.
func (s *Stats) Name() string { return s.name }

// Begin records the start of an invocation and returns the value to pass
// to End/EndCall: a tick timestamp when the record mode wants this call
// measured, else 0.
func (s *Stats) Begin() (start int64) {
	if s == nil {
		return 0
	}
	n := s.Calls.Add(1)
	switch RecordMode(recMode.Load()) {
	case RecordAlways, RecordTimed:
		return clockNow()
	case RecordSampled8:
		if (n-1)%sampleEvery == 0 {
			return clockNow()
		}
	}
	return 0
}

// EndCall records the completion of an invocation begun at start (the
// Begin return value) with outcome err, keyed by op (OpNone for unkeyed).
// traceID, when nonzero, becomes the exemplar of whatever latency bucket
// the call lands in — callers pass the call's trace ID for head-sampled
// traces and 0 otherwise (speculative tail-capture traces are usually
// abandoned and would leave dangling exemplars). It returns the measured
// duration in clock ticks, 0 if none was taken; netd reuses it for the
// per-peer histogram so a forwarded call reads the clock only once.
func (s *Stats) EndCall(start int64, op uint32, traceID uint64, err error) int64 {
	if s == nil {
		return 0
	}
	var d int64
	if start != 0 {
		d = clockNow() - start
		if RecordMode(recMode.Load()) != RecordTimed {
			s.histOf(op).record(d, traceID)
		} else {
			d = 0
		}
	}
	if err != nil {
		s.Error(err)
	}
	return d
}

// End records an unkeyed completion (no op number, no exemplar).
func (s *Stats) End(start int64, err error) {
	s.EndCall(start, OpNone, 0, err)
}

// histOf returns the histogram for op, growing the table on first use.
func (s *Stats) histOf(op uint32) *Hist {
	if op == OpNone {
		return s.lat
	}
	if op > maxOps {
		op = maxOps
	}
	if t := s.ops.Load(); t != nil && int(op) < len(*t) && (*t)[op] != nil {
		return (*t)[op]
	}
	return s.growOp(op)
}

func (s *Stats) growOp(op uint32) *Hist {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	var table []*Hist
	if t := s.ops.Load(); t != nil {
		if int(op) < len(*t) && (*t)[op] != nil {
			return (*t)[op]
		}
		table = append(table, *t...)
	}
	for len(table) <= int(op) {
		table = append(table, nil)
	}
	h := newHist()
	table[op] = h
	s.ops.Store(&table)
	return h
}

// FailFast records an invocation rejected before it reached the
// subcontract's invoke path — an already-ended context caught at the stub
// layer. The attempt counts as a call and the ending is classified, but no
// latency is recorded: the rejection's cost says nothing about the
// subcontract's dispatch path.
func (s *Stats) FailFast(err error) {
	if s == nil {
		return
	}
	s.Calls.Add(1)
	s.Error(err)
}

// Error classifies and counts a failed invocation without touching the
// latency histogram. End calls it; subcontracts with bespoke accounting
// may call it directly.
func (s *Stats) Error(err error) {
	if s == nil || err == nil {
		return
	}
	s.Errors.Add(1)
	switch classify(err) {
	case endedDeadline:
		s.DeadlineExceeded.Add(1)
	case endedCancelled:
		s.Cancelled.Add(1)
	}
}

// RecordLatency adds one latency observation to the unkeyed histogram
// (callers that measured the duration themselves).
func (s *Stats) RecordLatency(d time.Duration) {
	if s == nil {
		return
	}
	s.lat.Observe(d, 0)
}

// Snapshot is a consistent-enough copy of one Stats block for exposition
// (individual counters are read atomically; the set is not a transaction).
type Snapshot struct {
	Name             string
	Calls            uint64
	Errors           uint64
	DeadlineExceeded uint64
	Cancelled        uint64
	Retries          uint64
	Failovers        uint64
	Reconnects       uint64
	Hits             uint64
	Misses           uint64
	Coalesced        uint64

	// LatencySamples counts recorded durations (every call, in the
	// default record mode); LatencyMean and LatencySum are estimated
	// from the histogram's bucket midpoints (≤ ~6% bucket width error).
	LatencySamples uint64
	LatencyMean    time.Duration
	LatencySum     time.Duration

	// Lat is the subcontract aggregate histogram (per-op histograms
	// merged with the unkeyed one); Ops the per-op breakdown, sparse.
	Lat HistSnapshot
	Ops []OpSnapshot
}

// OpSnapshot is one op's latency histogram within a subcontract.
type OpSnapshot struct {
	Op uint32
	// Overflow marks the shared slot holding every op ≥ maxOps.
	Overflow bool
	Lat      HistSnapshot
}

func (s *Stats) snapshot() Snapshot {
	sn := Snapshot{
		Name:             s.name,
		Calls:            s.Calls.Load(),
		Errors:           s.Errors.Load(),
		DeadlineExceeded: s.DeadlineExceeded.Load(),
		Cancelled:        s.Cancelled.Load(),
		Retries:          s.Retries.Load(),
		Failovers:        s.Failovers.Load(),
		Reconnects:       s.Reconnects.Load(),
		Hits:             s.Hits.Load(),
		Misses:           s.Misses.Load(),
		Coalesced:        s.Coalesced.Load(),
	}
	lat := s.lat.histSnapshot()
	if t := s.ops.Load(); t != nil {
		for op, h := range *t {
			if h == nil {
				continue
			}
			hs := h.histSnapshot()
			if hs.Count == 0 {
				continue
			}
			sn.Ops = append(sn.Ops, OpSnapshot{Op: uint32(op), Overflow: op == maxOps, Lat: hs})
			lat = lat.Merge(hs)
		}
	}
	sn.Lat = lat
	sn.LatencySamples = lat.Count
	sn.LatencySum = time.Duration(lat.SumNs)
	if lat.Count > 0 {
		sn.LatencyMean = time.Duration(lat.Mean())
	}
	return sn
}

// ---------------------------------------------------------------------
// Named gauges.
//
// Alongside the per-subcontract counter blocks, the registry holds named
// gauges for subsystem state that is not a per-call outcome — the network
// door servers' liveness layer reports live connections, live export
// entries, expired leases, reclaimed references, breaker transitions and
// replayed releases through them. Like Stats, a Gauge is interned once
// and cached by its user; updates are single atomic adds.

// Gauge is one named int64 value. Monotonic event counts (leases expired,
// releases replayed) and instantaneous levels (live connections) both use
// it; the name says which it is, and the telemetry plane's exposition
// keeps a list of the monotonic ones so they surface as Prometheus
// counters rather than gauges.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the name the gauge was interned under.
func (g *Gauge) Name() string { return g.name }

// Add moves the gauge by d (negative to decrement a level).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

var gauges sync.Map // string -> *Gauge

// GaugeFor interns and returns the named gauge. Callers cache the
// pointer, as with For.
func GaugeFor(name string) *Gauge {
	if v, ok := gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := gauges.LoadOrStore(name, &Gauge{name: name})
	return v.(*Gauge)
}

// GaugeSnapshot is one gauge's name and value at read time.
type GaugeSnapshot struct {
	Name  string
	Value int64
}

// GaugeSnapshots returns every interned gauge with a nonzero value,
// sorted by name.
func GaugeSnapshots() []GaugeSnapshot {
	var out []GaugeSnapshot
	gauges.Range(func(_, v any) bool {
		g := v.(*Gauge)
		if val := g.v.Load(); val != 0 {
			out = append(out, GaugeSnapshot{Name: g.name, Value: val})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllGauges returns every interned gauge, zero-valued ones included,
// sorted by name. Exposition formats with a fixed schema (the telemetry
// plane's /metrics) use it so a gauge doesn't vanish from the scrape when
// its level returns to zero.
func AllGauges() []GaugeSnapshot {
	var out []GaugeSnapshot
	gauges.Range(func(_, v any) bool {
		g := v.(*Gauge)
		out = append(out, GaugeSnapshot{Name: g.name, Value: g.v.Load()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ---------------------------------------------------------------------

// The process-wide registry. A sync.Map keeps For lock-free after a name's
// first interning.
var registry sync.Map // string -> *Stats

// For interns and returns the Stats block for the named subcontract.
// Callers cache the pointer (package var or ops-vector field) so the hot
// path never consults the registry.
func For(name string) *Stats {
	if v, ok := registry.Load(name); ok {
		return v.(*Stats)
	}
	v, _ := registry.LoadOrStore(name, newStats(name))
	return v.(*Stats)
}

// Snapshots returns a snapshot of every interned subcontract, sorted by
// name, omitting blocks that never saw a call or sample.
func Snapshots() []Snapshot {
	var out []Snapshot
	registry.Range(func(_, v any) bool {
		sn := v.(*Stats).snapshot()
		if sn.Calls != 0 || sn.LatencySamples != 0 {
			out = append(out, sn)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllSnapshots returns a snapshot of every interned subcontract, sorted
// by name, including blocks that have seen no calls — the telemetry
// plane's /metrics uses it so every instrumented subcontract's series
// exist from process start rather than popping into existence at first
// call.
func AllSnapshots() []Snapshot {
	var out []Snapshot
	registry.Range(func(_, v any) bool {
		out = append(out, v.(*Stats).snapshot())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset zeroes every interned counter block, histogram, gauge and peer.
// Intended for tests and for benchmark harnesses that report per-phase
// deltas; the blocks themselves stay interned so cached pointers remain
// valid.
func Reset() {
	registry.Range(func(_, v any) bool {
		s := v.(*Stats)
		s.Calls.Store(0)
		s.Errors.Store(0)
		s.DeadlineExceeded.Store(0)
		s.Cancelled.Store(0)
		s.Retries.Store(0)
		s.Failovers.Store(0)
		s.Reconnects.Store(0)
		s.Hits.Store(0)
		s.Misses.Store(0)
		s.Coalesced.Store(0)
		s.lat.reset()
		if t := s.ops.Load(); t != nil {
			for _, h := range *t {
				if h != nil {
					h.reset()
				}
			}
		}
		return true
	})
	gauges.Range(func(_, v any) bool {
		v.(*Gauge).v.Store(0)
		return true
	})
	hists.Range(func(_, v any) bool {
		v.(*namedHist).h.reset()
		return true
	})
	peers.Range(func(_, v any) bool {
		p := v.(*PeerStats)
		p.Calls.Store(0)
		p.Errors.Store(0)
		p.lat.reset()
		return true
	})
}

// WriteText writes the registry in an aligned human-readable table, one
// subcontract per stanza: the counter line, then a latency line with the
// mean and the tail percentiles from the always-on histogram.
func WriteText(w io.Writer) error {
	sns := Snapshots()
	gsns := GaugeSnapshots()
	if len(sns) == 0 && len(gsns) == 0 {
		_, err := fmt.Fprintln(w, "scstats: no subcontract calls recorded")
		return err
	}
	for _, sn := range sns {
		if _, err := fmt.Fprintf(w,
			"%-14s calls=%d errors=%d deadline=%d cancelled=%d retries=%d failovers=%d reconnects=%d hits=%d misses=%d coalesced=%d\n",
			sn.Name, sn.Calls, sn.Errors, sn.DeadlineExceeded, sn.Cancelled,
			sn.Retries, sn.Failovers, sn.Reconnects, sn.Hits, sn.Misses, sn.Coalesced); err != nil {
			return err
		}
		if sn.LatencySamples == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-14s latency mean=%v p50=%v p90=%v p99=%v p999=%v samples=%d\n",
			"", sn.LatencyMean,
			time.Duration(sn.Lat.Quantile(0.50)), time.Duration(sn.Lat.Quantile(0.90)),
			time.Duration(sn.Lat.Quantile(0.99)), time.Duration(sn.Lat.Quantile(0.999)),
			sn.LatencySamples); err != nil {
			return err
		}
	}
	for _, g := range gsns {
		if _, err := fmt.Fprintf(w, "gauge %-24s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	return nil
}

// Text returns WriteText's output as a string.
func Text() string {
	var b textBuilder
	_ = WriteText(&b)
	return string(b)
}

type textBuilder []byte

func (b *textBuilder) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
