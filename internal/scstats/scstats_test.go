package scstats

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
)

func TestForInternsOnce(t *testing.T) {
	Reset()
	a := For("interntest")
	b := For("interntest")
	if a != b {
		t.Fatalf("For returned distinct blocks for the same name")
	}
	if a.Name() != "interntest" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestBeginEndAlwaysOn(t *testing.T) {
	Reset()
	s := For("beginend")
	const n = 16
	for i := 0; i < n; i++ {
		start := s.Begin()
		if start == 0 {
			t.Fatalf("call %d: not measured under RecordAlways", i)
		}
		s.End(start, nil)
	}
	sn := s.snapshot()
	if sn.Calls != n {
		t.Fatalf("Calls = %d, want %d", sn.Calls, n)
	}
	if sn.LatencySamples != n {
		t.Fatalf("LatencySamples = %d, want %d (every call recorded)", sn.LatencySamples, n)
	}
	if sn.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", sn.Errors)
	}
}

func TestRecordModeSampled8(t *testing.T) {
	Reset()
	SetRecordMode(RecordSampled8)
	defer SetRecordMode(RecordAlways)
	s := For("sampled8")
	for i := 0; i < 2*sampleEvery; i++ {
		start := s.Begin()
		// Call 0 and call sampleEvery are sampled.
		if (i%sampleEvery == 0) != (start != 0) {
			t.Fatalf("call %d: sampled=%v, want %v", i, start != 0, i%sampleEvery == 0)
		}
		s.End(start, nil)
	}
	sn := s.snapshot()
	if sn.Calls != 2*sampleEvery {
		t.Fatalf("Calls = %d, want %d", sn.Calls, 2*sampleEvery)
	}
	if sn.LatencySamples != 2 {
		t.Fatalf("LatencySamples = %d, want 2", sn.LatencySamples)
	}
}

func TestRecordModeTimedAndOff(t *testing.T) {
	Reset()
	defer SetRecordMode(RecordAlways)

	SetRecordMode(RecordTimed)
	s := For("modetimed")
	start := s.Begin()
	if start == 0 {
		t.Fatal("RecordTimed should read the clock")
	}
	if d := s.EndCall(start, OpNone, 0, nil); d != 0 {
		t.Fatalf("RecordTimed EndCall returned %d, want 0 (nothing recorded)", d)
	}
	if sn := s.snapshot(); sn.LatencySamples != 0 {
		t.Fatalf("RecordTimed recorded %d samples, want 0", sn.LatencySamples)
	}

	SetRecordMode(RecordOff)
	if start := s.Begin(); start != 0 {
		t.Fatal("RecordOff should not read the clock")
	}
	if sn := s.snapshot(); sn.Calls != 2 {
		t.Fatalf("Calls = %d, want 2", sn.Calls)
	}
}

func TestEndCallPerOp(t *testing.T) {
	Reset()
	s := For("perop")
	s.EndCall(s.Begin(), 3, 0, nil)
	s.EndCall(s.Begin(), 3, 0, nil)
	s.EndCall(s.Begin(), 7, 0, nil)
	s.End(s.Begin(), nil) // unkeyed
	// An op past the table bound lands in the shared overflow slot.
	s.EndCall(s.Begin(), maxOps+41, 0, nil)

	sn := s.snapshot()
	if sn.LatencySamples != 5 {
		t.Fatalf("aggregate samples = %d, want 5", sn.LatencySamples)
	}
	got := map[uint32]uint64{}
	overflow := uint64(0)
	for _, op := range sn.Ops {
		if op.Overflow {
			overflow = op.Lat.Count
			continue
		}
		got[op.Op] = op.Lat.Count
	}
	if got[3] != 2 || got[7] != 1 {
		t.Fatalf("per-op counts = %v, want op3=2 op7=1", got)
	}
	if overflow != 1 {
		t.Fatalf("overflow count = %d, want 1", overflow)
	}
}

func TestFirstCallIsMeasured(t *testing.T) {
	Reset()
	s := For("firstcall")
	start := s.Begin()
	if start == 0 {
		t.Fatalf("first call not measured")
	}
	s.End(start, nil)
	if sn := s.snapshot(); sn.LatencySamples != 1 {
		t.Fatalf("LatencySamples = %d, want 1", sn.LatencySamples)
	}
}

func TestErrorClassification(t *testing.T) {
	Reset()
	s := For("classify")
	wrap := func(err error) error { return errors.Join(errors.New("layer"), err) }
	s.End(0, kernel.ErrDeadlineExceeded)
	s.End(0, wrap(kernel.ErrCancelled))
	s.End(0, errors.New("boom"))
	sn := s.snapshot()
	if sn.Errors != 3 || sn.DeadlineExceeded != 1 || sn.Cancelled != 1 {
		t.Fatalf("errors=%d deadline=%d cancelled=%d, want 3/1/1",
			sn.Errors, sn.DeadlineExceeded, sn.Cancelled)
	}
}

func TestTextExposition(t *testing.T) {
	Reset()
	s := For("textsc")
	s.End(s.Begin(), nil)
	s.Hits.Add(3)
	s.RecordLatency(5 * time.Microsecond)
	txt := Text()
	if !strings.Contains(txt, "textsc") {
		t.Fatalf("exposition missing subcontract name:\n%s", txt)
	}
	if !strings.Contains(txt, "calls=1") || !strings.Contains(txt, "hits=3") {
		t.Fatalf("exposition missing counters:\n%s", txt)
	}
	if !strings.Contains(txt, "latency mean=") || !strings.Contains(txt, "p99=") {
		t.Fatalf("exposition missing latency line:\n%s", txt)
	}
}

func TestSnapshotsOmitIdle(t *testing.T) {
	Reset()
	For("idle-block")
	for _, sn := range Snapshots() {
		if sn.Name == "idle-block" {
			t.Fatalf("idle block present in snapshots")
		}
	}
}

func TestNilStatsSafe(t *testing.T) {
	var s *Stats
	s.End(s.Begin(), errors.New("x"))
	s.EndCall(0, 1, 0, nil)
	s.Error(nil)
	s.RecordLatency(time.Second)
}

func TestConcurrentRecording(t *testing.T) {
	Reset()
	s := For("race")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.End(s.Begin(), nil)
			}
		}()
	}
	wg.Wait()
	if got := s.Calls.Load(); got != 8000 {
		t.Fatalf("Calls = %d, want 8000", got)
	}
	if sn := s.snapshot(); sn.LatencySamples != 8000 {
		t.Fatalf("LatencySamples = %d, want 8000", sn.LatencySamples)
	}
}

func TestGauges(t *testing.T) {
	Reset()
	g := GaugeFor("test.live_things")
	if g != GaugeFor("test.live_things") {
		t.Fatal("GaugeFor interned two blocks for one name")
	}
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(7)
	found := false
	for _, sn := range GaugeSnapshots() {
		if sn.Name == "test.live_things" {
			found = true
			if sn.Value != 7 {
				t.Fatalf("snapshot value = %d, want 7", sn.Value)
			}
		}
	}
	if !found {
		t.Fatal("nonzero gauge missing from snapshots")
	}
	if !strings.Contains(Text(), "gauge test.live_things") {
		t.Fatalf("gauge missing from text exposition:\n%s", Text())
	}
	g.Set(0)
	for _, sn := range GaugeSnapshots() {
		if sn.Name == "test.live_things" {
			t.Fatal("zero gauge present in snapshots")
		}
	}
	var nilG *Gauge
	nilG.Add(1)
	nilG.Set(1)
	_ = nilG.Value()
}
