package scstats

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIdxBounds(t *testing.T) {
	// Exact region.
	for v := uint64(0); v < histSub; v++ {
		if got := bucketIdx(v); got != int(v) {
			t.Fatalf("bucketIdx(%d) = %d, want %d", v, got, v)
		}
	}
	// Every value must fall inside its bucket's [lo, hi) range, and
	// bucket indices must be monotone in the value.
	prev := -1
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20, 1<<20 + 1<<16, 1 << 37, 1<<38 - 1, 1 << 38, 1 << 50, math.MaxUint64} {
		i := bucketIdx(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, i)
		}
		if lo, hi := bucketLo(i), bucketHi(i); v < lo || (hi != math.MaxUint64 && v >= hi) {
			t.Fatalf("value %d in bucket %d but bounds [%d,%d)", v, i, lo, hi)
		}
		if i < prev {
			t.Fatalf("bucket index went backwards at value %d", v)
		}
		prev = i
	}
	// Relative bucket width is ≤ 1/histSub in the log region.
	for i := histSub; i < histBuckets-1; i++ {
		lo, hi := bucketLo(i), bucketHi(i)
		if float64(hi-lo)/float64(lo) > 1.0/float64(histSub)+1e-9 {
			t.Fatalf("bucket %d [%d,%d) wider than %g relative", i, lo, hi, 1.0/float64(histSub))
		}
	}
	// Buckets tile the range with no gaps.
	for i := 0; i < histBuckets-1; i++ {
		if bucketHi(i) != bucketLo(i+1) {
			t.Fatalf("gap between bucket %d (hi=%d) and %d (lo=%d)", i, bucketHi(i), i+1, bucketLo(i+1))
		}
	}
}

func TestHistQuantileAccuracy(t *testing.T) {
	h := newHist()
	// A known distribution: 1000 values 1µs, 100 values 10µs, 10 values 1ms.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Microsecond, 0)
	}
	for i := 0; i < 100; i++ {
		h.Observe(10*time.Microsecond, 0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond, 0)
	}
	sn := h.histSnapshot()
	if sn.Count != 1110 {
		t.Fatalf("Count = %d, want 1110", sn.Count)
	}
	check := func(q float64, want time.Duration) {
		got := time.Duration(sn.Quantile(q))
		// The histogram guarantees ~6.25% relative error; allow 10%.
		if got < want*90/100 || got > want*110/100 {
			t.Fatalf("Quantile(%g) = %v, want ≈%v", q, got, want)
		}
	}
	check(0.50, time.Microsecond)
	check(0.90, time.Microsecond)
	check(0.95, 10*time.Microsecond)
	check(0.999, time.Millisecond)
	if m := sn.Mean(); m <= 0 {
		t.Fatalf("Mean = %d, want > 0", m)
	}
}

func TestHistSubAndMerge(t *testing.T) {
	h := newHist()
	h.Observe(time.Microsecond, 0)
	h.Observe(time.Microsecond, 0)
	prev := h.histSnapshot()
	h.Observe(time.Microsecond, 0)
	h.Observe(time.Millisecond, 0)
	cur := h.histSnapshot()

	d := cur.Sub(prev)
	if d.Count != 2 {
		t.Fatalf("delta Count = %d, want 2", d.Count)
	}
	// The delta must contain the new millisecond bucket.
	foundMs := false
	for _, b := range d.Buckets {
		if b.Lo <= int64(time.Millisecond) && int64(time.Millisecond) < b.Hi && b.Count == 1 {
			foundMs = true
		}
	}
	if !foundMs {
		t.Fatalf("delta missing the 1ms observation: %+v", d.Buckets)
	}

	m := prev.Merge(d)
	if m.Count != cur.Count {
		t.Fatalf("merge Count = %d, want %d", m.Count, cur.Count)
	}
	// Sub of identical snapshots is empty.
	if e := cur.Sub(cur); e.Count != 0 || len(e.Buckets) != 0 {
		t.Fatalf("self-delta not empty: %+v", e)
	}
}

func TestHistExemplar(t *testing.T) {
	h := newHist()
	h.Observe(time.Microsecond, 0) // untraced: no exemplar
	sn := h.histSnapshot()
	for _, b := range sn.Buckets {
		if b.ExTrace != 0 {
			t.Fatalf("untraced record produced exemplar %x", b.ExTrace)
		}
	}
	h.Observe(time.Microsecond, 0xabc)
	h.Observe(time.Microsecond, 0xdef) // last writer wins
	sn = h.histSnapshot()
	var got uint64
	for _, b := range sn.Buckets {
		if b.ExTrace != 0 {
			got = b.ExTrace
			if b.ExNs <= 0 {
				t.Fatalf("exemplar with no duration: %+v", b)
			}
		}
	}
	if got != 0xdef {
		t.Fatalf("exemplar = %x, want def (last writer)", got)
	}
}

// TestHistConcurrent exercises record/snapshot/merge under the race
// detector: recorders with and without exemplars racing a reader.
func TestHistConcurrent(t *testing.T) {
	h := newHist()
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		var acc HistSnapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			sn := h.histSnapshot()
			acc = acc.Merge(sn)
			_ = sn.Quantile(0.99)
		}
	}()
	var rec sync.WaitGroup
	for g := 0; g < 4; g++ {
		rec.Add(1)
		go func(g int) {
			defer rec.Done()
			for i := 0; i < 2000; i++ {
				h.record(int64(i%4096), uint64(g*10000+i))
			}
		}(g)
	}
	rec.Wait()
	close(stop)
	reader.Wait()
	if sn := h.histSnapshot(); sn.Count != 8000 {
		t.Fatalf("Count = %d, want 8000", sn.Count)
	}
}

// TestRecordAllocs is the 0-alloc guard on the record path.
func TestRecordAllocs(t *testing.T) {
	Reset()
	s := For("allocguard")
	s.EndCall(s.Begin(), 1, 0, nil) // warm the op-1 table slot
	if n := testing.AllocsPerRun(200, func() {
		s.EndCall(s.Begin(), 1, 0xbeef, nil)
	}); n != 0 {
		t.Fatalf("Begin/EndCall allocates %v per call, want 0", n)
	}
	h := HistFor("allocguard.hist")
	if n := testing.AllocsPerRun(200, func() {
		h.ObserveSince(h.Start(), 0)
	}); n != 0 {
		t.Fatalf("named hist record allocates %v per call, want 0", n)
	}
	p := PeerFor("alloc:guard")
	if n := testing.AllocsPerRun(200, func() {
		p.Record(100, 0, nil)
	}); n != 0 {
		t.Fatalf("peer record allocates %v per call, want 0", n)
	}
}

func TestClockSanity(t *testing.T) {
	a := clockNow()
	time.Sleep(2 * time.Millisecond)
	b := clockNow()
	if b <= a {
		t.Fatalf("clock not monotonic across sleep: %d then %d", a, b)
	}
	elapsed := ticksToNs(b - a)
	if elapsed < int64(time.Millisecond) || elapsed > int64(200*time.Millisecond) {
		t.Fatalf("2ms sleep measured as %v", time.Duration(elapsed))
	}
	// Round-trip: ns→ticks→ns within 1%.
	ns := int64(time.Millisecond)
	rt := ticksToNs(nsToTicks(ns))
	if diff := rt - ns; diff < -ns/100 || diff > ns/100 {
		t.Fatalf("round trip of 1ms = %v", time.Duration(rt))
	}
}

func TestPeerStats(t *testing.T) {
	Reset()
	p := PeerFor("host:1234")
	if p != PeerFor("host:1234") {
		t.Fatal("PeerFor interned two blocks for one address")
	}
	p.Record(nsToTicks(int64(time.Millisecond)), 0x42, nil)
	p.Record(0, 0, errKindOf())
	found := false
	for _, sn := range PeerSnapshots() {
		if sn.Addr != "host:1234" {
			continue
		}
		found = true
		if sn.Calls != 2 || sn.Errors != 1 {
			t.Fatalf("calls=%d errors=%d, want 2/1", sn.Calls, sn.Errors)
		}
		if sn.Lat.Count != 1 {
			t.Fatalf("lat count = %d, want 1 (zero-duration call not recorded)", sn.Lat.Count)
		}
	}
	if !found {
		t.Fatal("peer missing from snapshots")
	}
	var nilP *PeerStats
	nilP.Record(1, 0, nil)
}

func errKindOf() error { return errSentinel }

var errSentinel = &sentinelErr{}

type sentinelErr struct{}

func (*sentinelErr) Error() string { return "sentinel" }
