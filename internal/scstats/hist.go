package scstats

import (
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Always-on latency histograms.
//
// A Hist is an HDR-style log-bucketed histogram: log2 major buckets split
// into 16 sub-buckets each (histSubBits = 4), giving ≤ 1/16 ≈ 6.25%
// relative bucket width across the whole range, with values below 16
// counted exactly. Values are raw clock ticks (see clock.go); only
// snapshots convert to nanoseconds.
//
// record is the hot path and is one atomic add on a striped shard — no
// locks, no allocation, no clock read (the caller supplies the duration).
// Shards are picked by hashing the goroutine's stack address, the same
// trick netd uses for connection striping: goroutines scatter across
// shards without any per-CPU API, and a wrong guess costs contention, not
// correctness. Snapshots sum the shards.
//
// Each bucket additionally remembers the trace ID of the last traced call
// that landed in it (the exemplar): a p999 bucket in /metrics links
// straight to a /traces/{id} waterfall. Exemplars are last-writer-wins in
// two plain atomic words — under heavy contention a bucket's (trace,
// value) pair can be torn across two calls, which is harmless for a
// debugging breadcrumb and keeps the record path free.

const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per octave; values < histSub are exact
	histMaxExp  = 38               // ticks ≥ 2^histMaxExp land in the catch-all bucket

	// Bucket layout: [0,histSub) exact, then (histMaxExp-histSubBits)
	// octaves of histSub sub-buckets, then one unbounded catch-all.
	histBuckets = histSub + (histMaxExp-histSubBits)*histSub + 1
)

// bucketIdx maps a tick count to its bucket.
func bucketIdx(v uint64) int {
	if v < histSub {
		return int(v)
	}
	if v >= 1<<histMaxExp {
		return histBuckets - 1
	}
	e := uint(bits.Len64(v) - 1)
	return int((e-histSubBits)<<histSubBits) + histSub + int((v>>(e-histSubBits))&(histSub-1))
}

// bucketLo returns the inclusive lower bound of bucket i, in ticks.
func bucketLo(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	if i >= histBuckets-1 {
		return 1 << histMaxExp
	}
	j := i - histSub
	o := uint(j >> histSubBits)
	m := uint64(j & (histSub - 1))
	return (histSub + m) << o
}

// bucketHi returns the exclusive upper bound of bucket i, in ticks; the
// catch-all has no upper bound and reports math.MaxUint64.
func bucketHi(i int) uint64 {
	if i >= histBuckets-1 {
		return math.MaxUint64
	}
	if i < histSub {
		return uint64(i) + 1
	}
	j := i - histSub
	o := uint(j >> histSubBits)
	m := uint64(j & (histSub - 1))
	return (histSub + m + 1) << o
}

// histShards is the stripe count: enough to spread recorders across
// cores, capped so snapshot cost and footprint stay bounded.
var histShards = func() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}()

// shardIdx hashes the caller's stack address to a stripe.
func shardIdx() int {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return int((p>>10 ^ p>>20) & uintptr(histShards-1))
}

type histShard struct {
	counts [histBuckets]atomic.Uint64
	_      [64]byte // keep adjacent shards off one another's cache lines
}

// Hist is one always-on latency histogram.
type Hist struct {
	shards []*histShard
	// Exemplars are unsharded: one (trace, ticks) pair per bucket,
	// last-writer-wins. exTick[i] pairs with exTrace[i] best-effort.
	exTrace []atomic.Uint64
	exTick  []atomic.Uint64
}

func newHist() *Hist {
	h := &Hist{
		shards:  make([]*histShard, histShards),
		exTrace: make([]atomic.Uint64, histBuckets),
		exTick:  make([]atomic.Uint64, histBuckets),
	}
	for i := range h.shards {
		h.shards[i] = new(histShard)
	}
	return h
}

// record adds one duration (in ticks) to the histogram, remembering
// traceID as the bucket's exemplar when nonzero.
func (h *Hist) record(d int64, traceID uint64) {
	if d < 0 {
		d = 0 // TSC skew across a core migration can go slightly backwards
	}
	b := bucketIdx(uint64(d))
	h.shards[shardIdx()].counts[b].Add(1)
	if traceID != 0 {
		h.exTick[b].Store(uint64(d))
		h.exTrace[b].Store(traceID)
	}
}

// Observe records a duration measured by the caller against the wall
// clock (tests and non-hot paths; hot paths record ticks directly).
func (h *Hist) Observe(d time.Duration, traceID uint64) {
	if h == nil {
		return
	}
	h.record(nsToTicks(int64(d)), traceID)
}

// Start returns a tick timestamp for a later ObserveSince.
func (h *Hist) Start() int64 { return clockNow() }

// ObserveSince records the time elapsed since start (a Start return).
func (h *Hist) ObserveSince(start int64, traceID uint64) {
	if h == nil || start == 0 {
		return
	}
	h.record(clockNow()-start, traceID)
}

// reset zeroes counts and exemplars (tests and bench phase boundaries).
func (h *Hist) reset() {
	for _, sh := range h.shards {
		for i := range sh.counts {
			sh.counts[i].Store(0)
		}
	}
	for i := range h.exTrace {
		h.exTrace[i].Store(0)
		h.exTick[i].Store(0)
	}
}

// ---------------------------------------------------------------------
// Snapshots.

// HistBucket is one occupied bucket of a snapshot, bounds in nanoseconds
// ([Lo, Hi); the catch-all bucket has Hi = math.MaxInt64). ExTrace, when
// nonzero, is the trace ID of the last traced call recorded in the
// bucket and ExNs its duration.
type HistBucket struct {
	Lo      int64
	Hi      int64
	Count   uint64
	ExTrace uint64
	ExNs    int64
}

// HistSnapshot is a point-in-time copy of a Hist with bounds converted to
// nanoseconds. Buckets are ascending and sparse (zero-count buckets
// omitted). Snapshots from one process share bucket bounds (the tick
// scale is frozen), so Sub and Merge match buckets exactly.
type HistSnapshot struct {
	Count   uint64
	SumNs   int64 // estimated from bucket midpoints
	Buckets []HistBucket
}

// histSnapshot sums the shards and converts to nanoseconds.
func (h *Hist) histSnapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [histBuckets]uint64
	for _, sh := range h.shards {
		for i := range sh.counts {
			counts[i] += sh.counts[i].Load()
		}
	}
	var sn HistSnapshot
	for i, c := range counts {
		if c == 0 {
			continue
		}
		b := HistBucket{Lo: boundNs(bucketLo(i)), Hi: boundNs(bucketHi(i)), Count: c}
		if tr := h.exTrace[i].Load(); tr != 0 {
			b.ExTrace = tr
			b.ExNs = ticksToNs(int64(h.exTick[i].Load()))
		}
		sn.Buckets = append(sn.Buckets, b)
		sn.Count += c
		sn.SumNs += int64(c) * midNs(b.Lo, b.Hi)
	}
	return sn
}

// boundNs converts a tick bound to a nanosecond bound, preserving the
// unbounded sentinel.
func boundNs(ticks uint64) int64 {
	if ticks == math.MaxUint64 {
		return math.MaxInt64
	}
	return ticksToNs(int64(ticks))
}

// midNs is the midpoint estimate used for sums and means; the unbounded
// catch-all is credited at its lower bound.
func midNs(lo, hi int64) int64 {
	if hi == math.MaxInt64 {
		return lo
	}
	return lo + (hi-lo)/2
}

// Mean returns the estimated mean in nanoseconds.
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / int64(s.Count)
}

// Quantile returns the estimated q-quantile (0 ≤ q ≤ 1) in nanoseconds,
// interpolating linearly within the containing bucket.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		if cum+b.Count >= rank {
			if b.Hi == math.MaxInt64 {
				return b.Lo
			}
			frac := float64(rank-cum) / float64(b.Count)
			return b.Lo + int64(frac*float64(b.Hi-b.Lo))
		}
		cum += b.Count
	}
	last := s.Buckets[len(s.Buckets)-1]
	return midNs(last.Lo, last.Hi)
}

// Sub returns the interval histogram s − prev (counts are monotonic per
// bucket, so the difference is itself a histogram). Exemplars carry over
// from the newer snapshot. Used for windowed /statz deltas.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	var out HistSnapshot
	j := 0
	for _, b := range s.Buckets {
		for j < len(prev.Buckets) && prev.Buckets[j].Hi < b.Hi {
			j++ // bucket drained to zero can't happen (monotonic), but stay robust
		}
		if j < len(prev.Buckets) && prev.Buckets[j].Hi == b.Hi {
			if prev.Buckets[j].Count >= b.Count {
				continue
			}
			b.Count -= prev.Buckets[j].Count
		}
		out.Buckets = append(out.Buckets, b)
		out.Count += b.Count
		out.SumNs += int64(b.Count) * midNs(b.Lo, b.Hi)
	}
	return out
}

// Merge returns the sum of two snapshots (per-op histograms merging into
// a subcontract aggregate; shard merges). Exemplars prefer s's buckets.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	var out HistSnapshot
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		var b HistBucket
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Hi < o.Buckets[j].Hi):
			b = s.Buckets[i]
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Hi < s.Buckets[i].Hi:
			b = o.Buckets[j]
			j++
		default: // equal bounds
			b = s.Buckets[i]
			b.Count += o.Buckets[j].Count
			if b.ExTrace == 0 {
				b.ExTrace, b.ExNs = o.Buckets[j].ExTrace, o.Buckets[j].ExNs
			}
			i++
			j++
		}
		out.Buckets = append(out.Buckets, b)
	}
	for _, b := range out.Buckets {
		out.Count += b.Count
		out.SumNs += int64(b.Count) * midNs(b.Lo, b.Hi)
	}
	return out
}

// ---------------------------------------------------------------------
// Named histograms.
//
// Subsystems with a latency that is not a subcontract call — dispatch
// queue delay, cache miss fill — intern a named Hist once and record into
// it directly. The telemetry plane exposes each as <name>_seconds.

var hists sync.Map // string -> *namedHist

type namedHist struct {
	name string
	h    *Hist
}

// HistFor interns and returns the named histogram. Callers cache the
// pointer, as with For.
func HistFor(name string) *Hist {
	if v, ok := hists.Load(name); ok {
		return v.(*namedHist).h
	}
	v, _ := hists.LoadOrStore(name, &namedHist{name: name, h: newHist()})
	return v.(*namedHist).h
}

// NamedHistSnapshot is one named histogram's snapshot.
type NamedHistSnapshot struct {
	Name string
	Hist HistSnapshot
}

// HistSnapshots returns every interned named histogram, sorted by name.
// Idle histograms are included so their series exist from process start.
func HistSnapshots() []NamedHistSnapshot {
	var out []NamedHistSnapshot
	hists.Range(func(_, v any) bool {
		nh := v.(*namedHist)
		out = append(out, NamedHistSnapshot{Name: nh.name, Hist: nh.h.histSnapshot()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ---------------------------------------------------------------------
// Per-peer RED.
//
// netd interns a PeerStats per remote address and reports every forwarded
// call's rate, errors and duration — the RED triad — against it. The
// pointer is cached on the peer state, so the forward path pays one
// counter add and one histogram record, no lookup.

// PeerStats is the RED block for one remote peer.
type PeerStats struct {
	addr   string
	Calls  atomic.Uint64
	Errors atomic.Uint64
	lat    *Hist
}

// Addr returns the peer address this block was interned under.
func (p *PeerStats) Addr() string { return p.addr }

// Record counts one forwarded call: d is the measured duration in ticks
// (0 when the call path's record mode measured nothing — the call still
// counts), traceID the exemplar candidate, err the outcome.
func (p *PeerStats) Record(d int64, traceID uint64, err error) {
	if p == nil {
		return
	}
	p.Calls.Add(1)
	if err != nil {
		p.Errors.Add(1)
	}
	if d > 0 {
		p.lat.record(d, traceID)
	}
}

var peers sync.Map // string -> *PeerStats

// PeerFor interns and returns the RED block for a peer address.
func PeerFor(addr string) *PeerStats {
	if v, ok := peers.Load(addr); ok {
		return v.(*PeerStats)
	}
	v, _ := peers.LoadOrStore(addr, &PeerStats{addr: addr, lat: newHist()})
	return v.(*PeerStats)
}

// PeerSnapshot is one peer's RED snapshot.
type PeerSnapshot struct {
	Addr   string
	Calls  uint64
	Errors uint64
	Lat    HistSnapshot
}

// PeerSnapshots returns every interned peer, sorted by address.
func PeerSnapshots() []PeerSnapshot {
	var out []PeerSnapshot
	peers.Range(func(_, v any) bool {
		p := v.(*PeerStats)
		out = append(out, PeerSnapshot{
			Addr:   p.addr,
			Calls:  p.Calls.Load(),
			Errors: p.Errors.Load(),
			Lat:    p.lat.histSnapshot(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
