//go:build !amd64

package scstats

// clockNow falls back to the runtime's monotonic clock where no cheap
// cycle counter is wired up; ticks are nanoseconds and the scale is 1.
func clockNow() int64 { return nanotime() }

const tickClockIsTSC = false
