//go:build amd64

package scstats

// clockNow returns the raw TSC tick count (clock_amd64.s). Reordering
// slack of an unfenced RDTSC (a few cycles) is far below the histogram's
// bucket width; cross-core reads rely on the invariant-TSC sync every
// non-antique x86 provides, and record() clamps the rare negative delta
// a migration skew could produce.
func clockNow() int64

// tickClockIsTSC tells the calibrator whether ticks need scaling.
const tickClockIsTSC = true
