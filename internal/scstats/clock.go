package scstats

import (
	"sync"
	_ "unsafe" // for go:linkname
)

// The latency clock.
//
// The always-on histograms read the clock twice per call, so the clock is
// the dominant cost of the latency plane — a cost the old 1-in-8 sampler
// paid only on sampled calls. time.Now is the wrong tool: it reads both
// the wall and monotonic clocks and builds a 24-byte struct. The plane
// instead records in *ticks* of the cheapest monotonic counter the
// platform offers:
//
//   - amd64: raw RDTSC (clock_amd64.s). On bare metal with an invariant
//     TSC this is single-digit nanoseconds; virtualized hosts that trap
//     or scale the counter cost more but still undercut a VDSO
//     clock_gettime.
//   - elsewhere: runtime.nanotime via linkname — the monotonic half of
//     time.Now without the wall-clock read.
//
// Ticks are meaningless across processes, so nothing hot ever converts:
// bucket indices are computed in ticks and only snapshot/exposition code
// maps bucket bounds to nanoseconds, through a tick→ns scale calibrated
// against runtime.nanotime. The scale is frozen on first use — bucket
// bounds must be stable across scrapes or every scrape would mint new
// Prometheus series — and by the time anything snapshots, the calibration
// window is long enough for ~0.1% accuracy (a fraction of the ~6% bucket
// width).

//go:linkname nanotime runtime.nanotime
func nanotime() int64

// clockBase anchors calibration: the tick and nanotime readings taken at
// process start.
var clockBase struct {
	ticks int64
	nano  int64
}

func init() {
	clockBase.ticks = clockNow()
	clockBase.nano = nanotime()
}

var (
	scaleOnce sync.Once
	nsPerTick float64
)

// tickScale returns the frozen nanoseconds-per-tick conversion factor.
// The first caller calibrates it from the elapsed (tick, nanotime) pair
// since init, spinning briefly if the process is younger than the minimum
// calibration window.
func tickScale() float64 {
	scaleOnce.Do(func() {
		if !tickClockIsTSC {
			nsPerTick = 1
			return
		}
		// 500µs of elapsed base bounds the calibration error well under
		// the histogram's bucket resolution; processes only spin here
		// when something snapshots almost immediately after start.
		const minWindow = 500_000
		for nanotime()-clockBase.nano < minWindow {
		}
		dt := clockNow() - clockBase.ticks
		dn := nanotime() - clockBase.nano
		if dt <= 0 {
			nsPerTick = 1
			return
		}
		nsPerTick = float64(dn) / float64(dt)
	})
	return nsPerTick
}

// ticksToNs converts a tick count to nanoseconds with the frozen scale.
func ticksToNs(t int64) int64 {
	if t <= 0 {
		return 0
	}
	return int64(float64(t) * tickScale())
}

// nsToTicks converts nanoseconds to ticks (RecordLatency and tests feed
// durations in; the histograms store ticks).
func nsToTicks(ns int64) int64 {
	if ns <= 0 {
		return 0
	}
	s := tickScale()
	if s == 1 {
		return ns
	}
	return int64(float64(ns) / s)
}
