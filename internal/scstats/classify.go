package scstats

import (
	"errors"

	"repro/internal/kernel"
)

// ending distinguishes the context endings (core/errors.go taxonomy) from
// every other failure, for the DeadlineExceeded/Cancelled breakout.
type ending int

const (
	endedOther ending = iota
	endedDeadline
	endedCancelled
)

func classify(err error) ending {
	// The kernel sentinels are the canonical values (core aliases them),
	// so classifying against kernel keeps scstats importable from every
	// layer, including kernel-adjacent ones.
	switch {
	case errors.Is(err, kernel.ErrDeadlineExceeded):
		return endedDeadline
	case errors.Is(err, kernel.ErrCancelled):
		return endedCancelled
	default:
		return endedOther
	}
}
