package kernel

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
)

// echoProc returns a reply echoing the request's first uint32 plus one.
func echoProc(req *buffer.Buffer) (*buffer.Buffer, error) {
	v, err := req.ReadUint32()
	if err != nil {
		return nil, err
	}
	rep := buffer.New(4)
	rep.WriteUint32(v + 1)
	return rep, nil
}

func TestDoorCall(t *testing.T) {
	k := New("m1")
	srv := k.NewDomain("server")
	cli := k.NewDomain("client")

	h, _ := srv.CreateDoor(echoProc, nil)

	// Transfer the identifier to the client through a buffer, as the
	// kernel would during an IPC.
	b := buffer.New(8)
	if err := srv.MoveToBuffer(h, b); err != nil {
		t.Fatal(err)
	}
	ch, err := cli.AdoptFromBuffer(b)
	if err != nil {
		t.Fatal(err)
	}

	req := buffer.New(4)
	req.WriteUint32(41)
	rep, err := cli.Call(ch, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.ReadUint32()
	if err != nil || got != 42 {
		t.Fatalf("reply = %d, %v; want 42", got, err)
	}
}

func TestMoveSemantics(t *testing.T) {
	k := New("m1")
	srv := k.NewDomain("server")
	h, _ := srv.CreateDoor(echoProc, nil)

	b := buffer.New(8)
	if err := srv.MoveToBuffer(h, b); err != nil {
		t.Fatal(err)
	}
	// After the move the sending domain no longer holds the identifier.
	if _, err := srv.Call(h, buffer.New(0)); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("Call on moved handle = %v, want ErrBadHandle", err)
	}
	if err := srv.DeleteDoor(h); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("DeleteDoor on moved handle = %v, want ErrBadHandle", err)
	}
	ReleaseBufferDoors(b)
}

func TestCopySemantics(t *testing.T) {
	k := New("m1")
	srv := k.NewDomain("server")
	cli := k.NewDomain("client")
	h, door := srv.CreateDoor(echoProc, nil)

	b := buffer.New(8)
	if err := srv.CopyToBuffer(h, b); err != nil {
		t.Fatal(err)
	}
	if door.Refs() != 2 {
		t.Fatalf("refs after copy-to-buffer = %d, want 2", door.Refs())
	}
	ch, err := cli.AdoptFromBuffer(b)
	if err != nil {
		t.Fatal(err)
	}
	// Both the original and the copy work.
	for _, tc := range []struct {
		d *Domain
		h Handle
	}{{srv, h}, {cli, ch}} {
		req := buffer.New(4)
		req.WriteUint32(1)
		if _, err := tc.d.Call(tc.h, req); err != nil {
			t.Fatalf("call via %s: %v", tc.d.Name(), err)
		}
	}
}

func TestCopyDoorSameDoor(t *testing.T) {
	k := New("m1")
	d := k.NewDomain("d")
	h, door := d.CreateDoor(echoProc, nil)
	h2, err := d.CopyDoor(h)
	if err != nil {
		t.Fatal(err)
	}
	if !d.SameDoor(h, h2) {
		t.Fatal("copy does not designate the same door")
	}
	if door.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", door.Refs())
	}
	if d.HandleCount() != 2 {
		t.Fatalf("handle count = %d, want 2", d.HandleCount())
	}
}

func TestRevoke(t *testing.T) {
	k := New("m1")
	srv := k.NewDomain("server")
	cli := k.NewDomain("client")
	h, door := srv.CreateDoor(echoProc, nil)

	b := buffer.New(8)
	if err := srv.CopyToBuffer(h, b); err != nil {
		t.Fatal(err)
	}
	ch, _ := cli.AdoptFromBuffer(b)

	door.Revoke()
	if !door.Revoked() {
		t.Fatal("door not marked revoked")
	}
	req := buffer.New(4)
	req.WriteUint32(1)
	if _, err := cli.Call(ch, req); !errors.Is(err, ErrRevoked) {
		t.Fatalf("Call on revoked door = %v, want ErrRevoked", err)
	}
	// The client still holds the (dead) identifier; deleting it works.
	if err := cli.DeleteDoor(ch); err != nil {
		t.Fatal(err)
	}
}

func TestRevokeHandle(t *testing.T) {
	k := New("m1")
	d := k.NewDomain("d")
	h, door := d.CreateDoor(echoProc, nil)
	if err := d.RevokeHandle(h); err != nil {
		t.Fatal(err)
	}
	if !door.Revoked() {
		t.Fatal("RevokeHandle did not revoke")
	}
	if err := d.RevokeHandle(Handle(999)); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("RevokeHandle on bad handle = %v", err)
	}
}

func TestUnreferencedNotification(t *testing.T) {
	k := New("m1")
	srv := k.NewDomain("server")
	cli := k.NewDomain("client")

	unref := make(chan struct{})
	h, _ := srv.CreateDoor(echoProc, func() { close(unref) })

	h2, err := srv.CopyDoor(h)
	if err != nil {
		t.Fatal(err)
	}
	b := buffer.New(8)
	if err := srv.MoveToBuffer(h2, b); err != nil {
		t.Fatal(err)
	}
	ch, _ := cli.AdoptFromBuffer(b)

	if err := srv.DeleteDoor(h); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unref:
		t.Fatal("unreferenced fired while client identifier outstanding")
	case <-time.After(10 * time.Millisecond):
	}
	if err := cli.DeleteDoor(ch); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unref:
	case <-time.After(2 * time.Second):
		t.Fatal("unreferenced notification never delivered")
	}
}

func TestUnreferencedViaBufferDiscard(t *testing.T) {
	k := New("m1")
	srv := k.NewDomain("server")
	unref := make(chan struct{})
	h, _ := srv.CreateDoor(echoProc, func() { close(unref) })
	b := buffer.New(8)
	if err := srv.MoveToBuffer(h, b); err != nil {
		t.Fatal(err)
	}
	ReleaseBufferDoors(b)
	select {
	case <-unref:
	case <-time.After(2 * time.Second):
		t.Fatal("unreferenced notification never delivered after buffer discard")
	}
}

func TestForgedHandleRejected(t *testing.T) {
	k := New("m1")
	srv := k.NewDomain("server")
	other := k.NewDomain("other")
	h, _ := srv.CreateDoor(echoProc, nil)

	// A handle value is meaningless in another domain: the capability
	// model must reject it even if the numeric value collides.
	if _, err := other.Call(h, buffer.New(0)); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("cross-domain forged call = %v, want ErrBadHandle", err)
	}
	if _, err := other.CopyDoor(h); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("cross-domain forged copy = %v, want ErrBadHandle", err)
	}
}

func TestAdoptNonDoorSlot(t *testing.T) {
	k := New("m1")
	d := k.NewDomain("d")
	b := buffer.New(8)
	b.WriteDoor("not a door")
	if _, err := d.AdoptFromBuffer(b); !errors.Is(err, ErrNotADoor) {
		t.Fatalf("AdoptFromBuffer = %v, want ErrNotADoor", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	k := New("m1")
	srv := k.NewDomain("server")
	cli := k.NewDomain("client")
	h, _ := srv.CreateDoor(echoProc, nil)
	b := buffer.New(8)
	if err := srv.MoveToBuffer(h, b); err != nil {
		t.Fatal(err)
	}
	ch, _ := cli.AdoptFromBuffer(b)

	const goroutines = 16
	const callsPer = 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < callsPer; i++ {
				req := buffer.New(4)
				req.WriteUint32(uint32(i))
				rep, err := cli.Call(ch, req)
				if err != nil {
					errs <- err
					return
				}
				got, err := rep.ReadUint32()
				if err != nil || got != uint32(i)+1 {
					errs <- errors.New("bad reply")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentCopyDelete(t *testing.T) {
	k := New("m1")
	d := k.NewDomain("d")
	h, door := d.CreateDoor(echoProc, nil)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h2, err := d.CopyDoor(h)
				if err != nil {
					t.Error(err)
					return
				}
				if err := d.DeleteDoor(h2); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if door.Refs() != 1 {
		t.Fatalf("refs after churn = %d, want 1", door.Refs())
	}
}

func TestKernelAndDomainNames(t *testing.T) {
	k := New("machineA")
	if k.Name() != "machineA" {
		t.Fatalf("kernel name = %q", k.Name())
	}
	d := k.NewDomain("dom")
	if d.Name() != "dom" || d.Kernel() != k {
		t.Fatalf("domain identity wrong: %q %p", d.Name(), d.Kernel())
	}
}

func TestDeleteUnknownHandle(t *testing.T) {
	k := New("m1")
	d := k.NewDomain("d")
	if err := d.DeleteDoor(12345); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("DeleteDoor = %v, want ErrBadHandle", err)
	}
}

func TestRefOf(t *testing.T) {
	k := New("m1")
	d := k.NewDomain("d")
	h, door := d.CreateDoor(echoProc, nil)
	r, err := d.RefOf(h)
	if err != nil {
		t.Fatal(err)
	}
	if door.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", door.Refs())
	}
	h2 := d.AdoptRef(r)
	if !d.SameDoor(h, h2) {
		t.Fatal("AdoptRef produced a different door")
	}
}
