package kernel

import (
	"errors"
	"time"

	"repro/internal/buffer"
)

// Invocation-context errors. These are the canonical values for the whole
// system: package core re-exports them (core.ErrDeadlineExceeded,
// core.ErrCancelled) so subcontract and application code can test with
// errors.Is at either layer. Neither error is retry-safe — a subcontract
// that retries communications failures must give up when it sees one of
// these (see core.Retryable).
var (
	// ErrDeadlineExceeded is returned when a door call's deadline passed
	// before the call could complete (or before it was even dispatched).
	ErrDeadlineExceeded = errors.New("kernel: call deadline exceeded")
	// ErrCancelled is returned when the caller abandoned the call through
	// its cancellation channel.
	ErrCancelled = errors.New("kernel: call cancelled")
)

// Info is the invocation context that rides alongside the argument buffer
// on every door call: the policy-carrying half of a call, as opposed to
// the data-carrying buffer. The kernel checks it before dispatching to a
// door's target and hands it to targets that accept it, so deadlines,
// cancellation and trace identity propagate from client stubs through
// subcontracts and kernel doors to server skeletons — and, through the
// network door servers' wire header, across machines with the remaining
// budget intact.
//
// A nil *Info and a zero Info both mean "no context": no deadline, no
// cancellation, no trace. All methods are nil-receiver safe.
type Info struct {
	// Deadline is the absolute time after which the call must fail with
	// ErrDeadlineExceeded. The zero time means no deadline.
	Deadline time.Time
	// Cancel, when non-nil, is closed by the caller to abandon the call;
	// the call then fails with ErrCancelled.
	Cancel <-chan struct{}
	// Trace is the trace identifier naming the end-to-end call tree,
	// propagated unchanged end to end (0 means untraced).
	Trace uint64
	// Span is the identifier of the innermost open span of the trace at
	// this point of the call path: each instrumented hop (subcontract
	// invoke, netd send, server skeleton) pushes a fresh span here on
	// entry so the hops it encloses become its children, and restores the
	// previous value on exit (see internal/trace.Begin/End). Parent is
	// that span's own parent. Both cross the netd wire with Trace, so a
	// server-side span nests under the client-side span that carried it
	// there. Meaningless when Trace is 0.
	Span   uint64
	Parent uint64
	// Spec marks Trace as a speculative tail-capture trace: head sampling
	// declined this call, but a slow threshold is configured, so the trace
	// layer buffers its spans on the side and commits them to the slow
	// ring only if the root span exceeds the threshold (internal/trace
	// tail capture). Speculative traces are a local bet — the network door
	// servers do not propagate them over the wire, and exemplar recording
	// skips them (most are abandoned). Meaningless when Trace is 0.
	Spec bool
	// Priority is the caller's scheduling priority for this call (higher
	// runs first; 0 is the default). The priority subcontract sets it
	// from the calling domain's environment slot, core.WithPriority sets
	// it directly, and the network door servers carry it across the wire
	// so the server-side dispatch engine orders queued work by it.
	Priority int32
}

// Err reports whether the context has already ended: ErrCancelled if the
// cancellation channel is closed (checked first, like context.Context),
// ErrDeadlineExceeded if the deadline has passed, nil otherwise.
func (in *Info) Err() error {
	if in == nil {
		return nil
	}
	if in.Cancel != nil {
		select {
		case <-in.Cancel:
			return ErrCancelled
		default:
		}
	}
	if !in.Deadline.IsZero() && !time.Now().Before(in.Deadline) {
		return ErrDeadlineExceeded
	}
	return nil
}

// ExemplarTrace returns the trace ID to attach to metric exemplars: the
// call's trace when it is a real (head-sampled or wire-propagated) trace,
// 0 when untraced or speculative — a speculative trace is usually
// abandoned and would leave the exemplar dangling.
func (in *Info) ExemplarTrace() uint64 {
	if in == nil || in.Spec {
		return 0
	}
	return in.Trace
}

// Remaining returns the budget left before the deadline. ok is false when
// no deadline is set; a non-positive duration means the deadline has
// already passed.
func (in *Info) Remaining() (time.Duration, bool) {
	if in == nil || in.Deadline.IsZero() {
		return 0, false
	}
	return time.Until(in.Deadline), true
}

// ServerProcInfo is a door target that receives the invocation context
// along with the argument buffer. info may be nil (a context-free caller);
// Info's methods tolerate that.
type ServerProcInfo func(req *buffer.Buffer, info *Info) (*buffer.Buffer, error)

// CreateDoorInfo creates a door whose target receives the invocation
// context. It is otherwise identical to CreateDoor.
func (d *Domain) CreateDoorInfo(proc ServerProcInfo, unref func()) (Handle, *Door) {
	dd := &door{
		owner:  d.kernel,
		target: proc,
		unref:  unref,
		id:     d.kernel.nextID.Add(1),
	}
	dd.refs.Store(1)
	d.kernel.liveDoors.Add(1)
	h := d.install(Ref{d: dd})
	return h, &Door{d: dd}
}

// CallInfo issues a door call carrying an invocation context: the kernel
// fails the call without dispatching if the context has already ended, and
// otherwise delivers the context to the door's target (so network door
// servers can forward the remaining budget, and server-side subcontract
// code can inherit it). info may be nil, making CallInfo(h, req, nil)
// equivalent to Call(h, req).
func (d *Domain) CallInfo(h Handle, req *buffer.Buffer, info *Info) (*buffer.Buffer, error) {
	r, err := d.lookup(h)
	if err != nil {
		return nil, err
	}
	return r.callInfo(req, info)
}
