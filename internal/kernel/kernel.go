// Package kernel emulates the Spring kernel's door IPC mechanism.
//
// A door is a communication endpoint, analogous to a Mach port, to which
// threads may execute cross-address-space calls. A domain (an address space
// plus a collection of threads) that creates a door receives a door
// identifier, which it can pass to other domains so they can issue calls to
// the associated door. Door identifiers function as software capabilities:
// only the legitimate holder of a door identifier may issue a call on its
// door. The kernel manages all operations on doors and door identifiers —
// construction, destruction, copying, and transmission — and notifies a
// door's target when the last outstanding identifier is deleted.
//
// The paper ran on real address spaces separated by the MMU; here domains
// are logical address spaces inside one process. Everything subcontract
// depends on — unforgeable handles, kernel-mediated transfer, refcounted
// copy/delete, revocation, unreferenced notification — is implemented with
// the same observable semantics. The threading model is also the doors
// model: a door call runs the server procedure on the calling thread
// (goroutine), the "thread shuttling" that makes Spring door IPC fast;
// servers needing their own scheduling hand calls to an executor (see the
// priority subcontract).
package kernel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
)

// Errors returned by door operations.
var (
	// ErrBadHandle is returned when a door identifier is not present in the
	// calling domain's handle table (forged, deleted, or moved away).
	ErrBadHandle = errors.New("kernel: invalid door identifier")
	// ErrRevoked is returned when calling a door whose server has revoked it.
	ErrRevoked = errors.New("kernel: door revoked")
	// ErrNotADoor is returned when a buffer door slot holds something other
	// than a kernel door reference (for example an unresolved network form).
	ErrNotADoor = errors.New("kernel: buffer slot does not hold a kernel door reference")
	// ErrCommFailure classifies communications failures below the door
	// level (the network door servers wrap their transport errors with
	// it). Subcontracts that retry on communications errors — replicon,
	// reconnectable — test for this class alongside ErrRevoked and
	// ErrBadHandle.
	ErrCommFailure = errors.New("kernel: communication failure")
)

// Handle is a door identifier as seen by one domain: an unforgeable,
// domain-local capability name (compare a Unix file descriptor). Handle 0 is
// never valid.
type Handle uint64

// ServerProc is the target of a door: the server procedure run when a
// thread calls the door. It receives the (kernel-transferred) argument
// buffer and returns a reply buffer. Targets that want the invocation
// context (deadline, cancellation, trace) use ServerProcInfo and
// CreateDoorInfo instead.
type ServerProc func(req *buffer.Buffer) (*buffer.Buffer, error)

// door is the kernel-side door object.
type door struct {
	mu      sync.Mutex
	owner   *Kernel
	target  ServerProcInfo
	unref   func()
	refs    int
	revoked bool
	id      uint64 // kernel-wide unique, for diagnostics
}

// Ref is a kernel-level door reference: the form a door identifier takes
// while in flight inside a communication buffer, detached from any domain's
// handle table. A Ref owns one reference count on the door.
type Ref struct {
	d *door
}

// Valid reports whether r refers to a door.
func (r Ref) Valid() bool { return r.d != nil }

// SameDoor reports whether two refs designate the same underlying door.
func (r Ref) SameDoor(o Ref) bool { return r.d != nil && r.d == o.d }

// DoorID returns a kernel-wide unique identity for the underlying door
// (0 for an invalid ref). The network door servers key their export tables
// on it.
func (r Ref) DoorID() uint64 {
	if r.d == nil {
		return 0
	}
	return r.d.id
}

// Dup creates an additional reference to the same door.
func (r Ref) Dup() Ref {
	if r.d == nil {
		return Ref{}
	}
	r.d.mu.Lock()
	r.d.refs++
	r.d.mu.Unlock()
	return Ref{d: r.d}
}

// Release drops the reference. When the last reference to a door is
// released the kernel delivers the unreferenced notification to the door's
// target (asynchronously, as the Spring kernel does).
func (r Ref) Release() {
	if r.d == nil {
		return
	}
	r.d.mu.Lock()
	r.d.refs--
	last := r.d.refs == 0
	unref := r.d.unref
	r.d.mu.Unlock()
	if last {
		r.d.owner.liveDoors.Add(-1)
		if unref != nil {
			go unref()
		}
	}
}

// call invokes the door's target, failing if the door has been revoked.
func (r Ref) call(req *buffer.Buffer) (*buffer.Buffer, error) {
	return r.callInfo(req, nil)
}

// callInfo invokes the door's target with an invocation context. An
// already-ended context (expired deadline, closed cancellation channel)
// fails the call before the target runs, so a dead caller never occupies
// the server.
func (r Ref) callInfo(req *buffer.Buffer, info *Info) (*buffer.Buffer, error) {
	if r.d == nil {
		return nil, ErrBadHandle
	}
	r.d.mu.Lock()
	revoked := r.d.revoked
	target := r.d.target
	r.d.mu.Unlock()
	if revoked {
		return nil, ErrRevoked
	}
	if err := info.Err(); err != nil {
		return nil, err
	}
	return target(req, info)
}

// Kernel is one machine's door kernel. Distinct Kernel values model
// distinct machines; doors never cross kernels except through the network
// door servers (package netd).
type Kernel struct {
	name      string
	nextID    atomic.Uint64
	liveDoors atomic.Int64
	mu        sync.Mutex
	domains   []*Domain
}

// LiveDoors reports the number of door objects currently alive on this
// kernel (created and not yet unreferenced) — the resource the cluster
// subcontract economizes (§8.1).
func (k *Kernel) LiveDoors() int64 { return k.liveDoors.Load() }

// New creates a kernel (a machine).
func New(name string) *Kernel {
	return &Kernel{name: name}
}

// Name returns the machine name given at creation.
func (k *Kernel) Name() string { return k.name }

// NewDomain creates a domain (address space) on this kernel.
func (k *Kernel) NewDomain(name string) *Domain {
	d := &Domain{
		kernel:  k,
		name:    name,
		handles: make(map[Handle]Ref),
		next:    1,
	}
	k.mu.Lock()
	k.domains = append(k.domains, d)
	k.mu.Unlock()
	return d
}

// Domain is an address space plus a collection of threads. Each domain has
// a private door-identifier table; handles are meaningless outside their
// domain.
type Domain struct {
	kernel *Kernel
	name   string

	mu      sync.Mutex
	handles map[Handle]Ref
	next    Handle
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Kernel returns the kernel (machine) this domain runs on.
func (d *Domain) Kernel() *Kernel { return d.kernel }

// Door is the server-side view of a door, returned at creation. The
// creating server uses it to revoke the door.
type Door struct {
	d *door
}

// Revoke revokes the door: all future calls on any identifier for it fail
// with ErrRevoked. Revocation is how a server discards state without
// waiting for all clients to consent.
func (dr *Door) Revoke() {
	dr.d.mu.Lock()
	dr.d.revoked = true
	dr.d.mu.Unlock()
}

// Revoked reports whether the door has been revoked.
func (dr *Door) Revoked() bool {
	dr.d.mu.Lock()
	defer dr.d.mu.Unlock()
	return dr.d.revoked
}

// Refs reports the current number of outstanding identifiers (handles plus
// in-flight buffer references) for the door.
func (dr *Door) Refs() int {
	dr.d.mu.Lock()
	defer dr.d.mu.Unlock()
	return dr.d.refs
}

// CreateDoor creates a door targeted at proc and installs one identifier
// for it in d's handle table. unref, if non-nil, is called (in its own
// goroutine) when the last identifier for the door is deleted. The target
// does not see the invocation context; use CreateDoorInfo for targets
// that propagate deadlines and traces onward.
func (d *Domain) CreateDoor(proc ServerProc, unref func()) (Handle, *Door) {
	return d.CreateDoorInfo(func(req *buffer.Buffer, _ *Info) (*buffer.Buffer, error) {
		return proc(req)
	}, unref)
}

// install assigns a fresh handle for ref. The ref's count was already
// accounted for by the caller.
func (d *Domain) install(r Ref) Handle {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.next
	d.next++
	d.handles[h] = r
	return h
}

// lookup returns the ref for h without transferring it.
func (d *Domain) lookup(h Handle) (Ref, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.handles[h]
	if !ok {
		return Ref{}, fmt.Errorf("%w: %s handle %d", ErrBadHandle, d.name, h)
	}
	return r, nil
}

// Call issues a door call on identifier h, transferring req to the door's
// target and returning the reply. The caller loses ownership of req's door
// references that the server adopts; the server loses ownership of the
// reply's door references to the caller. Context-carrying callers use
// CallInfo.
func (d *Domain) Call(h Handle, req *buffer.Buffer) (*buffer.Buffer, error) {
	r, err := d.lookup(h)
	if err != nil {
		return nil, err
	}
	return r.call(req)
}

// CopyDoor creates a second identifier for the same door (a shallow copy of
// the capability, as the simplex copy operation does).
func (d *Domain) CopyDoor(h Handle) (Handle, error) {
	r, err := d.lookup(h)
	if err != nil {
		return 0, err
	}
	return d.install(r.Dup()), nil
}

// DeleteDoor deletes identifier h, releasing its reference. When the last
// identifier for a door is deleted the kernel notifies the door's target.
func (d *Domain) DeleteDoor(h Handle) error {
	d.mu.Lock()
	r, ok := d.handles[h]
	if ok {
		delete(d.handles, h)
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s handle %d", ErrBadHandle, d.name, h)
	}
	r.Release()
	return nil
}

// RevokeHandle revokes the door designated by h. Only meaningful for the
// door's server, which also holds the *Door; provided for symmetry in
// server-side subcontract code that retains only a handle.
func (d *Domain) RevokeHandle(h Handle) error {
	r, err := d.lookup(h)
	if err != nil {
		return err
	}
	r.d.mu.Lock()
	r.d.revoked = true
	r.d.mu.Unlock()
	return nil
}

// MoveToBuffer transfers identifier h out of d's handle table into buf
// (move semantics: the sending domain ceases to have the identifier, as
// marshal requires).
func (d *Domain) MoveToBuffer(h Handle, buf *buffer.Buffer) error {
	d.mu.Lock()
	r, ok := d.handles[h]
	if ok {
		delete(d.handles, h)
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s handle %d", ErrBadHandle, d.name, h)
	}
	buf.WriteDoor(r)
	return nil
}

// CopyToBuffer writes an additional identifier for h's door into buf,
// leaving h in place (used by marshal_copy and the copy parameter mode).
func (d *Domain) CopyToBuffer(h Handle, buf *buffer.Buffer) error {
	r, err := d.lookup(h)
	if err != nil {
		return err
	}
	buf.WriteDoor(r.Dup())
	return nil
}

// AdoptFromBuffer consumes the next door reference from buf and installs it
// in d's handle table, returning the new identifier.
func (d *Domain) AdoptFromBuffer(buf *buffer.Buffer) (Handle, error) {
	slot, err := buf.ReadDoor()
	if err != nil {
		return 0, err
	}
	r, ok := slot.(Ref)
	if !ok {
		return 0, fmt.Errorf("%w: %T", ErrNotADoor, slot)
	}
	return d.install(r), nil
}

// AdoptRef installs an in-flight reference directly (used by the network
// door servers when fabricating proxy doors).
func (d *Domain) AdoptRef(r Ref) Handle {
	return d.install(r)
}

// RefOf returns a new reference to h's door, leaving h in place.
func (d *Domain) RefOf(h Handle) (Ref, error) {
	r, err := d.lookup(h)
	if err != nil {
		return Ref{}, err
	}
	return r.Dup(), nil
}

// HandleCount reports the number of identifiers in the domain's table
// (resource accounting for the cluster-vs-simplex experiment).
func (d *Domain) HandleCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.handles)
}

// SameDoor reports whether two identifiers designate the same door.
func (d *Domain) SameDoor(a, b Handle) bool {
	ra, err1 := d.lookup(a)
	rb, err2 := d.lookup(b)
	return err1 == nil && err2 == nil && ra.SameDoor(rb)
}

// ReleaseBufferDoors releases all door references still held by buf. Call
// it when discarding a buffer that may carry unconsumed identifiers, so the
// doors' reference counts are not leaked.
func ReleaseBufferDoors(buf *buffer.Buffer) {
	if buf == nil {
		return
	}
	for _, slot := range buf.TakeDoors() {
		if r, ok := slot.(Ref); ok {
			r.Release()
		}
	}
}
