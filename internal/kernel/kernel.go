// Package kernel emulates the Spring kernel's door IPC mechanism.
//
// A door is a communication endpoint, analogous to a Mach port, to which
// threads may execute cross-address-space calls. A domain (an address space
// plus a collection of threads) that creates a door receives a door
// identifier, which it can pass to other domains so they can issue calls to
// the associated door. Door identifiers function as software capabilities:
// only the legitimate holder of a door identifier may issue a call on its
// door. The kernel manages all operations on doors and door identifiers —
// construction, destruction, copying, and transmission — and notifies a
// door's target when the last outstanding identifier is deleted.
//
// The paper ran on real address spaces separated by the MMU; here domains
// are logical address spaces inside one process. Everything subcontract
// depends on — unforgeable handles, kernel-mediated transfer, refcounted
// copy/delete, revocation, unreferenced notification — is implemented with
// the same observable semantics. The threading model is also the doors
// model: a door call runs the server procedure on the calling thread
// (goroutine), the "thread shuttling" that makes Spring door IPC fast;
// servers needing their own scheduling hand calls to an executor (see the
// priority subcontract).
//
// The invocation path is lock-free (E16): a door's reference count and
// revocation flag are atomics, its target and unreferenced callback are
// immutable after creation, and a domain's handle table is a dense
// atomically-published slice indexed by handle — so Ref.Dup, Ref.Release
// and a door call touch no mutex. Handle-table writers (install, delete,
// move) serialize on the domain mutex, which is off the call path.
package kernel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
)

// Errors returned by door operations.
var (
	// ErrBadHandle is returned when a door identifier is not present in the
	// calling domain's handle table (forged, deleted, or moved away).
	ErrBadHandle = errors.New("kernel: invalid door identifier")
	// ErrRevoked is returned when calling a door whose server has revoked it.
	ErrRevoked = errors.New("kernel: door revoked")
	// ErrNotADoor is returned when a buffer door slot holds something other
	// than a kernel door reference (for example an unresolved network form).
	ErrNotADoor = errors.New("kernel: buffer slot does not hold a kernel door reference")
	// ErrCommFailure classifies communications failures below the door
	// level (the network door servers wrap their transport errors with
	// it). Subcontracts that retry on communications errors — replicon,
	// reconnectable — test for this class alongside ErrRevoked and
	// ErrBadHandle.
	ErrCommFailure = errors.New("kernel: communication failure")
	// ErrOverload is returned when a server refuses a call at admission:
	// its dispatch engine's in-flight bound is reached and the call was
	// shed immediately instead of queueing without bound. The call never
	// executed, so the class is retry-safe (core.Retryable) — back off
	// and try again, or fail over to a replica.
	ErrOverload = errors.New("kernel: server overloaded")
)

// Handle is a door identifier as seen by one domain: an unforgeable,
// domain-local capability name (compare a Unix file descriptor). Handle 0 is
// never valid.
type Handle uint64

// ServerProc is the target of a door: the server procedure run when a
// thread calls the door. It receives the (kernel-transferred) argument
// buffer and returns a reply buffer. Targets that want the invocation
// context (deadline, cancellation, trace) use ServerProcInfo and
// CreateDoorInfo instead.
type ServerProc func(req *buffer.Buffer) (*buffer.Buffer, error)

// door is the kernel-side door object. target, unref, owner and id are
// written once at creation, before the first reference is published, and
// never again — so the call path reads them without synchronization. The
// reference count and revocation flag are the only mutable fields and are
// atomics.
type door struct {
	owner   *Kernel
	target  ServerProcInfo
	unref   func()
	id      uint64 // kernel-wide unique, for diagnostics
	refs    atomic.Int64
	revoked atomic.Bool
	// inline hints that the door's target is non-blocking and safe to
	// run directly on a network reader goroutine (see Door.SetInline);
	// the netd dispatch layer seeds its adaptive inline state with it.
	inline atomic.Bool
}

// Ref is a kernel-level door reference: the form a door identifier takes
// while in flight inside a communication buffer, detached from any domain's
// handle table. A Ref owns one reference count on the door.
type Ref struct {
	d *door
}

// Valid reports whether r refers to a door.
func (r Ref) Valid() bool { return r.d != nil }

// SameDoor reports whether two refs designate the same underlying door.
func (r Ref) SameDoor(o Ref) bool { return r.d != nil && r.d == o.d }

// DoorID returns a kernel-wide unique identity for the underlying door
// (0 for an invalid ref). The network door servers key their export tables
// on it, and the cache manager its entry index.
func (r Ref) DoorID() uint64 {
	if r.d == nil {
		return 0
	}
	return r.d.id
}

// Dup creates an additional reference to the same door. One atomic add;
// no lock.
func (r Ref) Dup() Ref {
	if r.d == nil {
		return Ref{}
	}
	r.d.refs.Add(1)
	return Ref{d: r.d}
}

// Release drops the reference. When the last reference to a door is
// released the kernel delivers the unreferenced notification to the door's
// target (asynchronously, as the Spring kernel does). Exactly one releaser
// observes the count reach zero, so the notification fires exactly once;
// delivery goes through the kernel's single dispatch goroutine, so a mass
// release does not burst one goroutine per door.
func (r Ref) Release() {
	if r.d == nil {
		return
	}
	if r.d.refs.Add(-1) == 0 {
		r.d.owner.noteUnreferenced(r.d)
	}
}

// call invokes the door's target, failing if the door has been revoked.
func (r Ref) call(req *buffer.Buffer) (*buffer.Buffer, error) {
	return r.callInfo(req, nil)
}

// callInfo invokes the door's target with an invocation context. An
// already-ended context (expired deadline, closed cancellation channel)
// fails the call before the target runs, so a dead caller never occupies
// the server. The path is one atomic flag load plus the context check; no
// mutex.
func (r Ref) callInfo(req *buffer.Buffer, info *Info) (*buffer.Buffer, error) {
	d := r.d
	if d == nil {
		return nil, ErrBadHandle
	}
	if d.revoked.Load() {
		return nil, ErrRevoked
	}
	if err := info.Err(); err != nil {
		return nil, err
	}
	return d.target(req, info)
}

// Kernel is one machine's door kernel. Distinct Kernel values model
// distinct machines; doors never cross kernels except through the network
// door servers (package netd).
type Kernel struct {
	name      string
	nextID    atomic.Uint64
	liveDoors atomic.Int64
	mu        sync.Mutex
	domains   []*Domain

	// Unreferenced-notification dispatch: last releases enqueue the door's
	// callback here and a single kernel-owned goroutine drains the queue in
	// FIFO order, starting on demand and exiting when idle. This bounds a
	// mass release (a lease reclaim dropping thousands of references) to
	// one goroutine instead of one per door.
	unrefMu      sync.Mutex
	unrefQueue   []func()
	unrefRunning bool
	// unrefDispatch, when set (SetUnrefDispatcher), supplies the
	// execution context for the drain instead of a dedicated goroutine —
	// the netd servers point it at their dispatch engine so unreferenced
	// notifications share the serve pool. FIFO and single-drainer
	// semantics are unchanged either way.
	unrefDispatch atomic.Pointer[func(drain func())]
}

// LiveDoors reports the number of door objects currently alive on this
// kernel (created and not yet unreferenced) — the resource the cluster
// subcontract economizes (§8.1).
func (k *Kernel) LiveDoors() int64 { return k.liveDoors.Load() }

// New creates a kernel (a machine).
func New(name string) *Kernel {
	return &Kernel{name: name}
}

// Name returns the machine name given at creation.
func (k *Kernel) Name() string { return k.name }

// noteUnreferenced accounts a door's death and schedules its unreferenced
// notification on the kernel's dispatch goroutine.
func (k *Kernel) noteUnreferenced(d *door) {
	k.liveDoors.Add(-1)
	if d.unref == nil {
		return
	}
	k.unrefMu.Lock()
	k.unrefQueue = append(k.unrefQueue, d.unref)
	if !k.unrefRunning {
		k.unrefRunning = true
		if start := k.unrefDispatch.Load(); start != nil {
			(*start)(k.drainUnrefs)
		} else {
			go k.drainUnrefs()
		}
	}
	k.unrefMu.Unlock()
}

// SetUnrefDispatcher injects the execution context for unreferenced-
// notification drains: start is invoked (at most once per idle→busy
// transition) with the drain function to run, letting a server host the
// drain on its worker pool instead of a fresh goroutine. start must run
// drain exactly once, asynchronously (never on the caller's stack — the
// caller holds kernel locks). A nil start restores the default
// goroutine-per-drain behaviour.
func (k *Kernel) SetUnrefDispatcher(start func(drain func())) {
	if start == nil {
		k.unrefDispatch.Store(nil)
		return
	}
	k.unrefDispatch.Store(&start)
}

// drainUnrefs runs queued unreferenced notifications in FIFO order until
// the queue empties, then exits. At most one instance runs per kernel.
func (k *Kernel) drainUnrefs() {
	for {
		k.unrefMu.Lock()
		if len(k.unrefQueue) == 0 {
			k.unrefRunning = false
			k.unrefMu.Unlock()
			return
		}
		batch := k.unrefQueue
		k.unrefQueue = nil
		k.unrefMu.Unlock()
		for _, fn := range batch {
			fn()
		}
	}
}

// NewDomain creates a domain (address space) on this kernel.
func (k *Kernel) NewDomain(name string) *Domain {
	d := &Domain{
		kernel: k,
		name:   name,
	}
	d.table.Store(&[]atomic.Pointer[door]{})
	k.mu.Lock()
	k.domains = append(k.domains, d)
	k.mu.Unlock()
	return d
}

// Domain is an address space plus a collection of threads. Each domain has
// a private door-identifier table; handles are meaningless outside their
// domain.
//
// The handle table is a dense slice indexed by handle (handles are
// allocated sequentially from 1 and never reused), published through an
// atomic pointer. Lookups — the door-call hot path — are two atomic loads
// and a bounds check; installs, deletes and growth serialize on mu. A
// reader that raced a concurrent delete may briefly see the old slice, in
// which case its call linearizes just before the delete, exactly as a call
// that won a lock race would have.
type Domain struct {
	kernel *Kernel
	name   string

	mu    sync.Mutex // serializes handle-table writers
	table atomic.Pointer[[]atomic.Pointer[door]]
	next  atomic.Uint64 // last allocated handle
	live  atomic.Int64  // live identifiers, for HandleCount
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Kernel returns the kernel (machine) this domain runs on.
func (d *Domain) Kernel() *Kernel { return d.kernel }

// Door is the server-side view of a door, returned at creation. The
// creating server uses it to revoke the door.
type Door struct {
	d *door
}

// SetInline hints that the door's target is non-blocking — it touches no
// locks held across waits, does no I/O and issues no nested remote calls
// — so a network door server may execute its calls directly on a
// connection reader goroutine. The hint seeds the dispatch layer's
// adaptive inline state; a hinted door that then blocks is demoted like
// any other (one slow call).
func (d *Door) SetInline(v bool) { d.d.inline.Store(v) }

// InlineHint reports the door's non-blocking hint (see Door.SetInline).
func (r Ref) InlineHint() bool { return r.d != nil && r.d.inline.Load() }

// Revoke revokes the door: all future calls on any identifier for it fail
// with ErrRevoked. Revocation is how a server discards state without
// waiting for all clients to consent.
func (dr *Door) Revoke() {
	dr.d.revoked.Store(true)
}

// Revoked reports whether the door has been revoked.
func (dr *Door) Revoked() bool {
	return dr.d.revoked.Load()
}

// Refs reports the current number of outstanding identifiers (handles plus
// in-flight buffer references) for the door.
func (dr *Door) Refs() int {
	return int(dr.d.refs.Load())
}

// CreateDoor creates a door targeted at proc and installs one identifier
// for it in d's handle table. unref, if non-nil, is called (on the
// kernel's notification dispatch goroutine) when the last identifier for
// the door is deleted. The target does not see the invocation context;
// use CreateDoorInfo for targets that propagate deadlines and traces
// onward.
func (d *Domain) CreateDoor(proc ServerProc, unref func()) (Handle, *Door) {
	return d.CreateDoorInfo(func(req *buffer.Buffer, _ *Info) (*buffer.Buffer, error) {
		return proc(req)
	}, unref)
}

// install assigns a fresh handle for ref. The ref's count was already
// accounted for by the caller.
func (d *Domain) install(r Ref) Handle {
	d.mu.Lock()
	h := Handle(d.next.Add(1))
	t := *d.table.Load()
	if int(h) > len(t) {
		grown := make([]atomic.Pointer[door], max(len(t)*2, 16))
		for i := range t {
			grown[i].Store(t[i].Load())
		}
		d.table.Store(&grown)
		t = grown
	}
	t[h-1].Store(r.d)
	d.live.Add(1)
	d.mu.Unlock()
	return h
}

// lookup returns the ref for h without transferring it. Lock-free: this
// is the first half of every door call.
func (d *Domain) lookup(h Handle) (Ref, error) {
	t := *d.table.Load()
	if h == 0 || int(h) > len(t) {
		return Ref{}, fmt.Errorf("%w: %s handle %d", ErrBadHandle, d.name, h)
	}
	dd := t[h-1].Load()
	if dd == nil {
		return Ref{}, fmt.Errorf("%w: %s handle %d", ErrBadHandle, d.name, h)
	}
	return Ref{d: dd}, nil
}

// remove deletes h from the table, returning the ref it held. The caller
// inherits the ref's reference count.
func (d *Domain) remove(h Handle) (Ref, bool) {
	d.mu.Lock()
	t := *d.table.Load()
	if h == 0 || int(h) > len(t) {
		d.mu.Unlock()
		return Ref{}, false
	}
	dd := t[h-1].Load()
	if dd == nil {
		d.mu.Unlock()
		return Ref{}, false
	}
	t[h-1].Store(nil)
	d.live.Add(-1)
	d.mu.Unlock()
	return Ref{d: dd}, true
}

// Call issues a door call on identifier h, transferring req to the door's
// target and returning the reply. The caller loses ownership of req's door
// references that the server adopts; the server loses ownership of the
// reply's door references to the caller. Context-carrying callers use
// CallInfo.
func (d *Domain) Call(h Handle, req *buffer.Buffer) (*buffer.Buffer, error) {
	r, err := d.lookup(h)
	if err != nil {
		return nil, err
	}
	return r.call(req)
}

// CopyDoor creates a second identifier for the same door (a shallow copy of
// the capability, as the simplex copy operation does).
func (d *Domain) CopyDoor(h Handle) (Handle, error) {
	r, err := d.lookup(h)
	if err != nil {
		return 0, err
	}
	return d.install(r.Dup()), nil
}

// DeleteDoor deletes identifier h, releasing its reference. When the last
// identifier for a door is deleted the kernel notifies the door's target.
func (d *Domain) DeleteDoor(h Handle) error {
	r, ok := d.remove(h)
	if !ok {
		return fmt.Errorf("%w: %s handle %d", ErrBadHandle, d.name, h)
	}
	r.Release()
	return nil
}

// RevokeHandle revokes the door designated by h. Only meaningful for the
// door's server, which also holds the *Door; provided for symmetry in
// server-side subcontract code that retains only a handle.
func (d *Domain) RevokeHandle(h Handle) error {
	r, err := d.lookup(h)
	if err != nil {
		return err
	}
	r.d.revoked.Store(true)
	return nil
}

// MoveToBuffer transfers identifier h out of d's handle table into buf
// (move semantics: the sending domain ceases to have the identifier, as
// marshal requires).
func (d *Domain) MoveToBuffer(h Handle, buf *buffer.Buffer) error {
	r, ok := d.remove(h)
	if !ok {
		return fmt.Errorf("%w: %s handle %d", ErrBadHandle, d.name, h)
	}
	buf.WriteDoor(r)
	return nil
}

// CopyToBuffer writes an additional identifier for h's door into buf,
// leaving h in place (used by marshal_copy and the copy parameter mode).
func (d *Domain) CopyToBuffer(h Handle, buf *buffer.Buffer) error {
	r, err := d.lookup(h)
	if err != nil {
		return err
	}
	buf.WriteDoor(r.Dup())
	return nil
}

// AdoptFromBuffer consumes the next door reference from buf and installs it
// in d's handle table, returning the new identifier.
func (d *Domain) AdoptFromBuffer(buf *buffer.Buffer) (Handle, error) {
	slot, err := buf.ReadDoor()
	if err != nil {
		return 0, err
	}
	r, ok := slot.(Ref)
	if !ok {
		return 0, fmt.Errorf("%w: %T", ErrNotADoor, slot)
	}
	return d.install(r), nil
}

// AdoptRef installs an in-flight reference directly (used by the network
// door servers when fabricating proxy doors).
func (d *Domain) AdoptRef(r Ref) Handle {
	return d.install(r)
}

// RefOf returns a new reference to h's door, leaving h in place.
func (d *Domain) RefOf(h Handle) (Ref, error) {
	r, err := d.lookup(h)
	if err != nil {
		return Ref{}, err
	}
	return r.Dup(), nil
}

// HandleCount reports the number of identifiers in the domain's table
// (resource accounting for the cluster-vs-simplex experiment).
func (d *Domain) HandleCount() int {
	return int(d.live.Load())
}

// SameDoor reports whether two identifiers designate the same door.
func (d *Domain) SameDoor(a, b Handle) bool {
	ra, err1 := d.lookup(a)
	rb, err2 := d.lookup(b)
	return err1 == nil && err2 == nil && ra.SameDoor(rb)
}

// ReleaseBufferDoors releases all door references still held by buf. Call
// it when discarding a buffer that may carry unconsumed identifiers, so the
// doors' reference counts are not leaked.
func ReleaseBufferDoors(buf *buffer.Buffer) {
	if buf == nil {
		return
	}
	for _, slot := range buf.TakeDoors() {
		if r, ok := slot.(Ref); ok {
			r.Release()
		}
	}
}
