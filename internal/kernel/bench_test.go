package kernel

import (
	"testing"

	"repro/internal/buffer"
)

func benchFixture(b *testing.B) (*Domain, Handle) {
	b.Helper()
	k := New("bench")
	srv := k.NewDomain("server")
	cli := k.NewDomain("client")
	h, _ := srv.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		return buffer.New(0), nil
	}, nil)
	moved := buffer.New(8)
	if err := srv.MoveToBuffer(h, moved); err != nil {
		b.Fatal(err)
	}
	ch, err := cli.AdoptFromBuffer(moved)
	if err != nil {
		b.Fatal(err)
	}
	return cli, ch
}

func BenchmarkDoorCall(b *testing.B) {
	cli, ch := benchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ch, buffer.New(0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCopyDeleteDoor(b *testing.B) {
	cli, ch := benchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h2, err := cli.CopyDoor(ch)
		if err != nil {
			b.Fatal(err)
		}
		if err := cli.DeleteDoor(h2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMoveAdopt(b *testing.B) {
	cli, ch := benchFixture(b)
	buf := buffer.New(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := cli.MoveToBuffer(ch, buf); err != nil {
			b.Fatal(err)
		}
		var err error
		ch, err = cli.AdoptFromBuffer(buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}
