package kernel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
)

// TestConcurrentDupReleaseRevokeCall hammers one door from many
// goroutines mixing Dup/Release churn, calls, and one mid-run revocation
// (the E16 lock-free path under -race). The last release must deliver the
// unreferenced notification exactly once.
func TestConcurrentDupReleaseRevokeCall(t *testing.T) {
	k := New("m1")
	srv := k.NewDomain("server")
	cli := k.NewDomain("client")

	var unrefs atomic.Int32
	fired := make(chan struct{}, 8)
	h, door := srv.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		return nil, nil
	}, func() {
		unrefs.Add(1)
		fired <- struct{}{}
	})
	b := buffer.New(8)
	if err := srv.MoveToBuffer(h, b); err != nil {
		t.Fatal(err)
	}
	ch, err := cli.AdoptFromBuffer(b)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cli.RefOf(ch)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := buffer.New(0)
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					base.Dup().Release()
				case 1:
					r := base.Dup()
					r2 := r.Dup()
					r.Release()
					r2.Release()
				default:
					_, _ = cli.Call(ch, req) // may fail after revoke; both fine
				}
				if g == 0 && i == iters/2 {
					door.Revoke()
				}
			}
		}(g)
	}
	wg.Wait()

	if _, err := cli.Call(ch, buffer.New(0)); err != ErrRevoked {
		t.Fatalf("call after revoke = %v, want ErrRevoked", err)
	}
	if n := unrefs.Load(); n != 0 {
		t.Fatalf("unreferenced fired %d times with identifiers outstanding", n)
	}

	// Drop the remaining references: the notification must fire exactly
	// once, regardless of which release is last.
	base.Release()
	if err := cli.DeleteDoor(ch); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("unreferenced notification never delivered")
	}
	time.Sleep(10 * time.Millisecond) // allow an erroneous second delivery to land
	if n := unrefs.Load(); n != 1 {
		t.Fatalf("unreferenced fired %d times, want exactly 1", n)
	}
	if live := k.LiveDoors(); live != 0 {
		t.Fatalf("live doors after churn = %d, want 0", live)
	}
}

// TestUnrefDispatchSerialized mass-releases many doors at once and
// checks that their unreferenced notifications run one at a time, in
// FIFO order, on the kernel's dispatch goroutine — not as a burst of
// per-door goroutines.
func TestUnrefDispatchSerialized(t *testing.T) {
	k := New("m1")
	d := k.NewDomain("d")

	const doors = 500
	var running, maxRunning, fires atomic.Int32
	var orderMu sync.Mutex
	var order []int
	done := make(chan struct{})
	handles := make([]Handle, doors)
	for i := 0; i < doors; i++ {
		i := i
		handles[i], _ = d.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
			return nil, nil
		}, func() {
			n := running.Add(1)
			for {
				m := maxRunning.Load()
				if n <= m || maxRunning.CompareAndSwap(m, n) {
					break
				}
			}
			orderMu.Lock()
			order = append(order, i)
			orderMu.Unlock()
			running.Add(-1)
			if fires.Add(1) == doors {
				close(done)
			}
		})
	}
	// A mass release, as a lease reclaim would perform.
	for _, h := range handles {
		if err := d.DeleteDoor(h); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d notifications delivered", fires.Load(), doors)
	}
	if m := maxRunning.Load(); m != 1 {
		t.Fatalf("notification concurrency = %d, want 1 (single dispatch goroutine)", m)
	}
	orderMu.Lock()
	defer orderMu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("notification order[%d] = %d, want FIFO", i, v)
		}
	}
}

// TestAllocsDupRelease guards the lock-free refcount round trip: a Dup
// followed by a (non-final) Release must not allocate.
func TestAllocsDupRelease(t *testing.T) {
	k := New("m1")
	d := k.NewDomain("d")
	h, _ := d.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		return nil, nil
	}, nil)
	ref, err := d.RefOf(h)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Release()
	if n := testing.AllocsPerRun(1000, func() {
		ref.Dup().Release()
	}); n != 0 {
		t.Fatalf("Dup+Release allocates %.1f objects/op, want 0", n)
	}
}

// TestAllocsNullCall guards the lock-free call path: a null local door
// call with a reused request buffer must not allocate.
func TestAllocsNullCall(t *testing.T) {
	k := New("m1")
	d := k.NewDomain("d")
	h, _ := d.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		return nil, nil
	}, nil)
	req := buffer.New(0)
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := d.Call(h, req); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("null door call allocates %.1f objects/op, want 0", n)
	}
}

// TestHandleTableGrowthUnderReaders grows the handle table while
// concurrent readers call through existing handles, exercising the
// atomically-published table against installs, deletes and growth.
func TestHandleTableGrowthUnderReaders(t *testing.T) {
	k := New("m1")
	d := k.NewDomain("d")
	h, _ := d.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		return nil, nil
	}, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := buffer.New(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := d.Call(h, req); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		h2, err := d.CopyDoor(h)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := d.DeleteDoor(h2); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
