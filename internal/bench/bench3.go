package bench

import (
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// ---------------------------------------------------------------------
// E14 — invocation-context threading overhead on the minimal-call path.
//
// Every call now carries a kernel.Info (deadline, cancellation channel,
// trace identifier) from the stub through the subcontract and the door to
// the server skeleton, and every subcontract meters itself through
// scstats. E14 measures what that costs on the E1 minimal call:
//
//   - "bare":     the context-free call — E1's singleton echo as it is
//     after the redesign, i.e. the price every existing caller pays for
//     the context plumbing plus metrics.
//   - "deadline": the same call with a fresh deadline computed per call
//     (the realistic per-request pattern: one clock read to set it, plus
//     the fail-fast and door-layer expiry checks).
//   - "full":     deadline + cancellation channel + trace identifier, the
//     heaviest context a caller can attach.
//
// The acceptance budget is ≤30 ns/op of "bare" over the pre-redesign
// figure recorded in scbench_output.txt, and the option variants are
// expected to stay within a few clock reads of "bare".

// E14Call runs the singleton echo with the given context mode.
func E14Call(mode string, payload int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		obj, _ := singleton.Export(w.srv, echoMT, echoSkeleton(), nil)
		remote, err := sctest.Transfer(obj, w.cli, echoMT)
		if err != nil {
			b.Fatal(err)
		}
		p := make([]byte, payload)
		marshal := func(bf *buffer.Buffer) error { bf.WriteBytes(p); return nil }
		unmarshal := func(bf *buffer.Buffer) error { _, err := bf.ReadBytes(); return err }
		cancel := make(chan struct{})
		defer close(cancel)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			switch mode {
			case "bare":
				err = stubs.Call(remote, 0, marshal, unmarshal)
			case "deadline":
				err = stubs.Call(remote, 0, marshal, unmarshal,
					core.WithTimeout(time.Minute))
			case "full":
				err = stubs.Call(remote, 0, marshal, unmarshal,
					core.WithTimeout(time.Minute), core.WithCancel(cancel),
					core.WithTrace(uint64(i)+1))
			default:
				b.Fatalf("unknown mode %q", mode)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
