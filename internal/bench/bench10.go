package bench

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netd"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// ---------------------------------------------------------------------
// E21 — the striped client call engine over loopback TCP. E15's sweep
// pipelines every caller through ONE connection per peer: one writer
// goroutine, one TCP stream, one reply demultiplexer. E21 re-runs the
// same workload with the client dialling stripes ∈ {1, 2, 8} connections
// to the peer (stripes=1 is the E15 configuration on the new future-based
// engine, the within-run baseline) so the costs under test are the
// stripe routing overhead, the per-stripe writer/flush behavior, and —
// in the MixedHoL cell — head-of-line blocking: with one connection a
// 64 KiB bulk frame stalls every small call queued behind it; with a
// dedicated bulk stripe the small-call p99 should collapse.
//
// Reported: ns/op, calls/s, allocs/op as in E15; MixedHoL adds
// p99-ns (small-call tail latency while a bulk caller saturates the
// same peer). Single-CPU hosts flatten the stripes>1 gains: the sweep
// still measures routing overhead, but parallel stream wins need cores.

// e21Setup is e15Setup with a striped client: the server machine is
// stock, the client dials `stripes` connections to it.
func e21Setup(stripes int) func(*testing.B) *core.Object {
	return func(b *testing.B) *core.Object {
		b.Helper()
		ka := kernel.New("e21-server")
		sa, err := netd.Start(ka.NewDomain("server-netd"), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { sa.Close() })
		envA, err := sctest.NewEnv(ka, "server-app", singleton.Register)
		if err != nil {
			b.Fatal(err)
		}
		obj, _ := singleton.Export(envA, echoMT, echoSkeleton(), nil)
		sa.PublishRoot("echo", obj)

		kb := kernel.New("e21-client")
		sb, err := netd.Start(kb.NewDomain("client-netd"), "127.0.0.1:0", netd.WithStripes(stripes))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { sb.Close() })
		envB, err := sctest.NewEnv(kb, "client-app", singleton.Register)
		if err != nil {
			b.Fatal(err)
		}
		remote, err := sb.ImportRootObject(envB, sa.Addr(), "echo", echoMT)
		if err != nil {
			b.Fatal(err)
		}
		return remote
	}
}

// E21Striped echoes payload bytes with the given caller parallelism over
// a client striped `stripes` wide.
func E21Striped(stripes, parallelism, payload int) func(*testing.B) {
	return throughputBench(e21Setup(stripes), parallelism, payload)
}

// E21MixedHoL measures small-call tail latency under bulk interference:
// two background callers stream 64 KiB echoes at the peer for the whole
// run while 8 foreground callers split b.N small (0-byte) calls,
// recording per-call latency. Reported p99-ns is the foreground tail —
// the head-of-line number striping's dedicated bulk stripe exists to
// fix.
func E21MixedHoL(stripes int) func(*testing.B) {
	return func(b *testing.B) {
		remote := e21Setup(stripes)(b)
		small := []byte{}
		bulk := make([]byte, 64<<10)
		if err := callEcho(remote, bulk); err != nil { // warm conns + pools
			b.Fatal(err)
		}
		const (
			bulkCallers  = 2
			smallCallers = 8
		)
		var failed atomic.Value
		stop := make(chan struct{})
		var bg sync.WaitGroup
		for g := 0; g < bulkCallers; g++ {
			bg.Add(1)
			go func() {
				defer bg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := callEcho(remote, bulk); err != nil {
						failed.Store(err)
						return
					}
				}
			}()
		}
		lats := make([][]int64, smallCallers)
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		per, rem := b.N/smallCallers, b.N%smallCallers
		for g := 0; g < smallCallers; g++ {
			n := per
			if g < rem {
				n++
			}
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(g, n int) {
				defer wg.Done()
				l := make([]int64, 0, n)
				for i := 0; i < n; i++ {
					start := time.Now()
					if err := callEcho(remote, small); err != nil {
						failed.Store(err)
						break
					}
					l = append(l, time.Since(start).Nanoseconds())
				}
				lats[g] = l
			}(g, n)
		}
		wg.Wait()
		b.StopTimer()
		close(stop)
		bg.Wait()
		if err := failed.Load(); err != nil {
			b.Fatal(err)
		}
		var all []int64
		for _, l := range lats {
			all = append(all, l...)
		}
		if len(all) > 0 {
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			b.ReportMetric(float64(all[(len(all)-1)*99/100]), "p99-ns")
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "calls/s")
		}
	}
}
