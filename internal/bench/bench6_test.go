package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
	"repro/internal/trace"
)

// e17World exports the echo object and warms the call path once.
func e17World(t testing.TB) *core.Object {
	w := newWorld(t)
	obj, _ := singleton.Export(w.srv, echoMT, echoSkeleton(), nil)
	remote, err := sctest.Transfer(obj, w.cli, echoMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := callEcho(remote, nil); err != nil {
		t.Fatal(err)
	}
	return remote
}

// TestE17UntracedAllocGuard is the acceptance guard for the tracing
// hooks: an untraced call allocates exactly what it allocated before the
// hooks existed (the PR 3 small-call budget), and enabling head sampling
// without being picked adds zero further allocations.
func TestE17UntracedAllocGuard(t *testing.T) {
	remote := e17World(t)
	call := func() {
		if err := callEcho(remote, nil); err != nil {
			t.Fatal(err)
		}
	}
	trace.SetSampling(0)
	off := testing.AllocsPerRun(200, call)
	// 7/op is the E14 echo figure as of the tracing PR, measured identical
	// with and without the hooks compiled in; a rise here means the
	// untraced path started allocating.
	if off > 7 {
		t.Errorf("untraced call allocates %.1f/op, budget 7 (E14 echo figure)", off)
	}
	trace.SetSampling(1 << 30)
	defer trace.SetSampling(0)
	unsampled := testing.AllocsPerRun(200, call)
	if unsampled > off {
		t.Errorf("unsampled call allocates %.1f/op vs %.1f/op untraced; sampling must be alloc-free", unsampled, off)
	}
}

// TestE17SampledAllocGuard bounds the recording cost: a fully traced
// call records its span set into the ring with at most 2 extra
// allocations per span over the untraced call (err.Error() text is the
// only heap escape, and the echo call never errors).
func TestE17SampledAllocGuard(t *testing.T) {
	remote := e17World(t)
	trace.SetSampling(0)
	off := testing.AllocsPerRun(200, func() {
		if err := callEcho(remote, nil); err != nil {
			t.Fatal(err)
		}
	})
	trace.SetSampling(1)
	defer trace.SetSampling(0)
	sampled := testing.AllocsPerRun(200, func() {
		if err := callEcho(remote, nil); err != nil {
			t.Fatal(err)
		}
	})
	// The local echo records 3 spans (invoke, skeleton, plus the door
	// layer's); allow 2 per span on top of the untraced figure.
	if sampled > off+6 {
		t.Errorf("sampled call allocates %.1f/op vs %.1f/op untraced; want ≤ +6", sampled, off)
	}
}

// TestE17UntracedLatencyGuard bounds the hook tax in time: the untraced
// call with sampling enabled-but-not-picked must stay within 30 ns/op of
// the same call with sampling off (the E14 acceptance margin). Both
// sides are measured in-process back to back, three attempts, so machine
// noise has to hold for all three to produce a false failure.
func TestE17UntracedLatencyGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	remote := e17World(t)
	measure := func(every int) float64 {
		trace.SetSampling(every)
		defer trace.SetSampling(0)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := callEcho(remote, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	const margin = 30.0
	var last string
	for attempt := 0; attempt < 3; attempt++ {
		off := measure(0)
		unsampled := measure(1 << 30)
		if unsampled-off <= margin {
			return
		}
		last = time.Duration(int64(unsampled-off)).String() + " over"
	}
	t.Errorf("unsampled call exceeds the untraced call by %s in 3 consecutive runs (budget 30ns)", last)
}
