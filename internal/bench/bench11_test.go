package bench

import (
	"testing"
	"time"

	"repro/internal/scstats"
)

// TestE22AlwaysOnAllocGuard is the acceptance guard for the always-on
// histogram: recording every call must add zero allocations over the
// same call with recording off.
func TestE22AlwaysOnAllocGuard(t *testing.T) {
	remote := e17World(t)
	call := func() {
		if err := callEcho(remote, nil); err != nil {
			t.Fatal(err)
		}
	}
	prev := scstats.Mode()
	defer scstats.SetRecordMode(prev)

	scstats.SetRecordMode(scstats.RecordOff)
	off := testing.AllocsPerRun(200, call)
	scstats.SetRecordMode(scstats.RecordAlways)
	always := testing.AllocsPerRun(200, call)
	if always > off {
		t.Errorf("always-on recording allocates %.1f/op vs %.1f/op off; record must be alloc-free", always, off)
	}
}

// TestE22AlwaysOnLatencyGuard bounds the record cost proper: the
// always-on call must stay within 15 ns/op of the "timed" mode, which
// reads the same two clocks but skips the histogram write — so the
// difference is exactly the striped bucket add plus the exemplar check.
// (The clock reads themselves are priced by the timed-vs-off E22 cells
// and reported honestly in EXPERIMENTS.md; on this hardware the TSC
// pair costs more than the bucket add.) Three attempts, like the E17
// guard, so machine noise has to hold three times to fail falsely.
func TestE22AlwaysOnLatencyGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation makes the striped atomic add a function call; the 15ns budget is a production-build bound")
	}
	remote := e17World(t)
	prev := scstats.Mode()
	defer scstats.SetRecordMode(prev)
	measure := func(m scstats.RecordMode) float64 {
		scstats.SetRecordMode(m)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := callEcho(remote, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	const margin = 15.0
	var last string
	for attempt := 0; attempt < 3; attempt++ {
		timed := measure(scstats.RecordTimed)
		always := measure(scstats.RecordAlways)
		if always-timed <= margin {
			return
		}
		last = time.Duration(int64(always-timed)).String() + " over"
	}
	t.Errorf("always-on record exceeds the timed baseline by %s in 3 consecutive runs (budget 15ns)", last)
}

// TestE22PercentileMetrics: the "always" cell reports window percentiles
// as benchmark metrics (the fields benchjson persists into
// BENCH_trace.json).
func TestE22PercentileMetrics(t *testing.T) {
	r := testing.Benchmark(E22RecordCost("always", 1))
	for _, key := range []string{"p50_ns", "p99_ns", "p999_ns"} {
		v, ok := r.Extra[key]
		if !ok || v <= 0 {
			t.Errorf("E22 always cell: metric %s = %v (ok=%v), want > 0", key, v, ok)
		}
	}
	if r.Extra["p99_ns"] < r.Extra["p50_ns"] {
		t.Errorf("p99 (%v) < p50 (%v)", r.Extra["p99_ns"], r.Extra["p50_ns"])
	}
}
