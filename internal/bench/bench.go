// Package bench implements the experiment bodies for every evaluation
// point in the paper (see DESIGN.md §4 for the experiment index). Each
// exported function takes a *testing.B so the same code runs under
// `go test -bench` (bench_test.go at the repository root) and under
// cmd/scbench, which prints the consolidated paper-style report recorded
// in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/cluster"
	"repro/internal/subcontracts/doorsc"
	"repro/internal/subcontracts/replicon"
	"repro/internal/subcontracts/simplex"
	"repro/internal/subcontracts/singleton"
)

// world is the common two-domain fixture.
type world struct {
	k   *kernel.Kernel
	srv *core.Env
	cli *core.Env
}

func newWorld(b testing.TB) *world {
	b.Helper()
	k := kernel.New("bench")
	srv, err := sctest.NewEnv(k, "server", singleton.Register, simplex.Register,
		cluster.Register, replicon.Register)
	if err != nil {
		b.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", singleton.Register, simplex.Register,
		cluster.Register, replicon.Register)
	if err != nil {
		b.Fatal(err)
	}
	return &world{k: k, srv: srv, cli: cli}
}

// echoSkeleton echoes a byte payload (the "minimal remote call" body).
func echoSkeleton() stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		p, err := args.ReadBytes()
		if err != nil {
			return err
		}
		results.WriteBytes(p)
		return nil
	})
}

// callEcho runs one stub-level echo call.
func callEcho(obj *core.Object, payload []byte) error {
	return stubs.Call(obj, 0,
		func(b *buffer.Buffer) error { b.WriteBytes(payload); return nil },
		func(b *buffer.Buffer) error { _, err := b.ReadBytes(); return err })
}

var echoMT = &core.MTable{Type: "bench.echo", DefaultSC: singleton.SCID, Ops: []string{"echo"}}

func init() {
	core.MustRegisterType("bench.echo", core.ObjectType)
	core.MustRegisterMTable(echoMT)
}

// ---------------------------------------------------------------------
// E1 — §9.3: per-invocation subcontract overhead.
//
// The paper: "Each object invocation always requires an additional two
// indirect procedure calls from the stubs into the client subcontract and
// typically requires a third indirect call from the server-side
// subcontract into the server stubs ... we estimate that these costs add
// less than 2 microseconds (on a SPARCstation 2) to the costs for a
// minimal remote call."

// E1DirectDoorCall is the baseline: a raw kernel door call carrying the
// same bytes, with no stubs and no subcontract.
func E1DirectDoorCall(payload int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		h, _ := w.srv.Domain.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
			p, err := req.ReadBytes()
			if err != nil {
				return nil, err
			}
			reply := buffer.New(len(p) + 8)
			reply.WriteBytes(p)
			return reply, nil
		}, nil)
		moved := buffer.New(8)
		if err := w.srv.Domain.MoveToBuffer(h, moved); err != nil {
			b.Fatal(err)
		}
		ch, err := w.cli.Domain.AdoptFromBuffer(moved)
		if err != nil {
			b.Fatal(err)
		}
		p := make([]byte, payload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := buffer.New(len(p) + 8)
			req.WriteBytes(p)
			reply, err := w.cli.Domain.Call(ch, req)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := reply.ReadBytes(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E1SubcontractCall is the full path: stubs → invoke_preamble → invoke →
// door → server subcontract → skeleton, via the given subcontract flavor
// ("singleton" or "simplex").
func E1SubcontractCall(flavor string, payload int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		var obj *core.Object
		switch flavor {
		case "singleton":
			obj, _ = singleton.Export(w.srv, echoMT, echoSkeleton(), nil)
		case "simplex":
			obj = simplex.Export(w.srv, echoMT, echoSkeleton(), nil)
		default:
			b.Fatalf("unknown flavor %q", flavor)
		}
		remote, err := sctest.Transfer(obj, w.cli, echoMT)
		if err != nil {
			b.Fatal(err)
		}
		p := make([]byte, payload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := callEcho(remote, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E1LocalOptimized measures the §5.2.1 same-address-space fast path: the
// simplex local operations vector runs the skeleton with no kernel door.
func E1LocalOptimized(payload int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		obj := simplex.Export(w.srv, echoMT, echoSkeleton(), nil)
		p := make([]byte, payload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := callEcho(obj, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------
// E2 — §9.3: object-transmission overhead. "Transmitting an object
// requires an extra pair of calls for marshalling and unmarshalling and
// typically also involves the cost of marshalling and unmarshalling a
// subcontract ID."

// E2RawDoorTransfer is the baseline: move a bare door identifier through
// a buffer with no subcontract framing.
func E2RawDoorTransfer(b *testing.B) {
	w := newWorld(b)
	h, _ := w.srv.Domain.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		return buffer.New(0), nil
	}, nil)
	buf := buffer.New(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := w.srv.Domain.CopyToBuffer(h, buf); err != nil {
			b.Fatal(err)
		}
		ch, err := w.cli.Domain.AdoptFromBuffer(buf)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.cli.Domain.DeleteDoor(ch); err != nil {
			b.Fatal(err)
		}
	}
}

// E2ObjectTransfer transmits a whole object through its subcontract:
// marshal_copy on the sender, compatible-subcontract unmarshal on the
// receiver. doors selects the representation width (1 = singleton,
// >1 = replicon with that many replicas).
func E2ObjectTransfer(doors int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		var obj *core.Object
		if doors == 1 {
			obj, _ = singleton.Export(w.srv, echoMT, echoSkeleton(), nil)
		} else {
			g := replicon.NewGroup()
			for i := 0; i < doors; i++ {
				g.Join(w.srv, fmt.Sprintf("r%d", i), echoSkeleton())
			}
			obj = g.Export(w.srv, echoMT)
		}
		buf := buffer.New(128)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := obj.MarshalCopy(buf); err != nil {
				b.Fatal(err)
			}
			got, err := core.Unmarshal(w.cli, echoMT, buf)
			if err != nil {
				b.Fatal(err)
			}
			if err := got.Consume(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------
// E3 — Figures 3/4, §7: the full life cycle of a simplex object.

// E3Lifecycle creates, transmits, invokes, copies, and consumes one
// object per iteration.
func E3Lifecycle(b *testing.B) {
	w := newWorld(b)
	ctr := &sctest.Counter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := simplex.Export(w.srv, sctest.CounterMT, ctr.Skeleton(), nil)
		remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sctest.Add(remote, 1); err != nil {
			b.Fatal(err)
		}
		cp, err := remote.Copy()
		if err != nil {
			b.Fatal(err)
		}
		if err := cp.Consume(); err != nil {
			b.Fatal(err)
		}
		if err := remote.Consume(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E4 — §5: replicon failover.

// E4InvokeAllAlive measures steady-state replicon invocation with n live
// replicas (the client talks to the first).
func E4InvokeAllAlive(n int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		g := replicon.NewGroup()
		ctr := &sctest.Counter{}
		for i := 0; i < n; i++ {
			g.Join(w.srv, fmt.Sprintf("r%d", i), ctr.Skeleton())
		}
		obj := g.Export(w.cli, sctest.CounterMT)
		if _, err := sctest.Get(obj); err != nil { // absorb the first epoch update
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sctest.Get(obj); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E4FailoverFirstCall measures the first call after crash of the k
// replicas the client is talking to, in a group of n: the cost of
// discovering the dead doors, failing over, and adopting the piggybacked
// replica-set update.
func E4FailoverFirstCall(n, crash int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		ctr := &sctest.Counter{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := replicon.NewGroup()
			var members []*replicon.Member
			for j := 0; j < n; j++ {
				members = append(members, g.Join(w.srv, fmt.Sprintf("r%d", j), ctr.Skeleton()))
			}
			obj := g.Export(w.cli, sctest.CounterMT)
			if _, err := sctest.Get(obj); err != nil {
				b.Fatal(err)
			}
			for j := 0; j < crash; j++ {
				members[j].Crash()
			}
			b.StartTimer()
			if _, err := sctest.Get(obj); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := obj.Consume(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// ---------------------------------------------------------------------
// E5 — §8.1: cluster vs simplex resource usage and throughput.

// E5ExportDoors exports n objects with the given flavor and reports the
// kernel doors consumed per object (the cluster subcontract's point).
func E5ExportDoors(flavor string, n int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := newWorld(b)
			before := w.k.LiveDoors()
			switch flavor {
			case "simplex":
				for j := 0; j < n; j++ {
					obj := simplex.Export(w.srv, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
					// Force door creation, as handing the object out would.
					buf := buffer.New(64)
					if err := obj.MarshalCopy(buf); err != nil {
						b.Fatal(err)
					}
					kernel.ReleaseBufferDoors(buf)
				}
			case "cluster":
				s := cluster.NewServer(w.srv)
				for j := 0; j < n; j++ {
					if _, err := s.Export(sctest.CounterMT, (&sctest.Counter{}).Skeleton()); err != nil {
						b.Fatal(err)
					}
				}
			default:
				b.Fatalf("unknown flavor %q", flavor)
			}
			// Kernel door objects — not identifiers — are the resource
			// the cluster subcontract economizes.
			b.ReportMetric(float64(w.k.LiveDoors()-before)/float64(n), "doors/obj")
		}
	}
}

// E5Invoke measures invocation through a cluster object (tag dispatch)
// vs a simplex object.
func E5Invoke(flavor string) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		ctr := &sctest.Counter{}
		var obj *core.Object
		switch flavor {
		case "simplex":
			local := simplex.Export(w.srv, sctest.CounterMT, ctr.Skeleton(), nil)
			var err error
			obj, err = sctest.Transfer(local, w.cli, sctest.CounterMT)
			if err != nil {
				b.Fatal(err)
			}
		case "cluster":
			s := cluster.NewServer(w.srv)
			local, err := s.Export(sctest.CounterMT, ctr.Skeleton())
			if err != nil {
				b.Fatal(err)
			}
			obj, err = sctest.Transfer(local, w.cli, sctest.CounterMT)
			if err != nil {
				b.Fatal(err)
			}
		default:
			b.Fatalf("unknown flavor %q", flavor)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sctest.Get(obj); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------
// E8 — §5.1.5: marshal_copy vs copy-then-marshal.

// E8CopyThenMarshal is the unoptimized sequence the paper describes:
// fabricate a copy, marshal it (deleting it), per transmission.
func E8CopyThenMarshal(doors int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		obj := repliconObject(b, w, doors)
		buf := buffer.New(256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			cp, err := obj.Copy()
			if err != nil {
				b.Fatal(err)
			}
			if err := cp.Marshal(buf); err != nil {
				b.Fatal(err)
			}
			kernel.ReleaseBufferDoors(buf)
		}
	}
}

// E8MarshalCopy is the optimized operation that produces the same effect
// without fabricating the intermediate object.
func E8MarshalCopy(doors int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		obj := repliconObject(b, w, doors)
		buf := buffer.New(256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := obj.MarshalCopy(buf); err != nil {
				b.Fatal(err)
			}
			kernel.ReleaseBufferDoors(buf)
		}
	}
}

// ---------------------------------------------------------------------
// E13 — §9.1: specialized stubs for popular type/subcontract combinations
// (the paper's future direction, implemented in doorsc.FastCall).

// E13Call invokes a singleton-exported echo through the chosen stub path:
// "generic" (stubs.Call, two indirect subcontract calls) or "specialized"
// (doorsc.FastCall, inlined for door-based subcontracts).
func E13Call(path string, payload int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		obj, _ := singleton.Export(w.srv, echoMT, echoSkeleton(), nil)
		remote, err := sctest.Transfer(obj, w.cli, echoMT)
		if err != nil {
			b.Fatal(err)
		}
		p := make([]byte, payload)
		marshal := func(buf *buffer.Buffer) error { buf.WriteBytes(p); return nil }
		unmarshal := func(buf *buffer.Buffer) error { _, err := buf.ReadBytes(); return err }
		b.ReportAllocs()
		b.ResetTimer()
		switch path {
		case "generic":
			for i := 0; i < b.N; i++ {
				if err := stubs.Call(remote, 0, marshal, unmarshal); err != nil {
					b.Fatal(err)
				}
			}
		case "specialized":
			for i := 0; i < b.N; i++ {
				if err := doorsc.FastCall(remote, 0, marshal, unmarshal); err != nil {
					b.Fatal(err)
				}
			}
		default:
			b.Fatalf("unknown path %q", path)
		}
	}
}

func repliconObject(b *testing.B, w *world, doors int) *core.Object {
	b.Helper()
	g := replicon.NewGroup()
	for i := 0; i < doors; i++ {
		g.Join(w.srv, fmt.Sprintf("r%d", i), echoSkeleton())
	}
	return g.Export(w.cli, echoMT)
}
