package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netd"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// ---------------------------------------------------------------------
// E18 — the same-machine transport tier, measured against the E15
// loopback-TCP baseline with the identical workload. The control/frame
// path runs over a unix domain socket and payloads at or above the bulk
// threshold are handed over as mapped regions instead of being copied
// through the frame stream, so the 64 KiB cells measure what the tier
// redesign buys: the wire carries a region identifier, and the payload
// bytes cross the machine once, at grant, instead of being copied
// through both endpoints' socket buffers. The sweep mirrors E15 —
// parallelism ∈ {1, 8, 64} × payload ∈ {0, 1 KiB, 64 KiB} — so every
// cell has a TCP twin in BENCH_netd.json; the 0-byte cells bound what
// the unix control path alone changes for calls too small for the bulk
// tier.

// e18Setup builds two machines joined by the same-machine transport:
// unix-socket listeners, bulk regions negotiated at hello.
func e18Setup(b *testing.B) *core.Object {
	b.Helper()
	ka := kernel.New("e18-server")
	sa, err := netd.Start(ka.NewDomain("server-netd"), "unix:"+b.TempDir()+"/s.sock",
		netd.WithTransport(netd.SameMachine()))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sa.Close() })
	envA, err := sctest.NewEnv(ka, "server-app", singleton.Register)
	if err != nil {
		b.Fatal(err)
	}
	obj, _ := singleton.Export(envA, echoMT, echoSkeleton(), nil)
	sa.PublishRoot("echo", obj)

	kb := kernel.New("e18-client")
	sb, err := netd.Start(kb.NewDomain("client-netd"), "unix:"+b.TempDir()+"/c.sock",
		netd.WithTransport(netd.SameMachine()))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sb.Close() })
	envB, err := sctest.NewEnv(kb, "client-app", singleton.Register)
	if err != nil {
		b.Fatal(err)
	}
	remote, err := sb.ImportRootObject(envB, sa.Addr(), "echo", echoMT)
	if err != nil {
		b.Fatal(err)
	}
	return remote
}

// E18SameMachine is E15Throughput over the same-machine tier.
func E18SameMachine(parallelism, payload int) func(*testing.B) {
	return throughputBench(e18Setup, parallelism, payload)
}
