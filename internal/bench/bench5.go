package bench

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/buffer"
	"repro/internal/cache"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// ---------------------------------------------------------------------
// E16 — the intra-machine half of the throughput story: the null local
// door call (§9.1 prices it) and the cache manager's hit path (§8.2 is
// "deliberately profligate at unmarshal time to win at invoke time", so
// the invoke-time number is the one that must scale). Where E15 measures
// what the netd data path sustains across machines, E16 measures what
// the kernel door path and the cache manager sustain when many threads
// on one machine hammer one door / one cached object: the costs under
// test are the per-door reference-count and revocation-flag
// synchronization, the handle-table lookup, the cache manager's entry
// index, and the per-hit copying and counter updates.
//
// Knobs: parallelism ∈ {1, 8, 64} concurrent callers × workload mix
// (hot: every read is the same key; cold: every read is a fresh key, so
// every call takes the miss path through to the server; inval: hot reads
// with one invalidating write per 64 calls). Reported: ns/op and calls/s.

// e16NullDoor builds the minimal local-call fixture: a door whose target
// does nothing and replies with nothing, its identifier transferred to a
// second domain the way an IPC would.
func e16NullDoor(b *testing.B) (*kernel.Domain, kernel.Handle) {
	b.Helper()
	k := kernel.New("e16")
	srv := k.NewDomain("server")
	cli := k.NewDomain("client")
	h, _ := srv.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		return nil, nil
	}, nil)
	moved := buffer.New(8)
	if err := srv.MoveToBuffer(h, moved); err != nil {
		b.Fatal(err)
	}
	ch, err := cli.AdoptFromBuffer(moved)
	if err != nil {
		b.Fatal(err)
	}
	return cli, ch
}

// e16Split runs fn(n) on parallelism goroutines, splitting b.N between
// them, and reports calls/s (the E15 convention).
func e16Split(b *testing.B, parallelism int, fn func(n int) error) {
	var failed atomic.Value
	b.ResetTimer()
	var wg sync.WaitGroup
	per, rem := b.N/parallelism, b.N%parallelism
	for g := 0; g < parallelism; g++ {
		n := per
		if g < rem {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			if err := fn(n); err != nil {
				failed.Store(err)
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	if err := failed.Load(); err != nil {
		b.Fatal(err)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "calls/s")
	}
}

// E16NullLocalCall measures the null local door call under parallelism
// concurrent callers: handle lookup, door dispatch, and nothing else.
func E16NullLocalCall(parallelism int) func(*testing.B) {
	return func(b *testing.B) {
		cli, ch := e16NullDoor(b)
		if _, err := cli.Call(ch, buffer.New(0)); err != nil { // warm
			b.Fatal(err)
		}
		b.ReportAllocs()
		e16Split(b, parallelism, func(n int) error {
			req := buffer.New(0)
			for i := 0; i < n; i++ {
				if _, err := cli.Call(ch, req); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// E16DupRelease measures the door reference-count round trip (Dup then
// Release, never the last reference) under parallelism goroutines — the
// operation every identifier copy, buffer transfer and proxy fabrication
// performs.
func E16DupRelease(parallelism int) func(*testing.B) {
	return func(b *testing.B) {
		cli, ch := e16NullDoor(b)
		ref, err := cli.RefOf(ch)
		if err != nil {
			b.Fatal(err)
		}
		defer ref.Release()
		b.ReportAllocs()
		e16Split(b, parallelism, func(n int) error {
			for i := 0; i < n; i++ {
				ref.Dup().Release()
			}
			return nil
		})
	}
}

// Operation numbers for the E16 cache fixture's server interface.
const (
	e16OpRead  = 0 // cacheable: [key uint64] → [payload bytes]
	e16OpWrite = 1 // invalidating: [] → []
)

// e16Cache wires a cache door in front of a payload server on one
// machine and returns everything the workloads need.
type e16Cache struct {
	dom   *kernel.Domain
	d2    kernel.Handle
	calls atomic.Uint64 // server-side call count (reads that missed)
}

func e16CacheSetup(b *testing.B, payload int) *e16Cache {
	b.Helper()
	k := kernel.New("e16")
	mgrEnv, err := sctest.NewEnv(k, "cachemgr", singleton.Register)
	if err != nil {
		b.Fatal(err)
	}
	srvEnv, err := sctest.NewEnv(k, "server", singleton.Register)
	if err != nil {
		b.Fatal(err)
	}
	m := cache.NewManager(mgrEnv)

	c := &e16Cache{dom: srvEnv.Domain}
	data := make([]byte, payload)
	d1, _ := srvEnv.Domain.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		op, err := req.ReadUint32()
		if err != nil {
			return nil, err
		}
		switch op {
		case e16OpRead:
			if _, err := req.ReadUint64(); err != nil {
				return nil, err
			}
			c.calls.Add(1)
			reply := buffer.New(len(data) + 8)
			reply.WriteBytes(data)
			return reply, nil
		default: // e16OpWrite
			return buffer.New(0), nil
		}
	}, nil)

	cp, err := m.Object().Copy()
	if err != nil {
		b.Fatal(err)
	}
	mgrObj, err := sctest.Transfer(cp, srvEnv, cache.ManagerMT)
	if err != nil {
		b.Fatal(err)
	}
	c.d2, err = cache.Client{Obj: mgrObj}.Register(d1,
		cache.NewOpSet(e16OpRead), cache.NewOpSet(e16OpWrite))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// read issues one cacheable read for key through the cache door, reusing
// req across calls.
func (c *e16Cache) read(key uint64, req *buffer.Buffer) error {
	req.Reset()
	req.WriteUint32(e16OpRead)
	req.WriteUint64(key)
	reply, err := c.dom.Call(c.d2, req)
	if err != nil {
		return err
	}
	buffer.Put(reply)
	return nil
}

// write issues one invalidating write through the cache door.
func (c *e16Cache) write(req *buffer.Buffer) error {
	req.Reset()
	req.WriteUint32(e16OpWrite)
	reply, err := c.dom.Call(c.d2, req)
	if err != nil {
		return err
	}
	buffer.Put(reply)
	return nil
}

// E16CachedRead measures cached-read throughput through a cache door
// with 1KiB replies under parallelism concurrent callers. mix selects
// the workload: "hot" rereads one key (every timed call is a hit),
// "cold" reads a fresh key every call (every timed call takes the miss
// path to the server and stores the reply), "inval" rereads one key with
// one invalidating write per 64 calls (steady hits punctuated by cache
// clears and re-fills).
func E16CachedRead(parallelism int, mix string) func(*testing.B) {
	return func(b *testing.B) {
		c := e16CacheSetup(b, 1024)
		warm := buffer.New(32)
		if err := c.read(0, warm); err != nil { // warm the hot key + pools
			b.Fatal(err)
		}
		var coldKey atomic.Uint64
		b.ReportAllocs()
		e16Split(b, parallelism, func(n int) error {
			req := buffer.New(32)
			for i := 0; i < n; i++ {
				switch mix {
				case "cold":
					if err := c.read(1+coldKey.Add(1), req); err != nil {
						return err
					}
				case "inval":
					if i%64 == 63 {
						if err := c.write(req); err != nil {
							return err
						}
						continue
					}
					fallthrough
				default: // "hot"
					if err := c.read(0, req); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
}
