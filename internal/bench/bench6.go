package bench

import (
	"testing"

	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// E17 — distributed-tracing overhead on the minimal call.
//
// Every invocation now passes the tracing hooks (trace.MaybeHead at
// NewCall, trace.Begin/End in the subcontract, the skeleton, and the
// door layers). E17 measures what those hooks cost on the E14 singleton
// echo, in three modes:
//
//   - "off":       head sampling disabled (the default). MaybeHead is one
//     atomic load; every Begin/End is a nil-check no-op. This is the tax
//     every untraced caller pays, and the acceptance budget: ≤30 ns and
//     +0 allocs over the E14 "bare" figure.
//   - "unsampled": head sampling enabled at a rate that never picks the
//     measured calls (1 in 2^30). Adds the sampling counter to every
//     call — the realistic production setting between traces.
//   - "sampled":   every call traced (1 in 1). Each call records its full
//     span set (invoke, send-side, skeleton) into the lock-free ring: the
//     worst-case per-call recording cost.
//
// Parallelism ∈ {1, 64} shows whether the span ring's sharded claim
// scales; the recorder must not serialize the E16-style parallel path.

// e17Sampling maps an E17 mode to its trace.SetSampling argument.
func e17Sampling(b *testing.B, mode string) int {
	switch mode {
	case "off":
		return 0
	case "unsampled":
		return 1 << 30
	case "sampled":
		return 1
	default:
		b.Fatalf("unknown E17 mode %q", mode)
		return 0
	}
}

// E17TracedCall runs the E14 singleton echo with the given tracing mode
// under parallelism concurrent callers.
func E17TracedCall(mode string, parallelism int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		obj, _ := singleton.Export(w.srv, echoMT, echoSkeleton(), nil)
		remote, err := sctest.Transfer(obj, w.cli, echoMT)
		if err != nil {
			b.Fatal(err)
		}
		if err := callEcho(remote, nil); err != nil { // warm, and install the recorder lazily
			b.Fatal(err)
		}
		trace.SetSampling(e17Sampling(b, mode))
		defer trace.SetSampling(0)
		b.ReportAllocs()
		e16Split(b, parallelism, func(n int) error {
			for i := 0; i < n; i++ {
				if err := callEcho(remote, nil); err != nil {
					return err
				}
			}
			return nil
		})
	}
}
