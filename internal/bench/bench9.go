package bench

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netd"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// ---------------------------------------------------------------------
// E20 — server-side dispatch engine. E15 measured what the data path
// sustains; E20 measures what the *serve side* does with the frames once
// they arrive. Three execution modes over the same loopback workload:
//
//   - Serve_Spawn: the pre-E20 baseline, one goroutine per incoming
//     call (Dispatch.Disable).
//   - Serve_Queued: the worker pool with the inline path disabled
//     (InlineThreshold < 0) — every call pays one queue hop.
//   - Serve_Engine: the full engine — adaptive inline promotion moves
//     non-blocking handlers onto the reader goroutine, the pool takes
//     the rest.
//
// The sweep is parallelism ∈ {1, 8, 64} at 0-byte payload (the dispatch
// cost dominates exactly when there is no payload to amortize it), plus
// Blocking cells whose handler parks ~100µs (never promoted; the pool's
// 64 workers against the spawn path's unbounded goroutines), plus an
// Overload cell: offered load at 4× the admission bound, reporting
// goodput with the shed-and-retry cost folded in (a shed is a full
// round trip answered O(1) on the reader — the bench proves refusal is
// cheap and goodput holds at the bound).

// e20Setup builds the E15 loopback pair with an explicit server-side
// dispatch configuration and skeleton.
func e20Setup(dc netd.DispatchConfig, skel func() stubs.Skeleton) func(*testing.B) *core.Object {
	return func(b *testing.B) *core.Object {
		b.Helper()
		ka := kernel.New("e20-server")
		sa, err := netd.Start(ka.NewDomain("server-netd"), "127.0.0.1:0", netd.With(netd.Config{Dispatch: dc}))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { sa.Close() })
		envA, err := sctest.NewEnv(ka, "server-app", singleton.Register)
		if err != nil {
			b.Fatal(err)
		}
		obj, _ := singleton.Export(envA, echoMT, skel(), nil)
		sa.PublishRoot("echo", obj)

		kb := kernel.New("e20-client")
		sb, err := netd.Start(kb.NewDomain("client-netd"), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { sb.Close() })
		envB, err := sctest.NewEnv(kb, "client-app", singleton.Register)
		if err != nil {
			b.Fatal(err)
		}
		remote, err := sb.ImportRootObject(envB, sa.Addr(), "echo", echoMT)
		if err != nil {
			b.Fatal(err)
		}
		return remote
	}
}

// e20Workers/e20MaxInflight size the engine cells; zero means the
// engine's defaults. scbench's -dispatch-workers/-dispatch-inflight
// flags set them so an operator can sweep pool sizes from the CLI.
var e20Workers, e20MaxInflight int

// SetE20Dispatch overrides the worker count and admission bound the E20
// engine cells run with (0 = engine default).
func SetE20Dispatch(workers, maxInflight int) {
	e20Workers, e20MaxInflight = workers, maxInflight
}

// E20Serve is the inline-eligible sweep: echo handlers under the three
// dispatch modes. mode is "engine", "queued" or "spawn".
func E20Serve(mode string, parallelism, payload int) func(*testing.B) {
	dc := netd.DispatchConfig{Workers: e20Workers, MaxInflight: e20MaxInflight}
	switch mode {
	case "engine":
		// Defaults: adaptive inline + pool.
	case "queued":
		dc.InlineThreshold = -1 // pool only; every call takes the queue hop
	case "spawn":
		dc = netd.DispatchConfig{Disable: true} // pre-E20 goroutine per call
	}
	return throughputBench(e20Setup(dc, echoSkeleton), parallelism, payload)
}

// blockingSkeleton parks each call for roughly d — long past any inline
// threshold, so the adaptive state never promotes it and every call
// exercises the pool (or, under spawn, its own goroutine).
func blockingSkeleton(d time.Duration) func() stubs.Skeleton {
	return func() stubs.Skeleton {
		return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
			time.Sleep(d)
			p, err := args.ReadBytes()
			if err != nil {
				return err
			}
			results.WriteBytes(p)
			return nil
		})
	}
}

// E20Blocking is the blocking-handler sweep: ~100µs handlers, engine
// (64 workers) vs spawn. The interesting figure is how close the
// fixed-width pool stays to the unbounded-goroutine baseline while
// holding the server's concurrency at 64.
func E20Blocking(mode string, parallelism int) func(*testing.B) {
	dc := netd.DispatchConfig{Workers: 64}
	if mode == "spawn" {
		dc = netd.DispatchConfig{Disable: true}
	}
	return throughputBench(e20Setup(dc, blockingSkeleton(100*time.Microsecond)), parallelism, 0)
}

// E20Overload offers load at `factor` times the admission bound and
// reports goodput plus the shed rate. Shed calls retry immediately, so
// every worker is always either in a successful call or bouncing off
// admission — the pathological client the bound exists to survive.
func E20Overload(factor int) func(*testing.B) {
	const bound = 64
	return func(b *testing.B) {
		setup := e20Setup(netd.DispatchConfig{
			Workers:         8,
			MaxInflight:     bound,
			MaxPerPeer:      -1, // the single benchmark conn IS the load
			InlineThreshold: -1, // force every admitted call through the queue
		}, blockingSkeleton(20*time.Microsecond))
		remote := setup(b)
		if err := callEcho(remote, nil); err != nil {
			b.Fatal(err)
		}
		callers := bound * factor
		var sheds atomic.Int64
		var failed atomic.Value
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		per, rem := b.N/callers, b.N%callers
		for g := 0; g < callers; g++ {
			n := per
			if g < rem {
				n++
			}
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					for {
						err := callEcho(remote, nil)
						if err == nil {
							break
						}
						if errors.Is(err, kernel.ErrOverload) {
							sheds.Add(1)
							continue // immediate retry: worst-case pressure
						}
						failed.Store(err)
						return
					}
				}
			}(n)
		}
		wg.Wait()
		b.StopTimer()
		if err := failed.Load(); err != nil {
			b.Fatal(err)
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "calls/s")
			b.ReportMetric(float64(sheds.Load())/secs, "sheds/s")
		}
	}
}
