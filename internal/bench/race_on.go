//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in, so
// nanosecond-margin timing guards can skip: race instrumentation turns
// the striped atomic adds being priced into function calls, which says
// nothing about the production-build budget.
const raceEnabled = true
