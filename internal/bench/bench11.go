package bench

import (
	"testing"

	"repro/internal/scstats"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// ---------------------------------------------------------------------
// E22 — always-on latency recording vs the v1 sampled path.
//
// The latency plane v2 records every call into the sharded HDR histogram
// (scstats.RecordAlways), where v1 timed 1 call in 8. E22 prices that
// change on the E14/E17 singleton echo, in four record modes:
//
//   - "off":      Begin returns 0, EndCall is a branch. The floor — what
//     the call path costs with metrics compiled in but disabled.
//   - "sampled8": the v1 behaviour, one clock pair every 8th call.
//   - "timed":    both clocks read on every call but the histogram write
//     skipped — isolates the clock cost from the record cost, and is the
//     baseline the acceptance guard diffs "always" against (record
//     proper must be ≤ 15 ns, 0 allocs).
//   - "always":   the v2 default — clock pair + striped bucket add +
//     exemplar check on every call.
//
// Parallelism ∈ {1, 64} shows the striped shards absorbing concurrent
// recording; a shared hot counter would fail the P64 cell, not the P1.
//
// The "always" cells also report the window's p50/p99/p999 (from the
// singleton subcontract's histogram delta over the measured calls) as
// benchmark metrics, so BENCH_trace.json records percentile fields.

// e22Mode maps an E22 cell name to its record mode.
func e22Mode(b *testing.B, mode string) scstats.RecordMode {
	switch mode {
	case "off":
		return scstats.RecordOff
	case "sampled8":
		return scstats.RecordSampled8
	case "timed":
		return scstats.RecordTimed
	case "always":
		return scstats.RecordAlways
	default:
		b.Fatalf("unknown E22 mode %q", mode)
		return scstats.RecordAlways
	}
}

// e22SingletonLat snapshots the singleton subcontract's merged latency
// histogram (the one the echo call records into).
func e22SingletonLat() scstats.HistSnapshot {
	for _, sn := range scstats.AllSnapshots() {
		if sn.Name == "singleton" {
			return sn.Lat
		}
	}
	return scstats.HistSnapshot{}
}

// E22RecordCost runs the E14 singleton echo with the given scstats
// record mode under parallelism concurrent callers.
func E22RecordCost(mode string, parallelism int) func(*testing.B) {
	return func(b *testing.B) {
		w := newWorld(b)
		obj, _ := singleton.Export(w.srv, echoMT, echoSkeleton(), nil)
		remote, err := sctest.Transfer(obj, w.cli, echoMT)
		if err != nil {
			b.Fatal(err)
		}
		if err := callEcho(remote, nil); err != nil { // warm the path
			b.Fatal(err)
		}
		prev := scstats.Mode()
		scstats.SetRecordMode(e22Mode(b, mode))
		defer scstats.SetRecordMode(prev)
		before := e22SingletonLat()
		b.ReportAllocs()
		e16Split(b, parallelism, func(n int) error {
			for i := 0; i < n; i++ {
				if err := callEcho(remote, nil); err != nil {
					return err
				}
			}
			return nil
		})
		if mode == "always" {
			// The measured calls' own percentiles, from the histogram the
			// cell just exercised — the plane observing itself.
			win := e22SingletonLat().Sub(before)
			if win.Count > 0 {
				b.ReportMetric(float64(win.Quantile(0.50)), "p50_ns")
				b.ReportMetric(float64(win.Quantile(0.99)), "p99_ns")
				b.ReportMetric(float64(win.Quantile(0.999)), "p999_ns")
			}
		}
	}
}
