package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/sctest"
)

// ---------------------------------------------------------------------
// E19 — durable write throughput through the WAL group committer. A
// write is acknowledged only after its log record is fsynced, so the
// cost under test is how well the committer amortizes that fsync:
// concurrent writers apply in memory, enqueue their records, and one
// committer goroutine drains the queue — a short linger window plus a
// MaxBatch cap decide how many acknowledgments each fsync carries.
//
// Knobs: parallelism ∈ {1, 64} concurrent writers × group-commit batch
// size ∈ {1, 8, 64, 256}. Writers hit distinct files so the sweep
// measures commit batching, not file-lock contention. The in-memory
// cells (no WAL) bound what durability costs at all; the P1 cell shows
// the floor — a lone writer pays a full linger + fsync per write
// regardless of batch size — and the P64 × batch sweep shows group
// commit buying back that cost. `make bench` records this sweep in
// BENCH_wal.json.

// e19Setup builds a file service over a WAL-backed store (batch > 0) or
// a plain in-memory store (batch == 0) and returns a local client-side
// file_system wrapper.
func e19Setup(b *testing.B, batch int) filesys.FileSystem {
	b.Helper()
	k := kernel.New("e19")
	env, err := sctest.NewEnv(k, "e19-files", filesys.RegisterAll)
	if err != nil {
		b.Fatal(err)
	}
	store := filesys.NewStore()
	if batch > 0 {
		wal, err := filesys.OpenWAL(b.TempDir(), store, filesys.WALOptions{MaxBatch: batch})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			if err := wal.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
	svc := filesys.NewServiceWithStore(env, store)
	return filesys.FileSystem{Obj: svc.Object()}
}

// E19DurableWrite sweeps 1 KiB writes through the group committer with
// the given fsync batch cap. batch == 0 drops the WAL entirely: the
// in-memory baseline every durable cell is read against.
func E19DurableWrite(parallelism, batch int) func(*testing.B) {
	return func(b *testing.B) {
		fs := e19Setup(b, batch)
		payload := make([]byte, 1024)
		files := make([]filesys.File, parallelism)
		for i := range files {
			f, err := fs.Create(fmt.Sprintf("f%d", i))
			if err != nil {
				b.Fatal(err)
			}
			files[i] = f
		}
		var failed atomic.Value
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		per, rem := b.N/parallelism, b.N%parallelism
		for g := 0; g < parallelism; g++ {
			n := per
			if g < rem {
				n++
			}
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(f filesys.File, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if _, err := f.Write(0, payload); err != nil {
						failed.Store(err)
						return
					}
				}
			}(files[g], n)
		}
		wg.Wait()
		b.StopTimer()
		if err := failed.Load(); err != nil {
			b.Fatal(err)
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "writes/s")
		}
	}
}
