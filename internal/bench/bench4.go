package bench

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netd"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// ---------------------------------------------------------------------
// E15 — pipelined throughput of the network door servers over loopback
// TCP. Where E1/E14 measure the latency of one call on an idle system,
// E15 measures what the netd data path sustains when many callers
// pipeline calls over the single pooled connection to a peer: the costs
// under test are the per-call allocations, the per-frame write syscalls
// (coalesced into batched flushes by the connection's writer goroutine),
// and the contention on the request/reply demultiplexer.
//
// Knobs: parallelism ∈ {1, 8, 64} concurrent callers × payload ∈
// {0, 1 KiB, 64 KiB} echoed bytes. Reported: ns/op (per call), calls/s,
// MB/s (for the payload sweeps), and allocs/op across both machines —
// the benchmark runs client and server in one process, so allocs/op is
// the whole-system figure, not the client hot path alone (the strict
// client-path bound is enforced by TestAllocs* in internal/netd).

// e15Setup builds two machines connected over loopback TCP and returns a
// client-side proxy for an echo object exported on the server machine.
func e15Setup(b *testing.B) *core.Object {
	b.Helper()
	ka := kernel.New("e15-server")
	sa, err := netd.Start(ka.NewDomain("server-netd"), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sa.Close() })
	envA, err := sctest.NewEnv(ka, "server-app", singleton.Register)
	if err != nil {
		b.Fatal(err)
	}
	obj, _ := singleton.Export(envA, echoMT, echoSkeleton(), nil)
	sa.PublishRoot("echo", obj)

	kb := kernel.New("e15-client")
	sb, err := netd.Start(kb.NewDomain("client-netd"), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sb.Close() })
	envB, err := sctest.NewEnv(kb, "client-app", singleton.Register)
	if err != nil {
		b.Fatal(err)
	}
	remote, err := sb.ImportRootObject(envB, sa.Addr(), "echo", echoMT)
	if err != nil {
		b.Fatal(err)
	}
	return remote
}

// E15Throughput echoes payload bytes through the wire with the given
// number of concurrent callers, splitting b.N across them.
func E15Throughput(parallelism, payload int) func(*testing.B) {
	return throughputBench(e15Setup, parallelism, payload)
}

// throughputBench is the body shared by the E15 (loopback TCP) and E18
// (same-machine tier) sweeps: echo payload bytes with parallelism
// concurrent callers, splitting b.N across them. setup builds the pair
// of machines and returns the client-side proxy.
func throughputBench(setup func(*testing.B) *core.Object, parallelism, payload int) func(*testing.B) {
	return func(b *testing.B) {
		remote := setup(b)
		p := make([]byte, payload)
		if err := callEcho(remote, p); err != nil { // warm the conn + pools
			b.Fatal(err)
		}
		if payload > 0 {
			b.SetBytes(int64(payload))
		}
		var failed atomic.Value
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		per, rem := b.N/parallelism, b.N%parallelism
		for g := 0; g < parallelism; g++ {
			n := per
			if g < rem {
				n++
			}
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if err := callEcho(remote, p); err != nil {
						failed.Store(err)
						return
					}
				}
			}(n)
		}
		wg.Wait()
		b.StopTimer()
		if err := failed.Load(); err != nil {
			b.Fatal(err)
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "calls/s")
		}
	}
}
