package bench

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/filesys"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netd"
	"repro/internal/sctest"
	"repro/internal/subcontracts/caching"
	"repro/internal/subcontracts/reconnectable"
	"repro/internal/subcontracts/replicon"
	"repro/internal/subcontracts/shm"
	"repro/internal/subcontracts/singleton"
)

// netMachine is one simulated host with a network door server, a naming
// server, and a cache manager (the E6/E7 fixtures).
type netMachine struct {
	k   *kernel.Kernel
	net *netd.Server
	ns  *naming.Server
	mgr *cache.Manager
}

func newNetMachine(b *testing.B, name string) *netMachine {
	b.Helper()
	k := kernel.New(name)
	srv, err := netd.Start(k.NewDomain(name+"-netd"), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	m := &netMachine{k: k, net: srv}
	m.ns = naming.NewServer(m.env(b, name+"-naming"))
	m.mgr = cache.NewManager(m.env(b, name+"-cachemgr"))
	cp, err := m.mgr.Object().Copy()
	if err != nil {
		b.Fatal(err)
	}
	h, err := m.ns.Handle()
	if err != nil {
		b.Fatal(err)
	}
	if err := h.Bind("cachemgr", cp, false); err != nil {
		b.Fatal(err)
	}
	return m
}

func (m *netMachine) env(b *testing.B, name string) *core.Env {
	b.Helper()
	e, err := sctest.NewEnv(m.k, name, filesys.RegisterAll)
	if err != nil {
		b.Fatal(err)
	}
	if m.ns != nil {
		cp, err := m.ns.Object().Copy()
		if err != nil {
			b.Fatal(err)
		}
		ctx, err := sctest.Transfer(cp, e, naming.ContextMT)
		if err != nil {
			b.Fatal(err)
		}
		e.Set(caching.LocalContextVar, ctx)
		cp2, err := m.ns.Object().Copy()
		if err != nil {
			b.Fatal(err)
		}
		ctx2, err := sctest.Transfer(cp2, e, naming.ContextMT)
		if err != nil {
			b.Fatal(err)
		}
		e.Set(reconnectable.ContextVar, ctx2)
		e.Set(reconnectable.PolicyVar, &reconnectable.Policy{MaxAttempts: 100, Backoff: time.Millisecond})
	}
	return e
}

// ---------------------------------------------------------------------
// E6 — §8.2, Figure 5: the caching subcontract's win. Reads served by the
// machine-local cache manager vs reads crossing the (loopback-TCP) wire
// every time.

// e6Setup serves one file from machine A to a client env on machine B,
// returning the client-side file.
func e6Setup(b *testing.B, flavor string) filesys.File {
	b.Helper()
	a := newNetMachine(b, "A")
	bb := newNetMachine(b, "B")

	var svc *filesys.Service
	switch flavor {
	case "caching":
		svc = filesys.NewCachingService(a.env(b, "fileserver"), "cachemgr")
	case "plain":
		svc = filesys.NewService(a.env(b, "fileserver"))
	default:
		b.Fatalf("unknown flavor %q", flavor)
	}
	a.net.PublishRoot("fs", svc.Object())

	cli := bb.env(b, "client")
	fsObj, err := bb.net.ImportRootObject(cli, a.net.Addr(), "fs", filesys.FileSystemMT)
	if err != nil {
		b.Fatal(err)
	}
	fs := filesys.FileSystem{Obj: fsObj}
	f, err := fs.Create("bench")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Write(0, make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	return f
}

// E6Read benchmarks repeated 1KiB reads of a remote file. With the
// caching flavor every read after the first is a local cache hit; with
// the plain flavor every read crosses the wire.
func E6Read(flavor string) func(*testing.B) {
	return func(b *testing.B) {
		f := e6Setup(b, flavor)
		if _, err := f.Read(0, 1024); err != nil { // warm
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Read(0, 1024); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E6Mixed benchmarks a read-heavy workload (one write per 19 reads),
// exercising invalidation.
func E6Mixed(flavor string) func(*testing.B) {
	return func(b *testing.B) {
		f := e6Setup(b, flavor)
		payload := make([]byte, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%20 == 19 {
				if _, err := f.Write(0, payload); err != nil {
					b.Fatal(err)
				}
				continue
			}
			if _, err := f.Read(0, 1024); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------
// E7 — §8.3: reconnectable recovery latency: the first call after a
// server crash+restart pays resolution and retry.

// E7ReconnectFirstCall measures that first call.
func E7ReconnectFirstCall(b *testing.B) {
	m := newNetMachine(b, "m")
	srvEnv := m.env(b, "server")
	h, err := m.ns.Handle()
	if err != nil {
		b.Fatal(err)
	}
	ctr := &sctest.Counter{}
	obj, door, err := reconnectable.Export(srvEnv, sctest.CounterMT, ctr.Skeleton(), "svc", h)
	if err != nil {
		b.Fatal(err)
	}
	cli := m.env(b, "client")
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		door.Revoke()
		_, door, err = reconnectable.Export(srvEnv, sctest.CounterMT, ctr.Skeleton(), "svc", h)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sctest.Get(remote); err != nil {
			b.Fatal(err)
		}
	}
}

// E7SteadyState is the baseline: the same object with no crash.
func E7SteadyState(b *testing.B) {
	m := newNetMachine(b, "m")
	srvEnv := m.env(b, "server")
	h, err := m.ns.Handle()
	if err != nil {
		b.Fatal(err)
	}
	ctr := &sctest.Counter{}
	obj, _, err := reconnectable.Export(srvEnv, sctest.CounterMT, ctr.Skeleton(), "svc", h)
	if err != nil {
		b.Fatal(err)
	}
	cli := m.env(b, "client")
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sctest.Get(remote); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E9 — §5.1.4: the invoke_preamble shared-buffer optimization.

// E9Echo benchmarks an echo of the given payload through a shm
// subcontract in the given mode (shm.Direct or shm.CopyAfter).
func E9Echo(mode shm.Mode, payload int) func(*testing.B) {
	return func(b *testing.B) {
		k := kernel.New("bench")
		sc := shm.New(mode)
		srv, err := sctest.NewEnv(k, "server", sc.Register)
		if err != nil {
			b.Fatal(err)
		}
		cli, err := sctest.NewEnv(k, "client", sc.Register)
		if err != nil {
			b.Fatal(err)
		}
		obj, _ := sc.Export(srv, echoMT, echoSkeleton(), nil)
		remote, err := sctest.Transfer(obj, cli, echoMT)
		if err != nil {
			b.Fatal(err)
		}
		p := make([]byte, payload)
		b.SetBytes(int64(payload))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := callEcho(remote, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------
// E10 — §6.1/§6.2: compatible-subcontract dispatch and dynamic discovery.

// e10Template builds a replicon object and the shared library store.
func e10Template(b *testing.B) (*core.Object, *core.LibraryStore, *kernel.Kernel) {
	b.Helper()
	k := kernel.New("bench")
	g := replicon.NewGroup()
	for i := 0; i < 2; i++ {
		env, err := sctest.NewEnv(k, "replica", replicon.Register)
		if err != nil {
			b.Fatal(err)
		}
		g.Join(env, fmt.Sprintf("r%d", i), (&sctest.Counter{}).Skeleton())
	}
	exp, err := sctest.NewEnv(k, "exporter", replicon.Register)
	if err != nil {
		b.Fatal(err)
	}
	store := core.NewLibraryStore()
	store.Install("/usr/lib/subcontracts", replicon.LibraryName, replicon.Register)
	return g.Export(exp, sctest.CounterMT), store, k
}

// E10DiscoveryCold measures the first unmarshal of an unknown subcontract
// in a freshly linked domain: registry miss → name lookup → simulated
// dynamic link → unmarshal.
func E10DiscoveryCold(b *testing.B) {
	obj, store, k := e10Template(b)
	names := core.NameServiceFunc(func(core.ID) (string, error) { return replicon.LibraryName, nil })
	buf := buffer.New(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		buf.Reset()
		if err := obj.MarshalCopy(buf); err != nil {
			b.Fatal(err)
		}
		env, err := sctest.NewEnv(k, "legacy", singleton.Register)
		if err != nil {
			b.Fatal(err)
		}
		env.Registry.SetLoader(&core.Loader{Names: names, Store: store, SearchPath: []string{"/usr/lib/subcontracts"}})
		b.StartTimer()
		got, err := core.Unmarshal(env, sctest.CounterMT, buf)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := got.Consume(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// E10DiscoveryWarm is the same unmarshal once the subcontract is linked.
func E10DiscoveryWarm(b *testing.B) {
	obj, _, k := e10Template(b)
	env, err := sctest.NewEnv(k, "warm", singleton.Register, replicon.Register)
	if err != nil {
		b.Fatal(err)
	}
	buf := buffer.New(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := obj.MarshalCopy(buf); err != nil {
			b.Fatal(err)
		}
		got, err := core.Unmarshal(env, sctest.CounterMT, buf)
		if err != nil {
			b.Fatal(err)
		}
		if err := got.Consume(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E12 — §9.3: wire-size overhead of the subcontract header per
// transmitted object.

// WireSizes reports (header bytes, total bytes) for a marshalled
// singleton object, computed against the raw door-transfer baseline.
func WireSizes() (headerBytes, singletonBytes, rawBytes int, err error) {
	k := kernel.New("wire")
	srv := core.NewEnv(k.NewDomain("srv"))
	if err := singleton.Register(srv.Registry); err != nil {
		return 0, 0, 0, err
	}
	obj, _ := singleton.Export(srv, echoMT, echoSkeleton(), nil)

	objBuf := buffer.New(64)
	if err := obj.MarshalCopy(objBuf); err != nil {
		return 0, 0, 0, err
	}
	defer kernel.ReleaseBufferDoors(objBuf)

	rawBuf := buffer.New(64)
	h, _ := srv.Domain.CreateDoor(func(*buffer.Buffer) (*buffer.Buffer, error) { return buffer.New(0), nil }, nil)
	if err := srv.Domain.MoveToBuffer(h, rawBuf); err != nil {
		return 0, 0, 0, err
	}
	defer kernel.ReleaseBufferDoors(rawBuf)

	return objBuf.Size() - rawBuf.Size(), objBuf.Size(), rawBuf.Size(), nil
}
