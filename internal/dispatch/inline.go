package dispatch

import (
	"sync/atomic"
	"time"
)

// PromoteStreak is how many consecutive sub-threshold completions a
// handler must show before it is promoted to the inline fast path. One
// slow completion demotes it again, so a handler that turns blocking
// stalls at most one reader batch before losing its promotion.
const PromoteStreak = 8

// InlineState is the adaptive inline-eligibility tracker for one
// exported door. The netd serve path consults it per call: a promoted
// door's calls execute directly on the connection's reader goroutine
// (zero spawn, zero queueing) under the reader's per-batch budget;
// everything else goes through the worker pool, where completion times
// feed back into the state.
//
// The whole state packs into one atomic word — bit 0 is the promotion
// flag, the rest a streak counter — so the per-call read is one load and
// the common promoted-case observation is a no-op.
//
// The zero value is a valid "unknown, not promoted" state. A nil
// *InlineState is never eligible and ignores observations.
type InlineState struct {
	v atomic.Uint32
}

const inlinePromoted = 1

// Promote marks the door inline-eligible immediately — the explicit
// registration path (kernel door inline hints) for handlers known to be
// non-blocking. Adaptive demotion still applies if they misbehave.
func (st *InlineState) Promote() {
	if st != nil {
		st.v.Store(inlinePromoted)
	}
}

// Eligible reports whether the door's calls may run on the reader.
func (st *InlineState) Eligible() bool {
	return st != nil && st.v.Load()&inlinePromoted != 0
}

// Observe feeds one completion time back: a completion over the
// threshold resets the state (demoting a promoted door — it just proved
// it can block the reader); a fast completion extends the streak and
// promotes after PromoteStreak in a row.
func (st *InlineState) Observe(d, threshold time.Duration) {
	if st == nil {
		return
	}
	for {
		old := st.v.Load()
		var next uint32
		switch {
		case d > threshold:
			if old == 0 {
				return
			}
			next = 0
		case old&inlinePromoted != 0:
			return
		default:
			streak := old>>1 + 1
			if streak >= PromoteStreak {
				next = inlinePromoted
			} else {
				next = streak << 1
			}
		}
		if st.v.CompareAndSwap(old, next) {
			return
		}
	}
}
