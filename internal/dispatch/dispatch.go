// Package dispatch is the server-side execution engine (E20): the one
// substrate under the netd serve path, the priority subcontract's
// executor and the kernel's unreferenced-notification drain.
//
// Before it, every incoming network call span a goroutine
// (`go s.handleCall(...)`) and the priority executor serialized all
// submissions through a single mutex + heap + sync.Cond. Under the P64
// bench sweeps the server burnt its throughput win on goroutine churn and
// scheduler wakeups, and under overload it grew goroutines without bound.
// The engine replaces both with a fixed worker pool over per-shard
// priority queues:
//
//   - Sharded run queues. Each worker owns one shard (a small
//     priority heap: highest priority first, FIFO within a level, the
//     exact order the old sched executor gave). Submissions distribute
//     round-robin, so the old global heap lock becomes w independent
//     locks each shared by ~1/w of the traffic.
//   - Work stealing. A worker whose own shard is empty scans the
//     others and steals their top item, so a burst landing on one shard
//     never idles the rest of the pool.
//   - Futex-style parking. An idle worker publishes itself in a
//     64-bit parked bitmask and blocks on its own capacity-1 channel.
//     A submitter wakes exactly one parked worker with one atomic CAS
//     plus one non-blocking channel send — no sync.Cond, no broadcast
//     storms, and no lost wakeups (the worker re-checks for queued work
//     after setting its bit; the submitter enqueues before reading the
//     mask; sequential consistency of Go atomics guarantees one side
//     sees the other).
//   - Bounded admission. An optional per-shard queue bound turns
//     saturation into an immediate ErrSaturated instead of unbounded
//     memory; callers (netd) translate that into a retryable overload
//     reply. With no bound (the sched executor's configuration) Submit
//     never sheds.
//
// Close drains: queued work runs to completion before workers exit, so
// an Executor built on the engine keeps the old drain-on-Close contract.
package dispatch

import (
	"container/heap"
	"errors"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/scstats"
)

var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("dispatch: engine closed")
	// ErrSaturated is returned by Submit when every shard's run queue is
	// at its configured bound: the engine is refusing load, not queueing
	// to death. The netd serve path converts it into a retryable
	// overload reply.
	ErrSaturated = errors.New("dispatch: run queues saturated")
)

// The engine's operational gauges, exposed through the scstats registry
// (and from there the telemetry plane's /metrics). inline_hits and shed
// are counted by the callers that make those decisions (the netd serve
// path) via NoteInline/NoteShed so every engine shares one exposition.
var (
	gInlineHits  = scstats.GaugeFor("dispatch.inline_hits")
	gQueued      = scstats.GaugeFor("dispatch.queued")
	gStolen      = scstats.GaugeFor("dispatch.stolen")
	gShed        = scstats.GaugeFor("dispatch.shed")
	gWorkersLive = scstats.GaugeFor("dispatch.workers_live")

	// hQueueDelay measures Submit→poll latency — how long admitted work
	// sat in a run queue before a worker picked it up. The inline fast
	// path never touches it, so the histogram prices exactly the queued
	// slow path. Exposed as dispatch_queue_delay_seconds.
	hQueueDelay = scstats.HistFor("dispatch.queue_delay")
)

// NoteInline records one call served on the inline fast path (executed
// directly on a reader goroutine, never entering the pool).
func NoteInline() { gInlineHits.Add(1) }

// NoteShed records one call refused at admission and answered with a
// retryable overload error.
func NoteShed() { gShed.Add(1) }

// maxWorkers bounds the pool so a worker fits one bit of the parked
// bitmask. 64 workers of mostly-CPU work is far past the point where
// more parallelism helps this engine's workloads.
const maxWorkers = 64

// Config sizes an engine. The zero value is usable: GOMAXPROCS workers,
// unbounded queues.
type Config struct {
	// Workers is the number of pool workers (and shards). 0 means
	// GOMAXPROCS; the value is clamped to [1, 64].
	Workers int
	// QueueLen bounds each shard's run queue. When every shard is at its
	// bound Submit returns ErrSaturated. 0 means unbounded (the sched
	// executor's semantics: Submit never sheds).
	QueueLen int
}

// item is one queued unit of work.
type item struct {
	prio int32
	seq  uint64
	at   int64 // scstats tick at Submit, for the queue-delay histogram
	run  func()
}

// pq implements heap.Interface: highest priority first, FIFO within a
// priority level (seq is engine-wide, so a single-shard engine preserves
// exact submission order per level).
type pq []item

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio > q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(item)) }
func (q *pq) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// shard is one worker's run queue. The padding keeps neighbouring
// shards' locks off one cache line.
type shard struct {
	mu sync.Mutex
	q  pq
	_  [40]byte
}

// Engine is a sharded worker pool. All methods are safe for concurrent
// use.
type Engine struct {
	shards []shard
	wake   []chan struct{} // per-worker, capacity 1

	parked  atomic.Uint64 // bitmask: worker i is blocked (or about to block)
	queued  atomic.Int64  // items sitting in shards (not running)
	seq     atomic.Uint64 // submission order within a priority level
	rr      atomic.Uint64 // round-robin shard cursor
	stopped atomic.Bool   // gates Submit; workers exit via stop

	queueLen int
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New starts an engine.
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > maxWorkers {
		w = maxWorkers
	}
	e := &Engine{
		shards:   make([]shard, w),
		wake:     make([]chan struct{}, w),
		queueLen: cfg.QueueLen,
		stop:     make(chan struct{}),
	}
	for i := range e.wake {
		e.wake[i] = make(chan struct{}, 1)
	}
	gWorkersLive.Add(int64(w))
	e.wg.Add(w)
	for i := 0; i < w; i++ {
		go e.worker(i)
	}
	return e
}

// Workers returns the pool width.
func (e *Engine) Workers() int { return len(e.shards) }

// Queued reports the number of items waiting in run queues (not
// running).
func (e *Engine) Queued() int { return int(e.queued.Load()) }

// Submit enqueues fn at the given priority. It returns ErrClosed after
// Close and ErrSaturated when a queue bound is configured and every
// shard is full; fn is not retained in either case.
func (e *Engine) Submit(prio int32, fn func()) error {
	seq := e.seq.Add(1)
	n := len(e.shards)
	start := int((e.rr.Add(1) - 1) % uint64(n))
	for k := 0; k < n; k++ {
		si := start + k
		if si >= n {
			si -= n
		}
		sh := &e.shards[si]
		sh.mu.Lock()
		// The closed check lives under the shard lock so Close can
		// barrier on every shard and know no further pushes follow.
		if e.stopped.Load() {
			sh.mu.Unlock()
			return ErrClosed
		}
		if e.queueLen > 0 && len(sh.q) >= e.queueLen {
			sh.mu.Unlock()
			continue // spill to the next shard before shedding
		}
		heap.Push(&sh.q, item{prio: prio, seq: seq, at: hQueueDelay.Start(), run: fn})
		e.queued.Add(1)
		sh.mu.Unlock()
		gQueued.Add(1)
		e.wakeOne(si)
		return nil
	}
	return ErrSaturated
}

// poll takes the highest-priority item from worker i's own shard, or
// steals one from another shard when it is empty.
func (e *Engine) poll(i int) (func(), bool) {
	n := len(e.shards)
	for k := 0; k < n; k++ {
		si := i + k
		if si >= n {
			si -= n
		}
		sh := &e.shards[si]
		sh.mu.Lock()
		if len(sh.q) == 0 {
			sh.mu.Unlock()
			continue
		}
		it := heap.Pop(&sh.q).(item)
		e.queued.Add(-1)
		sh.mu.Unlock()
		gQueued.Add(-1)
		hQueueDelay.ObserveSince(it.at, 0)
		if k > 0 {
			gStolen.Add(1)
		}
		return it.run, true
	}
	return nil, false
}

// wakeOne claims one parked worker (preferring the one that owns shard
// prefer) and hands it a token. A worker's bit is cleared by exactly one
// waker, and a cleared bit always has a token behind it, so wakeups are
// never lost.
func (e *Engine) wakeOne(prefer int) {
	for {
		m := e.parked.Load()
		if m == 0 {
			return // everyone is busy; a worker will poll again when free
		}
		i := prefer
		if m&(uint64(1)<<uint(i)) == 0 {
			i = bits.TrailingZeros64(m)
		}
		bit := uint64(1) << uint(i)
		if e.parked.CompareAndSwap(m, m&^bit) {
			select {
			case e.wake[i] <- struct{}{}:
			default: // a stale token is already pending; it serves
			}
			return
		}
	}
}

// clearParked removes worker i's bit (used on the self-wake paths; a
// waker-cleared bit is left alone — its token is consumed later as a
// harmless spurious wake).
func (e *Engine) clearParked(i int) {
	bit := uint64(1) << uint(i)
	for {
		m := e.parked.Load()
		if m&bit == 0 || e.parked.CompareAndSwap(m, m&^bit) {
			return
		}
	}
}

// park blocks worker i until a submitter wakes it or the engine stops.
// The bit is published before the final work re-check: a submitter that
// misses the bit has already enqueued (so the re-check finds its work),
// and one that sees it will send a token.
func (e *Engine) park(i int) {
	bit := uint64(1) << uint(i)
	for {
		m := e.parked.Load()
		if e.parked.CompareAndSwap(m, m|bit) {
			break
		}
	}
	if e.queued.Load() > 0 {
		e.clearParked(i)
		return
	}
	select {
	case <-e.wake[i]:
		// The waker cleared our bit when it sent the token.
	case <-e.stop:
		e.clearParked(i)
	}
}

// worker is the pool loop: run everything reachable, park when idle,
// exit once the engine has stopped and a full scan comes up empty (stop
// closes only after the submit barrier, so an empty scan is
// conclusive — Close drains).
func (e *Engine) worker(i int) {
	defer e.wg.Done()
	defer gWorkersLive.Add(-1)
	for {
		if run, ok := e.poll(i); ok {
			run()
			continue
		}
		select {
		case <-e.stop:
			if run, ok := e.poll(i); ok {
				run()
				continue
			}
			return
		default:
		}
		e.park(i)
	}
}

// Close stops the engine: further Submits fail with ErrClosed, queued
// work is drained, and Close returns once every worker has exited.
func (e *Engine) Close() {
	if !e.stopped.Swap(true) {
		// Barrier: any Submit that passed the closed check has finished
		// its push once we have cycled its shard lock, so the workers'
		// final scans see everything.
		for i := range e.shards {
			e.shards[i].mu.Lock()
			e.shards[i].mu.Unlock() //nolint:staticcheck // empty critical section is the barrier
		}
		close(e.stop)
	}
	e.wg.Wait()
}
