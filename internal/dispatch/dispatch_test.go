package dispatch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// With one worker the engine degenerates to the old executor: strict
// priority order, FIFO within a level.
func TestPriorityOrderSingleWorker(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	if err := e.Submit(0, func() { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	add := func(prio int32, tag int) {
		wg.Add(1)
		if err := e.Submit(prio, func() {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	add(1, 10)
	add(3, 30)
	add(2, 20)
	add(3, 31) // same level as 30: FIFO after it
	close(block)
	wg.Wait()

	want := []int{30, 31, 20, 10}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

// A burst submitted while one worker is blocked must be stolen and run
// by the others: the pool keeps working when shards are imbalanced.
func TestWorkStealing(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()

	// Tie down three of the four workers; the queued burst (spread
	// round-robin over all shards, including the blocked workers') must
	// still complete promptly through the one free worker stealing.
	gate := make(chan struct{})
	var held sync.WaitGroup
	for i := 0; i < 3; i++ {
		held.Add(1)
		if err := e.Submit(0, func() { held.Done(); <-gate }); err != nil {
			t.Fatal(err)
		}
	}
	held.Wait()

	const n = 100
	var ran atomic.Int64
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		if err := e.Submit(0, func() {
			if ran.Add(1) == n {
				close(done)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One free worker must drain all shards by stealing.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("burst not drained: %d/%d ran with 3 workers blocked", ran.Load(), n)
	}
	close(gate)
}

// Close must run everything already queued before returning.
func TestCloseDrains(t *testing.T) {
	e := New(Config{Workers: 2})
	var ran atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{})
	_ = e.Submit(0, func() { close(started); <-block; ran.Add(1) })
	<-started
	for i := 0; i < 50; i++ {
		if err := e.Submit(0, func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(block)
	}()
	e.Close()
	if got := ran.Load(); got != 51 {
		t.Fatalf("Close drained %d of 51 tasks", got)
	}
	if err := e.Submit(0, func() {}); err != ErrClosed {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// With every shard at its bound, Submit must shed instead of queueing.
func TestQueueBoundSheds(t *testing.T) {
	e := New(Config{Workers: 2, QueueLen: 2})
	defer e.Close()

	gate := make(chan struct{})
	var held sync.WaitGroup
	for i := 0; i < 2; i++ {
		held.Add(1)
		if err := e.Submit(0, func() { held.Done(); <-gate }); err != nil {
			t.Fatal(err)
		}
	}
	held.Wait()

	// 2 shards × bound 2 = 4 queue slots.
	accepted := 0
	var sheds int
	for i := 0; i < 8; i++ {
		switch err := e.Submit(0, func() {}); err {
		case nil:
			accepted++
		case ErrSaturated:
			sheds++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if accepted != 4 || sheds != 4 {
		t.Fatalf("accepted %d / shed %d, want 4/4", accepted, sheds)
	}
	close(gate)
}

// Hammer the park/wake protocol: many producers, many workers, nothing
// lost, no deadlock. (Run with -race in tier-2.)
func TestParkWakeStress(t *testing.T) {
	e := New(Config{Workers: 8})
	defer e.Close()
	const producers = 16
	const per = 2000
	var ran atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := e.Submit(int32(i%4), func() {
					if ran.Add(1) == producers*per {
						close(done)
					}
				}); err != nil {
					t.Error(err)
					return
				}
				if i%64 == 0 {
					time.Sleep(time.Microsecond) // let workers park
				}
			}
		}(p)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("lost wakeup: %d/%d ran", ran.Load(), producers*per)
	}
}

func TestInlineStateAdapts(t *testing.T) {
	var st InlineState
	th := 100 * time.Microsecond
	if st.Eligible() {
		t.Fatal("zero state must not be eligible")
	}
	for i := 0; i < PromoteStreak-1; i++ {
		st.Observe(th/2, th)
		if st.Eligible() {
			t.Fatalf("promoted after %d observations, want %d", i+1, PromoteStreak)
		}
	}
	st.Observe(th/2, th)
	if !st.Eligible() {
		t.Fatal("not promoted after a full fast streak")
	}
	st.Observe(th/2, th) // promoted observations are no-ops
	if !st.Eligible() {
		t.Fatal("lost promotion on a fast call")
	}
	st.Observe(2*th, th)
	if st.Eligible() {
		t.Fatal("not demoted by a slow call")
	}
	// A slow call mid-streak resets it.
	st.Observe(th/2, th)
	st.Observe(2*th, th)
	for i := 0; i < PromoteStreak-1; i++ {
		st.Observe(th/2, th)
	}
	if st.Eligible() {
		t.Fatal("streak survived a slow call")
	}
	st.Promote()
	if !st.Eligible() {
		t.Fatal("explicit Promote did not take")
	}
	var nilState *InlineState
	if nilState.Eligible() {
		t.Fatal("nil state eligible")
	}
	nilState.Observe(time.Millisecond, th) // must not panic
	nilState.Promote()
}
