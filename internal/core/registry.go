package core

import (
	"fmt"
	"sync"
)

// Registry is a domain's subcontract registry (§6.1–§6.2). A program is
// typically linked with a set of libraries providing standard subcontracts
// (Register); at run time it may encounter objects whose subcontracts are
// not in its libraries, in which case the registry consults its Loader to
// map the subcontract identifier to a library name and dynamically link
// the library in.
type Registry struct {
	mu     sync.RWMutex
	byID   map[ID]Subcontract
	byName map[string]Subcontract
	loader *Loader

	// Statistics for the discovery experiments.
	lookups      int
	misses       int
	dynamicLoads int
}

// NewRegistry returns an empty registry with no loader.
func NewRegistry() *Registry {
	return &Registry{
		byID:   make(map[ID]Subcontract),
		byName: make(map[string]Subcontract),
	}
}

// SetLoader installs the dynamic-discovery machinery consulted on misses.
func (r *Registry) SetLoader(l *Loader) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.loader = l
}

// Register installs sc, as linking a subcontract library does. Registering
// ID 0 (the nil marker) or a duplicate identifier is an error.
func (r *Registry) Register(sc Subcontract) error {
	if sc.ID() == NilID {
		return fmt.Errorf("core: subcontract %q uses reserved id 0", sc.Name())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byID[sc.ID()]; ok && old != sc {
		return fmt.Errorf("core: subcontract id %d already registered to %q", sc.ID(), old.Name())
	}
	r.byID[sc.ID()] = sc
	r.byName[sc.Name()] = sc
	return nil
}

// MustRegister is Register for setup code that cannot continue on failure.
func (r *Registry) MustRegister(sc Subcontract) {
	if err := r.Register(sc); err != nil {
		panic(err)
	}
}

// Lookup finds the subcontract registered under id. On a miss it invokes
// the loader (if any) to discover, verify, and link the subcontract's
// library, then retries — the §6.2 protocol.
func (r *Registry) Lookup(id ID) (Subcontract, error) {
	r.mu.RLock()
	sc, ok := r.byID[id]
	loader := r.loader
	r.mu.RUnlock()

	r.mu.Lock()
	r.lookups++
	if !ok {
		r.misses++
	}
	r.mu.Unlock()

	if ok {
		return sc, nil
	}
	if loader == nil {
		return nil, fmt.Errorf("%w: id %d (no loader configured)", ErrUnknownSubcontract, id)
	}
	loadErr := loader.Load(id, r)
	r.mu.Lock()
	sc, ok = r.byID[id]
	if ok {
		r.dynamicLoads++
	}
	r.mu.Unlock()
	if ok {
		// Registered — by our load or by a concurrent one that raced us
		// (in which case our own install may have reported a duplicate).
		return sc, nil
	}
	if loadErr != nil {
		return nil, loadErr
	}
	return nil, fmt.Errorf("%w: id %d (library loaded but did not register it)", ErrUnknownSubcontract, id)
}

// LookupName finds a subcontract by name among those currently linked.
func (r *Registry) LookupName(name string) (Subcontract, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sc, ok := r.byName[name]
	return sc, ok
}

// Stats reports (lookups, misses, dynamic loads) since creation.
func (r *Registry) Stats() (lookups, misses, loads int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lookups, r.misses, r.dynamicLoads
}
