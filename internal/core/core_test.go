package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/kernel"
)

// fakeSC is a minimal subcontract whose marshalled form is the standard
// header plus one uint64 of representation.
type fakeSC struct {
	id   ID
	name string
}

func (f *fakeSC) ID() ID       { return f.id }
func (f *fakeSC) Name() string { return f.name }

func (f *fakeSC) Unmarshal(env *Env, mt *MTable, buf *buffer.Buffer) (*Object, error) {
	raw, err := buf.PeekUint32()
	if err != nil {
		return nil, err
	}
	if ID(raw) != f.id {
		sc, err := env.Registry.Lookup(ID(raw))
		if err != nil {
			return nil, err
		}
		return sc.Unmarshal(env, mt, buf)
	}
	actual, err := ReadHeader(buf, f.id)
	if err != nil {
		return nil, err
	}
	rep, err := buf.ReadUint64()
	if err != nil {
		return nil, err
	}
	return NewObject(env, PickMTable(mt, actual), f, rep), nil
}

func (f *fakeSC) Marshal(obj *Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	WriteHeader(buf, f.id, obj.MT.Type)
	buf.WriteUint64(obj.Rep.(uint64))
	return obj.MarkConsumed()
}

func (f *fakeSC) MarshalCopy(obj *Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	WriteHeader(buf, f.id, obj.MT.Type)
	buf.WriteUint64(obj.Rep.(uint64))
	return nil
}

func (f *fakeSC) InvokePreamble(obj *Object, call *Call) error { return obj.CheckLive() }

func (f *fakeSC) Invoke(obj *Object, call *Call) (*buffer.Buffer, error) {
	return nil, errors.New("fake: no transport")
}

func (f *fakeSC) Copy(obj *Object) (*Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	return NewObject(obj.Env, obj.MT, f, obj.Rep), nil
}

func (f *fakeSC) Consume(obj *Object) error { return obj.MarkConsumed() }

func newTestEnv(t *testing.T) *Env {
	t.Helper()
	k := kernel.New("test")
	return NewEnv(k.NewDomain("dom"))
}

// Type registrations shared by the tests in this package. Names are
// prefixed to avoid colliding with other packages' registrations in the
// process-wide graph.
var typesOnce sync.Once

func registerTestTypes(t *testing.T) {
	t.Helper()
	typesOnce.Do(func() {
		MustRegisterType("coretest.object")
		MustRegisterType("coretest.file", "coretest.object")
		MustRegisterType("coretest.io", "coretest.object")
		MustRegisterType("coretest.cacheable_file", "coretest.file", "coretest.io")
		MustRegisterMTable(&MTable{Type: "coretest.file", DefaultSC: 901, Ops: []string{"read", "write"}})
		MustRegisterMTable(&MTable{Type: "coretest.cacheable_file", DefaultSC: 902, Ops: []string{"read", "write", "flush"}})
	})
}

func TestTypeGraph(t *testing.T) {
	registerTestTypes(t)
	cases := []struct {
		t, u TypeID
		want bool
	}{
		{"coretest.file", "coretest.file", true},
		{"coretest.file", "coretest.object", true},
		{"coretest.cacheable_file", "coretest.file", true},
		{"coretest.cacheable_file", "coretest.io", true},
		{"coretest.cacheable_file", "coretest.object", true},
		{"coretest.object", "coretest.file", false},
		{"coretest.file", "coretest.io", false},
		{"coretest.nosuch", "coretest.object", false},
	}
	for _, c := range cases {
		if got := IsA(c.t, c.u); got != c.want {
			t.Errorf("IsA(%q, %q) = %v, want %v", c.t, c.u, got, c.want)
		}
	}
	if !TypeKnown("coretest.file") || TypeKnown("coretest.nosuch") {
		t.Error("TypeKnown wrong")
	}
	if err := RegisterType("coretest.bad", "coretest.unregistered-parent"); !errors.Is(err, ErrBadType) {
		t.Errorf("RegisterType with unknown parent = %v, want ErrBadType", err)
	}
	ps := Parents("coretest.cacheable_file")
	if len(ps) != 2 {
		t.Errorf("Parents = %v, want 2 entries", ps)
	}
}

func TestMTableRegistry(t *testing.T) {
	registerTestTypes(t)
	if _, ok := LookupMTable("coretest.file"); !ok {
		t.Fatal("mtable for coretest.file missing")
	}
	if err := RegisterMTable(&MTable{Type: "coretest.nosuch"}); !errors.Is(err, ErrBadType) {
		t.Fatalf("RegisterMTable unknown type = %v, want ErrBadType", err)
	}
}

func TestPickMTable(t *testing.T) {
	registerTestTypes(t)
	fileMT, _ := LookupMTable("coretest.file")
	cacheMT, _ := LookupMTable("coretest.cacheable_file")

	if got := PickMTable(fileMT, "coretest.cacheable_file"); got != cacheMT {
		t.Errorf("PickMTable did not upgrade to richer table: %v", got)
	}
	if got := PickMTable(fileMT, "coretest.file"); got != fileMT {
		t.Errorf("same type should keep expected table")
	}
	if got := PickMTable(fileMT, "coretest.unknowntype"); got != fileMT {
		t.Errorf("unknown dynamic type should fall back to expected table")
	}
	// coretest.io has no registered mtable and is not a subtype of file.
	if got := PickMTable(fileMT, "coretest.io"); got != fileMT {
		t.Errorf("non-subtype must not replace the table")
	}
	if got := PickMTable(fileMT, ""); got != fileMT {
		t.Errorf("empty dynamic type should keep expected table")
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	a := &fakeSC{id: 10, name: "alpha"}
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(a); err != nil {
		t.Fatalf("re-registering same instance should be idempotent: %v", err)
	}
	if err := r.Register(&fakeSC{id: 10, name: "clash"}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := r.Register(&fakeSC{id: 0, name: "nil"}); err == nil {
		t.Fatal("reserved id 0 accepted")
	}
	got, err := r.Lookup(10)
	if err != nil || got != Subcontract(a) {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := r.Lookup(99); !errors.Is(err, ErrUnknownSubcontract) {
		t.Fatalf("Lookup miss = %v, want ErrUnknownSubcontract", err)
	}
	if sc, ok := r.LookupName("alpha"); !ok || sc != Subcontract(a) {
		t.Fatal("LookupName failed")
	}
	lookups, misses, loads := r.Stats()
	if lookups != 2 || misses != 1 || loads != 0 {
		t.Fatalf("stats = %d/%d/%d, want 2/1/0", lookups, misses, loads)
	}
}

func TestLoaderTrustedPath(t *testing.T) {
	store := NewLibraryStore()
	installed := false
	store.Install("/usr/lib/sc", "beta.so", func(reg *Registry) error {
		installed = true
		return reg.Register(&fakeSC{id: 20, name: "beta"})
	})
	names := NameServiceFunc(func(id ID) (string, error) {
		if id == 20 {
			return "beta.so", nil
		}
		return "", fmt.Errorf("no mapping for %d", id)
	})

	r := NewRegistry()
	r.SetLoader(&Loader{Names: names, Store: store, SearchPath: []string{"/usr/lib/sc"}})

	sc, err := r.Lookup(20)
	if err != nil {
		t.Fatal(err)
	}
	if !installed || sc.Name() != "beta" {
		t.Fatalf("dynamic load failed: installed=%v sc=%v", installed, sc)
	}
	_, _, loads := r.Stats()
	if loads != 1 {
		t.Fatalf("loads = %d, want 1", loads)
	}
	// Second lookup must not reload.
	if _, err := r.Lookup(20); err != nil {
		t.Fatal(err)
	}
	if _, _, loads := r.Stats(); loads != 1 {
		t.Fatalf("loads after warm lookup = %d, want 1", loads)
	}
}

func TestLoaderUntrustedRefused(t *testing.T) {
	store := NewLibraryStore()
	store.Install("/tmp/evil", "mal.so", func(reg *Registry) error {
		return reg.Register(&fakeSC{id: 30, name: "mal"})
	})
	names := NameServiceFunc(func(id ID) (string, error) { return "mal.so", nil })
	r := NewRegistry()
	r.SetLoader(&Loader{Names: names, Store: store, SearchPath: []string{"/usr/lib/sc"}})
	if _, err := r.Lookup(30); !errors.Is(err, ErrUntrustedLibrary) {
		t.Fatalf("Lookup = %v, want ErrUntrustedLibrary", err)
	}
}

func TestLoaderMissingLibrary(t *testing.T) {
	store := NewLibraryStore()
	names := NameServiceFunc(func(id ID) (string, error) { return "ghost.so", nil })
	r := NewRegistry()
	r.SetLoader(&Loader{Names: names, Store: store, SearchPath: []string{"/usr/lib/sc"}})
	if _, err := r.Lookup(31); !errors.Is(err, ErrNoLibrary) {
		t.Fatalf("Lookup = %v, want ErrNoLibrary", err)
	}
}

func TestLoaderNoNameMapping(t *testing.T) {
	store := NewLibraryStore()
	names := NameServiceFunc(func(id ID) (string, error) { return "", errors.New("unbound") })
	r := NewRegistry()
	r.SetLoader(&Loader{Names: names, Store: store, SearchPath: nil})
	if _, err := r.Lookup(32); !errors.Is(err, ErrNoLibrary) {
		t.Fatalf("Lookup = %v, want ErrNoLibrary", err)
	}
}

func TestLoaderLibraryForgotToRegister(t *testing.T) {
	store := NewLibraryStore()
	store.Install("/usr/lib/sc", "lazy.so", func(reg *Registry) error { return nil })
	names := NameServiceFunc(func(id ID) (string, error) { return "lazy.so", nil })
	r := NewRegistry()
	r.SetLoader(&Loader{Names: names, Store: store, SearchPath: []string{"/usr/lib/sc"}})
	if _, err := r.Lookup(33); !errors.Is(err, ErrUnknownSubcontract) {
		t.Fatalf("Lookup = %v, want ErrUnknownSubcontract", err)
	}
}

func TestConcurrentDiscovery(t *testing.T) {
	// Two threads miss on the same identifier simultaneously; the library
	// installs a fresh instance each time, so the loser's install reports
	// a duplicate — both lookups must still succeed.
	store := NewLibraryStore()
	store.Install("/usr/lib/sc", "race.so", func(reg *Registry) error {
		return reg.Register(&fakeSC{id: 40, name: "race"})
	})
	names := NameServiceFunc(func(ID) (string, error) { return "race.so", nil })
	r := NewRegistry()
	r.SetLoader(&Loader{Names: names, Store: store, SearchPath: []string{"/usr/lib/sc"}})

	const workers = 8
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Lookup(40); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent discovery failed: %v", err)
	}
}

func TestLibraryStoreRemove(t *testing.T) {
	store := NewLibraryStore()
	store.Install("/d", "x.so", func(*Registry) error { return nil })
	store.Remove("/d", "x.so")
	if store.existsAnywhere("x.so") {
		t.Fatal("library still present after Remove")
	}
}

func TestUnmarshalDispatch(t *testing.T) {
	registerTestTypes(t)
	env := newTestEnv(t)
	def := &fakeSC{id: 901, name: "default-fake"}
	other := &fakeSC{id: 902, name: "other-fake"}
	env.Registry.MustRegister(def)
	env.Registry.MustRegister(other)

	fileMT, _ := LookupMTable("coretest.file")

	// Marshal with the *other* subcontract; unmarshal expecting the
	// default. The peek protocol must route to `other`.
	src := NewObject(env, fileMT, other, uint64(7))
	buf := buffer.New(32)
	if err := src.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(env, fileMT, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SC != ClientOps(other) || got.Rep.(uint64) != 7 {
		t.Fatalf("unmarshalled %v rep=%v, want other/7", got.SC.Name(), got.Rep)
	}
}

func TestUnmarshalNil(t *testing.T) {
	registerTestTypes(t)
	env := newTestEnv(t)
	buf := buffer.New(8)
	var nilObj *Object
	if err := nilObj.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	fileMT, _ := LookupMTable("coretest.file")
	got, err := Unmarshal(env, fileMT, buf)
	if err != nil || got != nil {
		t.Fatalf("Unmarshal(nil) = %v, %v", got, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil marker not fully consumed: %d bytes left", buf.Len())
	}
}

func TestUnmarshalUnknownSubcontract(t *testing.T) {
	registerTestTypes(t)
	env := newTestEnv(t)
	buf := buffer.New(8)
	WriteHeader(buf, 777, "coretest.file")
	fileMT, _ := LookupMTable("coretest.file")
	if _, err := Unmarshal(env, fileMT, buf); !errors.Is(err, ErrUnknownSubcontract) {
		t.Fatalf("Unmarshal = %v, want ErrUnknownSubcontract", err)
	}
}

func TestReadHeaderWrongID(t *testing.T) {
	buf := buffer.New(8)
	WriteHeader(buf, 5, "t")
	if _, err := ReadHeader(buf, 6); !errors.Is(err, ErrWrongSubcontract) {
		t.Fatalf("ReadHeader = %v, want ErrWrongSubcontract", err)
	}
}

func TestConsumeSemantics(t *testing.T) {
	registerTestTypes(t)
	env := newTestEnv(t)
	sc := &fakeSC{id: 903, name: "consume-fake"}
	fileMT, _ := LookupMTable("coretest.file")
	obj := NewObject(env, fileMT, sc, uint64(1))

	if obj.Consumed() {
		t.Fatal("fresh object marked consumed")
	}
	buf := buffer.New(16)
	if err := obj.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	if !obj.Consumed() {
		t.Fatal("marshal did not consume the object")
	}
	if err := obj.Marshal(buffer.New(0)); !errors.Is(err, ErrConsumed) {
		t.Fatalf("second marshal = %v, want ErrConsumed", err)
	}
	if err := obj.Consume(); !errors.Is(err, ErrConsumed) {
		t.Fatalf("consume after marshal = %v, want ErrConsumed", err)
	}
	if _, err := obj.Copy(); !errors.Is(err, ErrConsumed) {
		t.Fatalf("copy after marshal = %v, want ErrConsumed", err)
	}
}

func TestMarshalCopyLeavesOriginal(t *testing.T) {
	registerTestTypes(t)
	env := newTestEnv(t)
	sc := &fakeSC{id: 904, name: "mc-fake"}
	fileMT, _ := LookupMTable("coretest.file")
	obj := NewObject(env, fileMT, sc, uint64(5))
	buf := buffer.New(16)
	if err := obj.MarshalCopy(buf); err != nil {
		t.Fatal(err)
	}
	if obj.Consumed() {
		t.Fatal("marshal_copy consumed the original")
	}
}

func TestNilObjectConvenience(t *testing.T) {
	var o *Object
	if err := o.Consume(); err != nil {
		t.Fatal(err)
	}
	c, err := o.Copy()
	if err != nil || c != nil {
		t.Fatal("nil copy should be nil")
	}
	if o.Is("anything") {
		t.Fatal("nil Is = true")
	}
	if o.String() != "Object(nil)" {
		t.Fatalf("String = %q", o.String())
	}
}

func TestObjectIs(t *testing.T) {
	registerTestTypes(t)
	env := newTestEnv(t)
	cacheMT, _ := LookupMTable("coretest.cacheable_file")
	obj := NewObject(env, cacheMT, &fakeSC{id: 905, name: "is-fake"}, uint64(0))
	if !obj.Is("coretest.file") || !obj.Is("coretest.cacheable_file") || obj.Is("coretest.nosuch") {
		t.Fatal("Is narrowing wrong")
	}
}

func TestEnvVars(t *testing.T) {
	env := newTestEnv(t)
	if _, ok := env.Get("x"); ok {
		t.Fatal("unset var present")
	}
	env.Set("x", 42)
	v, ok := env.Get("x")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
}

func TestCallArgsReplace(t *testing.T) {
	c := NewCall(3)
	if c.Op != 3 || c.Args() == nil {
		t.Fatal("NewCall wrong")
	}
	nb := buffer.New(8)
	c.SetArgs(nb)
	if c.Args() != nb {
		t.Fatal("SetArgs did not replace buffer")
	}
}

func TestObjectString(t *testing.T) {
	registerTestTypes(t)
	env := newTestEnv(t)
	fileMT, _ := LookupMTable("coretest.file")
	obj := NewObject(env, fileMT, &fakeSC{id: 906, name: "str-fake"}, uint64(0))
	if obj.String() == "" {
		t.Fatal("empty String")
	}
}
