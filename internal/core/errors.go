package core

import (
	"errors"

	"repro/internal/kernel"
)

// The invocation-failure taxonomy. Every error a subcontract's failure
// path can produce falls into one of four classes, and the class — not
// the message — decides what a retrying subcontract (replicon,
// reconnectable) may do with it:
//
//   - Communications failures (kernel.ErrCommFailure, kernel.ErrRevoked,
//     kernel.ErrBadHandle): the call may never have reached the server,
//     or the server is gone. RETRY-SAFE for idempotent protocols; this is
//     exactly the class replicon fails over on and reconnectable
//     re-resolves on.
//   - Admission refusals (kernel.ErrOverload): the server shed the call
//     at its dispatch engine's in-flight bound before executing it.
//     RETRY-SAFE unconditionally — the call never ran — but the right
//     response is backoff or failover, not an immediate hammer.
//   - Context endings (ErrDeadlineExceeded, ErrCancelled): the caller's
//     budget is spent or the caller abandoned the call. NEVER retry-safe;
//     a subcontract must surface these immediately, however many replicas
//     or resolution attempts remain.
//   - Remote exceptions (stubs.RemoteError): the server application
//     raised an error. NEVER retry-safe — the call executed.
//   - Framework errors (ErrConsumed, ErrNilObject, marshalling faults):
//     local programming errors. Never retry-safe.
//
// Subcontract failure paths wrap one of these sentinels with %w rather
// than fabricating bare strings, so errors.Is classification works at
// every layer.
var (
	// ErrDeadlineExceeded reports that a call's deadline passed. It is the
	// same value as kernel.ErrDeadlineExceeded, so the classification
	// holds whether the deadline expired at the stubs, in the kernel, in a
	// subcontract's retry loop, or on a remote machine.
	ErrDeadlineExceeded = kernel.ErrDeadlineExceeded
	// ErrCancelled reports that the caller abandoned the call. Same value
	// as kernel.ErrCancelled.
	ErrCancelled = kernel.ErrCancelled
	// ErrOverload reports that the server refused the call at admission
	// (dispatch in-flight bound). Same value as kernel.ErrOverload.
	ErrOverload = kernel.ErrOverload
)

// Retryable reports whether err is in the retry-safe class: a
// communications failure that a replica-switching or re-resolving
// subcontract may transparently retry. Context endings, remote exceptions
// and framework errors are not retryable.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrCancelled) {
		return false
	}
	return errors.Is(err, kernel.ErrCommFailure) ||
		errors.Is(err, kernel.ErrRevoked) ||
		errors.Is(err, kernel.ErrBadHandle) ||
		errors.Is(err, kernel.ErrOverload)
}
