package core

import (
	"errors"
	"fmt"
	"sync"
)

// Dynamic discovery of new subcontracts (§6.2).
//
// In Spring, a registry miss is resolved by using a network naming context
// to map the subcontract identifier into a library name (e.g. replicon.so)
// and dynamically linking that library — but, for security, the dynamic
// linker only loads libraries found on a designated search path of
// trustworthy directories, so installing a new subcontract library
// requires a privileged administrator.
//
// Go cannot dlopen code at run time in an offline build, so the dynamic
// linker is simulated while preserving the whole observable protocol:
//
//   - LibraryStore is the "filesystem": directories holding installable
//     libraries. A library is an install function that registers its
//     subcontract(s) into the loading domain's registry — exactly the role
//     of a shared object's registration entry point.
//   - NameService maps a subcontract ID to a library name; in the full
//     system this is a network naming context (see package naming, which
//     provides an adapter).
//   - Loader holds a domain's trusted search path. Libraries present in
//     the store but not under a trusted directory are refused with
//     ErrUntrustedLibrary.
//
// This substitution is recorded in DESIGN.md §2.

// Errors returned during discovery.
var (
	// ErrNoLibrary is returned when the name service has no mapping or
	// no directory in the store holds the named library at all.
	ErrNoLibrary = errors.New("core: no library provides subcontract")
	// ErrUntrustedLibrary is returned when the library exists only in
	// directories outside the domain's trusted search path.
	ErrUntrustedLibrary = errors.New("core: library found only on untrusted path")
)

// InstallFunc is a subcontract library's registration entry point.
type InstallFunc func(*Registry) error

// LibraryStore models the shared filesystem of subcontract libraries.
// It may be shared by many domains (and, via naming, many machines).
type LibraryStore struct {
	mu   sync.RWMutex
	dirs map[string]map[string]InstallFunc
}

// NewLibraryStore returns an empty store.
func NewLibraryStore() *LibraryStore {
	return &LibraryStore{dirs: make(map[string]map[string]InstallFunc)}
}

// Install places library lib (e.g. "replicon.so") in directory dir (e.g.
// "/usr/lib/subcontracts"). Installing into a directory that domains trust
// is the privileged-administrator step of §6.2.
func (s *LibraryStore) Install(dir, lib string, f InstallFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dirs[dir]
	if d == nil {
		d = make(map[string]InstallFunc)
		s.dirs[dir] = d
	}
	d[lib] = f
}

// Remove deletes a library from a directory.
func (s *LibraryStore) Remove(dir, lib string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.dirs[dir], lib)
}

// lookup finds lib under dir.
func (s *LibraryStore) lookup(dir, lib string) (InstallFunc, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.dirs[dir][lib]
	return f, ok
}

// existsAnywhere reports whether lib exists in any directory.
func (s *LibraryStore) existsAnywhere(lib string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.dirs {
		if _, ok := d[lib]; ok {
			return true
		}
	}
	return false
}

// NameService maps a subcontract identifier to a library name. The naming
// package provides an implementation backed by a (network) naming context.
type NameService interface {
	LibraryFor(id ID) (string, error)
}

// NameServiceFunc adapts a function to the NameService interface.
type NameServiceFunc func(id ID) (string, error)

// LibraryFor implements NameService.
func (f NameServiceFunc) LibraryFor(id ID) (string, error) { return f(id) }

// Loader is a domain's dynamic-linking policy: where to ask for ID→library
// mappings, which store plays the filesystem, and which directories the
// domain trusts.
type Loader struct {
	Names      NameService
	Store      *LibraryStore
	SearchPath []string
}

// Load resolves id to a library name, locates the library on the trusted
// search path, and runs its install function against reg. It implements
// the full §6.2 sequence including the security refusal.
func (l *Loader) Load(id ID, reg *Registry) error {
	if l.Names == nil || l.Store == nil {
		return fmt.Errorf("%w: id %d (loader not configured)", ErrNoLibrary, id)
	}
	lib, err := l.Names.LibraryFor(id)
	if err != nil {
		return fmt.Errorf("%w: id %d: %v", ErrNoLibrary, id, err)
	}
	for _, dir := range l.SearchPath {
		if install, ok := l.Store.lookup(dir, lib); ok {
			if err := install(reg); err != nil {
				return fmt.Errorf("core: installing %s from %s: %w", lib, dir, err)
			}
			return nil
		}
	}
	if l.Store.existsAnywhere(lib) {
		return fmt.Errorf("%w: %s (id %d)", ErrUntrustedLibrary, lib, id)
	}
	return fmt.Errorf("%w: %s (id %d)", ErrNoLibrary, lib, id)
}
