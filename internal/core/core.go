// Package core implements the subcontract framework: the replaceable
// modules that are given control of the basic mechanisms of object
// invocation and argument passing (Hamilton, Powell & Mitchell, SOSP 1993).
//
// A Spring object is perceived by a client as consisting of three things:
// a method table (an entry per operation implied by the object's type), a
// subcontract operations vector (the ClientOps below), and some
// client-local private state, the object's representation. Stubs generated
// from IDL interfaces marshal arguments and delegate every transport
// decision — marshalling, unmarshalling, invocation, copying, deletion —
// to the object's subcontract. Application programmers need not be aware
// of the specific subcontracts in use; subcontract implementors provide a
// set of interesting policies that object implementors select from.
//
// The package also implements the framework conventions of §6: compatible
// subcontracts (a subcontract identifier is part of the marshalled form of
// each object, and unmarshal code peeks at it before dispatching), the
// per-domain subcontract registry, and the discovery of new subcontracts
// at run time through a simulated dynamic linker (see Loader).
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// ID is a subcontract identifier. It is included in the marshalled form of
// every object so the receiving side can locate compatible subcontract
// code. ID 0 is reserved to mark nil object references.
type ID uint32

// NilID marks a nil object reference in a marshalled stream.
const NilID ID = 0

// OpNum numbers the operations of an interface, in method-table order.
type OpNum uint32

// TypeID names an IDL interface type, e.g. "spring.file".
type TypeID string

// Errors returned by the framework.
var (
	// ErrConsumed is returned when operating on an object whose local
	// state was already deleted (by marshal or consume).
	ErrConsumed = errors.New("core: object already consumed")
	// ErrUnknownSubcontract is returned when no subcontract with the
	// marshalled identifier is registered and discovery fails.
	ErrUnknownSubcontract = errors.New("core: unknown subcontract")
	// ErrWrongSubcontract is returned by a subcontract's unmarshal when
	// handed a buffer for a different subcontract without registry help.
	ErrWrongSubcontract = errors.New("core: marshalled form belongs to another subcontract")
	// ErrNilObject is returned when a non-nil object was required.
	ErrNilObject = errors.New("core: nil object reference")
	// ErrBadType is returned for operations on unregistered types.
	ErrBadType = errors.New("core: unregistered type")
)

// MTable is a method table: the per-type description that stubs plug
// together with a subcontract operations vector and a representation to
// form an object. Ops lists the operation names in opnum order; DefaultSC
// is the subcontract conventionally used when talking to this type (§6.1:
// "for each type we can specify a default subcontract").
type MTable struct {
	Type      TypeID
	DefaultSC ID
	Ops       []string
}

// Object is a Spring object as held by a client: method table, subcontract
// operations vector, and representation, plus the environment (domain,
// registry) the object lives in.
type Object struct {
	MT  *MTable
	SC  ClientOps
	Rep any
	Env *Env

	mu       sync.Mutex
	consumed bool
}

// NewObject plugs together a method table, subcontract ops vector, and
// representation into an object, as a subcontract's unmarshal or server
// creation code does.
func NewObject(env *Env, mt *MTable, sc ClientOps, rep any) *Object {
	return &Object{MT: mt, SC: sc, Rep: rep, Env: env}
}

// Consumed reports whether the object's local state has been deleted.
func (o *Object) Consumed() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.consumed
}

// MarkConsumed flags the object as dead. Subcontract marshal and consume
// implementations call this after deleting the local state; it returns
// ErrConsumed if the object was already dead, making double-consume and
// use-after-marshal programming errors detectable.
func (o *Object) MarkConsumed() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.consumed {
		return ErrConsumed
	}
	o.consumed = true
	return nil
}

// CheckLive returns ErrConsumed if the object's state is gone.
func (o *Object) CheckLive() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.consumed {
		return ErrConsumed
	}
	return nil
}

// Marshal transmits the object into buf via its subcontract, deleting the
// local state (move semantics, §5.1.1).
func (o *Object) Marshal(buf *buffer.Buffer) error {
	if o == nil {
		WriteNil(buf)
		return nil
	}
	return o.SC.Marshal(o, buf)
}

// MarshalCopy produces the effect of a copy followed by a marshal, leaving
// the original usable (§5.1.5).
func (o *Object) MarshalCopy(buf *buffer.Buffer) error {
	if o == nil {
		WriteNil(buf)
		return nil
	}
	return o.SC.MarshalCopy(o, buf)
}

// Copy produces a shallow copy through the subcontract copy operation.
func (o *Object) Copy() (*Object, error) {
	if o == nil {
		return nil, nil
	}
	return o.SC.Copy(o)
}

// Consume deletes the object via its subcontract (§7: the consume method).
func (o *Object) Consume() error {
	if o == nil {
		return nil
	}
	return o.SC.Consume(o)
}

// Is reports whether the object's dynamic type is target or a subtype of
// it (the run-time type query of §5.1.6 / narrowing of §6.3).
func (o *Object) Is(target TypeID) bool {
	if o == nil {
		return false
	}
	return IsA(o.MT.Type, target)
}

// String implements fmt.Stringer for diagnostics.
func (o *Object) String() string {
	if o == nil {
		return "Object(nil)"
	}
	return fmt.Sprintf("Object{%s via %s}", o.MT.Type, o.SC.Name())
}

// Call carries the per-invocation state threaded from invoke_preamble
// through argument marshalling to invoke (§5.1.3–§5.1.4). The preamble may
// write subcontract-level control information into the buffer, or replace
// the buffer entirely to influence future marshalling (as the
// shared-memory subcontracts do).
//
// Beyond the operation number and argument buffer, a call carries an
// invocation context (kernel.Info): a deadline, a cancellation channel,
// and a trace identifier, set through CallOptions. The context is policy,
// not data — stubs stay semantics-free; subcontracts consult it (bounding
// failover scans, re-resolve loops and network waits) and the kernel
// refuses to dispatch a call whose context has already ended.
type Call struct {
	Op   OpNum
	args *buffer.Buffer
	// Release, if set by the subcontract, is invoked by the stub layer
	// after the reply has been fully unmarshalled, so the subcontract can
	// recycle call resources (e.g. return a shared region to its pool).
	Release func()

	info kernel.Info
}

// CallOption configures a Call at creation.
type CallOption func(*Call)

// WithDeadline sets the absolute time after which the call fails with
// ErrDeadlineExceeded. Every layer inherits it: stubs fail fast, retrying
// subcontracts bound their scans, and the network door servers ship the
// remaining budget to the server machine.
func WithDeadline(t time.Time) CallOption {
	return func(c *Call) { c.info.Deadline = t }
}

// WithTimeout is WithDeadline(now+d): a relative budget for the call.
func WithTimeout(d time.Duration) CallOption {
	return func(c *Call) { c.info.Deadline = time.Now().Add(d) }
}

// WithCancel attaches a cancellation channel: closing it makes the call
// fail with ErrCancelled instead of running (or, across the network,
// abandons the in-flight wait).
func WithCancel(ch <-chan struct{}) CallOption {
	return func(c *Call) { c.info.Cancel = ch }
}

// WithTrace attaches an opaque trace identifier, propagated unchanged to
// the server side (0 means untraced).
func WithTrace(id uint64) CallOption {
	return func(c *Call) { c.info.Trace = id }
}

// WithPriority sets the call's scheduling priority (higher runs first;
// 0 is the default). The server-side dispatch engine orders queued work
// by it, locally and — through the netd wire header — across machines.
// The priority subcontract sets it per call from the calling domain's
// environment; WithPriority is the direct form for callers that know a
// single call's urgency.
func WithPriority(p int32) CallOption {
	return func(c *Call) { c.info.Priority = p }
}

// WithTraceContext continues the trace carried by an existing invocation
// context: a server making downstream calls on behalf of a traced request
// passes the kernel.Info its skeleton received, and the downstream spans
// nest under the server-side span current at call creation. A nil or
// untraced info leaves the call untraced (subject to head sampling).
func WithTraceContext(info *kernel.Info) CallOption {
	return func(c *Call) {
		if info == nil || info.Trace == 0 {
			return
		}
		c.info.Trace = info.Trace
		c.info.Span = info.Span
		c.info.Parent = info.Parent
		c.info.Spec = info.Spec
	}
}

// NewCall prepares a call on operation op with a fresh argument buffer
// and the invocation context described by opts.
//
// The pre-context form NewCall(op) remains valid — generated stubs that
// predate invocation contexts migrate mechanically, getting a call with
// no deadline, no cancellation and no trace.
//
// NewCall is also where head-based trace sampling happens: a call that
// the options left untraced consults trace.MaybeHead, so when sampling is
// enabled (-trace-sample) every 1-in-n outermost call becomes the root of
// a new distributed trace. With sampling off this costs one atomic load.
// A call head sampling declined may still be speculatively traced for
// tail capture (trace.TailArm) when a slow threshold is configured
// (-trace-slow): its spans buffer on the side and are kept only if the
// root span runs slow. With tail capture off this costs one atomic load.
func NewCall(op OpNum, opts ...CallOption) *Call {
	c := &Call{Op: op}
	for _, o := range opts {
		o(c)
	}
	if c.info.Trace == 0 {
		c.info.Trace = trace.MaybeHead()
		if c.info.Trace == 0 && trace.TailEnabled() {
			if id := trace.TailArm(); id != 0 {
				c.info.Trace = id
				c.info.Spec = true
			}
		}
	}
	return c
}

// NewBareCall is the deprecated pre-context constructor.
//
// Deprecated: use NewCall, which accepts the same single argument.
func NewBareCall(op OpNum) *Call { return NewCall(op) }

// Args returns the buffer arguments are marshalled into, drawn lazily
// from the buffer pool — a call that never marshals (a context probe, a
// preamble that substitutes its own buffer) never allocates one. The
// stub layer recycles it when the call completes.
func (c *Call) Args() *buffer.Buffer {
	if c.args == nil {
		c.args = buffer.Get(64)
	}
	return c.args
}

// SetArgs replaces the argument buffer (invoke_preamble's privilege).
func (c *Call) SetArgs(b *buffer.Buffer) { c.args = b }

// Info returns the call's invocation context in the kernel's form, for
// handing to Domain.CallInfo.
func (c *Call) Info() *kernel.Info { return &c.info }

// Err reports whether the call's context has already ended:
// ErrCancelled, ErrDeadlineExceeded, or nil. Subcontract retry loops
// check it between attempts.
func (c *Call) Err() error { return c.info.Err() }

// Deadline returns the call's deadline; ok is false when none is set.
func (c *Call) Deadline() (time.Time, bool) {
	return c.info.Deadline, !c.info.Deadline.IsZero()
}

// Remaining returns the budget left before the deadline; ok is false when
// no deadline is set.
func (c *Call) Remaining() (time.Duration, bool) { return c.info.Remaining() }

// Trace returns the call's trace identifier (0 when untraced).
func (c *Call) Trace() uint64 { return c.info.Trace }

// Span returns the call's current span identifier (0 when untraced or no
// instrumented hop has opened a span yet).
func (c *Call) Span() uint64 { return c.info.Span }

// Subcontract is the registry's view of a subcontract: identity plus the
// ability to fabricate an object from a marshalled form. A subcontract's
// unmarshal operation reads the identifier and representation from the
// buffer and plugs together its own operations vector, the method table,
// and the new representation (§5.1.2).
type Subcontract interface {
	// ID returns the subcontract identifier included in marshalled forms.
	ID() ID
	// Name returns the human-readable subcontract name ("simplex", ...).
	Name() string
	// Unmarshal fabricates a fully fledged object from buf. mt is the
	// initial method table chosen by the stubs from the expected type;
	// implementations may substitute a richer table when the marshalled
	// type is a known subtype.
	Unmarshal(env *Env, mt *MTable, buf *buffer.Buffer) (*Object, error)
}

// ClientOps is the client-side subcontract operations vector (§5.1).
type ClientOps interface {
	Subcontract

	// Marshal places enough information in buf for an essentially
	// identical object to be unmarshalled in another domain, then deletes
	// all local state of obj.
	Marshal(obj *Object, buf *buffer.Buffer) error
	// MarshalCopy produces the effect of a copy followed by a marshal,
	// optimizing out the intermediate object.
	MarshalCopy(obj *Object, buf *buffer.Buffer) error
	// InvokePreamble is called before any argument marshalling has begun,
	// so the subcontract can write control information or adjust the
	// communications buffer.
	InvokePreamble(obj *Object, call *Call) error
	// Invoke executes the call after the stubs have marshalled all
	// arguments, returning the result buffer (with any subcontract-level
	// reply control information already consumed).
	Invoke(obj *Object, call *Call) (*buffer.Buffer, error)
	// Copy produces a shallow copy: a distinct object designating the
	// same underlying state.
	Copy(obj *Object) (*Object, error)
	// Consume deletes the object and releases its resources.
	Consume(obj *Object) error
}

// WriteNil marks a nil object reference in buf.
func WriteNil(buf *buffer.Buffer) {
	buf.WriteUint32(uint32(NilID))
}

// WriteHeader writes the standard marshalled-object header: the
// subcontract identifier (the compatible-subcontract convention of §6.1)
// followed by the object's dynamic type.
func WriteHeader(buf *buffer.Buffer, sc ID, typ TypeID) {
	buf.WriteUint32(uint32(sc))
	buf.WriteString(string(typ))
}

// ReadHeader consumes a marshalled-object header previously verified (by
// peeking) to carry subcontract identifier want. It returns the dynamic
// type recorded by the marshalling side.
func ReadHeader(buf *buffer.Buffer, want ID) (TypeID, error) {
	id, err := buf.ReadUint32()
	if err != nil {
		return "", err
	}
	if ID(id) != want {
		return "", fmt.Errorf("%w: have %d, want %d", ErrWrongSubcontract, id, want)
	}
	t, err := buf.ReadString()
	if err != nil {
		return "", err
	}
	return TypeID(t), nil
}

// PickMTable selects the method table for a received object: the table
// registered for the marshalled dynamic type if the receiving program
// knows it (and it is a subtype of the expected type), otherwise the
// initial table the stubs chose from the expected type.
func PickMTable(expected *MTable, actual TypeID) *MTable {
	if actual == "" || actual == expected.Type {
		return expected
	}
	if mt, ok := LookupMTable(actual); ok && IsA(actual, expected.Type) {
		return mt
	}
	return expected
}

// Unmarshal reads an object of the expected method table's type from buf,
// implementing the receiving half of the compatible-subcontract protocol:
// peek at the subcontract identifier, locate the right subcontract code
// through the domain's registry (discovering and "dynamically linking" new
// subcontracts as needed), and let it perform the unmarshalling.
//
// A nil object reference unmarshals to (nil, nil).
func Unmarshal(env *Env, expected *MTable, buf *buffer.Buffer) (*Object, error) {
	raw, err := buf.PeekUint32()
	if err != nil {
		return nil, err
	}
	if ID(raw) == NilID {
		_, _ = buf.ReadUint32()
		return nil, nil
	}
	sc, err := env.Registry.Lookup(ID(raw))
	if err != nil {
		return nil, err
	}
	return sc.Unmarshal(env, expected, buf)
}

// RedispatchUnmarshal implements the first step every subcontract unmarshal
// performs (§6.1): peek at the subcontract identifier in buf. If it is the
// caller's own identifier, handled is false and the caller proceeds to
// unmarshal the representation itself. Otherwise the identifier designates
// a nil reference or a different — compatible — subcontract, which is
// located through the registry (dynamically linking its library if
// necessary) and asked to perform the unmarshalling; handled is true and
// obj/err are the final result.
func RedispatchUnmarshal(env *Env, mt *MTable, buf *buffer.Buffer, self ID) (obj *Object, handled bool, err error) {
	raw, err := buf.PeekUint32()
	if err != nil {
		return nil, true, err
	}
	switch ID(raw) {
	case self:
		return nil, false, nil
	case NilID:
		_, _ = buf.ReadUint32()
		return nil, true, nil
	}
	sc, err := env.Registry.Lookup(ID(raw))
	if err != nil {
		return nil, true, err
	}
	obj, err = sc.Unmarshal(env, mt, buf)
	return obj, true, err
}

// Env is the per-domain environment that objects live in: the domain (for
// door operations), the domain's subcontract registry, and named
// environment slots that subcontracts consult (for example the caching
// subcontract resolves its machine-local cache-manager context here).
type Env struct {
	Domain   *kernel.Domain
	Registry *Registry

	mu   sync.Mutex
	vars map[string]any
}

// NewEnv creates an environment for dom with an empty registry.
func NewEnv(dom *kernel.Domain) *Env {
	return &Env{Domain: dom, Registry: NewRegistry(), vars: make(map[string]any)}
}

// Set stores a named environment slot.
func (e *Env) Set(key string, v any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.vars[key] = v
}

// Get fetches a named environment slot.
func (e *Env) Get(key string) (any, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.vars[key]
	return v, ok
}
