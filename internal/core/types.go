package core

import (
	"fmt"
	"sync"
)

// The runtime type graph (§6.3): standard base types carry core semantics,
// other types inherit from them and add semantics such as replication.
// Clients narrow an object's type at run time to determine whether an
// object of a statically determined type, such as file, actually supports
// a subtype with richer semantics, such as replicated_file.
//
// Types and method tables are compile-time knowledge linked into programs
// (they come from IDL-generated stubs), so unlike subcontract registries —
// which are per-domain and grow at run time — the graph is process-wide.

var typeGraph = struct {
	sync.RWMutex
	parents map[TypeID][]TypeID
	mtables map[TypeID]*MTable
}{
	parents: make(map[TypeID][]TypeID),
	mtables: make(map[TypeID]*MTable),
}

// ObjectType is the root of the type graph: the standard base type every
// IDL interface implicitly descends from. GenericMT is its method table,
// used when a program must hold an object of a dynamic type it has no
// stubs for (for example a naming server storing arbitrary bindings).
const ObjectType TypeID = "spring.object"

// GenericMT is the method table for ObjectType.
var GenericMT = &MTable{Type: ObjectType}

func init() {
	MustRegisterType(ObjectType)
	MustRegisterMTable(GenericMT)
}

// RegisterType declares t as a type inheriting (possibly multiply) from
// parents. Registering the same type twice merges parent sets, so multiple
// generated stub packages can declare shared bases. All parents must be
// registered first; IDL enforces this order and generated code preserves it.
func RegisterType(t TypeID, parents ...TypeID) error {
	typeGraph.Lock()
	defer typeGraph.Unlock()
	for _, p := range parents {
		if _, ok := typeGraph.parents[p]; !ok {
			return fmt.Errorf("%w: parent %q of %q", ErrBadType, p, t)
		}
	}
	typeGraph.parents[t] = append(typeGraph.parents[t], parents...)
	return nil
}

// MustRegisterType is RegisterType for package init of generated stubs.
func MustRegisterType(t TypeID, parents ...TypeID) {
	if err := RegisterType(t, parents...); err != nil {
		panic(err)
	}
}

// TypeKnown reports whether t has been registered.
func TypeKnown(t TypeID) bool {
	typeGraph.RLock()
	defer typeGraph.RUnlock()
	_, ok := typeGraph.parents[t]
	return ok
}

// IsA reports whether t is u or a (transitive, multiple-inheritance)
// subtype of u.
func IsA(t, u TypeID) bool {
	if t == u {
		return true
	}
	typeGraph.RLock()
	defer typeGraph.RUnlock()
	return isALocked(t, u, nil)
}

func isALocked(t, u TypeID, seen map[TypeID]bool) bool {
	if t == u {
		return true
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[TypeID]bool)
	}
	seen[t] = true
	for _, p := range typeGraph.parents[t] {
		if isALocked(p, u, seen) {
			return true
		}
	}
	return false
}

// Parents returns the direct parents of t.
func Parents(t TypeID) []TypeID {
	typeGraph.RLock()
	defer typeGraph.RUnlock()
	ps := typeGraph.parents[t]
	out := make([]TypeID, len(ps))
	copy(out, ps)
	return out
}

// RegisterMTable publishes the method table for mt.Type, so unmarshal code
// receiving an object of a richer dynamic type can substitute the richer
// table (and clients can then narrow to it). The type must be registered.
func RegisterMTable(mt *MTable) error {
	if !TypeKnown(mt.Type) {
		return fmt.Errorf("%w: %q", ErrBadType, mt.Type)
	}
	typeGraph.Lock()
	defer typeGraph.Unlock()
	typeGraph.mtables[mt.Type] = mt
	return nil
}

// MustRegisterMTable is RegisterMTable for package init of generated stubs.
func MustRegisterMTable(mt *MTable) {
	if err := RegisterMTable(mt); err != nil {
		panic(err)
	}
}

// LookupMTable returns the registered method table for t.
func LookupMTable(t TypeID) (*MTable, bool) {
	typeGraph.RLock()
	defer typeGraph.RUnlock()
	mt, ok := typeGraph.mtables[t]
	return mt, ok
}
