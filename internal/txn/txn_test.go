package txn

import (
	"errors"
	"sync"
	"testing"
)

// fakePart records protocol events.
type fakePart struct {
	mu       sync.Mutex
	prepares int
	commits  int
	aborts   int
	veto     error
}

func (p *fakePart) Prepare(id ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.prepares++
	return p.veto
}
func (p *fakePart) Commit(id ID) { p.mu.Lock(); p.commits++; p.mu.Unlock() }
func (p *fakePart) Abort(id ID)  { p.mu.Lock(); p.aborts++; p.mu.Unlock() }

func TestCommitTwoPhase(t *testing.T) {
	c := NewCoordinator()
	tx := c.Begin()
	p1, p2 := &fakePart{}, &fakePart{}
	if err := tx.Enlist(p1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Enlist(p2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i, p := range []*fakePart{p1, p2} {
		if p.prepares != 1 || p.commits != 1 || p.aborts != 0 {
			t.Fatalf("participant %d: %+v", i, p)
		}
	}
	if c.Active() != 0 {
		t.Fatalf("active = %d after commit", c.Active())
	}
}

func TestVetoAbortsAll(t *testing.T) {
	c := NewCoordinator()
	tx := c.Begin()
	p1 := &fakePart{}
	p2 := &fakePart{veto: errors.New("disk full")}
	p3 := &fakePart{}
	for _, p := range []*fakePart{p1, p2, p3} {
		if err := tx.Enlist(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("Commit = %v, want ErrAborted", err)
	}
	for i, p := range []*fakePart{p1, p2, p3} {
		if p.commits != 0 || p.aborts != 1 {
			t.Fatalf("participant %d: %+v", i, p)
		}
	}
	// p3 never prepared (veto came before it).
	if p3.prepares != 0 {
		t.Fatalf("p3 prepared after veto")
	}
}

func TestAbort(t *testing.T) {
	c := NewCoordinator()
	tx := c.Begin()
	p := &fakePart{}
	if err := tx.Enlist(p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if p.prepares != 0 || p.aborts != 1 {
		t.Fatalf("%+v", p)
	}
	if err := tx.Abort(); !errors.Is(err, ErrDone) {
		t.Fatalf("double abort = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Fatalf("commit after abort = %v", err)
	}
	if err := tx.Enlist(p); !errors.Is(err, ErrDone) {
		t.Fatalf("enlist after abort = %v", err)
	}
}

func TestEnlistIdempotent(t *testing.T) {
	c := NewCoordinator()
	tx := c.Begin()
	p := &fakePart{}
	for i := 0; i < 3; i++ {
		if err := tx.Enlist(p); err != nil {
			t.Fatal(err)
		}
	}
	if tx.Participants() != 1 {
		t.Fatalf("participants = %d", tx.Participants())
	}
}

func TestLookup(t *testing.T) {
	c := NewCoordinator()
	tx := c.Begin()
	got, err := c.Lookup(tx.ID())
	if err != nil || got != tx {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := c.Lookup(999); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Lookup(999) = %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(tx.ID()); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Lookup after commit = %v", err)
	}
}

func TestDistinctIDs(t *testing.T) {
	c := NewCoordinator()
	a, b := c.Begin(), c.Begin()
	if a.ID() == b.ID() || a.ID() == 0 || b.ID() == 0 {
		t.Fatalf("ids = %d, %d", a.ID(), b.ID())
	}
}
