// Package txn implements a miniature atomic-transaction coordinator: the
// substrate for the transaction subcontract sketched in §8.4 ("transfer
// control information for atomic transactions at the subcontract level").
//
// The coordinator hands out transaction identifiers; servers touched by a
// transaction are enlisted as participants (the transaction subcontract
// does this transparently as calls arrive); commit runs a two-phase
// protocol over the participants.
package txn

import (
	"errors"
	"fmt"
	"sync"
)

// ID identifies a transaction. 0 means "no transaction".
type ID uint64

// Participant is a resource manager enlisted in transactions.
type Participant interface {
	// Prepare votes on commit; returning an error vetoes it.
	Prepare(id ID) error
	// Commit makes the transaction's effects durable.
	Commit(id ID)
	// Abort discards the transaction's effects.
	Abort(id ID)
}

// Errors returned by transaction operations.
var (
	// ErrDone is returned when operating on a finished transaction.
	ErrDone = errors.New("txn: transaction already finished")
	// ErrUnknown is returned when looking up an unknown transaction.
	ErrUnknown = errors.New("txn: unknown transaction")
	// ErrAborted is returned by Commit when a participant vetoed.
	ErrAborted = errors.New("txn: aborted")
)

// Coordinator manages active transactions.
type Coordinator struct {
	mu     sync.Mutex
	next   ID
	active map[ID]*Txn
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{next: 1, active: make(map[ID]*Txn)}
}

// Begin starts a transaction.
func (c *Coordinator) Begin() *Txn {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &Txn{coord: c, id: c.next}
	c.next++
	c.active[t.id] = t
	return t
}

// Lookup finds an active transaction by identifier.
func (c *Coordinator) Lookup(id ID) (*Txn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.active[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknown, id)
	}
	return t, nil
}

// Active reports the number of in-flight transactions.
func (c *Coordinator) Active() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

func (c *Coordinator) finish(t *Txn) {
	c.mu.Lock()
	delete(c.active, t.id)
	c.mu.Unlock()
}

// Txn is one transaction.
type Txn struct {
	coord *Coordinator
	id    ID

	mu    sync.Mutex
	parts []Participant
	done  bool
}

// ID returns the transaction identifier.
func (t *Txn) ID() ID { return t.id }

// Enlist adds a participant (idempotently).
func (t *Txn) Enlist(p Participant) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return ErrDone
	}
	for _, cur := range t.parts {
		if cur == p {
			return nil
		}
	}
	t.parts = append(t.parts, p)
	return nil
}

// Participants reports how many participants are enlisted.
func (t *Txn) Participants() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.parts)
}

// Commit runs two-phase commit: every participant prepares, then all
// commit; any veto aborts all and returns ErrAborted wrapping the veto.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return ErrDone
	}
	t.done = true
	parts := append([]Participant(nil), t.parts...)
	t.mu.Unlock()
	defer t.coord.finish(t)

	for i, p := range parts {
		if err := p.Prepare(t.id); err != nil {
			for _, q := range parts[:i] {
				q.Abort(t.id)
			}
			// The vetoing participant aborts itself too; it holds the
			// staged state.
			p.Abort(t.id)
			for _, q := range parts[i+1:] {
				q.Abort(t.id)
			}
			return fmt.Errorf("%w: participant %d vetoed: %v", ErrAborted, i, err)
		}
	}
	for _, p := range parts {
		p.Commit(t.id)
	}
	return nil
}

// Abort discards the transaction at every participant.
func (t *Txn) Abort() error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return ErrDone
	}
	t.done = true
	parts := append([]Participant(nil), t.parts...)
	t.mu.Unlock()
	defer t.coord.finish(t)
	for _, p := range parts {
		p.Abort(t.id)
	}
	return nil
}
