package trace

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
)

// clearThresholds returns tail capture to its off state (thresholds are
// configuration and survive Reset, so tests must unset what they set).
func clearThresholds(t *testing.T, names ...string) {
	t.Helper()
	SetSlowDefault(0)
	for _, n := range names {
		SetSlowThreshold(n, 0)
	}
	if TailEnabled() {
		t.Fatal("tail capture still enabled after clearing thresholds")
	}
}

// specCall runs one speculative (tail-armed) call tree: a root span with
// the given name, children zero-duration child spans, and an optional
// sleep so the root's duration crosses a real threshold. It returns the
// armed trace ID (0 when arming was declined).
func specCall(t *testing.T, root NameID, children int, hold time.Duration) uint64 {
	t.Helper()
	id := TailArm()
	if id == 0 {
		return 0
	}
	info := &kernel.Info{Trace: id, Spec: true}
	sp := Begin(info, root)
	childName := Name("tail.child")
	for i := 0; i < children; i++ {
		c := Begin(info, childName)
		c.End(info, nil)
	}
	if hold > 0 {
		time.Sleep(hold)
	}
	sp.End(info, errors.New("deadline blown"))
	return id
}

// TestTailCommitOverThreshold is the tentpole's conformance shape inside
// the trace package: with head sampling off, a speculative call whose
// root meets the slow threshold is committed to the slow ring with its
// full span tree, retrievable via SlowRoots/SlowCollect/SlowTree.
func TestTailCommitOverThreshold(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetSampling(0)
	SetSlowDefault(time.Nanosecond) // every settled root is "slow"
	t.Cleanup(func() { clearThresholds(t) })

	rootName := Name("tail.commit_root")
	id := specCall(t, rootName, 2, 0)
	if id == 0 {
		t.Fatal("TailArm declined with empty shards")
	}

	if got := specPending(); got != 0 {
		t.Errorf("specPending() = %d after root settled, want 0", got)
	}
	spans := SlowCollect(id)
	if len(spans) != 3 {
		t.Fatalf("SlowCollect: %d spans, want 3 (root + 2 children): %+v", len(spans), spans)
	}
	roots := SlowRoots(0)
	if len(roots) != 1 || roots[0].TraceID != id || roots[0].Name != "tail.commit_root" {
		t.Fatalf("SlowRoots = %+v, want one root for trace %016x", roots, id)
	}
	if roots[0].Err != "deadline blown" {
		t.Errorf("slow root error = %q, want the call's error text", roots[0].Err)
	}
	trees := SlowTree(id)
	if len(trees) != 1 || len(trees[0].Children) != 2 {
		t.Fatalf("SlowTree: want one root with 2 children, got %+v", trees)
	}
	st := TailStats()
	if st.Armed != 1 || st.Committed != 1 || st.Abandoned != 0 {
		t.Errorf("TailStats = %+v, want Armed=1 Committed=1 Abandoned=0", st)
	}
}

// TestTailAbandonUnderThreshold: a speculative call that settles fast
// leaves nothing behind — no slow spans, no pinned buffer, just an
// Abandoned tick.
func TestTailAbandonUnderThreshold(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetSlowDefault(time.Hour)
	t.Cleanup(func() { clearThresholds(t) })

	id := specCall(t, Name("tail.fast_root"), 2, 0)
	if id == 0 {
		t.Fatal("TailArm declined with empty shards")
	}
	if got := specPending(); got != 0 {
		t.Errorf("specPending() = %d, want 0 (buffer returned to pool)", got)
	}
	if spans := SlowCollect(id); len(spans) != 0 {
		t.Errorf("SlowCollect returned %d spans for an abandoned trace", len(spans))
	}
	if roots := SlowRoots(0); len(roots) != 0 {
		t.Errorf("SlowRoots = %+v, want empty", roots)
	}
	st := TailStats()
	if st.Armed != 1 || st.Committed != 0 || st.Abandoned != 1 {
		t.Errorf("TailStats = %+v, want Armed=1 Abandoned=1", st)
	}
}

// TestTailSampledSlowCopied: a head-sampled (non-speculative) root that
// runs past its threshold is copied from the main ring into the slow
// ring, so /traces/slow is complete regardless of sampling.
func TestTailSampledSlowCopied(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetSlowDefault(time.Millisecond)
	t.Cleanup(func() { clearThresholds(t) })

	info := &kernel.Info{Trace: NewTraceID()}
	sp := Begin(info, Name("tail.sampled_root"))
	c := Begin(info, Name("tail.sampled_child"))
	c.End(info, nil)
	time.Sleep(3 * time.Millisecond)
	sp.End(info, nil)

	if spans := Collect(info.Trace); len(spans) != 2 {
		t.Fatalf("main ring has %d spans, want 2", len(spans))
	}
	slow := SlowCollect(info.Trace)
	if len(slow) != 2 {
		t.Fatalf("SlowCollect: %d spans, want the full sampled tree (2)", len(slow))
	}
	if st := TailStats(); st.Armed != 0 {
		t.Errorf("sampled-slow copy should not tick Armed: %+v", st)
	}
}

// TestTailSampledFastNotCopied: a sampled root under the threshold stays
// out of the slow ring.
func TestTailSampledFastNotCopied(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetSlowDefault(time.Hour)
	t.Cleanup(func() { clearThresholds(t) })

	info := &kernel.Info{Trace: NewTraceID()}
	sp := Begin(info, Name("tail.sampled_fast"))
	sp.End(info, nil)
	if slow := SlowCollect(info.Trace); len(slow) != 0 {
		t.Errorf("fast sampled root copied to slow ring: %+v", slow)
	}
}

// TestTailPerNameOverride: a per-name threshold overrides the default in
// both directions — a name with a tiny override commits while the
// unconfigured name rides the (huge) default and abandons.
func TestTailPerNameOverride(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetSlowDefault(time.Hour)
	SetSlowThreshold("tail.hot_root", time.Nanosecond)
	t.Cleanup(func() { clearThresholds(t, "tail.hot_root") })

	hot := specCall(t, Name("tail.hot_root"), 1, 0)
	cold := specCall(t, Name("tail.cold_root"), 1, 0)
	if hot == 0 || cold == 0 {
		t.Fatal("TailArm declined with empty shards")
	}
	if spans := SlowCollect(hot); len(spans) != 2 {
		t.Errorf("overridden name: %d slow spans, want 2", len(spans))
	}
	if spans := SlowCollect(cold); len(spans) != 0 {
		t.Errorf("default-threshold name committed %d spans, want 0", len(spans))
	}
	st := TailStats()
	if st.Committed != 1 || st.Abandoned != 1 {
		t.Errorf("TailStats = %+v, want Committed=1 Abandoned=1", st)
	}
}

// TestTailBufferTruncation: a speculative tree deeper than the buffer cap
// keeps its earliest spans and still settles cleanly.
func TestTailBufferTruncation(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetSlowDefault(time.Nanosecond)
	t.Cleanup(func() { clearThresholds(t) })

	id := specCall(t, Name("tail.deep_root"), specBufCap+40, 0)
	if id == 0 {
		t.Fatal("TailArm declined")
	}
	spans := SlowCollect(id)
	if len(spans) != specBufCap {
		t.Errorf("truncated commit: %d spans, want cap %d", len(spans), specBufCap)
	}
	if specPending() != 0 {
		t.Error("truncated trace left a pending buffer")
	}
}

// TestTailArmRequiresThreshold: with no threshold configured TailArm is a
// refusal, and TailEnabled is the one-atomic gate the call path checks.
func TestTailArmRequiresThreshold(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	clearThresholds(t)
	if TailEnabled() {
		t.Fatal("TailEnabled with no thresholds")
	}
	if id := TailArm(); id != 0 {
		t.Fatalf("TailArm = %016x with tail capture off, want 0", id)
	}
}

// TestTailDeclineWhenSaturated: arming far past the shard caps declines
// (rather than growing without bound), and the armed population stays
// bounded by the configured capacity.
func TestTailDeclineWhenSaturated(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetSlowDefault(time.Nanosecond)
	t.Cleanup(func() { clearThresholds(t) })

	total := specNShards * specShardCap
	for i := 0; i < 3*total; i++ {
		TailArm() // never settled: buffers stay armed
	}
	if got := specPending(); got > total {
		t.Errorf("specPending() = %d, want ≤ capacity %d", got, total)
	}
	if st := TailStats(); st.Declined == 0 {
		t.Error("no arms declined after saturating every shard")
	}
}

// TestTailConcurrent exercises arm/emit/settle against readers under the
// race detector.
func TestTailConcurrent(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetSlowThreshold("tail.conc_root", time.Nanosecond)
	t.Cleanup(func() { clearThresholds(t, "tail.conc_root") })

	root := Name("tail.conc_root")
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			SlowRoots(16)
			TailStats()
		}
	}()

	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				specCall(t, root, 3, 0)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := specPending(); got != 0 {
		t.Errorf("specPending() = %d after all calls settled", got)
	}
	st := TailStats()
	if st.Committed == 0 {
		t.Errorf("no commits under concurrency: %+v", st)
	}
	if st.Armed != st.Committed+st.Abandoned+0 {
		t.Errorf("arm accounting leaks: %+v", st)
	}
}

// TestTailEventRoutesToSpecBuffer: Events on a speculative context land
// in the committed tree.
func TestTailEventRoutesToSpecBuffer(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	SetSlowDefault(time.Nanosecond)
	t.Cleanup(func() { clearThresholds(t) })

	id := TailArm()
	if id == 0 {
		t.Fatal("TailArm declined")
	}
	info := &kernel.Info{Trace: id, Spec: true}
	sp := Begin(info, Name("tail.event_root"))
	Event(info, Name("tail.event"))
	sp.End(info, nil)

	spans := SlowCollect(id)
	if len(spans) != 2 {
		t.Fatalf("SlowCollect: %d spans, want root + event", len(spans))
	}
	var sawEvent bool
	for _, sd := range spans {
		if sd.Name == "tail.event" && sd.Duration == 0 {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Errorf("event span missing from committed tree: %+v", spans)
	}
}
