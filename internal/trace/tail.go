package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tail capture: catching the slow call head sampling skipped.
//
// Head-based sampling decides at the root whether a call tree is recorded
// — cheap and consistent, but blind by construction: the one call in ten
// thousand that blows its latency budget is almost never in the 1-in-n
// sample. Tail capture closes that hole without giving up head sampling's
// cost model:
//
//   - When tail capture is enabled (a slow threshold is configured) and
//     head sampling declines a call, core.NewCall arms a *speculative*
//     trace (TailArm): the call gets a real trace ID and its spans are
//     recorded normally by the instrumentation — but into a small
//     per-trace buffer on this process, not the main ring, and the trace
//     ID is not propagated over the netd wire (the speculation is a local
//     bet; remote hops stay untraced).
//   - When the root span ends, the bet is settled: if the root's duration
//     meets the slow threshold for its name, the buffered spans are
//     committed into a dedicated slow-span ring; otherwise the buffer is
//     dropped back into a pool and the call cost a few appends.
//   - Head-sampled traces get the same treatment for free: a sampled root
//     that runs slow has its spans copied from the main ring into the
//     slow ring, so /traces/slow is a complete record of recent slow
//     calls regardless of how they were sampled.
//
// The slow ring is separate from the main ring so a flood of ordinary
// traced calls cannot overwrite the evidence of yesterday's tail event —
// "recent slow calls" decay only as new slow calls arrive.

// ---------------------------------------------------------------------
// Slow thresholds.

var (
	slowDefault atomic.Int64                    // ns; 0 = no default threshold
	slowNames   atomic.Pointer[[]int64]         // index NameID-1 → ns; 0 = use default
	tailOn      atomic.Bool                     // any threshold configured
)

// SetSlowDefault sets the slow threshold applied to root spans whose name
// has no per-name override; ≤ 0 clears it. This is the programmatic form
// of the daemons' -trace-slow flag.
func SetSlowDefault(d time.Duration) {
	if d < 0 {
		d = 0
	}
	slowDefault.Store(int64(d))
	recomputeTailOn()
}

// SetSlowThreshold sets the slow threshold for root spans with the given
// name, overriding the default; ≤ 0 clears the override.
func SetSlowThreshold(name string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	id := Name(name)
	nameTable.mu.Lock()
	old := slowNames.Load()
	var next []int64
	if old != nil {
		next = append(next, *old...)
	}
	for len(next) < int(id) {
		next = append(next, 0)
	}
	next[id-1] = int64(d)
	slowNames.Store(&next)
	nameTable.mu.Unlock()
	recomputeTailOn()
}

func recomputeTailOn() {
	on := slowDefault.Load() > 0
	if !on {
		if t := slowNames.Load(); t != nil {
			for _, v := range *t {
				if v > 0 {
					on = true
					break
				}
			}
		}
	}
	tailOn.Store(on)
}

// slowThreshold returns the effective threshold for a root span name
// (0 = never slow).
func slowThreshold(name NameID) int64 {
	if t := slowNames.Load(); t != nil && name != 0 && int(name) <= len(*t) {
		if v := (*t)[name-1]; v != 0 {
			return v
		}
	}
	return slowDefault.Load()
}

// TailEnabled reports whether any slow threshold is configured — the
// untraced call path checks it (one atomic load) before paying TailArm.
func TailEnabled() bool { return tailOn.Load() }

// ---------------------------------------------------------------------
// Speculative buffers.

const (
	specShardBits = 3
	specNShards   = 1 << specShardBits
	specShardMask = specNShards - 1
	// specShardCap bounds armed traces per shard; beyond it new arms are
	// declined (the call simply goes unobserved, as before tail capture).
	specShardCap = 128
	// specBufCap bounds buffered spans per trace; deeper trees are
	// truncated, keeping the earliest spans (the root's ancestry).
	specBufCap = 64
	// specStaleNs evicts buffers whose root never ended (a call path that
	// leaked its span, or an extremely long call) so they cannot pin the
	// shard forever.
	specStaleNs = int64(60 * time.Second)
)

type specSpan struct {
	spanID uint64
	parent uint64
	name   NameID
	start  int64
	dur    int64
	err    string
}

type specBuf struct {
	armed     int64 // UnixNano at TailArm, for stale eviction
	n         int
	truncated bool
	spans     [specBufCap]specSpan
}

func (b *specBuf) reset(now int64) {
	b.armed = now
	b.n = 0
	b.truncated = false
}

var specBufPool = sync.Pool{New: func() any { return new(specBuf) }}

type specShard struct {
	mu sync.Mutex
	m  map[uint64]*specBuf
}

var specMap [specNShards]specShard

// Tail-capture accounting, exposed through TailStats for the telemetry
// plane.
var (
	specArmed     atomic.Uint64
	specCommitted atomic.Uint64
	specAbandoned atomic.Uint64
	specDeclined  atomic.Uint64 // arms refused (shard full)
)

// TailStatsSnapshot reports tail-capture activity since process start (or
// the last Reset).
type TailStatsSnapshot struct {
	Armed     uint64 // speculative traces started
	Committed uint64 // settled slow and copied to the slow ring
	Abandoned uint64 // settled fast and dropped
	Declined  uint64 // arm refused because the shard was full
}

// TailStats returns the tail-capture counters.
func TailStats() TailStatsSnapshot {
	return TailStatsSnapshot{
		Armed:     specArmed.Load(),
		Committed: specCommitted.Load(),
		Abandoned: specAbandoned.Load(),
		Declined:  specDeclined.Load(),
	}
}

// TailArm starts a speculative trace for a call head sampling declined:
// it returns a fresh trace ID with a buffer armed behind it, or 0 when
// tail capture is off or the shard is full. Callers mark the resulting
// context speculative (kernel.Info.Spec) so the wire layer keeps the
// trace on-process.
func TailArm() uint64 {
	if !tailOn.Load() {
		return 0
	}
	id := NewTraceID()
	now := time.Now().UnixNano()
	sh := &specMap[id&specShardMask]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]*specBuf)
	}
	if len(sh.m) >= specShardCap {
		sh.sweepLocked(now)
	}
	if len(sh.m) >= specShardCap {
		sh.mu.Unlock()
		specDeclined.Add(1)
		return 0
	}
	b := specBufPool.Get().(*specBuf)
	b.reset(now)
	sh.m[id] = b
	sh.mu.Unlock()
	specArmed.Add(1)
	return id
}

// sweepLocked evicts stale buffers (armed long ago, root never settled).
func (sh *specShard) sweepLocked(now int64) {
	for id, b := range sh.m {
		if now-b.armed > specStaleNs {
			delete(sh.m, id)
			specBufPool.Put(b)
			specAbandoned.Add(1)
		}
	}
}

// specEmit buffers one completed span of a speculative trace. Spans
// arriving after the buffer settled (or was evicted) are dropped.
func specEmit(traceID, spanID, parent uint64, name NameID, start, dur int64, errText string) {
	sh := &specMap[traceID&specShardMask]
	sh.mu.Lock()
	b := sh.m[traceID]
	if b == nil {
		sh.mu.Unlock()
		return
	}
	if b.n >= specBufCap {
		b.truncated = true
		sh.mu.Unlock()
		return
	}
	b.spans[b.n] = specSpan{spanID: spanID, parent: parent, name: name, start: start, dur: dur, err: errText}
	b.n++
	sh.mu.Unlock()
}

// specFinish settles a speculative trace at its root span's End: commit
// the buffer to the slow ring if the root met its threshold, abandon it
// otherwise.
func specFinish(traceID uint64, rootName NameID, rootDur int64) {
	sh := &specMap[traceID&specShardMask]
	sh.mu.Lock()
	b := sh.m[traceID]
	delete(sh.m, traceID)
	sh.mu.Unlock()
	if b == nil {
		return
	}
	if thr := slowThreshold(rootName); thr > 0 && rootDur >= thr {
		r := slowRec()
		for i := 0; i < b.n; i++ {
			s := &b.spans[i]
			r.emit(traceID, s.spanID, s.parent, s.name, s.start, s.dur, s.err)
		}
		specCommitted.Add(1)
	} else {
		specAbandoned.Add(1)
	}
	specBufPool.Put(b)
}

// commitSampledSlow copies a head-sampled slow trace from the main ring
// into the slow ring (called at the root span's End once its duration is
// known). The main-ring scan is acceptable because slow calls are, by
// definition, rare.
func commitSampledSlow(traceID uint64) {
	r := slowRec()
	for _, sd := range Collect(traceID) {
		r.emit(sd.TraceID, sd.SpanID, sd.ParentID, Name(sd.Name), sd.Start, sd.Duration, sd.Err)
	}
}

// ---------------------------------------------------------------------
// The slow-span ring: a second, smaller seqlock recorder with the same
// slot format as the main ring.

const slowCapacity = 1024

var (
	slowRecPtr atomic.Pointer[recorder]
	slowRecMu  sync.Mutex
)

func slowRec() *recorder {
	if r := slowRecPtr.Load(); r != nil {
		return r
	}
	slowRecMu.Lock()
	defer slowRecMu.Unlock()
	if r := slowRecPtr.Load(); r != nil {
		return r
	}
	r := newRecorder(slowCapacity)
	slowRecPtr.Store(r)
	return r
}

// SlowCollect returns every slow-ring span of one trace, start-ordered.
func SlowCollect(traceID uint64) []SpanData {
	return collectIn(slowRecPtr.Load(), traceID)
}

// SlowRoots returns the most recent slow root spans, newest first, capped
// at max (≤ 0 means no cap) — the /traces/slow listing.
func SlowRoots(max int) []SpanData {
	return rootsIn(slowRecPtr.Load(), max)
}

// SlowTree assembles one slow trace's spans into parent→child trees, like
// Tree but over the slow ring.
func SlowTree(traceID uint64) []*Node {
	return treeOf(SlowCollect(traceID))
}

// resetTail clears the slow ring, speculative buffers and tail counters
// (thresholds are configuration and survive). Reset calls it.
func resetTail() {
	slowRecMu.Lock()
	slowRecPtr.Store(nil)
	slowRecMu.Unlock()
	for i := range specMap {
		sh := &specMap[i]
		sh.mu.Lock()
		for id, b := range sh.m {
			delete(sh.m, id)
			specBufPool.Put(b)
		}
		sh.mu.Unlock()
	}
	specArmed.Store(0)
	specCommitted.Store(0)
	specAbandoned.Store(0)
	specDeclined.Store(0)
}

// specPending reports armed-but-unsettled speculative traces (tests).
func specPending() int {
	n := 0
	for i := range specMap {
		sh := &specMap[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// sortSpans orders spans by start (ties by span ID), shared with query.go.
func sortSpans(out []SpanData) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].SpanID < out[j].SpanID
	})
}
