// Package trace is the distributed-tracing substrate: per-hop spans keyed
// by the trace identity that kernel.Info threads from client stubs through
// subcontracts, doors and the netd wire to server skeletons.
//
// The paper's argument is that the subcontract owns the invocation path —
// which means the subcontract layer, not the application, is where the
// path must be made observable (PAPERS.md: RAFDA; the ODP channel-objects
// model). A traced call carries three identifiers in its invocation
// context: the trace ID naming the end-to-end call tree, the current span
// ID, and that span's parent. Each instrumented hop (subcontract invoke,
// netd send/serve, server skeleton, cache hit/miss) brackets its work with
// Begin/End, which pushes a fresh span ID into the context so nested hops
// become children, and restores the previous identity on the way out.
// Instantaneous happenings (a failover, a cache hit) are zero-duration
// Events parented at whatever span is current.
//
// The design is dictated by the same hot-path budget as scstats (≤30 ns
// over the bare E14 call, +0 allocs when untraced):
//
//   - An untraced call pays exactly one atomic load and a branch, in
//     core.NewCall's head-sampling check. Begin/End/Event on an untraced
//     context are an inlineable nil-or-zero test.
//   - Span names are interned once (package var or a lazily cached field),
//     so recording stores a uint32, never a string.
//   - Completed spans land in a fixed-size sharded ring of seqlock slots
//     whose every field is an atomic — writers never block, readers detect
//     torn slots by sequence mismatch and skip them, and the race detector
//     sees only atomics. Recording is ~10 plain atomic stores; a sampled
//     span allocates at most twice (error-text formatting).
//   - Sampling is head-based: the decision is made once per call tree at
//     the outermost core.NewCall (MaybeHead), so a trace is either
//     recorded at every hop on every machine it touches or costs nothing
//     anywhere. -trace-sample 1 traces everything; 0 disables.
//
// The ring holds the most recent spans (default 8192); a long-running
// process overwrites its history, which is the intended trade — the
// telemetry plane (internal/telemetry) serves "recent traces", not an
// archive.
package trace

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernel"
)

// NameID is an interned span name. 0 is reserved for "unnamed"; Name never
// returns it.
type NameID uint32

// nameTable is the append-only interning table: the slice is republished
// whole on every insert, so nameOf is a single atomic load + index.
var nameTable struct {
	mu     sync.Mutex
	byName map[string]NameID
	list   atomic.Pointer[[]string] // index id-1 → name
}

// Name interns a span name, returning its ID. Callers cache the result
// (package var, or an atomic field for names not known until runtime) so
// the record path never touches the table.
func Name(s string) NameID {
	if lp := nameTable.list.Load(); lp != nil {
		// Fast path only helps re-interning, which callers avoid anyway;
		// correctness lives under the lock.
		nameTable.mu.Lock()
		defer nameTable.mu.Unlock()
		if id, ok := nameTable.byName[s]; ok {
			return id
		}
		return internLocked(s)
	}
	nameTable.mu.Lock()
	defer nameTable.mu.Unlock()
	if nameTable.byName == nil {
		nameTable.byName = make(map[string]NameID)
	}
	if id, ok := nameTable.byName[s]; ok {
		return id
	}
	return internLocked(s)
}

func internLocked(s string) NameID {
	if nameTable.byName == nil {
		nameTable.byName = make(map[string]NameID)
	}
	old := nameTable.list.Load()
	var next []string
	if old != nil {
		next = append(append(make([]string, 0, len(*old)+1), *old...), s)
	} else {
		next = []string{s}
	}
	id := NameID(len(next))
	nameTable.byName[s] = id
	nameTable.list.Store(&next)
	return id
}

// nameOf resolves an interned ID back to its string ("" for 0 or unknown).
func nameOf(id NameID) string {
	if id == 0 {
		return ""
	}
	lp := nameTable.list.Load()
	if lp == nil || int(id) > len(*lp) {
		return ""
	}
	return (*lp)[id-1]
}

// ---------------------------------------------------------------------
// Identity generation and head-based sampling.

// spanIDs is the process-wide span-ID counter, seeded randomly so span IDs
// from different processes in one distributed trace cannot collide.
var spanIDs atomic.Uint64

func init() { spanIDs.Store(rand.Uint64()) }

func nextSpanID() uint64 {
	id := spanIDs.Add(1)
	if id == 0 { // wrapped over the reserved "no span" value
		id = spanIDs.Add(1)
	}
	return id
}

// NewTraceID returns a fresh nonzero random trace identifier.
func NewTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// sampling is the head-sampling period: 0 = tracing off, 1 = every call,
// n = 1-in-n calls. headCount is the sampling clock.
var (
	sampling  atomic.Int32
	headCount atomic.Uint64
)

// SetSampling sets the head-sampling period for MaybeHead: every ≤ 0
// disables tracing, 1 traces every outermost call, n traces 1 in n. This
// is the programmatic form of the daemons' -trace-sample flag.
func SetSampling(every int) {
	if every < 0 {
		every = 0
	}
	if every > 1<<30 {
		every = 1 << 30
	}
	sampling.Store(int32(every))
}

// SamplingEvery returns the current head-sampling period (0 = off).
func SamplingEvery() int { return int(sampling.Load()) }

// MaybeHead makes the head-based sampling decision for an outermost,
// as-yet-untraced call: it returns a fresh trace ID when the call is
// sampled and 0 otherwise. With sampling off it is one atomic load and a
// branch — this is the only cost tracing adds to an untraced call.
func MaybeHead() uint64 {
	every := sampling.Load()
	if every == 0 {
		return 0
	}
	if every > 1 && headCount.Add(1)%uint64(every) != 0 {
		return 0
	}
	return NewTraceID()
}

// Traced reports whether info carries a live trace — instrumentation
// guards any per-span setup cost (lazy name interning) behind it.
func Traced(info *kernel.Info) bool { return info != nil && info.Trace != 0 }

// ---------------------------------------------------------------------
// Span bracketing.

// Span is the in-flight state between Begin and End. It is a value; the
// zero Span (untraced) makes End a no-op.
type Span struct {
	// TraceID and ID name this span; Parent is the span it nests under
	// (0 for a root).
	TraceID uint64
	ID      uint64
	Parent  uint64

	prevParent uint64 // info.Parent before Begin, restored by End
	start      int64  // UnixNano
	name       NameID
	spec       bool // speculative tail-capture trace (tail.go)
}

// Begin opens a span over the traced work that follows: it mints a span
// ID, records it in info (so nested hops — including ones on the far side
// of a netd wire — become children), and returns the state End needs. On
// an untraced info it returns the zero Span and touches nothing.
func Begin(info *kernel.Info, name NameID) Span {
	if info == nil || info.Trace == 0 {
		return Span{}
	}
	id := nextSpanID()
	sp := Span{
		TraceID:    info.Trace,
		ID:         id,
		Parent:     info.Span,
		prevParent: info.Parent,
		start:      time.Now().UnixNano(),
		name:       name,
		spec:       info.Spec,
	}
	info.Parent = info.Span
	info.Span = id
	return sp
}

// End closes the span, restores info's span identity to its pre-Begin
// state, and records the completed span (with err's text, if any) in the
// ring. A zero Span is a no-op. info may be nil when the context is no
// longer live (the record is still emitted).
func (sp Span) End(info *kernel.Info, err error) {
	if sp.ID == 0 {
		return
	}
	if info != nil {
		info.Span = sp.Parent
		info.Parent = sp.prevParent
	}
	var errText string
	if err != nil {
		errText = err.Error()
	}
	dur := time.Now().UnixNano() - sp.start
	if sp.spec {
		// Speculative tail-capture trace: spans buffer on the side, and
		// the root span's End settles the slow-or-not bet (tail.go).
		specEmit(sp.TraceID, sp.ID, sp.Parent, sp.name, sp.start, dur, errText)
		if sp.Parent == 0 {
			specFinish(sp.TraceID, sp.name, dur)
		}
		return
	}
	rec().emit(sp.TraceID, sp.ID, sp.Parent, sp.name, sp.start, dur, errText)
	// A head-sampled root that ran slow is copied to the slow ring so
	// /traces/slow is complete regardless of how the trace was sampled.
	if sp.Parent == 0 {
		if thr := slowThreshold(sp.name); thr > 0 && dur >= thr {
			commitSampledSlow(sp.TraceID)
		}
	}
}

// Event records an instantaneous zero-duration span (a failover, a cache
// hit) parented at info's current span. Untraced infos cost a nil test.
func Event(info *kernel.Info, name NameID) {
	if info == nil || info.Trace == 0 {
		return
	}
	if info.Spec {
		specEmit(info.Trace, nextSpanID(), info.Span, name, time.Now().UnixNano(), 0, "")
		return
	}
	rec().emit(info.Trace, nextSpanID(), info.Span, name, time.Now().UnixNano(), 0, "")
}

// ---------------------------------------------------------------------
// The recorder: a sharded ring of seqlock slots, every field atomic.

const (
	// shardBits spreads concurrent writers (slots are claimed per shard by
	// span ID, so two goroutines recording different spans rarely contend
	// on one position counter).
	shardBits = 3
	nShards   = 1 << shardBits

	// errBytes bounds the error text stored per slot (errWords uint64s).
	errWords = 8
	errBytes = errWords * 8

	// defaultCapacity is the total slot count across shards (power of two
	// per shard). ~128 B/slot → ~1 MiB resident once tracing is used.
	defaultCapacity = 8192
)

// slot is one ring entry. The seqlock protocol: a writer bumps seq to odd,
// stores the fields, bumps seq to even; a reader snapshots seq, loads the
// fields, and accepts them only if seq is unchanged, even, and nonzero
// (zero = never written). Every access is atomic, so concurrent
// writer/writer and writer/reader overlaps are detected by sequence
// mismatch rather than manifesting as data races.
type slot struct {
	seq     atomic.Uint32
	traceID atomic.Uint64
	spanID  atomic.Uint64
	parent  atomic.Uint64
	start   atomic.Int64  // UnixNano
	dur     atomic.Int64  // nanoseconds (0 for events)
	meta    atomic.Uint64 // name<<32 | errLen
	errText [errWords]atomic.Uint64
}

type shard struct {
	pos atomic.Uint64
	_   [56]byte // keep neighbouring shards' counters off this cache line
}

type recorder struct {
	shards [nShards]shard
	// slots[s] is shard s's ring; len is a power of two.
	slots [nShards][]slot
	mask  uint64
}

func newRecorder(capacity int) *recorder {
	per := capacity / nShards
	if per < 64 {
		per = 64
	}
	// Round up to a power of two so the ring index is a mask.
	n := 64
	for n < per {
		n <<= 1
	}
	r := &recorder{mask: uint64(n - 1)}
	for i := range r.slots {
		r.slots[i] = make([]slot, n)
	}
	return r
}

var (
	recPtr atomic.Pointer[recorder]
	recMu  sync.Mutex
)

// rec returns the process recorder, installing it on first use so
// processes that never trace never pay the ring's memory.
func rec() *recorder {
	if r := recPtr.Load(); r != nil {
		return r
	}
	recMu.Lock()
	defer recMu.Unlock()
	if r := recPtr.Load(); r != nil {
		return r
	}
	r := newRecorder(defaultCapacity)
	recPtr.Store(r)
	return r
}

// Reset discards all recorded spans — main ring, slow ring and pending
// speculative buffers (tests, and scbench between phases). Configured
// thresholds and sampling survive.
func Reset() {
	recMu.Lock()
	recPtr.Store(nil)
	recMu.Unlock()
	resetTail()
}

// emit claims the next slot in the span's shard and publishes the record
// under the slot's sequence. No allocation.
func (r *recorder) emit(traceID, spanID, parentID uint64, name NameID, start, dur int64, errText string) {
	si := spanID & (nShards - 1)
	sh := &r.shards[si]
	s := &r.slots[si][(sh.pos.Add(1)-1)&r.mask]

	n := len(errText)
	if n > errBytes {
		n = errBytes
	}
	var packed [errWords]uint64
	for i := 0; i < n; i++ {
		packed[i>>3] |= uint64(errText[i]) << ((i & 7) * 8)
	}

	s.seq.Add(1) // odd: slot unstable
	s.traceID.Store(traceID)
	s.spanID.Store(spanID)
	s.parent.Store(parentID)
	s.start.Store(start)
	s.dur.Store(dur)
	s.meta.Store(uint64(name)<<32 | uint64(n))
	for i := range packed {
		s.errText[i].Store(packed[i])
	}
	s.seq.Add(1) // even: slot stable
}

// read snapshots one slot. ok is false for never-written or torn slots.
func (s *slot) read() (sd SpanData, ok bool) {
	for tries := 0; tries < 4; tries++ {
		v := s.seq.Load()
		if v == 0 || v&1 != 0 {
			return SpanData{}, false
		}
		sd.TraceID = s.traceID.Load()
		sd.SpanID = s.spanID.Load()
		sd.ParentID = s.parent.Load()
		sd.Start = s.start.Load()
		sd.Duration = s.dur.Load()
		meta := s.meta.Load()
		var packed [errWords]uint64
		for i := range packed {
			packed[i] = s.errText[i].Load()
		}
		if s.seq.Load() != v {
			continue // overwritten mid-read; retry
		}
		sd.Name = nameOf(NameID(meta >> 32))
		n := int(meta & 0xffffffff)
		if n > 0 {
			b := make([]byte, n)
			for i := 0; i < n; i++ {
				b[i] = byte(packed[i>>3] >> ((i & 7) * 8))
			}
			sd.Err = string(b)
		}
		return sd, true
	}
	return SpanData{}, false
}
