package trace

import "sort"

// SpanData is one completed span as read back from the ring.
type SpanData struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for a root span
	Name     string
	Err      string // "" on success; truncated to errBytes
	Start    int64  // UnixNano
	Duration int64  `json:"DurationNs"` // nanoseconds; 0 for events
}

// scanIn visits every readable slot in a recorder (nil recorder = empty).
func scanIn(r *recorder, visit func(SpanData)) {
	if r == nil {
		return
	}
	for si := range r.slots {
		for i := range r.slots[si] {
			if sd, ok := r.slots[si][i].read(); ok {
				visit(sd)
			}
		}
	}
}

// scan visits every readable slot in the main ring.
func scan(visit func(SpanData)) {
	scanIn(recPtr.Load(), visit)
}

// collectIn returns every span of one trace in a recorder, start-ordered
// (ties broken by span ID for determinism).
func collectIn(r *recorder, traceID uint64) []SpanData {
	var out []SpanData
	scanIn(r, func(sd SpanData) {
		if sd.TraceID == traceID {
			out = append(out, sd)
		}
	})
	sortSpans(out)
	return out
}

// Collect returns every recorded span of one trace, ordered by start time
// (ties broken by span ID for determinism).
func Collect(traceID uint64) []SpanData {
	return collectIn(recPtr.Load(), traceID)
}

// rootsIn returns the most recent root spans of a recorder, newest first,
// at most one per trace, capped at max (≤0 means no cap).
func rootsIn(r *recorder, max int) []SpanData {
	latest := make(map[uint64]SpanData)
	scanIn(r, func(sd SpanData) {
		if sd.ParentID != 0 {
			return
		}
		if prev, ok := latest[sd.TraceID]; !ok || sd.Start > prev.Start {
			latest[sd.TraceID] = sd
		}
	})
	out := make([]SpanData, 0, len(latest))
	for _, sd := range latest {
		out = append(out, sd)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start > out[j].Start
		}
		return out[i].SpanID > out[j].SpanID
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Roots returns the most recent root spans (ParentID == 0), newest first,
// at most one per trace, capped at max (≤0 means no cap). This is the
// telemetry plane's /traces listing: "what end-to-end calls happened
// lately".
func Roots(max int) []SpanData {
	return rootsIn(recPtr.Load(), max)
}

// Node is one span in a trace tree, children ordered by start time.
type Node struct {
	SpanData
	Children []*Node `json:",omitempty"`
}

// treeOf assembles start-ordered spans into parent→child trees. Spans
// whose parent is absent (not yet ended, or already overwritten) surface
// as additional roots rather than vanishing, so a partially recorded
// trace still renders.
func treeOf(spans []SpanData) []*Node {
	if len(spans) == 0 {
		return nil
	}
	byID := make(map[uint64]*Node, len(spans))
	for i := range spans {
		byID[spans[i].SpanID] = &Node{SpanData: spans[i]}
	}
	var roots []*Node
	for _, sd := range spans { // spans is start-ordered, so children append in order
		n := byID[sd.SpanID]
		if p, ok := byID[sd.ParentID]; ok && sd.ParentID != 0 && sd.ParentID != sd.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// Tree assembles one trace's spans into parent→child trees.
func Tree(traceID uint64) []*Node {
	return treeOf(Collect(traceID))
}
