package trace

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/kernel"
)

func reset(t *testing.T) {
	t.Helper()
	Reset()
	SetSampling(0)
	t.Cleanup(func() {
		Reset()
		SetSampling(0)
	})
}

func TestNameInterning(t *testing.T) {
	a := Name("test.alpha")
	b := Name("test.beta")
	if a == 0 || b == 0 {
		t.Fatalf("Name returned reserved ID 0: a=%d b=%d", a, b)
	}
	if a == b {
		t.Fatalf("distinct names interned to one ID %d", a)
	}
	if again := Name("test.alpha"); again != a {
		t.Fatalf("re-interning changed ID: %d then %d", a, again)
	}
	if got := nameOf(a); got != "test.alpha" {
		t.Fatalf("nameOf(%d) = %q", a, got)
	}
	if got := nameOf(0); got != "" {
		t.Fatalf("nameOf(0) = %q, want empty", got)
	}
}

func TestBeginEndThreadsParentage(t *testing.T) {
	reset(t)
	outer := Name("test.outer")
	inner := Name("test.inner")

	info := &kernel.Info{Trace: NewTraceID()}
	spO := Begin(info, outer)
	if info.Span != spO.ID || info.Parent != 0 {
		t.Fatalf("after outer Begin: Span=%d Parent=%d, want %d/0", info.Span, info.Parent, spO.ID)
	}
	spI := Begin(info, inner)
	if info.Span != spI.ID || info.Parent != spO.ID {
		t.Fatalf("after inner Begin: Span=%d Parent=%d, want %d/%d", info.Span, info.Parent, spI.ID, spO.ID)
	}
	if spI.Parent != spO.ID {
		t.Fatalf("inner span parent = %d, want %d", spI.Parent, spO.ID)
	}
	spI.End(info, nil)
	if info.Span != spO.ID || info.Parent != 0 {
		t.Fatalf("after inner End: Span=%d Parent=%d, want %d/0", info.Span, info.Parent, spO.ID)
	}
	spO.End(info, errors.New("boom"))
	if info.Span != 0 || info.Parent != 0 {
		t.Fatalf("after outer End: Span=%d Parent=%d, want 0/0", info.Span, info.Parent)
	}

	spans := Collect(info.Trace)
	if len(spans) != 2 {
		t.Fatalf("Collect: %d spans, want 2: %+v", len(spans), spans)
	}
	byName := map[string]SpanData{}
	for _, sd := range spans {
		byName[sd.Name] = sd
	}
	o, i := byName["test.outer"], byName["test.inner"]
	if o.ParentID != 0 || i.ParentID != o.SpanID {
		t.Fatalf("parentage wrong: outer=%+v inner=%+v", o, i)
	}
	if o.Err != "boom" {
		t.Fatalf("outer Err = %q, want boom", o.Err)
	}
	if i.Err != "" {
		t.Fatalf("inner Err = %q, want empty", i.Err)
	}
}

func TestUntracedIsNoop(t *testing.T) {
	reset(t)
	n := Name("test.noop")
	if sp := Begin(nil, n); sp.ID != 0 {
		t.Fatalf("Begin(nil) produced a span: %+v", sp)
	}
	info := &kernel.Info{}
	sp := Begin(info, n)
	if sp.ID != 0 || info.Span != 0 {
		t.Fatalf("Begin on untraced info mutated it: sp=%+v info=%+v", sp, info)
	}
	sp.End(info, errors.New("ignored"))
	Event(info, n)
	Event(nil, n)
	if r := recPtr.Load(); r != nil {
		t.Fatal("untraced operations installed the recorder")
	}
}

func TestEventParent(t *testing.T) {
	reset(t)
	inv := Name("test.invoke")
	ev := Name("test.retry")
	info := &kernel.Info{Trace: NewTraceID()}
	sp := Begin(info, inv)
	Event(info, ev)
	sp.End(info, nil)

	spans := Collect(info.Trace)
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %+v", spans)
	}
	var evd SpanData
	for _, sd := range spans {
		if sd.Name == "test.retry" {
			evd = sd
		}
	}
	if evd.ParentID != sp.ID || evd.Duration != 0 {
		t.Fatalf("event = %+v, want parent %d duration 0", evd, sp.ID)
	}
}

func TestErrorTextTruncated(t *testing.T) {
	reset(t)
	n := Name("test.longerr")
	long := strings.Repeat("x", 3*errBytes)
	info := &kernel.Info{Trace: NewTraceID()}
	sp := Begin(info, n)
	sp.End(info, errors.New(long))
	spans := Collect(info.Trace)
	if len(spans) != 1 {
		t.Fatalf("want 1 span, got %d", len(spans))
	}
	if want := long[:errBytes]; spans[0].Err != want {
		t.Fatalf("Err = %q (len %d), want %d-byte prefix", spans[0].Err, len(spans[0].Err), errBytes)
	}
}

func TestMaybeHeadSampling(t *testing.T) {
	reset(t)
	if id := MaybeHead(); id != 0 {
		t.Fatalf("sampling off but MaybeHead = %d", id)
	}
	SetSampling(1)
	for i := 0; i < 10; i++ {
		if MaybeHead() == 0 {
			t.Fatal("sample-every-call returned 0")
		}
	}
	SetSampling(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if MaybeHead() != 0 {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 sampling over 400 calls: %d hits, want 100", hits)
	}
	SetSampling(-7)
	if SamplingEvery() != 0 {
		t.Fatalf("negative period not clamped: %d", SamplingEvery())
	}
}

func TestTreeAssembly(t *testing.T) {
	reset(t)
	root := Name("test.root")
	mid := Name("test.mid")
	leaf := Name("test.leaf")
	info := &kernel.Info{Trace: NewTraceID()}
	spR := Begin(info, root)
	spM := Begin(info, mid)
	spL := Begin(info, leaf)
	spL.End(info, nil)
	spM.End(info, nil)
	spR.End(info, nil)

	trees := Tree(info.Trace)
	if len(trees) != 1 {
		t.Fatalf("want 1 root, got %d", len(trees))
	}
	r := trees[0]
	if r.Name != "test.root" || len(r.Children) != 1 {
		t.Fatalf("root = %+v", r)
	}
	m := r.Children[0]
	if m.Name != "test.mid" || len(m.Children) != 1 || m.Children[0].Name != "test.leaf" {
		t.Fatalf("mid subtree wrong: %+v", m)
	}

	roots := Roots(10)
	found := false
	for _, sd := range roots {
		if sd.TraceID == info.Trace && sd.Name == "test.root" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Roots missing the trace root: %+v", roots)
	}
}

// TestOrphanSurfacesAsRoot: a child whose parent was never recorded (still
// open, or evicted) must still render.
func TestOrphanSurfacesAsRoot(t *testing.T) {
	reset(t)
	n := Name("test.orphan")
	info := &kernel.Info{Trace: NewTraceID(), Span: 12345} // parent never recorded
	sp := Begin(info, n)
	sp.End(info, nil)
	trees := Tree(info.Trace)
	if len(trees) != 1 || trees[0].Name != "test.orphan" {
		t.Fatalf("orphan not surfaced as root: %+v", trees)
	}
}

// TestRingWrap: overflowing the ring must drop old spans, not corrupt new
// ones.
func TestRingWrap(t *testing.T) {
	reset(t)
	n := Name("test.wrap")
	traceID := NewTraceID()
	total := defaultCapacity * 3
	for i := 0; i < total; i++ {
		info := &kernel.Info{Trace: traceID}
		sp := Begin(info, n)
		sp.End(info, nil)
	}
	spans := Collect(traceID)
	if len(spans) == 0 || len(spans) > defaultCapacity {
		t.Fatalf("after wrap: %d spans readable, want (0, %d]", len(spans), defaultCapacity)
	}
	for _, sd := range spans {
		if sd.Name != "test.wrap" || sd.TraceID != traceID {
			t.Fatalf("corrupt slot after wrap: %+v", sd)
		}
	}
}

// TestConcurrentRecordAndRead hammers the ring from many writers while
// readers scan; under -race this proves the seqlock is atomics-only, and
// the validity checks prove torn slots are rejected.
func TestConcurrentRecordAndRead(t *testing.T) {
	reset(t)
	const writers = 8
	const perWriter = 2000
	names := make([]NameID, writers)
	for i := range names {
		names[i] = Name(fmt.Sprintf("test.w%d", i))
	}
	stop := make(chan struct{})
	var rd sync.WaitGroup
	for r := 0; r < 2; r++ {
		rd.Add(1)
		go func() {
			defer rd.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				scan(func(sd SpanData) {
					if sd.SpanID == 0 || sd.TraceID == 0 {
						t.Errorf("invalid slot surfaced: %+v", sd)
					}
					if !strings.HasPrefix(sd.Name, "test.w") {
						t.Errorf("slot name corrupt: %q", sd.Name)
					}
				})
			}
		}()
	}
	var wr sync.WaitGroup
	for w := 0; w < writers; w++ {
		wr.Add(1)
		go func(w int) {
			defer wr.Done()
			for i := 0; i < perWriter; i++ {
				info := &kernel.Info{Trace: NewTraceID()}
				sp := Begin(info, names[w])
				Event(info, names[w])
				sp.End(info, nil)
			}
		}(w)
	}
	wr.Wait()
	close(stop)
	rd.Wait()
}

// TestUntracedAllocs: the zero-cost promise — Begin/End/Event on an
// untraced context allocate nothing, and MaybeHead with sampling off
// allocates nothing.
func TestUntracedAllocs(t *testing.T) {
	reset(t)
	n := Name("test.alloc")
	info := &kernel.Info{}
	if a := testing.AllocsPerRun(200, func() {
		sp := Begin(info, n)
		Event(info, n)
		sp.End(info, nil)
	}); a != 0 {
		t.Fatalf("untraced Begin/Event/End: %v allocs/run, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		if MaybeHead() != 0 {
			t.Fatal("sampling unexpectedly on")
		}
	}); a != 0 {
		t.Fatalf("MaybeHead(off): %v allocs/run, want 0", a)
	}
}

// TestSampledSpanAllocs: a sampled span stays within the ≤2 alloc budget
// (the only allocation on a successful span is none; with an error, the
// error-text formatting).
func TestSampledSpanAllocs(t *testing.T) {
	reset(t)
	n := Name("test.sampled")
	info := &kernel.Info{Trace: NewTraceID()}
	rec() // install outside the measured region
	if a := testing.AllocsPerRun(200, func() {
		sp := Begin(info, n)
		sp.End(info, nil)
	}); a > 2 {
		t.Fatalf("sampled span: %v allocs/run, want ≤2", a)
	}
	boom := errors.New("boom")
	if a := testing.AllocsPerRun(200, func() {
		sp := Begin(info, n)
		sp.End(info, boom)
	}); a > 2 {
		t.Fatalf("sampled failing span: %v allocs/run, want ≤2", a)
	}
}
