package idl

import (
	"strings"
	"testing"
)

const sample = `
// The Spring file system interfaces.
module fs {
    typedef sequence<octet> bytes;

    interface file {
        long long size();
        long read(in long long offset, in long count, out bytes data);
        long write(in long long offset, in bytes data);
    };

    interface versioned {
        unsigned long version();
    };

    /* richer semantics via subtyping (§6.3) */
    interface cacheable_file : file, versioned {
        void flush();
    };
};
`

func parseSample(t *testing.T) *File {
	t.Helper()
	f, err := Parse("sample.idl", sample)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseStructure(t *testing.T) {
	f := parseSample(t)
	if len(f.Modules) != 1 || f.Modules[0].Name != "fs" {
		t.Fatalf("modules = %+v", f.Modules)
	}
	m := f.Modules[0]
	if len(m.Typedefs) != 1 || m.Typedefs[0].Name != "bytes" {
		t.Fatalf("typedefs = %+v", m.Typedefs)
	}
	if len(m.Interfaces) != 3 {
		t.Fatalf("interfaces = %d", len(m.Interfaces))
	}
	file := m.Interfaces[0]
	if file.QName() != "fs.file" || len(file.Ops) != 3 {
		t.Fatalf("file = %+v", file)
	}
	read := file.Ops[1]
	if read.Name != "read" || len(read.Params) != 3 {
		t.Fatalf("read = %+v", read)
	}
	if read.Params[0].Mode != ModeIn || read.Params[2].Mode != ModeOut {
		t.Fatalf("read modes wrong: %v %v", read.Params[0].Mode, read.Params[2].Mode)
	}
	if read.Params[2].Type.resolve().Kind != KindSequence {
		t.Fatalf("typedef not resolved: %v", read.Params[2].Type)
	}
}

func TestFlattening(t *testing.T) {
	f := parseSample(t)
	cf := f.Modules[0].Interfaces[2]
	if cf.Name != "cacheable_file" {
		t.Fatal("wrong interface order")
	}
	var names []string
	for _, op := range cf.Flat {
		names = append(names, op.Name)
	}
	want := []string{"size", "read", "write", "version", "flush"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("flat = %v, want %v", names, want)
	}
	// Inherited ops keep their declaring owner.
	if cf.Flat[0].Owner.Name != "file" || cf.Flat[4].Owner.Name != "cacheable_file" {
		t.Fatalf("owners wrong: %s %s", cf.Flat[0].Owner.Name, cf.Flat[4].Owner.Name)
	}
}

func TestDiamondInheritance(t *testing.T) {
	src := `
module d {
    interface base { void ping(); };
    interface left : base { void l(); };
    interface right : base { void r(); };
    interface bottom : left, right { void b(); };
};
`
	f, err := Parse("d.idl", src)
	if err != nil {
		t.Fatal(err)
	}
	bottom := f.Modules[0].Interfaces[3]
	var names []string
	for _, op := range bottom.Flat {
		names = append(names, op.Name)
	}
	// ping appears once despite two paths.
	if strings.Join(names, ",") != "ping,l,r,b" {
		t.Fatalf("flat = %v", names)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unterminated comment", "module m { /* ", "unterminated"},
		{"bad char", "module m { @ };", "unexpected character"},
		{"missing semi", "module m { interface i { void f(); } }", "';' after interface"},
		{"undefined base", "module m { interface i : ghost { }; };", "undefined"},
		{"undefined type", "module m { interface i { void f(in widget w); }; };", "undefined type"},
		{"op name collision", `
module m {
  interface a { void f(); };
  interface b { void f(); };
  interface c : a, b { };
};`, "two operations named"},
		{"self inheritance", "module m { interface i : i { }; };", "inherits from itself"},
		{"cycle", `
module m {
  interface a : b { };
  interface b : a { };
};`, "inheritance cycle"},
		{"copy non-object", "module m { interface i { void f(copy long x); }; };", "copy mode requires an object type"},
		{"dup param", "module m { interface i { void f(in long x, in long x); }; };", "duplicate parameter"},
		{"oneway with result", "module m { interface i { oneway long f(); }; };", "cannot return"},
		{"oneway with out", "module m { interface i { oneway void f(out long x); }; };", "cannot return"},
		{"dup interface", "module m { interface i { }; interface i { }; };", "duplicate name"},
		{"dup typedef", "module m { typedef long a; typedef long a; };", "duplicate name"},
		{"reserved word name", "module m { interface interface { }; };", "reserved word"},
		{"void param", "module m { interface i { void f(in void v); }; };", "void is only valid"},
		{"unsigned junk", "module m { interface i { unsigned string f(); }; };", "expected short or long"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.name+".idl", c.src)
			if err == nil {
				t.Fatalf("parse succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("p.idl", "module m {\n  interface i {\n    void f(bad long x);\n  };\n};")
	if err == nil {
		t.Fatal("want error")
	}
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Line != 3 {
		t.Fatalf("line = %d, want 3: %v", e.Line, e)
	}
}

func TestGoName(t *testing.T) {
	cases := map[string]string{
		"file":           "File",
		"file_system":    "FileSystem",
		"cacheable_file": "CacheableFile",
		"a_b_c":          "ABC",
	}
	for in, want := range cases {
		if got := GoName(in); got != want {
			t.Errorf("GoName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestOpNumStable(t *testing.T) {
	if OpNumOf("read") != OpNumOf("read") {
		t.Fatal("hash not deterministic")
	}
	if OpNumOf("read") == OpNumOf("write") {
		t.Fatal("suspicious collision")
	}
}

func TestGenerateCompilesShape(t *testing.T) {
	f := parseSample(t)
	code, err := Generate(f, "fsgen")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package fsgen",
		`const FileType core.TypeID = "fs.file"`,
		"type File struct",
		"func (c File) Read(offset int64, count int32) (int32, []byte, error)",
		"type FileServer interface",
		"func NewFileSkeleton(env *core.Env, impl FileServer) stubs.Skeleton",
		"type CacheableFileServer interface",
		"FileServer\n\tVersionedServer",
		"func NarrowCacheableFile(obj *core.Object) (CacheableFile, bool)",
		"core.MustRegisterType(CacheableFileType, FileType, VersionedType)",
		// Inherited op callable directly on the subtype's client view.
		"func (c CacheableFile) Read(offset int64, count int32) (int32, []byte, error)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateTypeMapping(t *testing.T) {
	src := `
module tm {
    interface all {
        void f(in boolean a, in octet b, in short c, in long d,
               in long long e, in unsigned short f, in unsigned long g,
               in unsigned long long h, in float i, in double j,
               in string k, in sequence<long> l, in sequence<sequence<string>> m);
    };
};
`
	f, err := Parse("tm.idl", src)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f, "tmgen")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "a bool, b_ byte, c_ int16, d int32, e int64, f uint16, g uint32, h uint64, i float32, j float64, k string, l []int32, m [][]string") {
		t.Fatalf("type mapping wrong:\n%s", code)
	}
}

func TestAttributes(t *testing.T) {
	src := `
module at {
    interface clock {
        readonly attribute unsigned long long now;
        attribute string zone;
    };
};
`
	f, err := Parse("at.idl", src)
	if err != nil {
		t.Fatal(err)
	}
	clock := f.Modules[0].Interfaces[0]
	var names []string
	for _, op := range clock.Flat {
		names = append(names, op.Name)
	}
	if strings.Join(names, ",") != "_get_now,_get_zone,_set_zone" {
		t.Fatalf("desugared ops = %v", names)
	}
	code, err := Generate(f, "atgen")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"func (c Clock) Now() (uint64, error)",
		"func (c Clock) Zone() (string, error)",
		"func (c Clock) SetZone(zone string) error",
		"Now() (uint64, error)", // server interface
		"SetZone(zone string) error",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestObjectType(t *testing.T) {
	src := `
module ob {
    interface registry {
        void bind(in string name, in Object obj);
        Object resolve(in string name);
        void stash(copy Object obj);
    };
};
`
	f, err := Parse("ob.idl", src)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f, "obgen")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"func (c Registry) Bind(name string, obj *core.Object) error",
		"func (c Registry) Resolve(name string) (*core.Object, error)",
		"obj.Marshal(b)",     // in: move
		"obj.MarshalCopy(b)", // copy: retain
		"core.Unmarshal(c.Obj.Env, core.GenericMT, b)", // result
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestAttributeErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"readonly without attribute", "module m { interface i { readonly long x; }; };", `"attribute"`},
		{"attribute missing semi", "module m { interface i { attribute long x } };", "';'"},
		{"attribute keyword name", "module m { interface i { attribute long oneway; }; };", "reserved word"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.name+".idl", c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestGenerateObjectParams(t *testing.T) {
	src := `
module op {
    interface thing { void poke(); };
    interface holder {
        void put(in thing t);
        void lend(copy thing t);
        thing get();
    };
};
`
	f, err := Parse("op.idl", src)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f, "opgen")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"t.Obj.Marshal(b)",                      // in: move
		"t.Obj.MarshalCopy(b)",                  // copy: retain
		"core.Unmarshal(c.Obj.Env, ThingMT, b)", // result
		"func (c Holder) Get() (Thing, error)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q\n----\n%s", want, code)
		}
	}
}
