package idl

import "fmt"

// check resolves names, verifies inheritance, and flattens method tables.
//
// Opnum assignment must be stable under subtyping so that a subtype's
// method table extends its bases': the flattened table lists inherited
// operations first (in depth-first, left-to-right base order, visiting
// each ancestor once) and the interface's own operations last. A client
// holding a subtype object through a base-typed stub then uses the same
// opnums the base stubs would.
func check(f *File) error {
	// Scopes: each module has one namespace of typedefs, structs, enums
	// and interfaces.
	type scope struct {
		typedefs map[string]*Typedef
		structs  map[string]*Struct
		enums    map[string]*Enum
		ifaces   map[string]*Interface
	}
	scopes := make(map[*Module]*scope)
	for _, m := range f.Modules {
		sc := &scope{
			typedefs: make(map[string]*Typedef),
			structs:  make(map[string]*Struct),
			enums:    make(map[string]*Enum),
			ifaces:   make(map[string]*Interface),
		}
		scopes[m] = sc
		taken := make(map[string]string) // name → kind, for collision errors
		claim := func(name, kind string, line, col int) error {
			if prev, dup := taken[name]; dup {
				return &Error{File: f.Name, Line: line, Col: col,
					Msg: fmt.Sprintf("duplicate name %q (already a %s)", name, prev)}
			}
			taken[name] = kind
			return nil
		}
		for _, td := range m.Typedefs {
			if err := claim(td.Name, "typedef", td.Line, td.Col); err != nil {
				return err
			}
			sc.typedefs[td.Name] = td
		}
		for _, st := range m.Structs {
			if err := claim(st.Name, "struct", st.Line, st.Col); err != nil {
				return err
			}
			sc.structs[st.Name] = st
		}
		for _, en := range m.Enums {
			if err := claim(en.Name, "enum", en.Line, en.Col); err != nil {
				return err
			}
			sc.enums[en.Name] = en
		}
		for _, i := range m.Interfaces {
			if err := claim(i.Name, "interface", i.Line, i.Col); err != nil {
				return err
			}
			sc.ifaces[i.Name] = i
		}
	}

	// resolveType decorates a type expression in the context of module m.
	var resolveType func(m *Module, t *Type) error
	resolveType = func(m *Module, t *Type) error {
		switch t.Kind {
		case KindSequence:
			return resolveType(m, t.Elem)
		case KindNamed:
			sc := scopes[m]
			if td, ok := sc.typedefs[t.Name]; ok {
				t.Alias = td.Type
				return nil
			}
			if st, ok := sc.structs[t.Name]; ok {
				t.Struct = st
				return nil
			}
			if en, ok := sc.enums[t.Name]; ok {
				t.Enum = en
				return nil
			}
			if i, ok := sc.ifaces[t.Name]; ok {
				t.Iface = i
				return nil
			}
			return &Error{File: f.Name, Line: t.Line, Col: t.Col, Msg: fmt.Sprintf("undefined type %q", t.Name)}
		}
		return nil
	}

	for _, m := range f.Modules {
		for _, td := range m.Typedefs {
			if err := resolveType(m, td.Type); err != nil {
				return err
			}
		}
		// Struct fields: resolved, non-object, non-recursive.
		structState := make(map[*Struct]int)
		var checkStruct func(st *Struct) error
		var checkField func(st *Struct, fd *Field, t *Type) error
		checkField = func(st *Struct, fd *Field, t *Type) error {
			r := t.resolve()
			if r.IsObject() || r.Kind == KindObject {
				return &Error{File: f.Name, Line: fd.Line, Col: fd.Col,
					Msg: fmt.Sprintf("struct %q field %q: object references are not allowed in structs", st.Name, fd.Name)}
			}
			if r.Kind == KindSequence {
				return checkField(st, fd, r.Elem)
			}
			if r.Kind == KindNamed && r.Struct != nil {
				return checkStruct(r.Struct)
			}
			return nil
		}
		checkStruct = func(st *Struct) error {
			switch structState[st] {
			case 1:
				return &Error{File: f.Name, Line: st.Line, Col: st.Col, Msg: fmt.Sprintf("recursive struct %q", st.Name)}
			case 2:
				return nil
			}
			structState[st] = 1
			seen := make(map[string]bool)
			for _, fd := range st.Fields {
				if seen[fd.Name] {
					return &Error{File: f.Name, Line: fd.Line, Col: fd.Col, Msg: fmt.Sprintf("duplicate field %q in struct %q", fd.Name, st.Name)}
				}
				seen[fd.Name] = true
				if err := resolveType(m, fd.Type); err != nil {
					return err
				}
				if err := checkField(st, fd, fd.Type); err != nil {
					return err
				}
			}
			structState[st] = 2
			return nil
		}
		for _, st := range m.Structs {
			if err := checkStruct(st); err != nil {
				return err
			}
		}
		for _, en := range m.Enums {
			seen := make(map[string]bool)
			for _, member := range en.Members {
				if seen[member] {
					return &Error{File: f.Name, Line: en.Line, Col: en.Col, Msg: fmt.Sprintf("duplicate member %q in enum %q", member, en.Name)}
				}
				seen[member] = true
			}
		}
		sc := scopes[m]
		for _, i := range m.Interfaces {
			for _, b := range i.Bases {
				base, ok := sc.ifaces[b]
				if !ok {
					return &Error{File: f.Name, Line: i.Line, Col: i.Col, Msg: fmt.Sprintf("interface %q inherits from undefined %q", i.Name, b)}
				}
				if base == i {
					return &Error{File: f.Name, Line: i.Line, Col: i.Col, Msg: fmt.Sprintf("interface %q inherits from itself", i.Name)}
				}
				i.ResolvedBases = append(i.ResolvedBases, base)
			}
			for _, op := range i.Ops {
				if op.Ret != nil {
					if err := resolveType(m, op.Ret); err != nil {
						return err
					}
				}
				seen := make(map[string]bool)
				for _, p := range op.Params {
					if err := resolveType(m, p.Type); err != nil {
						return err
					}
					if seen[p.Name] {
						return &Error{File: f.Name, Line: p.Line, Col: p.Col, Msg: fmt.Sprintf("duplicate parameter %q in %s.%s", p.Name, i.Name, op.Name)}
					}
					seen[p.Name] = true
					if p.Mode == ModeCopy && !p.Type.IsObject() {
						return &Error{File: f.Name, Line: p.Line, Col: p.Col, Msg: fmt.Sprintf("copy mode requires an object type, %s is not an interface", p.Type)}
					}
				}
			}
		}

		// Flatten method tables. Interfaces may be declared in any order;
		// recursion with cycle detection handles forward references.
		state := make(map[*Interface]int) // 0 unvisited, 1 in progress, 2 done
		var flatten func(i *Interface) error
		flatten = func(i *Interface) error {
			switch state[i] {
			case 1:
				return &Error{File: f.Name, Line: i.Line, Col: i.Col, Msg: fmt.Sprintf("inheritance cycle through %q", i.Name)}
			case 2:
				return nil
			}
			state[i] = 1
			var flat []*Op
			have := make(map[string]*Op)
			add := func(op *Op) error {
				if prev, ok := have[op.Name]; ok {
					if prev == op {
						return nil // same op via a diamond
					}
					return &Error{File: f.Name, Line: i.Line, Col: i.Col,
						Msg: fmt.Sprintf("interface %q sees two operations named %q (from %q and %q)",
							i.Name, op.Name, prev.Owner.Name, op.Owner.Name)}
				}
				have[op.Name] = op
				flat = append(flat, op)
				return nil
			}
			for _, b := range i.ResolvedBases {
				if err := flatten(b); err != nil {
					return err
				}
				for _, op := range b.Flat {
					if err := add(op); err != nil {
						return err
					}
				}
			}
			for _, op := range i.Ops {
				if err := add(op); err != nil {
					return err
				}
			}
			i.Flat = flat
			state[i] = 2
			return nil
		}
		for _, i := range m.Interfaces {
			if err := flatten(i); err != nil {
				return err
			}
		}
	}
	return nil
}
