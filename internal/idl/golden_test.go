package idl

import (
	"flag"
	"go/format"
	"os"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGolden pins the generator's output byte-for-byte: codegen changes
// must be reviewed through the golden diff (regenerate with
// `go test ./internal/idl -run TestGolden -update`).
func TestGolden(t *testing.T) {
	src, err := os.ReadFile("testdata/golden.idl")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse("internal/idl/testdata/golden.idl", string(src))
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f, "golden")
	if err != nil {
		t.Fatal(err)
	}
	pretty, err := format.Source([]byte(code))
	if err != nil {
		t.Fatalf("generated code does not format: %v", err)
	}
	const goldenPath = "testdata/golden.go.golden"
	if *updateGolden {
		if err := os.WriteFile(goldenPath, pretty, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(pretty) != string(want) {
		t.Fatalf("generator output changed; run with -update and review the diff\n(got %d bytes, want %d)", len(pretty), len(want))
	}
}
