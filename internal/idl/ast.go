package idl

// The abstract syntax tree produced by the parser and decorated by the
// semantic checker.

// File is one compiled IDL source file.
type File struct {
	Name    string
	Modules []*Module
}

// Module is a named scope of definitions.
type Module struct {
	Name       string
	Typedefs   []*Typedef
	Structs    []*Struct
	Enums      []*Enum
	Interfaces []*Interface
	Line, Col  int
}

// Struct is a value aggregate: passed by value, marshalled field by
// field. Fields must be data types (no object references — objects have
// their own subcontract-mediated marshalling).
type Struct struct {
	Name      string
	Fields    []*Field
	Line, Col int
}

// Field is one struct member.
type Field struct {
	Type      *Type
	Name      string
	Line, Col int
}

// Enum is a named enumeration, marshalled as unsigned long.
type Enum struct {
	Name      string
	Members   []string
	Line, Col int
}

// Typedef aliases a type within a module.
type Typedef struct {
	Name      string
	Type      *Type
	Line, Col int
}

// Interface is an object type with operations and (multiple) inheritance.
type Interface struct {
	Name      string
	Module    *Module
	Bases     []string // as written
	Ops       []*Op
	Line, Col int

	// Filled by the checker.
	ResolvedBases []*Interface
	// Flat is the full method table: inherited operations first (in
	// linearized base order), own operations last. Opnums are indices
	// into this slice.
	Flat []*Op
}

// QName is the interface's qualified name, which doubles as its runtime
// TypeID ("module.interface").
func (i *Interface) QName() string { return i.Module.Name + "." + i.Name }

// ParamMode is a parameter-passing mode.
type ParamMode int

// Parameter modes. ModeCopy is the paper's copy mode (§5.1.5): a copy of
// the argument object is transmitted while the caller retains the
// original.
const (
	ModeIn ParamMode = iota
	ModeOut
	ModeInOut
	ModeCopy
)

func (m ParamMode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	case ModeCopy:
		return "copy"
	}
	return "?"
}

// Op is one operation. Attributes desugar into operations named
// "_get_<attr>" / "_set_<attr>" (the CORBA convention), with GoMethod
// carrying the accessor name the generator should emit.
type Op struct {
	Name      string
	Ret       *Type // nil for void
	Params    []*Param
	Oneway    bool
	Owner     *Interface // interface that declared it
	GoMethod  string     // optional generated-name override (attributes)
	Line, Col int
}

// Param is one operation parameter.
type Param struct {
	Mode      ParamMode
	Type      *Type
	Name      string
	Line, Col int
}

// TypeKind classifies types.
type TypeKind int

// Type kinds.
const (
	KindBool TypeKind = iota
	KindOctet
	KindShort
	KindLong
	KindLongLong
	KindUShort
	KindULong
	KindULongLong
	KindFloat
	KindDouble
	KindString
	KindSequence
	KindObject // the Object base type: any object reference
	KindNamed  // typedef or interface reference, resolved by the checker
)

// Type is a type expression.
type Type struct {
	Kind      TypeKind
	Elem      *Type  // sequence element
	Name      string // named type, as written
	Line, Col int

	// Filled by the checker for KindNamed.
	Iface  *Interface // non-nil if the name resolves to an interface
	Alias  *Type      // non-nil if the name resolves to a typedef
	Struct *Struct    // non-nil if the name resolves to a struct
	Enum   *Enum      // non-nil if the name resolves to an enum
}

// resolve follows typedef aliases to the underlying type.
func (t *Type) resolve() *Type {
	for t.Kind == KindNamed && t.Alias != nil {
		t = t.Alias
	}
	return t
}

// IsObject reports whether the (resolved) type is an object reference.
func (t *Type) IsObject() bool {
	r := t.resolve()
	return r.Kind == KindObject || (r.Kind == KindNamed && r.Iface != nil)
}

func (t *Type) String() string {
	switch t.Kind {
	case KindBool:
		return "boolean"
	case KindOctet:
		return "octet"
	case KindShort:
		return "short"
	case KindLong:
		return "long"
	case KindLongLong:
		return "long long"
	case KindUShort:
		return "unsigned short"
	case KindULong:
		return "unsigned long"
	case KindULongLong:
		return "unsigned long long"
	case KindFloat:
		return "float"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindSequence:
		return "sequence<" + t.Elem.String() + ">"
	case KindObject:
		return "Object"
	case KindNamed:
		return t.Name
	}
	return "?"
}
