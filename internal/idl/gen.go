package idl

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Go code generation.
//
// Operation numbers in generated code are FNV-32a hashes of the operation
// name rather than positional indices. Positions are not stable under
// multiple inheritance (a base's operation sits at different offsets in
// different subtypes' flattened tables), but a client only ever holds a
// statically typed stub while the server dispatches for its dynamic type —
// name-derived numbers make both sides agree without negotiation. Name
// collisions within one interface's flattened table are rejected at
// generation time (hash collisions across distinct names are, too).

// OpNumOf computes the wire operation number generated code uses.
func OpNumOf(name string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return h.Sum32()
}

// GoName converts an IDL identifier (file_system) to an exported Go name
// (FileSystem).
func GoName(s string) string {
	var b strings.Builder
	up := true
	for _, r := range s {
		if r == '_' {
			up = true
			continue
		}
		if up {
			b.WriteRune(r - ('a' - 'A'))
			up = false
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// goLocal converts an IDL identifier to an unexported Go name, avoiding
// collisions with the generator's own locals.
func goLocal(s string) string {
	n := GoName(s)
	out := strings.ToLower(n[:1]) + n[1:]
	switch out {
	case "b", "err", "impl", "op", "args", "results", "env", "c", "ret":
		return out + "_"
	}
	return out
}

// generator accumulates output.
type generator struct {
	b   strings.Builder
	tmp int
}

func (g *generator) printf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

func (g *generator) temp(prefix string) string {
	g.tmp++
	return fmt.Sprintf("%s%d", prefix, g.tmp)
}

// goType maps an IDL type to its Go representation.
func goType(t *Type) string {
	r := t.resolve()
	switch r.Kind {
	case KindBool:
		return "bool"
	case KindOctet:
		return "byte"
	case KindShort:
		return "int16"
	case KindLong:
		return "int32"
	case KindLongLong:
		return "int64"
	case KindUShort:
		return "uint16"
	case KindULong:
		return "uint32"
	case KindULongLong:
		return "uint64"
	case KindFloat:
		return "float32"
	case KindDouble:
		return "float64"
	case KindString:
		return "string"
	case KindSequence:
		if t.isOctetSeq() {
			return "[]byte"
		}
		return "[]" + goType(r.Elem)
	case KindObject:
		return "*core.Object"
	case KindNamed:
		if r.Iface != nil {
			return GoName(r.Iface.Name)
		}
		if r.Struct != nil {
			return GoName(r.Struct.Name)
		}
		if r.Enum != nil {
			return GoName(r.Enum.Name)
		}
	}
	return "any /* BUG: unmapped " + t.String() + " */"
}

func (t *Type) isOctetSeq() bool {
	r := t.resolve()
	return r.Kind == KindSequence && r.Elem.resolve().Kind == KindOctet
}

// zero returns the Go zero value expression for a type.
func zero(t *Type) string {
	r := t.resolve()
	switch r.Kind {
	case KindBool:
		return "false"
	case KindString:
		return `""`
	case KindSequence, KindObject:
		return "nil"
	case KindNamed:
		if r.Iface != nil {
			return GoName(r.Iface.Name) + "{}"
		}
		if r.Struct != nil {
			return GoName(r.Struct.Name) + "{}"
		}
	}
	return "0"
}

// emitWrite generates statements marshalling expr (of IDL type t) into b.
// consume selects move vs copy semantics for object types.
func (g *generator) emitWrite(indent, buf, expr string, t *Type, consume bool) {
	r := t.resolve()
	switch r.Kind {
	case KindBool:
		g.printf("%s%s.WriteBool(%s)\n", indent, buf, expr)
	case KindOctet:
		g.printf("%s%s.WriteByte(%s)\n", indent, buf, expr)
	case KindShort:
		g.printf("%s%s.WriteInt32(int32(%s))\n", indent, buf, expr)
	case KindLong:
		g.printf("%s%s.WriteInt32(%s)\n", indent, buf, expr)
	case KindLongLong:
		g.printf("%s%s.WriteInt64(%s)\n", indent, buf, expr)
	case KindUShort:
		g.printf("%s%s.WriteUint32(uint32(%s))\n", indent, buf, expr)
	case KindULong:
		g.printf("%s%s.WriteUint32(%s)\n", indent, buf, expr)
	case KindULongLong:
		g.printf("%s%s.WriteUint64(%s)\n", indent, buf, expr)
	case KindFloat:
		g.printf("%s%s.WriteFloat32(%s)\n", indent, buf, expr)
	case KindDouble:
		g.printf("%s%s.WriteFloat64(%s)\n", indent, buf, expr)
	case KindString:
		g.printf("%s%s.WriteString(%s)\n", indent, buf, expr)
	case KindSequence:
		if t.isOctetSeq() {
			g.printf("%s%s.WriteBytes(%s)\n", indent, buf, expr)
			return
		}
		g.printf("%s%s.WriteUvarint(uint64(len(%s)))\n", indent, buf, expr)
		v := g.temp("e")
		g.printf("%sfor _, %s := range %s {\n", indent, v, expr)
		g.emitWrite(indent+"\t", buf, v, r.Elem, consume)
		g.printf("%s}\n", indent)
	case KindObject: // generic object reference
		if consume {
			g.printf("%sif err := %s.Marshal(%s); err != nil {\n%s\treturn err\n%s}\n", indent, expr, buf, indent, indent)
		} else {
			g.printf("%sif err := %s.MarshalCopy(%s); err != nil {\n%s\treturn err\n%s}\n", indent, expr, buf, indent, indent)
		}
	case KindNamed:
		if r.Struct != nil {
			g.printf("%sif err := write%s(%s, %s); err != nil {\n%s\treturn err\n%s}\n",
				indent, GoName(r.Struct.Name), buf, expr, indent, indent)
			return
		}
		if r.Enum != nil {
			g.printf("%s%s.WriteUint32(uint32(%s))\n", indent, buf, expr)
			return
		}
		// Typed object reference.
		if consume {
			g.printf("%sif err := %s.Obj.Marshal(%s); err != nil {\n%s\treturn err\n%s}\n", indent, expr, buf, indent, indent)
		} else {
			g.printf("%sif err := %s.Obj.MarshalCopy(%s); err != nil {\n%s\treturn err\n%s}\n", indent, expr, buf, indent, indent)
		}
	}
}

// emitRead generates statements unmarshalling into dest (already declared,
// of the Go type for t) from buf. env is the expression for the receiving
// *core.Env (needed for object types).
func (g *generator) emitRead(indent, buf, dest, env string, t *Type) {
	r := t.resolve()
	simple := func(call string) {
		g.printf("%sif %s, err = %s.%s; err != nil {\n%s\treturn err\n%s}\n", indent, dest, buf, call, indent, indent)
	}
	switch r.Kind {
	case KindBool:
		simple("ReadBool()")
	case KindOctet:
		simple("ReadByte()")
	case KindShort:
		v := g.temp("v")
		g.printf("%s%s, err := %s.ReadInt32()\n%sif err != nil {\n%s\treturn err\n%s}\n", indent, v, buf, indent, indent, indent)
		g.printf("%s%s = int16(%s)\n", indent, dest, v)
	case KindLong:
		simple("ReadInt32()")
	case KindLongLong:
		simple("ReadInt64()")
	case KindUShort:
		v := g.temp("v")
		g.printf("%s%s, err := %s.ReadUint32()\n%sif err != nil {\n%s\treturn err\n%s}\n", indent, v, buf, indent, indent, indent)
		g.printf("%s%s = uint16(%s)\n", indent, dest, v)
	case KindULong:
		simple("ReadUint32()")
	case KindULongLong:
		simple("ReadUint64()")
	case KindFloat:
		simple("ReadFloat32()")
	case KindDouble:
		simple("ReadFloat64()")
	case KindString:
		simple("ReadString()")
	case KindSequence:
		if t.isOctetSeq() {
			p := g.temp("p")
			g.printf("%s%s, err := %s.ReadBytes()\n%sif err != nil {\n%s\treturn err\n%s}\n", indent, p, buf, indent, indent, indent)
			g.printf("%s%s = append([]byte(nil), %s...)\n", indent, dest, p)
			return
		}
		n := g.temp("n")
		g.printf("%s%s, err := %s.ReadUvarint()\n%sif err != nil {\n%s\treturn err\n%s}\n", indent, n, buf, indent, indent, indent)
		g.printf("%s%s = make([]%s, %s)\n", indent, dest, goType(r.Elem), n)
		i := g.temp("i")
		g.printf("%sfor %s := range %s {\n", indent, i, dest)
		g.emitRead(indent+"\t", buf, dest+"["+i+"]", env, r.Elem)
		g.printf("%s}\n", indent)
	case KindObject: // generic object reference
		o := g.temp("o")
		g.printf("%s%s, err := core.Unmarshal(%s, core.GenericMT, %s)\n%sif err != nil {\n%s\treturn err\n%s}\n",
			indent, o, env, buf, indent, indent, indent)
		g.printf("%s%s = %s\n", indent, dest, o)
	case KindNamed:
		if r.Struct != nil {
			v := g.temp("s")
			g.printf("%s%s, err := read%s(%s)\n%sif err != nil {\n%s\treturn err\n%s}\n",
				indent, v, GoName(r.Struct.Name), buf, indent, indent, indent)
			g.printf("%s%s = %s\n", indent, dest, v)
			return
		}
		if r.Enum != nil {
			v := g.temp("v")
			g.printf("%s%s, err := %s.ReadUint32()\n%sif err != nil {\n%s\treturn err\n%s}\n", indent, v, buf, indent, indent, indent)
			g.printf("%s%s = %s(%s)\n", indent, dest, GoName(r.Enum.Name), v)
			return
		}
		// Typed object reference.
		o := g.temp("o")
		g.printf("%s%s, err := core.Unmarshal(%s, %sMT, %s)\n%sif err != nil {\n%s\treturn err\n%s}\n",
			indent, o, env, GoName(r.Iface.Name), buf, indent, indent, indent)
		g.printf("%s%s = %s{Obj: %s}\n", indent, dest, GoName(r.Iface.Name), o)
	}
}

// Generate emits a single Go source file for f in package pkg.
func Generate(f *File, pkg string) (string, error) {
	g := &generator{}
	g.printf("// Code generated by idlgen from %s. DO NOT EDIT.\n\n", f.Name)
	g.printf("package %s\n\n", pkg)
	g.printf("import (\n")
	g.printf("\t\"repro/internal/buffer\"\n")
	g.printf("\t\"repro/internal/core\"\n")
	g.printf("\t\"repro/internal/stubs\"\n")
	g.printf(")\n\n")
	g.printf("// Silence unused-import errors in interface sets that do not\n")
	g.printf("// exercise every helper.\n")
	g.printf("var _ = buffer.New\nvar _ core.OpNum\nvar _ = stubs.Call\n\n")

	for _, m := range f.Modules {
		for _, en := range m.Enums {
			g.genEnum(en)
		}
		for _, st := range m.Structs {
			g.genStruct(st)
		}
		for _, i := range m.Interfaces {
			if err := g.genInterface(m, i); err != nil {
				return "", err
			}
		}
	}
	return g.b.String(), nil
}

// genEnum emits a Go type, member constants, and a String method for an
// IDL enum (marshalled as unsigned long).
func (g *generator) genEnum(en *Enum) {
	name := GoName(en.Name)
	g.printf("// %s is the IDL enum %s.\n", name, en.Name)
	g.printf("type %s uint32\n\n", name)
	g.printf("// %s members.\nconst (\n", name)
	for k, m := range en.Members {
		if k == 0 {
			g.printf("\t%s%s %s = iota\n", name, GoName(m), name)
		} else {
			g.printf("\t%s%s\n", name, GoName(m))
		}
	}
	g.printf(")\n\n")
	g.printf("// String implements fmt.Stringer.\n")
	g.printf("func (v %s) String() string {\n\tswitch v {\n", name)
	for _, m := range en.Members {
		g.printf("\tcase %s%s:\n\t\treturn %q\n", name, GoName(m), m)
	}
	g.printf("\t}\n\treturn \"%s(?)\"\n}\n\n", en.Name)
}

// genStruct emits a Go struct plus its marshal/unmarshal helpers for an
// IDL struct (a value aggregate, passed field by field).
func (g *generator) genStruct(st *Struct) {
	name := GoName(st.Name)
	g.printf("// %s is the IDL struct %s.\n", name, st.Name)
	g.printf("type %s struct {\n", name)
	for _, fd := range st.Fields {
		g.printf("\t%s %s\n", GoName(fd.Name), goType(fd.Type))
	}
	g.printf("}\n\n")

	g.printf("// write%s marshals v field by field.\n", name)
	g.printf("func write%s(b *buffer.Buffer, v %s) error {\n", name, name)
	for _, fd := range st.Fields {
		g.emitWrite("\t", "b", "v."+GoName(fd.Name), fd.Type, true)
	}
	g.printf("\treturn nil\n}\n\n")

	g.printf("// read%s unmarshals one %s.\n", name, name)
	g.printf("func read%s(b *buffer.Buffer) (%s, error) {\n", name, name)
	g.printf("\tvar out %s\n", name)
	g.printf("\terr := func() error {\n\t\tvar err error\n\t\t_ = err\n")
	for _, fd := range st.Fields {
		g.emitRead("\t\t", "b", "out."+GoName(fd.Name), "", fd.Type)
	}
	g.printf("\t\treturn nil\n\t}()\n\treturn out, err\n}\n\n")
}

// methodName is the Go method emitted for an operation: the attribute
// accessor name when the op desugared from an attribute, the converted
// operation name otherwise.
func methodName(op *Op) string {
	if op.GoMethod != "" {
		return op.GoMethod
	}
	return GoName(op.Name)
}

// opConst names the operation-number constant for an op on interface i.
func opConst(i *Interface, op *Op) string {
	return GoName(i.Name) + methodName(op) + "Op"
}

func (g *generator) genInterface(m *Module, i *Interface) error {
	name := GoName(i.Name)

	// Hash-collision check over the flattened table. The top two numbers
	// are reserved for subcontract-internal protocol operations (the
	// §5.1.6 type query, the video channel attach).
	byNum := make(map[uint32]string)
	for _, op := range i.Flat {
		n := OpNumOf(op.Name)
		if n >= ^uint32(1) {
			return fmt.Errorf("idl: operation %q in %s hashes to a reserved number; rename it", op.Name, i.QName())
		}
		if prev, ok := byNum[n]; ok && prev != op.Name {
			return fmt.Errorf("idl: operation-number collision between %q and %q in %s", prev, op.Name, i.QName())
		}
		byNum[n] = op.Name
	}

	g.printf("// ---------------------------------------------------------------------\n")
	g.printf("// interface %s\n\n", i.QName())
	g.printf("// %sType is the interface's runtime type identifier.\n", name)
	g.printf("const %sType core.TypeID = %q\n\n", name, i.QName())

	g.printf("// Operation numbers (stable name hashes; see idl.OpNumOf).\n")
	g.printf("const (\n")
	for _, op := range i.Ops {
		g.printf("\t%s core.OpNum = %#x\n", opConst(i, op), OpNumOf(op.Name))
	}
	g.printf(")\n\n")

	g.printf("// %sMT is the method table stubs plug together with a subcontract.\n", name)
	g.printf("var %sMT = &core.MTable{\n\tType: %sType,\n\tDefaultSC: 1, // singleton\n\tOps: []string{", name, name)
	for k, op := range i.Flat {
		if k > 0 {
			g.printf(", ")
		}
		g.printf("%q", op.Name)
	}
	g.printf("},\n}\n\n")

	g.printf("func init() {\n")
	if len(i.ResolvedBases) == 0 {
		g.printf("\tcore.MustRegisterType(%sType, core.ObjectType)\n", name)
	} else {
		g.printf("\tcore.MustRegisterType(%sType", name)
		for _, b := range i.ResolvedBases {
			g.printf(", %sType", GoName(b.Name))
		}
		g.printf(")\n")
	}
	g.printf("\tcore.MustRegisterMTable(%sMT)\n}\n\n", name)

	// Client wrapper.
	g.printf("// %s is the client view of %s objects. Opts is the invocation\n", name, i.QName())
	g.printf("// context attached to every call made through this view; see With.\n")
	g.printf("type %s struct {\n\tObj *core.Object\n\tOpts []core.CallOption\n}\n\n", name)
	g.printf("// IsNil reports whether the reference is nil.\n")
	g.printf("func (c %s) IsNil() bool { return c.Obj == nil }\n\n", name)
	g.printf("// With returns a view of the same object whose calls carry the given\n")
	g.printf("// invocation-context options (core.WithDeadline, core.WithCancel,\n")
	g.printf("// core.WithTrace) in addition to any already attached.\n")
	g.printf("func (c %s) With(opts ...core.CallOption) %s {\n", name, name)
	g.printf("\tc.Opts = append(c.Opts[:len(c.Opts):len(c.Opts)], opts...)\n\treturn c\n}\n\n")
	for _, b := range i.ResolvedBases {
		g.printf("// As%s widens the reference to its %s base interface.\n", GoName(b.Name), b.QName())
		g.printf("func (c %s) As%s() %s { return %s{Obj: c.Obj, Opts: c.Opts} }\n\n", name, GoName(b.Name), GoName(b.Name), GoName(b.Name))
	}
	g.printf("// Narrow%s narrows an object to %s, failing if the dynamic type\n// does not support it.\n", name, i.QName())
	g.printf("func Narrow%s(obj *core.Object) (%s, bool) {\n", name, name)
	g.printf("\tif obj == nil || !obj.Is(%sType) {\n\t\treturn %s{}, false\n\t}\n", name, name)
	g.printf("\treturn %s{Obj: obj}, true\n}\n\n", name)

	// Client stubs for the full flattened table, so inherited operations
	// are directly callable on the subtype's client view. The operation
	// constant lives with the declaring interface; the hash-derived
	// numbers make base-typed and subtype-typed stubs agree.
	for _, op := range i.Flat {
		g.genClientStub(i, op)
	}

	// Server interface.
	g.printf("// %sServer is the server application interface for %s.\n", name, i.QName())
	g.printf("type %sServer interface {\n", name)
	for _, b := range i.ResolvedBases {
		g.printf("\t%sServer\n", GoName(b.Name))
	}
	for _, op := range i.Ops {
		g.printf("\t%s\n", g.implSig(op))
	}
	g.printf("}\n\n")

	// Skeleton.
	g.genSkeleton(i)
	return nil
}

// splitParams partitions an op's parameters for signature construction.
func splitParams(op *Op) (inputs, outputs []*Param) {
	for _, p := range op.Params {
		switch p.Mode {
		case ModeIn, ModeCopy:
			inputs = append(inputs, p)
		case ModeOut:
			outputs = append(outputs, p)
		case ModeInOut:
			inputs = append(inputs, p)
			outputs = append(outputs, p)
		}
	}
	return inputs, outputs
}

// implSig renders the Go method signature shared by client stub and server
// interface: inputs as arguments, return value + out params + error as
// results.
func (g *generator) implSig(op *Op) string {
	inputs, outputs := splitParams(op)
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", methodName(op))
	for k, p := range inputs {
		if k > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", goLocal(p.Name), goType(p.Type))
	}
	b.WriteString(")")
	var results []string
	if op.Ret != nil {
		results = append(results, goType(op.Ret))
	}
	for _, p := range outputs {
		results = append(results, goType(p.Type))
	}
	results = append(results, "error")
	if len(results) == 1 {
		b.WriteString(" error")
	} else {
		fmt.Fprintf(&b, " (%s)", strings.Join(results, ", "))
	}
	return b.String()
}

func (g *generator) genClientStub(i *Interface, op *Op) {
	name := GoName(i.Name)
	inputs, outputs := splitParams(op)

	if op.Oneway {
		g.printf("// %s invokes the oneway %s operation: server failures are\n// not reported (fire and forget).\n", methodName(op), op.Name)
		g.printf("func (c %s) %s {\n", name, g.implSig(op))
		if len(inputs) == 0 {
			g.printf("\treturn stubs.CallOneway(c.Obj, %s, nil, c.Opts...)\n}\n\n", opConst(op.Owner, op))
			return
		}
		g.printf("\treturn stubs.CallOneway(c.Obj, %s, func(b *buffer.Buffer) error {\n", opConst(op.Owner, op))
		for _, p := range inputs {
			g.emitWrite("\t\t", "b", goLocal(p.Name), p.Type, p.Mode != ModeCopy)
		}
		g.printf("\t\treturn nil\n\t}, c.Opts...)\n}\n\n")
		return
	}

	g.printf("// %s invokes the %s operation.\n", methodName(op), op.Name)
	g.printf("func (c %s) %s {\n", name, g.implSig(op))

	// Result variables.
	if op.Ret != nil {
		g.printf("\tvar ret0 %s = %s\n", goType(op.Ret), zero(op.Ret))
	}
	for k, p := range outputs {
		g.printf("\tvar out%d %s = %s\n", k, goType(p.Type), zero(p.Type))
	}

	g.printf("\terr := stubs.Call(c.Obj, %s,\n", opConst(op.Owner, op))
	// Argument marshalling closure.
	if len(inputs) == 0 {
		g.printf("\t\tnil,\n")
	} else {
		g.printf("\t\tfunc(b *buffer.Buffer) error {\n")
		for _, p := range inputs {
			g.emitWrite("\t\t\t", "b", goLocal(p.Name), p.Type, p.Mode != ModeCopy)
		}
		g.printf("\t\t\treturn nil\n\t\t},\n")
	}
	// Result unmarshalling closure.
	if op.Ret == nil && len(outputs) == 0 {
		g.printf("\t\tnil, c.Opts...)\n")
	} else {
		g.printf("\t\tfunc(b *buffer.Buffer) error {\n")
		g.printf("\t\t\tvar err error\n\t\t\t_ = err\n")
		if op.Ret != nil {
			g.emitRead("\t\t\t", "b", "ret0", "c.Obj.Env", op.Ret)
		}
		for k, p := range outputs {
			g.emitRead("\t\t\t", "b", fmt.Sprintf("out%d", k), "c.Obj.Env", p.Type)
		}
		g.printf("\t\t\treturn nil\n\t\t}, c.Opts...)\n")
	}

	// Return.
	g.printf("\treturn ")
	if op.Ret != nil {
		g.printf("ret0, ")
	}
	for k := range outputs {
		g.printf("out%d, ", k)
	}
	g.printf("err\n}\n\n")
}

func (g *generator) genSkeleton(i *Interface) {
	name := GoName(i.Name)
	g.printf("// New%sSkeleton dispatches incoming calls into impl. env is the\n", name)
	g.printf("// server's environment (used to unmarshal object-typed arguments).\n")
	g.printf("func New%sSkeleton(env *core.Env, impl %sServer) stubs.Skeleton {\n", name, name)
	g.printf("\t_ = env\n")
	g.printf("\treturn stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {\n")
	g.printf("\t\tswitch op {\n")
	for _, op := range i.Flat {
		g.printf("\t\tcase %#x: // %s (from %s)\n", OpNumOf(op.Name), op.Name, op.Owner.QName())
		g.genDispatchCase(op)
	}
	g.printf("\t\tdefault:\n\t\t\treturn stubs.ErrBadOp\n")
	g.printf("\t\t}\n\t})\n}\n\n")
}

func (g *generator) genDispatchCase(op *Op) {
	inputs, outputs := splitParams(op)
	// Unmarshal inputs.
	for k, p := range inputs {
		g.printf("\t\t\tvar a%d %s = %s\n", k, goType(p.Type), zero(p.Type))
		_ = p
	}
	if len(inputs) > 0 {
		g.printf("\t\t\t{\n\t\t\t\tvar err error\n\t\t\t\t_ = err\n")
		for k, p := range inputs {
			g.emitRead("\t\t\t\t", "args", fmt.Sprintf("a%d", k), "env", p.Type)
		}
		g.printf("\t\t\t}\n")
	}
	// Call implementation.
	g.printf("\t\t\t")
	if op.Ret != nil {
		g.printf("r0, ")
	}
	for k := range outputs {
		g.printf("o%d, ", k)
	}
	g.printf("err := impl.%s(", methodName(op))
	for k := range inputs {
		if k > 0 {
			g.printf(", ")
		}
		g.printf("a%d", k)
	}
	g.printf(")\n")
	g.printf("\t\t\tif err != nil {\n\t\t\t\treturn err\n\t\t\t}\n")
	// Marshal results.
	if op.Ret != nil {
		g.emitWrite("\t\t\t", "results", "r0", op.Ret, true)
	}
	for k, p := range outputs {
		g.emitWrite("\t\t\t", "results", fmt.Sprintf("o%d", k), p.Type, true)
	}
	g.printf("\t\t\treturn nil\n")
}
