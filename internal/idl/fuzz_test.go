package idl

import "testing"

// FuzzParse feeds arbitrary source to the compiler: it may reject input
// but must never panic, and accepted input must generate formattable code.
func FuzzParse(f *testing.F) {
	f.Add("module m { interface i { void f(in long x); }; };")
	f.Add(sample)
	f.Add("module m { typedef sequence<sequence<string>> deep; };")
	f.Add("module m { interface i { readonly attribute Object o; }; };")
	f.Add("module a { }; module b { };")
	f.Add("/* comment */ module m { // line\n };")

	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse("fuzz.idl", src)
		if err != nil {
			return
		}
		if _, err := Generate(file, "fuzzed"); err != nil {
			// Generation may reject (reserved opnum hashes); it must not
			// panic, which arriving here already proves.
			return
		}
	})
}
