package idl

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	file string
	toks []Token
	pos  int
}

// Parse compiles IDL source into a checked AST.
func Parse(file, src string) (*File, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	f := &File{Name: file}
	for p.peek().Kind != TokEOF {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		f.Modules = append(f.Modules, m)
	}
	if err := check(f); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t Token, format string, args ...any) *Error {
	return &Error{File: p.file, Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind TokKind, what string) (Token, error) {
	t := p.next()
	if t.Kind != kind {
		return t, p.errf(t, "expected %s, found %s", what, t)
	}
	return t, nil
}

// expectKeyword consumes an identifier with the given (case-sensitive)
// text.
func (p *parser) expectKeyword(word string) (Token, error) {
	t := p.next()
	if t.Kind != TokIdent || t.Text != word {
		return t, p.errf(t, "expected %q, found %s", word, t)
	}
	return t, nil
}

// peekKeyword reports whether the next token is the given identifier.
func (p *parser) peekKeyword(word string) bool {
	t := p.peek()
	return t.Kind == TokIdent && t.Text == word
}

// ident consumes a non-keyword identifier.
func (p *parser) ident(what string) (Token, error) {
	t, err := p.expect(TokIdent, what)
	if err != nil {
		return t, err
	}
	if keyword(t.Text) {
		return t, p.errf(t, "%q is a reserved word (expected %s)", t.Text, what)
	}
	return t, nil
}

// parseModule parses: module NAME { definitions } ;
func (p *parser) parseModule() (*Module, error) {
	kw, err := p.expectKeyword("module")
	if err != nil {
		return nil, err
	}
	name, err := p.ident("module name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	m := &Module{Name: name.Text, Line: kw.Line, Col: kw.Col}
	for {
		switch {
		case p.peek().Kind == TokRBrace:
			p.next()
			if _, err := p.expect(TokSemi, "';' after module"); err != nil {
				return nil, err
			}
			return m, nil
		case p.peekKeyword("typedef"):
			td, err := p.parseTypedef()
			if err != nil {
				return nil, err
			}
			m.Typedefs = append(m.Typedefs, td)
		case p.peekKeyword("struct"):
			st, err := p.parseStruct()
			if err != nil {
				return nil, err
			}
			m.Structs = append(m.Structs, st)
		case p.peekKeyword("enum"):
			en, err := p.parseEnum()
			if err != nil {
				return nil, err
			}
			m.Enums = append(m.Enums, en)
		case p.peekKeyword("interface"):
			i, err := p.parseInterface(m)
			if err != nil {
				return nil, err
			}
			m.Interfaces = append(m.Interfaces, i)
		default:
			return nil, p.errf(p.peek(), "expected typedef, interface or '}', found %s", p.peek())
		}
	}
}

// parseTypedef parses: typedef TYPE NAME ;
func (p *parser) parseTypedef() (*Typedef, error) {
	kw, _ := p.expectKeyword("typedef")
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.ident("typedef name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	return &Typedef{Name: name.Text, Type: typ, Line: kw.Line, Col: kw.Col}, nil
}

// parseStruct parses: struct NAME { TYPE FIELD ; ... } ;
func (p *parser) parseStruct() (*Struct, error) {
	kw, _ := p.expectKeyword("struct")
	name, err := p.ident("struct name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	st := &Struct{Name: name.Text, Line: kw.Line, Col: kw.Col}
	for p.peek().Kind != TokRBrace {
		ft := p.peek()
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname, err := p.ident("field name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		st.Fields = append(st.Fields, &Field{Type: typ, Name: fname.Text, Line: ft.Line, Col: ft.Col})
	}
	p.next() // '}'
	if _, err := p.expect(TokSemi, "';' after struct"); err != nil {
		return nil, err
	}
	if len(st.Fields) == 0 {
		return nil, p.errf(kw, "struct %q has no fields", st.Name)
	}
	return st, nil
}

// parseEnum parses: enum NAME { A, B, ... } ;
func (p *parser) parseEnum() (*Enum, error) {
	kw, _ := p.expectKeyword("enum")
	name, err := p.ident("enum name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	en := &Enum{Name: name.Text, Line: kw.Line, Col: kw.Col}
	for {
		m, err := p.ident("enum member")
		if err != nil {
			return nil, err
		}
		en.Members = append(en.Members, m.Text)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(TokRBrace, "'}'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, "';' after enum"); err != nil {
		return nil, err
	}
	return en, nil
}

// parseInterface parses: interface NAME [: base, ...] { ops } ;
func (p *parser) parseInterface(m *Module) (*Interface, error) {
	kw, _ := p.expectKeyword("interface")
	name, err := p.ident("interface name")
	if err != nil {
		return nil, err
	}
	i := &Interface{Name: name.Text, Module: m, Line: kw.Line, Col: kw.Col}
	if p.peek().Kind == TokColon {
		p.next()
		for {
			b, err := p.ident("base interface name")
			if err != nil {
				return nil, err
			}
			i.Bases = append(i.Bases, b.Text)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	for p.peek().Kind != TokRBrace {
		if p.peekKeyword("readonly") || p.peekKeyword("attribute") {
			ops, err := p.parseAttribute(i)
			if err != nil {
				return nil, err
			}
			i.Ops = append(i.Ops, ops...)
			continue
		}
		op, err := p.parseOp(i)
		if err != nil {
			return nil, err
		}
		i.Ops = append(i.Ops, op)
	}
	p.next() // '}'
	if _, err := p.expect(TokSemi, "';' after interface"); err != nil {
		return nil, err
	}
	return i, nil
}

// parseAttribute parses: [readonly] attribute TYPE NAME ; and desugars it
// into a getter operation (and a setter unless readonly), following the
// CORBA _get_/_set_ convention.
func (p *parser) parseAttribute(owner *Interface) ([]*Op, error) {
	start := p.peek()
	readonly := false
	if p.peekKeyword("readonly") {
		p.next()
		readonly = true
	}
	if _, err := p.expectKeyword("attribute"); err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.ident("attribute name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	getter := &Op{
		Name:     "_get_" + name.Text,
		Ret:      typ,
		Owner:    owner,
		GoMethod: GoName(name.Text),
		Line:     start.Line, Col: start.Col,
	}
	if readonly {
		return []*Op{getter}, nil
	}
	setter := &Op{
		Name:     "_set_" + name.Text,
		Params:   []*Param{{Mode: ModeIn, Type: typ, Name: name.Text, Line: start.Line, Col: start.Col}},
		Owner:    owner,
		GoMethod: "Set" + GoName(name.Text),
		Line:     start.Line, Col: start.Col,
	}
	return []*Op{getter, setter}, nil
}

// parseOp parses: [oneway] (void|TYPE) NAME ( params ) ;
func (p *parser) parseOp(owner *Interface) (*Op, error) {
	op := &Op{Owner: owner}
	if p.peekKeyword("oneway") {
		p.next()
		op.Oneway = true
	}
	start := p.peek()
	op.Line, op.Col = start.Line, start.Col
	if p.peekKeyword("void") {
		p.next()
	} else {
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		op.Ret = typ
	}
	name, err := p.ident("operation name")
	if err != nil {
		return nil, err
	}
	op.Name = name.Text
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return nil, err
	}
	if p.peek().Kind != TokRParen {
		for {
			param, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			op.Params = append(op.Params, param)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(TokRParen, "')'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	if op.Oneway && (op.Ret != nil || hasOut(op)) {
		return nil, p.errf(start, "oneway operation %q cannot return values", op.Name)
	}
	return op, nil
}

func hasOut(op *Op) bool {
	for _, p := range op.Params {
		if p.Mode == ModeOut || p.Mode == ModeInOut {
			return true
		}
	}
	return false
}

// parseParam parses: (in|out|inout|copy) TYPE NAME
func (p *parser) parseParam() (*Param, error) {
	t := p.peek()
	var mode ParamMode
	switch {
	case p.peekKeyword("in"):
		mode = ModeIn
	case p.peekKeyword("out"):
		mode = ModeOut
	case p.peekKeyword("inout"):
		mode = ModeInOut
	case p.peekKeyword("copy"):
		mode = ModeCopy
	default:
		return nil, p.errf(t, "expected parameter mode (in/out/inout/copy), found %s", t)
	}
	p.next()
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.ident("parameter name")
	if err != nil {
		return nil, err
	}
	return &Param{Mode: mode, Type: typ, Name: name.Text, Line: t.Line, Col: t.Col}, nil
}

// parseType parses a type expression.
func (p *parser) parseType() (*Type, error) {
	t := p.peek()
	mk := func(k TypeKind) *Type {
		p.next()
		return &Type{Kind: k, Line: t.Line, Col: t.Col}
	}
	if t.Kind != TokIdent {
		return nil, p.errf(t, "expected type, found %s", t)
	}
	switch t.Text {
	case "boolean":
		return mk(KindBool), nil
	case "octet":
		return mk(KindOctet), nil
	case "short":
		return mk(KindShort), nil
	case "float":
		return mk(KindFloat), nil
	case "double":
		return mk(KindDouble), nil
	case "string":
		return mk(KindString), nil
	case "long":
		p.next()
		if p.peekKeyword("long") {
			p.next()
			return &Type{Kind: KindLongLong, Line: t.Line, Col: t.Col}, nil
		}
		return &Type{Kind: KindLong, Line: t.Line, Col: t.Col}, nil
	case "unsigned":
		p.next()
		switch {
		case p.peekKeyword("short"):
			p.next()
			return &Type{Kind: KindUShort, Line: t.Line, Col: t.Col}, nil
		case p.peekKeyword("long"):
			p.next()
			if p.peekKeyword("long") {
				p.next()
				return &Type{Kind: KindULongLong, Line: t.Line, Col: t.Col}, nil
			}
			return &Type{Kind: KindULong, Line: t.Line, Col: t.Col}, nil
		}
		return nil, p.errf(p.peek(), "expected short or long after unsigned")
	case "Object":
		p.next()
		return &Type{Kind: KindObject, Line: t.Line, Col: t.Col}, nil
	case "sequence":
		p.next()
		if _, err := p.expect(TokLAngle, "'<'"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRAngle, "'>'"); err != nil {
			return nil, err
		}
		return &Type{Kind: KindSequence, Elem: elem, Line: t.Line, Col: t.Col}, nil
	case "void":
		return nil, p.errf(t, "void is only valid as an operation return type")
	}
	if keyword(t.Text) {
		return nil, p.errf(t, "unexpected keyword %q in type", t.Text)
	}
	p.next()
	return &Type{Kind: KindNamed, Name: t.Text, Line: t.Line, Col: t.Col}, nil
}
