package idl

import (
	"go/format"
	"strings"
	"testing"
)

const structSample = `
module sx {
    enum color { red, green, blue };

    struct point {
        double x;
        double y;
    };

    struct shape {
        string name;
        color tint;
        sequence<point> outline;
    };

    interface canvas {
        void draw(in shape s);
        shape hit_test(in point p);
        color background();
    };
};
`

func TestParseStructEnum(t *testing.T) {
	f, err := Parse("sx.idl", structSample)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Modules[0]
	if len(m.Enums) != 1 || m.Enums[0].Name != "color" || len(m.Enums[0].Members) != 3 {
		t.Fatalf("enums = %+v", m.Enums)
	}
	if len(m.Structs) != 2 {
		t.Fatalf("structs = %d", len(m.Structs))
	}
	shape := m.Structs[1]
	if shape.Name != "shape" || len(shape.Fields) != 3 {
		t.Fatalf("shape = %+v", shape)
	}
	// Field types resolve: tint → enum, outline → sequence<struct>.
	if shape.Fields[1].Type.resolve().Enum == nil {
		t.Fatal("tint did not resolve to the enum")
	}
	if shape.Fields[2].Type.resolve().Elem.resolve().Struct == nil {
		t.Fatal("outline element did not resolve to the struct")
	}
}

func TestGenerateStructEnum(t *testing.T) {
	f, err := Parse("sx.idl", structSample)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(f, "sxgen")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"type Color uint32",
		"ColorRed Color = iota",
		"func (v Color) String() string",
		"type Point struct",
		"type Shape struct",
		"Tint Color",
		"Outline []Point",
		"func writeShape(b *buffer.Buffer, v Shape) error",
		"func readShape(b *buffer.Buffer) (Shape, error)",
		"func (c Canvas) Draw(s Shape) error",
		"func (c Canvas) HitTest(p Point) (Shape, error)",
		"func (c Canvas) Background() (Color, error)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	if _, err := format.Source([]byte(code)); err != nil {
		t.Fatalf("generated code does not format: %v\n----\n%s", err, code)
	}
}

func TestStructErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"empty struct", "module m { struct s { }; };", "no fields"},
		{"dup field", "module m { struct s { long a; long a; }; };", "duplicate field"},
		{"object field", `
module m {
  interface i { void f(); };
  struct s { i ref; };
};`, "object references are not allowed"},
		{"generic object field", "module m { struct s { Object o; }; };", "object references are not allowed"},
		{"recursive", "module m { struct s { s again; }; };", "recursive struct"},
		{"mutual recursion", `
module m {
  struct a { b x; };
  struct b { a y; };
};`, "recursive struct"},
		{"dup enum member", "module m { enum e { a, a }; };", "duplicate member"},
		{"name clash", "module m { struct x { long a; }; enum x { b }; };", "duplicate name"},
		{"undefined field type", "module m { struct s { widget w; }; };", "undefined type"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.name+".idl", c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestStructInSequenceNonRecursive(t *testing.T) {
	// A struct containing a sequence of itself is still recursive.
	_, err := Parse("r.idl", "module m { struct s { sequence<s> kids; }; };")
	if err == nil || !strings.Contains(err.Error(), "recursive struct") {
		t.Fatalf("err = %v", err)
	}
	// But two structs where one embeds a sequence of the other is fine.
	if _, err := Parse("ok.idl", `
module m {
  struct leaf { long v; };
  struct tree { sequence<leaf> leaves; };
};`); err != nil {
		t.Fatal(err)
	}
}
