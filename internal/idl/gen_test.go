package idl

import (
	"go/format"
	goparser "go/parser"
	"go/token"
	"testing"
	"testing/quick"
)

// TestGeneratedCodeIsValidGo parses and formats every generator output in
// this suite, so codegen regressions surface as syntax errors here rather
// than as broken checked-in files.
func TestGeneratedCodeIsValidGo(t *testing.T) {
	sources := map[string]string{
		"sample": sample,
		"objects": `
module op {
    interface thing { void poke(); };
    interface holder {
        void put(in thing t);
        void lend(copy thing t);
        thing get();
        sequence<thing> all();
    };
};`,
		"kitchen sink": `
module ks {
    typedef sequence<string> names;
    typedef sequence<octet> blob;
    interface base { names list(); };
    interface kitchen : base {
        blob mix(in blob a, inout blob b, out blob c);
        double ratio(in float x, in unsigned long long y);
        oneway void fire();
        void nested(in sequence<sequence<long>> grid);
    };
};`,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			f, err := Parse(name+".idl", src)
			if err != nil {
				t.Fatal(err)
			}
			code, err := Generate(f, "gencheck")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := format.Source([]byte(code)); err != nil {
				t.Fatalf("generated code does not format: %v\n----\n%s", err, code)
			}
			fset := token.NewFileSet()
			if _, err := goparser.ParseFile(fset, name+".go", code, 0); err != nil {
				t.Fatalf("generated code does not parse: %v", err)
			}
		})
	}
}

// TestParserNeverPanics feeds random bytes to the parser: errors are fine,
// panics are not.
func TestParserNeverPanics(t *testing.T) {
	f := func(src []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse("fuzz.idl", string(src))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNearMissInputs exercises almost-valid sources that have
// historically tripped hand-written parsers.
func TestParserNearMissInputs(t *testing.T) {
	cases := []string{
		"module",
		"module m",
		"module m {",
		"module m { interface",
		"module m { interface i",
		"module m { interface i {",
		"module m { interface i { void",
		"module m { interface i { void f",
		"module m { interface i { void f(",
		"module m { interface i { void f(in",
		"module m { interface i { void f(in long",
		"module m { interface i { void f(in long x",
		"module m { interface i { void f(in long x)",
		"module m { interface i { void f(in long x); }",
		"module m { interface i { void f(in long x); };",
		"module m { interface i { sequence<",
		"module m { interface i { sequence<long",
		"module m { typedef",
		"module m { typedef long",
		"interface i { };",
	}
	for _, src := range cases {
		if _, err := Parse("nearmiss.idl", src); err == nil && src != "module m { interface i { void f(in long x); };" {
			// Only the single complete source may succeed... and it is
			// missing the closing module brace, so even it must fail.
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

// TestGoNameEdgeCases pins the identifier conversion.
func TestGoNameEdgeCases(t *testing.T) {
	cases := map[string]string{
		"x":        "X",
		"already":  "Already",
		"a_b":      "AB",
		"long_one": "LongOne",
	}
	for in, want := range cases {
		if got := GoName(in); got != want {
			t.Errorf("GoName(%q) = %q, want %q", in, got, want)
		}
	}
}
