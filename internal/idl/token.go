// Package idl implements the interface definition language of §3.1: an
// object-oriented IDL with multiple inheritance, purely concerned with
// interface properties. The unifying principle of Spring is that all key
// interfaces are defined in IDL; language-specific stubs are generated
// from them (cmd/idlgen emits Go stubs over internal/stubs).
//
// The subset implemented covers what the paper's systems need:
//
//	module m { ... };
//	typedef sequence<octet> bytes;
//	interface file : base1, base2 {
//	    long long read(in long long offset, in long size, out bytes data);
//	    void give(copy file f);      // the copy parameter mode of §5.1.5
//	};
//
// Types: void, boolean, octet, short, long, long long, unsigned variants,
// float, double, string, sequence<T>, typedefs and interface references.
package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokLBrace // {
	TokRBrace // }
	TokLParen // (
	TokRParen // )
	TokLAngle // <
	TokRAngle // >
	TokColon  // :
	TokSemi   // ;
	TokComma  // ,
	TokEquals // =
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokIdent, TokNumber:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Error is a positioned compile error.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// lexer turns IDL source into tokens.
type lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) errf(line, col int, format string, args ...any) *Error {
	return &Error{File: l.file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpace consumes whitespace and both comment styles.
func (l *lexer) skipSpace() error {
	for {
		c, ok := l.peekByte()
		if !ok {
			return nil
		}
		switch {
		case unicode.IsSpace(rune(c)):
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(line, col, "unterminated block comment")
			}
		default:
			return nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	switch {
	case isIdentStart(c):
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentPart(c) {
				break
			}
			l.advance()
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Line: line, Col: col}, nil
	case unicode.IsDigit(rune(c)):
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !unicode.IsDigit(rune(c)) {
				break
			}
			l.advance()
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Line: line, Col: col}, nil
	}
	l.advance()
	kind, ok := map[byte]TokKind{
		'{': TokLBrace, '}': TokRBrace, '(': TokLParen, ')': TokRParen,
		'<': TokLAngle, '>': TokRAngle, ':': TokColon, ';': TokSemi,
		',': TokComma, '=': TokEquals,
	}[c]
	if !ok {
		return Token{}, l.errf(line, col, "unexpected character %q", string(c))
	}
	return Token{Kind: kind, Text: string(c), Line: line, Col: col}, nil
}

// lexAll tokenizes the whole source (including the trailing EOF token).
func lexAll(file, src string) ([]Token, error) {
	l := newLexer(file, src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

// keyword reports whether an identifier is a reserved word.
func keyword(s string) bool {
	switch strings.ToLower(s) {
	case "module", "interface", "typedef", "sequence", "void", "boolean",
		"octet", "short", "long", "unsigned", "float", "double", "string",
		"in", "out", "inout", "copy", "oneway", "attribute", "readonly",
		"Object", "struct", "enum":
		return true
	}
	return false
}
