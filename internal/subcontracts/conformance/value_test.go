package conformance_test

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/value"
)

// The value subcontract sits outside the sctest.Conformance battery by
// design (its copy yields independent state, §6.3), so this package
// drives it directly: the TestMain scstats audit requires "value" to have
// recorded calls, and this is where they come from.

const probeType core.TypeID = "conformance.valueprobe"

var probeMT = &core.MTable{Type: probeType, DefaultSC: value.SCID, Ops: []string{"get"}}

func init() {
	core.MustRegisterType(probeType, core.ObjectType)
	core.MustRegisterMTable(probeMT)
	value.RegisterHandler(probeType, value.HandlerFunc(
		func(state []byte, op core.OpNum, args, results *buffer.Buffer) ([]byte, error) {
			results.WriteBytes(state)
			return state, nil
		}))
}

// valueProbe fabricates a probe value object for the trace cases.
func valueProbe(env *core.Env) *core.Object {
	return value.New(env, probeMT, []byte{7, 7})
}

func TestValueInstrumentation(t *testing.T) {
	env, err := sctest.NewEnv(kernel.New("value-audit"), "value", libs(t, value.Register)...)
	if err != nil {
		t.Fatal(err)
	}
	obj := value.New(env, probeMT, []byte{7, 7})
	var got []byte
	err = stubs.Call(obj, 0, nil, func(b *buffer.Buffer) error {
		var err error
		got, err = b.ReadBytes()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 7 {
		t.Fatalf("value call returned %v", got)
	}
}
