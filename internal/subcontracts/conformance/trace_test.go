package conformance_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netd"
	"repro/internal/sched"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/caching"
	"repro/internal/subcontracts/cluster"
	"repro/internal/subcontracts/priority"
	"repro/internal/subcontracts/reconnectable"
	"repro/internal/subcontracts/replicon"
	"repro/internal/subcontracts/shm"
	"repro/internal/subcontracts/simplex"
	"repro/internal/subcontracts/singleton"
	"repro/internal/subcontracts/txnsc"
	"repro/internal/subcontracts/video"
	"repro/internal/trace"
	"repro/internal/txn"
)

// These cases extend the conformance battery with the trace obligations:
// a call made with an explicit trace identifier must surface that same
// identifier on the server side of every subcontract, and the recorded
// spans must form a parent/child chain — the subcontract's invoke span
// parenting the server skeleton span. Together with the scstats TestMain
// audit this is the proof that the §5 ops-vector instrumentation carries
// the full (trace, span, parent) triple, not just a counter bump.

// spanIndex maps the recorded spans of one trace by name for assertions.
func spanIndex(t *testing.T, traceID uint64) map[string][]trace.SpanData {
	t.Helper()
	byName := make(map[string][]trace.SpanData)
	for _, sd := range trace.Collect(traceID) {
		if sd.TraceID != traceID {
			t.Fatalf("span %q carries trace %016x, want %016x", sd.Name, sd.TraceID, traceID)
		}
		byName[sd.Name] = append(byName[sd.Name], sd)
	}
	return byName
}

// assertChildOf fails unless some span named child has a parent span
// named parent within the same trace.
func assertChildOf(t *testing.T, byName map[string][]trace.SpanData, child, parent string) {
	t.Helper()
	parents := make(map[uint64]string)
	for name, sds := range byName {
		for _, sd := range sds {
			parents[sd.SpanID] = name
		}
	}
	for _, sd := range byName[child] {
		if parents[sd.ParentID] == parent {
			return
		}
	}
	t.Errorf("no %q span is a child of %q (have %v)", child, parent, byName)
}

// traceExports enumerates every server-based subcontract with an export
// that needs no machine-wide fixture. caching, reconnectable and the netd
// hop get their own cases below.
func traceExports(t *testing.T) map[string]func(srv *core.Env) *core.Object {
	t.Helper()
	exec := sched.NewExecutor(2)
	t.Cleanup(exec.Close)
	coord := txn.NewCoordinator()
	shmSC := shm.New(shm.Direct)
	return map[string]func(srv *core.Env) *core.Object{
		"singleton": func(srv *core.Env) *core.Object {
			obj, _ := singleton.Export(srv, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
			return obj
		},
		"simplex": func(srv *core.Env) *core.Object {
			return simplex.Export(srv, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
		},
		"cluster": func(srv *core.Env) *core.Object {
			obj, err := cluster.NewServer(srv).Export(sctest.CounterMT, (&sctest.Counter{}).Skeleton())
			if err != nil {
				t.Fatal(err)
			}
			return obj
		},
		"replicon": func(srv *core.Env) *core.Object {
			g := replicon.NewGroup()
			g.Join(srv, "r0", (&sctest.Counter{}).Skeleton())
			return g.Export(srv, sctest.CounterMT)
		},
		"priority": func(srv *core.Env) *core.Object {
			obj, _ := priority.Export(srv, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), exec, nil)
			return obj
		},
		"txn": func(srv *core.Env) *core.Object {
			ctr := &sctest.Counter{}
			skel := txnsc.SkeletonFunc(func(id txn.ID, op core.OpNum, args, results *buffer.Buffer) error {
				return ctr.Skeleton().Dispatch(op, args, results)
			})
			obj, _ := txnsc.Export(srv, sctest.CounterMT, skel, nopParticipant{}, coord, nil)
			return obj
		},
		"shm": func(srv *core.Env) *core.Object {
			if err := shmSC.Register(srv.Registry); err != nil {
				t.Fatal(err)
			}
			obj, _ := shmSC.Export(srv, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
			return obj
		},
		"video": func(srv *core.Env) *core.Object {
			obj, _ := video.Export(srv, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), video.NewSource(), nil)
			return obj
		},
	}
}

func TestTracePropagatesPerSubcontract(t *testing.T) {
	for name, export := range traceExports(t) {
		t.Run(name, func(t *testing.T) {
			srv := plainEnv(t, kernel.New("trace-"+name), "server")
			obj := export(srv)
			traceID := trace.NewTraceID()
			if v, err := sctest.Add(obj, 5, core.WithTrace(traceID)); err != nil || v != 5 {
				t.Fatalf("Add = %d, %v", v, err)
			}
			byName := spanIndex(t, traceID)
			invoke := name + ".invoke"
			if name == "simplex" {
				// A freshly exported simplex object is in its server's
				// address space: the doorless fast path serves the call.
				invoke = "simplex(local).invoke"
			}
			if len(byName[invoke]) == 0 {
				t.Fatalf("no %q span recorded; have %v", invoke, byName)
			}
			assertChildOf(t, byName, "skeleton", invoke)
		})
	}
}

// TestTracePropagatesValue covers the doorless value subcontract: the
// handler dispatch still runs under a skeleton span inside value.invoke.
func TestTracePropagatesValue(t *testing.T) {
	env, err := sctest.NewEnv(kernel.New("trace-value"), "value", libs(t)...)
	if err != nil {
		t.Fatal(err)
	}
	obj := valueProbe(env)
	traceID := trace.NewTraceID()
	if err := stubs.Call(obj, 0, nil, nil, core.WithTrace(traceID)); err != nil {
		t.Fatal(err)
	}
	byName := spanIndex(t, traceID)
	if len(byName["value.invoke"]) == 0 {
		t.Fatalf("no value.invoke span; have %v", byName)
	}
	assertChildOf(t, byName, "skeleton", "value.invoke")
}

// infoCapture records the invocation context the server skeleton sees.
type infoCapture struct {
	inner stubs.Skeleton
	mu    sync.Mutex
	seen  []kernel.Info
}

func (c *infoCapture) Dispatch(op core.OpNum, args, results *buffer.Buffer) error {
	return c.DispatchInfo(op, args, results, nil)
}

func (c *infoCapture) DispatchInfo(op core.OpNum, args, results *buffer.Buffer, info *kernel.Info) error {
	c.mu.Lock()
	if info != nil {
		c.seen = append(c.seen, *info)
	}
	c.mu.Unlock()
	return c.inner.Dispatch(op, args, results)
}

// TestServerSeesCallersTrace asserts, via an InfoSkeleton, that the exact
// trace identifier a caller attaches arrives in the server's kernel.Info,
// with the server's span a fresh child (Span set, Parent pointing back up
// the chain, neither equal to the caller's raw identifiers).
func TestServerSeesCallersTrace(t *testing.T) {
	srv := plainEnv(t, kernel.New("trace-info"), "server")
	cap := &infoCapture{inner: (&sctest.Counter{}).Skeleton()}
	obj, _ := singleton.Export(srv, sctest.CounterMT, cap, nil)
	traceID := trace.NewTraceID()
	if _, err := sctest.Add(obj, 1, core.WithTrace(traceID)); err != nil {
		t.Fatal(err)
	}
	cap.mu.Lock()
	defer cap.mu.Unlock()
	if len(cap.seen) != 1 {
		t.Fatalf("captured %d contexts, want 1", len(cap.seen))
	}
	info := cap.seen[0]
	if info.Trace != traceID {
		t.Errorf("server-seen trace = %016x, want %016x", info.Trace, traceID)
	}
	if info.Span == 0 || info.Parent == 0 {
		t.Errorf("server-seen span/parent = %016x/%016x, want both nonzero", info.Span, info.Parent)
	}
	if info.Span == info.Parent {
		t.Errorf("span == parent (%016x); Begin did not mint a child", info.Span)
	}
}

// TestTraceAcrossNetdHop runs the traced call through a real network hop
// (two in-process machines) and asserts the server-side spans nest under
// the client's netd.send span: one trace, both sides.
func TestTraceAcrossNetdHop(t *testing.T) {
	kA := kernel.New("trace-mA")
	netA, err := netd.Start(kA.NewDomain("netd"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer netA.Close()
	kB := kernel.New("trace-mB")
	netB, err := netd.Start(kB.NewDomain("netd"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer netB.Close()

	srv := plainEnv(t, kA, "server")
	obj, _ := singleton.Export(srv, sctest.CounterMT, (&sctest.Counter{}).Skeleton(), nil)
	netA.PublishRoot("ctr", obj)
	cli := plainEnv(t, kB, "client")
	remote, err := netB.ImportRootObject(cli, netA.Addr(), "ctr", sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	traceID := trace.NewTraceID()
	if v, err := sctest.Add(remote, 2, core.WithTrace(traceID)); err != nil || v != 2 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	// Client side: the proxy's singleton.invoke span parents netd.send.
	// Server side: netd.serve (minted from the wire-carried parent) nests
	// under netd.send, and the skeleton under that — one tree, two
	// machines.
	byName := spanIndex(t, traceID)
	assertChildOf(t, byName, "netd.send", "singleton.invoke")
	assertChildOf(t, byName, "netd.serve", "netd.send")
	assertChildOf(t, byName, "skeleton", "netd.serve")
}

// TestTraceRetryAndReconnect crashes and restarts a reconnectable server
// mid-trace: the retry and reconnect events must land in the same trace,
// as children of the surviving reconnectable.invoke span.
func TestTraceRetryAndReconnect(t *testing.T) {
	k := kernel.New("trace-reconnect")
	ns := naming.NewServer(plainEnv(t, k, "naming"))
	srv := plainEnv(t, k, "server")
	cli := plainEnv(t, k, "client")
	give := func(env *core.Env) *core.Object {
		cp, err := ns.Object().Copy()
		if err != nil {
			t.Fatal(err)
		}
		obj, err := sctest.Transfer(cp, env, naming.ContextMT)
		if err != nil {
			t.Fatal(err)
		}
		return obj
	}
	srvCtx := naming.Context{Obj: give(srv)}
	cli.Set(reconnectable.ContextVar, give(cli))
	cli.Set(reconnectable.PolicyVar, &reconnectable.Policy{MaxAttempts: 20, Backoff: time.Millisecond})

	ctr := &sctest.Counter{}
	obj, door, err := reconnectable.Export(srv, sctest.CounterMT, ctr.Skeleton(), "svc", srvCtx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}

	// Crash and restart the server, then call with a fresh trace: the
	// stale binding forces retry + reconnect inside this one invocation.
	door.Revoke()
	if _, _, err := reconnectable.Export(srv, sctest.CounterMT, ctr.Skeleton(), "svc", srvCtx); err != nil {
		t.Fatal(err)
	}
	traceID := trace.NewTraceID()
	if v, err := sctest.Add(remote, 1, core.WithTrace(traceID)); err != nil || v != 2 {
		t.Fatalf("Add after crash = %d, %v", v, err)
	}
	byName := spanIndex(t, traceID)
	if len(byName["reconnectable.invoke"]) == 0 {
		t.Fatalf("no reconnectable.invoke span; have %v", byName)
	}
	assertChildOf(t, byName, "reconnectable.retry", "reconnectable.invoke")
	assertChildOf(t, byName, "reconnectable.reconnect", "reconnectable.invoke")
}

// TestTraceFailover kills the replica a replicon client is bound to: the
// failover event must be recorded inside the same trace as the call that
// triggered it.
func TestTraceFailover(t *testing.T) {
	k := kernel.New("trace-failover")
	srv := plainEnv(t, k, "server")
	ctr := &sctest.Counter{}
	g := replicon.NewGroup()
	m0 := g.Join(srv, "r0", ctr.Skeleton())
	g.Join(srv, "r1", ctr.Skeleton())
	cli := plainEnv(t, k, "client")
	obj := g.Export(cli, sctest.CounterMT)

	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}
	m0.Crash()
	traceID := trace.NewTraceID()
	if v, err := sctest.Add(obj, 1, core.WithTrace(traceID)); err != nil || v != 2 {
		t.Fatalf("Add after crash = %d, %v", v, err)
	}
	byName := spanIndex(t, traceID)
	if len(byName["replicon.invoke"]) == 0 {
		t.Fatalf("no replicon.invoke span; have %v", byName)
	}
	assertChildOf(t, byName, "replicon.failover", "replicon.invoke")
	assertChildOf(t, byName, "replicon.retry", "replicon.invoke")
}

// TestTraceCacheEvents drives a cached operation twice: the leader miss
// records a cache.miss span under caching.invoke, the second call a
// cache.hit event — all in their respective traces.
func TestTraceCacheEvents(t *testing.T) {
	fix := &cachingFixture{per: make(map[*kernel.Kernel]*naming.Server)}
	newEnv := cachingEnvFunc(fix)
	k := kernel.New("trace-cache")
	srv := newEnv(t, k, "server")
	cli := newEnv(t, k, "client")
	ctr := &sctest.Counter{}
	obj, _ := caching.Export(srv, sctest.CounterMT, ctr.Skeleton(), "cachemgr",
		cache.NewOpSet(sctest.OpGet), cache.NewOpSet(sctest.OpAdd), nil)
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	missTrace := trace.NewTraceID()
	if _, err := sctest.Get(remote, core.WithTrace(missTrace)); err != nil {
		t.Fatal(err)
	}
	byName := spanIndex(t, missTrace)
	assertChildOf(t, byName, "cache.miss", "caching.invoke")

	hitTrace := trace.NewTraceID()
	if _, err := sctest.Get(remote, core.WithTrace(hitTrace)); err != nil {
		t.Fatal(err)
	}
	byName = spanIndex(t, hitTrace)
	assertChildOf(t, byName, "cache.hit", "caching.invoke")
}
