package conformance_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/scstats"
)

// TestMain runs the conformance battery and then audits the per-subcontract
// metrics registry: after the suite has driven every policy, the scstats
// exposition must show nonzero call and latency counters for the core
// subcontracts. This is the end-to-end proof that the ops-vector
// instrumentation actually fires on real traffic, not just in unit tests.
// It also audits goroutine hygiene: the battery starts executors, servers
// and dispatch engines, and everything it started must have wound down —
// a serve path that leaks a worker per run fails here, not in production.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if err := auditStats(); err != nil {
			fmt.Fprintf(os.Stderr, "scstats audit after conformance run: %v\n%s", err, scstats.Text())
			code = 1
		}
	}
	if code == 0 {
		if err := auditGoroutines(baseline); err != nil {
			fmt.Fprintf(os.Stderr, "goroutine audit after conformance run: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// auditGoroutines polls until the live goroutine count returns to the
// pre-run baseline (plus slack for the runtime's own background helpers),
// failing with a full dump if it never does. Abandoned handlers, unclosed
// executors and leaked dispatch workers all surface here.
func auditGoroutines(baseline int) error {
	const slack = 8
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= baseline+slack {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("%d goroutines live, want <= baseline %d + %d; stacks:\n%s",
		n, baseline, slack, buf)
}

func auditStats() error {
	byName := make(map[string]scstats.Snapshot)
	for _, sn := range scstats.Snapshots() {
		byName[sn.Name] = sn
	}
	// Every subcontract the battery exercises must have recorded calls,
	// and at least one sampled latency observation (the sampler always
	// takes a block's first call, so any traffic at all yields samples).
	// This is the full instrumented name set: singleton, priority and txn
	// report through the shared doorsc ops (scstats.For(o.SCName)), simplex
	// splits its doorless same-address-space path out as "simplex(local)",
	// and value is driven by TestValueInstrumentation below. A subcontract
	// added without instrumentation fails here, not silently.
	for _, name := range []string{
		"singleton", "simplex", "simplex(local)", "cluster", "replicon",
		"caching", "reconnectable", "txn", "priority", "shm", "video",
		"value",
	} {
		sn, ok := byName[name]
		if !ok {
			return fmt.Errorf("subcontract %q recorded no calls", name)
		}
		if sn.Calls == 0 {
			return fmt.Errorf("subcontract %q: zero call counter", name)
		}
		if sn.LatencySamples == 0 {
			return fmt.Errorf("subcontract %q: zero latency samples", name)
		}
	}
	// The battery's expired-deadline and cancellation cases must have been
	// classified into their dedicated counters somewhere.
	var deadline, cancelled uint64
	for _, sn := range byName {
		deadline += sn.DeadlineExceeded
		cancelled += sn.Cancelled
	}
	if deadline == 0 {
		return fmt.Errorf("no subcontract recorded a deadline-exceeded ending")
	}
	if cancelled == 0 {
		return fmt.Errorf("no subcontract recorded a cancelled ending")
	}
	return nil
}
