package conformance_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/scstats"
)

// TestMain runs the conformance battery and then audits the per-subcontract
// metrics registry: after the suite has driven every policy, the scstats
// exposition must show nonzero call and latency counters for the core
// subcontracts. This is the end-to-end proof that the ops-vector
// instrumentation actually fires on real traffic, not just in unit tests.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := auditStats(); err != nil {
			fmt.Fprintf(os.Stderr, "scstats audit after conformance run: %v\n%s", err, scstats.Text())
			code = 1
		}
	}
	os.Exit(code)
}

func auditStats() error {
	byName := make(map[string]scstats.Snapshot)
	for _, sn := range scstats.Snapshots() {
		byName[sn.Name] = sn
	}
	// Every subcontract the battery exercises must have recorded calls,
	// and at least one sampled latency observation (the sampler always
	// takes a block's first call, so any traffic at all yields samples).
	// This is the full instrumented name set: singleton, priority and txn
	// report through the shared doorsc ops (scstats.For(o.SCName)), simplex
	// splits its doorless same-address-space path out as "simplex(local)",
	// and value is driven by TestValueInstrumentation below. A subcontract
	// added without instrumentation fails here, not silently.
	for _, name := range []string{
		"singleton", "simplex", "simplex(local)", "cluster", "replicon",
		"caching", "reconnectable", "txn", "priority", "shm", "video",
		"value",
	} {
		sn, ok := byName[name]
		if !ok {
			return fmt.Errorf("subcontract %q recorded no calls", name)
		}
		if sn.Calls == 0 {
			return fmt.Errorf("subcontract %q: zero call counter", name)
		}
		if sn.LatencySamples == 0 {
			return fmt.Errorf("subcontract %q: zero latency samples", name)
		}
	}
	// The battery's expired-deadline and cancellation cases must have been
	// classified into their dedicated counters somewhere.
	var deadline, cancelled uint64
	for _, sn := range byName {
		deadline += sn.DeadlineExceeded
		cancelled += sn.Cancelled
	}
	if deadline == 0 {
		return fmt.Errorf("no subcontract recorded a deadline-exceeded ending")
	}
	if cancelled == 0 {
		return fmt.Errorf("no subcontract recorded a cancelled ending")
	}
	return nil
}
