// Package conformance_test runs the framework-contract battery
// (sctest.Conformance) against every server-based subcontract in the
// repository: the §5–§7 obligations — move semantics of marshal,
// retention under marshal_copy, shared state under copy, consume
// semantics, remote exception transparency, onward transfer, the
// compatible-subcontract protocol, and nil references — hold for each
// policy, which is what "all object mechanisms are on a par with one
// another" (§10) means in practice. The value subcontract is the one
// deliberate exception: its copy yields independent state (§6.3 lets
// subcontracts define semantics), so it carries its own tests.
package conformance_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/sched"
	"repro/internal/sctest"
	"repro/internal/subcontracts/caching"
	"repro/internal/subcontracts/cluster"
	"repro/internal/subcontracts/priority"
	"repro/internal/subcontracts/reconnectable"
	"repro/internal/subcontracts/replicon"
	"repro/internal/subcontracts/shm"
	"repro/internal/subcontracts/simplex"
	"repro/internal/subcontracts/singleton"
	"repro/internal/subcontracts/txnsc"
	"repro/internal/subcontracts/video"
	"repro/internal/txn"
)

// libs is the full library set linked into every conformance domain.
func libs(t *testing.T, extra ...func(*core.Registry) error) []func(*core.Registry) error {
	t.Helper()
	return append([]func(*core.Registry) error{
		singleton.Register, simplex.Register, cluster.Register,
		replicon.Register, caching.Register, reconnectable.Register,
		priority.Register, txnsc.Register, video.Register,
	}, extra...)
}

// plainEnv is the NewEnv for subcontracts without machine-wide fixtures.
func plainEnv(t *testing.T, k *kernel.Kernel, name string) *core.Env {
	t.Helper()
	env, err := sctest.NewEnv(k, name, libs(t)...)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestSingletonConformance(t *testing.T) {
	sctest.Conformance{
		Name:        "singleton",
		NewEnv:      plainEnv,
		LocalInvoke: true,
		Export: func(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
			ctr := &sctest.Counter{}
			obj, _ := singleton.Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
			return obj, ctr
		},
	}.Run(t)
}

func TestSimplexConformance(t *testing.T) {
	sctest.Conformance{
		Name:        "simplex",
		NewEnv:      plainEnv,
		LocalInvoke: true,
		Export: func(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
			ctr := &sctest.Counter{}
			return simplex.Export(srv, sctest.CounterMT, ctr.Skeleton(), nil), ctr
		},
	}.Run(t)
}

func TestClusterConformance(t *testing.T) {
	var mu sync.Mutex
	servers := make(map[*core.Env]*cluster.Server)
	sctest.Conformance{
		Name:        "cluster",
		NewEnv:      plainEnv,
		LocalInvoke: true,
		Export: func(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
			mu.Lock()
			s, ok := servers[srv]
			if !ok {
				s = cluster.NewServer(srv)
				servers[srv] = s
			}
			mu.Unlock()
			ctr := &sctest.Counter{}
			obj, err := s.Export(sctest.CounterMT, ctr.Skeleton())
			if err != nil {
				t.Fatal(err)
			}
			return obj, ctr
		},
	}.Run(t)
}

func TestRepliconConformance(t *testing.T) {
	sctest.Conformance{
		Name:        "replicon",
		NewEnv:      plainEnv,
		LocalInvoke: true,
		Export: func(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
			ctr := &sctest.Counter{}
			g := replicon.NewGroup()
			for i := 0; i < 2; i++ {
				g.Join(srv, fmt.Sprintf("r%d", i), ctr.Skeleton())
			}
			return g.Export(srv, sctest.CounterMT), ctr
		},
	}.Run(t)
}

// cachingFixture holds per-kernel machine services for the caching runs.
type cachingFixture struct {
	mu  sync.Mutex
	per map[*kernel.Kernel]*naming.Server
}

// cachingEnvFunc builds the caching battery's NewEnv: per-kernel naming
// server + cache manager, with the local context slot set on every env.
func cachingEnvFunc(fix *cachingFixture) func(t *testing.T, k *kernel.Kernel, name string) *core.Env {
	return func(t *testing.T, k *kernel.Kernel, name string) *core.Env {
		t.Helper()
		fix.mu.Lock()
		ns, ok := fix.per[k]
		fix.mu.Unlock()
		if !ok {
			nsEnv := plainEnv(t, k, "naming")
			ns = naming.NewServer(nsEnv)
			mgr := cache.NewManager(plainEnv(t, k, "cachemgr"))
			cp, err := mgr.Object().Copy()
			if err != nil {
				t.Fatal(err)
			}
			h, err := ns.Handle()
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Bind("cachemgr", cp, false); err != nil {
				t.Fatal(err)
			}
			fix.mu.Lock()
			fix.per[k] = ns
			fix.mu.Unlock()
		}
		env := plainEnv(t, k, name)
		cp, err := ns.Object().Copy()
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := sctest.Transfer(cp, env, naming.ContextMT)
		if err != nil {
			t.Fatal(err)
		}
		env.Set(caching.LocalContextVar, ctx)
		return env
	}
}

func TestCachingConformance(t *testing.T) {
	fix := &cachingFixture{per: make(map[*kernel.Kernel]*naming.Server)}
	newEnv := cachingEnvFunc(fix)
	sctest.Conformance{
		Name:        "caching",
		NewEnv:      newEnv,
		LocalInvoke: true,
		Export: func(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
			ctr := &sctest.Counter{}
			obj, _ := caching.Export(srv, sctest.CounterMT, ctr.Skeleton(), "cachemgr",
				// No ops cached: the conformance battery checks framework
				// semantics, and a counter's get must always see writes
				// made through other views without a coherence protocol.
				cache.NewOpSet(), cache.NewOpSet(sctest.OpAdd), nil)
			return obj, ctr
		},
	}.Run(t)
}

func TestReconnectableConformance(t *testing.T) {
	var mu sync.Mutex
	namers := make(map[*kernel.Kernel]*naming.Server)
	seq := 0
	newEnv := func(t *testing.T, k *kernel.Kernel, name string) *core.Env {
		t.Helper()
		mu.Lock()
		ns, ok := namers[k]
		mu.Unlock()
		if !ok {
			ns = naming.NewServer(plainEnv(t, k, "naming"))
			mu.Lock()
			namers[k] = ns
			mu.Unlock()
		}
		env := plainEnv(t, k, name)
		cp, err := ns.Object().Copy()
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := sctest.Transfer(cp, env, naming.ContextMT)
		if err != nil {
			t.Fatal(err)
		}
		env.Set(reconnectable.ContextVar, ctx)
		env.Set(reconnectable.PolicyVar, &reconnectable.Policy{MaxAttempts: 5, Backoff: time.Millisecond})
		return env
	}
	sctest.Conformance{
		Name:        "reconnectable",
		NewEnv:      newEnv,
		LocalInvoke: true,
		Export: func(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
			mu.Lock()
			ns := namers[srv.Domain.Kernel()]
			seq++
			name := fmt.Sprintf("counter-%d", seq)
			mu.Unlock()
			h, err := ns.Handle()
			if err != nil {
				t.Fatal(err)
			}
			ctr := &sctest.Counter{}
			obj, _, err := reconnectable.Export(srv, sctest.CounterMT, ctr.Skeleton(), name, h)
			if err != nil {
				t.Fatal(err)
			}
			return obj, ctr
		},
	}.Run(t)
}

func TestShmConformance(t *testing.T) {
	for _, mode := range []shm.Mode{shm.Direct, shm.CopyAfter} {
		sc := shm.New(mode)
		newEnv := func(t *testing.T, k *kernel.Kernel, name string) *core.Env {
			t.Helper()
			env, err := sctest.NewEnv(k, name, libs(t)...)
			if err != nil {
				t.Fatal(err)
			}
			// The shm instance replaces the standard id-7 slot; nothing
			// else in the battery registers id 7.
			if err := sc.Register(env.Registry); err != nil {
				t.Fatal(err)
			}
			return env
		}
		sctest.Conformance{
			Name:        fmt.Sprintf("shm-mode%d", mode),
			NewEnv:      newEnv,
			LocalInvoke: true,
			Export: func(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
				ctr := &sctest.Counter{}
				obj, _ := sc.Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
				return obj, ctr
			},
		}.Run(t)
	}
}

func TestPriorityConformance(t *testing.T) {
	exec := sched.NewExecutor(4)
	defer exec.Close()
	sctest.Conformance{
		Name:        "priority",
		NewEnv:      plainEnv,
		LocalInvoke: true,
		Export: func(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
			ctr := &sctest.Counter{}
			obj, _ := priority.Export(srv, sctest.CounterMT, ctr.Skeleton(), exec, nil)
			return obj, ctr
		},
	}.Run(t)
}

func TestTxnConformance(t *testing.T) {
	coord := txn.NewCoordinator()
	sctest.Conformance{
		Name:        "txn",
		NewEnv:      plainEnv,
		LocalInvoke: true,
		Export: func(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
			ctr := &sctest.Counter{}
			skel := txnsc.SkeletonFunc(func(id txn.ID, op core.OpNum, args, results *buffer.Buffer) error {
				return ctr.Skeleton().Dispatch(op, args, results)
			})
			obj, _ := txnsc.Export(srv, sctest.CounterMT, skel, nopParticipant{}, coord, nil)
			return obj, ctr
		},
	}.Run(t)
}

// nopParticipant satisfies txn.Participant for non-transactional use.
type nopParticipant struct{}

func (nopParticipant) Prepare(txn.ID) error { return nil }
func (nopParticipant) Commit(txn.ID)        {}
func (nopParticipant) Abort(txn.ID)         {}

func TestVideoConformance(t *testing.T) {
	sctest.Conformance{
		Name:        "video",
		NewEnv:      plainEnv,
		LocalInvoke: true,
		Export: func(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
			ctr := &sctest.Counter{}
			src := video.NewSource()
			obj, _ := video.Export(srv, sctest.CounterMT, ctr.Skeleton(), src, nil)
			return obj, ctr
		},
	}.Run(t)
}
