// Package value implements a pass-by-value subcontract: the marshalled
// form of an object is its actual state, not a name or door identifier.
//
// §2.1 of the paper contrasts reference-style marshalling (Eden names,
// Spring doors) with transmitting an object's real state, noting that for
// "lightweight abstractions, such as an object representing a cartesian
// coordinate pair ... it would have been better to marshal the real state
// of the object". And §3.2 notes that "Spring also supports objects which
// are not server-based". The value subcontract is both: objects carry
// their state with them, invocations run entirely in the holding domain,
// and no kernel doors — no server — exist at all.
//
// Semantics differ from the server-based subcontracts where the paper
// permits them to (§6.3, "subcontracts affect objects' semantics"): copy
// produces an independent object with its own state, so copies diverge —
// value semantics, exactly what a coordinate pair wants.
//
// Behaviour comes from a Handler registered per type, compiled into the
// programs that use the type — like stubs, value-type behaviour is static
// knowledge; only the state travels.
package value

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/scstats"
	"repro/internal/stubs"
	"repro/internal/trace"
)

// SCID is the value subcontract identifier.
const SCID core.ID = 11

// LibraryName is the simulated dynamic-linker library name (§6.2).
const LibraryName = "value.so"

// Handler implements a value type's operations over its marshalled state.
type Handler interface {
	// Dispatch runs one operation: it may read args, write results, and
	// return the updated state (return state unchanged for read-only
	// operations). Returning an error raises a remote-style exception at
	// the caller.
	Dispatch(state []byte, op core.OpNum, args, results *buffer.Buffer) ([]byte, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(state []byte, op core.OpNum, args, results *buffer.Buffer) ([]byte, error)

// Dispatch implements Handler.
func (f HandlerFunc) Dispatch(state []byte, op core.OpNum, args, results *buffer.Buffer) ([]byte, error) {
	return f(state, op, args, results)
}

// handlers is the process-wide behaviour registry, keyed by type: value
// behaviour is compile-time knowledge, like the type graph.
var handlers = struct {
	sync.RWMutex
	m map[core.TypeID]Handler
}{m: make(map[core.TypeID]Handler)}

// RegisterHandler publishes the behaviour for a value type.
func RegisterHandler(t core.TypeID, h Handler) {
	handlers.Lock()
	defer handlers.Unlock()
	handlers.m[t] = h
}

func handlerFor(t core.TypeID) (Handler, error) {
	handlers.RLock()
	defer handlers.RUnlock()
	h, ok := handlers.m[t]
	if !ok {
		return nil, fmt.Errorf("value: no handler registered for type %q", t)
	}
	return h, nil
}

// Rep is the representation: the object's actual state.
type Rep struct {
	mu    sync.Mutex
	state []byte
}

type ops struct{}

// SC is the value subcontract.
var SC core.ClientOps = ops{}

// Register is the library entry point installing value in a registry.
func Register(r *core.Registry) error { return r.Register(SC) }

func (ops) ID() core.ID  { return SCID }
func (ops) Name() string { return "value" }

// stats is the subcontract's metrics block.
var stats = scstats.For("value")

func rep(obj *core.Object) (*Rep, error) {
	r, ok := obj.Rep.(*Rep)
	if !ok {
		return nil, fmt.Errorf("value: foreign representation %T", obj.Rep)
	}
	return r, nil
}

// Marshal transmits the object's real state (and nothing else — no door
// identifiers travel), consuming the local object.
func (ops) Marshal(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	core.WriteHeader(buf, SCID, obj.MT.Type)
	buf.WriteBytes(r.state)
	r.state = nil
	r.mu.Unlock()
	return obj.MarkConsumed()
}

// MarshalCopy transmits a snapshot of the state; the original is retained.
func (ops) MarshalCopy(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	core.WriteHeader(buf, SCID, obj.MT.Type)
	buf.WriteBytes(r.state)
	r.mu.Unlock()
	return nil
}

func (o ops) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	if obj, handled, err := core.RedispatchUnmarshal(env, mt, buf, SCID); handled {
		return obj, err
	}
	actual, err := core.ReadHeader(buf, SCID)
	if err != nil {
		return nil, err
	}
	p, err := buf.ReadBytes()
	if err != nil {
		return nil, err
	}
	state := append([]byte(nil), p...)
	return core.NewObject(env, core.PickMTable(mt, actual), o, &Rep{state: state}), nil
}

func (ops) InvokePreamble(obj *core.Object, call *core.Call) error {
	return obj.CheckLive()
}

// Invoke runs the operation against the local state through the type's
// registered handler — no communication happens at all. Deadlines and
// cancellation still apply at the boundary: an already-ended context
// fails before the handler runs (there is nothing to interrupt once a
// local dispatch has started).
func (ops) Invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	begin := stats.Begin()
	sp := trace.Begin(call.Info(), spanInvoke)
	reply, err := invoke(obj, call)
	sp.End(call.Info(), err)
	stats.EndCall(begin, uint32(call.Op), call.Info().ExemplarTrace(), err)
	return reply, err
}

var spanInvoke = trace.Name("value.invoke")

func invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	if err := call.Err(); err != nil {
		return nil, err
	}
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	h, err := handlerFor(obj.MT.Type)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	skel := stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		next, err := h.Dispatch(r.state, op, args, results)
		if err != nil {
			return err
		}
		r.state = next
		return nil
	})
	reply := buffer.New(64)
	if err := stubs.ServeCallInfo(skel, call.Args(), reply, call.Info()); err != nil {
		return nil, err
	}
	return reply, nil
}

// Copy produces an independent object with its own copy of the state:
// value semantics, so copies diverge.
func (o ops) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	state := append([]byte(nil), r.state...)
	r.mu.Unlock()
	return core.NewObject(obj.Env, obj.MT, o, &Rep{state: state}), nil
}

// Consume drops the state.
func (ops) Consume(obj *core.Object) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.state = nil
	r.mu.Unlock()
	return obj.MarkConsumed()
}

// New fabricates a value object with the given initial state. There is no
// Export: value objects have no server side.
func New(env *core.Env, mt *core.MTable, state []byte) *core.Object {
	return core.NewObject(env, mt, SC, &Rep{state: append([]byte(nil), state...)})
}

// State returns a snapshot of the object's current state.
func State(obj *core.Object) ([]byte, error) {
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.state...), nil
}
