package value

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/subcontracts/singleton"
)

// The paper's own lightweight-abstraction example (§2.1): a cartesian
// coordinate pair. State = two float64s; ops: 0 get() -> (x, y);
// 1 translate(dx, dy).
const (
	opGet core.OpNum = iota
	opTranslate
)

const pointType core.TypeID = "valuetest.point"

var pointMT = &core.MTable{Type: pointType, DefaultSC: SCID, Ops: []string{"get", "translate"}}

func encodePoint(x, y float64) []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint64(p, math.Float64bits(x))
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(y))
	return p
}

func decodePoint(state []byte) (float64, float64) {
	return math.Float64frombits(binary.LittleEndian.Uint64(state)),
		math.Float64frombits(binary.LittleEndian.Uint64(state[8:]))
}

func init() {
	core.MustRegisterType(pointType, core.ObjectType)
	core.MustRegisterMTable(pointMT)
	RegisterHandler(pointType, HandlerFunc(func(state []byte, op core.OpNum, args, results *buffer.Buffer) ([]byte, error) {
		x, y := decodePoint(state)
		switch op {
		case opGet:
			results.WriteFloat64(x)
			results.WriteFloat64(y)
			return state, nil
		case opTranslate:
			dx, err := args.ReadFloat64()
			if err != nil {
				return nil, err
			}
			dy, err := args.ReadFloat64()
			if err != nil {
				return nil, err
			}
			return encodePoint(x+dx, y+dy), nil
		default:
			return nil, stubs.ErrBadOp
		}
	}))
}

// Client stubs.
func get(obj *core.Object) (x, y float64, err error) {
	err = stubs.Call(obj, opGet, nil, func(b *buffer.Buffer) error {
		var err error
		if x, err = b.ReadFloat64(); err != nil {
			return err
		}
		y, err = b.ReadFloat64()
		return err
	})
	return x, y, err
}

func translate(obj *core.Object, dx, dy float64) error {
	return stubs.Call(obj, opTranslate, func(b *buffer.Buffer) error {
		b.WriteFloat64(dx)
		b.WriteFloat64(dy)
		return nil
	}, nil)
}

func setup(t *testing.T) (*core.Env, *core.Env) {
	t.Helper()
	k := kernel.New("m1")
	a, err := sctest.NewEnv(k, "a", Register, singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sctest.NewEnv(k, "b", Register, singleton.Register)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestLocalInvoke(t *testing.T) {
	a, _ := setup(t)
	p := New(a, pointMT, encodePoint(1, 2))
	if err := translate(p, 10, 20); err != nil {
		t.Fatal(err)
	}
	x, y, err := get(p)
	if err != nil || x != 11 || y != 22 {
		t.Fatalf("get = (%v, %v), %v", x, y, err)
	}
}

func TestStateTravelsNoDoors(t *testing.T) {
	a, b := setup(t)
	p := New(a, pointMT, encodePoint(3, 4))

	buf := buffer.New(64)
	if err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	// The real state travels — and nothing else: no door identifiers, no
	// server anywhere.
	if buf.DoorCount() != 0 {
		t.Fatalf("value object marshalled %d doors", buf.DoorCount())
	}
	if a.Domain.Kernel().LiveDoors() != 0 {
		t.Fatalf("value objects created %d kernel doors", a.Domain.Kernel().LiveDoors())
	}
	moved, err := core.Unmarshal(b, pointMT, buf)
	if err != nil {
		t.Fatal(err)
	}
	x, y, err := get(moved)
	if err != nil || x != 3 || y != 4 {
		t.Fatalf("moved point = (%v, %v), %v", x, y, err)
	}
	// The source was consumed (an object exists in one place at a time).
	if _, _, err := get(p); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("source after move = %v", err)
	}
}

func TestCopiesDiverge(t *testing.T) {
	a, _ := setup(t)
	p := New(a, pointMT, encodePoint(0, 0))
	cp, err := p.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if err := translate(p, 5, 0); err != nil {
		t.Fatal(err)
	}
	if err := translate(cp, 0, 7); err != nil {
		t.Fatal(err)
	}
	if x, y, _ := get(p); x != 5 || y != 0 {
		t.Fatalf("original = (%v, %v)", x, y)
	}
	if x, y, _ := get(cp); x != 0 || y != 7 {
		t.Fatalf("copy = (%v, %v); value semantics require divergence", x, y)
	}
}

func TestDefaultSingletonReceiverDiscoversValue(t *testing.T) {
	// A domain expecting the default subcontract routes to value through
	// the compatible-subcontract protocol, like any other subcontract.
	a, b := setup(t)
	p := New(a, pointMT, encodePoint(9, 9))
	buf := buffer.New(64)
	if err := p.MarshalCopy(buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.Unmarshal(b, pointMT, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SC.ID() != SCID {
		t.Fatalf("subcontract = %d", got.SC.ID())
	}
	// Both the original and the snapshot work, and independently.
	if err := translate(p, 1, 1); err != nil {
		t.Fatal(err)
	}
	if x, _, _ := get(got); x != 9 {
		t.Fatalf("snapshot mutated with original: x = %v", x)
	}
}

func TestUnregisteredTypeFails(t *testing.T) {
	a, _ := setup(t)
	core.MustRegisterType("valuetest.orphan", core.ObjectType)
	orphanMT := &core.MTable{Type: "valuetest.orphan", DefaultSC: SCID}
	core.MustRegisterMTable(orphanMT)
	p := New(a, orphanMT, []byte{1})
	if _, _, err := get(p); err == nil {
		t.Fatal("invoke without a handler succeeded")
	}
}

func TestHandlerErrorIsRemoteStyle(t *testing.T) {
	a, _ := setup(t)
	p := New(a, pointMT, encodePoint(0, 0))
	err := stubs.Call(p, 99, nil, nil)
	if !stubs.IsRemote(err) {
		t.Fatalf("bad op = %v, want remote-style exception", err)
	}
	// A failed operation leaves the state untouched.
	if x, y, err := get(p); err != nil || x != 0 || y != 0 {
		t.Fatalf("state after failed op = (%v, %v), %v", x, y, err)
	}
}

func TestStateSnapshot(t *testing.T) {
	a, _ := setup(t)
	p := New(a, pointMT, encodePoint(1, 1))
	s, err := State(p)
	if err != nil || len(s) != 16 {
		t.Fatalf("State = %d bytes, %v", len(s), err)
	}
	// The snapshot does not alias the live state.
	s[0] = 0xFF
	if x, _, _ := get(p); x != 1 {
		t.Fatalf("snapshot aliased live state: x = %v", x)
	}
}
