package txnsc

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
	"repro/internal/txn"
)

// kvStore is a transactional key-value server: puts inside a transaction
// are staged and only applied at commit.
type kvStore struct {
	mu     sync.Mutex
	data   map[string]string
	staged map[txn.ID]map[string]string
	veto   error
}

func newKV() *kvStore {
	return &kvStore{data: make(map[string]string), staged: make(map[txn.ID]map[string]string)}
}

func (s *kvStore) Prepare(id txn.ID) error { s.mu.Lock(); defer s.mu.Unlock(); return s.veto }

func (s *kvStore) Commit(id txn.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.staged[id] {
		s.data[k] = v
	}
	delete(s.staged, id)
}

func (s *kvStore) Abort(id txn.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.staged, id)
}

// KV operations: 0 get(key) -> (found bool, val string); 1 put(key, val).
const (
	opGet core.OpNum = iota
	opPut
)

var kvMT = &core.MTable{Type: "txntest.kv", DefaultSC: SCID, Ops: []string{"get", "put"}}

func init() {
	core.MustRegisterType("txntest.kv", core.ObjectType)
	core.MustRegisterMTable(kvMT)
}

func (s *kvStore) skeleton() Skeleton {
	return SkeletonFunc(func(id txn.ID, op core.OpNum, args, results *buffer.Buffer) error {
		switch op {
		case opGet:
			key, err := args.ReadString()
			if err != nil {
				return err
			}
			s.mu.Lock()
			v, ok := s.data[key]
			if id != 0 {
				if sv, sok := s.staged[id][key]; sok {
					v, ok = sv, true
				}
			}
			s.mu.Unlock()
			results.WriteBool(ok)
			results.WriteString(v)
			return nil
		case opPut:
			key, err := args.ReadString()
			if err != nil {
				return err
			}
			val, err := args.ReadString()
			if err != nil {
				return err
			}
			s.mu.Lock()
			if id == 0 {
				s.data[key] = val
			} else {
				m := s.staged[id]
				if m == nil {
					m = make(map[string]string)
					s.staged[id] = m
				}
				m[key] = val
			}
			s.mu.Unlock()
			return nil
		default:
			return stubs.ErrBadOp
		}
	})
}

// Client stubs.
func kvGet(obj *core.Object, key string) (string, bool, error) {
	var val string
	var ok bool
	err := stubs.Call(obj, opGet,
		func(b *buffer.Buffer) error { b.WriteString(key); return nil },
		func(b *buffer.Buffer) error {
			var err error
			if ok, err = b.ReadBool(); err != nil {
				return err
			}
			val, err = b.ReadString()
			return err
		})
	return val, ok, err
}

func kvPut(obj *core.Object, key, val string) error {
	return stubs.Call(obj, opPut, func(b *buffer.Buffer) error {
		b.WriteString(key)
		b.WriteString(val)
		return nil
	}, nil)
}

// world: coordinator, two kv servers, one client.
type world struct {
	coord  *txn.Coordinator
	cli    *core.Env
	s1, s2 *kvStore
	o1, o2 *core.Object
}

func newWorld(t *testing.T) *world {
	t.Helper()
	k := kernel.New("m1")
	coord := txn.NewCoordinator()
	w := &world{coord: coord, s1: newKV(), s2: newKV()}

	for i, s := range []*kvStore{w.s1, w.s2} {
		env, err := sctest.NewEnv(k, "kv", Register)
		if err != nil {
			t.Fatal(err)
		}
		obj, _ := Export(env, kvMT, s.skeleton(), s, coord, nil)
		if i == 0 {
			w.o1 = obj
		} else {
			w.o2 = obj
		}
	}
	cli, err := sctest.NewEnv(k, "client", Register)
	if err != nil {
		t.Fatal(err)
	}
	w.cli = cli
	var err2 error
	if w.o1, err2 = sctest.Transfer(w.o1, cli, kvMT); err2 != nil {
		t.Fatal(err2)
	}
	if w.o2, err2 = sctest.Transfer(w.o2, cli, kvMT); err2 != nil {
		t.Fatal(err2)
	}
	return w
}

func TestCommitAcrossServers(t *testing.T) {
	w := newWorld(t)
	tx := w.coord.Begin()
	With(w.cli, tx)

	if err := kvPut(w.o1, "x", "1"); err != nil {
		t.Fatal(err)
	}
	if err := kvPut(w.o2, "y", "2"); err != nil {
		t.Fatal(err)
	}
	// Inside the transaction the writer sees its own staged writes.
	if v, ok, err := kvGet(w.o1, "x"); err != nil || !ok || v != "1" {
		t.Fatalf("staged read = %q/%v/%v", v, ok, err)
	}
	// Both servers were enlisted transparently.
	if tx.Participants() != 2 {
		t.Fatalf("participants = %d, want 2", tx.Participants())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	Clear(w.cli)
	if v, ok, _ := kvGet(w.o1, "x"); !ok || v != "1" {
		t.Fatalf("x after commit = %q/%v", v, ok)
	}
	if v, ok, _ := kvGet(w.o2, "y"); !ok || v != "2" {
		t.Fatalf("y after commit = %q/%v", v, ok)
	}
}

func TestAbortDiscards(t *testing.T) {
	w := newWorld(t)
	tx := w.coord.Begin()
	With(w.cli, tx)
	if err := kvPut(w.o1, "x", "9"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	Clear(w.cli)
	if _, ok, _ := kvGet(w.o1, "x"); ok {
		t.Fatal("aborted write visible")
	}
}

func TestVetoAtomicity(t *testing.T) {
	w := newWorld(t)
	w.s2.veto = errors.New("refusing")
	tx := w.coord.Begin()
	With(w.cli, tx)
	if err := kvPut(w.o1, "x", "1"); err != nil {
		t.Fatal(err)
	}
	if err := kvPut(w.o2, "y", "2"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("Commit = %v, want ErrAborted", err)
	}
	Clear(w.cli)
	// Neither server's write survived: atomicity across participants.
	if _, ok, _ := kvGet(w.o1, "x"); ok {
		t.Fatal("x visible after vetoed commit")
	}
	if _, ok, _ := kvGet(w.o2, "y"); ok {
		t.Fatal("y visible after vetoed commit")
	}
}

func TestNonTransactionalPassThrough(t *testing.T) {
	w := newWorld(t)
	if err := kvPut(w.o1, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := kvGet(w.o1, "k"); !ok || v != "v" {
		t.Fatalf("direct put lost: %q/%v", v, ok)
	}
	if w.coord.Active() != 0 {
		t.Fatalf("phantom transaction: %d", w.coord.Active())
	}
}

func TestIsolationBetweenTransactions(t *testing.T) {
	w := newWorld(t)
	tx := w.coord.Begin()
	With(w.cli, tx)
	if err := kvPut(w.o1, "x", "staged"); err != nil {
		t.Fatal(err)
	}
	// A non-transactional reader does not see the staged write.
	Clear(w.cli)
	if _, ok, _ := kvGet(w.o1, "x"); ok {
		t.Fatal("staged write leaked to other clients")
	}
	With(w.cli, tx)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleTransactionRejected(t *testing.T) {
	w := newWorld(t)
	tx := w.coord.Begin()
	With(w.cli, tx)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// The client still carries the dead transaction: the server-side
	// subcontract rejects the call with a remote exception.
	if err := kvPut(w.o1, "x", "1"); !stubs.IsRemote(err) {
		t.Fatalf("call in dead txn = %v, want remote exception", err)
	}
}
