// Package txnsc implements the transaction subcontract sketched in §8.4:
// it transfers control information for atomic transactions at the
// subcontract level.
//
// A client domain sets its current transaction in an environment slot; the
// invoke_preamble piggybacks the transaction identifier on every call. The
// server-side subcontract code strips it, transparently enlists the server
// as a participant with the shared coordinator, and hands the identifier
// to the transactional skeleton. Neither the stubs nor the IDL interfaces
// mention transactions at all.
package txnsc

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
	"repro/internal/subcontracts/doorsc"
	"repro/internal/txn"
)

// SCID is the transaction subcontract identifier.
const SCID core.ID = 9

// LibraryName is the simulated dynamic-linker library name (§6.2).
const LibraryName = "txnsc.so"

// Var is the environment slot holding the domain's current *txn.Txn.
const Var = "txn.current"

// ops is the client-side vector: door-based plus the transaction preamble.
type ops struct {
	doorsc.Ops
}

// SC is the transaction subcontract.
var SC core.ClientOps = &ops{Ops: doorsc.Ops{Ident: SCID, SCName: "txn"}}

// Register is the library entry point installing the subcontract.
func Register(r *core.Registry) error { return r.Register(SC) }

// Unmarshal fabricates objects with the outer (transactional) vector.
func (o *ops) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	if obj, handled, err := core.RedispatchUnmarshal(env, mt, buf, SCID); handled {
		return obj, err
	}
	actual, err := core.ReadHeader(buf, SCID)
	if err != nil {
		return nil, err
	}
	h, err := env.Domain.AdoptFromBuffer(buf)
	if err != nil {
		return nil, fmt.Errorf("txnsc: unmarshal: %w", err)
	}
	return core.NewObject(env, core.PickMTable(mt, actual), o, doorsc.Rep{H: h}), nil
}

// Copy duplicates the identifier, keeping the outer vector.
func (o *ops) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, ok := obj.Rep.(doorsc.Rep)
	if !ok {
		return nil, fmt.Errorf("txnsc: foreign representation %T", obj.Rep)
	}
	h, err := obj.Env.Domain.CopyDoor(r.H)
	if err != nil {
		return nil, fmt.Errorf("txnsc: copy: %w", err)
	}
	return core.NewObject(obj.Env, obj.MT, o, doorsc.Rep{H: h}), nil
}

// InvokePreamble piggybacks the current transaction identifier (0 when the
// caller is not in a transaction).
func (o *ops) InvokePreamble(obj *core.Object, call *core.Call) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	call.Args().WriteUint64(uint64(Current(obj.Env)))
	return nil
}

// Current returns the calling domain's current transaction id (0 if none).
func Current(env *core.Env) txn.ID {
	if v, ok := env.Get(Var); ok {
		if t, ok := v.(*txn.Txn); ok && t != nil {
			return t.ID()
		}
	}
	return 0
}

// With sets the domain's current transaction; Clear removes it.
func With(env *core.Env, t *txn.Txn) { env.Set(Var, t) }

// Clear removes the domain's current transaction.
func Clear(env *core.Env) { env.Set(Var, (*txn.Txn)(nil)) }

// Skeleton is a transaction-aware dispatch table: like stubs.Skeleton but
// each call carries the transaction it runs in (0 = none).
type Skeleton interface {
	DispatchTxn(id txn.ID, op core.OpNum, args, results *buffer.Buffer) error
}

// SkeletonFunc adapts a function to Skeleton.
type SkeletonFunc func(id txn.ID, op core.OpNum, args, results *buffer.Buffer) error

// DispatchTxn implements Skeleton.
func (f SkeletonFunc) DispatchTxn(id txn.ID, op core.OpNum, args, results *buffer.Buffer) error {
	return f(id, op, args, results)
}

// Export creates a transactional Spring object in env backed by skel. part
// is enlisted with coord the first time each transaction touches this
// server.
func Export(env *core.Env, mt *core.MTable, skel Skeleton, part txn.Participant, coord *txn.Coordinator, unref func()) (*core.Object, *kernel.Door) {
	proc := func(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
		raw, err := req.ReadUint64()
		if err != nil {
			return nil, fmt.Errorf("txnsc: missing transaction control: %w", err)
		}
		id := txn.ID(raw)
		reply := buffer.New(128)
		if id != 0 {
			t, err := coord.Lookup(id)
			if err != nil {
				stubs.WriteException(reply, err.Error())
				return reply, nil
			}
			if err := t.Enlist(part); err != nil {
				stubs.WriteException(reply, err.Error())
				return reply, nil
			}
		}
		inner := stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
			return skel.DispatchTxn(id, op, args, results)
		})
		if err := stubs.ServeCallInfo(inner, req, reply, info); err != nil {
			return nil, err
		}
		return reply, nil
	}
	h, door := env.Domain.CreateDoorInfo(proc, unref)
	return core.NewObject(env, mt, SC, doorsc.Rep{H: h}), door
}
