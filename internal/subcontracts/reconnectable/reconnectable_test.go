package reconnectable

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// world is a test fixture: a kernel, a naming server, a server domain, and
// a client domain wired with the default naming context.
type world struct {
	k       *kernel.Kernel
	nameSrv *naming.Server
	srv     *core.Env
	cli     *core.Env
	ctx     naming.Context // server-side view, for Export
}

func newWorld(t *testing.T) *world {
	t.Helper()
	k := kernel.New("m1")
	nsEnv, err := sctest.NewEnv(k, "nameserver", singleton.Register, Register)
	if err != nil {
		t.Fatal(err)
	}
	ns := naming.NewServer(nsEnv)

	srv, err := sctest.NewEnv(k, "server", singleton.Register, Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", singleton.Register, Register)
	if err != nil {
		t.Fatal(err)
	}

	// Hand each domain its own context object.
	give := func(env *core.Env) *core.Object {
		cp, err := ns.Object().Copy()
		if err != nil {
			t.Fatal(err)
		}
		obj, err := sctest.Transfer(cp, env, naming.ContextMT)
		if err != nil {
			t.Fatal(err)
		}
		return obj
	}
	srvCtx := give(srv)
	cli.Set(ContextVar, give(cli))
	cli.Set(PolicyVar, &Policy{MaxAttempts: 50, Backoff: time.Millisecond})

	return &world{k: k, nameSrv: ns, srv: srv, cli: cli, ctx: naming.Context{Obj: srvCtx}}
}

// crashAndRestart revokes the old door and re-exports the same skeleton
// under the same name, as a restarted stable-storage server would.
func crashAndRestart(t *testing.T, w *world, name string, ctr *sctest.Counter, old *kernel.Door) *kernel.Door {
	t.Helper()
	old.Revoke()
	_, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), name, w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	return door
}

func TestNormalInvoke(t *testing.T) {
	w := newWorld(t)
	ctr := &sctest.Counter{}
	obj, _, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if remote.SC.ID() != SCID {
		t.Fatalf("subcontract = %d", remote.SC.ID())
	}
	if v, err := sctest.Add(remote, 2); err != nil || v != 2 {
		t.Fatalf("Add = %d, %v", v, err)
	}
}

func TestReconnectAfterCrash(t *testing.T) {
	w := newWorld(t)
	ctr := &sctest.Counter{}
	obj, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}

	crashAndRestart(t, w, "svc", ctr, door)

	// The next call transparently reconnects: state survives because the
	// "stable storage" (the counter) survived the crash.
	if v, err := sctest.Add(remote, 1); err != nil || v != 2 {
		t.Fatalf("Add after crash = %d, %v; reconnect failed", v, err)
	}
}

func TestReconnectWaitsForRestart(t *testing.T) {
	w := newWorld(t)
	ctr := &sctest.Counter{}
	obj, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	// Crash, and also unbind the name so resolution itself fails for a
	// while; restart (rebinding) shortly after, concurrently with the
	// client's retry loop.
	door.Revoke()
	if err := w.ctx.Unbind("svc"); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		_, _, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
		if err != nil {
			t.Error(err)
		}
	}()
	if v, err := sctest.Add(remote, 5); err != nil || v != 5 {
		t.Fatalf("Add during restart window = %d, %v", v, err)
	}
}

func TestGiveUpWhenNeverRestarted(t *testing.T) {
	w := newWorld(t)
	w.cli.Set(PolicyVar, &Policy{MaxAttempts: 3, Backoff: time.Millisecond})
	ctr := &sctest.Counter{}
	obj, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	door.Revoke()
	if err := w.ctx.Unbind("svc"); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Get(remote); !errors.Is(err, ErrGaveUp) {
		t.Fatalf("Get = %v, want ErrGaveUp", err)
	}
}

func TestNoContextConfigured(t *testing.T) {
	w := newWorld(t)
	ctr := &sctest.Counter{}
	obj, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := sctest.NewEnv(w.k, "bare-client", singleton.Register, Register)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, bare, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	door.Revoke()
	if _, err := sctest.Get(remote); !errors.Is(err, ErrNoContext) {
		t.Fatalf("Get = %v, want ErrNoContext", err)
	}
}

func TestConcurrentReconnect(t *testing.T) {
	w := newWorld(t)
	ctr := &sctest.Counter{}
	obj, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	crashAndRestart(t, w, "svc", ctr, door)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sctest.Add(remote, 1); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ctr.Value() != 16 {
		t.Fatalf("counter = %d, want 16", ctr.Value())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	w := newWorld(t)
	ctr := &sctest.Counter{}
	obj, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	// Move it onward to a second client; the name travels with it.
	cli2, err := sctest.NewEnv(w.k, "client2", singleton.Register, Register)
	if err != nil {
		t.Fatal(err)
	}
	ctxCopy, err := naming.Context{Obj: w.ctx.Obj}.Obj.Copy()
	if err != nil {
		t.Fatal(err)
	}
	ctx2, err := sctest.Transfer(ctxCopy, cli2, naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	cli2.Set(ContextVar, ctx2)
	cli2.Set(PolicyVar, &Policy{MaxAttempts: 50, Backoff: time.Millisecond})

	moved, err := sctest.Transfer(remote, cli2, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	crashAndRestart(t, w, "svc", ctr, door)
	if v, err := sctest.Add(moved, 3); err != nil || v != 3 {
		t.Fatalf("Add via moved object after crash = %d, %v", v, err)
	}
}

func TestCopyReconnectsIndependently(t *testing.T) {
	w := newWorld(t)
	ctr := &sctest.Counter{}
	obj, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := remote.Copy()
	if err != nil {
		t.Fatal(err)
	}
	crashAndRestart(t, w, "svc", ctr, door)
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(cp, 1); err != nil {
		t.Fatal(err)
	}
	if ctr.Value() != 2 {
		t.Fatalf("counter = %d", ctr.Value())
	}
}

func TestConsume(t *testing.T) {
	w := newWorld(t)
	ctr := &sctest.Counter{}
	obj, _, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Get(obj); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("Get after consume = %v", err)
	}
}
