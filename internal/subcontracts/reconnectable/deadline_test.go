package reconnectable

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sctest"
)

// TestDeadlineBoundsReresolveLoop is the headline acceptance case for
// invocation contexts: a call through reconnectable against a permanently
// dead server with a 50 ms deadline must return ErrDeadlineExceeded within
// 100 ms — instead of grinding through the policy's full resolution-retry
// budget (which here would run far longer than the deadline).
func TestDeadlineBoundsReresolveLoop(t *testing.T) {
	w := newWorld(t)
	// A generous retry policy: without the deadline this would spin for
	// ~2 s (200 × 10 ms) before giving up.
	w.cli.Set(PolicyVar, &Policy{MaxAttempts: 200, Backoff: 10 * time.Millisecond})

	ctr := &sctest.Counter{}
	obj, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	// Permanently dead: the door is revoked and the name unbound, so no
	// resolution attempt can ever succeed.
	door.Revoke()
	if err := w.ctx.Unbind("svc"); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = sctest.Get(remote, core.WithTimeout(50*time.Millisecond))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("Get against dead server with 50ms deadline = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("deadline honored after %v, want within 100ms", elapsed)
	}
}

// TestCancelUnblocksBackoffSleep proves cancellation wakes the re-resolve
// loop out of its backoff sleep immediately.
func TestCancelUnblocksBackoffSleep(t *testing.T) {
	w := newWorld(t)
	w.cli.Set(PolicyVar, &Policy{MaxAttempts: 200, Backoff: 50 * time.Millisecond})

	ctr := &sctest.Counter{}
	obj, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	door.Revoke()
	if err := w.ctx.Unbind("svc"); err != nil {
		t.Fatal(err)
	}

	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := sctest.Get(remote, core.WithCancel(cancel))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the loop enter a backoff sleep
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, core.ErrCancelled) {
			t.Fatalf("cancelled re-resolve = %v, want ErrCancelled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not unblock the re-resolve loop")
	}
}

// TestDeadlineSurvivesSuccessfulReconnect: a deadline generous enough for
// the recovery leaves the reconnection behaviour intact.
func TestDeadlineSurvivesSuccessfulReconnect(t *testing.T) {
	w := newWorld(t)
	ctr := &sctest.Counter{}
	obj, door, err := Export(w.srv, sctest.CounterMT, ctr.Skeleton(), "svc", w.ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sctest.Transfer(obj, w.cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	crashAndRestart(t, w, "svc", ctr, door)
	if v, err := sctest.Add(remote, 3, core.WithTimeout(5*time.Second)); err != nil || v != 3 {
		t.Fatalf("Add across crash with generous deadline = %d, %v", v, err)
	}
}
