// Package reconnectable implements the reconnectable subcontract of §8.3.
//
// Some servers keep their state in stable storage; clients would like
// objects backed by such servers to quietly recover from server crashes.
// Normal door identifiers become invalid when a server crashes, so the
// reconnectable subcontract uses a representation consisting of a normal
// door identifier plus an object name. Invoke normally just performs a
// kernel door invocation; if that fails it resolves the object name to
// obtain a new object and retries the operation on that, retrying
// periodically until it succeeds in getting a new valid object.
package reconnectable

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/scstats"
	"repro/internal/stubs"
	"repro/internal/subcontracts/doorsc"
	"repro/internal/subcontracts/singleton"
	"repro/internal/trace"
)

// SCID is the reconnectable subcontract identifier.
const SCID core.ID = 6

// LibraryName is the simulated dynamic-linker library name (§6.2).
const LibraryName = "reconnectable.so"

// ContextVar is the environment slot where a domain stores the naming
// Context (a *core.Object of type spring.naming_context) that object names
// resolve in.
const ContextVar = "naming.default"

// PolicyVar is the environment slot for an optional *Policy override.
const PolicyVar = "reconnectable.policy"

// Policy controls reconnection retries.
type Policy struct {
	// MaxAttempts bounds resolution attempts before giving up.
	MaxAttempts int
	// Backoff is slept between failed resolution attempts.
	Backoff time.Duration
}

// DefaultPolicy is used when a domain sets no PolicyVar.
var DefaultPolicy = Policy{MaxAttempts: 20, Backoff: 5 * time.Millisecond}

// Errors returned by the subcontract.
var (
	// ErrNoContext is returned when the domain has no naming context to
	// resolve object names in.
	ErrNoContext = errors.New("reconnectable: no naming context in environment")
	// ErrGaveUp is returned when reconnection attempts are exhausted.
	ErrGaveUp = errors.New("reconnectable: could not obtain a valid object")
	// ErrBadTarget is returned when the name resolves to an object whose
	// subcontract the reconnectable client cannot take a door from.
	ErrBadTarget = errors.New("reconnectable: resolved object is not door-based")
)

// stats is the subcontract's metrics block: calls, reconnects, and the
// deadline endings that bound the re-resolve loop.
var stats = scstats.For("reconnectable")

// Trace span/event names: the invoke span wraps the whole recovery loop,
// and each reconnect/retry action surfaces as a zero-duration event inside
// it, so a trace shows exactly where the binding broke and was rebuilt.
var (
	spanInvoke     = trace.Name("reconnectable.invoke")
	spanReconnect  = trace.Name("reconnectable.reconnect")
	spanRetryEvent = trace.Name("reconnectable.retry")
)

// Rep is the representation: a normal door identifier plus an object name.
type Rep struct {
	mu   sync.Mutex
	h    kernel.Handle
	name string
}

type ops struct{}

// SC is the reconnectable subcontract.
var SC core.ClientOps = ops{}

// Register is the library entry point installing reconnectable in a
// registry.
func Register(r *core.Registry) error { return r.Register(SC) }

func (ops) ID() core.ID  { return SCID }
func (ops) Name() string { return "reconnectable" }

func rep(obj *core.Object) (*Rep, error) {
	r, ok := obj.Rep.(*Rep)
	if !ok {
		return nil, fmt.Errorf("reconnectable: foreign representation %T", obj.Rep)
	}
	return r, nil
}

func (ops) Marshal(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	core.WriteHeader(buf, SCID, obj.MT.Type)
	buf.WriteString(r.name)
	if err := obj.Env.Domain.MoveToBuffer(r.h, buf); err != nil {
		return fmt.Errorf("reconnectable: marshal: %w", err)
	}
	r.h = 0
	return obj.MarkConsumed()
}

func (ops) MarshalCopy(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	core.WriteHeader(buf, SCID, obj.MT.Type)
	buf.WriteString(r.name)
	if err := obj.Env.Domain.CopyToBuffer(r.h, buf); err != nil {
		return fmt.Errorf("reconnectable: marshal_copy: %w", err)
	}
	return nil
}

func (o ops) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	if obj, handled, err := core.RedispatchUnmarshal(env, mt, buf, SCID); handled {
		return obj, err
	}
	actual, err := core.ReadHeader(buf, SCID)
	if err != nil {
		return nil, err
	}
	name, err := buf.ReadString()
	if err != nil {
		return nil, err
	}
	h, err := env.Domain.AdoptFromBuffer(buf)
	if err != nil {
		return nil, fmt.Errorf("reconnectable: unmarshal: %w", err)
	}
	return core.NewObject(env, core.PickMTable(mt, actual), o, &Rep{h: h, name: name}), nil
}

func (ops) InvokePreamble(obj *core.Object, call *core.Call) error {
	return obj.CheckLive()
}

// Invoke performs a normal kernel door invocation; on a communications
// failure it re-resolves the object name and retries on the new object.
// The whole recovery loop — door calls, resolutions, backoff sleeps — is
// bounded by the call's deadline and cancellation: once the context ends,
// Invoke stops immediately with core.ErrDeadlineExceeded/ErrCancelled
// instead of burning the remaining resolution attempts.
func (ops) Invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	begin := stats.Begin()
	sp := trace.Begin(call.Info(), spanInvoke)
	reply, err := invoke(obj, call)
	sp.End(call.Info(), err)
	stats.EndCall(begin, uint32(call.Op), call.Info().ExemplarTrace(), err)
	return reply, err
}

func invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	dom := obj.Env.Domain
	for {
		r.mu.Lock()
		h := r.h
		r.mu.Unlock()

		reply, err := dom.CallInfo(h, call.Args(), call.Info())
		if err == nil || !core.Retryable(err) {
			return reply, err
		}
		stats.Reconnects.Add(1)
		trace.Event(call.Info(), spanReconnect)
		if err := reconnect(obj, r, h, call.Info()); err != nil {
			return nil, err
		}
		if err := call.Err(); err != nil {
			// The context ended while we were reconnecting: don't issue
			// another call on borrowed time.
			return nil, err
		}
		stats.Retries.Add(1)
		trace.Event(call.Info(), spanRetryEvent)
	}
}

// reconnect resolves the object name to obtain a new door, replacing the
// dead identifier stale. Concurrent invokes racing through a crash
// coordinate on the rep: whoever swaps first wins, later callers see the
// fresh handle and skip their own resolution. The resolution loop checks
// info between attempts and sleeps no longer than the remaining budget.
func reconnect(obj *core.Object, r *Rep, stale kernel.Handle, info *kernel.Info) error {
	r.mu.Lock()
	if r.h != stale {
		// Another thread already reconnected.
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()

	ctxAny, ok := obj.Env.Get(ContextVar)
	if !ok {
		return ErrNoContext
	}
	ctxObj, ok := ctxAny.(*core.Object)
	if !ok {
		return fmt.Errorf("%w: environment slot holds %T", ErrNoContext, ctxAny)
	}
	ctx := naming.Context{Obj: ctxObj}

	pol := DefaultPolicy
	if p, ok := obj.Env.Get(PolicyVar); ok {
		if pp, ok := p.(*Policy); ok {
			pol = *pp
		}
	}

	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepInfo(pol.Backoff, info); err != nil {
				return err
			}
		}
		if err := info.Err(); err != nil {
			return err
		}
		fresh, err := ctx.Resolve(r.name, obj.MT)
		if err != nil {
			lastErr = err
			continue
		}
		h, err := takeDoor(fresh)
		if err != nil {
			return err
		}
		// Probe nothing: install and let the retried call find out. A
		// freshly bound but already dead door just loops us back here.
		r.mu.Lock()
		if r.h == stale {
			old := r.h
			r.h = h
			r.mu.Unlock()
			_ = obj.Env.Domain.DeleteDoor(old)
		} else {
			// Lost the race; discard our door.
			r.mu.Unlock()
			_ = obj.Env.Domain.DeleteDoor(h)
		}
		return nil
	}
	return fmt.Errorf("%w: %q after %d attempts: %v", ErrGaveUp, r.name, pol.MaxAttempts, lastErr)
}

// sleepInfo sleeps for d, but no longer than info's remaining budget, and
// wakes immediately on cancellation. It returns the context's error if the
// context ended during (or before) the sleep.
func sleepInfo(d time.Duration, info *kernel.Info) error {
	if err := info.Err(); err != nil {
		return err
	}
	if rem, ok := info.Remaining(); ok && rem < d {
		d = rem
	}
	if info != nil && info.Cancel != nil {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-info.Cancel:
			return kernel.ErrCancelled
		case <-t.C:
		}
	} else {
		time.Sleep(d)
	}
	return info.Err()
}

// takeDoor extracts the door identifier from a freshly resolved object,
// consuming the wrapper. The paper's reconnectable expects the name to
// resolve to a normal (door-based) object.
func takeDoor(fresh *core.Object) (kernel.Handle, error) {
	if fresh == nil {
		return 0, fmt.Errorf("%w: nil", ErrBadTarget)
	}
	switch rep := fresh.Rep.(type) {
	case doorsc.Rep:
		// Mark the wrapper consumed; its sole door identifier now belongs
		// to the reconnectable rep.
		if err := fresh.MarkConsumed(); err != nil {
			return 0, err
		}
		return rep.H, nil
	case *Rep:
		rep.mu.Lock()
		h := rep.h
		rep.h = 0
		rep.mu.Unlock()
		if err := fresh.MarkConsumed(); err != nil {
			return 0, err
		}
		return h, nil
	default:
		err := fresh.Consume()
		if err != nil {
			return 0, fmt.Errorf("%w: %T (consume: %v)", ErrBadTarget, fresh.Rep, err)
		}
		return 0, fmt.Errorf("%w: %T", ErrBadTarget, fresh.Rep)
	}
}

func (o ops) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, err := obj.Env.Domain.CopyDoor(r.h)
	if err != nil {
		return nil, fmt.Errorf("reconnectable: copy: %w", err)
	}
	return core.NewObject(obj.Env, obj.MT, o, &Rep{h: h, name: r.name}), nil
}

func (ops) Consume(obj *core.Object) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.h != 0 {
		_ = obj.Env.Domain.DeleteDoor(r.h)
		r.h = 0
	}
	return obj.MarkConsumed()
}

// Export creates a reconnectable object backed by skel, binding a plain
// (singleton) object under name in ctx so clients can re-resolve it. A
// server that restarts calls Export again with the same name to rebind.
func Export(env *core.Env, mt *core.MTable, skel stubs.Skeleton, name string, ctx naming.Context) (*core.Object, *kernel.Door, error) {
	plain, door := singleton.Export(env, mt, skel, nil)
	// Keep an identifier for the reconnectable object before the plain
	// object (and its identifier) moves into the naming context.
	keep, err := plain.Copy()
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Bind(name, plain, true); err != nil {
		_ = keep.Consume()
		return nil, nil, fmt.Errorf("reconnectable: binding %q: %w", name, err)
	}
	h, err := takeDoor(keep)
	if err != nil {
		return nil, nil, err
	}
	return core.NewObject(env, mt, SC, &Rep{h: h, name: name}), door, nil
}
