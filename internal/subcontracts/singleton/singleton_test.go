package singleton

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
)

func setup(t *testing.T) (*kernel.Kernel, *core.Env, *core.Env) {
	t.Helper()
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "server", Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", Register)
	if err != nil {
		t.Fatal(err)
	}
	return k, srv, cli
}

func TestExportAndLocalInvoke(t *testing.T) {
	_, srv, _ := setup(t)
	ctr := &sctest.Counter{}
	obj, _ := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)

	if v, err := sctest.Add(obj, 5); err != nil || v != 5 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	if v, err := sctest.Get(obj); err != nil || v != 5 {
		t.Fatalf("Get = %d, %v", v, err)
	}
}

func TestCrossDomainInvoke(t *testing.T) {
	_, srv, cli := setup(t)
	ctr := &sctest.Counter{}
	obj, _ := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)

	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.Consumed() {
		t.Fatal("marshal did not consume the source object")
	}
	if v, err := sctest.Add(remote, 7); err != nil || v != 7 {
		t.Fatalf("remote Add = %d, %v", v, err)
	}
	if remote.SC.Name() != "singleton" {
		t.Fatalf("remote subcontract = %s", remote.SC.Name())
	}
}

func TestRemoteException(t *testing.T) {
	_, srv, cli := setup(t)
	ctr := &sctest.Counter{}
	obj, _ := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := sctest.Boom(remote); !stubs.IsRemote(err) {
		t.Fatalf("Boom = %v, want remote exception", err)
	}
}

func TestCopyBothUsable(t *testing.T) {
	_, srv, cli := setup(t)
	ctr := &sctest.Counter{}
	obj, _ := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	cp, err := remote.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(remote, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(cp, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := sctest.Get(cp); v != 2 {
		t.Fatalf("both copies should hit the same state; got %d", v)
	}
}

func TestConsumeTriggersUnreferenced(t *testing.T) {
	_, srv, cli := setup(t)
	ctr := &sctest.Counter{}
	unref := make(chan struct{})
	obj, _ := Export(srv, sctest.CounterMT, ctr.Skeleton(), func() { close(unref) })
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := remote.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unref:
		t.Fatal("unreferenced fired while a copy is alive")
	case <-time.After(5 * time.Millisecond):
	}
	if err := cp.Consume(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-unref:
	case <-time.After(2 * time.Second):
		t.Fatal("unreferenced never fired")
	}
	if _, err := sctest.Get(remote); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("invoke after consume = %v, want ErrConsumed", err)
	}
}

func TestRevoke(t *testing.T) {
	_, srv, cli := setup(t)
	ctr := &sctest.Counter{}
	obj, door := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	door.Revoke()
	if _, err := sctest.Get(remote); !errors.Is(err, kernel.ErrRevoked) {
		t.Fatalf("invoke after revoke = %v, want kernel.ErrRevoked", err)
	}
}

func TestMarshalCopyKeepsOriginal(t *testing.T) {
	_, srv, cli := setup(t)
	ctr := &sctest.Counter{}
	obj, _ := Export(srv, sctest.CounterMT, ctr.Skeleton(), nil)
	remote, err := sctest.TransferCopy(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Consumed() {
		t.Fatal("marshal_copy consumed the original")
	}
	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Get(remote); err != nil || v != 1 {
		t.Fatalf("Get via transferred copy = %d, %v", v, err)
	}
}

func TestForeignRepRejected(t *testing.T) {
	_, srv, _ := setup(t)
	obj := core.NewObject(srv, sctest.CounterMT, SC, "not a door rep")
	if _, err := sctest.Get(obj); err == nil {
		t.Fatal("foreign rep accepted")
	}
}
