// Package singleton implements the singleton subcontract: the standard,
// simple client-server subcontract that types such as file use by default
// (§6.1). The object's representation is a single kernel door identifier;
// every operation is a straightforward door call.
package singleton

import (
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
	"repro/internal/subcontracts/doorsc"
)

// SCID is the singleton subcontract identifier.
const SCID core.ID = 1

// LibraryName is the name the subcontract's library is installed under in
// the simulated dynamic linker (§6.2).
const LibraryName = "singleton.so"

// SC is the singleton subcontract (stateless; shared by all domains that
// link it).
var SC = &doorsc.Ops{Ident: SCID, SCName: "singleton"}

// Register is the library entry point: it installs the subcontract in a
// domain's registry.
func Register(r *core.Registry) error { return r.Register(SC) }

// Export creates a singleton Spring object in env backed by skel. The
// returned Door lets the server revoke the object.
func Export(env *core.Env, mt *core.MTable, skel stubs.Skeleton, unref func()) (*core.Object, *kernel.Door) {
	return SC.Export(env, mt, skel, unref)
}
