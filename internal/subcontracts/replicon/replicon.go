// Package replicon implements the replicon subcontract, the paper's
// simplest subcontract for supporting replication (§5).
//
// A set of server domains conspire to maintain the underlying state
// associated with an object; each server creates a kernel door to accept
// incoming calls on that state. The client possesses a set of door
// identifiers, one per replica. Clients talk to a single server at a time;
// the servers perform their own state synchronization. The invoke
// operation attempts each door identifier in turn: if an invocation fails
// due to a communications error the identifier is deleted from the target
// set and the next is tried. The invoke protocol also piggybacks
// subcontract control information in the call and reply buffers to support
// changes to the replica set.
//
// Wire layout, bracketing the stub-level payload:
//
//	call:  [client epoch u32] [opnum u32] [args...]
//	reply: [update u8 = 0]                            [status] [results]
//	       [update u8 = 1] [epoch u32] [n] [doors...] [status] [results]
package replicon

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/trace"
)

// SCID is the replicon subcontract identifier.
const SCID core.ID = 4

// LibraryName is the simulated dynamic-linker library name (§6.2). The
// paper uses exactly this example name when describing discovery.
const LibraryName = "replicon.so"

// ErrNoReplicas is returned when every replica has been found dead.
var ErrNoReplicas = errors.New("replicon: no live replicas")

// PolicyVar is the environment slot for an optional *Policy override.
const PolicyVar = "replicon.policy"

// Policy controls how invoke treats a fully failed replica set. Without a
// policy (the default) the last replica is dropped like any other and
// invoke returns ErrNoReplicas — a whole-set outage permanently empties
// the representation. With MaxRounds > 0, a replica that fails while it
// is the last one standing is retained and retried after Backoff, up to
// MaxRounds consecutive failures — so a transient whole-set outage (a
// durable server restarting) is ridden out instead of wrecking the
// replica set. Replicas are still dropped immediately while others
// remain, preserving instant failover among live replicas.
type Policy struct {
	// MaxRounds bounds consecutive retries of the last live replica.
	MaxRounds int
	// Backoff is slept between rounds (bounded by the call's context).
	Backoff time.Duration
}

// stats is the subcontract's metrics block; Failovers counts replicas
// dropped from the target set mid-scan.
var stats = scstats.For("replicon")

// Trace span/event names: the invoke span brackets the failover scan,
// each replica death and re-attempt marked by an event inside it.
var (
	spanInvoke        = trace.Name("replicon.invoke")
	spanFailoverEvent = trace.Name("replicon.failover")
	spanRetryEvent    = trace.Name("replicon.retry")
)

// Rep is a replicon object's representation: the ordered set of replica
// door identifiers plus the epoch of the replica set it reflects.
type Rep struct {
	mu    sync.Mutex
	hs    []kernel.Handle
	epoch uint32
}

// ops is the client-side operations vector.
type ops struct{}

// SC is the replicon subcontract.
var SC core.ClientOps = ops{}

// Register is the library entry point installing replicon in a registry.
func Register(r *core.Registry) error { return r.Register(SC) }

func (ops) ID() core.ID  { return SCID }
func (ops) Name() string { return "replicon" }

func rep(obj *core.Object) (*Rep, error) {
	r, ok := obj.Rep.(*Rep)
	if !ok {
		return nil, fmt.Errorf("replicon: foreign representation %T", obj.Rep)
	}
	return r, nil
}

// Marshal writes the count of door identifiers and then each identifier in
// turn (§5.1.1), consuming the object.
func (ops) Marshal(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	core.WriteHeader(buf, SCID, obj.MT.Type)
	buf.WriteUint32(r.epoch)
	buf.WriteUvarint(uint64(len(r.hs)))
	for _, h := range r.hs {
		if err := obj.Env.Domain.MoveToBuffer(h, buf); err != nil {
			return fmt.Errorf("replicon: marshal: %w", err)
		}
	}
	r.hs = nil
	return obj.MarkConsumed()
}

func (ops) MarshalCopy(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	core.WriteHeader(buf, SCID, obj.MT.Type)
	buf.WriteUint32(r.epoch)
	buf.WriteUvarint(uint64(len(r.hs)))
	for _, h := range r.hs {
		if err := obj.Env.Domain.CopyToBuffer(h, buf); err != nil {
			return fmt.Errorf("replicon: marshal_copy: %w", err)
		}
	}
	return nil
}

func (o ops) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	if obj, handled, err := core.RedispatchUnmarshal(env, mt, buf, SCID); handled {
		return obj, err
	}
	actual, err := core.ReadHeader(buf, SCID)
	if err != nil {
		return nil, err
	}
	epoch, err := buf.ReadUint32()
	if err != nil {
		return nil, err
	}
	n, err := buf.ReadUvarint()
	if err != nil {
		return nil, err
	}
	hs := make([]kernel.Handle, 0, n)
	for i := uint64(0); i < n; i++ {
		h, err := env.Domain.AdoptFromBuffer(buf)
		if err != nil {
			return nil, fmt.Errorf("replicon: unmarshal replica %d: %w", i, err)
		}
		hs = append(hs, h)
	}
	return core.NewObject(env, core.PickMTable(mt, actual), o, &Rep{hs: hs, epoch: epoch}), nil
}

// InvokePreamble writes the client's replica-set epoch into the call
// buffer so the server can piggyback an update if the set has changed.
func (ops) InvokePreamble(obj *core.Object, call *core.Call) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	call.Args().WriteUint32(r.epoch)
	r.mu.Unlock()
	return nil
}

// Invoke tries each replica in turn, deleting dead ones, and applies any
// replica-set update piggybacked on the reply. The failover scan is
// bounded by the call's invocation context: when the deadline passes or
// the caller cancels mid-scan, Invoke stops — the dead replicas found so
// far stay dropped, but no further replica is attempted.
func (ops) Invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	begin := stats.Begin()
	sp := trace.Begin(call.Info(), spanInvoke)
	reply, err := invoke(obj, call)
	sp.End(call.Info(), err)
	stats.EndCall(begin, uint32(call.Op), call.Info().ExemplarTrace(), err)
	return reply, err
}

func invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	var pol Policy
	if p, ok := obj.Env.Get(PolicyVar); ok {
		if pp, ok := p.(*Policy); ok {
			pol = *pp
		}
	}
	dom := obj.Env.Domain
	rounds := 0
	for {
		r.mu.Lock()
		n := len(r.hs)
		if n == 0 {
			r.mu.Unlock()
			return nil, ErrNoReplicas
		}
		h := r.hs[0]
		r.mu.Unlock()

		reply, err := dom.CallInfo(h, call.Args(), call.Info())
		if err != nil {
			if core.Retryable(err) {
				stats.Failovers.Add(1)
				trace.Event(call.Info(), spanFailoverEvent)
				if n == 1 && pol.MaxRounds > 0 {
					// Last replica standing under a retry policy: keep it
					// (dropping it would permanently empty the set) and
					// back off before another round.
					rounds++
					if rounds >= pol.MaxRounds {
						return nil, err
					}
					if serr := sleepInfo(pol.Backoff, call.Info()); serr != nil {
						return nil, serr
					}
				} else {
					r.dropDead(dom, h)
				}
				if err := call.Err(); err != nil {
					return nil, err
				}
				stats.Retries.Add(1)
				trace.Event(call.Info(), spanRetryEvent)
				continue
			}
			return nil, err
		}
		if err := r.applyUpdate(dom, reply); err != nil {
			kernel.ReleaseBufferDoors(reply)
			return nil, err
		}
		return reply, nil
	}
}

// sleepInfo sleeps for d, but no longer than the call context's remaining
// budget, waking immediately on cancellation.
func sleepInfo(d time.Duration, info *kernel.Info) error {
	if err := info.Err(); err != nil {
		return err
	}
	if rem, ok := info.Remaining(); ok && rem < d {
		d = rem
	}
	if info != nil && info.Cancel != nil {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-info.Cancel:
			return kernel.ErrCancelled
		case <-t.C:
		}
	} else {
		time.Sleep(d)
	}
	return info.Err()
}

// dropDead deletes a dead replica's identifier from the target set.
func (r *Rep) dropDead(dom *kernel.Domain, h kernel.Handle) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, cur := range r.hs {
		if cur == h {
			r.hs = append(r.hs[:i], r.hs[i+1:]...)
			// Ignore the error: a dead or already-moved handle is fine to drop.
			_ = dom.DeleteDoor(h)
			return
		}
	}
}

// applyUpdate consumes the reply's control section; on an update it adopts
// the new replica set and discards the old identifiers.
func (r *Rep) applyUpdate(dom *kernel.Domain, reply *buffer.Buffer) error {
	flag, err := reply.ReadByte()
	if err != nil {
		return fmt.Errorf("replicon: truncated reply control: %w", err)
	}
	if flag == 0 {
		return nil
	}
	epoch, err := reply.ReadUint32()
	if err != nil {
		return err
	}
	n, err := reply.ReadUvarint()
	if err != nil {
		return err
	}
	hs := make([]kernel.Handle, 0, n)
	for i := uint64(0); i < n; i++ {
		h, err := dom.AdoptFromBuffer(reply)
		if err != nil {
			return fmt.Errorf("replicon: adopting updated replica %d: %w", i, err)
		}
		hs = append(hs, h)
	}
	r.mu.Lock()
	old := r.hs
	r.hs = hs
	r.epoch = epoch
	r.mu.Unlock()
	for _, h := range old {
		_ = dom.DeleteDoor(h)
	}
	return nil
}

func (o ops) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	hs := make([]kernel.Handle, 0, len(r.hs))
	for _, h := range r.hs {
		nh, err := obj.Env.Domain.CopyDoor(h)
		if err != nil {
			return nil, fmt.Errorf("replicon: copy: %w", err)
		}
		hs = append(hs, nh)
	}
	return core.NewObject(obj.Env, obj.MT, o, &Rep{hs: hs, epoch: r.epoch}), nil
}

func (ops) Consume(obj *core.Object) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.hs {
		_ = obj.Env.Domain.DeleteDoor(h)
	}
	r.hs = nil
	return obj.MarkConsumed()
}

// Replicas reports how many replica identifiers the object currently holds
// (observability for the failover experiments).
func Replicas(obj *core.Object) (int, error) {
	r, err := rep(obj)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.hs), nil
}

// Epoch reports the replica-set epoch the object currently reflects.
func Epoch(obj *core.Object) (uint32, error) {
	r, err := rep(obj)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch, nil
}
