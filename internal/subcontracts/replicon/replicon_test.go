package replicon

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
)

// sharedCounter builds a group of n replicas that conspire to maintain one
// counter (the servers "perform their own state synchronization" — here by
// sharing the state object, as co-operating Spring servers may).
func sharedCounter(t *testing.T, k *kernel.Kernel, n int) (*Group, *sctest.Counter, []*Member, []*core.Env) {
	t.Helper()
	g := NewGroup()
	ctr := &sctest.Counter{}
	members := make([]*Member, n)
	envs := make([]*core.Env, n)
	for i := 0; i < n; i++ {
		env, err := sctest.NewEnv(k, "replica", Register)
		if err != nil {
			t.Fatal(err)
		}
		envs[i] = env
		members[i] = g.Join(env, env.Domain.Name(), ctr.Skeleton())
	}
	return g, ctr, members, envs
}

func client(t *testing.T, k *kernel.Kernel) *core.Env {
	t.Helper()
	env, err := sctest.NewEnv(k, "client", Register)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestInvokeFirstReplica(t *testing.T) {
	k := kernel.New("m1")
	g, ctr, _, _ := sharedCounter(t, k, 3)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)

	if v, err := sctest.Add(obj, 10); err != nil || v != 10 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	if ctr.Value() != 10 {
		t.Fatalf("server state = %d", ctr.Value())
	}
	if n, _ := Replicas(obj); n != 3 {
		t.Fatalf("replicas = %d, want 3", n)
	}
}

func TestFailoverOnCrash(t *testing.T) {
	k := kernel.New("m1")
	g, _, members, _ := sharedCounter(t, k, 3)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)

	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}
	// Kill the replica the client is talking to (the first). The next
	// invocation must transparently fail over.
	members[0].Crash()
	if v, err := sctest.Add(obj, 1); err != nil || v != 2 {
		t.Fatalf("Add after crash = %d, %v; failover failed", v, err)
	}
	// The reply from the surviving replica piggybacked the new set.
	if n, _ := Replicas(obj); n != 2 {
		t.Fatalf("replicas after update = %d, want 2", n)
	}
	if e, _ := Epoch(obj); e != g.Epoch() {
		t.Fatalf("epoch = %d, want %d", e, g.Epoch())
	}
}

func TestAllReplicasDead(t *testing.T) {
	k := kernel.New("m1")
	g, _, members, _ := sharedCounter(t, k, 2)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)
	for _, m := range members {
		m.Crash()
	}
	if _, err := sctest.Get(obj); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("Get with all dead = %v, want ErrNoReplicas", err)
	}
}

func TestJoinPropagatesToClient(t *testing.T) {
	k := kernel.New("m1")
	g, ctr, _, _ := sharedCounter(t, k, 1)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)
	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}

	// A new replica joins; the next reply updates the client's set.
	env, err := sctest.NewEnv(k, "late-replica", Register)
	if err != nil {
		t.Fatal(err)
	}
	g.Join(env, "late", ctr.Skeleton())
	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}
	if n, _ := Replicas(obj); n != 2 {
		t.Fatalf("replicas after join = %d, want 2", n)
	}
}

func TestRemoteExceptionNotRetried(t *testing.T) {
	k := kernel.New("m1")
	g, ctr, _, _ := sharedCounter(t, k, 3)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)

	if err := sctest.Boom(obj); !stubs.IsRemote(err) {
		t.Fatalf("Boom = %v, want remote exception", err)
	}
	// A remote exception is not a communications error: exactly one
	// replica saw the call, and the set is intact.
	if ctr.Calls() != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on remote exception)", ctr.Calls())
	}
	if n, _ := Replicas(obj); n != 3 {
		t.Fatalf("replicas = %d, want 3", n)
	}
}

func TestMarshalUnmarshalReplicaSet(t *testing.T) {
	k := kernel.New("m1")
	g, _, _, _ := sharedCounter(t, k, 3)
	cliA := client(t, k)
	cliB := client(t, k)
	obj := g.Export(cliA, sctest.CounterMT)

	moved, err := sctest.Transfer(obj, cliB, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.Consumed() {
		t.Fatal("marshal did not consume")
	}
	if n, _ := Replicas(moved); n != 3 {
		t.Fatalf("replicas after transfer = %d, want 3", n)
	}
	if v, err := sctest.Add(moved, 5); err != nil || v != 5 {
		t.Fatalf("Add via moved object = %d, %v", v, err)
	}
}

func TestCopyIndependentSets(t *testing.T) {
	k := kernel.New("m1")
	g, _, members, _ := sharedCounter(t, k, 2)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)
	cp, err := obj.Copy()
	if err != nil {
		t.Fatal(err)
	}
	members[0].Crash()
	// Both objects fail over independently.
	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(cp, 1); err != nil {
		t.Fatal(err)
	}
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(cp, 1); err != nil {
		t.Fatalf("copy dead after original consumed: %v", err)
	}
}

func TestConsumeReleasesAll(t *testing.T) {
	k := kernel.New("m1")
	g, _, _, _ := sharedCounter(t, k, 3)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)
	before := cli.Domain.HandleCount()
	if before == 0 {
		t.Fatal("expected replica handles in client domain")
	}
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
	if got := cli.Domain.HandleCount(); got != before-3 {
		t.Fatalf("handles after consume = %d, want %d", got, before-3)
	}
	if _, err := sctest.Get(obj); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("Get after consume = %v", err)
	}
}

func TestSingletonReceiverDiscoversReplicon(t *testing.T) {
	// A domain linked with replicon receives a replicon object through
	// the generic unmarshal path even though the counter type defaults to
	// singleton — the §6.1 compatible-subcontract protocol.
	k := kernel.New("m1")
	g, _, _, _ := sharedCounter(t, k, 2)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)

	buf := buffer.New(64)
	if err := obj.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.Unmarshal(cli, sctest.CounterMT, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SC.ID() != SCID {
		t.Fatalf("subcontract = %d, want replicon", got.SC.ID())
	}
}

func TestConcurrentInvokeDuringCrash(t *testing.T) {
	k := kernel.New("m1")
	g, _, members, _ := sharedCounter(t, k, 3)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)

	var wg sync.WaitGroup
	const calls = 50
	errCh := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sctest.Add(obj, 1); err != nil {
				errCh <- err
			}
		}()
		if i == 10 {
			members[0].Crash()
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent invoke failed: %v", err)
	}
}

// flakyReplica is a single member door that fails its first `failures`
// calls in the retryable communications class, then serves the counter
// normally — the shape of a server riding out a restart.
func flakyReplica(t *testing.T, k *kernel.Kernel, ctr *sctest.Counter, failures int) (*core.Env, kernel.Handle) {
	t.Helper()
	env, err := sctest.NewEnv(k, "flaky-replica", Register)
	if err != nil {
		t.Fatal(err)
	}
	skel := ctr.Skeleton()
	var remaining atomic.Int32
	remaining.Store(int32(failures))
	proc := func(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
		if remaining.Add(-1) >= 0 {
			// Fail before consuming req: in-kernel retries reuse the same
			// args buffer, as a wire transport re-serializes per attempt.
			return nil, fmt.Errorf("%w: injected outage", kernel.ErrCommFailure)
		}
		if _, err := req.ReadUint32(); err != nil { // epoch control
			return nil, err
		}
		reply := buffer.New(64)
		reply.WriteByte(0) // no replica-set update
		if err := stubs.ServeCallInfo(skel, req, reply, info); err != nil {
			return nil, err
		}
		return reply, nil
	}
	h, _ := env.Domain.CreateDoorInfo(proc, nil)
	return env, h
}

// TestPolicyRetainsLastReplica: with a retry policy set, a retryable
// failure on the last remaining replica does not empty the set — the
// handle is retained and retried until the replica comes back.
func TestPolicyRetainsLastReplica(t *testing.T) {
	k := kernel.New("m1")
	ctr := &sctest.Counter{}
	env, h := flakyReplica(t, k, ctr, 5)
	cli := client(t, k)
	ref, err := env.Domain.RefOf(h)
	if err != nil {
		t.Fatal(err)
	}
	obj := core.NewObject(cli, sctest.CounterMT, SC, &Rep{hs: []kernel.Handle{cli.Domain.AdoptRef(ref)}})
	cli.Set(PolicyVar, &Policy{MaxRounds: 50, Backoff: time.Millisecond})

	if v, err := sctest.Add(obj, 7); err != nil || v != 7 {
		t.Fatalf("Add through outage = %d, %v", v, err)
	}
	if n, _ := Replicas(obj); n != 1 {
		t.Fatalf("replica set after retries = %d, want 1 (retained)", n)
	}
}

// TestPolicyBoundsRetries: when the outage outlasts MaxRounds the call
// returns the retryable error — but the replica is still retained, so a
// later call (after recovery) succeeds without any re-resolution.
func TestPolicyBoundsRetries(t *testing.T) {
	k := kernel.New("m1")
	ctr := &sctest.Counter{}
	env, h := flakyReplica(t, k, ctr, 10)
	cli := client(t, k)
	ref, err := env.Domain.RefOf(h)
	if err != nil {
		t.Fatal(err)
	}
	obj := core.NewObject(cli, sctest.CounterMT, SC, &Rep{hs: []kernel.Handle{cli.Domain.AdoptRef(ref)}})
	cli.Set(PolicyVar, &Policy{MaxRounds: 3, Backoff: time.Millisecond})

	if _, err := sctest.Add(obj, 1); !core.Retryable(err) {
		t.Fatalf("exhausted retries = %v, want a retryable error", err)
	}
	if n, _ := Replicas(obj); n != 1 {
		t.Fatalf("replica dropped despite retention policy: %d", n)
	}
	// 3 of the 10 injected failures were consumed; the next call burns
	// the remaining 7 inside its own 50-round budget and succeeds.
	cli.Set(PolicyVar, &Policy{MaxRounds: 50, Backoff: time.Millisecond})
	if v, err := sctest.Add(obj, 2); err != nil || v != 2 {
		t.Fatalf("Add after recovery = %d, %v", v, err)
	}
}

// TestNoPolicyDropsLastReplica pins the default (policy-free) semantics
// the other tests rely on: the last replica is dropped like any other and
// the set empties to ErrNoReplicas.
func TestNoPolicyDropsLastReplica(t *testing.T) {
	k := kernel.New("m1")
	ctr := &sctest.Counter{}
	env, h := flakyReplica(t, k, ctr, 1)
	cli := client(t, k)
	ref, err := env.Domain.RefOf(h)
	if err != nil {
		t.Fatal(err)
	}
	obj := core.NewObject(cli, sctest.CounterMT, SC, &Rep{hs: []kernel.Handle{cli.Domain.AdoptRef(ref)}})

	if _, err := sctest.Add(obj, 1); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("Add without policy = %v, want ErrNoReplicas", err)
	}
}
