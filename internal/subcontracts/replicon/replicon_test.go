package replicon

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
)

// sharedCounter builds a group of n replicas that conspire to maintain one
// counter (the servers "perform their own state synchronization" — here by
// sharing the state object, as co-operating Spring servers may).
func sharedCounter(t *testing.T, k *kernel.Kernel, n int) (*Group, *sctest.Counter, []*Member, []*core.Env) {
	t.Helper()
	g := NewGroup()
	ctr := &sctest.Counter{}
	members := make([]*Member, n)
	envs := make([]*core.Env, n)
	for i := 0; i < n; i++ {
		env, err := sctest.NewEnv(k, "replica", Register)
		if err != nil {
			t.Fatal(err)
		}
		envs[i] = env
		members[i] = g.Join(env, env.Domain.Name(), ctr.Skeleton())
	}
	return g, ctr, members, envs
}

func client(t *testing.T, k *kernel.Kernel) *core.Env {
	t.Helper()
	env, err := sctest.NewEnv(k, "client", Register)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestInvokeFirstReplica(t *testing.T) {
	k := kernel.New("m1")
	g, ctr, _, _ := sharedCounter(t, k, 3)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)

	if v, err := sctest.Add(obj, 10); err != nil || v != 10 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	if ctr.Value() != 10 {
		t.Fatalf("server state = %d", ctr.Value())
	}
	if n, _ := Replicas(obj); n != 3 {
		t.Fatalf("replicas = %d, want 3", n)
	}
}

func TestFailoverOnCrash(t *testing.T) {
	k := kernel.New("m1")
	g, _, members, _ := sharedCounter(t, k, 3)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)

	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}
	// Kill the replica the client is talking to (the first). The next
	// invocation must transparently fail over.
	members[0].Crash()
	if v, err := sctest.Add(obj, 1); err != nil || v != 2 {
		t.Fatalf("Add after crash = %d, %v; failover failed", v, err)
	}
	// The reply from the surviving replica piggybacked the new set.
	if n, _ := Replicas(obj); n != 2 {
		t.Fatalf("replicas after update = %d, want 2", n)
	}
	if e, _ := Epoch(obj); e != g.Epoch() {
		t.Fatalf("epoch = %d, want %d", e, g.Epoch())
	}
}

func TestAllReplicasDead(t *testing.T) {
	k := kernel.New("m1")
	g, _, members, _ := sharedCounter(t, k, 2)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)
	for _, m := range members {
		m.Crash()
	}
	if _, err := sctest.Get(obj); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("Get with all dead = %v, want ErrNoReplicas", err)
	}
}

func TestJoinPropagatesToClient(t *testing.T) {
	k := kernel.New("m1")
	g, ctr, _, _ := sharedCounter(t, k, 1)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)
	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}

	// A new replica joins; the next reply updates the client's set.
	env, err := sctest.NewEnv(k, "late-replica", Register)
	if err != nil {
		t.Fatal(err)
	}
	g.Join(env, "late", ctr.Skeleton())
	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}
	if n, _ := Replicas(obj); n != 2 {
		t.Fatalf("replicas after join = %d, want 2", n)
	}
}

func TestRemoteExceptionNotRetried(t *testing.T) {
	k := kernel.New("m1")
	g, ctr, _, _ := sharedCounter(t, k, 3)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)

	if err := sctest.Boom(obj); !stubs.IsRemote(err) {
		t.Fatalf("Boom = %v, want remote exception", err)
	}
	// A remote exception is not a communications error: exactly one
	// replica saw the call, and the set is intact.
	if ctr.Calls() != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on remote exception)", ctr.Calls())
	}
	if n, _ := Replicas(obj); n != 3 {
		t.Fatalf("replicas = %d, want 3", n)
	}
}

func TestMarshalUnmarshalReplicaSet(t *testing.T) {
	k := kernel.New("m1")
	g, _, _, _ := sharedCounter(t, k, 3)
	cliA := client(t, k)
	cliB := client(t, k)
	obj := g.Export(cliA, sctest.CounterMT)

	moved, err := sctest.Transfer(obj, cliB, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.Consumed() {
		t.Fatal("marshal did not consume")
	}
	if n, _ := Replicas(moved); n != 3 {
		t.Fatalf("replicas after transfer = %d, want 3", n)
	}
	if v, err := sctest.Add(moved, 5); err != nil || v != 5 {
		t.Fatalf("Add via moved object = %d, %v", v, err)
	}
}

func TestCopyIndependentSets(t *testing.T) {
	k := kernel.New("m1")
	g, _, members, _ := sharedCounter(t, k, 2)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)
	cp, err := obj.Copy()
	if err != nil {
		t.Fatal(err)
	}
	members[0].Crash()
	// Both objects fail over independently.
	if _, err := sctest.Add(obj, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(cp, 1); err != nil {
		t.Fatal(err)
	}
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(cp, 1); err != nil {
		t.Fatalf("copy dead after original consumed: %v", err)
	}
}

func TestConsumeReleasesAll(t *testing.T) {
	k := kernel.New("m1")
	g, _, _, _ := sharedCounter(t, k, 3)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)
	before := cli.Domain.HandleCount()
	if before == 0 {
		t.Fatal("expected replica handles in client domain")
	}
	if err := obj.Consume(); err != nil {
		t.Fatal(err)
	}
	if got := cli.Domain.HandleCount(); got != before-3 {
		t.Fatalf("handles after consume = %d, want %d", got, before-3)
	}
	if _, err := sctest.Get(obj); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("Get after consume = %v", err)
	}
}

func TestSingletonReceiverDiscoversReplicon(t *testing.T) {
	// A domain linked with replicon receives a replicon object through
	// the generic unmarshal path even though the counter type defaults to
	// singleton — the §6.1 compatible-subcontract protocol.
	k := kernel.New("m1")
	g, _, _, _ := sharedCounter(t, k, 2)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)

	buf := buffer.New(64)
	if err := obj.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.Unmarshal(cli, sctest.CounterMT, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SC.ID() != SCID {
		t.Fatalf("subcontract = %d, want replicon", got.SC.ID())
	}
}

func TestConcurrentInvokeDuringCrash(t *testing.T) {
	k := kernel.New("m1")
	g, _, members, _ := sharedCounter(t, k, 3)
	cli := client(t, k)
	obj := g.Export(cli, sctest.CounterMT)

	var wg sync.WaitGroup
	const calls = 50
	errCh := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sctest.Add(obj, 1); err != nil {
				errCh <- err
			}
		}()
		if i == 10 {
			members[0].Crash()
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent invoke failed: %v", err)
	}
}
