package replicon

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stubs"
)

// Group is the server-side replicon machinery: the set of server domains
// conspiring to maintain one object's underlying state. Each member
// creates a kernel door accepting incoming calls on that state; the group
// tracks membership changes with an epoch so members can piggyback
// replica-set updates on replies to clients carrying stale epochs.
type Group struct {
	mu      sync.Mutex
	epoch   uint32
	members []*Member
}

// Member is one replica server in a group.
type Member struct {
	group *Group
	env   *core.Env
	door  *kernel.Door
	ref   kernel.Ref
	name  string
}

// NewGroup creates an empty replica group.
func NewGroup() *Group { return &Group{} }

// Epoch returns the group's current membership epoch.
func (g *Group) Epoch() uint32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Size returns the current number of members.
func (g *Group) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// Join adds a replica server running skel in env's domain. The member's
// door wraps the skeleton with the replicon server protocol. Joining bumps
// the epoch.
func (g *Group) Join(env *core.Env, name string, skel stubs.Skeleton) *Member {
	m := &Member{group: g, env: env, name: name}
	proc := func(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
		clientEpoch, err := req.ReadUint32()
		if err != nil {
			return nil, fmt.Errorf("replicon: missing epoch control: %w", err)
		}
		reply := buffer.New(128)
		g.writeUpdate(reply, clientEpoch)
		if err := stubs.ServeCallInfo(skel, req, reply, info); err != nil {
			kernel.ReleaseBufferDoors(reply)
			return nil, err
		}
		return reply, nil
	}
	h, door := env.Domain.CreateDoorInfo(proc, nil)
	m.door = door
	ref, err := env.Domain.RefOf(h)
	if err != nil {
		// The handle was created two lines up; failure is impossible
		// short of memory corruption.
		panic(err)
	}
	m.ref = ref
	// The domain-level handle is subsumed by the group's ref.
	_ = env.Domain.DeleteDoor(h)

	g.mu.Lock()
	g.members = append(g.members, m)
	g.epoch++
	g.mu.Unlock()
	return m
}

// writeUpdate writes the reply control section: nothing if the client's
// replica set is current, otherwise the new epoch and the full door set.
func (g *Group) writeUpdate(reply *buffer.Buffer, clientEpoch uint32) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if clientEpoch == g.epoch {
		reply.WriteByte(0)
		return
	}
	reply.WriteByte(1)
	reply.WriteUint32(g.epoch)
	reply.WriteUvarint(uint64(len(g.members)))
	for _, m := range g.members {
		reply.WriteDoor(m.ref.Dup())
	}
}

// Crash simulates a replica failure: the member's door is revoked and it
// leaves the group, bumping the epoch. Clients discover the failure as a
// communications error and failover to the next replica, which piggybacks
// the shrunken set.
func (m *Member) Crash() {
	m.door.Revoke()
	g := m.group
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, cur := range g.members {
		if cur == m {
			g.members = append(g.members[:i], g.members[i+1:]...)
			g.epoch++
			break
		}
	}
}

// Name returns the member's name.
func (m *Member) Name() string { return m.name }

// Ref returns a caller-owned duplicate of the member's door reference.
func (m *Member) Ref() kernel.Ref { return m.ref.Dup() }

// SharedRef returns the member's own door reference without duplicating
// it; the group retains ownership, so callers may inspect identity but
// must not release it.
func (m *Member) SharedRef() kernel.Ref { return m.ref }

// Export fabricates a client object for the group's state in env: a method
// table consisting entirely of stub methods, a replicon subcontract
// descriptor, and a representation consisting of a set of kernel door
// identifiers, one per replica (§5).
func (g *Group) Export(env *core.Env, mt *core.MTable) *core.Object {
	g.mu.Lock()
	defer g.mu.Unlock()
	hs := make([]kernel.Handle, 0, len(g.members))
	for _, m := range g.members {
		hs = append(hs, env.Domain.AdoptRef(m.ref.Dup()))
	}
	return core.NewObject(env, mt, SC, &Rep{hs: hs, epoch: g.epoch})
}
