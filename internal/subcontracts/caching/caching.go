// Package caching implements the caching subcontract of §8.2.
//
// When a server is on a different machine from its clients it is often
// useful to perform caching on the client machines. The representation of
// a caching object includes a door identifier D1 pointing to the server, a
// door identifier D2 pointing to a local cache, and the name of a cache
// manager. When a caching object is transmitted between machines only D1
// and the cache manager name travel; the unmarshal code resolves the cache
// manager name in a machine-local naming context, presents D1 to the local
// cache manager, and receives a new D2. Every invoke then goes through D2,
// so all invocations on a cacheable object go to an appropriate cache
// manager on the local machine.
//
// This is the subcontract the paper calls out as deliberately profligate
// at unmarshal time to win at invoke time (§9.3). The invoke-time win is
// only as good as the cache manager behind D2: internal/cache serves hits
// lock-free of any manager-wide state, bounds each entry's reply cache
// with an LRU byte budget, and coalesces concurrent misses for one key
// into a single server call (the E16 experiment measures this path).
package caching

import (
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/scstats"
	"repro/internal/stubs"
	"repro/internal/subcontracts/doorsc"
	"repro/internal/trace"
)

// SCID is the caching subcontract identifier.
const SCID core.ID = 5

// LibraryName is the simulated dynamic-linker library name (§6.2).
const LibraryName = "caching.so"

// LocalContextVar is the environment slot holding the machine-local naming
// context (a *core.Object) in which cache manager names resolve.
const LocalContextVar = "naming.local"

// ErrNoLocalContext is returned when unmarshalling a caching object in a
// domain with no machine-local naming context configured.
var ErrNoLocalContext = errors.New("caching: no machine-local naming context in environment")

// stats is the subcontract's metrics block. The cache manager itself
// records hits and misses into it (see internal/cache), since only the
// manager knows whether a call was served locally.
var stats = scstats.For("caching")

// spanInvoke traces caching invocations (the D2 leg into the local cache
// manager; the manager itself records hit/miss/coalesce below it).
var spanInvoke = trace.Name("caching.invoke")

// Rep is the representation: server door D1, cache door D2, the cache
// manager name, and the operation sets that travel with the object.
type Rep struct {
	D1         kernel.Handle
	D2         kernel.Handle // 0 when serving locally (no cache in front)
	Manager    string
	Cacheable  cache.OpSet
	Invalidate cache.OpSet
}

type ops struct{}

// SC is the caching subcontract.
var SC core.ClientOps = ops{}

// Register is the library entry point installing caching in a registry.
func Register(r *core.Registry) error { return r.Register(SC) }

func (ops) ID() core.ID  { return SCID }
func (ops) Name() string { return "caching" }

func rep(obj *core.Object) (Rep, error) {
	r, ok := obj.Rep.(Rep)
	if !ok {
		return Rep{}, fmt.Errorf("caching: foreign representation %T", obj.Rep)
	}
	return r, nil
}

func writeRep(buf *buffer.Buffer, r Rep) {
	buf.WriteString(r.Manager)
	r.Cacheable.MarshalTo(buf)
	r.Invalidate.MarshalTo(buf)
}

// Marshal transmits only D1 and the cache manager name (plus the masks);
// D2 is machine-local and is discarded with the rest of the local state.
func (ops) Marshal(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	core.WriteHeader(buf, SCID, obj.MT.Type)
	writeRep(buf, r)
	if err := obj.Env.Domain.MoveToBuffer(r.D1, buf); err != nil {
		return fmt.Errorf("caching: marshal: %w", err)
	}
	if r.D2 != 0 {
		_ = obj.Env.Domain.DeleteDoor(r.D2)
	}
	return obj.MarkConsumed()
}

func (ops) MarshalCopy(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	core.WriteHeader(buf, SCID, obj.MT.Type)
	writeRep(buf, r)
	if err := obj.Env.Domain.CopyToBuffer(r.D1, buf); err != nil {
		return fmt.Errorf("caching: marshal_copy: %w", err)
	}
	return nil
}

// Unmarshal adopts D1, resolves the cache manager name in the machine-
// local naming context, presents D1, and receives D2 (§8.2; Figure 5).
// This is the subcontract's deliberate unmarshal-time overhead.
func (o ops) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	if obj, handled, err := core.RedispatchUnmarshal(env, mt, buf, SCID); handled {
		return obj, err
	}
	actual, err := core.ReadHeader(buf, SCID)
	if err != nil {
		return nil, err
	}
	r := Rep{}
	if r.Manager, err = buf.ReadString(); err != nil {
		return nil, err
	}
	if r.Cacheable, err = cache.ReadOpSet(buf); err != nil {
		return nil, err
	}
	if r.Invalidate, err = cache.ReadOpSet(buf); err != nil {
		return nil, err
	}
	if r.D1, err = env.Domain.AdoptFromBuffer(buf); err != nil {
		return nil, fmt.Errorf("caching: unmarshal: %w", err)
	}

	mgr, err := localManager(env, r.Manager)
	if err != nil {
		_ = env.Domain.DeleteDoor(r.D1)
		return nil, err
	}
	r.D2, err = mgr.Register(r.D1, r.Cacheable, r.Invalidate)
	consumeQuietly(mgr.Obj)
	if err != nil {
		_ = env.Domain.DeleteDoor(r.D1)
		return nil, fmt.Errorf("caching: registering with manager %q: %w", r.Manager, err)
	}
	return core.NewObject(env, core.PickMTable(mt, actual), o, r), nil
}

// localManager resolves the named cache manager in the domain's machine-
// local context.
func localManager(env *core.Env, name string) (cache.Client, error) {
	ctxAny, ok := env.Get(LocalContextVar)
	if !ok {
		return cache.Client{}, ErrNoLocalContext
	}
	ctxObj, ok := ctxAny.(*core.Object)
	if !ok {
		return cache.Client{}, fmt.Errorf("%w: slot holds %T", ErrNoLocalContext, ctxAny)
	}
	mgrObj, err := naming.Context{Obj: ctxObj}.Resolve(name, cache.ManagerMT)
	if err != nil {
		return cache.Client{}, fmt.Errorf("caching: resolving manager %q: %w", name, err)
	}
	return cache.Client{Obj: mgrObj}, nil
}

func consumeQuietly(obj *core.Object) {
	if obj != nil {
		_ = obj.Consume()
	}
}

func (ops) InvokePreamble(obj *core.Object, call *core.Call) error {
	return obj.CheckLive()
}

// Invoke uses the D2 door identifier, so the call reaches the local cache
// manager (or the server directly for a locally exported object).
func (ops) Invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	begin := stats.Begin()
	sp := trace.Begin(call.Info(), spanInvoke)
	reply, err := invoke(obj, call)
	sp.End(call.Info(), err)
	stats.EndCall(begin, uint32(call.Op), call.Info().ExemplarTrace(), err)
	return reply, err
}

func invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	h := r.D2
	if h == 0 {
		h = r.D1
	}
	return obj.Env.Domain.CallInfo(h, call.Args(), call.Info())
}

func (o ops) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	nr := r
	if nr.D1, err = obj.Env.Domain.CopyDoor(r.D1); err != nil {
		return nil, fmt.Errorf("caching: copy: %w", err)
	}
	if r.D2 != 0 {
		if nr.D2, err = obj.Env.Domain.CopyDoor(r.D2); err != nil {
			_ = obj.Env.Domain.DeleteDoor(nr.D1)
			return nil, fmt.Errorf("caching: copy: %w", err)
		}
	}
	return core.NewObject(obj.Env, obj.MT, o, nr), nil
}

func (ops) Consume(obj *core.Object) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	_ = obj.Env.Domain.DeleteDoor(r.D1)
	if r.D2 != 0 {
		_ = obj.Env.Domain.DeleteDoor(r.D2)
	}
	return obj.MarkConsumed()
}

// Export creates a caching Spring object in env backed by skel. manager is
// the machine-local cache manager name receivers will resolve; cacheable
// and invalidate are opnum bitmasks describing the interface's read-only
// and mutating operations. Locally the object talks straight to its own
// door (D2 = 0); caches appear as the object travels to other machines.
func Export(env *core.Env, mt *core.MTable, skel stubs.Skeleton, manager string, cacheable, invalidate cache.OpSet, unref func()) (*core.Object, *kernel.Door) {
	h, door := env.Domain.CreateDoorInfo(doorsc.ServerProcTyped(mt.Type, skel), unref)
	r := Rep{D1: h, Manager: manager, Cacheable: cacheable, Invalidate: invalidate}
	return core.NewObject(env, mt, SC, r), door
}
