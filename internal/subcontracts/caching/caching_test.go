package caching

import (
	"errors"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/sctest"
	"repro/internal/subcontracts/singleton"
)

// Counter op sets: get (op 0) is cacheable; add (op 1) invalidates.
var (
	counterCacheable  = cache.NewOpSet(sctest.OpGet)
	counterInvalidate = cache.NewOpSet(sctest.OpAdd)
)

// machine models one machine: a kernel with a machine-local naming
// context and a cache manager bound under "cachemgr".
type machine struct {
	k   *kernel.Kernel
	ns  *naming.Server
	mgr *cache.Manager
}

func newMachine(t *testing.T, name string) *machine {
	t.Helper()
	k := kernel.New(name)
	nsEnv, err := sctest.NewEnv(k, name+"-naming", singleton.Register, Register)
	if err != nil {
		t.Fatal(err)
	}
	ns := naming.NewServer(nsEnv)

	mgrEnv, err := sctest.NewEnv(k, name+"-cachemgr", singleton.Register, Register)
	if err != nil {
		t.Fatal(err)
	}
	mgr := cache.NewManager(mgrEnv)
	cp, err := mgr.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	h, err := ns.Handle()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Bind("cachemgr", cp, false); err != nil {
		t.Fatal(err)
	}
	return &machine{k: k, ns: ns, mgr: mgr}
}

// newEnv creates a domain on m wired with the machine-local context.
func (m *machine) newEnv(t *testing.T, name string) *core.Env {
	t.Helper()
	env, err := sctest.NewEnv(m.k, name, singleton.Register, Register)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.ns.Object().Copy()
	if err != nil {
		t.Fatal(err)
	}
	ctxObj, err := sctest.Transfer(cp, env, naming.ContextMT)
	if err != nil {
		t.Fatal(err)
	}
	env.Set(LocalContextVar, ctxObj)
	return env
}

func exportCounter(t *testing.T, srv *core.Env) (*core.Object, *sctest.Counter) {
	t.Helper()
	ctr := &sctest.Counter{}
	obj, _ := Export(srv, sctest.CounterMT, ctr.Skeleton(), "cachemgr", counterCacheable, counterInvalidate, nil)
	return obj, ctr
}

func TestLocalInvokeDirect(t *testing.T) {
	m := newMachine(t, "m1")
	srv := m.newEnv(t, "server")
	obj, ctr := exportCounter(t, srv)
	if v, err := sctest.Add(obj, 2); err != nil || v != 2 {
		t.Fatalf("Add = %d, %v", v, err)
	}
	if ctr.Calls() != 1 {
		t.Fatalf("calls = %d", ctr.Calls())
	}
	// No cache manager involved for the locally exported object.
	if s := m.mgr.Stats(); s.Hits+s.Misses+s.Forwards != 0 {
		t.Fatalf("manager touched for local object: %+v", s)
	}
}

func TestUnmarshalWiresCache(t *testing.T) {
	m := newMachine(t, "m1")
	srv := m.newEnv(t, "server")
	cli := m.newEnv(t, "client")
	obj, ctr := exportCounter(t, srv)

	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	// First get: miss, forwarded to the server.
	if v, err := sctest.Get(remote); err != nil || v != 0 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	// Second get: hit, served by the cache manager.
	if _, err := sctest.Get(remote); err != nil {
		t.Fatal(err)
	}
	s := m.mgr.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", s)
	}
	if ctr.Calls() != 1 {
		t.Fatalf("server saw %d calls, want 1 (second served from cache)", ctr.Calls())
	}
}

func TestWriteInvalidates(t *testing.T) {
	m := newMachine(t, "m1")
	srv := m.newEnv(t, "server")
	cli := m.newEnv(t, "client")
	obj, _ := exportCounter(t, srv)
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	if v, _ := sctest.Get(remote); v != 0 {
		t.Fatal("warm-up get wrong")
	}
	if _, err := sctest.Add(remote, 5); err != nil {
		t.Fatal(err)
	}
	// The get after the write must see fresh state, not the cached 0.
	if v, err := sctest.Get(remote); err != nil || v != 5 {
		t.Fatalf("Get after write = %d, %v; stale cache", v, err)
	}
	s := m.mgr.Stats()
	if s.Invalidns != 1 {
		t.Fatalf("invalidations = %d, want 1", s.Invalidns)
	}
}

func TestClientsShareCache(t *testing.T) {
	m := newMachine(t, "m1")
	srv := m.newEnv(t, "server")
	cliA := m.newEnv(t, "clientA")
	cliB := m.newEnv(t, "clientB")
	obj, ctr := exportCounter(t, srv)

	ra, err := sctest.TransferCopy(obj, cliA, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sctest.Transfer(obj, cliB, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Get(ra); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Get(rb); err != nil {
		t.Fatal(err)
	}
	// Same machine, same manager, same server door → one shared cache
	// entry: the second client's get is a hit.
	s := m.mgr.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want shared cache (1 miss, 1 hit)", s)
	}
	if ctr.Calls() != 1 {
		t.Fatalf("server calls = %d, want 1", ctr.Calls())
	}
}

func TestRemarshalReregisters(t *testing.T) {
	m := newMachine(t, "m1")
	srv := m.newEnv(t, "server")
	cliA := m.newEnv(t, "clientA")
	cliB := m.newEnv(t, "clientB")
	obj, _ := exportCounter(t, srv)

	ra, err := sctest.Transfer(obj, cliA, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sctest.Transfer(ra, cliB, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Get(rb); err != nil || v != 0 {
		t.Fatalf("Get after re-marshal = %d, %v", v, err)
	}
	r, err := rep(rb)
	if err != nil {
		t.Fatal(err)
	}
	if r.D2 == 0 {
		t.Fatal("re-unmarshalled object has no cache door")
	}
}

func TestUnmarshalWithoutLocalContextFails(t *testing.T) {
	m := newMachine(t, "m1")
	srv := m.newEnv(t, "server")
	obj, _ := exportCounter(t, srv)

	bare, err := sctest.NewEnv(m.k, "bare", singleton.Register, Register)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Transfer(obj, bare, sctest.CounterMT); !errors.Is(err, ErrNoLocalContext) {
		t.Fatalf("Transfer = %v, want ErrNoLocalContext", err)
	}
}

func TestCopyConsume(t *testing.T) {
	m := newMachine(t, "m1")
	srv := m.newEnv(t, "server")
	cli := m.newEnv(t, "client")
	obj, _ := exportCounter(t, srv)
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := remote.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Get(cp); err != nil || v != 0 {
		t.Fatalf("copy Get = %d, %v", v, err)
	}
	if err := cp.Consume(); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Get(cp); !errors.Is(err, core.ErrConsumed) {
		t.Fatalf("Get after consume = %v", err)
	}
}

func TestManagerRemoteStats(t *testing.T) {
	m := newMachine(t, "m1")
	cli := m.newEnv(t, "client")
	ctxAny, _ := cli.Get(LocalContextVar)
	mgrObj, err := naming.Context{Obj: ctxAny.(*core.Object)}.Resolve("cachemgr", cache.ManagerMT)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cache.Client{Obj: mgrObj}.RemoteStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("fresh manager stats = %+v", s)
	}
}
