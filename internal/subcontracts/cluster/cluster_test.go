package cluster

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
)

func setup(t *testing.T) (*core.Env, *core.Env) {
	t.Helper()
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "server", Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", Register)
	if err != nil {
		t.Fatal(err)
	}
	return srv, cli
}

func TestManyObjectsOneDoor(t *testing.T) {
	srv, cli := setup(t)
	s := NewServer(srv)

	const n = 100
	base := srv.Domain.HandleCount()
	counters := make([]*sctest.Counter, n)
	remotes := make([]*core.Object, n)
	for i := range counters {
		counters[i] = &sctest.Counter{}
		obj, err := s.Export(sctest.CounterMT, counters[i].Skeleton())
		if err != nil {
			t.Fatal(err)
		}
		remotes[i], err = sctest.Transfer(obj, cli, sctest.CounterMT)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Server-side handle table must not have grown per object: the whole
	// cluster shares one door. (Transient identifiers were moved to the
	// client, so the count returns to the baseline.)
	if got := srv.Domain.HandleCount(); got != base {
		t.Errorf("server handles = %d, want %d (one door for all objects)", got, base)
	}

	// Tag dispatch must reach the right object.
	for i, r := range remotes {
		if _, err := sctest.Add(r, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range counters {
		if c.Value() != int64(i+1) {
			t.Fatalf("counter %d = %d, want %d (tag cross-talk)", i, c.Value(), i+1)
		}
	}
}

func TestRevokeTag(t *testing.T) {
	srv, cli := setup(t)
	s := NewServer(srv)
	c1, c2 := &sctest.Counter{}, &sctest.Counter{}
	o1, err := s.Export(sctest.CounterMT, c1.Skeleton())
	if err != nil {
		t.Fatal(err)
	}
	o2, err := s.Export(sctest.CounterMT, c2.Skeleton())
	if err != nil {
		t.Fatal(err)
	}
	tag1, err := TagOf(o1)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sctest.Transfer(o1, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sctest.Transfer(o2, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}

	s.RevokeTag(tag1)
	if s.Objects() != 1 {
		t.Fatalf("Objects = %d, want 1", s.Objects())
	}
	err = sctest.Boom(r1)
	if !stubs.IsRemote(err) || !strings.Contains(err.Error(), "revoked") {
		t.Fatalf("call on revoked tag = %v, want cluster revocation exception", err)
	}
	// The sibling object behind the same door still works.
	if v, err := sctest.Add(r2, 4); err != nil || v != 4 {
		t.Fatalf("sibling after tag revoke = %d, %v", v, err)
	}
}

func TestRevokeWholeDoor(t *testing.T) {
	srv, cli := setup(t)
	s := NewServer(srv)
	c := &sctest.Counter{}
	obj, err := s.Export(sctest.CounterMT, c.Skeleton())
	if err != nil {
		t.Fatal(err)
	}
	r, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	s.Revoke()
	if _, err := sctest.Get(r); err == nil {
		t.Fatal("call succeeded after door revocation")
	}
}

func TestCopyAndMarshalCopy(t *testing.T) {
	srv, cli := setup(t)
	s := NewServer(srv)
	c := &sctest.Counter{}
	obj, err := s.Export(sctest.CounterMT, c.Skeleton())
	if err != nil {
		t.Fatal(err)
	}
	r, err := sctest.TransferCopy(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Consumed() {
		t.Fatal("marshal_copy consumed original")
	}
	cp, err := r.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Add(cp, 2); err != nil {
		t.Fatal(err)
	}
	if v, err := sctest.Get(r); err != nil || v != 2 {
		t.Fatalf("original view = %d, %v; copy must share the tag/state", v, err)
	}
	if err := cp.Consume(); err != nil {
		t.Fatal(err)
	}
	if _, err := sctest.Get(r); err != nil {
		t.Fatalf("original died with copy: %v", err)
	}
}

func TestClusterObjectsDistinctTags(t *testing.T) {
	srv, _ := setup(t)
	s := NewServer(srv)
	seen := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		obj, err := s.Export(sctest.CounterMT, (&sctest.Counter{}).Skeleton())
		if err != nil {
			t.Fatal(err)
		}
		tag, err := TagOf(obj)
		if err != nil {
			t.Fatal(err)
		}
		if seen[tag] {
			t.Fatalf("duplicate tag %d", tag)
		}
		seen[tag] = true
	}
}
