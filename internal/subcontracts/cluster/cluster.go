// Package cluster implements the cluster subcontract of §8.1.
//
// The simplex subcontract uses a distinct kernel door for each piece of
// server state exposed as a separate object — appropriate when objects
// grant access to distinctly protected resources. But some servers export
// large numbers of objects where access to one might as well mean access
// to all; for those, one door serving a whole set of objects reduces
// system overhead. Each cluster object is represented by the combination
// of a door identifier and an integer tag. The invoke_preamble and invoke
// operations conspire to ship the tag along to the server, whose
// cluster subcontract code uses the tag to dispatch to a particular
// object.
package cluster

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/scstats"
	"repro/internal/stubs"
	"repro/internal/trace"
)

// SCID is the cluster subcontract identifier.
const SCID core.ID = 3

// stats is the subcontract's metrics block.
var stats = scstats.For("cluster")

// spanInvoke traces cluster-member invocations.
var spanInvoke = trace.Name("cluster.invoke")

// LibraryName is the simulated dynamic-linker library name (§6.2).
const LibraryName = "cluster.so"

// Rep is a cluster object's representation: a door identifier plus the
// integer tag selecting the object behind that door.
type Rep struct {
	H   kernel.Handle
	Tag uint64
}

// ops is the client-side operations vector.
type ops struct{}

// SC is the cluster subcontract.
var SC core.ClientOps = ops{}

// Register is the library entry point installing cluster in a registry.
func Register(r *core.Registry) error { return r.Register(SC) }

func (ops) ID() core.ID  { return SCID }
func (ops) Name() string { return "cluster" }

func rep(obj *core.Object) (Rep, error) {
	r, ok := obj.Rep.(Rep)
	if !ok {
		return Rep{}, fmt.Errorf("cluster: foreign representation %T", obj.Rep)
	}
	return r, nil
}

func (ops) Marshal(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	core.WriteHeader(buf, SCID, obj.MT.Type)
	buf.WriteUint64(r.Tag)
	if err := obj.Env.Domain.MoveToBuffer(r.H, buf); err != nil {
		return fmt.Errorf("cluster: marshal: %w", err)
	}
	return obj.MarkConsumed()
}

func (ops) MarshalCopy(obj *core.Object, buf *buffer.Buffer) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	core.WriteHeader(buf, SCID, obj.MT.Type)
	buf.WriteUint64(r.Tag)
	if err := obj.Env.Domain.CopyToBuffer(r.H, buf); err != nil {
		return fmt.Errorf("cluster: marshal_copy: %w", err)
	}
	return nil
}

func (o ops) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	if obj, handled, err := core.RedispatchUnmarshal(env, mt, buf, SCID); handled {
		return obj, err
	}
	actual, err := core.ReadHeader(buf, SCID)
	if err != nil {
		return nil, err
	}
	tag, err := buf.ReadUint64()
	if err != nil {
		return nil, err
	}
	h, err := env.Domain.AdoptFromBuffer(buf)
	if err != nil {
		return nil, fmt.Errorf("cluster: unmarshal: %w", err)
	}
	return core.NewObject(env, core.PickMTable(mt, actual), o, Rep{H: h, Tag: tag}), nil
}

// InvokePreamble ships the tag: it writes the tag into the communications
// buffer before the stubs marshal the operation number and arguments, so
// the server-side cluster code can dispatch.
func (ops) InvokePreamble(obj *core.Object, call *core.Call) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	call.Args().WriteUint64(r.Tag)
	return nil
}

func (ops) Invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	begin := stats.Begin()
	sp := trace.Begin(call.Info(), spanInvoke)
	reply, err := invoke(obj, call)
	sp.End(call.Info(), err)
	stats.EndCall(begin, uint32(call.Op), call.Info().ExemplarTrace(), err)
	return reply, err
}

func invoke(obj *core.Object, call *core.Call) (*buffer.Buffer, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	return obj.Env.Domain.CallInfo(r.H, call.Args(), call.Info())
}

func (o ops) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, err := rep(obj)
	if err != nil {
		return nil, err
	}
	h, err := obj.Env.Domain.CopyDoor(r.H)
	if err != nil {
		return nil, fmt.Errorf("cluster: copy: %w", err)
	}
	return core.NewObject(obj.Env, obj.MT, o, Rep{H: h, Tag: r.Tag}), nil
}

func (ops) Consume(obj *core.Object) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	r, err := rep(obj)
	if err != nil {
		return err
	}
	if err := obj.Env.Domain.DeleteDoor(r.H); err != nil {
		return fmt.Errorf("cluster: consume: %w", err)
	}
	return obj.MarkConsumed()
}

// Server is the server-side cluster subcontract state: one kernel door
// providing access to a whole set of objects, dispatched by tag.
type Server struct {
	env *core.Env

	mu    sync.Mutex
	h     kernel.Handle
	door  *kernel.Door
	skels map[uint64]stubs.Skeleton
	next  uint64
}

// NewServer creates the cluster's single door in env's domain.
func NewServer(env *core.Env) *Server {
	s := &Server{env: env, skels: make(map[uint64]stubs.Skeleton), next: 1}
	s.h, s.door = env.Domain.CreateDoorInfo(s.serve, nil)
	return s
}

// serve is the door target: it reads the tag shipped by the client-side
// invoke_preamble and dispatches to the tagged object's skeleton.
func (s *Server) serve(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
	tag, err := req.ReadUint64()
	if err != nil {
		return nil, fmt.Errorf("cluster: missing tag: %w", err)
	}
	s.mu.Lock()
	skel, ok := s.skels[tag]
	s.mu.Unlock()
	reply := buffer.New(128)
	if !ok {
		stubs.WriteException(reply, fmt.Sprintf("cluster: no object with tag %d (revoked?)", tag))
		return reply, nil
	}
	if err := stubs.ServeCallInfo(skel, req, reply, info); err != nil {
		return nil, err
	}
	return reply, nil
}

// Export fabricates a cluster object backed by skel, sharing the server's
// single door.
func (s *Server) Export(mt *core.MTable, skel stubs.Skeleton) (*core.Object, error) {
	s.mu.Lock()
	tag := s.next
	s.next++
	s.skels[tag] = skel
	s.mu.Unlock()
	h, err := s.env.Domain.CopyDoor(s.h)
	if err != nil {
		return nil, fmt.Errorf("cluster: export: %w", err)
	}
	return core.NewObject(s.env, mt, SC, Rep{H: h, Tag: tag}), nil
}

// RevokeTag revokes a single exported object: further calls carrying its
// tag raise a remote exception while other objects behind the door keep
// working.
func (s *Server) RevokeTag(tag uint64) {
	s.mu.Lock()
	delete(s.skels, tag)
	s.mu.Unlock()
}

// Revoke revokes the whole cluster door (§5.2.3).
func (s *Server) Revoke() { s.door.Revoke() }

// Objects reports the number of live (non-revoked) exported objects.
func (s *Server) Objects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.skels)
}

// TagOf exposes an object's tag for tests and diagnostics.
func TagOf(obj *core.Object) (uint64, error) {
	r, err := rep(obj)
	if err != nil {
		return 0, err
	}
	return r.Tag, nil
}
