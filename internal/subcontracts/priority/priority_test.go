package priority

import (
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sched"
	"repro/internal/sctest"
	"repro/internal/stubs"
)

func TestPriorityPropagates(t *testing.T) {
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "server", Register)
	if err != nil {
		t.Fatal(err)
	}
	exec := sched.NewExecutor(1)
	defer exec.Close()

	var mu sync.Mutex
	var order []int64 // the delta argument doubles as an id

	skel := stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		delta, err := args.ReadInt64()
		if err != nil {
			return err
		}
		mu.Lock()
		order = append(order, delta)
		mu.Unlock()
		results.WriteInt64(delta)
		return nil
	})
	obj, _ := Export(srv, sctest.CounterMT, skel, exec, nil)

	// Separate client domains with different priorities.
	mkClient := func(name string, prio int32) *core.Object {
		env, err := sctest.NewEnv(k, name, Register)
		if err != nil {
			t.Fatal(err)
		}
		SetPriority(env, prio)
		remote, err := sctest.TransferCopy(obj, env, sctest.CounterMT)
		if err != nil {
			t.Fatal(err)
		}
		return remote
	}
	low := mkClient("low", 1)
	high := mkClient("high", 9)

	// Block the single worker so queued calls sort by priority.
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := exec.Submit(0, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	var wg sync.WaitGroup
	call := func(o *core.Object, id int64) {
		defer wg.Done()
		if _, err := sctest.Add(o, id); err != nil {
			t.Error(err)
		}
	}
	// Low-priority calls first (they enqueue), then the high one.
	wg.Add(3)
	issued := make(chan struct{}, 3)
	go func() { issued <- struct{}{}; call(low, 100) }()
	go func() { issued <- struct{}{}; call(low, 101) }()
	<-issued
	<-issued
	// Wait until both low calls are actually queued in the executor.
	for exec.Queued() < 2 {
	}
	go func() { issued <- struct{}{}; call(high, 900) }()
	<-issued
	for exec.Queued() < 3 {
	}
	close(gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 900 {
		t.Fatalf("execution order = %v, want high-priority call (900) first", order)
	}
}

func TestDefaultPriorityZero(t *testing.T) {
	k := kernel.New("m1")
	env, err := sctest.NewEnv(k, "e", Register)
	if err != nil {
		t.Fatal(err)
	}
	if p := CurrentPriority(env); p != 0 {
		t.Fatalf("default priority = %d", p)
	}
	SetPriority(env, 7)
	if p := CurrentPriority(env); p != 7 {
		t.Fatalf("priority = %d", p)
	}
}

func TestMarshalKeepsPriorityVector(t *testing.T) {
	k := kernel.New("m1")
	srv, err := sctest.NewEnv(k, "server", Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", Register)
	if err != nil {
		t.Fatal(err)
	}
	exec := sched.NewExecutor(2)
	defer exec.Close()
	ctr := &sctest.Counter{}
	obj, _ := Export(srv, sctest.CounterMT, ctr.Skeleton(), exec, nil)
	remote, err := sctest.Transfer(obj, cli, sctest.CounterMT)
	if err != nil {
		t.Fatal(err)
	}
	if remote.SC.Name() != "priority" {
		t.Fatalf("subcontract = %q", remote.SC.Name())
	}
	cp, err := remote.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if cp.SC.Name() != "priority" {
		t.Fatalf("copy lost the priority vector: %q", cp.SC.Name())
	}
	if v, err := sctest.Add(cp, 2); err != nil || v != 2 {
		t.Fatalf("Add = %d, %v", v, err)
	}
}
