// Package priority implements the priority subcontract sketched in the
// paper's future directions (§8.4): "a subcontract that transfers
// scheduling priority information between clients and servers for
// time-critical operations."
//
// The client-side invoke_preamble piggybacks the calling domain's current
// scheduling priority (an environment slot) as control information on each
// call; the server-side subcontract code runs the call through a
// priority-scheduled executor at that priority. Neither the stubs nor the
// application interfaces change — exactly the point of subcontract.
package priority

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sched"
	"repro/internal/stubs"
	"repro/internal/subcontracts/doorsc"
)

// SCID is the priority subcontract identifier.
const SCID core.ID = 8

// LibraryName is the simulated dynamic-linker library name (§6.2).
const LibraryName = "priority.so"

// Var is the environment slot holding the calling domain's current
// priority (an int32; absent means 0).
const Var = "sched.priority"

// ops is the client-side vector: door-based, plus the priority preamble.
type ops struct {
	doorsc.Ops
}

// SC is the priority subcontract.
var SC core.ClientOps = &ops{Ops: doorsc.Ops{Ident: SCID, SCName: "priority"}}

// Register is the library entry point installing priority in a registry.
func Register(r *core.Registry) error { return r.Register(SC) }

// Unmarshal must fabricate objects with the outer vector (embedding would
// hand out the plain door vector and lose the preamble).
func (o *ops) Unmarshal(env *core.Env, mt *core.MTable, buf *buffer.Buffer) (*core.Object, error) {
	if obj, handled, err := core.RedispatchUnmarshal(env, mt, buf, SCID); handled {
		return obj, err
	}
	actual, err := core.ReadHeader(buf, SCID)
	if err != nil {
		return nil, err
	}
	h, err := env.Domain.AdoptFromBuffer(buf)
	if err != nil {
		return nil, fmt.Errorf("priority: unmarshal: %w", err)
	}
	return core.NewObject(env, core.PickMTable(mt, actual), o, doorsc.Rep{H: h}), nil
}

// Copy duplicates the identifier, keeping the outer vector.
func (o *ops) Copy(obj *core.Object) (*core.Object, error) {
	if err := obj.CheckLive(); err != nil {
		return nil, err
	}
	r, ok := obj.Rep.(doorsc.Rep)
	if !ok {
		return nil, fmt.Errorf("priority: foreign representation %T", obj.Rep)
	}
	h, err := obj.Env.Domain.CopyDoor(r.H)
	if err != nil {
		return nil, fmt.Errorf("priority: copy: %w", err)
	}
	return core.NewObject(obj.Env, obj.MT, o, doorsc.Rep{H: h}), nil
}

// InvokePreamble writes the caller's priority into the call buffer before
// the stubs marshal the operation and arguments, and mirrors it into the
// invocation context so every dispatch layer along the path — the netd
// serve engine on the far machine included — queues the call at the same
// priority the server-side executor will run it at.
func (o *ops) InvokePreamble(obj *core.Object, call *core.Call) error {
	if err := obj.CheckLive(); err != nil {
		return err
	}
	p := CurrentPriority(obj.Env)
	call.Args().WriteInt32(p)
	call.Info().Priority = p
	return nil
}

// CurrentPriority reads the domain's scheduling priority slot.
func CurrentPriority(env *core.Env) int32 {
	if v, ok := env.Get(Var); ok {
		if p, ok := v.(int32); ok {
			return p
		}
	}
	return 0
}

// SetPriority sets the domain's scheduling priority slot.
func SetPriority(env *core.Env, p int32) { env.Set(Var, p) }

// Export creates a priority Spring object in env backed by skel, running
// incoming calls through exec at the priority each call carries.
func Export(env *core.Env, mt *core.MTable, skel stubs.Skeleton, exec *sched.Executor, unref func()) (*core.Object, *kernel.Door) {
	proc := func(req *buffer.Buffer, info *kernel.Info) (*buffer.Buffer, error) {
		prio, err := req.ReadInt32()
		if err != nil {
			return nil, fmt.Errorf("priority: missing priority control: %w", err)
		}
		var reply *buffer.Buffer
		var serveErr error
		if err := exec.Run(prio, func() {
			reply = buffer.New(128)
			serveErr = stubs.ServeCallInfo(skel, req, reply, info)
		}); err != nil {
			return nil, err
		}
		if serveErr != nil {
			return nil, serveErr
		}
		return reply, nil
	}
	h, door := env.Domain.CreateDoorInfo(proc, unref)
	return core.NewObject(env, mt, SC, doorsc.Rep{H: h}), door
}
