package shm

import (
	"bytes"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sctest"
	"repro/internal/stubs"
)

// echo is a one-op interface echoing a byte payload.
const opEcho core.OpNum = 0

var echoMT = &core.MTable{Type: "shmtest.echo", DefaultSC: SCID, Ops: []string{"echo"}}

func init() {
	core.MustRegisterType("shmtest.echo", core.ObjectType)
	core.MustRegisterMTable(echoMT)
}

func echoSkeleton() stubs.Skeleton {
	return stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		if op != opEcho {
			return stubs.ErrBadOp
		}
		p, err := args.ReadBytes()
		if err != nil {
			return err
		}
		results.WriteBytes(p)
		return nil
	})
}

func callEcho(obj *core.Object, payload []byte) ([]byte, error) {
	var out []byte
	err := stubs.Call(obj, opEcho,
		func(b *buffer.Buffer) error { b.WriteBytes(payload); return nil },
		func(b *buffer.Buffer) error {
			p, err := b.ReadBytes()
			if err != nil {
				return err
			}
			out = append([]byte(nil), p...)
			return err
		})
	return out, err
}

func setup(t *testing.T, mode Mode) (*core.Object, *SC) {
	t.Helper()
	k := kernel.New("m")
	sc := New(mode)
	srv, err := sctest.NewEnv(k, "server", sc.Register)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := sc.Export(srv, echoMT, echoSkeleton(), nil)
	return obj, sc
}

func TestEchoDirect(t *testing.T) {
	obj, _ := setup(t, Direct)
	payload := bytes.Repeat([]byte("x"), 4096)
	got, err := callEcho(obj, payload)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("echo(Direct) wrong: %d bytes, %v", len(got), err)
	}
}

func TestEchoCopyAfter(t *testing.T) {
	obj, _ := setup(t, CopyAfter)
	payload := bytes.Repeat([]byte("y"), 4096)
	got, err := callEcho(obj, payload)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("echo(CopyAfter) wrong: %d bytes, %v", len(got), err)
	}
}

func TestRegionRecycled(t *testing.T) {
	obj, _ := setup(t, Direct)
	// Repeated calls must not leak regions; with a pool the second call
	// reuses the first call's region. Indirectly observable: calls keep
	// succeeding and payloads never cross-contaminate.
	for i := 0; i < 100; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 128+i)
		got, err := callEcho(obj, payload)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("call %d corrupted: %v", i, err)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	k := kernel.New("m")
	sc := New(Direct)
	srv, err := sctest.NewEnv(k, "server", sc.Register)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := sctest.NewEnv(k, "client", sc.Register)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := sc.Export(srv, echoMT, echoSkeleton(), nil)
	remote, err := sctest.Transfer(obj, cli, echoMT)
	if err != nil {
		t.Fatal(err)
	}
	if remote.SC.ID() != SCID {
		t.Fatalf("subcontract = %d", remote.SC.ID())
	}
	got, err := callEcho(remote, []byte("hi"))
	if err != nil || string(got) != "hi" {
		t.Fatalf("remote echo = %q, %v", got, err)
	}
	cp, err := remote.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Consume(); err != nil {
		t.Fatal(err)
	}
	if _, err := callEcho(cp, []byte("z")); err != nil {
		t.Fatal(err)
	}
}

func TestDoorsSurviveCopyAfterMode(t *testing.T) {
	// CopyAfter splices the argument buffer; door references in the
	// arguments must survive the copy.
	k := kernel.New("m")
	sc := New(CopyAfter)
	srv, err := sctest.NewEnv(k, "server", sc.Register)
	if err != nil {
		t.Fatal(err)
	}
	adopted := make(chan error, 1)
	skel := stubs.SkeletonFunc(func(op core.OpNum, args, results *buffer.Buffer) error {
		_, err := srv.Domain.AdoptFromBuffer(args)
		adopted <- err
		return err
	})
	obj, _ := sc.Export(srv, echoMT, skel, nil)

	payloadDoor, _ := srv.Domain.CreateDoor(func(req *buffer.Buffer) (*buffer.Buffer, error) {
		return buffer.New(0), nil
	}, nil)
	err = stubs.Call(obj, 0, func(b *buffer.Buffer) error {
		return srv.Domain.MoveToBuffer(payloadDoor, b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-adopted; err != nil {
		t.Fatalf("door lost in CopyAfter splice: %v", err)
	}
}
